#include <gtest/gtest.h>

#include "common/rng.h"
#include "graphdb/generators.h"
#include "graphdb/tuple_search.h"
#include "synchro/builders.h"

namespace ecrpq {
namespace {

SyncRelation Make(Result<SyncRelation> r) {
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).ValueOrDie();
}

TEST(TupleSearchTest, EqLengthPathsOnCycle) {
  // Two tapes on a 4-cycle with eq-length: from (0, 2), targets are the
  // vertex pairs at equal distance.
  GraphDb db = CycleGraph(4, "a");
  SyncRelation eqlen = Make(EqualLengthRelation(db.alphabet(), 2));
  Result<JoinMachine> machine =
      JoinMachine::Create(db.alphabet(), {{&eqlen, {0, 1}}}, 2);
  ASSERT_TRUE(machine.ok());
  Result<TupleSearcher> searcher = TupleSearcher::Create(&db, &*machine);
  ASSERT_TRUE(searcher.ok());

  const ReachSet& reach = searcher->Reach({0, 2});
  EXPECT_FALSE(reach.aborted);
  // Equal distance d: (d mod 4, (2+d) mod 4) — four distinct pairs.
  EXPECT_EQ(reach.targets.size(), 4u);
  EXPECT_TRUE(searcher->Check({0, 2}, {0, 2}));  // d = 0 (empty paths).
  EXPECT_TRUE(searcher->Check({0, 2}, {1, 3}));  // d = 1.
  EXPECT_TRUE(searcher->Check({0, 2}, {2, 0}));  // d = 2.
  EXPECT_FALSE(searcher->Check({0, 2}, {1, 2}));
}

TEST(TupleSearchTest, EqualityNeedsIdenticalLabels) {
  // Path graph abab...: equality of two paths starting at 0 and 1. Labels
  // from 0: a, ab, aba...; from 1: b, ba, ... — never equal unless empty.
  GraphDb db = PathGraph(6, "ab");
  SyncRelation eq = Make(EqualityRelation(db.alphabet(), 2));
  Result<JoinMachine> machine =
      JoinMachine::Create(db.alphabet(), {{&eq, {0, 1}}}, 2);
  ASSERT_TRUE(machine.ok());
  Result<TupleSearcher> searcher = TupleSearcher::Create(&db, &*machine);
  ASSERT_TRUE(searcher.ok());
  const ReachSet& reach = searcher->Reach({0, 1});
  EXPECT_EQ(reach.targets.size(), 1u);  // Only (0, 1) via empty paths.
  // From 0 and 2 the labels line up (both read "abab..."):
  const ReachSet& reach2 = searcher->Reach({0, 2});
  EXPECT_TRUE(reach2.targets.count({2, 4}) > 0);
  EXPECT_TRUE(reach2.targets.count({1, 3}) > 0);
  EXPECT_FALSE(reach2.targets.count({1, 4}) > 0);
}

TEST(TupleSearchTest, MemoizationReusesSearches) {
  GraphDb db = CycleGraph(3, "a");
  SyncRelation eqlen = Make(EqualLengthRelation(db.alphabet(), 2));
  Result<JoinMachine> machine =
      JoinMachine::Create(db.alphabet(), {{&eqlen, {0, 1}}}, 2);
  ASSERT_TRUE(machine.ok());
  Result<TupleSearcher> searcher = TupleSearcher::Create(&db, &*machine);
  ASSERT_TRUE(searcher.ok());
  searcher->Reach({0, 1});
  const size_t explored_once = searcher->TotalExploredStates();
  searcher->Reach({0, 1});  // Memoized: no new exploration.
  EXPECT_EQ(searcher->TotalExploredStates(), explored_once);
  EXPECT_EQ(searcher->NumMemoizedSources(), 1u);
  searcher->Reach({1, 2});
  EXPECT_EQ(searcher->NumMemoizedSources(), 2u);
  EXPECT_GT(searcher->TotalExploredStates(), explored_once);
}

TEST(TupleSearchTest, BudgetAborts) {
  Rng rng(3);
  GraphDb db = RandomGraph(&rng, 20, 3.0, 2);
  SyncRelation eqlen = Make(EqualLengthRelation(db.alphabet(), 2));
  Result<JoinMachine> machine =
      JoinMachine::Create(db.alphabet(), {{&eqlen, {0, 1}}}, 2);
  ASSERT_TRUE(machine.ok());
  TupleSearchOptions options;
  options.max_states = 3;
  Result<TupleSearcher> searcher =
      TupleSearcher::Create(&db, &*machine, options);
  ASSERT_TRUE(searcher.ok());
  const ReachSet& reach = searcher->Reach({0, 1});
  EXPECT_TRUE(reach.aborted);
  EXPECT_TRUE(searcher->AnyAborted());
}

TEST(TupleSearchTest, WitnessPathsAreConsistent) {
  GraphDb db = CycleGraph(5, "a");
  SyncRelation eqlen = Make(EqualLengthRelation(db.alphabet(), 2));
  Result<JoinMachine> machine =
      JoinMachine::Create(db.alphabet(), {{&eqlen, {0, 1}}}, 2);
  ASSERT_TRUE(machine.ok());
  Result<TupleSearcher> searcher = TupleSearcher::Create(&db, &*machine);
  ASSERT_TRUE(searcher.ok());
  const auto witness = searcher->WitnessPaths({0, 1}, {2, 3});
  ASSERT_TRUE(witness.has_value());
  ASSERT_EQ(witness->size(), 2u);
  EXPECT_EQ((*witness)[0].size(), (*witness)[1].size());  // Equal lengths.
  const std::vector<VertexId> starts = {0, 1};
  const std::vector<VertexId> ends = {2, 3};
  for (int tape = 0; tape < 2; ++tape) {
    VertexId cur = starts[tape];
    for (const PathStep& step : (*witness)[tape]) {
      EXPECT_EQ(step.from, cur);
      EXPECT_TRUE(db.HasEdge(step.from, step.symbol, step.to));
      cur = step.to;
    }
    EXPECT_EQ(cur, ends[tape]);
  }
  EXPECT_FALSE(searcher->WitnessPaths({0, 1}, {2, 4}).has_value());
}

TEST(TupleSearchTest, UnconstrainedComponentIsPlainReachability) {
  // Empty join machine over one tape: Reach = reachable vertices.
  GraphDb db = PathGraph(4, "a");
  Result<JoinMachine> machine = JoinMachine::Create(db.alphabet(), {}, 1);
  ASSERT_TRUE(machine.ok());
  Result<TupleSearcher> searcher = TupleSearcher::Create(&db, &*machine);
  ASSERT_TRUE(searcher.ok());
  const ReachSet& reach = searcher->Reach({1});
  EXPECT_EQ(reach.targets.size(), 3u);  // 1, 2, 3.
  EXPECT_TRUE(reach.targets.count({3}) > 0);
  EXPECT_FALSE(reach.targets.count({0}) > 0);
}

TEST(TupleSearchTest, PrefixAcrossTwoTapes) {
  // label(p0) must be a prefix of label(p1): on a path graph both paths
  // from the same vertex walk the same labels, so any (t0, t1) with
  // t0 - s <= t1 - s works.
  GraphDb db = PathGraph(5, "ab");
  SyncRelation prefix = Make(PrefixRelation(db.alphabet()));
  Result<JoinMachine> machine =
      JoinMachine::Create(db.alphabet(), {{&prefix, {0, 1}}}, 2);
  ASSERT_TRUE(machine.ok());
  Result<TupleSearcher> searcher = TupleSearcher::Create(&db, &*machine);
  ASSERT_TRUE(searcher.ok());
  EXPECT_TRUE(searcher->Check({0, 0}, {2, 3}));
  EXPECT_TRUE(searcher->Check({0, 0}, {2, 2}));
  EXPECT_FALSE(searcher->Check({0, 0}, {3, 2}));
}

}  // namespace
}  // namespace ecrpq
