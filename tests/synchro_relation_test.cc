#include <gtest/gtest.h>

#include "synchro/builders.h"
#include "synchro/sync_relation.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

SyncRelation Make(Result<SyncRelation> r) {
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).ValueOrDie();
}

TEST(SyncRelationTest, CreateRejectsForeignSymbols) {
  // A 1-tape NFA whose letter encodes symbol id 5 over a 2-symbol alphabet.
  Result<TapePack> pack = TapePack::Create(1, 2);
  ASSERT_TRUE(pack.ok());
  Nfa nfa(1);
  nfa.SetInitial(0);
  nfa.SetAccepting(0);
  const TapeLetter bad[1] = {5};
  // Bypass Pack()'s DCHECK by building the raw label.
  (void)bad;
  nfa.AddTransition(0, 6 /* = symbol 5 + 1 */, 0);
  EXPECT_FALSE(SyncRelation::Create(kAb, 1, std::move(nfa)).ok());
}

TEST(SyncRelationTest, ContainsUsesCanonicalConvolution) {
  const SyncRelation eq = Make(EqualityRelation(kAb, 2));
  const std::vector<Word> same = {{0, 1}, {0, 1}};
  const std::vector<Word> diff = {{0, 1}, {0, 0}};
  const std::vector<Word> shorter = {{0}, {0, 1}};
  EXPECT_TRUE(eq.Contains(same));
  EXPECT_FALSE(eq.Contains(diff));
  EXPECT_FALSE(eq.Contains(shorter));
}

TEST(SyncRelationTest, NormalizedRejectsGarbageWords) {
  // An NFA accepting the invalid word (⊥,a)(a,a): letter after blank.
  Result<TapePack> pack_r = TapePack::Create(2, 2);
  ASSERT_TRUE(pack_r.ok());
  const TapePack& pack = *pack_r;
  Nfa nfa(3);
  nfa.SetInitial(0);
  nfa.SetAccepting(2);
  const TapeLetter c1[2] = {kBlank, 0};
  const TapeLetter c2[2] = {0, 0};
  nfa.AddTransition(0, pack.Pack(c1), 1);
  nfa.AddTransition(1, pack.Pack(c2), 2);
  SyncRelation rel = Make(SyncRelation::Create(kAb, 2, std::move(nfa)));
  EXPECT_FALSE(rel.nfa().IsEmpty());          // Language-level non-empty...
  EXPECT_TRUE(rel.Normalized().nfa().IsEmpty());  // ...but no valid tuple.
  EXPECT_TRUE(rel.IsEmpty());
}

TEST(SyncRelationTest, WitnessIsShortestValidTuple) {
  const SyncRelation prefix = Make(PrefixRelation(kAb));
  const auto witness = prefix.Witness();
  ASSERT_TRUE(witness.has_value());
  // Shortest tuple in the prefix relation: (ε, ε).
  EXPECT_TRUE((*witness)[0].empty());
  EXPECT_TRUE((*witness)[1].empty());
}

TEST(SyncRelationTest, EmptinessOfIntersectionStyleRelation) {
  // {(w,w)} ∩-style: equality requires same first letters; build a relation
  // accepting only (a·u, b·u) — empty under canonical semantics.
  Result<TapePack> pack_r = TapePack::Create(2, 2);
  ASSERT_TRUE(pack_r.ok());
  const TapePack& pack = *pack_r;
  Nfa nfa(2);
  nfa.SetInitial(0);
  nfa.SetAccepting(1);
  const TapeLetter ab[2] = {0, 1};
  nfa.AddTransition(0, pack.Pack(ab), 1);
  const TapeLetter aa[2] = {0, 0};
  const TapeLetter bb[2] = {1, 1};
  nfa.AddTransition(1, pack.Pack(aa), 1);
  nfa.AddTransition(1, pack.Pack(bb), 1);
  SyncRelation rel = Make(SyncRelation::Create(kAb, 2, std::move(nfa)));
  EXPECT_FALSE(rel.IsEmpty());
  EXPECT_TRUE(rel.Contains(std::vector<Word>{{0, 1}, {1, 1}}));
  EXPECT_FALSE(rel.Contains(std::vector<Word>{{0, 1}, {0, 1}}));
}

TEST(SyncRelationTest, FormatTuple) {
  const SyncRelation eq = Make(EqualityRelation(kAb, 2));
  const std::vector<Word> tuple = {{0, 1}, {0}};
  EXPECT_EQ(eq.FormatTuple(tuple), "(\"ab\", \"a\")");
}

TEST(AlphabetCompatTest, PrefixCompatibility) {
  const Alphabet ab = Alphabet::OfChars("ab");
  const Alphabet abc = Alphabet::OfChars("abc");
  const Alphabet ba = Alphabet::OfChars("ba");
  EXPECT_TRUE(AlphabetsCompatible(ab, abc));
  EXPECT_TRUE(AlphabetsCompatible(ab, ab));
  EXPECT_FALSE(AlphabetsCompatible(abc, ab));
  EXPECT_FALSE(AlphabetsCompatible(ba, abc));
}

}  // namespace
}  // namespace ecrpq
