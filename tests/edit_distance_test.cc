// The bounded-lag edit-distance relation (the paper's "edit-distance at
// most 14" example), validated against the textbook Levenshtein DP.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "synchro/builders.h"

namespace ecrpq {
namespace {

int Levenshtein(const Word& u, const Word& v) {
  std::vector<std::vector<int>> dp(u.size() + 1,
                                   std::vector<int>(v.size() + 1));
  for (size_t i = 0; i <= u.size(); ++i) dp[i][0] = static_cast<int>(i);
  for (size_t j = 0; j <= v.size(); ++j) dp[0][j] = static_cast<int>(j);
  for (size_t i = 1; i <= u.size(); ++i) {
    for (size_t j = 1; j <= v.size(); ++j) {
      dp[i][j] = std::min({dp[i - 1][j] + 1, dp[i][j - 1] + 1,
                           dp[i - 1][j - 1] + (u[i - 1] != v[j - 1])});
    }
  }
  return dp[u.size()][v.size()];
}

Word RandomWordOf(Rng* rng, int max_len, int alphabet_size) {
  Word w(rng->Below(max_len + 1));
  for (Symbol& s : w) s = static_cast<Symbol>(rng->Below(alphabet_size));
  return w;
}

TEST(EditDistanceTest, ZeroBoundIsEquality) {
  const Alphabet ab = Alphabet::OfChars("ab");
  Result<SyncRelation> rel = EditDistanceAtMostRelation(ab, 0);
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_TRUE(rel->Contains(std::vector<Word>{{0, 1}, {0, 1}}));
  EXPECT_FALSE(rel->Contains(std::vector<Word>{{0, 1}, {0}}));
  EXPECT_FALSE(rel->Contains(std::vector<Word>{{0}, {1}}));
}

TEST(EditDistanceTest, HandCheckedCases) {
  const Alphabet ab = Alphabet::OfChars("ab");
  Result<SyncRelation> rel = EditDistanceAtMostRelation(ab, 1);
  ASSERT_TRUE(rel.ok()) << rel.status();
  // One substitution.
  EXPECT_TRUE(rel->Contains(std::vector<Word>{{0, 1}, {0, 0}}));
  // One insertion.
  EXPECT_TRUE(rel->Contains(std::vector<Word>{{0, 1}, {0, 1, 1}}));
  // One deletion.
  EXPECT_TRUE(rel->Contains(std::vector<Word>{{0, 1}, {1}}));
  // Two edits.
  EXPECT_FALSE(rel->Contains(std::vector<Word>{{0, 1}, {1, 0}}));
  EXPECT_FALSE(rel->Contains(std::vector<Word>{{0, 0, 0}, {1, 1, 1}}));
  // ε vs one letter / two letters.
  EXPECT_TRUE(rel->Contains(std::vector<Word>{{}, {0}}));
  EXPECT_FALSE(rel->Contains(std::vector<Word>{{}, {0, 0}}));
}

TEST(EditDistanceTest, SymmetricRelation) {
  const Alphabet ab = Alphabet::OfChars("ab");
  Result<SyncRelation> rel = EditDistanceAtMostRelation(ab, 2);
  ASSERT_TRUE(rel.ok());
  Rng rng(99);
  for (int i = 0; i < 150; ++i) {
    const Word u = RandomWordOf(&rng, 5, 2);
    const Word v = RandomWordOf(&rng, 5, 2);
    EXPECT_EQ(rel->Contains(std::vector<Word>{u, v}),
              rel->Contains(std::vector<Word>{v, u}));
  }
}

class EditDistancePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(EditDistancePropertyTest, AgreesWithLevenshteinDp) {
  const int bound = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  const Alphabet ab = Alphabet::OfChars("ab");
  Result<SyncRelation> rel = EditDistanceAtMostRelation(ab, bound);
  ASSERT_TRUE(rel.ok()) << rel.status();
  Rng rng(seed);
  for (int i = 0; i < 120; ++i) {
    Word u = RandomWordOf(&rng, 6, 2);
    Word v;
    if (rng.Chance(0.5)) {
      // Perturb u with a few random edits so the boundary is exercised.
      v = u;
      const int edits = static_cast<int>(rng.Below(bound + 2));
      for (int e = 0; e < edits; ++e) {
        const int op = static_cast<int>(rng.Below(3));
        const size_t pos = v.empty() ? 0 : rng.Below(v.size() + (op == 1));
        if (op == 0 && !v.empty()) {
          v[std::min(pos, v.size() - 1)] =
              static_cast<Symbol>(rng.Below(2));
        } else if (op == 1) {
          v.insert(v.begin() + std::min(pos, v.size()),
                   static_cast<Symbol>(rng.Below(2)));
        } else if (!v.empty()) {
          v.erase(v.begin() + std::min(pos, v.size() - 1));
        }
      }
    } else {
      v = RandomWordOf(&rng, 6, 2);
    }
    const bool expected = Levenshtein(u, v) <= bound;
    ASSERT_EQ(rel->Contains(std::vector<Word>{u, v}), expected)
        << "bound " << bound << ", |u|=" << u.size() << ", |v|=" << v.size();
  }
}

INSTANTIATE_TEST_SUITE_P(
    BoundsAndSeeds, EditDistancePropertyTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values<uint64_t>(1, 2, 3)));

TEST(EditDistanceTest, ThreeSymbolAlphabet) {
  const Alphabet abc = Alphabet::OfChars("abc");
  Result<SyncRelation> rel = EditDistanceAtMostRelation(abc, 2);
  ASSERT_TRUE(rel.ok());
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const Word u = RandomWordOf(&rng, 5, 3);
    const Word v = RandomWordOf(&rng, 5, 3);
    ASSERT_EQ(rel->Contains(std::vector<Word>{u, v}),
              Levenshtein(u, v) <= 2);
  }
}

}  // namespace
}  // namespace ecrpq
