#include <gtest/gtest.h>

#include "automata/ine.h"
#include "automata/ops.h"
#include "automata/random.h"
#include "automata/regex.h"
#include "common/rng.h"

namespace ecrpq {
namespace {

Nfa Compile(std::string_view pattern) {
  Alphabet alphabet = Alphabet::OfChars("ab");
  Result<Nfa> nfa = CompileRegex(pattern, &alphabet);
  EXPECT_TRUE(nfa.ok()) << nfa.status();
  return std::move(nfa).ValueOrDie();
}

TEST(IneTest, EmptyFamilyIsNonEmpty) {
  const IneResult r = IntersectionNonEmpty(std::vector<const Nfa*>{});
  EXPECT_TRUE(r.non_empty);
}

TEST(IneTest, SingleAutomaton) {
  const Nfa a = Compile("ab*");
  const IneResult r = IntersectionNonEmpty(std::vector<const Nfa*>{&a});
  EXPECT_TRUE(r.non_empty);
  EXPECT_EQ(r.witness, (std::vector<Label>{0}));  // "a" is shortest.
}

TEST(IneTest, NonEmptyIntersectionWithWitness) {
  const Nfa a = Compile("a*b");       // Ends with b, only a's before.
  const Nfa b = Compile("(a|b)*b");   // Ends with b.
  const Nfa c = Compile("aa(a|b)*");  // Starts with aa.
  const IneResult r =
      IntersectionNonEmpty(std::vector<const Nfa*>{&a, &b, &c});
  ASSERT_TRUE(r.non_empty);
  // Witness must be accepted by all three; shortest is "aab".
  EXPECT_EQ(r.witness, (std::vector<Label>{0, 0, 1}));
  for (const Nfa* nfa : {&a, &b, &c}) {
    EXPECT_TRUE(nfa->Accepts(r.witness));
  }
}

TEST(IneTest, EmptyIntersection) {
  const Nfa a = Compile("a+");
  const Nfa b = Compile("b+");
  const IneResult r = IntersectionNonEmpty(std::vector<const Nfa*>{&a, &b});
  EXPECT_FALSE(r.non_empty);
  EXPECT_FALSE(r.aborted);
}

TEST(IneTest, BudgetAborts) {
  // Lengths ≡ 0 (mod 3) ∩ lengths ≡ 1 (mod 5): the shortest witness has
  // length 6, reached only after > 2 product states. Budget 2 must abort.
  const Nfa a = Compile("(aaa)*");
  const Nfa b = Compile("a(aaaaa)*");
  IneOptions ine_options;
  ine_options.max_states = 2;
  const IneResult r =
      IntersectionNonEmpty(std::vector<const Nfa*>{&a, &b}, ine_options);
  EXPECT_FALSE(r.non_empty);
  EXPECT_TRUE(r.aborted);

  // With an ample budget the same instance has a length-6 witness.
  const IneResult full = IntersectionNonEmpty(std::vector<const Nfa*>{&a, &b});
  ASSERT_TRUE(full.non_empty);
  EXPECT_EQ(full.witness.size(), 6u);
}

TEST(IneTest, DfaOverload) {
  Dfa even(2, {0, 1});  // Even number of a's (label 0).
  even.SetInitial(0);
  even.SetAccepting(0);
  even.SetNext(0, 0, 1);
  even.SetNext(0, 1, 0);
  even.SetNext(1, 0, 0);
  even.SetNext(1, 1, 1);
  Dfa odd = even;
  odd.Complement();
  const IneResult empty =
      IntersectionNonEmpty(std::vector<const Dfa*>{&even, &odd});
  EXPECT_FALSE(empty.non_empty);
  const IneResult full =
      IntersectionNonEmpty(std::vector<const Dfa*>{&even, &even});
  EXPECT_TRUE(full.non_empty);
}

// Differential: INE verdict vs product-automaton emptiness.
class IneDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IneDifferentialTest, MatchesProductEmptiness) {
  Rng rng(GetParam());
  RandomNfaOptions options;
  options.num_states = 3 + static_cast<int>(rng.Below(5));
  options.alphabet_size = 2;
  options.density = 0.7;
  options.accept_prob = 0.2;
  options.force_accepting = false;
  const Nfa a = RandomNfa(&rng, options);
  const Nfa b = RandomNfa(&rng, options);
  const Nfa c = RandomNfa(&rng, options);

  const IneResult r =
      IntersectionNonEmpty(std::vector<const Nfa*>{&a, &b, &c});
  const Nfa product = Intersect(Intersect(a, b), c);
  EXPECT_EQ(r.non_empty, !product.IsEmpty()) << "seed " << GetParam();
  if (r.non_empty) {
    EXPECT_TRUE(a.Accepts(r.witness));
    EXPECT_TRUE(b.Accepts(r.witness));
    EXPECT_TRUE(c.Accepts(r.witness));
    // Shortest witness: compare length with the product's.
    const auto product_witness = product.ShortestWitness();
    ASSERT_TRUE(product_witness.has_value());
    EXPECT_EQ(r.witness.size(), product_witness->size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IneDifferentialTest,
                         ::testing::Range<uint64_t>(0, 30));

}  // namespace
}  // namespace ecrpq
