// Death tests for the CheckInvariants() layer: deliberately corrupt each
// structure and verify the invariant check aborts with a diagnostic.
//
// CheckInvariants() uses always-on ECRPQ_CHECK internally, so these tests
// are meaningful in every build mode, including NDEBUG builds where
// ECRPQ_DCHECK itself compiles out. In DCHECK-on builds some corruptions
// are caught even earlier (by the mutator's own DCHECK) — the corrupting
// call therefore lives inside EXPECT_DEATH together with the check.
#include <vector>

#include "automata/dfa.h"
#include "automata/nfa.h"
#include "cq/relation.h"
#include "gtest/gtest.h"
#include "structure/hypergraph.h"
#include "structure/tree_decomposition.h"
#include "structure/two_level_graph.h"
#include "synchro/sync_relation.h"

namespace ecrpq {
namespace {

TEST(NfaInvariantsDeathTest, OutOfRangeTransitionTargetDies) {
  EXPECT_DEATH(
      {
        Nfa nfa(2);
        nfa.AddTransition(0, 7, 5);  // State 5 does not exist.
        nfa.CheckInvariants();
      },
      "CHECK failed");
}

TEST(NfaInvariantsDeathTest, OutOfRangeInitialStateDies) {
  EXPECT_DEATH(
      {
        Nfa nfa(1);
        nfa.SetInitial(3);
        nfa.CheckInvariants();
      },
      "CHECK failed");
}

TEST(DfaInvariantsDeathTest, UnsortedLabelSetDies) {
  // In DCHECK-on builds the constructor itself dies; in NDEBUG builds the
  // explicit invariant call does.
  EXPECT_DEATH(Dfa(2, std::vector<Label>{5, 3}).CheckInvariants(),
               "CHECK failed");
}

TEST(DfaInvariantsDeathTest, DuplicateLabelsDie) {
  EXPECT_DEATH(Dfa(2, std::vector<Label>{3, 3}).CheckInvariants(),
               "CHECK failed");
}

TEST(DfaInvariantsDeathTest, OutOfRangeTableEntryDies) {
  EXPECT_DEATH(
      {
        Dfa dfa(2, std::vector<Label>{0, 1});
        dfa.SetNext(0, 0, 9);  // State 9 does not exist.
        dfa.CheckInvariants();
      },
      "CHECK failed");
}

TEST(SyncRelationInvariantsDeathTest, InvalidPackedLabelDies) {
  const Alphabet ab = Alphabet::OfChars("ab");
  Nfa nfa(1);
  nfa.SetInitial(0);
  nfa.SetAccepting(0);
  Result<SyncRelation> rel = SyncRelation::Create(ab, /*arity=*/1, nfa);
  ASSERT_TRUE(rel.ok()) << rel.status();
  // Arity 1 over |A|=2 packs into 2 bits; a label with higher bits set
  // violates the packing discipline.
  EXPECT_DEATH(
      {
        rel->mutable_nfa()->AddTransition(0, uint64_t{1} << 10, 0);
        rel->CheckInvariants();
      },
      "IsValidLabel|CHECK failed");
}

TEST(HypergraphInvariantsDeathTest, EdgeMemberOutOfRangeDies) {
  Hypergraph h;
  h.num_vertices = 3;
  h.edges = {{0, 5}};  // Vertex 5 does not exist.
  EXPECT_DEATH(h.CheckInvariants(), "CHECK failed");
}

TEST(HypergraphInvariantsDeathTest, UnsortedEdgeDies) {
  Hypergraph h;
  h.num_vertices = 3;
  h.edges = {{2, 0}};
  EXPECT_DEATH(h.CheckInvariants(), "CHECK failed");
}

TEST(TreeDecompositionInvariantsDeathTest, UnsortedBagDies) {
  TreeDecomposition td;
  td.bags = {{2, 1}};
  EXPECT_DEATH(td.CheckInvariants(), "not sorted");
}

TEST(TreeDecompositionInvariantsDeathTest, SelfLoopTreeEdgeDies) {
  TreeDecomposition td;
  td.bags = {{0}, {1}};
  td.edges = {{0, 0}};
  EXPECT_DEATH(td.CheckInvariants(), "self-loop");
}

TEST(TreeDecompositionInvariantsDeathTest, MissingEdgeCoverageDies) {
  // A decomposition that never puts the graph's single edge inside a bag.
  SimpleGraph graph(2);
  graph.AddEdge(0, 1);
  TreeDecomposition td;
  td.bags = {{0}, {1}};
  td.edges = {{0, 1}};
  EXPECT_DEATH(td.CheckInvariantsFor(graph), "invalid for graph");
}

TEST(TreeDecompositionInvariantsDeathTest, WidthOutOfSyncDies) {
  // Valid decomposition, but Width() is recomputed from bags — corrupting a
  // bag after the fact must be caught by the graph-aware check.
  SimpleGraph graph(2);
  graph.AddEdge(0, 1);
  TreeDecomposition td;
  td.bags = {{0, 1}, {0, 1, 1}};  // Second bag has a duplicate: invalid.
  td.edges = {{0, 1}};
  EXPECT_DEATH(td.CheckInvariantsFor(graph), "duplicate");
}

TEST(RelationInvariantsDeathTest, NonPositiveArityDies) {
  EXPECT_DEATH(Relation("r", 0), "CHECK failed");
}

// Non-death sanity companion: intact structures pass their checks.
TEST(InvariantsTest, IntactStructuresPass) {
  Nfa nfa(2);
  nfa.SetInitial(0);
  nfa.AddTransition(0, 7, 1);
  nfa.SetAccepting(1);
  nfa.CheckInvariants();

  Dfa dfa(2, std::vector<Label>{0, 1});
  dfa.SetNext(0, 0, 1);
  dfa.CheckInvariants();

  Hypergraph h;
  h.num_vertices = 3;
  h.edges = {{0, 1}, {1, 2}};
  h.CheckInvariants();

  SimpleGraph graph(2);
  graph.AddEdge(0, 1);
  TreeDecomposition td;
  td.bags = {{0, 1}};
  td.CheckInvariantsFor(graph);

  Relation rel("r", 2);
  rel.Add(std::vector<uint32_t>{1, 2});
  rel.Add(std::vector<uint32_t>{0, 1});
  rel.Add(std::vector<uint32_t>{1, 2});
  rel.Finalize();
  rel.CheckInvariants();
  EXPECT_EQ(rel.NumTuples(), 2u);
}

}  // namespace
}  // namespace ecrpq
