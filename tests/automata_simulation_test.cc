#include <gtest/gtest.h>

#include "automata/ops.h"
#include "automata/random.h"
#include "automata/regex.h"
#include "automata/simulation.h"
#include "common/rng.h"

namespace ecrpq {
namespace {

Nfa Compile(std::string_view pattern) {
  Alphabet alphabet = Alphabet::OfChars("ab");
  Result<Nfa> nfa = CompileRegex(pattern, &alphabet);
  EXPECT_TRUE(nfa.ok()) << nfa.status();
  return std::move(nfa).ValueOrDie();
}

TEST(SimulationTest, PreorderIsReflexiveAndRespectsAcceptance) {
  Rng rng(1);
  RandomNfaOptions options;
  options.num_states = 6;
  options.alphabet_size = 2;
  const Nfa nfa = RandomNfa(&rng, options);
  const auto sim = SimulationPreorder(nfa);
  const int n = static_cast<int>(sim.size());
  for (int s = 0; s < n; ++s) {
    EXPECT_TRUE(sim[s][s]);
    for (int t = 0; t < n; ++t) {
      if (sim[s][t] && nfa.IsAccepting(s)) {
        EXPECT_TRUE(nfa.IsAccepting(t));
      }
    }
  }
}

TEST(SimulationTest, PreorderIsTransitive) {
  Rng rng(2);
  RandomNfaOptions options;
  options.num_states = 6;
  options.alphabet_size = 2;
  for (int trial = 0; trial < 10; ++trial) {
    const Nfa nfa = RandomNfa(&rng, options);
    const auto sim = SimulationPreorder(nfa);
    const int n = static_cast<int>(sim.size());
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        if (!sim[a][b]) continue;
        for (int c = 0; c < n; ++c) {
          if (sim[b][c]) {
            EXPECT_TRUE(sim[a][c]) << a << b << c;
          }
        }
      }
    }
  }
}

TEST(SimulationTest, DuplicatedStatesMerge) {
  // Two parallel identical branches accepting "ab".
  Nfa nfa(5);
  nfa.SetInitial(0);
  nfa.AddTransition(0, 0, 1);
  nfa.AddTransition(1, 1, 2);
  nfa.AddTransition(0, 0, 3);
  nfa.AddTransition(3, 1, 4);
  nfa.SetAccepting(2);
  nfa.SetAccepting(4);
  const Nfa reduced = ReduceBySimulation(nfa);
  EXPECT_EQ(reduced.NumStates(), 3);
  EXPECT_TRUE(reduced.Accepts(std::vector<Label>{0, 1}));
  EXPECT_FALSE(reduced.Accepts(std::vector<Label>{0}));
}

TEST(SimulationTest, ThompsonRegexesShrink) {
  // Thompson construction is ε-heavy; the simulation quotient (after
  // ε-removal) should be much smaller.
  const Nfa nfa = Compile("(a|b)*(ab|ba)(a|b)*");
  const Nfa reduced = ReduceBySimulation(nfa);
  EXPECT_LT(reduced.NumStates(), nfa.NumStates());
}

class SimulationPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimulationPropertyTest, QuotientPreservesLanguage) {
  Rng rng(GetParam());
  RandomNfaOptions options;
  options.num_states = 4 + static_cast<int>(rng.Below(6));
  options.alphabet_size = 2;
  options.density = 1.0 + 0.2 * static_cast<double>(rng.Below(5));
  const Nfa nfa = RandomNfa(&rng, options);
  const Nfa reduced = ReduceBySimulation(nfa);
  EXPECT_LE(reduced.NumStates(), nfa.NumStates());
  EXPECT_TRUE(Equivalent(nfa, reduced, {0, 1})) << "seed " << GetParam();
  // Idempotent in size.
  EXPECT_EQ(ReduceBySimulation(reduced).NumStates(), reduced.NumStates());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulationPropertyTest,
                         ::testing::Range<uint64_t>(0, 25));

TEST(SimulationTest, EpsilonInputHandled) {
  const Nfa nfa = Compile("a*b|ab*");
  const Nfa reduced = ReduceBySimulation(nfa);
  EXPECT_TRUE(Equivalent(nfa, reduced, {0, 1}));
}

}  // namespace
}  // namespace ecrpq
