#include <gtest/gtest.h>

#include "eval/adaptive.h"
#include "eval/naive_eval.h"
#include "graphdb/dot.h"
#include "graphdb/generators.h"
#include "query/parser.h"
#include "workloads/query_gen.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

EcrpqQuery Parse(std::string_view text) {
  Result<EcrpqQuery> q = ParseEcrpq(text, kAb);
  EXPECT_TRUE(q.ok()) << q.status();
  return std::move(q).ValueOrDie();
}

TEST(AdaptiveTest, EasyInstanceStaysInPhaseOne) {
  const GraphDb db = CycleGraph(4, "ab");
  const EcrpqQuery q =
      Parse("q() := x -[p1]-> y, x -[p2]-> y, eqlen(p1, p2)");
  AdaptiveReport report;
  Result<EvalResult> r = EvaluateAdaptive(db, q, {}, &report);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->satisfiable);
  EXPECT_FALSE(report.fell_back);
  EXPECT_GT(report.phase1_budget, 0u);
}

TEST(AdaptiveTest, TinyBudgetFallsBackAndStaysCorrect) {
  const GraphDb db = CycleGraph(6, "ab");
  const EcrpqQuery q = Parse(
      "q(x, xp) := x -[p1]-> y, xp -[p2]-> y, eqlen(p1, p2),"
      " lang(/ababab(a|b)*/, p1)");
  AdaptiveOptions options;
  options.budget_factor = 0.001;  // Forces phase-1 abort.
  AdaptiveReport report;
  Result<EvalResult> r = EvaluateAdaptive(db, q, options, &report);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(report.fell_back);
  // Answers must still be exact: compare with the naive oracle.
  Result<EvalResult> naive = EvaluateNaive(db, q);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(r->satisfiable, naive->satisfiable);
  EXPECT_EQ(r->answers, naive->answers);
}

TEST(AdaptiveTest, PspaceRegimeFallsBackToUnboundedGeneric) {
  const GraphDb db = CycleGraph(3, "ab");
  const EcrpqQuery q = EqLenStarQuery(kAb, 3).ValueOrDie();
  AdaptiveOptions options;
  options.budget_factor = 0.001;
  AdaptiveReport report;
  Result<EvalResult> r = EvaluateAdaptive(db, q, options, &report);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(report.fell_back);
  EXPECT_EQ(report.fallback_engine, EngineChoice::kGeneric);
  EXPECT_FALSE(r->aborted);
  EXPECT_TRUE(r->satisfiable);
}

class AdaptiveDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AdaptiveDifferentialTest, MatchesNaiveUnderAnyBudget) {
  Rng rng(GetParam());
  GraphDb db(kAb);
  const int n = 2 + static_cast<int>(rng.Below(3));
  db.AddVertices(n);
  for (int e = 0; e < 2 * n; ++e) {
    db.AddEdge(static_cast<VertexId>(rng.Below(n)),
               static_cast<Symbol>(rng.Below(2)),
               static_cast<VertexId>(rng.Below(n)));
  }
  const EcrpqQuery q =
      Parse("q(x) := x -[p1]-> y, x -[p2]-> y, prefix(p1, p2)");
  AdaptiveOptions options;
  options.budget_factor = (GetParam() % 3 == 0) ? 0.001 : 64.0;
  Result<EvalResult> adaptive = EvaluateAdaptive(db, q, options);
  Result<EvalResult> naive = EvaluateNaive(db, q);
  ASSERT_TRUE(adaptive.ok()) << adaptive.status();
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(adaptive->satisfiable, naive->satisfiable) << GetParam();
  EXPECT_EQ(adaptive->answers, naive->answers) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdaptiveDifferentialTest,
                         ::testing::Range<uint64_t>(0, 12));

TEST(DotExportTest, ContainsVerticesEdgesAndNames) {
  GraphDb db(Alphabet::OfChars("ab"));
  db.AddVertices(2);
  db.AddEdge(0, "a", 1);
  DotOptions options;
  options.vertex_names = {"start", "end\"quoted\""};
  const std::string dot = GraphDbToDot(db, options);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("v0 -> v1 [label=\"a\"]"), std::string::npos);
  EXPECT_NE(dot.find("label=\"start\""), std::string::npos);
  EXPECT_NE(dot.find("\\\"quoted\\\""), std::string::npos);
}

}  // namespace
}  // namespace ecrpq
