// Custom relation registry in the query parser: named user relations
// (e.g. loaded from the synchro/io text format) usable as atoms.
#include <gtest/gtest.h>

#include "eval/generic_eval.h"
#include "graphdb/generators.h"
#include "query/parser.h"
#include "synchro/io.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

RelationRegistry MakeRegistry() {
  // {(a^n, b^n) : n >= 1}, shipped through the text format.
  Result<SyncRelation> rel = SyncRelationFromString(
      "relation arity 2\n"
      "alphabet a b\n"
      "states 2\n"
      "initial 0\n"
      "accepting 1\n"
      "trans 0 (a,b) 1\n"
      "trans 1 (a,b) 1\n");
  EXPECT_TRUE(rel.ok()) << rel.status();
  RelationRegistry registry;
  registry.emplace("anbn", std::make_shared<const SyncRelation>(
                               std::move(rel).ValueOrDie()));
  return registry;
}

TEST(ParserRegistryTest, CustomAtomParsesAndEvaluates) {
  const RelationRegistry registry = MakeRegistry();
  Result<EcrpqQuery> q = ParseEcrpq(
      "q(x) := x -[p1]-> y, x -[p2]-> z, anbn(p1, p2)", kAb, &registry);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->rel_atoms().size(), 1u);
  EXPECT_EQ(q->relation(0).arity(), 2);

  // Database: a-cycle at 0..2 and b-cycle at 3..5, bridged from 0 via both.
  GraphDb db(kAb);
  db.AddVertices(2);
  db.AddEdge(0, "a", 0);
  db.AddEdge(0, "b", 1);
  db.AddEdge(1, "b", 1);
  // p1 reads a^n (loop at 0), p2 reads b^n (0 -b-> 1 -b-> ...).
  Result<EvalResult> r = EvaluateGeneric(db, *q);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->satisfiable);
  ASSERT_FALSE(r->answers.empty());
  EXPECT_EQ(r->answers[0][0], 0u);  // Only x = 0 can emit both shapes.
}

TEST(ParserRegistryTest, UnknownNameStillErrorsWithoutRegistry) {
  EXPECT_FALSE(ParseEcrpq("q() := x -[p]-> y, anbn(p)", kAb).ok());
}

TEST(ParserRegistryTest, ArityMismatchCaughtByValidation) {
  const RelationRegistry registry = MakeRegistry();
  EXPECT_FALSE(
      ParseEcrpq("q() := x -[p]-> y, anbn(p)", kAb, &registry).ok());
}

TEST(ParserRegistryTest, BuiltinsStillWinOverRegistry) {
  // A registry entry named like a builtin is shadowed by... actually the
  // registry is consulted first for generic names; builtins with special
  // syntax (lang, hamming, edit) are matched before the registry path.
  const RelationRegistry registry = MakeRegistry();
  Result<EcrpqQuery> q = ParseEcrpq(
      "q() := x -[p1]-> y, x -[p2]-> y, eqlen(p1, p2)", kAb, &registry);
  ASSERT_TRUE(q.ok()) << q.status();
}

}  // namespace
}  // namespace ecrpq
