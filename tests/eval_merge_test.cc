#include <gtest/gtest.h>

#include "eval/merge.h"
#include "query/abstraction.h"
#include "query/parser.h"
#include "structure/measures.h"
#include "workloads/query_gen.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

TEST(PlanComponentsTest, GroupsByRelComponent) {
  // Chain of 4 with eqlen(p0, p1) and eqlen(p2, p3): two 2-tape components.
  Result<EcrpqQuery> q = ChainEqLenQuery(kAb, 4);
  ASSERT_TRUE(q.ok()) << q.status();
  const std::vector<ComponentPlan> plans = PlanComponents(*q);
  ASSERT_EQ(plans.size(), 2u);
  for (const ComponentPlan& plan : plans) {
    EXPECT_EQ(plan.paths.size(), 2u);
    EXPECT_EQ(plan.machine_components.size(), 1u);
    EXPECT_EQ(plan.sources.size(), 2u);
    EXPECT_EQ(plan.targets.size(), 2u);
  }
}

TEST(PlanComponentsTest, UnconstrainedPathGetsEmptyComponent) {
  Result<EcrpqQuery> q =
      ParseEcrpq("q() := x -[p1]-> y, y -[p2]-> z, eqlen(p1, p1a),"
                 " x -[p1a]-> y",
                 kAb);
  ASSERT_TRUE(q.ok()) << q.status();
  const std::vector<ComponentPlan> plans = PlanComponents(*q);
  ASSERT_EQ(plans.size(), 2u);
  // One component {p1, p1a} with the eqlen machine, one {p2} with none.
  bool found_pair = false, found_single = false;
  for (const ComponentPlan& plan : plans) {
    if (plan.paths.size() == 2) {
      EXPECT_EQ(plan.machine_components.size(), 1u);
      found_pair = true;
    } else {
      EXPECT_TRUE(plan.machine_components.empty());
      found_single = true;
    }
  }
  EXPECT_TRUE(found_pair);
  EXPECT_TRUE(found_single);
}

TEST(MergeTest, MergedQueryHasSingleHyperedgeComponents) {
  // A 3-path component glued by two binary atoms.
  Result<EcrpqQuery> q = ParseEcrpq(
      "q() := x -[p0]-> y, x -[p1]-> y, x -[p2]-> y,"
      " eqlen(p0, p1), eq(p1, p2)",
      kAb);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(CcHedge(QueryAbstraction(*q)), 2);

  Result<EcrpqQuery> merged = MergeQueryComponents(*q);
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_EQ(merged->rel_atoms().size(), 1u);
  EXPECT_EQ(merged->relation(0).arity(), 3);
  // After merging: cc_hedge = 1, same cc_vertex.
  const TwoLevelGraph g = QueryAbstraction(*merged);
  EXPECT_EQ(CcHedge(g), 1);
  EXPECT_EQ(CcVertex(g), 3);
  // Reachability structure unchanged.
  EXPECT_EQ(merged->reach_atoms().size(), q->reach_atoms().size());
}

TEST(MergeTest, MergePreservesVariableNames) {
  Result<EcrpqQuery> q = ExampleTwoOneQuery(kAb);
  ASSERT_TRUE(q.ok());
  Result<EcrpqQuery> merged = MergeQueryComponents(*q);
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_EQ(merged->NumNodeVars(), q->NumNodeVars());
  EXPECT_EQ(merged->NodeVarName(0), q->NodeVarName(0));
  EXPECT_EQ(merged->free_vars(), q->free_vars());
}

TEST(MergeTest, MergedRelationSemantics) {
  // eqlen(p0,p1) ∧ eq(p1,p2) joint: |w0| = |w1| and w1 = w2.
  Result<EcrpqQuery> q = ParseEcrpq(
      "q() := x -[p0]-> y, x -[p1]-> y, x -[p2]-> y,"
      " eqlen(p0, p1), eq(p1, p2)",
      kAb);
  ASSERT_TRUE(q.ok());
  Result<EcrpqQuery> merged = MergeQueryComponents(*q);
  ASSERT_TRUE(merged.ok());
  const SyncRelation& joint = merged->relation(0);
  // Tape order = sorted path variable ids = (p0, p1, p2).
  EXPECT_TRUE(joint.Contains(std::vector<Word>{{0, 0}, {1, 0}, {1, 0}}));
  EXPECT_FALSE(joint.Contains(std::vector<Word>{{0}, {1, 0}, {1, 0}}));
  EXPECT_FALSE(joint.Contains(std::vector<Word>{{0, 0}, {1, 0}, {1, 1}}));
}

}  // namespace
}  // namespace ecrpq
