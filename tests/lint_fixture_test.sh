#!/usr/bin/env bash
# Fixture tests for tools/ecrpq_lint: every project rule must fire on its
# seeded-violation fixture, stay quiet on the clean fixture, and the real
# tree must pass. Registered as ctest "lint_fixture_test" and run by
# tools/ci.sh stage 11.
#
# Usage: lint_fixture_test.sh <repo_root> <build_dir>
set -u

REPO_ROOT="${1:?usage: lint_fixture_test.sh <repo_root> <build_dir>}"
BUILD_DIR="${2:?usage: lint_fixture_test.sh <repo_root> <build_dir>}"
LINT="python3 ${REPO_ROOT}/tools/ecrpq_lint/ecrpq_lint.py --repo-root ${REPO_ROOT} --build-dir ${BUILD_DIR}"
FIXTURES="${REPO_ROOT}/tests/lint_fixtures"

failures=0
check() {  # check <name> <expected_rc> <expect_substring|-> <cmd...>
  local name="$1" expected_rc="$2" expect="$3"
  shift 3
  local out rc
  out="$("$@" 2>&1)"
  rc=$?
  if [ "${rc}" -ne "${expected_rc}" ]; then
    echo "FAIL ${name}: rc=${rc}, expected ${expected_rc}"
    echo "${out}" | sed 's/^/    /'
    failures=$((failures + 1))
    return
  fi
  if [ "${expect}" != "-" ] && ! grep -qF -- "${expect}" <<<"${out}"; then
    echo "FAIL ${name}: output missing '${expect}'"
    echo "${out}" | sed 's/^/    /'
    failures=$((failures + 1))
    return
  fi
  echo "ok   ${name}"
}

# --- Each rule fires on its seeded fixture. -------------------------------
check naked_mutex_fires 1 "[ecrpq-naked-mutex]" \
    ${LINT} "${FIXTURES}/bad_naked_mutex.cc"
check budget_poll_fires 1 "[ecrpq-budget-poll]" \
    ${LINT} --treat-as-engine bad_budget_poll.cc "${FIXTURES}/bad_budget_poll.cc"
check unordered_emission_fires 1 "[ecrpq-unordered-emission]" \
    ${LINT} "${FIXTURES}/bad_unordered_emission.cc"
check dcheck_side_effect_fires 1 "[ecrpq-dcheck-side-effects]" \
    ${LINT} "${FIXTURES}/bad_dcheck_side_effect.cc"
check raw_worklist_fires 1 "[ecrpq-raw-worklist]" \
    ${LINT} --treat-as-worklist-scope bad_raw_worklist.cc \
    "${FIXTURES}/bad_raw_worklist.cc"
check raw_determinize_fires 1 "[ecrpq-raw-determinize]" \
    ${LINT} --treat-as-determinize-scope bad_raw_determinize.cc \
    "${FIXTURES}/bad_raw_determinize.cc"
check raw_logging_fires 1 "[ecrpq-raw-logging]" \
    ${LINT} --treat-as-logging-scope bad_raw_logging.cc \
    "${FIXTURES}/bad_raw_logging.cc"

# --- Precision checks. ----------------------------------------------------
# NOLINT(ecrpq-naked-mutex) suppresses; the 4 unsuppressed sites remain.
n_naked="$(${LINT} --rule ecrpq-naked-mutex "${FIXTURES}/bad_naked_mutex.cc" \
    2>/dev/null | grep -c 'ecrpq-naked-mutex')"
if [ "${n_naked}" -eq 4 ]; then
  echo "ok   naked_mutex_nolint_suppression (4 findings, suppressed site quiet)"
else
  echo "FAIL naked_mutex_nolint_suppression: ${n_naked} findings, expected 4"
  failures=$((failures + 1))
fi
# budget-poll only applies to engine TUs: same file without --treat-as-engine
# is not a finding.
check budget_poll_scoped_to_engines 0 - \
    ${LINT} "${FIXTURES}/bad_budget_poll.cc"
# The aggregating (non-emitting) loop in the unordered fixture must not add
# a third finding.
n_unord="$(${LINT} "${FIXTURES}/bad_unordered_emission.cc" 2>/dev/null \
    | grep -c 'ecrpq-unordered-emission')"
if [ "${n_unord}" -eq 2 ]; then
  echo "ok   unordered_emission_precision (2 findings, aggregation loop quiet)"
else
  echo "FAIL unordered_emission_precision: ${n_unord} findings, expected 2"
  failures=$((failures + 1))
fi
# raw-worklist only applies inside src/eval + src/graphdb (or files forced
# into scope): the same fixture without --treat-as-worklist-scope is quiet.
check raw_worklist_scoped_to_hot_paths 0 - \
    ${LINT} --rule ecrpq-raw-worklist "${FIXTURES}/bad_raw_worklist.cc"
# 2 seeded findings; the NOLINT'd 0/1-BFS deque stays quiet.
n_worklist="$(${LINT} --treat-as-worklist-scope bad_raw_worklist.cc \
    "${FIXTURES}/bad_raw_worklist.cc" 2>/dev/null \
    | grep -c 'ecrpq-raw-worklist')"
if [ "${n_worklist}" -eq 2 ]; then
  echo "ok   raw_worklist_precision (2 findings, NOLINT'd BFS deque quiet)"
else
  echo "FAIL raw_worklist_precision: ${n_worklist} findings, expected 2"
  failures=$((failures + 1))
fi
# raw-determinize only applies inside src/eval + src/graphdb (or files
# forced into scope): the same fixture without the scope flag is quiet.
check raw_determinize_scoped_to_hot_paths 0 - \
    ${LINT} --rule ecrpq-raw-determinize "${FIXTURES}/bad_raw_determinize.cc"
# 2 seeded findings; DeterminizeCached( and the NOLINT'd one-shot stay quiet.
n_determinize="$(${LINT} --treat-as-determinize-scope bad_raw_determinize.cc \
    "${FIXTURES}/bad_raw_determinize.cc" 2>/dev/null \
    | grep -c 'ecrpq-raw-determinize')"
if [ "${n_determinize}" -eq 2 ]; then
  echo "ok   raw_determinize_precision (2 findings, cached/NOLINT'd quiet)"
else
  echo "FAIL raw_determinize_precision: ${n_determinize} findings, expected 2"
  failures=$((failures + 1))
fi
# raw-logging only applies inside src/service + src/eval (or files forced
# into scope): the same fixture without the scope flag is quiet.
check raw_logging_scoped_to_service_eval 0 - \
    ${LINT} --rule ecrpq-raw-logging "${FIXTURES}/bad_raw_logging.cc"
# 3 seeded findings; the NOLINT'd last-resort write, the FILE*-typed log
# stream and the snprintf-into-buffer all stay quiet.
n_logging="$(${LINT} --treat-as-logging-scope bad_raw_logging.cc \
    "${FIXTURES}/bad_raw_logging.cc" 2>/dev/null \
    | grep -c 'ecrpq-raw-logging')"
if [ "${n_logging}" -eq 3 ]; then
  echo "ok   raw_logging_precision (3 findings, FILE*/snprintf/NOLINT quiet)"
else
  echo "FAIL raw_logging_precision: ${n_logging} findings, expected 3"
  failures=$((failures + 1))
fi
# Pure DCHECK conditions in the dcheck fixture stay quiet (3 seeded, 2 clean).
n_dcheck="$(${LINT} "${FIXTURES}/bad_dcheck_side_effect.cc" 2>/dev/null \
    | grep -c 'ecrpq-dcheck-side-effects')"
if [ "${n_dcheck}" -eq 3 ]; then
  echo "ok   dcheck_side_effect_precision (3 findings, pure conditions quiet)"
else
  echo "FAIL dcheck_side_effect_precision: ${n_dcheck} findings, expected 3"
  failures=$((failures + 1))
fi

# --- Negative control + the real tree. ------------------------------------
check clean_fixture_passes 0 - ${LINT} "${FIXTURES}/clean.cc"
check full_tree_passes 0 - ${LINT}

# --- Annotation misuse: compile-fail under clang, well-formed under GCC. ---
# bad_annotation_misuse.cc must be ordinary valid C++ when the annotations
# are no-ops (GCC / plain clang)...
if command -v g++ >/dev/null 2>&1; then
  check annotation_noop_compiles 0 - \
      g++ -std=c++20 -fsyntax-only -I "${REPO_ROOT}/src" \
      "${FIXTURES}/bad_annotation_misuse.cc"
fi
# ...and must FAIL to compile once -Wthread-safety is promoted to errors —
# the proof that the ECRPQ_ANALYZE=thread-safety mode has teeth.
if command -v clang++ >/dev/null 2>&1; then
  if clang++ -std=c++20 -fsyntax-only -I "${REPO_ROOT}/src" \
      -Wthread-safety -Wthread-safety-beta \
      -Werror=thread-safety -Werror=thread-safety-beta \
      "${FIXTURES}/bad_annotation_misuse.cc" >/dev/null 2>&1; then
    echo "FAIL annotation_misuse_compile_fail: misuse fixture compiled clean"
    failures=$((failures + 1))
  else
    echo "ok   annotation_misuse_compile_fail"
  fi
else
  echo "skip annotation_misuse_compile_fail (clang++ not installed; the"
  echo "     thread-safety analysis only exists in clang — degrade policy)"
fi

if [ "${failures}" -ne 0 ]; then
  echo "lint_fixture_test: ${failures} failure(s)"
  exit 1
fi
echo "lint_fixture_test: all checks passed"
