// Engine matrix: every engine × every canonical workload family × several
// canonical databases, cross-checked pairwise. Structured coverage that
// complements the randomized differential suites.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/adaptive.h"
#include "eval/crpq_eval.h"
#include "eval/generic_eval.h"
#include "eval/planner.h"
#include "eval/reduce_to_cq.h"
#include "graphdb/generators.h"
#include "graphdb/tuple_search.h"
#include "workloads/db_gen.h"
#include "workloads/query_gen.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

std::vector<GraphDb> CanonicalDbs() {
  Rng rng(2022);
  std::vector<GraphDb> dbs;
  dbs.push_back(CycleGraph(5, "ab"));
  dbs.push_back(PathGraph(6, "aab"));
  dbs.push_back(LayeredDag(&rng, 3, 3, 2, 2));
  dbs.push_back(RandomGraph(&rng, 6, 2.0, 2));
  return dbs;
}

struct NamedQuery {
  const char* name;
  EcrpqQuery query;
};

std::vector<NamedQuery> CanonicalQueries() {
  std::vector<NamedQuery> queries;
  queries.push_back({"chain", ChainEqLenQuery(kAb, 4).ValueOrDie()});
  queries.push_back({"clique", CliqueCrpqQuery(kAb, 3, "a*").ValueOrDie()});
  queries.push_back({"star", EqLenStarQuery(kAb, 2).ValueOrDie()});
  queries.push_back({"eqstar", EqualityStarQuery(kAb, 2).ValueOrDie()});
  queries.push_back({"example21", ExampleTwoOneQuery(kAb).ValueOrDie()});
  return queries;
}

using MatrixParam = std::tuple<int, int>;  // (query index, db index).

class EngineMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(EngineMatrixTest, AllApplicableEnginesAgree) {
  const auto [qi, di] = GetParam();
  const NamedQuery named = std::move(CanonicalQueries()[qi]);
  const GraphDb db = std::move(CanonicalDbs()[di]);

  const EvalResult generic = EvaluateGeneric(db, named.query).ValueOrDie();
  SCOPED_TRACE(std::string(named.name) + " on db " + std::to_string(di));

  const EvalResult planned = EvaluatePlanned(db, named.query).ValueOrDie();
  EXPECT_EQ(generic.satisfiable, planned.satisfiable);
  EXPECT_EQ(generic.answers, planned.answers);

  const EvalResult adaptive = EvaluateAdaptive(db, named.query).ValueOrDie();
  EXPECT_EQ(generic.answers, adaptive.answers);

  const EvalResult via_cq_td =
      EvaluateViaCqReduction(db, named.query, true).ValueOrDie();
  EXPECT_EQ(generic.answers, via_cq_td.answers);
  const EvalResult via_cq_bt =
      EvaluateViaCqReduction(db, named.query, false).ValueOrDie();
  EXPECT_EQ(generic.answers, via_cq_bt.answers);

  if (named.query.IsCrpq()) {
    const EvalResult crpq = EvaluateCrpq(db, named.query).ValueOrDie();
    EXPECT_EQ(generic.answers, crpq.answers);
  } else {
    EXPECT_FALSE(EvaluateCrpq(db, named.query).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EngineMatrixTest,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 4)));

TEST(EngineLimitsTest, OversizedComponentReportsStatus) {
  // Relation construction already trips the letter-universe cap for huge
  // arities — a Status, not a crash.
  Result<EcrpqQuery> star31 = EqLenStarQuery(kAb, 31);
  EXPECT_FALSE(star31.ok());
  EXPECT_EQ(star31.status().code(), StatusCode::kCapacityExceeded);

  // The searcher's own limit (the 30-bit finished-tape mask) also surfaces
  // as a Status: a 31-tape unconstrained component is a valid machine but
  // an invalid search space.
  const GraphDb db = CycleGraph(2, "ab");
  Result<JoinMachine> machine = JoinMachine::Create(db.alphabet(), {}, 31);
  ASSERT_TRUE(machine.ok()) << machine.status();
  Result<TupleSearcher> searcher = TupleSearcher::Create(&db, &*machine);
  EXPECT_FALSE(searcher.ok());
  EXPECT_EQ(searcher.status().code(), StatusCode::kCapacityExceeded);
}

}  // namespace
}  // namespace ecrpq
