// Lint fixture: a file that follows every project rule — the negative
// control for tests/lint_fixture_test.sh. Never compiled (the includes are
// shaped like the real tree but resolution is irrelevant to the linter).
#include <algorithm>
#include <vector>

#include "common/annotations.h"
#include "common/dcheck.h"
#include "common/obs.h"

namespace fixture {

class Accumulator {
 public:
  void Add(int x) {
    ecrpq::MutexLock lock(mutex_);  // annotated wrapper, not std::lock_guard
    values_.push_back(x);
  }

  // Engine-shaped loop that polls the budget every iteration and emits in
  // sorted (deterministic) order.
  void Emit(ecrpq::obs::Session* obs, std::vector<int>& answers) {
    std::vector<int> snapshot;
    {
      ecrpq::MutexLock lock(mutex_);
      snapshot = values_;
    }
    std::sort(snapshot.begin(), snapshot.end());
    for (int v : snapshot) {
      if (obs != nullptr && obs->CheckBudget()) break;
      ECRPQ_DCHECK(v >= 0);  // pure condition: no side effects
      answers.push_back(v);
    }
  }

 private:
  ecrpq::Mutex mutex_;
  std::vector<int> values_ ECRPQ_GUARDED_BY(mutex_);
};

}  // namespace fixture
