// Lint fixture: an "engine" translation unit (passed to ecrpq_lint via
// --treat-as-engine) whose search loop never polls Session::CheckBudget —
// seeds ecrpq-budget-poll. Never compiled.
#include <cstddef>
#include <vector>

namespace fixture {

// A product-search loop with no budget poll anywhere in the TU: on a large
// instance this runs to completion no matter what timeout or memory budget
// the session armed.
std::vector<size_t> EnumerateProducts(size_t n, size_t m) {
  std::vector<size_t> out;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      out.push_back(i * m + j);
    }
  }
  return out;
}

}  // namespace fixture
