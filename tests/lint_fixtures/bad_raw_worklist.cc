// Lint fixture: an evaluation-hot-path translation unit (passed to
// ecrpq_lint via --treat-as-worklist-scope) that hand-rolls its fan-out
// worklists from std::deque / std::queue instead of going through the
// work-stealing runtime (common/worklist.h) — seeds ecrpq-raw-worklist.
// Never compiled.
#include <cstddef>
#include <cstdint>
#include <deque>
#include <queue>

namespace fixture {

// Finding 1: a deque used as a shared worklist of chunk indices.
size_t DrainChunks(size_t n) {
  std::deque<uint64_t> worklist;
  for (uint64_t i = 0; i < n; ++i) worklist.push_back(i);
  size_t drained = 0;
  while (!worklist.empty()) {
    worklist.pop_front();
    ++drained;
  }
  return drained;
}

// Finding 2: a queue-typed frontier for a plain (unordered) fan-out.
size_t DrainFrontier(size_t n) {
  std::queue<uint64_t> frontier;
  for (uint64_t i = 0; i < n; ++i) frontier.push(i);
  size_t drained = 0;
  while (!frontier.empty()) {
    frontier.pop();
    ++drained;
  }
  return drained;
}

// Suppressed: a queue whose pop order IS the algorithm (0/1-BFS) — the
// legitimate use the rule's NOLINT escape hatch exists for.
size_t ShortestPathOrder(size_t n) {
  // NOLINTNEXTLINE(ecrpq-raw-worklist): 0/1-BFS needs deque pop order.
  std::deque<uint64_t> queue;
  for (uint64_t i = 0; i < n; ++i) queue.push_front(i);
  return queue.size();
}

}  // namespace fixture
