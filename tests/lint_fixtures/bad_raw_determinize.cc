// Lint fixture: an evaluation-hot-path translation unit (passed to
// ecrpq_lint via --treat-as-determinize-scope) that calls Determinize(
// directly instead of going through AutomatonInterner::DeterminizeCached
// (automata/interner.h) — seeds ecrpq-raw-determinize. Never compiled.
#include <cstddef>

namespace fixture {

struct Nfa {};
struct Dfa {};

// Finding 1: a raw subset construction in a per-atom loop.
size_t MaterializeAtoms(size_t n) {
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    Nfa lang;
    Dfa dfa = Determinize(lang);
    (void)dfa;
    ++total;
  }
  return total;
}

// Finding 2: raw determinization spelled with interior whitespace — the
// rule matches `Determinize (` too.
size_t MaterializeOne() {
  Nfa lang;
  Dfa dfa = Determinize (lang);
  (void)dfa;
  return 1;
}

// Quiet: the cached entry point — `Determinize` inside `DeterminizeCached`
// has no identifier boundary, so the rule must not fire here.
size_t MaterializeCached() {
  Nfa lang;
  Dfa dfa = DeterminizeCached(lang);
  (void)dfa;
  return 1;
}

// Suppressed: a deliberately uncached one-shot automaton — the legitimate
// use the rule's NOLINT escape hatch exists for.
size_t MaterializeOneShot() {
  Nfa lang;
  // NOLINTNEXTLINE(ecrpq-raw-determinize): one-shot, not worth cache space.
  Dfa dfa = Determinize(lang);
  (void)dfa;
  return 1;
}

}  // namespace fixture
