// Compile-fail fixture: touches ECRPQ_GUARDED_BY state without holding the
// guarding capability. Under clang with -Wthread-safety promoted to errors
// (the ECRPQ_ANALYZE=thread-safety mode) this file must NOT compile;
// tests/lint_fixture_test.sh asserts that, and skips when clang is absent.
// Under plain GCC the annotations are no-ops and the file is well-formed —
// which is exactly why the fixture exists: it proves the analysis has teeth.
#include <vector>

#include "common/annotations.h"

namespace fixture {

class Counter {
 public:
  // Misuse 1: writes guarded state with no lock held.
  void BadIncrement() { ++count_; }

  // Misuse 2: annotated as requiring the lock, but the caller below invokes
  // it without acquiring.
  void IncrementLocked() ECRPQ_REQUIRES(mutex_) { ++count_; }
  void BadCaller() { IncrementLocked(); }

  // Misuse 3: acquires but never releases (scoped analysis catches the
  // un-released capability at end of function).
  void BadLeak() {
    mutex_.Lock();
    ++count_;
  }

  // Correct usage, for contrast: this one is fine under the analysis.
  void GoodIncrement() {
    ecrpq::MutexLock lock(mutex_);
    ++count_;
  }

 private:
  ecrpq::Mutex mutex_;
  int count_ ECRPQ_GUARDED_BY(mutex_) = 0;
};

}  // namespace fixture
