// Lint fixture: seeds ecrpq-dcheck-side-effects — DCHECK conditions that
// mutate state, so release builds (where dchecks compile out) behave
// differently. Never compiled.
#include <set>

#define ECRPQ_DCHECK(cond) FixtureSink(cond)
void FixtureSink(bool);

namespace fixture {

std::set<int> g_seen;

void Observe(int x, int& count) {
  ECRPQ_DCHECK(g_seen.insert(x).second);  // violation: mutating call
  ECRPQ_DCHECK(count++ < 100);            // violation: ++ mutates state
  ECRPQ_DCHECK((count = 0) == 0);         // violation: assignment
  ECRPQ_DCHECK(count < 100);              // clean: pure read
  ECRPQ_DCHECK(g_seen.count(x) == 1);     // clean: const call
}

}  // namespace fixture
