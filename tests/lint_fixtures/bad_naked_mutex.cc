// Lint fixture: seeds ecrpq-naked-mutex violations. Never compiled; input
// for tests/lint_fixture_test.sh only.
#include <condition_variable>
#include <mutex>
#include <vector>

namespace fixture {

std::mutex g_registry_mutex;  // violation: naked std::mutex
std::condition_variable g_cv;  // violation: naked std::condition_variable

struct Registry {
  std::vector<int> items;
  void Add(int x) {
    std::lock_guard<std::mutex> lock(g_registry_mutex);  // violation
    items.push_back(x);
  }
  void AddUnique(int x) {
    std::unique_lock<std::mutex> lock(g_registry_mutex);  // violation
    items.push_back(x);
  }
};

// A suppressed occurrence must NOT fire (NOLINT with justification):
// NOLINTNEXTLINE(ecrpq-naked-mutex) -- fixture: exercising the suppression.
std::mutex g_suppressed_mutex;

}  // namespace fixture
