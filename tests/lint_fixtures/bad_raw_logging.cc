// Lint fixture: seeds ecrpq-raw-logging violations. Never compiled; input
// for tests/lint_fixture_test.sh only.
#include <cstdio>
#include <iostream>

namespace fixture {

void HandleSlowQuery(const char* plan) {
  std::fprintf(stderr, "slow plan: %s\n", plan);  // violation: qualified
}

void WarnOnRetry() {
  fprintf(stderr, "retrying\n");  // violation: unqualified spelling
}

void DumpVerdict(int cc_vertex) {
  std::cerr << "cc_vertex=" << cc_vertex << "\n";  // violation: std::cerr
}

// A suppressed occurrence must NOT fire (NOLINT with justification):
// NOLINTNEXTLINE(ecrpq-raw-logging) -- fixture: signal-handler-style path.
void LastResort() { std::fprintf(stderr, "fatal\n"); }

// Writes that are not the stderr stream must NOT fire: a real log FILE*
// and formatting into a buffer are both fine.
void WriteEventRecord(std::FILE* event_log, char* buf, int n) {
  std::fprintf(event_log, "{\"event\":\"query\"}\n");
  std::snprintf(buf, static_cast<size_t>(n), "%d", 42);
}

}  // namespace fixture
