// Lint fixture: seeds ecrpq-unordered-emission — answer emission fed
// directly by hash-order iteration. Never compiled.
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

std::unordered_set<int> g_reached;

// violation: hash iteration order leaks into the emitted answer sequence,
// breaking the byte-identical-at-every-pool-size determinism contract.
void EmitReached(std::vector<int>& answers) {
  for (int v : g_reached) {
    answers.push_back(v);
  }
}

// violation: same hazard through a map and an emission callback.
void EmitPairs(const std::unordered_map<int, int>& memo,
               void (*on_answer)(int, int)) {
  for (const auto& kv : memo) {
    on_answer(kv.first, kv.second);
  }
}

// Clean: iteration that only aggregates (no emission) is fine — order does
// not reach the caller.
int SumReached() {
  int total = 0;
  for (int v : g_reached) {
    total += v;
  }
  return total;
}

}  // namespace fixture
