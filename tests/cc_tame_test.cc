// Lemma A.1 as code, plus the Lemma 5.2 treewidth relation between
// G_collapse and G^node.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "reductions/cc_tame.h"
#include "reductions/ine_to_ecrpq.h"
#include "structure/derived.h"
#include "structure/measures.h"
#include "structure/treewidth.h"

namespace ecrpq {
namespace {

TEST(CcTameTest, StarGeneratorYieldsVertexWitness) {
  // f(k) = one k-ary hyperedge: cc_vertex(f(k)) = k.
  const ShapeGenerator star = [](int k) { return IneWitnessShapeCase1(k); };
  for (int n : {1, 2, 4, 7}) {
    Result<BigComponentWitness> witness = FindBigComponentWitness(star, n);
    ASSERT_TRUE(witness.ok()) << witness.status();
    EXPECT_TRUE(witness->by_vertices);
    const auto components = RelComponents(witness->shape);
    EXPECT_GE(static_cast<int>(
                  components[witness->component_index].edges.size()),
              n);
  }
}

TEST(CcTameTest, FanGeneratorYieldsHyperedgeWitness) {
  // f(k) = one edge with k singleton hyperedges: cc_hedge(f(k)) = k but
  // cc_vertex = 1.
  const ShapeGenerator fan = [](int k) { return IneWitnessShapeCase2(k); };
  for (int n : {2, 3, 5}) {
    Result<BigComponentWitness> witness = FindBigComponentWitness(fan, n);
    ASSERT_TRUE(witness.ok()) << witness.status();
    EXPECT_FALSE(witness->by_vertices);
  }
}

TEST(CcTameTest, ChainGeneratorYieldsVertexWitness) {
  const ShapeGenerator chain = [](int k) { return IneWitnessShapeChain(k); };
  Result<BigComponentWitness> witness = FindBigComponentWitness(chain, 4);
  ASSERT_TRUE(witness.ok()) << witness.status();
  EXPECT_TRUE(witness->by_vertices);
}

TEST(CcTameTest, ViolatingGeneratorDetected) {
  // A "class" of bounded measures: f(k) ignores k.
  const ShapeGenerator flat = [](int) { return IneWitnessShapeCase1(2); };
  EXPECT_FALSE(FindBigComponentWitness(flat, 5).ok());
}

// Lemma 5.2 (contrapositive form): with cc_vertex(G) <= c,
// tw(G^node) <= (tw(G_collapse) + 1) · 2c - 1.
class Lemma52Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Lemma52Test, CollapseTreewidthBoundsNodeTreewidth) {
  Rng rng(GetParam());
  TwoLevelGraph g;
  g.num_vertices = 3 + static_cast<int>(rng.Below(4));
  const int num_edges = 2 + static_cast<int>(rng.Below(5));
  for (int e = 0; e < num_edges; ++e) {
    g.first_edges.emplace_back(static_cast<int>(rng.Below(g.num_vertices)),
                               static_cast<int>(rng.Below(g.num_vertices)));
  }
  const int num_hedges = 1 + static_cast<int>(rng.Below(3));
  for (int h = 0; h < num_hedges; ++h) {
    std::vector<int> members;
    for (int e = 0; e < num_edges; ++e) {
      if (rng.Chance(0.4)) members.push_back(e);
    }
    if (members.empty()) members.push_back(static_cast<int>(
        rng.Below(num_edges)));
    g.hyperedges.push_back(std::move(members));
  }
  ASSERT_TRUE(g.Validate().ok());

  const int ccv = CcVertex(g);
  const SimpleGraph node = NodeGraph(g);
  const SimpleGraph collapse = CollapseGraph(g).Underlying();
  Result<TreewidthResult> tw_node = TreewidthExact(node);
  Result<TreewidthResult> tw_collapse = TreewidthExact(collapse);
  ASSERT_TRUE(tw_node.ok());
  ASSERT_TRUE(tw_collapse.ok());
  EXPECT_LE(tw_node->width, (tw_collapse->width + 1) * 2 * ccv - 1)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma52Test,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace ecrpq
