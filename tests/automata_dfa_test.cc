#include <gtest/gtest.h>

#include "automata/dfa.h"
#include "automata/ops.h"
#include "automata/random.h"
#include "common/rng.h"

namespace ecrpq {
namespace {

// Even number of 0s over {0, 1}.
Dfa EvenZeros() {
  Dfa dfa(2, {0, 1});
  dfa.SetInitial(0);
  dfa.SetAccepting(0);
  dfa.SetNext(0, 0, 1);
  dfa.SetNext(0, 1, 0);
  dfa.SetNext(1, 0, 0);
  dfa.SetNext(1, 1, 1);
  return dfa;
}

TEST(DfaTest, AcceptsParity) {
  const Dfa dfa = EvenZeros();
  EXPECT_TRUE(dfa.Accepts(std::vector<Label>{}));
  EXPECT_TRUE(dfa.Accepts(std::vector<Label>{0, 0}));
  EXPECT_TRUE(dfa.Accepts(std::vector<Label>{1, 0, 1, 0}));
  EXPECT_FALSE(dfa.Accepts(std::vector<Label>{0}));
  EXPECT_FALSE(dfa.Accepts(std::vector<Label>{1, 0}));
}

TEST(DfaTest, RejectsForeignLabels) {
  const Dfa dfa = EvenZeros();
  EXPECT_FALSE(dfa.Accepts(std::vector<Label>{7}));
}

TEST(DfaTest, ComplementFlips) {
  Dfa dfa = EvenZeros();
  dfa.Complement();
  EXPECT_FALSE(dfa.Accepts(std::vector<Label>{}));
  EXPECT_TRUE(dfa.Accepts(std::vector<Label>{0}));
}

TEST(DfaTest, ToNfaPreservesLanguage) {
  const Dfa dfa = EvenZeros();
  const Nfa nfa = dfa.ToNfa();
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const auto word = RandomWord(&rng, static_cast<int>(rng.Below(8)), 2);
    EXPECT_EQ(dfa.Accepts(word), nfa.Accepts(word));
  }
}

TEST(DfaTest, MinimizeMergesEquivalentStates) {
  // A 4-state DFA for "ends with 1" with redundant states.
  Dfa dfa(4, {0, 1});
  dfa.SetInitial(0);
  // States 0/2 equivalent ("last was 0 or start"), 1/3 equivalent.
  dfa.SetNext(0, 0, 2);
  dfa.SetNext(0, 1, 1);
  dfa.SetNext(2, 0, 0);
  dfa.SetNext(2, 1, 3);
  dfa.SetNext(1, 0, 2);
  dfa.SetNext(1, 1, 3);
  dfa.SetNext(3, 0, 0);
  dfa.SetNext(3, 1, 1);
  dfa.SetAccepting(1);
  dfa.SetAccepting(3);
  const Dfa min = dfa.Minimize();
  EXPECT_EQ(min.NumStates(), 2);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto word = RandomWord(&rng, static_cast<int>(rng.Below(9)), 2);
    EXPECT_EQ(dfa.Accepts(word), min.Accepts(word));
  }
}

TEST(DfaTest, MinimizeDropsUnreachable) {
  Dfa dfa(3, {0});
  dfa.SetInitial(0);
  dfa.SetNext(0, 0, 0);
  dfa.SetNext(1, 0, 2);  // 1, 2 unreachable.
  dfa.SetNext(2, 0, 1);
  dfa.SetAccepting(2);
  const Dfa min = dfa.Minimize();
  EXPECT_EQ(min.NumStates(), 1);
  EXPECT_TRUE(min.ToNfa().IsEmpty());
}

class MinimizePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MinimizePropertyTest, MinimizePreservesLanguageAndShrinks) {
  Rng rng(GetParam());
  RandomDfaOptions options;
  options.num_states = 3 + static_cast<int>(rng.Below(10));
  options.alphabet_size = 2;
  const Dfa dfa = RandomDfa(&rng, options);
  const Dfa min = dfa.Minimize();
  EXPECT_LE(min.NumStates(), dfa.NumStates());
  for (int i = 0; i < 300; ++i) {
    const auto word = RandomWord(&rng, static_cast<int>(rng.Below(10)), 2);
    ASSERT_EQ(dfa.Accepts(word), min.Accepts(word))
        << "seed " << GetParam() << " differs on a word of length "
        << word.size();
  }
  // Minimizing twice is idempotent in size.
  EXPECT_EQ(min.Minimize().NumStates(), min.NumStates());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizePropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace ecrpq
