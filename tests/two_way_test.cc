// Two-way navigation (C2RPQ support): inverse-closed databases + <name>
// symbol literals in regexes.
#include <gtest/gtest.h>

#include "automata/regex.h"
#include "eval/generic_eval.h"
#include "eval/naive_eval.h"
#include "graphdb/generators.h"
#include "query/parser.h"

namespace ecrpq {
namespace {

TEST(WithInversesTest, AddsReverseEdges) {
  GraphDb db(Alphabet::OfChars("ab"));
  db.AddVertices(3);
  db.AddEdge(0, "a", 1);
  db.AddEdge(1, "b", 2);
  const GraphDb two_way = WithInverses(db);
  EXPECT_EQ(two_way.alphabet().size(), 4);  // a, b, a~, b~.
  EXPECT_EQ(two_way.NumEdges(), 4u);
  const Symbol a_inv = *two_way.alphabet().Find("a~");
  const Symbol b_inv = *two_way.alphabet().Find("b~");
  EXPECT_TRUE(two_way.HasEdge(1, a_inv, 0));
  EXPECT_TRUE(two_way.HasEdge(2, b_inv, 1));
  EXPECT_TRUE(two_way.HasEdge(0, *two_way.alphabet().Find("a"), 1));
}

TEST(RegexSymbolLiteralTest, MultiCharSymbols) {
  Alphabet alphabet;
  Result<Nfa> nfa = CompileRegex("<a~>*b", &alphabet);
  ASSERT_TRUE(nfa.ok()) << nfa.status();
  const Symbol a_inv = *alphabet.Find("a~");
  const Symbol b = *alphabet.Find("b");
  EXPECT_TRUE(nfa->Accepts(std::vector<Label>{a_inv, a_inv, b}));
  EXPECT_TRUE(nfa->Accepts(std::vector<Label>{b}));
  EXPECT_FALSE(nfa->Accepts(std::vector<Label>{a_inv}));
  EXPECT_FALSE(ParseRegex("<ab").ok());
  EXPECT_FALSE(ParseRegex("<>").ok());
}

TEST(TwoWayTest, BacktrackingQueryOnAPath) {
  // Path 0 -a-> 1 -a-> 2. Two-way query: from x walk forward twice and
  // back once: x must be 0, landing at 1.
  GraphDb db = PathGraph(3, "a");
  const GraphDb two_way = WithInverses(db);
  Result<EcrpqQuery> q = ParseEcrpq(
      "q(x, y) := x -[/aa<a~>/]-> y", two_way.alphabet());
  ASSERT_TRUE(q.ok()) << q.status();
  Result<EvalResult> r = EvaluateGeneric(two_way, *q);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->answers.size(), 1u);
  EXPECT_EQ(r->answers[0], (std::vector<VertexId>{0, 1}));
}

TEST(TwoWayTest, SiblingPattern) {
  // "Siblings": two vertices with a common a-parent: y <-a- x -a-> z
  // expressed as y -[/<a~>a/]-> z.
  GraphDb db(Alphabet::OfChars("a"));
  db.AddVertices(4);
  db.AddEdge(0, "a", 1);
  db.AddEdge(0, "a", 2);
  db.AddEdge(3, "a", 3);
  const GraphDb two_way = WithInverses(db);
  Result<EcrpqQuery> q =
      ParseEcrpq("q(y, z) := y -[/<a~>a/]-> z", two_way.alphabet());
  ASSERT_TRUE(q.ok()) << q.status();
  Result<EvalResult> generic = EvaluateGeneric(two_way, *q);
  Result<EvalResult> naive = EvaluateNaive(two_way, *q);
  ASSERT_TRUE(generic.ok());
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(generic->answers, naive->answers);
  // Siblings: (1,1), (1,2), (2,1), (2,2) and the self-loop vertex (3,3).
  EXPECT_EQ(generic->answers.size(), 5u);
}

TEST(TwoWayTest, InverseRelationAtoms) {
  // eq-len across one forward and one backward path.
  GraphDb db = CycleGraph(4, "a");
  const GraphDb two_way = WithInverses(db);
  Result<EcrpqQuery> q = ParseEcrpq(
      "q(x) := x -[p1]-> y, x -[p2]-> z, eqlen(p1, p2),"
      " lang(/aa/, p1), lang(/<a~><a~>/, p2)",
      two_way.alphabet());
  ASSERT_TRUE(q.ok()) << q.status();
  Result<EvalResult> r = EvaluateGeneric(two_way, *q);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->satisfiable);
  EXPECT_EQ(r->answers.size(), 4u);  // Every cycle vertex.
}

}  // namespace
}  // namespace ecrpq
