// Lemma 5.1 (INE ≤p eval-ECRPQ): the reduction's verdict through the ECRPQ
// engines must match the independent INE solver's, for both proof cases.
#include <gtest/gtest.h>

#include "automata/ine.h"
#include "automata/regex.h"
#include "eval/generic_eval.h"
#include "query/abstraction.h"
#include "reductions/ine_to_ecrpq.h"
#include "structure/measures.h"
#include "workloads/db_gen.h"

namespace ecrpq {
namespace {

IneInstance HandInstance(std::initializer_list<const char*> patterns) {
  IneInstance ine;
  ine.alphabet = Alphabet::OfChars("ab");
  for (const char* pattern : patterns) {
    Alphabet scratch = ine.alphabet;
    Result<Nfa> nfa = CompileRegex(pattern, &scratch);
    EXPECT_TRUE(nfa.ok()) << nfa.status();
    ine.languages.push_back(std::move(nfa).ValueOrDie());
  }
  return ine;
}

bool DirectIne(const IneInstance& ine) {
  std::vector<const Nfa*> ptrs;
  for (const Nfa& nfa : ine.languages) ptrs.push_back(&nfa);
  return IntersectionNonEmpty(ptrs).non_empty;
}

bool EvaluateReduction(const IneReduction& reduction) {
  Result<EvalResult> r = EvaluateGeneric(reduction.db, reduction.query);
  EXPECT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->aborted);
  return r->satisfiable;
}

TEST(IneReductionTest, Case1NonEmptyIntersection) {
  const IneInstance ine = HandInstance({"a*b", "(a|b)*b", "aa(a|b)*"});
  ASSERT_TRUE(DirectIne(ine));
  Result<IneReduction> reduction = IneToEcrpq(ine, IneWitnessShapeCase1(3));
  ASSERT_TRUE(reduction.ok()) << reduction.status();
  EXPECT_EQ(reduction->case_used, 1);
  EXPECT_TRUE(EvaluateReduction(*reduction));
}

TEST(IneReductionTest, Case1EmptyIntersection) {
  const IneInstance ine = HandInstance({"a+", "b+"});
  ASSERT_FALSE(DirectIne(ine));
  Result<IneReduction> reduction = IneToEcrpq(ine, IneWitnessShapeCase1(2));
  ASSERT_TRUE(reduction.ok()) << reduction.status();
  EXPECT_FALSE(EvaluateReduction(*reduction));
}

TEST(IneReductionTest, ChainShapeSharesWordAcrossComponent) {
  // Binary hyperedges chained: the shared-u propagation argument.
  const IneInstance ine = HandInstance({"a*b", "(a|b)b*", "(a|b)*"});
  ASSERT_TRUE(DirectIne(ine));  // "ab" or "bb"... check: a*b ∩ (a|b)b* ∋ "ab"? a*b: ends b. (a|b)b*: one letter then b's: "ab" yes.
  Result<IneReduction> reduction = IneToEcrpq(ine, IneWitnessShapeChain(3));
  ASSERT_TRUE(reduction.ok()) << reduction.status();
  EXPECT_EQ(reduction->case_used, 1);
  EXPECT_TRUE(EvaluateReduction(*reduction));
}

TEST(IneReductionTest, ChainShapeEmptyIntersection) {
  const IneInstance ine = HandInstance({"a*b", "(a|b)*a", "(a|b)*"});
  ASSERT_FALSE(DirectIne(ine));  // Cannot end with both a and b.
  Result<IneReduction> reduction = IneToEcrpq(ine, IneWitnessShapeChain(3));
  ASSERT_TRUE(reduction.ok()) << reduction.status();
  EXPECT_FALSE(EvaluateReduction(*reduction));
}

TEST(IneReductionTest, Case2BothVerdicts) {
  const IneInstance yes = HandInstance({"a(a|b)*", "(a|b)*b", "ab*"});
  ASSERT_TRUE(DirectIne(yes));
  Result<IneReduction> ry = IneToEcrpq(yes, IneWitnessShapeCase2(3));
  ASSERT_TRUE(ry.ok()) << ry.status();
  EXPECT_EQ(ry->case_used, 2);
  EXPECT_TRUE(EvaluateReduction(*ry));

  const IneInstance no = HandInstance({"aa*", "bb*", "(a|b)*"});
  ASSERT_FALSE(DirectIne(no));
  Result<IneReduction> rn = IneToEcrpq(no, IneWitnessShapeCase2(3));
  ASSERT_TRUE(rn.ok()) << rn.status();
  EXPECT_FALSE(EvaluateReduction(*rn));
}

TEST(IneReductionTest, QueryAbstractionMatchesShape) {
  const IneInstance ine = HandInstance({"a*", "b*"});
  const TwoLevelGraph shape = IneWitnessShapeChain(2);
  Result<IneReduction> reduction = IneToEcrpq(ine, shape);
  ASSERT_TRUE(reduction.ok()) << reduction.status();
  const TwoLevelGraph abstraction =
      QueryAbstraction(reduction->query, /*implicit_universal_singletons=*/false);
  EXPECT_EQ(abstraction.num_vertices, shape.num_vertices);
  EXPECT_EQ(abstraction.NumEdges(), shape.NumEdges());
  EXPECT_EQ(abstraction.NumHyperedges(), shape.NumHyperedges());
  EXPECT_EQ(CcVertex(abstraction), CcVertex(shape));
  EXPECT_EQ(CcHedge(abstraction), CcHedge(shape));
}

TEST(IneReductionTest, InadequateShapeRejected) {
  const IneInstance ine = HandInstance({"a*", "b*", "a*"});
  // A shape with two disconnected singleton-hyperedge edges witnesses
  // neither case for n = 3.
  TwoLevelGraph weak;
  weak.num_vertices = 2;
  weak.first_edges = {{0, 1}, {1, 0}};
  weak.hyperedges = {{0}, {1}};
  EXPECT_FALSE(IneToEcrpq(ine, weak).ok());
}

TEST(IneReductionTest, ReductionSizeIsPolynomial) {
  // Database grows linearly with total automata size; query size depends
  // only on the shape.
  Rng rng(5);
  const IneInstance small = RandomIneInstance(&rng, 3, 4, 2, true);
  const IneInstance big = RandomIneInstance(&rng, 3, 16, 2, true);
  Result<IneReduction> rs = IneToEcrpq(small, IneWitnessShapeCase1(3));
  Result<IneReduction> rb = IneToEcrpq(big, IneWitnessShapeCase1(3));
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_GT(rb->db.NumVertices(), rs->db.NumVertices());
  EXPECT_LT(rb->db.NumVertices(), 3 * (16 + 16 * 3 + 2) + 10);
  // Query (relation automata) size identical: it never embeds the inputs.
  EXPECT_EQ(rs->query.relation(0).nfa().NumStates(),
            rb->query.relation(0).nfa().NumStates());
}

class IneReductionRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IneReductionRandomTest, MatchesDirectSolverAllShapes) {
  Rng rng(GetParam());
  const int n = 2 + static_cast<int>(rng.Below(2));
  const bool plant = rng.Chance(0.5);
  const IneInstance ine = RandomIneInstance(&rng, n, 3, 2, plant);
  const bool expected = DirectIne(ine);
  if (plant) {
    ASSERT_TRUE(expected);
  }

  for (const TwoLevelGraph& shape :
       {IneWitnessShapeCase1(n), IneWitnessShapeChain(n),
        IneWitnessShapeCase2(n)}) {
    Result<IneReduction> reduction = IneToEcrpq(ine, shape);
    ASSERT_TRUE(reduction.ok()) << reduction.status();
    EXPECT_EQ(EvaluateReduction(*reduction), expected)
        << "seed " << GetParam() << " case " << reduction->case_used;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IneReductionRandomTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace ecrpq
