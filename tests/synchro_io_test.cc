#include <gtest/gtest.h>

#include "common/rng.h"
#include "synchro/builders.h"
#include "synchro/io.h"
#include "synchro/ops.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

TEST(SynchroIoTest, RoundTripsBuiltins) {
  Rng rng(1);
  for (Result<SyncRelation> built :
       {EqualityRelation(kAb, 2), EqualLengthRelation(kAb, 3),
        PrefixRelation(kAb), HammingAtMostRelation(kAb, 1)}) {
    ASSERT_TRUE(built.ok()) << built.status();
    const SyncRelation original = std::move(built).ValueOrDie();
    const std::string text = SyncRelationToString(original);
    Result<SyncRelation> parsed = SyncRelationFromString(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
    EXPECT_EQ(parsed->arity(), original.arity());
    Result<bool> equivalent = EquivalentRelations(original, *parsed);
    ASSERT_TRUE(equivalent.ok()) << equivalent.status();
    EXPECT_TRUE(*equivalent);
  }
}

TEST(SynchroIoTest, ParsesHandWrittenRelation) {
  // {(a^n, b^n) : n >= 1}.
  Result<SyncRelation> rel = SyncRelationFromString(
      "relation arity 2\n"
      "alphabet a b\n"
      "states 2\n"
      "initial 0\n"
      "accepting 1\n"
      "trans 0 (a,b) 1\n"
      "trans 1 (a,b) 1\n");
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_TRUE(rel->Contains(std::vector<Word>{{0, 0}, {1, 1}}));
  EXPECT_FALSE(rel->Contains(std::vector<Word>{{0}, {1, 1}}));
  EXPECT_FALSE(rel->Contains(std::vector<Word>{{}, {}}));
}

TEST(SynchroIoTest, BlanksAndEpsilonAndComments) {
  Result<SyncRelation> rel = SyncRelationFromString(
      "# u is one letter, v empty\n"
      "relation arity 2\n"
      "alphabet a b\n"
      "states 3\n"
      "initial 0\n"
      "accepting 2\n"
      "trans 0 (a,_) 1   # tape 1 already padding\n"
      "trans 1 eps 2\n");
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_TRUE(rel->Contains(std::vector<Word>{{0}, {}}));
  EXPECT_FALSE(rel->Contains(std::vector<Word>{{1}, {}}));
  EXPECT_FALSE(rel->Contains(std::vector<Word>{{0}, {0}}));
}

TEST(SynchroIoTest, RejectsMalformed) {
  EXPECT_FALSE(SyncRelationFromString("states 2\n").ok());
  EXPECT_FALSE(
      SyncRelationFromString("relation arity 2\nstates 2\n").ok());
  EXPECT_FALSE(SyncRelationFromString(
                   "relation arity 2\nalphabet a\nstates 1\ninitial 0\n"
                   "trans 0 (a) 0\n")
                   .ok());  // Column width mismatch.
  EXPECT_FALSE(SyncRelationFromString(
                   "relation arity 1\nalphabet a\nstates 1\ninitial 0\n"
                   "trans 0 (z) 0\n")
                   .ok());  // Unknown symbol.
  EXPECT_FALSE(SyncRelationFromString(
                   "relation arity 1\nalphabet a\nstates 1\ninitial 0\n"
                   "trans 0 (a) 7\n")
                   .ok());  // State out of range.
}

}  // namespace
}  // namespace ecrpq
