// JoinMachine (the lazy Lemma 4.1 join) vs the materialized JoinComponents:
// both must accept exactly the same tuples.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "synchro/builders.h"
#include "synchro/convolution.h"
#include "synchro/join.h"
#include "synchro/ops.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

SyncRelation Make(Result<SyncRelation> r) {
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).ValueOrDie();
}

Word RandomWordOf(Rng* rng, int max_len, int alphabet_size) {
  Word w(rng->Below(max_len + 1));
  for (Symbol& s : w) s = static_cast<Symbol>(rng->Below(alphabet_size));
  return w;
}

// Runs the machine over the canonical convolution of `words`.
bool MachineAccepts(JoinMachine* machine, const std::vector<Word>& words) {
  const std::vector<Label> conv = Convolve(words, machine->pack());
  JoinMachine::State state = machine->Initial();
  for (const Label l : conv) {
    state = machine->Next(state, l);
    if (machine->IsDead(state)) return false;
  }
  return machine->IsAccepting(state);
}

TEST(JoinMachineTest, SingleComponentMatchesRelation) {
  const SyncRelation prefix = Make(PrefixRelation(kAb));
  Result<JoinMachine> machine =
      JoinMachine::Create(kAb, {{&prefix, {0, 1}}}, 2);
  ASSERT_TRUE(machine.ok()) << machine.status();
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const std::vector<Word> t = {RandomWordOf(&rng, 4, 2),
                                 RandomWordOf(&rng, 4, 2)};
    ASSERT_EQ(MachineAccepts(&*machine, t), prefix.Contains(t));
  }
}

TEST(JoinMachineTest, EmptyJoinIsUniversal) {
  Result<JoinMachine> machine = JoinMachine::Create(kAb, {}, 2);
  ASSERT_TRUE(machine.ok());
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const std::vector<Word> t = {RandomWordOf(&rng, 4, 2),
                                 RandomWordOf(&rng, 4, 2)};
    EXPECT_TRUE(MachineAccepts(&*machine, t));
  }
}

TEST(JoinMachineTest, RejectsBadTapeMaps) {
  const SyncRelation eq = Make(EqualityRelation(kAb, 2));
  EXPECT_FALSE(JoinMachine::Create(kAb, {{&eq, {0, 0}}}, 2).ok());
  EXPECT_FALSE(JoinMachine::Create(kAb, {{&eq, {0, 5}}}, 2).ok());
  EXPECT_FALSE(JoinMachine::Create(kAb, {{&eq, {0}}}, 2).ok());
  EXPECT_FALSE(JoinMachine::Create(kAb, {{nullptr, {0, 1}}}, 2).ok());
}

class JoinAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinAgreementTest, LazyMachineAgreesWithMaterializedJoin) {
  Rng rng(GetParam());
  // Random small component: 2-3 relations from a pool on 3 joint tapes.
  const SyncRelation pool[] = {
      Make(EqualLengthRelation(kAb, 2)), Make(EqualityRelation(kAb, 2)),
      Make(PrefixRelation(kAb)), Make(HammingAtMostRelation(kAb, 1))};
  const int joint_arity = 3;
  const int parts = 2 + static_cast<int>(rng.Below(2));
  std::vector<JoinMachine::Component> components;
  std::vector<TapeMapping> mappings;
  for (int p = 0; p < parts; ++p) {
    const SyncRelation* rel = &pool[rng.Below(4)];
    // Random injective 2-of-3 tape map.
    const int first = static_cast<int>(rng.Below(3));
    int second = static_cast<int>(rng.Below(3));
    if (second == first) second = (second + 1) % 3;
    components.push_back({rel, {first, second}});
    mappings.push_back({rel, {first, second}});
  }
  Result<JoinMachine> machine =
      JoinMachine::Create(kAb, components, joint_arity);
  ASSERT_TRUE(machine.ok()) << machine.status();
  Result<SyncRelation> merged = JoinComponents(kAb, mappings, joint_arity);
  ASSERT_TRUE(merged.ok()) << merged.status();

  for (int i = 0; i < 200; ++i) {
    std::vector<Word> tuple;
    const Word base = RandomWordOf(&rng, 3, 2);
    for (int t = 0; t < joint_arity; ++t) {
      // Bias toward related words so positives occur.
      tuple.push_back(rng.Chance(0.5) ? base : RandomWordOf(&rng, 3, 2));
    }
    const bool lazy = MachineAccepts(&*machine, tuple);
    const bool materialized = merged->Contains(tuple);
    ASSERT_EQ(lazy, materialized)
        << "seed " << GetParam() << " iteration " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinAgreementTest,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace ecrpq
