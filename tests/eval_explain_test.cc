// Answer explanation: certificates with witness paths, checked by the
// independent validator.
#include <gtest/gtest.h>

#include "eval/explain.h"
#include "graphdb/generators.h"
#include "query/parser.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

EcrpqQuery Parse(std::string_view text) {
  Result<EcrpqQuery> q = ParseEcrpq(text, kAb);
  EXPECT_TRUE(q.ok()) << q.status();
  return std::move(q).ValueOrDie();
}

GraphDb ForkDb() {
  GraphDb db(kAb);
  db.AddVertices(4);
  db.AddEdge(0, "a", 2);
  db.AddEdge(1, "b", 2);
  db.AddEdge(1, "a", 3);
  db.AddEdge(3, "a", 2);
  return db;
}

TEST(ExplainTest, ProducesValidCertificate) {
  const GraphDb db = ForkDb();
  const EcrpqQuery q =
      Parse("q(x, xp) := x -[p1]-> y, xp -[p2]-> y, eqlen(p1, p2)");
  Result<std::optional<Explanation>> explanation =
      ExplainAnswer(db, q, {0, 1});
  ASSERT_TRUE(explanation.ok()) << explanation.status();
  ASSERT_TRUE(explanation->has_value());
  EXPECT_TRUE(ValidateExplanation(db, q, **explanation).ok());
  // Paths have equal length by the relation.
  EXPECT_EQ((**explanation).paths[0].size(), (**explanation).paths[1].size());
  // And the endpoints match the pinned answer.
  EXPECT_EQ((**explanation).node_assignment[0], 0u);
  EXPECT_EQ((**explanation).node_assignment[1], 1u);
}

TEST(ExplainTest, NonAnswerYieldsNullopt) {
  const GraphDb db = ForkDb();
  const EcrpqQuery q =
      Parse("q(x, xp) := x -[p1]-> y, xp -[p2]-> y, eqlen(p1, p2)");
  // (2, 0): from 2 no outgoing edges; only y = 2 works with empty path for
  // x = 2, but then xp = 0 needs a length-0 path to 2 — impossible.
  Result<std::optional<Explanation>> explanation =
      ExplainAnswer(db, q, {2, 0});
  ASSERT_TRUE(explanation.ok()) << explanation.status();
  EXPECT_FALSE(explanation->has_value());
}

TEST(ExplainTest, ArityAndRangeChecks) {
  const GraphDb db = ForkDb();
  const EcrpqQuery q =
      Parse("q(x, xp) := x -[p1]-> y, xp -[p2]-> y, eqlen(p1, p2)");
  EXPECT_FALSE(ExplainAnswer(db, q, {0}).ok());
  EXPECT_FALSE(ExplainAnswer(db, q, {0, 99}).ok());
}

TEST(ExplainTest, ValidatorRejectsTamperedCertificates) {
  const GraphDb db = ForkDb();
  const EcrpqQuery q =
      Parse("q(x, xp) := x -[p1]-> y, xp -[p2]-> y, eqlen(p1, p2)");
  Result<std::optional<Explanation>> explanation =
      ExplainAnswer(db, q, {0, 1});
  ASSERT_TRUE(explanation.ok());
  ASSERT_TRUE(explanation->has_value());
  Explanation tampered = **explanation;
  // Break the endpoint.
  tampered.node_assignment[2] = 3;
  EXPECT_FALSE(ValidateExplanation(db, q, tampered).ok());
  // Break a path edge.
  Explanation tampered2 = **explanation;
  ASSERT_FALSE(tampered2.paths[0].empty());
  tampered2.paths[0][0].symbol = 1;  // 0 -b-> 2 does not exist.
  EXPECT_FALSE(ValidateExplanation(db, q, tampered2).ok());
  // Break the relation (unequal lengths) by appending a step to p2's path.
  Explanation tampered3 = **explanation;
  tampered3.paths[1].push_back(PathStep{2, 0, 2});
  EXPECT_FALSE(ValidateExplanation(db, q, tampered3).ok());
}

TEST(ExplainTest, BooleanQueryExplanation) {
  const GraphDb db = ForkDb();
  const EcrpqQuery q = Parse("q() := x -[/ba|aa/]-> y");
  Result<std::optional<Explanation>> explanation = ExplainAnswer(db, q, {});
  ASSERT_TRUE(explanation.ok()) << explanation.status();
  ASSERT_TRUE(explanation->has_value());
  EXPECT_TRUE(ValidateExplanation(db, q, **explanation).ok());
  EXPECT_EQ((**explanation).paths[0].size(), 2u);
  // ToString names the variables.
  const std::string text = (**explanation).ToString(q, db);
  EXPECT_NE(text.find("x = "), std::string::npos);
}

TEST(ExplainTest, EmptyPathCertificate) {
  const GraphDb db = ForkDb();
  const EcrpqQuery q = Parse("q(x) := x -[/a*/]-> x");
  Result<std::optional<Explanation>> explanation = ExplainAnswer(db, q, {1});
  ASSERT_TRUE(explanation.ok());
  ASSERT_TRUE(explanation->has_value());
  EXPECT_TRUE((**explanation).paths[0].empty());  // ε path at vertex 1.
  EXPECT_TRUE(ValidateExplanation(db, q, **explanation).ok());
}

TEST(ExplainTest, PinnedEvaluationRespectsPins) {
  const GraphDb db = ForkDb();
  const EcrpqQuery q =
      Parse("q(x, xp) := x -[p1]-> y, xp -[p2]-> y, eqlen(p1, p2)");
  EvalOptions options;
  options.pin = {{0, 0}};  // x pinned to vertex 0.
  Result<EvalResult> r = EvaluateGeneric(db, q, options);
  ASSERT_TRUE(r.ok()) << r.status();
  for (const auto& answer : r->answers) {
    EXPECT_EQ(answer[0], 0u);
  }
  EXPECT_GT(r->answers.size(), 0u);
}

}  // namespace
}  // namespace ecrpq
