#include <gtest/gtest.h>

#include "automata/ops.h"
#include "automata/random.h"
#include "automata/regex.h"
#include "common/rng.h"

namespace ecrpq {
namespace {

Nfa Compile(std::string_view pattern) {
  Alphabet alphabet = Alphabet::OfChars("ab");
  Result<Nfa> nfa = CompileRegex(pattern, &alphabet);
  EXPECT_TRUE(nfa.ok()) << nfa.status();
  return std::move(nfa).ValueOrDie();
}

const std::vector<Label> kUniverse = {0, 1};  // a, b.

TEST(OpsTest, DeterminizeEquivalentOnSamples) {
  Rng rng(3);
  const Nfa nfa = Compile("(a|b)*abb");
  const Dfa dfa = Determinize(nfa, kUniverse);
  for (int i = 0; i < 500; ++i) {
    const auto word = RandomWord(&rng, static_cast<int>(rng.Below(10)), 2);
    ASSERT_EQ(nfa.Accepts(word), dfa.Accepts(word));
  }
}

TEST(OpsTest, IntersectIsConjunction) {
  Rng rng(4);
  const Nfa a = Compile("a*b(a|b)*");   // Contains a b.
  const Nfa b = Compile("(a|b)*a");     // Ends with a.
  const Nfa both = Intersect(a, b);
  for (int i = 0; i < 500; ++i) {
    const auto word = RandomWord(&rng, static_cast<int>(rng.Below(8)), 2);
    ASSERT_EQ(both.Accepts(word), a.Accepts(word) && b.Accepts(word));
  }
}

TEST(OpsTest, UnionIsDisjunction) {
  Rng rng(5);
  const Nfa a = Compile("aa*");
  const Nfa b = Compile("bb*");
  const Nfa either = Union(a, b);
  for (int i = 0; i < 500; ++i) {
    const auto word = RandomWord(&rng, static_cast<int>(rng.Below(6)), 2);
    ASSERT_EQ(either.Accepts(word), a.Accepts(word) || b.Accepts(word));
  }
}

TEST(OpsTest, ComplementIsNegation) {
  Rng rng(6);
  const Nfa a = Compile("(ab)*");
  const Nfa not_a = Complement(a, kUniverse);
  for (int i = 0; i < 500; ++i) {
    const auto word = RandomWord(&rng, static_cast<int>(rng.Below(7)), 2);
    ASSERT_EQ(not_a.Accepts(word), !a.Accepts(word));
  }
}

TEST(OpsTest, EquivalenceAndInclusion) {
  const Nfa a1 = Compile("a*");
  const Nfa a2 = Compile("(a|)(aa)*a*");  // Same language, different shape.
  EXPECT_TRUE(Equivalent(a1, a2, kUniverse));
  const Nfa sub = Compile("aa*");
  EXPECT_TRUE(Included(sub, a1, kUniverse));
  EXPECT_FALSE(Included(a1, sub, kUniverse));  // ε ∈ a* \ aa*.
  EXPECT_FALSE(Equivalent(a1, sub, kUniverse));
}

TEST(OpsTest, RemoveEpsilonPreservesLanguage) {
  Rng rng(7);
  for (const char* pattern : {"a*b", "(a|b)*", "(ab|b)*a?", "a+|b+"}) {
    const Nfa nfa = Compile(pattern);
    const Nfa clean = RemoveEpsilon(nfa);
    // No ε-transitions remain.
    for (StateId s = 0; s < static_cast<StateId>(clean.NumStates()); ++s) {
      for (const Nfa::Transition& t : clean.TransitionsFrom(s)) {
        EXPECT_NE(t.label, kEpsilon);
      }
    }
    for (int i = 0; i < 300; ++i) {
      const auto word = RandomWord(&rng, static_cast<int>(rng.Below(8)), 2);
      ASSERT_EQ(nfa.Accepts(word), clean.Accepts(word)) << pattern;
    }
  }
}

TEST(OpsTest, UnionLabelsGathersSorted) {
  Nfa a(1);
  a.SetInitial(0);
  a.AddTransition(0, 5, 0);
  Nfa b(1);
  b.SetInitial(0);
  b.AddTransition(0, 2, 0);
  b.AddTransition(0, kEpsilon, 0);
  EXPECT_EQ(UnionLabels({&a, &b}, {9}), (std::vector<Label>{2, 5, 9}));
}

// De Morgan on random NFAs: ¬(A ∪ B) ≡ ¬A ∩ ¬B.
class DeMorganTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeMorganTest, HoldsOnRandomAutomata) {
  Rng rng(GetParam());
  RandomNfaOptions options;
  options.num_states = 4 + static_cast<int>(rng.Below(4));
  options.alphabet_size = 2;
  const Nfa a = RandomNfa(&rng, options);
  const Nfa b = RandomNfa(&rng, options);
  const Nfa lhs = Complement(Union(a, b), kUniverse);
  const Nfa rhs =
      Intersect(Complement(a, kUniverse), Complement(b, kUniverse));
  EXPECT_TRUE(Equivalent(lhs, rhs, kUniverse)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeMorganTest,
                         ::testing::Range<uint64_t>(0, 15));

}  // namespace
}  // namespace ecrpq
