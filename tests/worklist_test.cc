// The work-stealing runtime behind the parallel evaluation layer:
// WorkStealingDeque (Chase-Lev-style) and the FrontierScheduler built on it.
#include "common/worklist.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"

namespace ecrpq {
namespace {

using StealResult = WorkStealingDeque::StealResult;

TEST(WorkStealingDequeTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(WorkStealingDeque(1).capacity(), 2u);
  EXPECT_EQ(WorkStealingDeque(2).capacity(), 2u);
  EXPECT_EQ(WorkStealingDeque(3).capacity(), 4u);
  EXPECT_EQ(WorkStealingDeque(64).capacity(), 64u);
  EXPECT_EQ(WorkStealingDeque(65).capacity(), 128u);
}

TEST(WorkStealingDequeTest, OwnerPushPopIsLifo) {
  WorkStealingDeque deque(8);
  EXPECT_EQ(deque.PopBottom(), std::nullopt);
  deque.PushBottom(10);
  deque.PushBottom(11);
  deque.PushBottom(12);
  EXPECT_EQ(deque.ApproxSize(), 3u);
  EXPECT_EQ(deque.PopBottom(), 12u);
  EXPECT_EQ(deque.PopBottom(), 11u);
  EXPECT_EQ(deque.PopBottom(), 10u);
  EXPECT_EQ(deque.PopBottom(), std::nullopt);
  EXPECT_EQ(deque.ApproxSize(), 0u);
}

TEST(WorkStealingDequeTest, StealTakesOldestFirst) {
  WorkStealingDeque deque(8);
  uint64_t item = ~uint64_t{0};
  EXPECT_EQ(deque.Steal(&item), StealResult::kEmpty);
  deque.PushBottom(20);
  deque.PushBottom(21);
  deque.PushBottom(22);
  ASSERT_EQ(deque.Steal(&item), StealResult::kStolen);
  EXPECT_EQ(item, 20u);
  ASSERT_EQ(deque.Steal(&item), StealResult::kStolen);
  EXPECT_EQ(item, 21u);
  // The owner takes the remaining item from the other end.
  EXPECT_EQ(deque.PopBottom(), 22u);
  EXPECT_EQ(deque.Steal(&item), StealResult::kEmpty);
}

TEST(WorkStealingDequeTest, ReusesSlotsAcrossManyPushPopCycles) {
  // More traffic than capacity: indices wrap around the ring buffer.
  WorkStealingDeque deque(4);
  for (uint64_t round = 0; round < 100; ++round) {
    deque.PushBottom(2 * round);
    deque.PushBottom(2 * round + 1);
    EXPECT_EQ(deque.PopBottom(), 2 * round + 1);
    uint64_t item = 0;
    ASSERT_EQ(deque.Steal(&item), StealResult::kStolen);
    EXPECT_EQ(item, 2 * round);
  }
}

// Owner pops while three thieves steal: every seeded item is taken exactly
// once. The deque only shrinks after seeding, so kEmpty is a terminal state
// for thieves and nullopt for the owner; kLost means retry.
TEST(WorkStealingDequeTest, ConcurrentStealsConserveItems) {
  constexpr size_t kItems = 20000;
  WorkStealingDeque deque(kItems);
  for (uint64_t i = 0; i < kItems; ++i) deque.PushBottom(i);

  std::vector<std::atomic<int>> seen(kItems);
  ThreadPool pool(4);
  WaitGroup wg;
  wg.Add(4);
  pool.Submit([&] {  // Owner drains LIFO from the bottom.
    while (std::optional<uint64_t> item = deque.PopBottom()) {
      seen[*item].fetch_add(1, std::memory_order_relaxed);
    }
    wg.Done();
  });
  for (int t = 0; t < 3; ++t) {
    pool.Submit([&] {
      uint64_t item = 0;
      for (;;) {
        const StealResult r = deque.Steal(&item);
        if (r == StealResult::kEmpty) break;
        if (r == StealResult::kStolen) {
          seen[item].fetch_add(1, std::memory_order_relaxed);
        }
      }
      wg.Done();
    });
  }
  wg.Wait();
  for (size_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "item " << i;
  }
}

// Thieves hammer a deque the owner keeps near-empty: exercises the
// last-item CAS race (owner PopBottom vs thief Steal) and empty steals.
// Conservation must still hold: each pushed item is taken exactly once.
TEST(WorkStealingDequeTest, LastItemRaceConservesItems) {
  constexpr uint64_t kRounds = 50000;
  WorkStealingDeque deque(64);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> taken_by_owner{0};
  std::atomic<uint64_t> taken_by_thieves{0};

  ThreadPool pool(4);
  WaitGroup wg;
  wg.Add(4);
  pool.Submit([&] {
    // Push one, immediately try to pop it back: the deque holds at most one
    // item, so every pop races the thieves for the last item.
    uint64_t owner_count = 0;
    for (uint64_t r = 0; r < kRounds; ++r) {
      deque.PushBottom(r);
      if (deque.PopBottom().has_value()) ++owner_count;
    }
    taken_by_owner.store(owner_count, std::memory_order_relaxed);
    stop.store(true, std::memory_order_relaxed);
    wg.Done();
  });
  for (int t = 0; t < 3; ++t) {
    pool.Submit([&] {
      uint64_t item = 0;
      uint64_t thief_count = 0;
      for (;;) {
        const StealResult r = deque.Steal(&item);
        if (r == StealResult::kStolen) {
          ++thief_count;
        } else if (stop.load(std::memory_order_relaxed)) {
          // After the owner finished, the deque is empty for good.
          break;
        }
      }
      taken_by_thieves.fetch_add(thief_count, std::memory_order_relaxed);
      wg.Done();
    });
  }
  wg.Wait();
  EXPECT_EQ(taken_by_owner.load() + taken_by_thieves.load(), kRounds);
}

TEST(FrontierSchedulerTest, ChunkSizeBounds) {
  // One worker takes the whole range as a single chunk.
  EXPECT_EQ(FrontierScheduler::ChunkSizeFor(1000, 1), 1000u);
  EXPECT_EQ(FrontierScheduler::ChunkSizeFor(0, 1), 1u);
  // ~8 chunks per worker, clamped to [1, 64].
  EXPECT_EQ(FrontierScheduler::ChunkSizeFor(1024, 4), 32u);
  EXPECT_EQ(FrontierScheduler::ChunkSizeFor(10, 4), 1u);
  EXPECT_EQ(FrontierScheduler::ChunkSizeFor(1000000, 4), 64u);
}

TEST(FrontierSchedulerTest, CoversEveryIndexOnceAtEveryPoolSize) {
  constexpr size_t kN = 10000;
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    FrontierScheduler scheduler(&pool);
    std::vector<std::atomic<int>> hits(kN);
    scheduler.Execute(kN, [&](size_t i, int w) {
      EXPECT_GE(w, 0);
      EXPECT_LT(w, scheduler.num_workers());
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << ", pool " << threads;
    }
  }
}

TEST(FrontierSchedulerTest, NullPoolRunsInlineAsWorkerZero) {
  FrontierScheduler scheduler(nullptr);
  std::vector<size_t> order;
  scheduler.Execute(5, [&](size_t i, int w) {
    EXPECT_EQ(w, 0);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(scheduler.num_workers(), 1);
}

TEST(FrontierSchedulerTest, ZeroItemsIsANoop) {
  ThreadPool pool(4);
  FrontierScheduler scheduler(&pool);
  scheduler.Execute(0, [](size_t, int) { FAIL() << "body must not run"; });
}

// The worker id contract: callers index per-worker single-owner state
// (engines, searchers) by `worker`, so no two tasks with the same worker id
// may ever run concurrently.
TEST(FrontierSchedulerTest, WorkerIdsNeverRunConcurrently) {
  ThreadPool pool(4);
  FrontierScheduler scheduler(&pool);
  constexpr size_t kN = 5000;
  std::vector<std::atomic<int>> in_flight(8);
  std::atomic<bool> overlapped{false};
  scheduler.Execute(kN, [&](size_t, int w) {
    if (in_flight[w].fetch_add(1, std::memory_order_acq_rel) != 0) {
      overlapped.store(true, std::memory_order_relaxed);
    }
    in_flight[w].fetch_sub(1, std::memory_order_acq_rel);
  });
  EXPECT_FALSE(overlapped.load());
}

// Uneven task costs force stealing: a few indices are much heavier, so idle
// workers must take chunks from the loaded deques to finish. The steal
// counters land in the shard (values are scheduling-dependent; only
// presence and conservation are asserted).
TEST(FrontierSchedulerTest, UnbalancedLoadStealsAndRecordsCounters) {
  obs::Metrics metrics;
  ThreadPool pool(4);
  FrontierScheduler scheduler(&pool, metrics.AcquireShard());
  constexpr size_t kN = 4096;
  std::vector<std::atomic<int>> hits(kN);
  std::atomic<uint64_t> sink{0};
  scheduler.Execute(kN, [&](size_t i, int) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
    if (i % 1024 == 0) {  // Four heavy islands pin their owners.
      uint64_t acc = i;
      for (int spin = 0; spin < 200000; ++spin) acc = acc * 2654435761u + 1;
      sink.fetch_add(acc, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1);
  EXPECT_GE(metrics.Total(obs::CounterId::kStealAttempts),
            metrics.Total(obs::CounterId::kStealsSucceeded));
}

// Start() returns before the work finishes so a coordinator can consume
// results concurrently (the generic_eval replay pattern); Wait() is the
// barrier.
TEST(FrontierSchedulerTest, StartReturnsBeforeCompletionAndWaitJoins) {
  ThreadPool pool(4);
  FrontierScheduler scheduler(&pool);
  constexpr size_t kN = 256;
  std::vector<std::atomic<int>> done(kN);
  scheduler.Start(kN, [&](size_t i, int) {
    done[i].store(1, std::memory_order_release);
  });
  // Consume in index order while workers are still running.
  for (size_t i = 0; i < kN; ++i) {
    while (done[i].load(std::memory_order_acquire) == 0) {
      std::this_thread::yield();
    }
  }
  scheduler.Wait();
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(done[i].load(), 1);
}

// The destructor waits for an in-flight Start (so a scheduler can never
// outlive its tasks' captures).
TEST(FrontierSchedulerTest, DestructorWaitsForInFlightWork) {
  ThreadPool pool(4);
  constexpr size_t kN = 512;
  std::vector<std::atomic<int>> done(kN);
  {
    FrontierScheduler scheduler(&pool);
    scheduler.Start(kN, [&](size_t i, int) {
      done[i].store(1, std::memory_order_relaxed);
    });
  }
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(done[i].load(), 1);
}

}  // namespace
}  // namespace ecrpq
