// Hand-verifiable end-to-end evaluations across all engines.
#include <gtest/gtest.h>

#include "eval/crpq_eval.h"
#include "eval/generic_eval.h"
#include "eval/naive_eval.h"
#include "eval/reduce_to_cq.h"
#include "graphdb/generators.h"
#include "query/parser.h"
#include "workloads/query_gen.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

EcrpqQuery Parse(std::string_view text) {
  Result<EcrpqQuery> q = ParseEcrpq(text, kAb);
  EXPECT_TRUE(q.ok()) << q.status();
  return std::move(q).ValueOrDie();
}

TEST(GenericEvalTest, PaperExampleOnFork) {
  // Graph: 0 -a-> 2, 1 -b-> 2 (fork into 2), plus a longer branch
  // 1 -a-> 3 -a-> 2. q(x, xp): paths to a common y of equal length.
  GraphDb db(kAb);
  db.AddVertices(4);
  db.AddEdge(0, "a", 2);
  db.AddEdge(1, "b", 2);
  db.AddEdge(1, "a", 3);
  db.AddEdge(3, "a", 2);
  Result<EcrpqQuery> q = ExampleTwoOneQuery(kAb);
  ASSERT_TRUE(q.ok());
  Result<EvalResult> r = EvaluateGeneric(db, *q);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->satisfiable);
  // (0, 1) via 0-a->2 and 1-b->2 (both length 1). Also every (v, v) via
  // empty paths, and (1, 0)... check a few.
  auto has = [&](VertexId a, VertexId b) {
    return std::find(r->answers.begin(), r->answers.end(),
                     std::vector<VertexId>{a, b}) != r->answers.end();
  };
  EXPECT_TRUE(has(0, 1));
  EXPECT_TRUE(has(1, 0));
  EXPECT_TRUE(has(2, 2));
  // (0, 3): 0 -a-> 2 (length 1) and 3 -a-> 2 (length 1): yes.
  EXPECT_TRUE(has(0, 3));
  // (3, 1): 3 -a-> 2 length 1; from 1 to 2 length 1 via b: but that's
  // (1,3)... (3,1) needs path from 3 and path from 1 to same y with equal
  // lengths: y=2, lengths 1 and 1: yes.
  EXPECT_TRUE(has(3, 1));
}

TEST(GenericEvalTest, EqualityStarOnCycle) {
  // On an a-labelled cycle, eq of two paths from 0 and 1 always holds for
  // equal-length walks (labels all 'a').
  GraphDb db = CycleGraph(3, "a");
  const EcrpqQuery q =
      Parse("q(y0, y1) := x0 -[p0]-> y0, x1 -[p1]-> y1, eq(p0, p1)");
  Result<EvalResult> r = EvaluateGeneric(db, q);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->satisfiable);
  // Any pair (y0, y1) is reachable by equal-length walks from some x0, x1.
  EXPECT_EQ(r->answers.size(), 9u);
}

TEST(GenericEvalTest, UnsatisfiableByLabels) {
  // Graph with only a-edges; query requires a path with a b.
  GraphDb db = PathGraph(4, "a");
  const EcrpqQuery q = Parse("q() := x -[/a*ba*/]-> y");
  Result<EvalResult> r = EvaluateGeneric(db, q);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->satisfiable);
}

TEST(GenericEvalTest, EmptyDatabase) {
  GraphDb db(kAb);
  const EcrpqQuery q = Parse("q() := x -[p]-> y");
  Result<EvalResult> r = EvaluateGeneric(db, q);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->satisfiable);
}

TEST(GenericEvalTest, EmptyPathSatisfiesStarLanguages) {
  GraphDb db(kAb);
  db.AddVertices(1);  // No edges at all.
  const EcrpqQuery q = Parse("q() := x -[/a*/]-> y");
  Result<EvalResult> r = EvaluateGeneric(db, q);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->satisfiable);  // Empty path from 0 to 0, label ε ∈ a*.
}

TEST(GenericEvalTest, PrefixRelationAcrossBranches) {
  // 0 -a-> 1 -b-> 2; prefix(p1, p2) with p1: 0→1, p2: 0→2.
  GraphDb db(kAb);
  db.AddVertices(3);
  db.AddEdge(0, "a", 1);
  db.AddEdge(1, "b", 2);
  const EcrpqQuery yes =
      Parse("q() := x -[p1]-> y, x -[p2]-> z, prefix(p1, p2),"
            " lang(/a/, p1), lang(/ab/, p2)");
  Result<EvalResult> r1 = EvaluateGeneric(db, yes);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->satisfiable);
  const EcrpqQuery no =
      Parse("q() := x -[p1]-> y, x -[p2]-> z, prefix(p1, p2),"
            " lang(/ab/, p1), lang(/a/, p2)");
  Result<EvalResult> r2 = EvaluateGeneric(db, no);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->satisfiable);
}

TEST(CrpqEvalTest, MatchesGenericOnCrpq) {
  GraphDb db = GridGraph(3, 3);
  const Alphabet rd = db.alphabet();
  Result<EcrpqQuery> q = ParseEcrpq(
      "q(x) := x -[/rr/]-> y, x -[/dd/]-> z, y -[/dd/]-> w, z -[/rr/]-> w",
      rd);
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_TRUE(q->IsCrpq());
  Result<EvalResult> crpq = EvaluateCrpq(db, *q);
  Result<EvalResult> generic = EvaluateGeneric(db, *q);
  ASSERT_TRUE(crpq.ok()) << crpq.status();
  ASSERT_TRUE(generic.ok()) << generic.status();
  EXPECT_EQ(crpq->satisfiable, generic->satisfiable);
  EXPECT_EQ(crpq->answers, generic->answers);
  // Only the top-left corner can anchor the 2x2 square macro-pattern.
  ASSERT_EQ(crpq->answers.size(), 1u);
  EXPECT_EQ(crpq->answers[0], (std::vector<VertexId>{0}));
}

TEST(CrpqEvalTest, RejectsNonCrpq) {
  GraphDb db = PathGraph(3, "a");
  const EcrpqQuery q =
      Parse("q() := x -[p1]-> y, x -[p2]-> y, eqlen(p1, p2)");
  EXPECT_FALSE(EvaluateCrpq(db, q).ok());
}

TEST(ReduceToCqTest, ProducesExpectedShape) {
  GraphDb db = CycleGraph(3, "a");
  Result<EcrpqQuery> q = ExampleTwoOneQuery(kAb);
  ASSERT_TRUE(q.ok());
  // The database alphabet is {a}, the query's is {a, b}: compatible.
  Result<CqReduction> reduction = ReduceToCq(db, *q);
  ASSERT_TRUE(reduction.ok()) << reduction.status();
  EXPECT_EQ(reduction->query.atoms.size(), 1u);  // One component.
  EXPECT_EQ(reduction->query.atoms[0].vars.size(), 4u);  // R'(x, y, xp, y).
  EXPECT_EQ(reduction->source_tuples_enumerated, 9u);    // |V|^2.
  const Relation* rel = reduction->db->Find("comp0");
  ASSERT_NE(rel, nullptr);
  EXPECT_GT(rel->NumTuples(), 0u);
}

TEST(ReduceToCqTest, PipelineMatchesGeneric) {
  GraphDb db = CycleGraph(4, "ab");
  const EcrpqQuery q =
      Parse("q(x, xp) := x -[p1]-> y, xp -[p2]-> y, eqlen(p1, p2)");
  Result<EvalResult> generic = EvaluateGeneric(db, q);
  Result<EvalResult> via_td = EvaluateViaCqReduction(db, q, true);
  Result<EvalResult> via_bt = EvaluateViaCqReduction(db, q, false);
  ASSERT_TRUE(generic.ok()) << generic.status();
  ASSERT_TRUE(via_td.ok()) << via_td.status();
  ASSERT_TRUE(via_bt.ok()) << via_bt.status();
  EXPECT_EQ(generic->satisfiable, via_td->satisfiable);
  EXPECT_EQ(generic->answers, via_td->answers);
  EXPECT_EQ(generic->answers, via_bt->answers);
}

TEST(NaiveEvalTest, AgreesOnHandCase) {
  GraphDb db(kAb);
  db.AddVertices(4);
  db.AddEdge(0, "a", 2);
  db.AddEdge(1, "b", 2);
  db.AddEdge(1, "a", 3);
  db.AddEdge(3, "a", 2);
  Result<EcrpqQuery> q = ExampleTwoOneQuery(kAb);
  ASSERT_TRUE(q.ok());
  Result<EvalResult> naive = EvaluateNaive(db, *q);
  Result<EvalResult> generic = EvaluateGeneric(db, *q);
  ASSERT_TRUE(naive.ok()) << naive.status();
  ASSERT_TRUE(generic.ok());
  EXPECT_EQ(naive->satisfiable, generic->satisfiable);
  EXPECT_EQ(naive->answers, generic->answers);
}

TEST(GenericEvalTest, BudgetAbortSurfaces) {
  Rng rng(1);
  GraphDb db = RandomGraph(&rng, 30, 3.0, 2);
  const EcrpqQuery q =
      Parse("q() := x0 -[p0]-> y0, x1 -[p1]-> y1, x2 -[p2]-> y2,"
            " eqlen(p0, p1, p2), lang(/ababab(a|b)*/, p0)");
  EvalOptions options;
  options.max_product_states = 5;
  Result<EvalResult> r = EvaluateGeneric(db, q, options);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->aborted);
}

}  // namespace
}  // namespace ecrpq
