// The worker pool behind the parallel evaluation layer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace ecrpq {
namespace {

class ThreadPoolEnvTest : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("ECRPQ_THREADS"); }
};

TEST_F(ThreadPoolEnvTest, DefaultHonorsEnvOverride) {
  setenv("ECRPQ_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::DefaultNumThreads(), 3);
  setenv("ECRPQ_THREADS", "1", 1);
  EXPECT_EQ(ThreadPool::DefaultNumThreads(), 1);
}

TEST_F(ThreadPoolEnvTest, DefaultIgnoresBadEnvValues) {
  for (const char* bad : {"0", "-2", "lots", ""}) {
    setenv("ECRPQ_THREADS", bad, 1);
    EXPECT_GE(ThreadPool::DefaultNumThreads(), 1) << "ECRPQ_THREADS=" << bad;
  }
}

TEST_F(ThreadPoolEnvTest, ResolveNumThreads) {
  setenv("ECRPQ_THREADS", "7", 1);
  EXPECT_EQ(ThreadPool::ResolveNumThreads(0), 7);  // 0 = the default.
  EXPECT_EQ(ThreadPool::ResolveNumThreads(1), 1);
  EXPECT_EQ(ThreadPool::ResolveNumThreads(4), 4);
  EXPECT_EQ(ThreadPool::ResolveNumThreads(-5), 1);  // Clamped.
}

TEST(ThreadPoolTest, SizeOneRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  // With no worker threads, Submit must complete the task before returning.
  const std::thread::id caller = std::this_thread::get_id();
  bool ran = false;
  pool.Submit([&] {
    ran = true;
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(kN, [&](size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << ", pool " << threads;
    }
  }
}

TEST(ThreadPoolTest, ParallelForZeroIterationsIsANoop) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [](size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPoolTest, SubmitAndWaitGroup) {
  ThreadPool pool(4);
  constexpr int kTasks = 64;
  std::atomic<int> done{0};
  WaitGroup wg;
  wg.Add(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      done.fetch_add(1, std::memory_order_relaxed);
      wg.Done();
    });
  }
  wg.Wait();
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, CancelToken) {
  CancelToken token;
  EXPECT_FALSE(token.IsCancelled());
  token.Cancel();
  EXPECT_TRUE(token.IsCancelled());

  // Workers observe a coordinator's cancel (relaxed is enough for a
  // monotonic flag polled in a loop).
  CancelToken shared;
  ThreadPool pool(2);
  WaitGroup wg;
  wg.Add(1);
  pool.Submit([&] {
    while (!shared.IsCancelled()) std::this_thread::yield();
    wg.Done();
  });
  shared.Cancel();
  wg.Wait();
}

}  // namespace
}  // namespace ecrpq
