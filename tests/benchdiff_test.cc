// Unit tests for common/benchdiff.h (the tools/bench_compare engine) and
// the common/json.h parser it is built on: self-comparison passes, a
// synthetic 2x slowdown fails, slack absorbs noise-sized drift, and
// incomparable records (build mode / threads / seed) are skipped with a
// note instead of failing the gate.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/benchdiff.h"
#include "common/json.h"

namespace ecrpq {
namespace {

using benchdiff::BenchRecord;
using benchdiff::CompareBenchRecords;
using benchdiff::CompareOptions;
using benchdiff::CompareReport;
using benchdiff::ParseBenchJson;

// ---------------------------------------------------------------------------
// common/json.h

TEST(JsonTest, ParsesScalarsArraysAndObjects) {
  Result<json::Value> doc =
      json::Parse("{\"a\": 1.5, \"b\": [true, null, \"x\\n\"], \"c\": {}}");
  ASSERT_TRUE(doc.ok()) << doc.status();
  double a = 0;
  EXPECT_TRUE(doc->GetNumber("a", &a));
  EXPECT_DOUBLE_EQ(a, 1.5);
  const json::Value* b = doc->Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->is_array());
  ASSERT_EQ(b->AsArray().size(), 3u);
  EXPECT_TRUE(b->AsArray()[0].AsBool());
  EXPECT_TRUE(b->AsArray()[1].is_null());
  EXPECT_EQ(b->AsArray()[2].AsString(), "x\n");
  const json::Value* c = doc->Find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->is_object());
  EXPECT_TRUE(c->AsObject().empty());
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(json::Parse("").ok());
  EXPECT_FALSE(json::Parse("{").ok());
  EXPECT_FALSE(json::Parse("[1,]").ok());
  EXPECT_FALSE(json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(json::Parse("\"unterminated").ok());
  EXPECT_FALSE(json::Parse("1 trailing").ok());
  EXPECT_FALSE(json::Parse("nul").ok());
}

TEST(JsonTest, ParsesNegativeAndExponentNumbers) {
  Result<json::Value> doc = json::Parse("[-2, 1e3, 0.25]");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_DOUBLE_EQ(doc->AsArray()[0].AsNumber(), -2);
  EXPECT_DOUBLE_EQ(doc->AsArray()[1].AsNumber(), 1000);
  EXPECT_DOUBLE_EQ(doc->AsArray()[2].AsNumber(), 0.25);
}

// ---------------------------------------------------------------------------
// ParseBenchJson

constexpr const char* kBenchJson = R"([
  {"name": "BM_Foo/4", "n": 4, "median_ns": 1200000, "min_ns": 1000000,
   "repeats": 3, "seed": 0, "threads": 8, "build": "optimized",
   "counters": {"reach_queries": 64, "phase_bfs_ns_p90": 50000}},
  {"name": "BM_Bar/2", "n": 2, "median_ns": 500000, "min_ns": 450000,
   "repeats": 3, "seed": 0, "threads": 8, "build": "optimized",
   "counters": {}}
])";

TEST(BenchDiffTest, ParsesBenchJson) {
  Result<std::vector<BenchRecord>> records = ParseBenchJson(kBenchJson);
  ASSERT_TRUE(records.ok()) << records.status();
  ASSERT_EQ(records->size(), 2u);
  const BenchRecord& foo = (*records)[0];
  EXPECT_EQ(foo.name, "BM_Foo/4");
  EXPECT_DOUBLE_EQ(foo.min_ns, 1000000);
  EXPECT_EQ(foo.repeats, 3u);
  EXPECT_EQ(foo.threads, 8u);
  EXPECT_EQ(foo.build, "optimized");
  ASSERT_EQ(foo.counters.size(), 2u);
  EXPECT_EQ(foo.counters[0].first, "reach_queries");
  EXPECT_EQ(foo.counters[1].first, "phase_bfs_ns_p90");
}

// A pre-min_ns baseline (older format): min_ns falls back to median_ns.
TEST(BenchDiffTest, MinNsFallsBackToMedian) {
  Result<std::vector<BenchRecord>> records = ParseBenchJson(
      R"([{"name": "BM_Old", "median_ns": 700, "build": "optimized"}])");
  ASSERT_TRUE(records.ok()) << records.status();
  EXPECT_DOUBLE_EQ((*records)[0].min_ns, 700);
  EXPECT_EQ((*records)[0].repeats, 1u);
}

TEST(BenchDiffTest, RejectsNonArrayAndNamelessRecords) {
  EXPECT_FALSE(ParseBenchJson("{}").ok());
  EXPECT_FALSE(ParseBenchJson("[{\"n\": 1}]").ok());
  EXPECT_FALSE(ParseBenchJson("not json").ok());
}

// ---------------------------------------------------------------------------
// CompareBenchRecords

std::vector<BenchRecord> BaselineRecords() {
  return *ParseBenchJson(kBenchJson);
}

TEST(BenchDiffTest, SelfComparisonPasses) {
  const std::vector<BenchRecord> records = BaselineRecords();
  const CompareReport report =
      CompareBenchRecords(records, records, CompareOptions{});
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.compared, 2u);
  EXPECT_TRUE(report.notes.empty()) << report.ToString();
}

TEST(BenchDiffTest, TwoXSlowdownFails) {
  const std::vector<BenchRecord> baseline = BaselineRecords();
  std::vector<BenchRecord> current = baseline;
  current[0].min_ns *= 2;  // 1ms -> 2ms: far past 40% rel + 50us abs.
  const CompareReport report =
      CompareBenchRecords(baseline, current, CompareOptions{});
  ASSERT_FALSE(report.ok());
  ASSERT_EQ(report.regressions.size(), 1u);
  EXPECT_EQ(report.regressions[0].bench, "BM_Foo/4");
  EXPECT_EQ(report.regressions[0].metric, "min_ns");
  EXPECT_NE(report.ToString().find("REGRESSION"), std::string::npos);
}

TEST(BenchDiffTest, NoiseSizedDriftPasses) {
  const std::vector<BenchRecord> baseline = BaselineRecords();
  std::vector<BenchRecord> current = baseline;
  current[0].min_ns *= 1.2;   // Within the 40% relative slack.
  current[1].min_ns += 49000;  // Within the 50us absolute slack.
  EXPECT_TRUE(
      CompareBenchRecords(baseline, current, CompareOptions{}).ok());
}

TEST(BenchDiffTest, CounterBlowupFailsAndTimeCounterGetsTimeSlack) {
  const std::vector<BenchRecord> baseline = BaselineRecords();
  std::vector<BenchRecord> current = baseline;
  // Work counter 64 -> 256: outside 25% rel + 64 abs.
  current[0].counters[0].second = 256;
  CompareReport report =
      CompareBenchRecords(baseline, current, CompareOptions{});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.regressions[0].metric, "reach_queries");

  // The same ratio on a wall-clock counter sits inside the time slack
  // (50us -> 110us is under 50us * 1.4 + 50us = 120us).
  current = baseline;
  current[0].counters[1].second = 110000;
  EXPECT_TRUE(CompareBenchRecords(baseline, current, CompareOptions{}).ok());

  // --no-counters turns the work-counter blowup into a pass.
  current = baseline;
  current[0].counters[0].second = 256;
  CompareOptions no_counters;
  no_counters.check_counters = false;
  EXPECT_TRUE(CompareBenchRecords(baseline, current, no_counters).ok());
}

TEST(BenchDiffTest, SchedPrefixedCountersAreInformationalOnly) {
  // Steal diagnostics depend on the OS scheduler's interleaving, so a
  // "sched_" prefix marks a counter as exported-but-never-compared: even
  // a 100x blowup must not gate.
  std::vector<BenchRecord> baseline = BaselineRecords();
  baseline[0].counters.emplace_back("sched_steal_attempts", 10.0);
  std::vector<BenchRecord> current = baseline;
  current[0].counters.back().second = 1000.0;
  EXPECT_TRUE(CompareBenchRecords(baseline, current, CompareOptions{}).ok());
  current[0].counters.back().second = 0.0;
  EXPECT_TRUE(CompareBenchRecords(baseline, current, CompareOptions{}).ok());
}

TEST(BenchDiffTest, CachePrefixedCountersAreInformationalOnly) {
  // Cache hit/miss/eviction counts depend on what earlier iterations left
  // in the process-wide caches, so like sched_ they are exported for
  // eyeballing but never gated — a warm run vs a cold baseline must pass.
  std::vector<BenchRecord> baseline = BaselineRecords();
  baseline[0].counters.emplace_back("cache_hits", 0.0);
  baseline[0].counters.emplace_back("cache_misses", 500.0);
  std::vector<BenchRecord> current = baseline;
  current[0].counters[current[0].counters.size() - 2].second = 500.0;
  current[0].counters.back().second = 1.0;
  EXPECT_TRUE(CompareBenchRecords(baseline, current, CompareOptions{}).ok());
}

TEST(BenchDiffTest, ServicePrefixedCountersAreInformationalOnly) {
  // Admission traffic (admitted/queued/rejected splits, active peaks) is a
  // function of client timing and load, not of code quality — a run where
  // more clients collided must not gate. Like sched_ and cache_, the
  // "service_" prefix means exported-but-never-compared.
  std::vector<BenchRecord> baseline = BaselineRecords();
  baseline[0].counters.emplace_back("service_admitted", 100.0);
  baseline[0].counters.emplace_back("service_rejected", 0.0);
  std::vector<BenchRecord> current = baseline;
  current[0].counters[current[0].counters.size() - 2].second = 10.0;
  current[0].counters.back().second = 90.0;
  EXPECT_TRUE(CompareBenchRecords(baseline, current, CompareOptions{}).ok());
}

TEST(BenchDiffTest, TelemetryPrefixedCountersAreInformationalOnly) {
  // Event-log records written and postmortem dumps track the load and
  // error mix of a run, not the benchmarked work. Like sched_, cache_ and
  // service_, the "telemetry_" prefix means exported-but-never-compared —
  // a run that logged 100x more events must not gate.
  std::vector<BenchRecord> baseline = BaselineRecords();
  baseline[0].counters.emplace_back("telemetry_events_logged", 1.0);
  baseline[0].counters.emplace_back("telemetry_postmortem_dumps", 0.0);
  std::vector<BenchRecord> current = baseline;
  current[0].counters[current[0].counters.size() - 2].second = 100.0;
  current[0].counters.back().second = 7.0;
  EXPECT_TRUE(CompareBenchRecords(baseline, current, CompareOptions{}).ok());
}

TEST(BenchDiffTest, IncomparableRecordsSkipWithNotes) {
  const std::vector<BenchRecord> baseline = BaselineRecords();

  std::vector<BenchRecord> current = baseline;
  current[0].build = "debug";
  current[0].min_ns *= 50;  // Would fail hard — but must be skipped.
  CompareReport report =
      CompareBenchRecords(baseline, current, CompareOptions{});
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.compared, 1u);
  ASSERT_FALSE(report.notes.empty());

  current = baseline;
  current[1].seed = 99;  // Different workload: skipped.
  report = CompareBenchRecords(baseline, current, CompareOptions{});
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.compared, 1u);

  // Missing benchmark on either side: note, not failure.
  current = {baseline[0]};
  report = CompareBenchRecords(baseline, current, CompareOptions{});
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.compared, 1u);
  report = CompareBenchRecords(current, baseline, CompareOptions{});
  EXPECT_TRUE(report.ok()) << report.ToString();
}

}  // namespace
}  // namespace ecrpq
