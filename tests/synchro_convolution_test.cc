#include <gtest/gtest.h>

#include "common/rng.h"
#include "synchro/convolution.h"

namespace ecrpq {
namespace {

TapePack MakePack(int arity, int alphabet_size) {
  Result<TapePack> pack = TapePack::Create(arity, alphabet_size);
  EXPECT_TRUE(pack.ok()) << pack.status();
  return std::move(pack).ValueOrDie();
}

TEST(TapePackTest, PackUnpackRoundTrip) {
  const TapePack pack = MakePack(3, 5);
  const TapeLetter letters[3] = {4, kBlank, 0};
  const Label l = pack.Pack(letters);
  EXPECT_EQ(pack.Get(l, 0), 4u);
  EXPECT_EQ(pack.Get(l, 1), kBlank);
  EXPECT_EQ(pack.Get(l, 2), 0u);
}

TEST(TapePackTest, SetReplacesOneTape) {
  const TapePack pack = MakePack(2, 3);
  const TapeLetter letters[2] = {1, 2};
  Label l = pack.Pack(letters);
  l = pack.Set(l, 0, kBlank);
  EXPECT_EQ(pack.Get(l, 0), kBlank);
  EXPECT_EQ(pack.Get(l, 1), 2u);
}

TEST(TapePackTest, ArityCapacity) {
  // 2 symbols -> 2 bits per tape -> up to 32 tapes.
  EXPECT_TRUE(TapePack::Create(32, 2).ok());
  EXPECT_FALSE(TapePack::Create(33, 2).ok());
  EXPECT_FALSE(TapePack::Create(0, 2).ok());
  EXPECT_FALSE(TapePack::Create(1, 0).ok());
}

TEST(TapePackTest, EnumerateAllLabelsCountsAndCaps) {
  const TapePack pack = MakePack(2, 2);
  Result<std::vector<Label>> labels = pack.EnumerateAllLabels();
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(labels->size(), 9u);  // (2+1)^2.
  EXPECT_FALSE(pack.EnumerateAllLabels(/*limit=*/8).ok());
}

TEST(ConvolutionTest, PaperExample) {
  // aab ⊗ c ⊗ bb = (a,c,b)(a,⊥,b)(b,⊥,⊥) with a=0, b=1, c=2.
  const TapePack pack = MakePack(3, 3);
  const std::vector<Word> words = {{0, 0, 1}, {2}, {1, 1}};
  const std::vector<Label> conv = Convolve(words, pack);
  ASSERT_EQ(conv.size(), 3u);
  EXPECT_EQ(pack.Get(conv[0], 0), 0u);
  EXPECT_EQ(pack.Get(conv[0], 1), 2u);
  EXPECT_EQ(pack.Get(conv[0], 2), 1u);
  EXPECT_EQ(pack.Get(conv[1], 1), kBlank);
  EXPECT_EQ(pack.Get(conv[2], 1), kBlank);
  EXPECT_EQ(pack.Get(conv[2], 2), kBlank);
}

TEST(ConvolutionTest, EmptyTuple) {
  const TapePack pack = MakePack(2, 2);
  const std::vector<Word> words = {{}, {}};
  EXPECT_TRUE(Convolve(words, pack).empty());
}

TEST(ConvolutionTest, DeconvolveInverts) {
  Rng rng(17);
  const TapePack pack = MakePack(3, 4);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Word> words(3);
    for (Word& w : words) {
      const int len = static_cast<int>(rng.Below(6));
      for (int i = 0; i < len; ++i) {
        w.push_back(static_cast<Symbol>(rng.Below(4)));
      }
    }
    const std::vector<Label> conv = Convolve(words, pack);
    Result<std::vector<Word>> back = Deconvolve(conv, pack);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(*back, words);
    EXPECT_TRUE(IsValidConvolution(conv, pack));
  }
}

TEST(ConvolutionTest, RejectsLetterAfterBlank) {
  const TapePack pack = MakePack(2, 2);
  const TapeLetter c1[2] = {kBlank, 0};
  const TapeLetter c2[2] = {1, 0};
  const std::vector<Label> bad = {pack.Pack(c1), pack.Pack(c2)};
  EXPECT_FALSE(Deconvolve(bad, pack).ok());
  EXPECT_FALSE(IsValidConvolution(bad, pack));
}

TEST(ConvolutionTest, RejectsAllBlankColumn) {
  const TapePack pack = MakePack(2, 2);
  const std::vector<Label> bad = {pack.AllBlank()};
  EXPECT_FALSE(Deconvolve(bad, pack).ok());
}

}  // namespace
}  // namespace ecrpq
