#include <gtest/gtest.h>

#include "automata/regex.h"

namespace ecrpq {
namespace {

// Compiles `pattern` and checks membership of `word` (one symbol per char).
bool Matches(std::string_view pattern, std::string_view word) {
  Alphabet alphabet = Alphabet::OfChars("ab");
  Result<Nfa> nfa = CompileRegex(pattern, &alphabet);
  EXPECT_TRUE(nfa.ok()) << nfa.status();
  std::vector<Label> labels;
  for (char c : word) {
    auto sym = alphabet.Find(std::string_view(&c, 1));
    EXPECT_TRUE(sym.has_value());
    labels.push_back(*sym);
  }
  return nfa->Accepts(labels);
}

TEST(RegexTest, Literals) {
  EXPECT_TRUE(Matches("ab", "ab"));
  EXPECT_FALSE(Matches("ab", "a"));
  EXPECT_FALSE(Matches("ab", "ba"));
}

TEST(RegexTest, Alternation) {
  EXPECT_TRUE(Matches("a|b", "a"));
  EXPECT_TRUE(Matches("a|b", "b"));
  EXPECT_FALSE(Matches("a|b", "ab"));
  EXPECT_TRUE(Matches("ab|ba", "ba"));
}

TEST(RegexTest, Star) {
  EXPECT_TRUE(Matches("a*", ""));
  EXPECT_TRUE(Matches("a*", "aaaa"));
  EXPECT_FALSE(Matches("a*", "ab"));
  EXPECT_TRUE(Matches("a*b", "b"));
  EXPECT_TRUE(Matches("a*b", "aab"));
}

TEST(RegexTest, PlusAndOpt) {
  EXPECT_FALSE(Matches("a+", ""));
  EXPECT_TRUE(Matches("a+", "a"));
  EXPECT_TRUE(Matches("a+", "aaa"));
  EXPECT_TRUE(Matches("a?b", "b"));
  EXPECT_TRUE(Matches("a?b", "ab"));
  EXPECT_FALSE(Matches("a?b", "aab"));
}

TEST(RegexTest, GroupingAndNesting) {
  EXPECT_TRUE(Matches("(ab)*", ""));
  EXPECT_TRUE(Matches("(ab)*", "abab"));
  EXPECT_FALSE(Matches("(ab)*", "aba"));
  EXPECT_TRUE(Matches("(a|b)*a", "bba"));
  EXPECT_TRUE(Matches("((a|b)(a|b))*", "abba"));
  EXPECT_FALSE(Matches("((a|b)(a|b))*", "aba"));
}

TEST(RegexTest, DotMatchesAnyInternedSymbol) {
  EXPECT_TRUE(Matches(".*", "abab"));
  EXPECT_TRUE(Matches("a.b", "aab"));
  EXPECT_TRUE(Matches("a.b", "abb"));
  EXPECT_FALSE(Matches("a.b", "ab"));
}

TEST(RegexTest, EmptyPatternIsEpsilon) {
  EXPECT_TRUE(Matches("", ""));
  EXPECT_FALSE(Matches("", "a"));
}

TEST(RegexTest, EmptyAlternativeBranch) {
  EXPECT_TRUE(Matches("a|", ""));
  EXPECT_TRUE(Matches("a|", "a"));
}

TEST(RegexTest, Escapes) {
  Alphabet alphabet;
  Result<Nfa> nfa = CompileRegex("\\*\\(", &alphabet);
  ASSERT_TRUE(nfa.ok()) << nfa.status();
  const Symbol star = *alphabet.Find("*");
  const Symbol paren = *alphabet.Find("(");
  EXPECT_TRUE(nfa->Accepts(std::vector<Label>{star, paren}));
}

TEST(RegexTest, ParseErrors) {
  EXPECT_FALSE(ParseRegex("(ab").ok());
  EXPECT_FALSE(ParseRegex("ab)").ok());
  EXPECT_FALSE(ParseRegex("*a").ok());
  EXPECT_FALSE(ParseRegex("a\\").ok());
}

TEST(RegexTest, ToStringRoundTripsThroughParser) {
  for (const char* pattern :
       {"a*b", "(a|b)*", "ab|ba", "a+b?", "a(b|)*", "\\*a"}) {
    Result<RegexPtr> parsed = ParseRegex(pattern);
    ASSERT_TRUE(parsed.ok()) << pattern;
    const std::string rendered = RegexToString(**parsed);
    Result<RegexPtr> reparsed = ParseRegex(rendered);
    ASSERT_TRUE(reparsed.ok()) << rendered;
    // Compile both and compare on a few words.
    Alphabet a1 = Alphabet::OfChars("ab*");
    Alphabet a2 = Alphabet::OfChars("ab*");
    const Nfa n1 = CompileRegex(**parsed, &a1);
    const Nfa n2 = CompileRegex(**reparsed, &a2);
    for (const char* w : {"", "a", "b", "ab", "ba", "aab", "abab"}) {
      std::vector<Label> word;
      bool valid = true;
      for (const char* c = w; *c; ++c) {
        auto sym = a1.Find(std::string_view(c, 1));
        if (!sym.has_value()) {
          valid = false;
          break;
        }
        word.push_back(*sym);
      }
      if (valid) {
        EXPECT_EQ(n1.Accepts(word), n2.Accepts(word))
            << pattern << " vs " << rendered << " on " << w;
      }
    }
  }
}

}  // namespace
}  // namespace ecrpq
