// CacheDifferentialSuite: the cross-query caching layer must be invisible
// in answers. Over many seeded random instances:
//  - cache-on and cache-off evaluation are byte-identical, at 1 and 4
//    worker threads, for the planned router and the CRPQ fast path;
//  - interleaved graph mutations between evaluations never let a stale
//    reach set leak into an answer (the epoch key makes pre-mutation
//    entries unreachable);
//  - warm re-evaluation of the same query equals its own cold run.
// Runs under TSan in CI (tools/ci.sh stage 5) and in the determinism
// stage (stage 6).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "eval/crpq_eval.h"
#include "eval/planner.h"
#include "graphdb/graph_db.h"
#include "query/parser.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

// Random 2-4 variable CRPQs out of a small regex menu — every instance
// routes to the CRPQ pipeline, the layer with all three caches on its path.
EcrpqQuery RandomCrpq(Rng* rng) {
  static const char* kRegexes[] = {"a*", "a*b", "b*a", "(ab)*", "(a|b)*a",
                                   "ab*"};
  const int num_nodes = 2 + static_cast<int>(rng->Below(3));
  const int num_atoms = 1 + static_cast<int>(rng->Below(3));
  std::string text = rng->Chance(0.5) ? "q(x0) := " : "q() := ";
  for (int i = 0; i < num_atoms; ++i) {
    if (i > 0) text += ", ";
    text += "x" + std::to_string(rng->Below(num_nodes)) + " -[/" +
            kRegexes[rng->Below(6)] + "/]-> x" +
            std::to_string(rng->Below(num_nodes));
  }
  Result<EcrpqQuery> q = ParseEcrpq(text, kAb);
  EXPECT_TRUE(q.ok()) << q.status() << "\n" << text;
  return std::move(q).ValueOrDie();
}

GraphDb RandomDb(Rng* rng) {
  const int n = 3 + static_cast<int>(rng->Below(6));  // 3-8 vertices.
  GraphDb db(kAb);
  db.AddVertices(n);
  const int edges = n + static_cast<int>(rng->Below(2 * n));
  for (int e = 0; e < edges; ++e) {
    db.AddEdge(static_cast<VertexId>(rng->Below(n)),
               static_cast<Symbol>(rng->Below(2)),
               static_cast<VertexId>(rng->Below(n)));
  }
  return db;
}

void Mutate(GraphDb* db, Rng* rng) {
  const int n = static_cast<int>(db->NumVertices());
  db->AddEdge(static_cast<VertexId>(rng->Below(n)),
              static_cast<Symbol>(rng->Below(2)),
              static_cast<VertexId>(rng->Below(n)));
}

class CacheDifferentialSuite : public ::testing::TestWithParam<uint64_t> {};

// Planned evaluation, cache-on vs cache-off, at 1 and 4 threads.
TEST_P(CacheDifferentialSuite, PlannedCacheOnOffByteIdentical) {
  Rng rng(GetParam());
  const EcrpqQuery query = RandomCrpq(&rng);
  const GraphDb db = RandomDb(&rng);

  ClearGlobalCaches();
  for (int threads : {1, 4}) {
    EvalOptions off;
    off.num_threads = threads;
    off.disable_cache = true;
    const EvalResult reference =
        EvaluatePlanned(db, query, off).ValueOrDie();
    // Twice with caches on: the first run populates, the second hits.
    for (int round = 0; round < 2; ++round) {
      EvalOptions on;
      on.num_threads = threads;
      const EvalResult cached = EvaluatePlanned(db, query, on).ValueOrDie();
      ASSERT_EQ(reference.satisfiable, cached.satisfiable)
          << "seed " << GetParam() << " threads " << threads;
      ASSERT_EQ(reference.answers, cached.answers)
          << "seed " << GetParam() << " threads " << threads << " round "
          << round << "\nquery: " << query.ToString();
    }
  }
}

// The CRPQ fast path called directly, same contract.
TEST_P(CacheDifferentialSuite, CrpqFastPathCacheOnOffByteIdentical) {
  Rng rng(GetParam() + 1000);
  const EcrpqQuery query = RandomCrpq(&rng);
  const GraphDb db = RandomDb(&rng);

  ClearGlobalCaches();
  const EvalResult reference =
      EvaluateCrpq(db, query, /*use_treedec=*/true, /*max_answers=*/0,
                   /*obs=*/nullptr, /*disable_cache=*/true)
          .ValueOrDie();
  for (int round = 0; round < 2; ++round) {
    const EvalResult cached = EvaluateCrpq(db, query).ValueOrDie();
    ASSERT_EQ(reference.answers, cached.answers)
        << "seed " << GetParam() << " round " << round << "\nquery: "
        << query.ToString();
  }
}

// Interleaved mutations: evaluate, mutate, evaluate, ... — after every
// mutation the cached answers must equal a cache-off run on the *current*
// graph, never the pre-mutation one.
TEST_P(CacheDifferentialSuite, MutationsNeverYieldStaleAnswers) {
  Rng rng(GetParam() + 2000);
  const EcrpqQuery query = RandomCrpq(&rng);
  GraphDb db = RandomDb(&rng);

  ClearGlobalCaches();
  for (int step = 0; step < 4; ++step) {
    EvalOptions off;
    off.disable_cache = true;
    const EvalResult reference =
        EvaluatePlanned(db, query, off).ValueOrDie();
    const EvalResult cached = EvaluatePlanned(db, query).ValueOrDie();
    ASSERT_EQ(reference.answers, cached.answers)
        << "seed " << GetParam() << " step " << step << "\nquery: "
        << query.ToString();
    Mutate(&db, &rng);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheDifferentialSuite,
                         ::testing::Range<uint64_t>(0, 60));

}  // namespace
}  // namespace ecrpq
