// Union syntax (';'-separated disjuncts) and 2L-graph DOT rendering.
#include <gtest/gtest.h>

#include "eval/uecrpq.h"
#include "graphdb/generators.h"
#include "query/abstraction.h"
#include "query/parser.h"
#include "structure/dot.h"
#include "workloads/query_gen.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

TEST(UnionParserTest, SplitsAndParsesDisjuncts) {
  Result<UecrpqQuery> u = ParseUecrpq(
      "q(x) := x -[/a/]-> y ; q(x) := x -[/b/]-> y", kAb);
  ASSERT_TRUE(u.ok()) << u.status();
  ASSERT_EQ(u->disjuncts.size(), 2u);
  EXPECT_TRUE(ValidateUnion(*u).ok());

  const GraphDb db = PathGraph(4, "ab");
  Result<EvalResult> r = EvaluateUnion(db, *u);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->answers.size(), 3u);  // Starts 0, 2 (a) and 1 (b).
}

TEST(UnionParserTest, SingleDisjunctWorks) {
  Result<UecrpqQuery> u = ParseUecrpq("q() := x -[/a/]-> y", kAb);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->disjuncts.size(), 1u);
}

TEST(UnionParserTest, BadDisjunctPropagatesError) {
  EXPECT_FALSE(ParseUecrpq("q() := x -[/a/]-> y ; garbage", kAb).ok());
  EXPECT_FALSE(ParseUecrpq("q() := x -[/a/]-> y ;", kAb).ok());
}

TEST(UnionParserTest, MixedArityRejectedByValidation) {
  Result<UecrpqQuery> u = ParseUecrpq(
      "q(x) := x -[/a/]-> y ; q() := x -[/b/]-> y", kAb);
  ASSERT_TRUE(u.ok());
  EXPECT_FALSE(ValidateUnion(*u).ok());
}

TEST(TwoLevelDotTest, RendersNodesEdgesHyperedges) {
  Result<EcrpqQuery> q = EqLenStarQuery(kAb, 3);
  ASSERT_TRUE(q.ok());
  const std::string dot = TwoLevelGraphToDot(QueryAbstraction(*q));
  EXPECT_NE(dot.find("graph two_level"), std::string::npos);
  EXPECT_NE(dot.find("v0 -- e0"), std::string::npos);
  EXPECT_NE(dot.find("h0 -- e0 [style=dashed]"), std::string::npos);
  EXPECT_NE(dot.find("h0 -- e2 [style=dashed]"), std::string::npos);
}

}  // namespace
}  // namespace ecrpq
