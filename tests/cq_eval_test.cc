#include <gtest/gtest.h>

#include "common/rng.h"
#include "cq/eval_backtrack.h"
#include "cq/eval_treedec.h"

namespace ecrpq {
namespace {

// A small relational database: edge relation of a directed 4-cycle plus a
// color relation.
RelationalDb CycleDb() {
  RelationalDb db(4);
  Relation* edge = *db.AddRelation("E", 2);
  for (uint32_t v = 0; v < 4; ++v) {
    edge->Add(std::vector<uint32_t>{v, (v + 1) % 4});
  }
  Relation* red = *db.AddRelation("Red", 1);
  red->Add(std::vector<uint32_t>{0});
  red->Add(std::vector<uint32_t>{2});
  db.FinalizeAll();
  return db;
}

CqQuery TriangleQuery() {
  CqQuery q;
  q.num_vars = 3;
  q.atoms = {{"E", {0, 1}}, {"E", {1, 2}}, {"E", {2, 0}}};
  return q;
}

TEST(CqBacktrackTest, PathQueryOnCycle) {
  const RelationalDb db = CycleDb();
  CqQuery q;
  q.num_vars = 3;
  q.free_vars = {0, 2};
  q.atoms = {{"E", {0, 1}}, {"E", {1, 2}}};
  Result<CqEvalResult> r = CqEvaluateBacktracking(db, q);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->satisfiable);
  // Two-step reachability on a 4-cycle: (v, v+2) for each v.
  ASSERT_EQ(r->answers.size(), 4u);
  EXPECT_EQ(r->answers[0], (std::vector<uint32_t>{0, 2}));
}

TEST(CqBacktrackTest, NoTriangleInFourCycle) {
  const RelationalDb db = CycleDb();
  Result<bool> sat = CqSatisfiable(db, TriangleQuery());
  ASSERT_TRUE(sat.ok());
  EXPECT_FALSE(*sat);
}

TEST(CqBacktrackTest, RepeatedVariableWithinAtom) {
  RelationalDb db(3);
  Relation* r = *db.AddRelation("R", 2);
  r->Add(std::vector<uint32_t>{1, 1});
  r->Add(std::vector<uint32_t>{1, 2});
  db.FinalizeAll();
  CqQuery q;
  q.num_vars = 1;
  q.free_vars = {0};
  q.atoms = {{"R", {0, 0}}};  // Diagonal only.
  Result<CqEvalResult> result = CqEvaluateBacktracking(db, q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->answers.size(), 1u);
  EXPECT_EQ(result->answers[0], (std::vector<uint32_t>{1}));
}

TEST(CqBacktrackTest, UncoveredFreeVariableRangesOverDomain) {
  RelationalDb db(3);
  Relation* r = *db.AddRelation("R", 1);
  r->Add(std::vector<uint32_t>{1});
  db.FinalizeAll();
  CqQuery q;
  q.num_vars = 2;
  q.free_vars = {1};          // Not used by any atom.
  q.atoms = {{"R", {0}}};
  Result<CqEvalResult> result = CqEvaluateBacktracking(db, q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answers.size(), 3u);  // Whole domain.
}

TEST(CqBacktrackTest, EmptyQueryIsTrue) {
  RelationalDb db(2);
  db.FinalizeAll();
  CqQuery q;
  q.num_vars = 0;
  Result<bool> sat = CqSatisfiable(db, q);
  ASSERT_TRUE(sat.ok());
  EXPECT_TRUE(*sat);
}

TEST(CqBacktrackTest, MaxAnswersLimits) {
  const RelationalDb db = CycleDb();
  CqQuery q;
  q.num_vars = 2;
  q.free_vars = {0, 1};
  q.atoms = {{"E", {0, 1}}};
  CqEvalOptions options;
  options.max_answers = 2;
  Result<CqEvalResult> r = CqEvaluateBacktracking(db, q, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->answers.size(), 2u);
}

TEST(CqTreeDecTest, AgreesOnHandCases) {
  const RelationalDb db = CycleDb();
  // Satisfiable path query.
  CqQuery path;
  path.num_vars = 3;
  path.free_vars = {0, 2};
  path.atoms = {{"E", {0, 1}}, {"E", {1, 2}}};
  Result<CqEvalResult> bt = CqEvaluateBacktracking(db, path);
  Result<CqEvalResult> td = CqEvaluateTreeDec(db, path);
  ASSERT_TRUE(bt.ok());
  ASSERT_TRUE(td.ok()) << td.status();
  EXPECT_EQ(bt->satisfiable, td->satisfiable);
  EXPECT_EQ(bt->answers, td->answers);
  // Unsatisfiable triangle.
  Result<CqEvalResult> td_tri = CqEvaluateTreeDec(db, TriangleQuery());
  ASSERT_TRUE(td_tri.ok());
  EXPECT_FALSE(td_tri->satisfiable);
}

TEST(CqTreeDecTest, StatsReportWidth) {
  const RelationalDb db = CycleDb();
  CqQuery q;
  q.num_vars = 4;
  q.atoms = {{"E", {0, 1}}, {"E", {1, 2}}, {"E", {2, 3}}};
  TreeDecEvalStats stats;
  Result<CqEvalResult> r = CqEvaluateTreeDec(db, q, {}, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->satisfiable);
  EXPECT_LE(stats.width_used, 2);
  EXPECT_GT(stats.bag_tuples_materialized, 0u);
}

// Differential: backtracking vs tree-decomposition on random CQs.
class CqDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CqDifferentialTest, EnginesAgree) {
  Rng rng(GetParam());
  const uint32_t domain = 4 + static_cast<uint32_t>(rng.Below(3));
  RelationalDb db(domain);
  for (const char* name : {"R", "S"}) {
    Relation* rel = *db.AddRelation(name, 2);
    const int tuples = 3 + static_cast<int>(rng.Below(8));
    for (int i = 0; i < tuples; ++i) {
      rel->Add(std::vector<uint32_t>{
          static_cast<uint32_t>(rng.Below(domain)),
          static_cast<uint32_t>(rng.Below(domain))});
    }
  }
  db.FinalizeAll();
  CqQuery q;
  q.num_vars = 2 + static_cast<int>(rng.Below(3));
  const int atoms = 1 + static_cast<int>(rng.Below(4));
  for (int a = 0; a < atoms; ++a) {
    q.atoms.push_back(
        CqAtom{rng.Chance(0.5) ? "R" : "S",
               {static_cast<CqVarId>(rng.Below(q.num_vars)),
                static_cast<CqVarId>(rng.Below(q.num_vars))}});
  }
  if (rng.Chance(0.5)) q.free_vars.push_back(0);
  Result<CqEvalResult> bt = CqEvaluateBacktracking(db, q);
  Result<CqEvalResult> td = CqEvaluateTreeDec(db, q);
  ASSERT_TRUE(bt.ok()) << bt.status();
  ASSERT_TRUE(td.ok()) << td.status();
  EXPECT_EQ(bt->satisfiable, td->satisfiable) << "seed " << GetParam();
  EXPECT_EQ(bt->answers, td->answers) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CqDifferentialTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace ecrpq
