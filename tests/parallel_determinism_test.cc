// The parallel evaluation layer must be invisible in results: for every
// engine entry point, a pool of N workers produces byte-identical output to
// the sequential run — including early-stop cutoffs and streaming-callback
// sequences. Only EvalStats may differ (concurrently explored branches are
// not un-explored by an early stop).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "automata/regex.h"
#include "common/rng.h"
#include "eval/generic_eval.h"
#include "eval/merge.h"
#include "eval/reduce_to_cq.h"
#include "graphdb/generators.h"
#include "graphdb/rpq_reach.h"
#include "graphdb/tuple_search.h"
#include "query/parser.h"
#include "synchro/join.h"
#include "workloads/db_gen.h"
#include "workloads/query_gen.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

EcrpqQuery Parse(std::string_view text) {
  Result<EcrpqQuery> q = ParseEcrpq(text, kAb);
  EXPECT_TRUE(q.ok()) << q.status();
  return std::move(q).ValueOrDie();
}

EvalResult Eval(const GraphDb& db, const EcrpqQuery& q, EvalOptions options) {
  Result<EvalResult> r = EvaluateGeneric(db, q, options);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).ValueOrDie();
}

// Runs the query sequentially and with a 4-worker pool and expects every
// user-visible field of EvalResult to match.
void ExpectThreadInvariant(const GraphDb& db, const EcrpqQuery& q,
                           EvalOptions options = {}) {
  options.num_threads = 1;
  const EvalResult seq = Eval(db, q, options);
  options.num_threads = 4;
  const EvalResult par = Eval(db, q, options);
  EXPECT_EQ(seq.satisfiable, par.satisfiable);
  EXPECT_EQ(seq.aborted, par.aborted);
  EXPECT_EQ(seq.answers, par.answers);
  EXPECT_EQ(seq.first_assignment, par.first_assignment);
}

TEST(ParallelDeterminismTest, TwoPathEqLenAnswers) {
  ExpectThreadInvariant(
      CycleGraph(6, "ab"),
      Parse("q(x, y) := x -[p1]-> y, x -[p2]-> y, eqlen(p1, p2)"));
}

TEST(ParallelDeterminismTest, LayeredDagWorkloads) {
  Rng rng(61);
  const GraphDb db = LayeredDag(&rng, 4, 6, 2, 2);
  ExpectThreadInvariant(db, ChainEqLenQuery(kAb, 3).ValueOrDie());
  ExpectThreadInvariant(db, CliqueCrpqQuery(kAb, 3, "a*").ValueOrDie());
  ExpectThreadInvariant(db, EqLenStarQuery(kAb, 3).ValueOrDie());
}

TEST(ParallelDeterminismTest, FreeVariableProjection) {
  Rng rng(7);
  const GraphDb db = RandomGraph(&rng, 12, 2.0, 2);
  ExpectThreadInvariant(db,
                        Parse("q(x, z) := x -[/a(a|b)*/]-> y, y -[/b*/]-> z"));
}

TEST(ParallelDeterminismTest, CaptureAssignment) {
  EvalOptions options;
  options.capture_assignment = true;
  ExpectThreadInvariant(
      CycleGraph(5, "ab"),
      Parse("q(x, y) := x -[p1]-> y, x -[p2]-> y, eqlen(p1, p2)"), options);
}

TEST(ParallelDeterminismTest, MaxAnswersEarlyStop) {
  const GraphDb db = CycleGraph(8, "ab");
  const EcrpqQuery q = Parse("q(x, y) := x -[/a|b/]-> y");
  EvalOptions options;
  options.max_answers = 3;
  // The cutoff must land on the same three answers for every pool size.
  ExpectThreadInvariant(db, q, options);
  options.num_threads = 4;
  const EvalResult par = Eval(db, q, options);
  EXPECT_EQ(par.answers.size(), 3u);
}

TEST(ParallelDeterminismTest, StreamingCallbackSequence) {
  const GraphDb db = CycleGraph(6, "ab");
  const EcrpqQuery q =
      Parse("q(x, y) := x -[p1]-> y, x -[p2]-> y, eqlen(p1, p2)");
  auto stream = [&](int num_threads) {
    std::vector<std::vector<VertexId>> streamed;
    EvalOptions options;
    options.num_threads = num_threads;
    options.on_answer = [&](const std::vector<VertexId>& answer) {
      streamed.push_back(answer);
      return true;
    };
    Eval(db, q, options);
    return streamed;
  };
  // Not just the same set: the same sequence, in the same order.
  EXPECT_EQ(stream(1), stream(4));
}

TEST(ParallelDeterminismTest, StreamingEarlyStopCount) {
  const GraphDb db = CycleGraph(8, "ab");
  const EcrpqQuery q = Parse("q(x, y) := x -[/a|b/]-> y");
  auto stop_after = [&](int num_threads, int limit) {
    std::vector<std::vector<VertexId>> streamed;
    EvalOptions options;
    options.num_threads = num_threads;
    options.on_answer = [&](const std::vector<VertexId>& answer) {
      streamed.push_back(answer);
      return static_cast<int>(streamed.size()) < limit;
    };
    const EvalResult r = Eval(db, q, options);
    EXPECT_EQ(streamed.size(), static_cast<size_t>(limit));
    EXPECT_EQ(r.answers.size(), static_cast<size_t>(limit));
    return streamed;
  };
  EXPECT_EQ(stop_after(1, 3), stop_after(4, 3));
}

TEST(ParallelDeterminismTest, BooleanQueries) {
  const GraphDb db = CycleGraph(4, "ab");
  ExpectThreadInvariant(db, Parse("q() := x -[/ab/]-> y"));
  ExpectThreadInvariant(db, Parse("q() := x -[/aa/]-> y"));  // Unsat.
}

TEST(ParallelDeterminismTest, CqReductionRelations) {
  const GraphDb db = CycleGraph(6, "ab");
  const EcrpqQuery q = ChainEqLenQuery(kAb, 4).ValueOrDie();
  auto eval = [&](int num_threads) {
    ReduceOptions options;
    options.num_threads = num_threads;
    Result<EvalResult> r =
        EvaluateViaCqReduction(db, q, /*use_treedec=*/true, options);
    EXPECT_TRUE(r.ok()) << r.status();
    return std::move(r).ValueOrDie();
  };
  const EvalResult seq = eval(1);
  const EvalResult par = eval(4);
  EXPECT_EQ(seq.satisfiable, par.satisfiable);
  EXPECT_EQ(seq.answers, par.answers);
  EXPECT_EQ(seq.stats.product_states, par.stats.product_states);
}

TEST(ParallelDeterminismTest, CqReductionBudgetError) {
  // Budget violations must also be thread-invariant: both runs abort.
  Rng rng(3);
  const GraphDb db = RandomGraph(&rng, 10, 2.0, 2);
  const EcrpqQuery q = EqLenStarQuery(kAb, 2).ValueOrDie();
  for (int num_threads : {1, 4}) {
    ReduceOptions options;
    options.num_threads = num_threads;
    options.max_tuples = 5;
    Result<CqReduction> r = ReduceToCq(db, q, options);
    EXPECT_FALSE(r.ok()) << "pool size " << num_threads;
  }
}

TEST(ParallelDeterminismTest, RpqReachAllAnyPoolSize) {
  Rng rng(10);
  const GraphDb db = RandomGraph(&rng, 20, 2.5, 2);
  Alphabet alphabet = Alphabet::OfChars("ab");
  Result<Nfa> lang = CompileRegex("a(a|b)*b", &alphabet);
  ASSERT_TRUE(lang.ok()) << lang.status();
  const auto seq = RpqReachAll(db, *lang, 1);
  EXPECT_EQ(seq, RpqReachAll(db, *lang, 2));
  EXPECT_EQ(seq, RpqReachAll(db, *lang, 4));
  EXPECT_TRUE(std::is_sorted(seq.begin(), seq.end()));
}

TEST(ParallelDeterminismTest, DenseAndSparseVisitedAgree) {
  // The dense-bitset BFS is an internal representation switch; both paths
  // must explore the same states and report the same accepting targets.
  Rng rng(42);
  const GraphDb db = RandomGraph(&rng, 9, 2.0, 2);
  const EcrpqQuery q = EqLenStarQuery(kAb, 2).ValueOrDie();
  const std::vector<ComponentPlan> plans = PlanComponents(q);
  ASSERT_FALSE(plans.empty());
  const ComponentPlan& plan = plans[0];
  const int r = static_cast<int>(plan.paths.size());

  auto reach_with = [&](bool disable_dense,
                        const std::vector<VertexId>& sources) {
    Result<JoinMachine> machine =
        JoinMachine::Create(q.alphabet(), plan.machine_components, r);
    EXPECT_TRUE(machine.ok()) << machine.status();
    TupleSearchOptions options;
    options.disable_dense_visited = disable_dense;
    Result<TupleSearcher> searcher =
        TupleSearcher::Create(&db, &*machine, options);
    EXPECT_TRUE(searcher.ok()) << searcher.status();
    ReachSet copy = searcher->Reach(sources);
    return copy;
  };

  const VertexId n = static_cast<VertexId>(db.NumVertices());
  for (VertexId u = 0; u < n; ++u) {
    const std::vector<VertexId> sources(r, u);
    const ReachSet dense = reach_with(false, sources);
    const ReachSet sparse = reach_with(true, sources);
    EXPECT_EQ(dense.targets, sparse.targets) << "source " << u;
    EXPECT_EQ(dense.explored_states, sparse.explored_states) << "source " << u;
    EXPECT_EQ(dense.aborted, sparse.aborted);
  }
}

TEST(ParallelDeterminismTest, DenseAndSparseAgreeOnBudgetAbort) {
  const GraphDb db = CycleGraph(6, "ab");
  const EcrpqQuery q = EqLenStarQuery(kAb, 2).ValueOrDie();
  const std::vector<ComponentPlan> plans = PlanComponents(q);
  ASSERT_FALSE(plans.empty());
  const int r = static_cast<int>(plans[0].paths.size());
  for (bool disable_dense : {false, true}) {
    Result<JoinMachine> machine =
        JoinMachine::Create(q.alphabet(), plans[0].machine_components, r);
    ASSERT_TRUE(machine.ok()) << machine.status();
    TupleSearchOptions options;
    options.disable_dense_visited = disable_dense;
    options.max_states = 3;
    Result<TupleSearcher> searcher =
        TupleSearcher::Create(&db, &*machine, options);
    ASSERT_TRUE(searcher.ok()) << searcher.status();
    const ReachSet& reach = searcher->Reach(std::vector<VertexId>(r, 0));
    EXPECT_TRUE(reach.aborted);
    EXPECT_EQ(reach.explored_states, 3u);
  }
}

TEST(ParallelDeterminismTest, ReachManyMatchesSequentialReach) {
  Rng rng(5);
  const GraphDb db = RandomGraph(&rng, 8, 2.0, 2);
  const EcrpqQuery q = EqLenStarQuery(kAb, 2).ValueOrDie();
  const std::vector<ComponentPlan> plans = PlanComponents(q);
  ASSERT_FALSE(plans.empty());
  const int r = static_cast<int>(plans[0].paths.size());

  std::vector<std::vector<VertexId>> sources;
  const VertexId n = static_cast<VertexId>(db.NumVertices());
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) {
      sources.push_back({u, v});
    }
  }
  ASSERT_EQ(r, 2);

  // Reference: one searcher, no pool.
  Result<JoinMachine> ref_machine =
      JoinMachine::Create(q.alphabet(), plans[0].machine_components, r);
  ASSERT_TRUE(ref_machine.ok());
  Result<TupleSearcher> ref =
      TupleSearcher::Create(&db, &*ref_machine, TupleSearchOptions{});
  ASSERT_TRUE(ref.ok());

  // Pool of 3 workers, one searcher each.
  db.Finalize();
  std::vector<JoinMachine> machines;
  std::vector<TupleSearcher> searchers;
  machines.reserve(3);
  searchers.reserve(3);
  std::vector<TupleSearcher*> ptrs;
  for (int w = 0; w < 3; ++w) {
    machines.push_back(
        JoinMachine::Create(q.alphabet(), plans[0].machine_components, r)
            .ValueOrDie());
    searchers.push_back(
        TupleSearcher::Create(&db, &machines.back(), TupleSearchOptions{})
            .ValueOrDie());
    ptrs.push_back(&searchers.back());
  }
  ThreadPool pool(3);
  const std::vector<const ReachSet*> results =
      ReachMany(ptrs, sources, &pool);
  ASSERT_EQ(results.size(), sources.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    ASSERT_NE(results[i], nullptr) << "slot " << i;
    EXPECT_EQ(results[i]->targets, ref->Reach(sources[i]).targets)
        << "slot " << i;
  }
}

}  // namespace
}  // namespace ecrpq
