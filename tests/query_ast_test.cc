#include <gtest/gtest.h>

#include "query/abstraction.h"
#include "query/builder.h"
#include "query/validate.h"
#include "synchro/builders.h"
#include "workloads/query_gen.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

std::shared_ptr<const SyncRelation> Shared(Result<SyncRelation> r) {
  EXPECT_TRUE(r.ok()) << r.status();
  return std::make_shared<const SyncRelation>(std::move(r).ValueOrDie());
}

TEST(BuilderTest, VariablesInternedByName) {
  EcrpqBuilder b(kAb);
  const NodeVarId x1 = b.NodeVar("x");
  const NodeVarId x2 = b.NodeVar("x");
  const NodeVarId y = b.NodeVar("y");
  EXPECT_EQ(x1, x2);
  EXPECT_NE(x1, y);
  EXPECT_EQ(b.PathVar("p"), b.PathVar("p"));
}

TEST(BuilderTest, BuildsExampleTwoOne) {
  Result<EcrpqQuery> q = ExampleTwoOneQuery(kAb);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->NumNodeVars(), 3);
  EXPECT_EQ(q->NumPathVars(), 2);
  EXPECT_EQ(q->free_vars().size(), 2u);
  EXPECT_FALSE(q->IsBoolean());
  EXPECT_FALSE(q->IsCrpq());  // Binary eq-len relation.
  EXPECT_NE(q->ToString().find("eqlen(pi1, pi2)"), std::string::npos);
}

TEST(ValidateTest, PathVarMustAppearExactlyOnce) {
  EcrpqBuilder b(kAb);
  const NodeVarId x = b.NodeVar("x");
  const NodeVarId y = b.NodeVar("y");
  const PathVarId p = b.PathVar("p");
  // Zero reachability atoms for p.
  b.Relate(Shared(EqualLengthRelation(kAb, 1)), {p});
  EXPECT_FALSE(b.Build().ok());
  // Two reachability atoms for p.
  b.Reach(x, p, y);
  b.Reach(y, p, x);
  EXPECT_FALSE(b.Build().ok());
}

TEST(ValidateTest, ArityMismatchRejected) {
  EcrpqBuilder b(kAb);
  const NodeVarId x = b.NodeVar("x");
  const PathVarId p = b.PathVar("p");
  b.Reach(x, p, x);
  b.Relate(Shared(EqualLengthRelation(kAb, 2)), {p});  // Arity 2, one path.
  EXPECT_FALSE(b.Build().ok());
}

TEST(ValidateTest, RepeatedPathVarInAtomRejected) {
  EcrpqBuilder b(kAb);
  const NodeVarId x = b.NodeVar("x");
  const PathVarId p = b.PathVar("p");
  b.Reach(x, p, x);
  b.Relate(Shared(EqualLengthRelation(kAb, 2)), {p, p});
  EXPECT_FALSE(b.Build().ok());
}

TEST(ValidateTest, AlphabetMismatchRejected) {
  EcrpqBuilder b(kAb);
  const NodeVarId x = b.NodeVar("x");
  const PathVarId p = b.PathVar("p");
  b.Reach(x, p, x);
  b.Relate(Shared(EqualLengthRelation(Alphabet::OfChars("abc"), 1)), {p});
  EXPECT_FALSE(b.Build().ok());
}

TEST(ValidateTest, IsCrpqDetection) {
  // One unary language atom per path variable => CRPQ.
  EcrpqBuilder b(kAb);
  const NodeVarId x = b.NodeVar("x");
  const NodeVarId y = b.NodeVar("y");
  Result<PathVarId> p = b.ReachRegex(x, "a*b", y);
  ASSERT_TRUE(p.ok());
  Result<EcrpqQuery> q = b.Build();
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->IsCrpq());

  // A path variable in two relation atoms is not a CRPQ.
  EcrpqBuilder b2(kAb);
  const NodeVarId x2 = b2.NodeVar("x");
  const PathVarId p2 = b2.PathVar("p");
  b2.Reach(x2, p2, x2);
  b2.Relate(Shared(EqualLengthRelation(kAb, 1)), {p2});
  b2.Relate(Shared(EqualLengthRelation(kAb, 1)), {p2});
  Result<EcrpqQuery> q2 = b2.Build();
  ASSERT_TRUE(q2.ok()) << q2.status();
  EXPECT_FALSE(q2->IsCrpq());
}

TEST(BuilderTest, ReachRegexRejectsForeignSymbols) {
  EcrpqBuilder b(kAb);
  const NodeVarId x = b.NodeVar("x");
  const NodeVarId y = b.NodeVar("y");
  EXPECT_FALSE(b.ReachRegex(x, "a*z", y).ok());
}

TEST(AbstractionTest, ExampleTwoOneAbstraction) {
  Result<EcrpqQuery> q = ExampleTwoOneQuery(kAb);
  ASSERT_TRUE(q.ok());
  const TwoLevelGraph g = QueryAbstraction(*q);
  EXPECT_EQ(g.num_vertices, 3);
  EXPECT_EQ(g.NumEdges(), 2);
  EXPECT_EQ(g.NumHyperedges(), 1);  // The eq-len atom; no singletons needed.
  EXPECT_TRUE(g.Validate().ok());
}

TEST(AbstractionTest, ImplicitUniversalSingletons) {
  EcrpqBuilder b(kAb);
  const NodeVarId x = b.NodeVar("x");
  const NodeVarId y = b.NodeVar("y");
  const PathVarId p = b.PathVar("p");  // Unconstrained.
  b.Reach(x, p, y);
  Result<EcrpqQuery> q = b.Build();
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(QueryAbstraction(*q, true).NumHyperedges(), 1);
  EXPECT_EQ(QueryAbstraction(*q, false).NumHyperedges(), 0);
}

TEST(AbstractionTest, CrpqGaifmanGraph) {
  Result<EcrpqQuery> q = CliqueCrpqQuery(kAb, 4, "a*");
  ASSERT_TRUE(q.ok());
  const SimpleGraph g = CrpqGaifmanGraph(*q);
  EXPECT_EQ(g.NumVertices(), 4);
  EXPECT_EQ(g.NumEdges(), 6u);  // Complete graph K4.
}

}  // namespace
}  // namespace ecrpq
