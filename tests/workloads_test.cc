#include <gtest/gtest.h>

#include "automata/ine.h"
#include "eval/planner.h"
#include "query/abstraction.h"
#include "structure/measures.h"
#include "workloads/db_gen.h"
#include "workloads/query_gen.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

TEST(QueryGenTest, ChainMeasures) {
  for (int length : {1, 2, 5, 9}) {
    Result<EcrpqQuery> q = ChainEqLenQuery(kAb, length);
    ASSERT_TRUE(q.ok()) << q.status();
    const TwoLevelGraph g = QueryAbstraction(*q);
    EXPECT_LE(CcVertex(g), 2);
    EXPECT_LE(CcHedge(g), 1);
    const TwoLevelMeasures m = ComputeMeasures(g);
    EXPECT_LE(m.treewidth, 3) << "length " << length;
  }
  EXPECT_FALSE(ChainEqLenQuery(kAb, 0).ok());
}

TEST(QueryGenTest, CliqueMeasuresGrowInTreewidth) {
  for (int k : {2, 3, 5}) {
    Result<EcrpqQuery> q = CliqueCrpqQuery(kAb, k, "a*b");
    ASSERT_TRUE(q.ok()) << q.status();
    EXPECT_TRUE(q->IsCrpq());
    const TwoLevelMeasures m = ComputeMeasures(QueryAbstraction(*q));
    EXPECT_EQ(m.cc_vertex, 1);
    EXPECT_EQ(m.treewidth, k - 1);
  }
  EXPECT_FALSE(CliqueCrpqQuery(kAb, 1, "a").ok());
}

TEST(QueryGenTest, StarMeasuresGrowInCcVertex) {
  for (int k : {1, 3, 6}) {
    Result<EcrpqQuery> q = EqLenStarQuery(kAb, k);
    ASSERT_TRUE(q.ok()) << q.status();
    const TwoLevelGraph g = QueryAbstraction(*q);
    EXPECT_EQ(CcVertex(g), k);
    EXPECT_EQ(CcHedge(g), 1);
  }
  Result<EcrpqQuery> eq = EqualityStarQuery(kAb, 4);
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(CcVertex(QueryAbstraction(*eq)), 4);
}

TEST(QueryGenTest, RandomCrpqIsValidCrpq) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    Result<EcrpqQuery> q = RandomCrpqQuery(&rng, kAb, 3, 4);
    ASSERT_TRUE(q.ok()) << q.status();
    EXPECT_TRUE(q->IsCrpq());
    EXPECT_EQ(q->reach_atoms().size(), 4u);
  }
}

TEST(DbGenTest, LayeredDagIsAcyclicByConstruction) {
  Rng rng(4);
  const GraphDb db = LayeredDag(&rng, 4, 5, 2, 2);
  EXPECT_EQ(db.NumVertices(), 20);
  // All edges go from layer l to layer l+1.
  for (VertexId v = 0; v < 20; ++v) {
    for (const LabeledEdge& e : db.OutEdges(v)) {
      EXPECT_EQ(e.to / 5, v / 5 + 1);
    }
  }
  // Last layer has no out-edges.
  for (VertexId v = 15; v < 20; ++v) {
    EXPECT_TRUE(db.OutEdges(v).empty());
  }
}

TEST(DbGenTest, PlantedPieInstancesIntersect) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const PieInstance pie = RandomPieInstance(&rng, 4, 6, 2, true);
    // All automata accept the planted word: intersection non-empty.
    std::vector<const Dfa*> ptrs;
    for (const Dfa& dfa : pie.automata) ptrs.push_back(&dfa);
    EXPECT_TRUE(IntersectionNonEmpty(ptrs).non_empty) << "trial " << trial;
  }
}

TEST(DbGenTest, IneInstanceMirrorsPie) {
  Rng rng(6);
  const IneInstance ine = RandomIneInstance(&rng, 3, 5, 2, true);
  EXPECT_EQ(ine.languages.size(), 3u);
  EXPECT_EQ(ine.alphabet.size(), 2);
  std::vector<const Nfa*> ptrs;
  for (const Nfa& nfa : ine.languages) ptrs.push_back(&nfa);
  EXPECT_TRUE(IntersectionNonEmpty(ptrs).non_empty);
}

}  // namespace
}  // namespace ecrpq
