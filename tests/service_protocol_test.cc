// Service wire-protocol robustness: every line a client can throw at a
// session — malformed JSON, truncations, oversized payloads, unknown
// fields, duplicate ids, interleaved mutations — must come back as exactly
// one parseable response line with a status, and the session must keep
// serving afterwards. Never a crash, never a hang, never a dropped line.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "service/protocol.h"
#include "service/query_service.h"

namespace ecrpq {
namespace {

// The protocol invariant, asserted after every HandleLine in this file:
// the response parses as a JSON object carrying an `id` (string or null)
// and a `status` of "ok" or "error"; errors also carry code + message.
void ExpectWellFormed(const std::string& response, const std::string& input) {
  Result<json::Value> doc = json::Parse(response);
  ASSERT_TRUE(doc.ok()) << "unparseable response '" << response
                        << "' for input '" << input << "'";
  ASSERT_TRUE(doc->is_object()) << response;
  const json::Value* id = doc->Find("id");
  ASSERT_NE(id, nullptr) << response;
  EXPECT_TRUE(id->is_string() || id->is_null()) << response;
  std::string status;
  ASSERT_TRUE(doc->GetString("status", &status)) << response;
  ASSERT_TRUE(status == "ok" || status == "error") << response;
  if (status == "error") {
    std::string code, message;
    EXPECT_TRUE(doc->GetString("code", &code)) << response;
    EXPECT_TRUE(doc->GetString("message", &message)) << response;
    EXPECT_NE(code, "ok") << response;
  }
}

std::string Handle(ServiceSession* session, const std::string& line) {
  const std::string response = session->HandleLine(line);
  ExpectWellFormed(response, line);
  return response;
}

bool IsError(const std::string& response, const std::string& code) {
  Result<json::Value> doc = json::Parse(response);
  std::string got;
  return doc.ok() && doc->GetString("code", &got) && got == code;
}

bool IsOk(const std::string& response) {
  Result<json::Value> doc = json::Parse(response);
  std::string status;
  return doc.ok() && doc->GetString("status", &status) && status == "ok";
}

TEST(ServiceProtocolTest, MalformedLinesAlwaysStructuredErrors) {
  QueryService service{ServiceConfig{}};
  auto session = service.OpenSession();
  const std::vector<std::string> kBad = {
      "",                          // Empty (the drivers skip blanks, but
                                   // HandleLine itself must survive one).
      "not json at all",
      "{",                         // Truncated object.
      "[1,2,3]",                   // Not an object.
      "42",                        // Not an object.
      "null",
      "{}",                        // No id.
      "{\"id\":\"x\"}",            // No op.
      "{\"id\":\"\",\"op\":\"ping\"}",         // Empty id.
      "{\"id\":42,\"op\":\"ping\"}",           // Non-string id.
      "{\"id\":\"x\",\"op\":\"fly\"}",         // Unknown op.
      "{\"id\":\"x\",\"op\":\"ping\",\"extra\":1}",      // Unknown field.
      "{\"id\":\"x\",\"op\":\"ping\",\"id\":\"y\"}",     // Duplicate field.
      "{\"id\":\"x\",\"op\":\"query\"}",                 // Missing query.
      "{\"id\":\"x\",\"op\":\"query\",\"query\":\"\"}",  // Empty query.
      "{\"id\":\"x\",\"op\":\"query\",\"query\":\"q() := \"}",  // Bad text.
      "{\"id\":\"x\",\"op\":\"query\",\"query\":\"q(x) := x -[/a/]-> y\","
      "\"engine\":\"warp\"}",                            // Unknown engine.
      "{\"id\":\"x\",\"op\":\"query\",\"query\":\"q(x) := x -[/a/]-> y\","
      "\"max_answers\":-1}",                             // Negative uint.
      "{\"id\":\"x\",\"op\":\"query\",\"query\":\"q(x) := x -[/a/]-> y\","
      "\"max_answers\":1.5}",                            // Non-integral.
      "{\"id\":\"x\",\"op\":\"query\",\"query\":\"q(x) := x -[/a/]-> y\","
      "\"no_cache\":\"yes\"}",                           // Wrong type.
      "{\"id\":\"x\",\"op\":\"query\",\"query\":\"q(x) := x -[/a/]-> y\","
      "\"graph\":\"nope\"}",                             // Unknown graph.
      "{\"id\":\"x\",\"op\":\"add_edge\",\"from\":0,\"to\":0}",  // No symbol.
      "{\"id\":\"x\",\"op\":\"add_edge\",\"from\":5,\"symbol\":\"a\","
      "\"to\":0}",                                       // Out of range.
      "{\"id\":\"x\",\"op\":\"add_vertex\",\"count\":0}",
      "{\"id\":\"x\",\"op\":\"create_graph\",\"graph\":\"default\"}",  // Dup.
      "{\"id\":\"x\",\"op\":\"create_graph\",\"graph\":\"g\","
      "\"text\":\"vertices 1\",\"alphabet\":\"ab\"}",    // text AND alphabet.
      "{\"id\":\"x\",\"op\":\"ping\",\"graph\":\"\"}",   // Empty graph name.
  };
  int probe = 0;
  for (const std::string& line : kBad) {
    const std::string response = Handle(session.get(), line);
    std::string status;
    ASSERT_TRUE(json::Parse(response)->GetString("status", &status));
    EXPECT_EQ(status, "error") << line << " -> " << response;
    // The session survives every one of them.
    EXPECT_TRUE(IsOk(Handle(session.get(),
                            "{\"id\":\"alive-" + std::to_string(probe++) +
                                "\",\"op\":\"ping\"}")));
  }
}

TEST(ServiceProtocolTest, TraceAndStatsOpsMalformedInputs) {
  QueryService service{ServiceConfig{}};
  auto session = service.OpenSession();
  std::vector<std::string> bad = {
      "{\"id\":\"x\",\"op\":\"ping\",\"trace_id\":\"t\","
      "\"trace_id\":\"u\"}",                          // Duplicate trace_id.
      "{\"id\":\"x\",\"op\":\"ping\",\"trace_id\":\"\"}",   // Empty.
      "{\"id\":\"x\",\"op\":\"ping\",\"trace_id\":42}",     // Non-string.
      "{\"id\":\"x\",\"op\":\"ping\",\"trace_id\":\"has space\"}",
      "{\"id\":\"x\",\"op\":\"ping\",\"trace_id\":\"tab\\there\"}",
      "{\"id\":\"x\",\"op\":\"stats\",\"format\":\"xml\"}",  // Unknown fmt.
      "{\"id\":\"x\",\"op\":\"stats\",\"format\":7}",        // Non-string.
      "{\"id\":\"x\",\"op\":\"stats\",\"query\":\"q\"}",     // Field of
                                                             // another op.
      "{\"id\":\"x\",\"op\":\"trace\"}",               // No trace_id.
      "{\"id\":\"x\",\"op\":\"trace\",\"trace_id\":\"t\",\"extra\":1}",
  };
  // Oversized trace_id (limit is 128 bytes).
  bad.push_back("{\"id\":\"x\",\"op\":\"ping\",\"trace_id\":\"" +
                std::string(129, 'a') + "\"}");
  int probe = 0;
  for (const std::string& line : bad) {
    const std::string response = Handle(session.get(), line);
    std::string status;
    ASSERT_TRUE(json::Parse(response)->GetString("status", &status));
    EXPECT_EQ(status, "error") << line << " -> " << response;
    EXPECT_TRUE(IsOk(Handle(session.get(),
                            "{\"id\":\"alive-" + std::to_string(probe++) +
                                "\",\"op\":\"ping\"}")));
  }
  // A trace_id on an UNKNOWN op is still echoed on the error line: the
  // best-effort recovery pass pulls a valid trace_id out of the rejected
  // request so the client can correlate the failure.
  const std::string unknown_op = Handle(
      session.get(),
      "{\"id\":\"x\",\"op\":\"fly\",\"trace_id\":\"corr-7\"}");
  EXPECT_TRUE(IsError(unknown_op, "invalid_argument")) << unknown_op;
  Result<json::Value> doc = json::Parse(unknown_op);
  std::string echoed;
  ASSERT_TRUE(doc->GetString("trace_id", &echoed)) << unknown_op;
  EXPECT_EQ(echoed, "corr-7");
  // Asking for a trace nobody retained is not_found, not a crash.
  const std::string missing = Handle(
      session.get(),
      "{\"id\":\"y\",\"op\":\"trace\",\"trace_id\":\"never-ran\"}");
  EXPECT_TRUE(IsError(missing, "not_found")) << missing;
}

// One line from the exposition: "<name> <value>". Returns false when the
// metric is absent (the "# TYPE" comment lines never match).
bool FindMetric(const std::string& exposition, const std::string& name,
                uint64_t* value) {
  size_t pos = 0;
  while (pos < exposition.size()) {
    size_t eol = exposition.find('\n', pos);
    if (eol == std::string::npos) eol = exposition.size();
    const std::string line = exposition.substr(pos, eol - pos);
    if (line.size() > name.size() + 1 &&
        line.compare(0, name.size(), name) == 0 &&
        line[name.size()] == ' ') {
      *value = std::stoull(line.substr(name.size() + 1));
      return true;
    }
    pos = eol + 1;
  }
  return false;
}

// The exposition's gauge-group contract under fire: 8 threads hammer the
// service with interleaved mutations and queries (the admission slots are
// scarce, so a real mix of admitted and rejected) while the main thread
// scrapes snapshots. EVERY snapshot — not just the drained end state —
// must satisfy the admission identities, because the whole group is
// produced by one locked counters() call.
TEST(ServiceProtocolTest, ExpositionIdentitiesHoldUnderMutationStorm) {
  ServiceConfig config;
  config.pool_threads = 1;
  config.admission.max_concurrent = 2;  // Scarce: forces live rejections.
  QueryService service(config);

  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 25;
  std::atomic<int> remaining{kThreads};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&service, &remaining, t] {
      auto session = service.OpenSession();
      const std::string g = "storm" + std::to_string(t);
      session->HandleLine("{\"id\":\"c\",\"op\":\"create_graph\","
                          "\"graph\":\"" + g + "\",\"alphabet\":\"ab\"}");
      session->HandleLine("{\"id\":\"v\",\"op\":\"add_vertex\","
                          "\"graph\":\"" + g + "\",\"count\":4}");
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const std::string tag = std::to_string(i);
        session->HandleLine(
            "{\"id\":\"e" + tag + "\",\"op\":\"add_edge\",\"graph\":\"" +
            g + "\",\"from\":" + std::to_string(i % 4) +
            ",\"symbol\":\"a\",\"to\":" + std::to_string((i + 1) % 4) + "}");
        // Admitted or rejected, the response is structured either way;
        // what this test pins is the accounting, not the outcome.
        session->HandleLine(
            "{\"id\":\"q" + tag + "\",\"op\":\"query\",\"graph\":\"" + g +
            "\",\"query\":\"q(x) := x -[/a*/]-> y\",\"trace_id\":\"s" +
            std::to_string(t) + "-" + tag + "\"}");
      }
      remaining.fetch_sub(1);
    });
  }

  auto check_snapshot = [&service](bool require_drained) {
    const std::string exposition = service.RenderTelemetry();
    uint64_t submitted = 0, admitted = 0, rejected = 0, released = 0,
             active = 0;
    ASSERT_TRUE(FindMetric(exposition, "ecrpq_admission_submitted",
                           &submitted));
    ASSERT_TRUE(FindMetric(exposition, "ecrpq_admission_admitted",
                           &admitted));
    ASSERT_TRUE(FindMetric(exposition, "ecrpq_admission_rejected",
                           &rejected));
    ASSERT_TRUE(FindMetric(exposition, "ecrpq_admission_released",
                           &released));
    ASSERT_TRUE(FindMetric(exposition, "ecrpq_admission_active", &active));
    EXPECT_EQ(submitted, admitted + rejected);
    EXPECT_EQ(released + active, admitted);
    if (require_drained) {
      EXPECT_EQ(released, admitted);
      EXPECT_EQ(active, 0u);
      EXPECT_EQ(submitted,
                uint64_t{kThreads} * uint64_t{kRequestsPerThread});
    }
  };

  while (remaining.load() > 0) {
    check_snapshot(/*require_drained=*/false);
    if (HasFatalFailure()) break;
  }
  for (std::thread& w : workers) w.join();
  // Drained: released catches admitted, the active gauge is zero, and
  // every query op submitted exactly once.
  check_snapshot(/*require_drained=*/true);
}

TEST(ServiceProtocolTest, OversizedLineRejectedWithoutParsing) {
  ServiceConfig config;
  config.max_line_bytes = 256;
  QueryService service(config);
  auto session = service.OpenSession();
  std::string big = "{\"id\":\"big\",\"op\":\"ping\",\"pad\":\"";
  big += std::string(500, 'x');
  big += "\"}";
  const std::string response = Handle(session.get(), big);
  EXPECT_TRUE(IsError(response, "capacity_exceeded")) << response;
  EXPECT_TRUE(IsOk(Handle(session.get(), "{\"id\":\"p\",\"op\":\"ping\"}")));
}

TEST(ServiceProtocolTest, DuplicateRequestIdsRejectedPerSession) {
  QueryService service{ServiceConfig{}};
  auto session = service.OpenSession();
  EXPECT_TRUE(IsOk(Handle(session.get(), "{\"id\":\"r\",\"op\":\"ping\"}")));
  const std::string dup = Handle(session.get(), "{\"id\":\"r\",\"op\":\"ping\"}");
  EXPECT_TRUE(IsError(dup, "invalid_argument")) << dup;
  // A malformed request does not consume its id: after a protocol error
  // under id "m", a valid request may still use "m".
  Handle(session.get(), "{\"id\":\"m\",\"op\":\"ping\",\"junk\":true}");
  EXPECT_TRUE(IsOk(Handle(session.get(), "{\"id\":\"m\",\"op\":\"ping\"}")));
  // Sessions are independent id scopes.
  auto other = service.OpenSession();
  EXPECT_TRUE(IsOk(Handle(other.get(), "{\"id\":\"r\",\"op\":\"ping\"}")));
}

TEST(ServiceProtocolTest, TruncationsOfValidRequestNeverCrash) {
  QueryService service{ServiceConfig{}};
  auto session = service.OpenSession();
  const std::string full =
      "{\"id\":\"t\",\"op\":\"query\",\"query\":\"q(x) := x -[/a*/]-> y\","
      "\"max_answers\":3,\"stats\":true}";
  for (size_t len = 0; len < full.size(); ++len) {
    // Every proper prefix is invalid JSON or an incomplete request; either
    // way the answer is a structured error, not a crash.
    const std::string response =
        Handle(session.get(), full.substr(0, len));
    std::string status;
    ASSERT_TRUE(json::Parse(response)->GetString("status", &status));
    EXPECT_EQ(status, "error") << full.substr(0, len);
  }
  EXPECT_TRUE(IsOk(Handle(session.get(), full)));
}

TEST(ServiceProtocolTest, InterleavedMutationsKeepSessionCoherent) {
  QueryService service{ServiceConfig{}};
  auto session = service.OpenSession();
  int next_id = 0;
  auto id = [&next_id] { return std::to_string(next_id++); };
  EXPECT_TRUE(IsOk(Handle(
      session.get(), "{\"id\":\"" + id() +
                         "\",\"op\":\"add_vertex\",\"count\":2}")));
  // Garbage between mutations must not corrupt the graph.
  Handle(session.get(), "{\"op\":\"add_vertex\",\"count\":9}");  // No id.
  Handle(session.get(), "{\"id\":\"" + id() +
                            "\",\"op\":\"add_edge\",\"from\":99,"
                            "\"symbol\":\"a\",\"to\":0}");  // Out of range.
  EXPECT_TRUE(IsOk(Handle(
      session.get(), "{\"id\":\"" + id() +
                         "\",\"op\":\"add_edge\",\"from\":0,"
                         "\"symbol\":\"a\",\"to\":1}")));
  const std::string response = Handle(
      session.get(), "{\"id\":\"" + id() +
                         "\",\"op\":\"query\",\"query\":"
                         "\"q(x) := x -[/a/]-> y\"}");
  Result<json::Value> doc = json::Parse(response);
  ASSERT_TRUE(doc.ok());
  // Exactly the two vertices and one edge of the VALID mutations: the
  // rejected ones (no id, endpoint 99) left no trace.
  uint64_t num_answers = ~uint64_t{0};
  ASSERT_TRUE(doc->GetUint64("num_answers", &num_answers)) << response;
  EXPECT_EQ(num_answers, 1u) << response;
}

class ServiceProtocolFuzz : public ::testing::TestWithParam<uint64_t> {};

std::string RandomBytes(Rng* rng, int max_len, std::string_view charset) {
  std::string out;
  const int len = static_cast<int>(rng->Below(max_len + 1));
  for (int i = 0; i < len; ++i) {
    out += charset[rng->Below(charset.size())];
  }
  return out;
}

TEST_P(ServiceProtocolFuzz, ByteSoupNeverCrashesTheSession) {
  Rng rng(GetParam());
  QueryService service{ServiceConfig{}};
  auto session = service.OpenSession();
  // JSON-flavoured soup: heavy on structure characters so a fair share of
  // lines get past the JSON parser into request validation.
  constexpr std::string_view kCharset =
      "{}[]\":,. \\abxyq0123456789idopngrhstuvePQ-/*";
  for (int i = 0; i < 300; ++i) {
    Handle(session.get(), RandomBytes(&rng, 120, kCharset));
  }
  EXPECT_TRUE(IsOk(Handle(session.get(), "{\"id\":\"end\",\"op\":\"ping\"}")));
}

TEST_P(ServiceProtocolFuzz, MutatedValidRequestsNeverCrashTheSession) {
  Rng rng(GetParam() + 1000);
  QueryService service{ServiceConfig{}};
  auto session = service.OpenSession();
  const std::vector<std::string> kTemplates = {
      "{\"id\":\"$\",\"op\":\"ping\"}",
      "{\"id\":\"$\",\"op\":\"stats\"}",
      "{\"id\":\"$\",\"op\":\"add_vertex\",\"count\":3}",
      "{\"id\":\"$\",\"op\":\"add_edge\",\"from\":1,\"symbol\":\"a\","
      "\"to\":2}",
      "{\"id\":\"$\",\"op\":\"query\",\"query\":\"q(x) := x -[/ab*/]-> y\","
      "\"max_answers\":4}",
      "{\"id\":\"$\",\"op\":\"create_graph\",\"graph\":\"g$\","
      "\"alphabet\":\"ab\"}",
  };
  for (int i = 0; i < 300; ++i) {
    std::string line = kTemplates[rng.Below(kTemplates.size())];
    // Unique ids so the valid survivors are not all duplicate-id errors.
    const std::string tag = std::to_string(i);
    for (size_t pos = line.find('$'); pos != std::string::npos;
         pos = line.find('$')) {
      line.replace(pos, 1, tag);
    }
    // Corrupt 0-3 random bytes.
    const int flips = static_cast<int>(rng.Below(4));
    for (int f = 0; f < flips; ++f) {
      line[rng.Below(line.size())] =
          static_cast<char>(32 + rng.Below(95));
    }
    Handle(session.get(), line);
  }
  EXPECT_TRUE(IsOk(Handle(session.get(), "{\"id\":\"end\",\"op\":\"ping\"}")));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServiceProtocolFuzz,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace ecrpq
