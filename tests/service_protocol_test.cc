// Service wire-protocol robustness: every line a client can throw at a
// session — malformed JSON, truncations, oversized payloads, unknown
// fields, duplicate ids, interleaved mutations — must come back as exactly
// one parseable response line with a status, and the session must keep
// serving afterwards. Never a crash, never a hang, never a dropped line.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "service/protocol.h"
#include "service/query_service.h"

namespace ecrpq {
namespace {

// The protocol invariant, asserted after every HandleLine in this file:
// the response parses as a JSON object carrying an `id` (string or null)
// and a `status` of "ok" or "error"; errors also carry code + message.
void ExpectWellFormed(const std::string& response, const std::string& input) {
  Result<json::Value> doc = json::Parse(response);
  ASSERT_TRUE(doc.ok()) << "unparseable response '" << response
                        << "' for input '" << input << "'";
  ASSERT_TRUE(doc->is_object()) << response;
  const json::Value* id = doc->Find("id");
  ASSERT_NE(id, nullptr) << response;
  EXPECT_TRUE(id->is_string() || id->is_null()) << response;
  std::string status;
  ASSERT_TRUE(doc->GetString("status", &status)) << response;
  ASSERT_TRUE(status == "ok" || status == "error") << response;
  if (status == "error") {
    std::string code, message;
    EXPECT_TRUE(doc->GetString("code", &code)) << response;
    EXPECT_TRUE(doc->GetString("message", &message)) << response;
    EXPECT_NE(code, "ok") << response;
  }
}

std::string Handle(ServiceSession* session, const std::string& line) {
  const std::string response = session->HandleLine(line);
  ExpectWellFormed(response, line);
  return response;
}

bool IsError(const std::string& response, const std::string& code) {
  Result<json::Value> doc = json::Parse(response);
  std::string got;
  return doc.ok() && doc->GetString("code", &got) && got == code;
}

bool IsOk(const std::string& response) {
  Result<json::Value> doc = json::Parse(response);
  std::string status;
  return doc.ok() && doc->GetString("status", &status) && status == "ok";
}

TEST(ServiceProtocolTest, MalformedLinesAlwaysStructuredErrors) {
  QueryService service{ServiceConfig{}};
  auto session = service.OpenSession();
  const std::vector<std::string> kBad = {
      "",                          // Empty (the drivers skip blanks, but
                                   // HandleLine itself must survive one).
      "not json at all",
      "{",                         // Truncated object.
      "[1,2,3]",                   // Not an object.
      "42",                        // Not an object.
      "null",
      "{}",                        // No id.
      "{\"id\":\"x\"}",            // No op.
      "{\"id\":\"\",\"op\":\"ping\"}",         // Empty id.
      "{\"id\":42,\"op\":\"ping\"}",           // Non-string id.
      "{\"id\":\"x\",\"op\":\"fly\"}",         // Unknown op.
      "{\"id\":\"x\",\"op\":\"ping\",\"extra\":1}",      // Unknown field.
      "{\"id\":\"x\",\"op\":\"ping\",\"id\":\"y\"}",     // Duplicate field.
      "{\"id\":\"x\",\"op\":\"query\"}",                 // Missing query.
      "{\"id\":\"x\",\"op\":\"query\",\"query\":\"\"}",  // Empty query.
      "{\"id\":\"x\",\"op\":\"query\",\"query\":\"q() := \"}",  // Bad text.
      "{\"id\":\"x\",\"op\":\"query\",\"query\":\"q(x) := x -[/a/]-> y\","
      "\"engine\":\"warp\"}",                            // Unknown engine.
      "{\"id\":\"x\",\"op\":\"query\",\"query\":\"q(x) := x -[/a/]-> y\","
      "\"max_answers\":-1}",                             // Negative uint.
      "{\"id\":\"x\",\"op\":\"query\",\"query\":\"q(x) := x -[/a/]-> y\","
      "\"max_answers\":1.5}",                            // Non-integral.
      "{\"id\":\"x\",\"op\":\"query\",\"query\":\"q(x) := x -[/a/]-> y\","
      "\"no_cache\":\"yes\"}",                           // Wrong type.
      "{\"id\":\"x\",\"op\":\"query\",\"query\":\"q(x) := x -[/a/]-> y\","
      "\"graph\":\"nope\"}",                             // Unknown graph.
      "{\"id\":\"x\",\"op\":\"add_edge\",\"from\":0,\"to\":0}",  // No symbol.
      "{\"id\":\"x\",\"op\":\"add_edge\",\"from\":5,\"symbol\":\"a\","
      "\"to\":0}",                                       // Out of range.
      "{\"id\":\"x\",\"op\":\"add_vertex\",\"count\":0}",
      "{\"id\":\"x\",\"op\":\"create_graph\",\"graph\":\"default\"}",  // Dup.
      "{\"id\":\"x\",\"op\":\"create_graph\",\"graph\":\"g\","
      "\"text\":\"vertices 1\",\"alphabet\":\"ab\"}",    // text AND alphabet.
      "{\"id\":\"x\",\"op\":\"ping\",\"graph\":\"\"}",   // Empty graph name.
  };
  int probe = 0;
  for (const std::string& line : kBad) {
    const std::string response = Handle(session.get(), line);
    std::string status;
    ASSERT_TRUE(json::Parse(response)->GetString("status", &status));
    EXPECT_EQ(status, "error") << line << " -> " << response;
    // The session survives every one of them.
    EXPECT_TRUE(IsOk(Handle(session.get(),
                            "{\"id\":\"alive-" + std::to_string(probe++) +
                                "\",\"op\":\"ping\"}")));
  }
}

TEST(ServiceProtocolTest, OversizedLineRejectedWithoutParsing) {
  ServiceConfig config;
  config.max_line_bytes = 256;
  QueryService service(config);
  auto session = service.OpenSession();
  std::string big = "{\"id\":\"big\",\"op\":\"ping\",\"pad\":\"";
  big += std::string(500, 'x');
  big += "\"}";
  const std::string response = Handle(session.get(), big);
  EXPECT_TRUE(IsError(response, "capacity_exceeded")) << response;
  EXPECT_TRUE(IsOk(Handle(session.get(), "{\"id\":\"p\",\"op\":\"ping\"}")));
}

TEST(ServiceProtocolTest, DuplicateRequestIdsRejectedPerSession) {
  QueryService service{ServiceConfig{}};
  auto session = service.OpenSession();
  EXPECT_TRUE(IsOk(Handle(session.get(), "{\"id\":\"r\",\"op\":\"ping\"}")));
  const std::string dup = Handle(session.get(), "{\"id\":\"r\",\"op\":\"ping\"}");
  EXPECT_TRUE(IsError(dup, "invalid_argument")) << dup;
  // A malformed request does not consume its id: after a protocol error
  // under id "m", a valid request may still use "m".
  Handle(session.get(), "{\"id\":\"m\",\"op\":\"ping\",\"junk\":true}");
  EXPECT_TRUE(IsOk(Handle(session.get(), "{\"id\":\"m\",\"op\":\"ping\"}")));
  // Sessions are independent id scopes.
  auto other = service.OpenSession();
  EXPECT_TRUE(IsOk(Handle(other.get(), "{\"id\":\"r\",\"op\":\"ping\"}")));
}

TEST(ServiceProtocolTest, TruncationsOfValidRequestNeverCrash) {
  QueryService service{ServiceConfig{}};
  auto session = service.OpenSession();
  const std::string full =
      "{\"id\":\"t\",\"op\":\"query\",\"query\":\"q(x) := x -[/a*/]-> y\","
      "\"max_answers\":3,\"stats\":true}";
  for (size_t len = 0; len < full.size(); ++len) {
    // Every proper prefix is invalid JSON or an incomplete request; either
    // way the answer is a structured error, not a crash.
    const std::string response =
        Handle(session.get(), full.substr(0, len));
    std::string status;
    ASSERT_TRUE(json::Parse(response)->GetString("status", &status));
    EXPECT_EQ(status, "error") << full.substr(0, len);
  }
  EXPECT_TRUE(IsOk(Handle(session.get(), full)));
}

TEST(ServiceProtocolTest, InterleavedMutationsKeepSessionCoherent) {
  QueryService service{ServiceConfig{}};
  auto session = service.OpenSession();
  int next_id = 0;
  auto id = [&next_id] { return std::to_string(next_id++); };
  EXPECT_TRUE(IsOk(Handle(
      session.get(), "{\"id\":\"" + id() +
                         "\",\"op\":\"add_vertex\",\"count\":2}")));
  // Garbage between mutations must not corrupt the graph.
  Handle(session.get(), "{\"op\":\"add_vertex\",\"count\":9}");  // No id.
  Handle(session.get(), "{\"id\":\"" + id() +
                            "\",\"op\":\"add_edge\",\"from\":99,"
                            "\"symbol\":\"a\",\"to\":0}");  // Out of range.
  EXPECT_TRUE(IsOk(Handle(
      session.get(), "{\"id\":\"" + id() +
                         "\",\"op\":\"add_edge\",\"from\":0,"
                         "\"symbol\":\"a\",\"to\":1}")));
  const std::string response = Handle(
      session.get(), "{\"id\":\"" + id() +
                         "\",\"op\":\"query\",\"query\":"
                         "\"q(x) := x -[/a/]-> y\"}");
  Result<json::Value> doc = json::Parse(response);
  ASSERT_TRUE(doc.ok());
  // Exactly the two vertices and one edge of the VALID mutations: the
  // rejected ones (no id, endpoint 99) left no trace.
  uint64_t num_answers = ~uint64_t{0};
  ASSERT_TRUE(doc->GetUint64("num_answers", &num_answers)) << response;
  EXPECT_EQ(num_answers, 1u) << response;
}

class ServiceProtocolFuzz : public ::testing::TestWithParam<uint64_t> {};

std::string RandomBytes(Rng* rng, int max_len, std::string_view charset) {
  std::string out;
  const int len = static_cast<int>(rng->Below(max_len + 1));
  for (int i = 0; i < len; ++i) {
    out += charset[rng->Below(charset.size())];
  }
  return out;
}

TEST_P(ServiceProtocolFuzz, ByteSoupNeverCrashesTheSession) {
  Rng rng(GetParam());
  QueryService service{ServiceConfig{}};
  auto session = service.OpenSession();
  // JSON-flavoured soup: heavy on structure characters so a fair share of
  // lines get past the JSON parser into request validation.
  constexpr std::string_view kCharset =
      "{}[]\":,. \\abxyq0123456789idopngrhstuvePQ-/*";
  for (int i = 0; i < 300; ++i) {
    Handle(session.get(), RandomBytes(&rng, 120, kCharset));
  }
  EXPECT_TRUE(IsOk(Handle(session.get(), "{\"id\":\"end\",\"op\":\"ping\"}")));
}

TEST_P(ServiceProtocolFuzz, MutatedValidRequestsNeverCrashTheSession) {
  Rng rng(GetParam() + 1000);
  QueryService service{ServiceConfig{}};
  auto session = service.OpenSession();
  const std::vector<std::string> kTemplates = {
      "{\"id\":\"$\",\"op\":\"ping\"}",
      "{\"id\":\"$\",\"op\":\"stats\"}",
      "{\"id\":\"$\",\"op\":\"add_vertex\",\"count\":3}",
      "{\"id\":\"$\",\"op\":\"add_edge\",\"from\":1,\"symbol\":\"a\","
      "\"to\":2}",
      "{\"id\":\"$\",\"op\":\"query\",\"query\":\"q(x) := x -[/ab*/]-> y\","
      "\"max_answers\":4}",
      "{\"id\":\"$\",\"op\":\"create_graph\",\"graph\":\"g$\","
      "\"alphabet\":\"ab\"}",
  };
  for (int i = 0; i < 300; ++i) {
    std::string line = kTemplates[rng.Below(kTemplates.size())];
    // Unique ids so the valid survivors are not all duplicate-id errors.
    const std::string tag = std::to_string(i);
    for (size_t pos = line.find('$'); pos != std::string::npos;
         pos = line.find('$')) {
      line.replace(pos, 1, tag);
    }
    // Corrupt 0-3 random bytes.
    const int flips = static_cast<int>(rng.Below(4));
    for (int f = 0; f < flips; ++f) {
      line[rng.Below(line.size())] =
          static_cast<char>(32 + rng.Below(95));
    }
    Handle(session.get(), line);
  }
  EXPECT_TRUE(IsOk(Handle(session.get(), "{\"id\":\"end\",\"op\":\"ping\"}")));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServiceProtocolFuzz,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace ecrpq
