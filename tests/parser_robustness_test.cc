// Robustness: arbitrary byte soup into every text-format parser must yield
// a Status error or a valid object — never a crash.
#include <gtest/gtest.h>

#include <string>

#include "automata/io.h"
#include "automata/regex.h"
#include "common/rng.h"
#include "graphdb/io.h"
#include "query/parser.h"

namespace ecrpq {
namespace {

std::string RandomBytes(Rng* rng, int max_len, std::string_view charset) {
  std::string out;
  const int len = static_cast<int>(rng->Below(max_len + 1));
  for (int i = 0; i < len; ++i) {
    out += charset[rng->Below(charset.size())];
  }
  return out;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, QueryParserNeverCrashes) {
  Rng rng(GetParam());
  const Alphabet alphabet = Alphabet::OfChars("ab");
  constexpr std::string_view kCharset =
      "abxyzpq()[]-<>,/:=* \t0123456789eqlnprefixhamg";
  for (int i = 0; i < 200; ++i) {
    const std::string text = RandomBytes(&rng, 60, kCharset);
    Result<EcrpqQuery> q = ParseEcrpq(text, alphabet);
    if (q.ok()) {
      // Whatever parsed must re-parse from its own rendering.
      Result<EcrpqQuery> again = ParseEcrpq(q->ToString(), alphabet);
      EXPECT_TRUE(again.ok()) << text << " -> " << q->ToString();
    }
  }
}

TEST_P(FuzzTest, RegexParserNeverCrashes) {
  Rng rng(GetParam() + 100);
  constexpr std::string_view kCharset = "ab()|*+?.\\";
  for (int i = 0; i < 300; ++i) {
    const std::string pattern = RandomBytes(&rng, 25, kCharset);
    Alphabet alphabet = Alphabet::OfChars("ab");
    Result<Nfa> nfa = CompileRegex(pattern, &alphabet);
    if (nfa.ok()) {
      // Compiled regexes accept only words over their alphabet.
      EXPECT_FALSE(nfa->Accepts(std::vector<Label>{999}));
    }
  }
}

TEST_P(FuzzTest, GraphParserNeverCrashes) {
  Rng rng(GetParam() + 200);
  constexpr std::string_view kCharset =
      "abcdefgh vertices edge alphabet\n0123456789#";
  for (int i = 0; i < 200; ++i) {
    const std::string text = RandomBytes(&rng, 80, kCharset);
    Result<GraphDb> db = GraphDbFromString(text);
    if (db.ok()) {
      Result<GraphDb> again = GraphDbFromString(GraphDbToString(*db));
      EXPECT_TRUE(again.ok());
    }
  }
}

TEST_P(FuzzTest, NfaParserNeverCrashes) {
  Rng rng(GetParam() + 300);
  constexpr std::string_view kCharset =
      "states initial accepting trans eps\n0123456789 ";
  for (int i = 0; i < 200; ++i) {
    const std::string text = RandomBytes(&rng, 80, kCharset);
    Result<Nfa> nfa = NfaFromString(text);
    if (nfa.ok()) {
      Result<Nfa> again = NfaFromString(NfaToString(*nfa));
      EXPECT_TRUE(again.ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace ecrpq
