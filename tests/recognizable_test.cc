// Recognizable relations and the CRPQ+Recognizable ≡ UCRPQ collapse
// (paper §1).
#include <gtest/gtest.h>

#include "automata/regex.h"
#include "common/rng.h"
#include "eval/generic_eval.h"
#include "eval/uecrpq.h"
#include "graphdb/generators.h"
#include "query/recognizable.h"
#include "synchro/ops.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

Nfa Compile(std::string_view pattern) {
  Alphabet scratch = kAb;
  Result<Nfa> nfa = CompileRegex(pattern, &scratch);
  EXPECT_TRUE(nfa.ok()) << nfa.status();
  return std::move(nfa).ValueOrDie();
}

// (a* × b*) ∪ (ab × ba): a 2-product binary recognizable relation.
RecognizableRelation SampleRelation() {
  std::vector<RecognizableRelation::Product> products(2);
  products[0].languages.push_back(Compile("a*"));
  products[0].languages.push_back(Compile("b*"));
  products[1].languages.push_back(Compile("ab"));
  products[1].languages.push_back(Compile("ba"));
  Result<RecognizableRelation> rel =
      RecognizableRelation::Create(kAb, 2, std::move(products));
  EXPECT_TRUE(rel.ok()) << rel.status();
  return std::move(rel).ValueOrDie();
}

TEST(RecognizableTest, ContainsUnionOfProducts) {
  const RecognizableRelation rel = SampleRelation();
  EXPECT_TRUE(rel.Contains(std::vector<Word>{{0, 0}, {1}}));     // a*×b*.
  EXPECT_TRUE(rel.Contains(std::vector<Word>{{}, {}}));          // ε, ε.
  EXPECT_TRUE(rel.Contains(std::vector<Word>{{0, 1}, {1, 0}}));  // ab, ba.
  EXPECT_FALSE(rel.Contains(std::vector<Word>{{0, 1}, {1, 1}}));
  EXPECT_FALSE(rel.Contains(std::vector<Word>{{1}, {1}}));
}

TEST(RecognizableTest, CreateValidates) {
  std::vector<RecognizableRelation::Product> products(1);
  products[0].languages.push_back(Compile("a*"));
  // Arity mismatch: one language, arity 2.
  EXPECT_FALSE(RecognizableRelation::Create(kAb, 2, products).ok());
  EXPECT_FALSE(RecognizableRelation::Create(kAb, 0, {}).ok());
}

TEST(RecognizableTest, ToSynchronousAgreesOnSamples) {
  const RecognizableRelation rel = SampleRelation();
  Result<SyncRelation> sync = rel.ToSynchronous();
  ASSERT_TRUE(sync.ok()) << sync.status();
  Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    std::vector<Word> tuple(2);
    for (Word& w : tuple) {
      w.resize(rng.Below(5));
      for (Symbol& s : w) s = static_cast<Symbol>(rng.Below(2));
    }
    ASSERT_EQ(sync->Contains(tuple), rel.Contains(tuple)) << "iter " << i;
  }
}

TEST(RecognizableTest, EmptyUnionIsEmptyRelation) {
  Result<RecognizableRelation> rel =
      RecognizableRelation::Create(kAb, 2, {});
  ASSERT_TRUE(rel.ok());
  Result<SyncRelation> sync = rel->ToSynchronous();
  ASSERT_TRUE(sync.ok());
  EXPECT_TRUE(sync->IsEmpty());
}

TEST(RecognizableQueryTest, UcrpqExpansionCountsDisjuncts) {
  RecognizableQuery q(kAb);
  const NodeVarId x = q.NodeVar("x");
  const NodeVarId y = q.NodeVar("y");
  const PathVarId p1 = q.PathVar("p1");
  const PathVarId p2 = q.PathVar("p2");
  q.Reach(x, p1, y);
  q.Reach(y, p2, x);
  q.Relate(std::make_shared<const RecognizableRelation>(SampleRelation()),
           {p1, p2});
  q.Relate(std::make_shared<const RecognizableRelation>(SampleRelation()),
           {p2, p1});
  Result<UecrpqQuery> union_query = q.ToUcrpq();
  ASSERT_TRUE(union_query.ok()) << union_query.status();
  EXPECT_EQ(union_query->disjuncts.size(), 4u);  // 2 × 2 products.
  for (const EcrpqQuery& disjunct : union_query->disjuncts) {
    EXPECT_TRUE(disjunct.IsCrpq());
  }
}

class RecognizableEquivalenceTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RecognizableEquivalenceTest, UcrpqAndEcrpqFormsAgree) {
  Rng rng(GetParam());
  // Random small database.
  GraphDb db(kAb);
  const int n = 3 + static_cast<int>(rng.Below(2));
  db.AddVertices(n);
  for (int e = 0; e < 3 * n; ++e) {
    db.AddEdge(static_cast<VertexId>(rng.Below(n)),
               static_cast<Symbol>(rng.Below(2)),
               static_cast<VertexId>(rng.Below(n)));
  }

  RecognizableQuery q(kAb);
  const NodeVarId x = q.NodeVar("x");
  const NodeVarId y = q.NodeVar("y");
  const NodeVarId z = q.NodeVar("z");
  const PathVarId p1 = q.PathVar("p1");
  const PathVarId p2 = q.PathVar("p2");
  q.Reach(x, p1, y);
  q.Reach(y, p2, z);
  q.Relate(std::make_shared<const RecognizableRelation>(SampleRelation()),
           {p1, p2});
  q.Free({x, z});

  Result<UecrpqQuery> as_union = q.ToUcrpq();
  ASSERT_TRUE(as_union.ok()) << as_union.status();
  Result<EcrpqQuery> as_ecrpq = q.ToEcrpq();
  ASSERT_TRUE(as_ecrpq.ok()) << as_ecrpq.status();

  Result<EvalResult> via_union = EvaluateUnion(db, *as_union);
  Result<EvalResult> via_ecrpq = EvaluateGeneric(db, *as_ecrpq);
  ASSERT_TRUE(via_union.ok()) << via_union.status();
  ASSERT_TRUE(via_ecrpq.ok()) << via_ecrpq.status();
  EXPECT_EQ(via_union->satisfiable, via_ecrpq->satisfiable)
      << "seed " << GetParam();
  EXPECT_EQ(via_union->answers, via_ecrpq->answers) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecognizableEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 15));

}  // namespace
}  // namespace ecrpq
