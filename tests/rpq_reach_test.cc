#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "automata/regex.h"
#include "common/obs.h"
#include "common/rng.h"
#include "graphdb/generators.h"
#include "graphdb/rpq_reach.h"

namespace ecrpq {
namespace {

Nfa Compile(std::string_view pattern, Alphabet* alphabet) {
  Result<Nfa> nfa = CompileRegex(pattern, alphabet);
  EXPECT_TRUE(nfa.ok()) << nfa.status();
  return std::move(nfa).ValueOrDie();
}

TEST(RpqReachTest, SingleSourceOnPath) {
  // Path a a a a: from vertex 0, language a* reaches everything; language
  // aa reaches exactly vertex 2.
  const GraphDb db = PathGraph(5, "a");
  Alphabet alphabet = Alphabet::OfChars("a");
  const Nfa astar = Compile("a*", &alphabet);
  EXPECT_EQ(RpqReachFrom(db, astar, 0),
            (std::vector<VertexId>{0, 1, 2, 3, 4}));
  const Nfa aa = Compile("aa", &alphabet);
  EXPECT_EQ(RpqReachFrom(db, aa, 0), (std::vector<VertexId>{2}));
  EXPECT_EQ(RpqReachFrom(db, aa, 3), (std::vector<VertexId>{}));
}

TEST(RpqReachTest, EmptyPathMatchesEpsilonLanguage) {
  const GraphDb db = PathGraph(3, "a");
  Alphabet alphabet = Alphabet::OfChars("a");
  const Nfa eps = Compile("", &alphabet);
  EXPECT_EQ(RpqReachFrom(db, eps, 1), (std::vector<VertexId>{1}));
}

TEST(RpqReachTest, AlternatingLabelsOnCycle) {
  // Cycle abab: from 0, (ab)* returns to even positions.
  const GraphDb db = CycleGraph(4, "ab");
  Alphabet alphabet = Alphabet::OfChars("ab");
  const Nfa abstar = Compile("(ab)*", &alphabet);
  EXPECT_EQ(RpqReachFrom(db, abstar, 0), (std::vector<VertexId>{0, 2}));
}

TEST(RpqReachTest, ReachAllMatchesPerSource) {
  Rng rng(10);
  const GraphDb db = RandomGraph(&rng, 15, 2.0, 2);
  Alphabet alphabet = Alphabet::OfChars("ab");
  const Nfa lang = Compile("a(a|b)*b", &alphabet);
  const auto all = RpqReachAll(db, lang);
  for (VertexId u = 0; u < 15; ++u) {
    const auto from_u = RpqReachFrom(db, lang, u);
    for (VertexId v = 0; v < 15; ++v) {
      const bool in_all =
          std::find(all.begin(), all.end(), std::make_pair(u, v)) != all.end();
      const bool in_from =
          std::find(from_u.begin(), from_u.end(), v) != from_u.end();
      ASSERT_EQ(in_all, in_from) << u << " -> " << v;
    }
  }
}

TEST(RpqReachTest, DirectionSwitchFiresOnDenseGraphAndPreservesResults) {
  // A dense random graph with a permissive language saturates the product
  // space within a couple of levels, so the Beamer heuristic must take at
  // least one top-down -> bottom-up switch — this pins the pull phase as
  // live code. Correctness cross-check: the witness search runs a separate
  // sparse 0/1-BFS, so agreement between RpqReachFrom and
  // RpqWitnessPath.has_value() exercises push/pull against an independent
  // traversal.
  Rng rng(77);
  const GraphDb db = RandomGraph(&rng, 24, 6.0, 2);
  Alphabet alphabet = Alphabet::OfChars("ab");
  const Nfa lang = Compile("(a|b)*", &alphabet);
  obs::Session session;
  obs::MetricsShard* shard = session.metrics().AcquireShard();
  uint64_t switches_seen = 0;
  for (VertexId u = 0; u < 24; ++u) {
    const std::vector<VertexId> reached = RpqReachFrom(db, lang, u, shard);
    for (VertexId v = 0; v < 24; ++v) {
      const bool in_reach =
          std::find(reached.begin(), reached.end(), v) != reached.end();
      ASSERT_EQ(in_reach, RpqWitnessPath(db, lang, u, v).has_value())
          << u << " -> " << v;
    }
  }
  switches_seen =
      session.Report()[obs::CounterId::kDirectionSwitches];
  EXPECT_GT(switches_seen, 0u)
      << "dense instance never entered the bottom-up phase; the "
         "direction-optimizing pull path is dead code under this test";
}

TEST(RpqReachTest, WitnessPathIsValidAndInLanguage) {
  Rng rng(11);
  const GraphDb db = RandomGraph(&rng, 12, 2.5, 2);
  Alphabet alphabet = Alphabet::OfChars("ab");
  const Nfa lang = Compile("(a|b)*ab", &alphabet);
  int found = 0;
  for (VertexId u = 0; u < 12; ++u) {
    for (VertexId v : RpqReachFrom(db, lang, u)) {
      const auto path = RpqWitnessPath(db, lang, u, v);
      ASSERT_TRUE(path.has_value()) << u << " -> " << v;
      // Path is connected, starts at u, ends at v, uses real edges.
      VertexId cur = u;
      std::vector<Label> word;
      for (const PathStep& step : *path) {
        EXPECT_EQ(step.from, cur);
        EXPECT_TRUE(db.HasEdge(step.from, step.symbol, step.to));
        word.push_back(step.symbol);
        cur = step.to;
      }
      EXPECT_EQ(cur, v);
      EXPECT_TRUE(lang.Accepts(word));
      ++found;
    }
  }
  EXPECT_GT(found, 0);
}

TEST(RpqReachTest, WitnessAbsentWhenUnreachable) {
  const GraphDb db = PathGraph(3, "a");
  Alphabet alphabet = Alphabet::OfChars("a");
  const Nfa lang = Compile("a", &alphabet);
  EXPECT_FALSE(RpqWitnessPath(db, lang, 2, 0).has_value());
  EXPECT_TRUE(RpqWitnessPath(db, lang, 0, 1).has_value());
}

TEST(RpqReachTest, SelfLoopWitness) {
  // Self-loop edge must appear in the witness even though from == to.
  GraphDb db(Alphabet::OfChars("a"));
  db.AddVertices(1);
  db.AddEdge(0, "a", 0);
  Alphabet alphabet = Alphabet::OfChars("a");
  const Nfa lang = Compile("aa", &alphabet);
  const auto path = RpqWitnessPath(db, lang, 0, 0);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 2u);
}

}  // namespace
}  // namespace ecrpq
