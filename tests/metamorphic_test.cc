// Metamorphic properties of evaluation: semantics-preserving transformations
// of queries and databases must not change answers.
#include <gtest/gtest.h>

#include "eval/generic_eval.h"
#include "eval/merge.h"
#include "eval/planner.h"
#include "graphdb/generators.h"
#include "query/builder.h"
#include "query/parser.h"
#include "synchro/builders.h"
#include "workloads/query_gen.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

EcrpqQuery Parse(std::string_view text) {
  Result<EcrpqQuery> q = ParseEcrpq(text, kAb);
  EXPECT_TRUE(q.ok()) << q.status();
  return std::move(q).ValueOrDie();
}

class MetamorphicTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  GraphDb RandomDb() {
    Rng rng(GetParam());
    GraphDb db(kAb);
    const int n = 3 + static_cast<int>(rng.Below(3));
    db.AddVertices(n);
    const int edges = 3 + static_cast<int>(rng.Below(2 * n));
    for (int e = 0; e < edges; ++e) {
      db.AddEdge(static_cast<VertexId>(rng.Below(n)),
                 static_cast<Symbol>(rng.Below(2)),
                 static_cast<VertexId>(rng.Below(n)));
    }
    return db;
  }
};

TEST_P(MetamorphicTest, AddingUniversalAtomIsNoOp) {
  const GraphDb db = RandomDb();
  const EcrpqQuery base =
      Parse("q(x) := x -[p1]-> y, x -[p2]-> y, eqlen(p1, p2)");
  const EcrpqQuery with_universal = Parse(
      "q(x) := x -[p1]-> y, x -[p2]-> y, eqlen(p1, p2), universal(p1, p2)");
  Result<EvalResult> a = EvaluateGeneric(db, base);
  Result<EvalResult> b = EvaluateGeneric(db, with_universal);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->answers, b->answers);
}

TEST_P(MetamorphicTest, MergedQueryIsEquivalent) {
  const GraphDb db = RandomDb();
  const EcrpqQuery q = Parse(
      "q(x) := x -[p0]-> y, x -[p1]-> y, y -[p2]-> z,"
      " eqlen(p0, p1), prefix(p1, p2)");
  Result<EcrpqQuery> merged = MergeQueryComponents(q);
  ASSERT_TRUE(merged.ok()) << merged.status();
  Result<EvalResult> a = EvaluateGeneric(db, q);
  Result<EvalResult> b = EvaluateGeneric(db, *merged);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->answers, b->answers) << "seed " << GetParam();
}

TEST_P(MetamorphicTest, DisjointUnionPreservesAnswers) {
  // Answers on D are preserved (as a subset with the same ids) when a
  // disjoint copy of another graph is appended.
  const GraphDb db = RandomDb();
  GraphDb bigger = db;
  bigger.AppendDisjoint(CycleGraph(3, "ab"));
  const EcrpqQuery q =
      Parse("q(x, y) := x -[p1]-> y, x -[p2]-> y, eqlen(p1, p2)");
  Result<EvalResult> small = EvaluateGeneric(db, q);
  Result<EvalResult> big = EvaluateGeneric(bigger, q);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(big.ok());
  // Every answer over the original vertices must persist, and no new answer
  // may mention only original vertices without having existed before.
  const VertexId n = static_cast<VertexId>(db.NumVertices());
  std::vector<std::vector<VertexId>> big_restricted;
  for (const auto& answer : big->answers) {
    bool original = true;
    for (VertexId v : answer) original = original && (v < n);
    if (original) big_restricted.push_back(answer);
  }
  EXPECT_EQ(small->answers, big_restricted) << "seed " << GetParam();
}

TEST_P(MetamorphicTest, EdgeAdditionIsMonotone) {
  const GraphDb db = RandomDb();
  GraphDb bigger = db;
  Rng rng(GetParam() * 31 + 7);
  bigger.AddEdge(static_cast<VertexId>(rng.Below(db.NumVertices())),
                 static_cast<Symbol>(rng.Below(2)),
                 static_cast<VertexId>(rng.Below(db.NumVertices())));
  const EcrpqQuery q =
      Parse("q(x, y) := x -[p1]-> y, x -[p2]-> y, eq(p1, p2)");
  Result<EvalResult> before = EvaluateGeneric(db, q);
  Result<EvalResult> after = EvaluateGeneric(bigger, q);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  // Positive queries are monotone under edge additions.
  for (const auto& answer : before->answers) {
    EXPECT_NE(std::find(after->answers.begin(), after->answers.end(), answer),
              after->answers.end())
        << "seed " << GetParam();
  }
}

TEST_P(MetamorphicTest, RelationAtomOrderIrrelevant) {
  const GraphDb db = RandomDb();
  const EcrpqQuery q1 = Parse(
      "q() := x -[p0]-> y, x -[p1]-> y, eqlen(p0, p1), prefix(p0, p1)");
  const EcrpqQuery q2 = Parse(
      "q() := x -[p0]-> y, x -[p1]-> y, prefix(p0, p1), eqlen(p0, p1)");
  Result<EvalResult> a = EvaluateGeneric(db, q1);
  Result<EvalResult> b = EvaluateGeneric(db, q2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->satisfiable, b->satisfiable);
}

TEST_P(MetamorphicTest, StricterRelationShrinksAnswers) {
  // eq ⊆ eqlen: answers under eq must be a subset of answers under eqlen.
  const GraphDb db = RandomDb();
  const EcrpqQuery strict =
      Parse("q(x, y) := x -[p1]-> y, x -[p2]-> y, eq(p1, p2)");
  const EcrpqQuery loose =
      Parse("q(x, y) := x -[p1]-> y, x -[p2]-> y, eqlen(p1, p2)");
  Result<EvalResult> a = EvaluateGeneric(db, strict);
  Result<EvalResult> b = EvaluateGeneric(db, loose);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (const auto& answer : a->answers) {
    EXPECT_NE(std::find(b->answers.begin(), b->answers.end(), answer),
              b->answers.end())
        << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetamorphicTest,
                         ::testing::Range<uint64_t>(0, 15));

}  // namespace
}  // namespace ecrpq
