#include <gtest/gtest.h>

#include "query/parser.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

TEST(ParserTest, ParsesExampleTwoOne) {
  Result<EcrpqQuery> q = ParseEcrpq(
      "q(x, xp) := x -[pi1]-> y, xp -[pi2]-> y, eqlen(pi1, pi2)", kAb);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->NumNodeVars(), 3);
  EXPECT_EQ(q->NumPathVars(), 2);
  EXPECT_EQ(q->free_vars().size(), 2u);
  EXPECT_EQ(q->reach_atoms().size(), 2u);
  EXPECT_EQ(q->rel_atoms().size(), 1u);
  EXPECT_EQ(q->relation(0).arity(), 2);
}

TEST(ParserTest, BooleanQueryEmptyHead) {
  Result<EcrpqQuery> q = ParseEcrpq("q() := x -[p]-> y, lang(/a*b/, p)", kAb);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->IsBoolean());
  EXPECT_TRUE(q->IsCrpq());
}

TEST(ParserTest, RegexSugarCreatesFreshPathVar) {
  Result<EcrpqQuery> q = ParseEcrpq("q(x) := x -[/ab*/]-> y", kAb);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->NumPathVars(), 1);
  EXPECT_EQ(q->rel_atoms().size(), 1u);
  EXPECT_TRUE(q->IsCrpq());
}

TEST(ParserTest, AllBuiltinRelations) {
  Result<EcrpqQuery> q = ParseEcrpq(
      "q() := x -[p1]-> y, x -[p2]-> y, x -[p3]-> y,"
      " eq(p1, p2), eqlen(p2, p3), prefix(p1, p3), lexleq(p1, p2),"
      " universal(p1, p2, p3), hamming(2, p1, p2), edit(1, p2, p3)",
      kAb);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->rel_atoms().size(), 7u);
}

TEST(ParserTest, ErrorsArePositioned) {
  EXPECT_FALSE(ParseEcrpq("q( := x -[p]-> y", kAb).ok());
  EXPECT_FALSE(ParseEcrpq("q() := x -[p]-> ", kAb).ok());
  EXPECT_FALSE(ParseEcrpq("q() := x -[p]-> y, frob(p)", kAb).ok());
  EXPECT_FALSE(ParseEcrpq("q() := x -[p]-> y, eq(p", kAb).ok());
  EXPECT_FALSE(ParseEcrpq("q() := x -[/a*/-> y", kAb).ok());
  EXPECT_FALSE(ParseEcrpq("q() := x -[p]-> y extra", kAb).ok());
}

TEST(ParserTest, RegexOutsideAlphabetRejected) {
  EXPECT_FALSE(ParseEcrpq("q() := x -[/c*/]-> y", kAb).ok());
  EXPECT_FALSE(ParseEcrpq("q() := x -[p]-> y, lang(/zz/, p)", kAb).ok());
}

TEST(ParserTest, ValidationAppliesAfterParsing) {
  // p used in a relation atom but no reachability atom.
  EXPECT_FALSE(ParseEcrpq("q() := x -[q1]-> y, eqlen(q1, q2)", kAb).ok());
  // Repeated path variable within an atom.
  EXPECT_FALSE(ParseEcrpq("q() := x -[p]-> y, eq(p, p)", kAb).ok());
}

TEST(ParserTest, HammingAndEditArities) {
  EXPECT_FALSE(
      ParseEcrpq("q() := x -[p]-> y, hamming(1, p)", kAb).ok());
  EXPECT_FALSE(
      ParseEcrpq("q() := x -[p]-> y, edit(p, p)", kAb).ok());
}

TEST(ParserTest, RoundTripThroughToString) {
  Result<EcrpqQuery> q = ParseEcrpq(
      "q(x) := x -[pi1]-> y, x -[pi2]-> y, eqlen(pi1, pi2)", kAb);
  ASSERT_TRUE(q.ok());
  Result<EcrpqQuery> q2 = ParseEcrpq(q->ToString(), kAb);
  ASSERT_TRUE(q2.ok()) << q2.status() << " for " << q->ToString();
  EXPECT_EQ(q->NumNodeVars(), q2->NumNodeVars());
  EXPECT_EQ(q->NumPathVars(), q2->NumPathVars());
  EXPECT_EQ(q->reach_atoms().size(), q2->reach_atoms().size());
  EXPECT_EQ(q->rel_atoms().size(), q2->rel_atoms().size());
}

}  // namespace
}  // namespace ecrpq
