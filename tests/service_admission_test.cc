// Admission control under concurrent saturation: whatever the thread
// interleaving, the controller's accounting is exact —
//     submitted == admitted + rejected      (every submission decided)
//     released  == admitted                 (every grant returned once)
//     active    == 0                        (gauge drains)
//     active_peak <= max_concurrent         (the limit actually limited)
// — and the RAII ticket makes double-release structurally impossible.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "service/admission.h"
#include "service/query_service.h"

namespace ecrpq {
namespace {

void ExpectDrainedAccounting(const AdmissionCounters& c,
                             uint64_t total_submitted) {
  EXPECT_EQ(c.submitted, total_submitted);
  EXPECT_EQ(c.admitted + c.rejected, c.submitted);
  EXPECT_EQ(c.released, c.admitted);
  EXPECT_EQ(c.active, 0u);
}

TEST(ServiceAdmissionTest, ConcurrentSaturationAccountingIsExact) {
  AdmissionLimits limits;
  limits.max_concurrent = 3;
  limits.policy = OverflowPolicy::kReject;
  AdmissionController controller(limits);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&controller, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i) {
        Result<AdmissionTicket> ticket = controller.Admit({});
        if (!ticket.ok()) {
          EXPECT_EQ(ticket.status().code(), StatusCode::kResourceExhausted);
          continue;
        }
        // Hold the slot briefly so contention actually happens.
        if (rng.Below(4) == 0) std::this_thread::yield();
        // Half the grants release explicitly, half by destructor.
        if (rng.Below(2) == 0) ticket->Release();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const AdmissionCounters c = controller.counters();
  ExpectDrainedAccounting(c, kThreads * kPerThread);
  EXPECT_GE(c.admitted, 1u);
  EXPECT_LE(c.active_peak, 3u);
}

TEST(ServiceAdmissionTest, QueuePolicyAdmitsEveryoneWithinDeadline) {
  AdmissionLimits limits;
  limits.max_concurrent = 1;
  limits.policy = OverflowPolicy::kQueue;
  limits.queue_deadline_millis = 10000;  // Generous: nobody should reject.
  AdmissionController controller(limits);

  constexpr int kThreads = 6;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&controller] {
      for (int i = 0; i < kPerThread; ++i) {
        Result<AdmissionTicket> ticket = controller.Admit({});
        ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const AdmissionCounters c = controller.counters();
  ExpectDrainedAccounting(c, kThreads * kPerThread);
  EXPECT_EQ(c.rejected, 0u);
  EXPECT_EQ(c.admitted, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(c.active_peak, 1u);
}

TEST(ServiceAdmissionTest, QueueDeadlineExpiresIntoRejection) {
  AdmissionLimits limits;
  limits.max_concurrent = 1;
  limits.policy = OverflowPolicy::kQueue;
  limits.queue_deadline_millis = 20;
  AdmissionController controller(limits);

  Result<AdmissionTicket> held = controller.Admit({});
  ASSERT_TRUE(held.ok());
  // The slot never drains, so the second submission must come back
  // rejected after the bounded wait — not hang.
  Result<AdmissionTicket> waited = controller.Admit({});
  ASSERT_FALSE(waited.ok());
  EXPECT_EQ(waited.status().code(), StatusCode::kResourceExhausted);
  const AdmissionCounters mid = controller.counters();
  EXPECT_EQ(mid.queued, 1u);
  EXPECT_EQ(mid.rejected, 1u);
  held->Release();
  ExpectDrainedAccounting(controller.counters(), 2);
}

TEST(ServiceAdmissionTest, ImpossibleChargeRejectsImmediatelyUnderQueue) {
  AdmissionLimits limits;
  limits.max_total_product_states = 100;
  limits.policy = OverflowPolicy::kQueue;
  limits.queue_deadline_millis = 1000 * 60 * 60;  // Would hang if queued.
  AdmissionController controller(limits);

  AdmissionCharge charge;
  charge.product_states = 200;  // Can never fit, no matter what drains.
  Result<AdmissionTicket> ticket = controller.Admit(charge);
  ASSERT_FALSE(ticket.ok());
  EXPECT_EQ(ticket.status().code(), StatusCode::kResourceExhausted);
  const AdmissionCounters c = controller.counters();
  EXPECT_EQ(c.rejected, 1u);
  EXPECT_EQ(c.queued, 0u);  // Never entered the queue.
}

TEST(ServiceAdmissionTest, UncappedAxisReservesTheWholeCap) {
  AdmissionLimits limits;
  limits.max_total_product_states = 1000;
  AdmissionController controller(limits);

  // product_states == 0 means "this query is uncapped": it is charged the
  // full global cap, so nothing else shares the axis while it runs.
  Result<AdmissionTicket> unlimited = controller.Admit({});
  ASSERT_TRUE(unlimited.ok());
  AdmissionCharge small;
  small.product_states = 1;
  Result<AdmissionTicket> second = controller.Admit(small);
  EXPECT_FALSE(second.ok());
  unlimited->Release();
  Result<AdmissionTicket> after = controller.Admit(small);
  EXPECT_TRUE(after.ok());
}

TEST(ServiceAdmissionTest, TicketMoveAndExplicitReleaseNeverDoubleRelease) {
  AdmissionLimits limits;
  limits.max_concurrent = 2;
  AdmissionController controller(limits);
  {
    Result<AdmissionTicket> a = controller.Admit({});
    ASSERT_TRUE(a.ok());
    AdmissionTicket moved = std::move(*a);
    EXPECT_TRUE(moved.valid());
    moved.Release();
    EXPECT_FALSE(moved.valid());
    moved.Release();  // Idempotent.
    // `a`'s shell and `moved` both destruct here; neither may release
    // again.
  }
  AdmissionCounters c = controller.counters();
  EXPECT_EQ(c.admitted, 1u);
  EXPECT_EQ(c.released, 1u);

  {
    Result<AdmissionTicket> b = controller.Admit({});
    ASSERT_TRUE(b.ok());
    Result<AdmissionTicket> c2 = controller.Admit({});
    ASSERT_TRUE(c2.ok());
    // Move-assignment over a live ticket releases the overwritten grant
    // first — two admits, two releases, never three.
    *b = std::move(*c2);
  }
  c = controller.counters();
  ExpectDrainedAccounting(c, 3);
}

// Wire-level integration: a query whose effective budget cannot fit the
// global cap is rejected on the wire as resource_exhausted, and a query
// whose budget trips mid-evaluation reports resource_exhausted WITH its
// partial stats. In both shapes the admission gauge drains back to zero.
TEST(ServiceAdmissionTest, WireRejectionAndBudgetTripBothDrain) {
  ServiceConfig config;
  config.admission.max_total_product_states = 1000;
  QueryService service(config);
  auto session = service.OpenSession();

  // Build a little chain so the query below does real work.
  session->HandleLine("{\"id\":\"v\",\"op\":\"add_vertex\",\"count\":30}");
  for (int i = 0; i + 1 < 30; ++i) {
    session->HandleLine(
        "{\"id\":\"e" + std::to_string(i) + "\",\"op\":\"add_edge\","
        "\"from\":" + std::to_string(i) + ",\"symbol\":\"a\",\"to\":" +
        std::to_string(i + 1) + "}");
  }

  // Reservation larger than the global cap: rejected before evaluation.
  const std::string rejected = session->HandleLine(
      "{\"id\":\"big\",\"op\":\"query\",\"query\":\"q(x) := x -[/a*/]-> y\","
      "\"budget_states\":5000}");
  Result<json::Value> doc = json::Parse(rejected);
  ASSERT_TRUE(doc.ok()) << rejected;
  std::string code;
  ASSERT_TRUE(doc->GetString("code", &code)) << rejected;
  EXPECT_EQ(code, "resource_exhausted");
  EXPECT_EQ(doc->Find("partial_stats"), nullptr) << "never ran" << rejected;

  // Tiny in-cap budget: admitted, then trips during evaluation; the error
  // response carries the partial StatsReport.
  const std::string tripped = session->HandleLine(
      "{\"id\":\"tiny\",\"op\":\"query\",\"query\":\"q(x) := x -[/a*/]-> y\","
      "\"engine\":\"generic\",\"budget_states\":3}");
  doc = json::Parse(tripped);
  ASSERT_TRUE(doc.ok()) << tripped;
  ASSERT_TRUE(doc->GetString("code", &code)) << tripped;
  EXPECT_EQ(code, "resource_exhausted");
  const json::Value* stats = doc->Find("partial_stats");
  ASSERT_NE(stats, nullptr) << tripped;
  EXPECT_TRUE(stats->is_object()) << tripped;

  // In-budget control query still succeeds and the gauge is fully drained.
  const std::string ok = session->HandleLine(
      "{\"id\":\"ok\",\"op\":\"query\",\"query\":\"q(x) := x -[/a/]-> y\","
      "\"budget_states\":900}");
  std::string status;
  ASSERT_TRUE(json::Parse(ok)->GetString("status", &status)) << ok;
  EXPECT_EQ(status, "ok") << ok;

  const AdmissionCounters c = service.admission_counters();
  EXPECT_EQ(c.submitted, 3u);
  EXPECT_EQ(c.admitted, 2u);
  EXPECT_EQ(c.rejected, 1u);
  EXPECT_EQ(c.released, 2u);
  EXPECT_EQ(c.active, 0u);
}

}  // namespace
}  // namespace ecrpq
