// Differential testing: all production engines vs the independent naive
// oracle on randomized small instances.
#include <gtest/gtest.h>

#include "eval/crpq_eval.h"
#include "eval/generic_eval.h"
#include "eval/naive_eval.h"
#include "eval/planner.h"
#include "eval/reduce_to_cq.h"
#include "graphdb/generators.h"
#include "query/builder.h"
#include "synchro/builders.h"
#include "workloads/query_gen.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

std::shared_ptr<const SyncRelation> Shared(Result<SyncRelation> r) {
  EXPECT_TRUE(r.ok()) << r.status();
  return std::make_shared<const SyncRelation>(std::move(r).ValueOrDie());
}

// A random small ECRPQ: 2-4 node vars, 2-4 path atoms, relations drawn from
// {eqlen2, eq2, prefix, hamming1, lang} attached to random path pairs.
Result<EcrpqQuery> RandomEcrpq(Rng* rng) {
  EcrpqBuilder builder(kAb);
  const int num_nodes = 2 + static_cast<int>(rng->Below(3));
  std::vector<NodeVarId> nodes;
  for (int i = 0; i < num_nodes; ++i) {
    nodes.push_back(builder.NodeVar("x" + std::to_string(i)));
  }
  const int num_paths = 2 + static_cast<int>(rng->Below(3));
  std::vector<PathVarId> paths;
  for (int i = 0; i < num_paths; ++i) {
    const PathVarId p = builder.PathVar("p" + std::to_string(i));
    builder.Reach(nodes[rng->Below(num_nodes)], p,
                  nodes[rng->Below(num_nodes)]);
    paths.push_back(p);
  }
  const int num_rel_atoms = 1 + static_cast<int>(rng->Below(2));
  for (int i = 0; i < num_rel_atoms; ++i) {
    const PathVarId a = paths[rng->Below(num_paths)];
    PathVarId b = paths[rng->Below(num_paths)];
    if (b == a) b = paths[(std::find(paths.begin(), paths.end(), a) -
                           paths.begin() + 1) %
                          num_paths];
    if (a == b) {
      // Single path variable: attach a unary language instead.
      builder.Relate(Shared(EqualLengthRelation(kAb, 1)), {a}, "any");
      continue;
    }
    switch (rng->Below(4)) {
      case 0:
        builder.Relate(Shared(EqualLengthRelation(kAb, 2)), {a, b}, "eqlen");
        break;
      case 1:
        builder.Relate(Shared(EqualityRelation(kAb, 2)), {a, b}, "eq");
        break;
      case 2:
        builder.Relate(Shared(PrefixRelation(kAb)), {a, b}, "prefix");
        break;
      default:
        builder.Relate(Shared(HammingAtMostRelation(kAb, 1)), {a, b},
                       "hamming1");
        break;
    }
  }
  if (rng->Chance(0.5)) builder.Free({nodes[0]});
  return builder.Build();
}

GraphDb RandomSmallDb(Rng* rng) {
  const int n = 2 + static_cast<int>(rng->Below(3));  // 2-4 vertices.
  GraphDb db(kAb);
  db.AddVertices(n);
  const int edges = 2 + static_cast<int>(rng->Below(2 * n));
  for (int e = 0; e < edges; ++e) {
    db.AddEdge(static_cast<VertexId>(rng->Below(n)),
               static_cast<Symbol>(rng->Below(2)),
               static_cast<VertexId>(rng->Below(n)));
  }
  return db;
}

class EcrpqDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EcrpqDifferentialTest, GenericMatchesNaive) {
  Rng rng(GetParam());
  Result<EcrpqQuery> q = RandomEcrpq(&rng);
  ASSERT_TRUE(q.ok()) << q.status();
  const GraphDb db = RandomSmallDb(&rng);
  Result<EvalResult> naive = EvaluateNaive(db, *q);
  Result<EvalResult> generic = EvaluateGeneric(db, *q);
  ASSERT_TRUE(naive.ok()) << naive.status();
  ASSERT_TRUE(generic.ok()) << generic.status();
  ASSERT_EQ(naive->satisfiable, generic->satisfiable)
      << "seed " << GetParam() << "\nquery: " << q->ToString();
  ASSERT_EQ(naive->answers, generic->answers)
      << "seed " << GetParam() << "\nquery: " << q->ToString();
}

TEST_P(EcrpqDifferentialTest, CqReductionMatchesNaive) {
  Rng rng(GetParam() + 1000);
  Result<EcrpqQuery> q = RandomEcrpq(&rng);
  ASSERT_TRUE(q.ok()) << q.status();
  const GraphDb db = RandomSmallDb(&rng);
  Result<EvalResult> naive = EvaluateNaive(db, *q);
  Result<EvalResult> via_td = EvaluateViaCqReduction(db, *q, true);
  Result<EvalResult> via_bt = EvaluateViaCqReduction(db, *q, false);
  ASSERT_TRUE(naive.ok()) << naive.status();
  ASSERT_TRUE(via_td.ok()) << via_td.status();
  ASSERT_TRUE(via_bt.ok()) << via_bt.status();
  ASSERT_EQ(naive->satisfiable, via_td->satisfiable)
      << "seed " << GetParam() << "\nquery: " << q->ToString();
  ASSERT_EQ(naive->answers, via_td->answers)
      << "seed " << GetParam() << "\nquery: " << q->ToString();
  ASSERT_EQ(naive->answers, via_bt->answers)
      << "seed " << GetParam() << "\nquery: " << q->ToString();
}

TEST_P(EcrpqDifferentialTest, PlannerMatchesNaive) {
  Rng rng(GetParam() + 2000);
  Result<EcrpqQuery> q = RandomEcrpq(&rng);
  ASSERT_TRUE(q.ok()) << q.status();
  const GraphDb db = RandomSmallDb(&rng);
  Result<EvalResult> naive = EvaluateNaive(db, *q);
  QueryClassification c;
  Result<EvalResult> planned = EvaluatePlanned(db, *q, {}, {}, &c);
  ASSERT_TRUE(naive.ok()) << naive.status();
  ASSERT_TRUE(planned.ok()) << planned.status();
  ASSERT_EQ(naive->satisfiable, planned->satisfiable)
      << "seed " << GetParam() << "\nquery: " << q->ToString()
      << "\nplan: " << c.ToString();
  ASSERT_EQ(naive->answers, planned->answers)
      << "seed " << GetParam() << "\nquery: " << q->ToString();
}

TEST_P(EcrpqDifferentialTest, CrpqEngineMatchesNaiveOnCrpqs) {
  Rng rng(GetParam() + 3000);
  Result<EcrpqQuery> q =
      RandomCrpqQuery(&rng, kAb, 2 + static_cast<int>(rng.Below(3)),
                      2 + static_cast<int>(rng.Below(3)));
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_TRUE(q->IsCrpq());
  const GraphDb db = RandomSmallDb(&rng);
  Result<EvalResult> naive = EvaluateNaive(db, *q);
  Result<EvalResult> crpq = EvaluateCrpq(db, *q);
  ASSERT_TRUE(naive.ok()) << naive.status();
  ASSERT_TRUE(crpq.ok()) << crpq.status();
  ASSERT_EQ(naive->satisfiable, crpq->satisfiable)
      << "seed " << GetParam() << "\nquery: " << q->ToString();
  ASSERT_EQ(naive->answers, crpq->answers)
      << "seed " << GetParam() << "\nquery: " << q->ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcrpqDifferentialTest,
                         ::testing::Range<uint64_t>(0, 30));

}  // namespace
}  // namespace ecrpq
