// Exhaustive differential testing over a complete small world: every
// database on 2 vertices with up to 4 labelled edges (over {a, b}) × a
// fixed battery of queries × every engine. No sampling — if an engine
// disagrees with the oracle anywhere in this space, this test finds it.
#include <gtest/gtest.h>

#include "eval/adaptive.h"
#include "eval/generic_eval.h"
#include "eval/naive_eval.h"
#include "eval/planner.h"
#include "eval/reduce_to_cq.h"
#include "query/parser.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

// All possible directed labelled edges on 2 vertices over 2 symbols.
constexpr int kNumPossibleEdges = 2 * 2 * 2;  // from × symbol × to.

GraphDb DbFromEdgeMask(unsigned mask) {
  GraphDb db(kAb);
  db.AddVertices(2);
  int index = 0;
  for (VertexId from = 0; from < 2; ++from) {
    for (Symbol symbol = 0; symbol < 2; ++symbol) {
      for (VertexId to = 0; to < 2; ++to) {
        if (mask & (1u << index)) db.AddEdge(from, symbol, to);
        ++index;
      }
    }
  }
  return db;
}

std::vector<EcrpqQuery> QueryBattery() {
  std::vector<EcrpqQuery> battery;
  for (const char* text : {
           "q() := x -[p1]-> y, x -[p2]-> y, eqlen(p1, p2),"
           " lang(/ab/, p1)",
           "q(x) := x -[p1]-> y, y -[p2]-> x, eq(p1, p2)",
           "q(x, y) := x -[p1]-> z, y -[p2]-> z, prefix(p1, p2)",
           "q() := x -[/a(a|b)*b/]-> y",
           "q(x) := x -[p1]-> y, x -[p2]-> y, hamming(1, p1, p2),"
           " lang(/(a|b)(a|b)/, p1)",
       }) {
    Result<EcrpqQuery> q = ParseEcrpq(text, kAb);
    EXPECT_TRUE(q.ok()) << q.status();
    battery.push_back(std::move(q).ValueOrDie());
  }
  return battery;
}

class ExhaustiveTest : public ::testing::TestWithParam<int> {};

TEST_P(ExhaustiveTest, AllEnginesMatchOracleOnEveryDatabase) {
  const std::vector<EcrpqQuery> battery = QueryBattery();
  const EcrpqQuery& query = battery[GetParam()];
  for (unsigned mask = 0; mask < (1u << kNumPossibleEdges); ++mask) {
    const GraphDb db = DbFromEdgeMask(mask);
    const EvalResult oracle = EvaluateNaive(db, query).ValueOrDie();
    const EvalResult generic = EvaluateGeneric(db, query).ValueOrDie();
    ASSERT_EQ(oracle.satisfiable, generic.satisfiable) << "mask " << mask;
    ASSERT_EQ(oracle.answers, generic.answers) << "mask " << mask;
    const EvalResult planned = EvaluatePlanned(db, query).ValueOrDie();
    ASSERT_EQ(oracle.answers, planned.answers) << "mask " << mask;
    // Spot-check the heavier pipelines on a subsample to keep runtime sane.
    if (mask % 16 == 0) {
      const EvalResult via_cq =
          EvaluateViaCqReduction(db, query).ValueOrDie();
      ASSERT_EQ(oracle.answers, via_cq.answers) << "mask " << mask;
      const EvalResult adaptive = EvaluateAdaptive(db, query).ValueOrDie();
      ASSERT_EQ(oracle.answers, adaptive.answers) << "mask " << mask;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Battery, ExhaustiveTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace ecrpq
