// Lemma 5.4 (p-IE ≤fpt p-eval-ECRPQ), both cases.
#include <gtest/gtest.h>

#include "automata/ine.h"
#include "eval/generic_eval.h"
#include "reductions/pie_to_ecrpq.h"
#include "workloads/db_gen.h"

namespace ecrpq {
namespace {

bool DirectPie(const PieInstance& pie) {
  std::vector<const Dfa*> ptrs;
  for (const Dfa& dfa : pie.automata) ptrs.push_back(&dfa);
  return IntersectionNonEmpty(ptrs).non_empty;
}

bool EvaluateReduction(const IneReduction& reduction) {
  Result<EvalResult> r = EvaluateGeneric(reduction.db, reduction.query);
  EXPECT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->aborted);
  return r->satisfiable;
}

TEST(PieReductionTest, RejectsEmptyInstance) {
  PieInstance pie;
  pie.alphabet = Alphabet::OfChars("ab");
  EXPECT_FALSE(PieToEcrpqBoundedHyperedges(pie).ok());
  EXPECT_FALSE(PieToEcrpqUnboundedHyperedge(pie).ok());
}

TEST(PieReductionTest, PlantedInstancesSatisfiable) {
  Rng rng(1);
  const PieInstance pie = RandomPieInstance(&rng, 3, 5, 2, true);
  ASSERT_TRUE(DirectPie(pie));
  Result<IneReduction> chain = PieToEcrpqBoundedHyperedges(pie);
  ASSERT_TRUE(chain.ok()) << chain.status();
  EXPECT_TRUE(EvaluateReduction(*chain));
  Result<IneReduction> star = PieToEcrpqUnboundedHyperedge(pie);
  ASSERT_TRUE(star.ok()) << star.status();
  EXPECT_TRUE(EvaluateReduction(*star));
}

TEST(PieReductionTest, FptParameterBound) {
  // Query size must depend only on k, not on the automata sizes.
  Rng rng(2);
  const PieInstance small = RandomPieInstance(&rng, 3, 4, 2, false);
  const PieInstance big = RandomPieInstance(&rng, 3, 20, 2, false);
  Result<IneReduction> rs = PieToEcrpqBoundedHyperedges(small);
  Result<IneReduction> rb = PieToEcrpqBoundedHyperedges(big);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(rs->query.NumPathVars(), rb->query.NumPathVars());
  EXPECT_EQ(rs->query.rel_atoms().size(), rb->query.rel_atoms().size());
  size_t total_small = 0, total_big = 0;
  for (const auto& rel : rs->query.relations()) {
    total_small += rel->nfa().NumStates();
  }
  for (const auto& rel : rb->query.relations()) {
    total_big += rel->nfa().NumStates();
  }
  EXPECT_EQ(total_small, total_big);
}

class PieRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PieRandomTest, BothCasesMatchDirectSolver) {
  Rng rng(GetParam());
  const int k = 2 + static_cast<int>(rng.Below(2));
  const PieInstance pie =
      RandomPieInstance(&rng, k, 3 + static_cast<int>(rng.Below(3)), 2,
                        rng.Chance(0.4));
  const bool expected = DirectPie(pie);

  Result<IneReduction> chain = PieToEcrpqBoundedHyperedges(pie);
  ASSERT_TRUE(chain.ok()) << chain.status();
  EXPECT_EQ(EvaluateReduction(*chain), expected)
      << "seed " << GetParam() << " (chain)";

  Result<IneReduction> star = PieToEcrpqUnboundedHyperedge(pie);
  ASSERT_TRUE(star.ok()) << star.status();
  EXPECT_EQ(EvaluateReduction(*star), expected)
      << "seed " << GetParam() << " (star)";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PieRandomTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace ecrpq
