#include <gtest/gtest.h>

#include "common/rng.h"
#include "graphdb/generators.h"
#include "graphdb/graph_db.h"
#include "graphdb/io.h"

namespace ecrpq {
namespace {

TEST(GraphDbTest, AddVerticesAndEdges) {
  GraphDb db(Alphabet::OfChars("ab"));
  db.AddVertices(3);
  EXPECT_EQ(db.NumVertices(), 3);
  db.AddEdge(0, "a", 1);
  db.AddEdge(1, "b", 2);
  db.AddEdge(0, static_cast<Symbol>(1), 2);
  EXPECT_EQ(db.NumEdges(), 3u);
  EXPECT_TRUE(db.HasEdge(0, 0, 1));
  EXPECT_TRUE(db.HasEdge(0, 1, 2));
  EXPECT_FALSE(db.HasEdge(1, 0, 2));
  ASSERT_EQ(db.OutEdges(0).size(), 2u);
  ASSERT_EQ(db.InEdges(2).size(), 2u);
  // In-slices are sorted by (symbol, tail): both incoming edges of 2 are
  // "b", so tails come in increasing order.
  EXPECT_EQ(db.InEdges(2)[0].to, 0u);
  EXPECT_EQ(db.InEdges(2)[1].to, 1u);
}

TEST(GraphDbTest, DedupEdgesCollapsesDuplicates) {
  GraphDb db(Alphabet::OfChars("ab"));
  db.AddVertices(3);
  db.AddEdge(0, "a", 1);
  db.AddEdge(0, "a", 1);  // Duplicate.
  db.AddEdge(0, "a", 1);  // Duplicate.
  db.AddEdge(1, "b", 2);
  EXPECT_EQ(db.NumEdges(), 4u);  // Raw count until the CSR build dedups.
  EXPECT_EQ(db.DedupEdges(), 2u);
  EXPECT_EQ(db.NumEdges(), 2u);
  EXPECT_TRUE(db.HasEdge(0, 0, 1));
  EXPECT_EQ(db.OutEdges(0).size(), 1u);
  // Idempotent.
  EXPECT_EQ(db.DedupEdges(), 0u);
}

TEST(GraphDbTest, CsrAccessDedupsImplicitly) {
  // The adjacency views are set-semantic even before an explicit dedup call:
  // the CSR build collapses duplicates.
  GraphDb db(Alphabet::OfChars("a"));
  db.AddVertices(2);
  db.AddEdge(0, "a", 1);
  db.AddEdge(0, "a", 1);
  EXPECT_EQ(db.OutEdges(0).size(), 1u);
  EXPECT_EQ(db.InEdges(1).size(), 1u);
}

TEST(GraphDbTest, PerSymbolSlices) {
  GraphDb db(Alphabet::OfChars("ab"));
  db.AddVertices(4);
  db.AddEdge(0, "b", 3);
  db.AddEdge(0, "a", 2);
  db.AddEdge(0, "a", 1);
  db.AddEdge(0, "b", 1);
  db.AddEdge(2, "a", 0);
  const Symbol a = *db.alphabet().Find("a");
  const Symbol b = *db.alphabet().Find("b");
  ASSERT_EQ(db.OutEdges(0, a).size(), 2u);
  EXPECT_EQ(db.OutEdges(0, a)[0].to, 1u);
  EXPECT_EQ(db.OutEdges(0, a)[1].to, 2u);
  ASSERT_EQ(db.OutEdges(0, b).size(), 2u);
  EXPECT_EQ(db.OutEdges(0, b)[0].to, 1u);
  EXPECT_EQ(db.OutEdges(0, b)[1].to, 3u);
  EXPECT_TRUE(db.OutEdges(1, a).empty());
  ASSERT_EQ(db.InEdges(0, a).size(), 1u);
  EXPECT_EQ(db.InEdges(0, a)[0].to, 2u);  // Backward edge stores the tail.
  EXPECT_TRUE(db.InEdges(3, a).empty());
  ASSERT_EQ(db.InEdges(3, b).size(), 1u);
}

TEST(GraphDbTest, CheckInvariantsOnGeneratedGraphs) {
  Rng rng(9);
  GraphDb random = RandomGraph(&rng, 40, 3.0, 3);
  random.Finalize();
  random.CheckInvariants();

  GraphDb grid = GridGraph(4, 4);
  grid.CheckInvariants();  // Also triggers the lazy CSR build itself.

  // Mutation invalidates and a rebuild restores the invariants.
  grid.AddVertex();
  grid.AddEdge(15, "r", 16);
  grid.CheckInvariants();

  GraphDb empty(Alphabet::OfChars("a"));
  empty.CheckInvariants();
}

TEST(GraphDbTest, AppendDisjointRemapsSymbols) {
  GraphDb a(Alphabet::OfChars("ab"));
  a.AddVertices(2);
  a.AddEdge(0, "a", 1);
  GraphDb b(Alphabet::OfChars("ba"));  // Same names, different ids.
  b.AddVertices(2);
  b.AddEdge(0, "b", 1);
  const VertexId offset = a.AppendDisjoint(b);
  EXPECT_EQ(offset, 2u);
  EXPECT_EQ(a.NumVertices(), 4);
  // b's "b" edge must map to a's "b" symbol (id 1 in a).
  EXPECT_TRUE(a.HasEdge(2, *a.alphabet().Find("b"), 3));
}

TEST(GeneratorsTest, CycleGraphShape) {
  const GraphDb db = CycleGraph(4, "ab");
  EXPECT_EQ(db.NumVertices(), 4);
  EXPECT_EQ(db.NumEdges(), 4u);
  // Labels alternate a, b, a, b around the cycle.
  EXPECT_EQ(db.OutEdges(0)[0].symbol, *db.alphabet().Find("a"));
  EXPECT_EQ(db.OutEdges(1)[0].symbol, *db.alphabet().Find("b"));
  EXPECT_EQ(db.OutEdges(3)[0].to, 0u);
}

TEST(GeneratorsTest, PathGraphShape) {
  const GraphDb db = PathGraph(5, "a");
  EXPECT_EQ(db.NumVertices(), 5);
  EXPECT_EQ(db.NumEdges(), 4u);
  EXPECT_TRUE(db.OutEdges(4).empty());
}

TEST(GeneratorsTest, GridGraphDegrees) {
  const GraphDb db = GridGraph(3, 2);
  EXPECT_EQ(db.NumVertices(), 6);
  // Each non-boundary vertex has right+down edges.
  EXPECT_EQ(db.NumEdges(), static_cast<size_t>(2 * 2 + 3 * 1));  // 4 r + 3 d.
  EXPECT_EQ(db.OutEdges(0).size(), 2u);
  EXPECT_TRUE(db.OutEdges(5).empty());
}

TEST(GeneratorsTest, RandomGraphRespectsParameters) {
  Rng rng(42);
  const GraphDb db = RandomGraph(&rng, 50, 3.0, 2);
  EXPECT_EQ(db.NumVertices(), 50);
  EXPECT_EQ(db.NumEdges(), 150u);
  EXPECT_EQ(db.alphabet().size(), 2);
}

TEST(GeneratorsTest, DfaTransitionGraph) {
  Dfa dfa(2, {0, 1});
  dfa.SetInitial(0);
  dfa.SetNext(0, 0, 1);
  dfa.SetNext(0, 1, 0);
  dfa.SetNext(1, 0, 0);
  dfa.SetNext(1, 1, 1);
  const GraphDb db = DfaTransitionGraph(dfa, Alphabet::OfChars("ab"));
  EXPECT_EQ(db.NumVertices(), 2);
  EXPECT_EQ(db.NumEdges(), 4u);
  EXPECT_TRUE(db.HasEdge(0, 0, 1));
  EXPECT_TRUE(db.HasEdge(1, 1, 1));
}

TEST(GraphDbIoTest, RoundTrip) {
  GraphDb db(Alphabet::OfChars("ab"));
  db.AddVertices(3);
  db.AddEdge(0, "a", 1);
  db.AddEdge(1, "b", 2);
  db.AddEdge(2, "a", 0);
  const std::string text = GraphDbToString(db);
  Result<GraphDb> parsed = GraphDbFromString(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->NumVertices(), 3);
  EXPECT_EQ(parsed->NumEdges(), 3u);
  EXPECT_TRUE(parsed->HasEdge(2, *parsed->alphabet().Find("a"), 0));
}

TEST(GraphDbIoTest, RejectsMalformed) {
  EXPECT_FALSE(GraphDbFromString("edge 0 a 1\n").ok());
  EXPECT_FALSE(GraphDbFromString("vertices 2\nedge 0 a 5\n").ok());
  EXPECT_FALSE(GraphDbFromString("vertices 2\nnonsense\n").ok());
  EXPECT_FALSE(GraphDbFromString("").ok());
}

}  // namespace
}  // namespace ecrpq
