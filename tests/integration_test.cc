// End-to-end flows gluing the text formats, the parser, the planner, the
// engines and the satisfiability checker — the paths a downstream user
// actually exercises.
#include <gtest/gtest.h>

#include "eval/adaptive.h"
#include "eval/planner.h"
#include "eval/satisfiability.h"
#include "eval/uecrpq.h"
#include "graphdb/dot.h"
#include "graphdb/io.h"
#include "query/parser.h"

namespace ecrpq {
namespace {

constexpr const char* kGraphText =
    "# a small two-line metro\n"
    "alphabet m g\n"
    "vertices 5\n"
    "edge 0 m 2\n"
    "edge 1 g 2\n"
    "edge 2 m 3\n"
    "edge 2 g 4\n"
    "edge 3 m 4\n";

TEST(IntegrationTest, TextToAnswersRoundTrip) {
  Result<GraphDb> db = GraphDbFromString(kGraphText);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->NumVertices(), 5);
  EXPECT_EQ(db->NumEdges(), 5u);

  // Serialize and re-parse: structure preserved.
  Result<GraphDb> twice = GraphDbFromString(GraphDbToString(*db));
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(twice->NumEdges(), db->NumEdges());

  Result<EcrpqQuery> q = ParseEcrpq(
      "q(x, y) := x -[p1]-> m, y -[p2]-> m, eqlen(p1, p2)", db->alphabet());
  ASSERT_TRUE(q.ok()) << q.status();

  QueryClassification c;
  Result<EvalResult> r = EvaluatePlanned(*db, *q, {}, {}, &c);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->satisfiable);
  EXPECT_EQ(c.eval_regime, EvalRegime::kPolynomialTime);
  // (0, 1) must be there: both reach 2 in one step.
  EXPECT_NE(std::find(r->answers.begin(), r->answers.end(),
                      std::vector<VertexId>{0, 1}),
            r->answers.end());
}

TEST(IntegrationTest, AllEnginesAgreeOnTheMetro) {
  Result<GraphDb> db = GraphDbFromString(kGraphText);
  ASSERT_TRUE(db.ok());
  Result<EcrpqQuery> q = ParseEcrpq(
      "q(x) := x -[p1]-> a, x -[p2]-> b, prefix(p1, p2)", db->alphabet());
  ASSERT_TRUE(q.ok()) << q.status();
  Result<EvalResult> generic = EvaluateGeneric(*db, *q);
  Result<EvalResult> planned = EvaluatePlanned(*db, *q);
  Result<EvalResult> adaptive = EvaluateAdaptive(*db, *q);
  ASSERT_TRUE(generic.ok());
  ASSERT_TRUE(planned.ok());
  ASSERT_TRUE(adaptive.ok());
  EXPECT_EQ(generic->answers, planned->answers);
  EXPECT_EQ(generic->answers, adaptive->answers);
}

TEST(IntegrationTest, SatWitnessFeedsBackIntoEvaluation) {
  const Alphabet alphabet = Alphabet::OfChars("mg");
  Result<EcrpqQuery> q = ParseEcrpq(
      "q() := x -[p1]-> y, y -[p2]-> z, eqlen(p1, p2), lang(/mgm/, p1),"
      " lang(/g(m|g)*/, p2)",
      alphabet);
  ASSERT_TRUE(q.ok()) << q.status();
  Result<SatisfiabilityResult> sat = CheckSatisfiable(*q);
  ASSERT_TRUE(sat.ok()) << sat.status();
  ASSERT_TRUE(sat->satisfiable);
  // Round-trip the witness through the text format, then evaluate.
  Result<GraphDb> db = GraphDbFromString(GraphDbToString(*sat->witness));
  ASSERT_TRUE(db.ok()) << db.status();
  Result<EvalResult> check = EvaluateGeneric(*db, *q);
  ASSERT_TRUE(check.ok()) << check.status();
  EXPECT_TRUE(check->satisfiable);
}

TEST(IntegrationTest, UnionOverTextualDisjuncts) {
  Result<GraphDb> db = GraphDbFromString(kGraphText);
  ASSERT_TRUE(db.ok());
  UecrpqQuery u;
  for (const char* text :
       {"q(x) := x -[/mm/]-> y", "q(x) := x -[/gg/]-> y"}) {
    Result<EcrpqQuery> q = ParseEcrpq(text, db->alphabet());
    ASSERT_TRUE(q.ok()) << q.status();
    u.disjuncts.push_back(std::move(q).ValueOrDie());
  }
  Result<EvalResult> r = EvaluateUnion(*db, u);
  ASSERT_TRUE(r.ok()) << r.status();
  // mm from 0 (0-m->2-m->3); gg from 1 (1-g->2-g->4).
  EXPECT_EQ(r->answers,
            (std::vector<std::vector<VertexId>>{{0}, {1}, {2}}));
}

TEST(IntegrationTest, DotOutputForTheMetro) {
  Result<GraphDb> db = GraphDbFromString(kGraphText);
  ASSERT_TRUE(db.ok());
  const std::string dot = GraphDbToDot(*db);
  EXPECT_NE(dot.find("v0 -> v2 [label=\"m\"]"), std::string::npos);
  EXPECT_NE(dot.find("v2 -> v4 [label=\"g\"]"), std::string::npos);
}

}  // namespace
}  // namespace ecrpq
