#include <gtest/gtest.h>

#include "automata/io.h"
#include "automata/nfa.h"

namespace ecrpq {
namespace {

// a*b over labels {0 = a, 1 = b}.
Nfa AStarB() {
  Nfa nfa(2);
  nfa.SetInitial(0);
  nfa.SetAccepting(1);
  nfa.AddTransition(0, 0, 0);
  nfa.AddTransition(0, 1, 1);
  return nfa;
}

TEST(NfaTest, AcceptsBasicWords) {
  const Nfa nfa = AStarB();
  EXPECT_TRUE(nfa.Accepts(std::vector<Label>{1}));
  EXPECT_TRUE(nfa.Accepts(std::vector<Label>{0, 0, 1}));
  EXPECT_FALSE(nfa.Accepts(std::vector<Label>{}));
  EXPECT_FALSE(nfa.Accepts(std::vector<Label>{0}));
  EXPECT_FALSE(nfa.Accepts(std::vector<Label>{1, 0}));
}

TEST(NfaTest, EpsilonClosureChains) {
  Nfa nfa(4);
  nfa.SetInitial(0);
  nfa.AddTransition(0, kEpsilon, 1);
  nfa.AddTransition(1, kEpsilon, 2);
  nfa.AddTransition(2, 5, 3);
  nfa.SetAccepting(3);
  EXPECT_TRUE(nfa.Accepts(std::vector<Label>{5}));
  EXPECT_FALSE(nfa.Accepts(std::vector<Label>{}));

  std::vector<StateId> states{0};
  nfa.EpsilonClose(&states);
  EXPECT_EQ(states, (std::vector<StateId>{0, 1, 2}));
}

TEST(NfaTest, EmptinessAndWitness) {
  Nfa empty(2);
  empty.SetInitial(0);
  empty.SetAccepting(1);  // Unreachable.
  EXPECT_TRUE(empty.IsEmpty());
  EXPECT_FALSE(empty.ShortestWitness().has_value());

  const Nfa nfa = AStarB();
  EXPECT_FALSE(nfa.IsEmpty());
  const auto witness = nfa.ShortestWitness();
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(*witness, (std::vector<Label>{1}));
}

TEST(NfaTest, ShortestWitnessIgnoresEpsilonLength) {
  // ε-chain to an accepting state: shortest word is ε (length 0), even
  // though a one-letter accepting path exists earlier in BFS order.
  Nfa nfa(3);
  nfa.SetInitial(0);
  nfa.AddTransition(0, 7, 1);
  nfa.SetAccepting(1);
  nfa.AddTransition(0, kEpsilon, 2);
  nfa.SetAccepting(2);
  const auto witness = nfa.ShortestWitness();
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->empty());
}

TEST(NfaTest, TrimRemovesUselessStates) {
  Nfa nfa(4);
  nfa.SetInitial(0);
  nfa.AddTransition(0, 1, 1);
  nfa.SetAccepting(1);
  nfa.AddTransition(0, 2, 2);  // 2 is a dead end.
  nfa.AddTransition(3, 1, 1);  // 3 is unreachable.
  nfa.Trim();
  EXPECT_EQ(nfa.NumStates(), 2);
  EXPECT_TRUE(nfa.Accepts(std::vector<Label>{1}));
  EXPECT_FALSE(nfa.Accepts(std::vector<Label>{2}));
}

TEST(NfaTest, NormalizeDeduplicates) {
  Nfa nfa(2);
  nfa.SetInitial(0);
  nfa.SetInitial(0);
  nfa.AddTransition(0, 3, 1);
  nfa.AddTransition(0, 3, 1);
  nfa.Normalize();
  EXPECT_EQ(nfa.NumTransitions(), 1u);
  EXPECT_EQ(nfa.initial().size(), 1u);
}

TEST(NfaTest, CollectLabelsSortedUnique) {
  Nfa nfa(2);
  nfa.SetInitial(0);
  nfa.AddTransition(0, 9, 1);
  nfa.AddTransition(1, 2, 0);
  nfa.AddTransition(0, 9, 0);
  nfa.AddTransition(0, kEpsilon, 1);
  EXPECT_EQ(nfa.CollectLabels(), (std::vector<Label>{2, 9}));
}

TEST(NfaIoTest, RoundTrip) {
  const Nfa nfa = AStarB();
  const std::string text = NfaToString(nfa);
  Result<Nfa> parsed = NfaFromString(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, nfa);
}

TEST(NfaIoTest, ParsesEpsilonAndComments) {
  Result<Nfa> parsed = NfaFromString(
      "# a comment\n"
      "states 2\n"
      "initial 0\n"
      "accepting 1\n"
      "trans 0 eps 1\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(parsed->Accepts(std::vector<Label>{}));
}

TEST(NfaIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(NfaFromString("initial 0\n").ok());
  EXPECT_FALSE(NfaFromString("states 2\ntrans 0 5\n").ok());
  EXPECT_FALSE(NfaFromString("states 2\ntrans 0 1 9\n").ok());
  EXPECT_FALSE(NfaFromString("states 2\nbogus\n").ok());
}

}  // namespace
}  // namespace ecrpq
