// Service-level request telemetry: trace_id propagation and echo, the
// `trace` wire op, budget-trip partial stats carrying histogram
// percentiles, flight-recorder postmortems, and the slow-query event log —
// the end-to-end story docs/OBSERVABILITY.md promises.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/trace.h"
#include "service/query_service.h"

namespace ecrpq {
namespace {

using obs::ValidateTraceJson;

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// A per-test scratch directory under the gtest temp root.
std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "ecrpq_svc_telemetry_" + name;
  ::mkdir(dir.c_str(), 0755);  // EEXIST is fine: tests clean their files.
  return dir;
}

void BuildChain(ServiceSession* session, int n) {
  session->HandleLine("{\"id\":\"setup-v\",\"op\":\"add_vertex\",\"count\":" +
                      std::to_string(n) + "}");
  for (int i = 0; i + 1 < n; ++i) {
    session->HandleLine(
        "{\"id\":\"setup-e" + std::to_string(i) + "\",\"op\":\"add_edge\","
        "\"from\":" + std::to_string(i) + ",\"symbol\":\"a\",\"to\":" +
        std::to_string(i + 1) + "}");
  }
}

TEST(ServiceTelemetryTest, ClientTraceIdEchoedOnEveryResponseLine) {
  QueryService service{ServiceConfig{}};
  auto session = service.OpenSession();
  const std::vector<std::string> kOps = {
      "{\"id\":\"p\",\"op\":\"ping\",\"trace_id\":\"corr-1\"}",
      "{\"id\":\"v\",\"op\":\"add_vertex\",\"count\":2,"
      "\"trace_id\":\"corr-1\"}",
      "{\"id\":\"e\",\"op\":\"add_edge\",\"from\":0,\"symbol\":\"a\","
      "\"to\":1,\"trace_id\":\"corr-1\"}",
      "{\"id\":\"q\",\"op\":\"query\",\"query\":\"q(x) := x -[/a/]-> y\","
      "\"trace_id\":\"corr-1\"}",
      "{\"id\":\"s\",\"op\":\"stats\",\"trace_id\":\"corr-1\"}",
  };
  for (const std::string& line : kOps) {
    const std::string response = session->HandleLine(line);
    Result<json::Value> doc = json::Parse(response);
    ASSERT_TRUE(doc.ok()) << response;
    std::string status, echoed;
    ASSERT_TRUE(doc->GetString("status", &status)) << response;
    EXPECT_EQ(status, "ok") << line << " -> " << response;
    ASSERT_TRUE(doc->GetString("trace_id", &echoed)) << response;
    // Byte-identical echo, and early in the line (right after id/status)
    // so stream processors can route on it without a full parse.
    EXPECT_EQ(echoed, "corr-1");
    EXPECT_NE(response.find("\"trace_id\":\"corr-1\""), std::string::npos);
  }
}

TEST(ServiceTelemetryTest, AbsentTraceIdChangesNoResponseByte) {
  // The differential suite's byte-determinism contract: a server-generated
  // trace id is never echoed, so running with telemetry on/off or with no
  // client trace_id produces identical wire bytes.
  ServiceConfig with;
  ServiceConfig without;
  without.telemetry = false;
  QueryService service_with(with);
  QueryService service_without(without);
  auto s1 = service_with.OpenSession();
  auto s2 = service_without.OpenSession();
  const std::vector<std::string> kOps = {
      "{\"id\":\"p\",\"op\":\"ping\"}",
      "{\"id\":\"v\",\"op\":\"add_vertex\",\"count\":3}",
      "{\"id\":\"e\",\"op\":\"add_edge\",\"from\":0,\"symbol\":\"a\","
      "\"to\":1}",
      "{\"id\":\"q\",\"op\":\"query\",\"query\":\"q(x) := x -[/a*/]-> y\","
      "\"stats\":false}",
  };
  for (const std::string& line : kOps) {
    const std::string r1 = s1->HandleLine(line);
    const std::string r2 = s2->HandleLine(line);
    EXPECT_EQ(r1, r2) << line;
    EXPECT_EQ(r1.find("trace_id"), std::string::npos) << r1;
  }
}

TEST(ServiceTelemetryTest, TraceOpReturnsValidatingTraceJson) {
  QueryService service{ServiceConfig{}};
  auto session = service.OpenSession();
  BuildChain(session.get(), 4);
  ASSERT_NE(session->HandleLine(
                "{\"id\":\"q1\",\"op\":\"query\",\"query\":"
                "\"q(x) := x -[/a*/]-> y\",\"trace_id\":\"t-req\"}")
                .find("\"status\":\"ok\""),
            std::string::npos);

  const std::string response = session->HandleLine(
      "{\"id\":\"t1\",\"op\":\"trace\",\"trace_id\":\"t-req\"}");
  Result<json::Value> doc = json::Parse(response);
  ASSERT_TRUE(doc.ok()) << response;
  std::string echoed;
  ASSERT_TRUE(doc->GetString("trace_id", &echoed)) << response;
  EXPECT_EQ(echoed, "t-req");

  // The trace is spliced in raw as the LAST response field; the extracted
  // object must validate under the exporter's own schema checker and carry
  // the linking traceId key.
  const size_t pos = response.find("\"trace\":");
  ASSERT_NE(pos, std::string::npos) << response;
  ASSERT_EQ(response.back(), '}');
  const std::string trace_json = response.substr(
      pos + std::string("\"trace\":").size(),
      response.size() - 1 - (pos + std::string("\"trace\":").size()));
  EXPECT_TRUE(ValidateTraceJson(trace_json, /*min_events=*/1).ok())
      << trace_json;
  Result<json::Value> trace_doc = json::Parse(trace_json);
  ASSERT_TRUE(trace_doc.ok());
  std::string trace_id;
  ASSERT_TRUE(trace_doc->GetString("traceId", &trace_id));
  EXPECT_EQ(trace_id, "t-req");
}

TEST(ServiceTelemetryTest, ServerGeneratedTraceRetrievableUnderAutoId) {
  QueryService service{ServiceConfig{}};
  auto session = service.OpenSession();
  BuildChain(session.get(), 3);
  session->HandleLine(
      "{\"id\":\"r6\",\"op\":\"query\",\"query\":\"q(x) := x -[/a/]-> y\"}");
  // No client trace_id: the trace is retained under "auto:" + request id.
  const std::string response = session->HandleLine(
      "{\"id\":\"t\",\"op\":\"trace\",\"trace_id\":\"auto:r6\"}");
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"traceEvents\""), std::string::npos) << response;
}

TEST(ServiceTelemetryTest, RetainedTracesAreBoundedPerSession) {
  QueryService service{ServiceConfig{}};
  auto session = service.OpenSession();
  BuildChain(session.get(), 3);
  const int total = static_cast<int>(ServiceSession::kMaxRetainedTraces) + 4;
  for (int i = 0; i < total; ++i) {
    session->HandleLine("{\"id\":\"q" + std::to_string(i) +
                        "\",\"op\":\"query\",\"query\":"
                        "\"q(x) := x -[/a/]-> y\"}");
  }
  // The oldest traces fell off the deque...
  EXPECT_NE(session
                ->HandleLine("{\"id\":\"t0\",\"op\":\"trace\","
                             "\"trace_id\":\"auto:q0\"}")
                .find("not_found"),
            std::string::npos);
  // ...the newest are still there.
  EXPECT_NE(session
                ->HandleLine("{\"id\":\"tN\",\"op\":\"trace\","
                             "\"trace_id\":\"auto:q" +
                             std::to_string(total - 1) + "\"}")
                .find("\"traceEvents\""),
            std::string::npos);
}

// Satellite pin: a budget-tripped query's partial_stats is a full
// StatsReport — histograms with count/sum/percentiles, not just counters.
// The admission queue-time histogram is recorded into the SESSION shard
// before evaluation starts, so it is present even when the trip happens
// in the first engine phase.
TEST(ServiceTelemetryTest, BudgetTripPartialStatsIncludesPercentiles) {
  QueryService service{ServiceConfig{}};
  auto session = service.OpenSession();
  BuildChain(session.get(), 30);
  const std::string tripped = session->HandleLine(
      "{\"id\":\"tiny\",\"op\":\"query\",\"query\":\"q(x) := x -[/a*/]-> y\","
      "\"engine\":\"generic\",\"budget_states\":3,\"trace_id\":\"trip-1\"}");
  Result<json::Value> doc = json::Parse(tripped);
  ASSERT_TRUE(doc.ok()) << tripped;
  std::string code, echoed;
  ASSERT_TRUE(doc->GetString("code", &code)) << tripped;
  EXPECT_EQ(code, "resource_exhausted");
  ASSERT_TRUE(doc->GetString("trace_id", &echoed)) << tripped;
  EXPECT_EQ(echoed, "trip-1");

  const json::Value* stats = doc->Find("partial_stats");
  ASSERT_NE(stats, nullptr) << tripped;
  const json::Value* histograms = stats->Find("histograms");
  ASSERT_NE(histograms, nullptr) << tripped;
  ASSERT_TRUE(histograms->is_object()) << tripped;
  const json::Value* queue = histograms->Find("service_queue_ns");
  ASSERT_NE(queue, nullptr)
      << "queue-time histogram missing from partial_stats: " << tripped;
  for (const char* key : {"count", "sum", "p50", "p90", "p99"}) {
    double value = -1;
    EXPECT_TRUE(queue->GetNumber(key, &value)) << key << ": " << tripped;
  }
  uint64_t count = 0;
  ASSERT_TRUE(queue->GetUint64("count", &count));
  EXPECT_EQ(count, 1u) << "one admission wait for this request";
}

// Satellite pin: the flight-recorder postmortem written on a budget trip
// is a ValidateTraceJson-conformant trace file.
TEST(ServiceTelemetryTest, PostmortemDumpAfterBudgetTripValidates) {
  const std::string dir = ScratchDir("postmortem");
  // First session of this service => session id 1, first dump => seq 1.
  const std::string expected = dir + "/postmortem_s1_1.json";
  std::remove(expected.c_str());

  ServiceConfig config;
  config.postmortem_dir = dir;
  QueryService service(config);
  auto session = service.OpenSession();
  BuildChain(session.get(), 30);
  const std::string tripped = session->HandleLine(
      "{\"id\":\"tiny\",\"op\":\"query\",\"query\":\"q(x) := x -[/a*/]-> y\","
      "\"engine\":\"generic\",\"budget_states\":3,\"trace_id\":\"boom-7\"}");
  ASSERT_NE(tripped.find("resource_exhausted"), std::string::npos) << tripped;

  const std::string dumped = Slurp(expected);
  ASSERT_FALSE(dumped.empty()) << "no postmortem at " << expected;
  EXPECT_TRUE(ValidateTraceJson(dumped, /*min_events=*/1).ok()) << dumped;
  Result<json::Value> doc = json::Parse(dumped);
  ASSERT_TRUE(doc.ok());
  std::string trace_id;
  ASSERT_TRUE(doc->GetString("traceId", &trace_id)) << dumped;
  EXPECT_EQ(trace_id, "boom-7");
  std::remove(expected.c_str());
}

TEST(ServiceTelemetryTest, EventLogRecordCarriesVerdictAndCacheBreakdown) {
  const std::string path =
      ScratchDir("eventlog") + "/events.jsonl";
  std::remove(path.c_str());

  ServiceConfig config;
  config.event_log_path = path;
  config.slow_ms = 0;  // Log every query.
  QueryService service(config);
  ASSERT_NE(service.event_log(), nullptr);
  ASSERT_TRUE(service.event_log()->ok());
  auto session = service.OpenSession();
  BuildChain(session.get(), 4);
  const std::string ok = session->HandleLine(
      "{\"id\":\"q1\",\"op\":\"query\",\"query\":\"q(x) := x -[/a*/]-> y\","
      "\"trace_id\":\"logme-1\"}");
  ASSERT_NE(ok.find("\"status\":\"ok\""), std::string::npos) << ok;
  EXPECT_GE(service.event_log()->lines_written(), 1u);

  // Find this request's record and check the analysis payload.
  std::ifstream in(path);
  std::string line, record;
  while (std::getline(in, line)) {
    if (line.find("\"trace_id\":\"logme-1\"") != std::string::npos) {
      record = line;
    }
  }
  ASSERT_FALSE(record.empty()) << "no record for logme-1 in " << path;
  Result<json::Value> doc = json::Parse(record);
  ASSERT_TRUE(doc.ok()) << record;
  std::string event, request_id, hash, status;
  ASSERT_TRUE(doc->GetString("event", &event));
  EXPECT_EQ(event, "query");
  ASSERT_TRUE(doc->GetString("request_id", &request_id));
  EXPECT_EQ(request_id, "q1");
  ASSERT_TRUE(doc->GetString("query_key_hash", &hash)) << record;
  EXPECT_EQ(hash.size(), 16u) << "64-bit hex hash: " << hash;
  ASSERT_TRUE(doc->GetString("status", &status));
  EXPECT_EQ(status, "ok");
  // Planner verdict: the regime attribution for this exact request.
  const json::Value* verdict = doc->Find("verdict");
  ASSERT_NE(verdict, nullptr) << record;
  ASSERT_TRUE(verdict->is_object()) << record;
  double cc_vertex = -1;
  EXPECT_TRUE(verdict->GetNumber("cc_vertex", &cc_vertex)) << record;
  // Cache breakdown and budget outcome.
  const json::Value* cache = doc->Find("cache");
  ASSERT_NE(cache, nullptr) << record;
  for (const char* key : {"hits", "misses", "evictions"}) {
    uint64_t v = 0;
    EXPECT_TRUE(cache->GetUint64(key, &v)) << key << ": " << record;
  }
  const json::Value* budget = doc->Find("budget");
  ASSERT_NE(budget, nullptr) << record;
  std::string outcome;
  ASSERT_TRUE(budget->GetString("outcome", &outcome));
  EXPECT_EQ(outcome, "unlimited");
  // Phase-profile summary and timing.
  const json::Value* phases = doc->Find("phases");
  ASSERT_NE(phases, nullptr) << record;
  EXPECT_TRUE(phases->is_array()) << record;
  double latency_ms = -1, queue_ms = -1;
  EXPECT_TRUE(doc->GetNumber("latency_ms", &latency_ms));
  EXPECT_GE(latency_ms, 0);
  EXPECT_TRUE(doc->GetNumber("queue_ms", &queue_ms));
  std::remove(path.c_str());
}

TEST(ServiceTelemetryTest, FastQueriesStayOutOfTheSlowLog) {
  const std::string path = ScratchDir("slowlog") + "/slow.jsonl";
  std::remove(path.c_str());

  ServiceConfig config;
  config.event_log_path = path;
  config.slow_ms = 60000;  // Nothing here takes a minute...
  QueryService service(config);
  auto session = service.OpenSession();
  BuildChain(session.get(), 4);
  session->HandleLine(
      "{\"id\":\"fast\",\"op\":\"query\",\"query\":\"q(x) := x -[/a/]-> y\"}");
  EXPECT_EQ(service.event_log()->lines_written(), 0u);

  // ...but errors always land in the log, however fast.
  session->HandleLine("{\"id\":\"bad\",\"op\":\"query\",\"query\":\"q() := \","
                      "\"trace_id\":\"err-1\"}");
  EXPECT_GE(service.event_log()->lines_written(), 1u);
  const std::string content = Slurp(path);
  EXPECT_NE(content.find("\"trace_id\":\"err-1\""), std::string::npos)
      << content;
  std::remove(path.c_str());
}

TEST(ServiceTelemetryTest, ProtocolErrorsLandInTheEventLog) {
  const std::string path = ScratchDir("protoerr") + "/events.jsonl";
  std::remove(path.c_str());

  ServiceConfig config;
  config.event_log_path = path;
  QueryService service(config);
  auto session = service.OpenSession();
  session->HandleLine("this is not json");
  EXPECT_GE(service.event_log()->lines_written(), 1u);
  const std::string content = Slurp(path);
  EXPECT_NE(content.find("\"event\":\"protocol_error\""), std::string::npos)
      << content;
  std::remove(path.c_str());
}

TEST(ServiceTelemetryTest, FlightRecorderAccumulatesPerRequestEvents) {
  QueryService service{ServiceConfig{}};
  auto session = service.OpenSession();
  BuildChain(session.get(), 3);
  const uint64_t before = session->flight_recorder().NumRecorded();
  session->HandleLine(
      "{\"id\":\"q\",\"op\":\"query\",\"query\":\"q(x) := x -[/a/]-> y\"}");
  EXPECT_GT(session->flight_recorder().NumRecorded(), before);
  EXPECT_TRUE(
      ValidateTraceJson(session->flight_recorder().ToTraceJson()).ok());
}

}  // namespace
}  // namespace ecrpq
