// Homomorphisms, Chandra–Merlin containment, cores, semantic treewidth
// (the Prop. 2.5 machinery).
#include <gtest/gtest.h>

#include "cq/homomorphism.h"
#include "cq/relational_db.h"
#include "cq/eval_backtrack.h"
#include "common/rng.h"

namespace ecrpq {
namespace {

CqQuery Path(int length, bool free_endpoints = false) {
  CqQuery q;
  q.num_vars = length + 1;
  for (int i = 0; i < length; ++i) {
    q.atoms.push_back(CqAtom{"E", {static_cast<CqVarId>(i),
                                   static_cast<CqVarId>(i + 1)}});
  }
  if (free_endpoints) q.free_vars = {0, static_cast<CqVarId>(length)};
  return q;
}

CqQuery Cycle(int length) {
  CqQuery q = Path(length);
  q.atoms.back().vars[1] = 0;
  q.num_vars = length;
  return q;
}

TEST(HomomorphismTest, PathIntoCycle) {
  // A Boolean path of any length maps into a cycle; a triangle does not map
  // into a 4-path.
  Result<std::optional<std::vector<CqVarId>>> hom =
      FindCqHomomorphism(Path(5), Cycle(3));
  ASSERT_TRUE(hom.ok());
  EXPECT_TRUE(hom->has_value());
  Result<std::optional<std::vector<CqVarId>>> none =
      FindCqHomomorphism(Cycle(3), Path(4));
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->has_value());
}

TEST(HomomorphismTest, FreeVariablesArePinned) {
  // With free endpoints, a 2-path is NOT contained in a 1-path pattern.
  CqQuery p2 = Path(2, true);
  CqQuery p1 = Path(1, true);
  // hom p1 -> p2 must send the free pair (0, 1) to (0, 2): E(0, 2) absent.
  Result<std::optional<std::vector<CqVarId>>> hom =
      FindCqHomomorphism(p1, p2);
  ASSERT_TRUE(hom.ok());
  EXPECT_FALSE(hom->has_value());
}

TEST(ContainmentTest, LongerPathContainedInShorter) {
  // Boolean: db has a 5-path => db has a 2-path. So answers(P5) ⊆
  // answers(P2): containment holds via hom P2 → P5.
  Result<bool> contained = CqContainedIn(Path(5), Path(2));
  ASSERT_TRUE(contained.ok());
  EXPECT_TRUE(*contained);
  Result<bool> reverse = CqContainedIn(Path(2), Path(5));
  ASSERT_TRUE(reverse.ok());
  EXPECT_FALSE(*reverse);
}

TEST(ContainmentTest, EquivalenceOfRedundantQuery) {
  // E(x,y) ∧ E(x,z): z foldable onto y — equivalent to a single atom.
  CqQuery redundant;
  redundant.num_vars = 3;
  redundant.atoms = {CqAtom{"E", {0, 1}}, CqAtom{"E", {0, 2}}};
  CqQuery single;
  single.num_vars = 2;
  single.atoms = {CqAtom{"E", {0, 1}}};
  Result<bool> equivalent = CqEquivalent(redundant, single);
  ASSERT_TRUE(equivalent.ok());
  EXPECT_TRUE(*equivalent);
}

TEST(CoreTest, FoldsRedundantBranch) {
  CqQuery redundant;
  redundant.num_vars = 3;
  redundant.atoms = {CqAtom{"E", {0, 1}}, CqAtom{"E", {0, 2}}};
  Result<CqQuery> core = CqCore(redundant);
  ASSERT_TRUE(core.ok());
  EXPECT_EQ(core->num_vars, 2);
  EXPECT_EQ(core->atoms.size(), 1u);
}

TEST(CoreTest, OddCycleIsItsOwnCore) {
  Result<CqQuery> core = CqCore(Cycle(5));
  ASSERT_TRUE(core.ok());
  EXPECT_EQ(core->num_vars, 5);  // C5 has no proper retract.
  EXPECT_EQ(core->atoms.size(), 5u);
}

TEST(CoreTest, EvenCycleCollapses) {
  // An even cycle folds onto a single edge back and forth... for directed
  // E-cycles folding requires the edge E(a, a)? No: directed 4-cycle
  // 0->1->2->3->0 folds onto 0->1->0? That needs E(1, 0) which is absent.
  // Directed cycles are cores. Use an undirected-style encoding instead:
  // both directions present.
  CqQuery bidi;
  bidi.num_vars = 4;
  for (int i = 0; i < 4; ++i) {
    bidi.atoms.push_back(CqAtom{"E", {static_cast<CqVarId>(i),
                                      static_cast<CqVarId>((i + 1) % 4)}});
    bidi.atoms.push_back(CqAtom{"E", {static_cast<CqVarId>((i + 1) % 4),
                                      static_cast<CqVarId>(i)}});
  }
  Result<CqQuery> core = CqCore(bidi);
  ASSERT_TRUE(core.ok());
  // Bipartite symmetric cycle folds to a single symmetric edge.
  EXPECT_EQ(core->num_vars, 2);
}

TEST(CoreTest, FreeVariablesBlockFolding) {
  CqQuery redundant;
  redundant.num_vars = 3;
  redundant.atoms = {CqAtom{"E", {0, 1}}, CqAtom{"E", {0, 2}}};
  redundant.free_vars = {1, 2};  // Both branch endpoints observable.
  Result<CqQuery> core = CqCore(redundant);
  ASSERT_TRUE(core.ok());
  EXPECT_EQ(core->num_vars, 3);  // Nothing can fold.
}

TEST(CoreTest, DropsUnusedVariables) {
  CqQuery q;
  q.num_vars = 5;  // Vars 2..4 unused.
  q.atoms = {CqAtom{"E", {0, 1}}};
  Result<CqQuery> core = CqCore(q);
  ASSERT_TRUE(core.ok());
  EXPECT_EQ(core->num_vars, 2);
}

TEST(SemanticTreewidthTest, CliqueWithFoldableApex) {
  // Triangle 0,1,2 plus an extra atom E(3, 1) where 3 can fold onto 0 or 2:
  // syntactic treewidth of the Gaifman graph stays 2; the semantic
  // treewidth equals the triangle's (2). More telling: a "doubled path"
  // with semantic treewidth 1.
  CqQuery doubled;
  doubled.num_vars = 4;
  // Path 0->1->2 plus a redundant copy 0->3->2.
  doubled.atoms = {CqAtom{"E", {0, 1}}, CqAtom{"E", {1, 2}},
                   CqAtom{"E", {0, 3}}, CqAtom{"E", {3, 2}}};
  Result<int> semantic = SemanticTreewidth(doubled);
  ASSERT_TRUE(semantic.ok());
  EXPECT_EQ(*semantic, 1);  // Core is the single path.
  Result<CqQuery> core = CqCore(doubled);
  ASSERT_TRUE(core.ok());
  EXPECT_EQ(core->num_vars, 3);
}

// Containment must match brute-force answer containment on random small
// instances (Chandra–Merlin, validated empirically).
class ContainmentDifferentialTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ContainmentDifferentialTest, MatchesAnswerInclusion) {
  Rng rng(GetParam());
  auto random_query = [&](int num_vars, int atoms) {
    CqQuery q;
    q.num_vars = num_vars;
    for (int a = 0; a < atoms; ++a) {
      q.atoms.push_back(
          CqAtom{"E", {static_cast<CqVarId>(rng.Below(num_vars)),
                       static_cast<CqVarId>(rng.Below(num_vars))}});
    }
    q.free_vars = {0};
    return q;
  };
  const CqQuery q1 = random_query(3, 2 + static_cast<int>(rng.Below(2)));
  const CqQuery q2 = random_query(3, 2 + static_cast<int>(rng.Below(2)));
  Result<bool> contained = CqContainedIn(q1, q2);
  ASSERT_TRUE(contained.ok());

  // Empirical check over a handful of random databases: if the hom says
  // q1 ⊆ q2, answers must be included on every database. (The converse
  // could fail on a finite sample, so only this direction is asserted.)
  for (int trial = 0; trial < 5; ++trial) {
    RelationalDb db(4);
    Relation* rel = *db.AddRelation("E", 2);
    const int tuples = 2 + static_cast<int>(rng.Below(8));
    for (int t = 0; t < tuples; ++t) {
      rel->Add(std::vector<uint32_t>{static_cast<uint32_t>(rng.Below(4)),
                                     static_cast<uint32_t>(rng.Below(4))});
    }
    db.FinalizeAll();
    const auto a1 = CqEvaluateBacktracking(db, q1).ValueOrDie().answers;
    const auto a2 = CqEvaluateBacktracking(db, q2).ValueOrDie().answers;
    if (*contained) {
      for (const auto& answer : a1) {
        EXPECT_NE(std::find(a2.begin(), a2.end(), answer), a2.end())
            << "seed " << GetParam() << " trial " << trial;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainmentDifferentialTest,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace ecrpq
