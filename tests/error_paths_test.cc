// Error-path coverage: every engine entry point must reject bad inputs
// with a descriptive Status (never crash, never silently succeed).
#include <gtest/gtest.h>

#include "eval/adaptive.h"
#include "eval/crpq_eval.h"
#include "eval/explain.h"
#include "eval/generic_eval.h"
#include "eval/reduce_to_cq.h"
#include "eval/satisfiability.h"
#include "graphdb/generators.h"
#include "query/parser.h"
#include "synchro/builders.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

EcrpqQuery Parse(std::string_view text) {
  Result<EcrpqQuery> q = ParseEcrpq(text, kAb);
  EXPECT_TRUE(q.ok()) << q.status();
  return std::move(q).ValueOrDie();
}

TEST(ErrorPathsTest, AlphabetMismatchRejectedEverywhere) {
  // Database alphabet {x, y} is not a prefix of the query's {a, b}.
  GraphDb db(Alphabet::OfChars("xy"));
  db.AddVertices(2);
  db.AddEdge(0, "x", 1);
  const EcrpqQuery q = Parse("q() := u -[p]-> v, lang(/a/, p)");
  EXPECT_FALSE(EvaluateGeneric(db, q).ok());
  EXPECT_FALSE(EvaluateViaCqReduction(db, q).ok());
  EXPECT_FALSE(EvaluateCrpq(db, q).ok());
  EXPECT_FALSE(ReduceToCq(db, q).ok());
}

TEST(ErrorPathsTest, CompatiblePrefixAlphabetAccepted) {
  // Database over {a} only; query knows {a, b}: fine.
  GraphDb db(Alphabet::OfChars("a"));
  db.AddVertices(2);
  db.AddEdge(0, "a", 1);
  const EcrpqQuery q = Parse("q() := u -[p]-> v, lang(/a|b/, p)");
  Result<EvalResult> r = EvaluateGeneric(db, q);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->satisfiable);
}

TEST(ErrorPathsTest, PinValidation) {
  const GraphDb db = CycleGraph(3, "ab");
  const EcrpqQuery q = Parse("q(x) := x -[p]-> y");
  EvalOptions options;
  options.pin = {{99, 0}};  // Unknown variable.
  EXPECT_FALSE(EvaluateGeneric(db, q, options).ok());
  options.pin = {{0, 99}};  // Vertex out of range.
  EXPECT_FALSE(EvaluateGeneric(db, q, options).ok());
}

TEST(ErrorPathsTest, ReductionBudgets) {
  const GraphDb db = CycleGraph(6, "ab");
  const EcrpqQuery q =
      Parse("q() := x -[p1]-> y, x -[p2]-> y, eqlen(p1, p2)");
  ReduceOptions options;
  options.max_tuples = 1;
  Result<CqReduction> r = ReduceToCq(db, q, options);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCapacityExceeded);
  options.max_tuples = 0;
  options.max_product_states = 1;
  r = ReduceToCq(db, q, options);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCapacityExceeded);
}

TEST(ErrorPathsTest, InvalidQueriesRejectedBeforeEvaluation) {
  // Built by hand to bypass the builder's validation-on-build.
  GraphDb db(kAb);
  db.AddVertices(1);
  EcrpqQuery empty;  // Zero atoms, zero vars: valid and trivially true.
  Result<EvalResult> r = EvaluateGeneric(db, empty);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->satisfiable);
}

TEST(ErrorPathsTest, ExplainOnWrongArity) {
  const GraphDb db = CycleGraph(3, "ab");
  const EcrpqQuery q = Parse("q(x) := x -[p]-> y");
  EXPECT_FALSE(ExplainAnswer(db, q, {0, 1}).ok());
}

TEST(ErrorPathsTest, SatisfiabilityOfRelationWithImpossibleArity) {
  // eq over more tapes than the packer allows for this alphabet: the
  // builder rejects it at construction, the earliest possible point.
  Result<SyncRelation> too_wide = EqualityRelation(kAb, 40);
  EXPECT_FALSE(too_wide.ok());
  EXPECT_EQ(too_wide.status().code(), StatusCode::kCapacityExceeded);
}

TEST(ErrorPathsTest, AdaptiveSurfacesPhaseTwoErrors) {
  // Alphabet mismatch must propagate through the adaptive wrapper too.
  GraphDb db(Alphabet::OfChars("xy"));
  db.AddVertices(1);
  const EcrpqQuery q = Parse("q() := u -[p]-> v, lang(/a/, p)");
  EXPECT_FALSE(EvaluateAdaptive(db, q).ok());
}

}  // namespace
}  // namespace ecrpq
