// The cross-query caching layer: sharded LRU invariants (byte budget,
// eviction order, oversized rejection), the automaton interner's dedup and
// DFA memo, the epoch-keyed reach-set memo's staleness guarantee, and the
// plan cache's canonical-key sharing. The concurrent tests run under TSan
// in CI (tools/ci.sh stage 5).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "automata/interner.h"
#include "automata/ops.h"
#include "automata/regex.h"
#include "common/cache.h"
#include "common/hash.h"
#include "common/thread_pool.h"
#include "eval/planner.h"
#include "graphdb/graph_db.h"
#include "graphdb/reach_memo.h"
#include "graphdb/rpq_reach.h"
#include "query/parser.h"
#include "query/simplify.h"

namespace ecrpq {
namespace {

using StringCache = ShardedLruCache<std::string, int, BytesHash>;

TEST(CacheTest, LookupInsertRoundTrip) {
  StringCache cache(/*capacity_bytes=*/1 << 16, /*num_shards=*/4);
  EXPECT_FALSE(cache.Lookup("a").has_value());
  cache.Insert("a", 1, 10);
  cache.Insert("b", 2, 10);
  ASSERT_TRUE(cache.Lookup("a").has_value());
  EXPECT_EQ(*cache.Lookup("a"), 1);
  EXPECT_EQ(*cache.Lookup("b"), 2);
  EXPECT_EQ(cache.NumEntries(), 2u);
  const StringCache::Stats stats = cache.GetStats();
  EXPECT_GE(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(CacheTest, ByteBudgetIsNeverExceeded) {
  // Single shard so the budget math is exact. Every insert charges
  // cost + kCacheEntryOverheadBytes; the high-water mark must stay under
  // capacity at every step, with evictions making room.
  const size_t capacity = 4096;
  StringCache cache(capacity, /*num_shards=*/1);
  for (int i = 0; i < 200; ++i) {
    cache.Insert("key" + std::to_string(i), i, /*cost_bytes=*/128);
    ASSERT_LE(cache.SizeBytes(), capacity) << "after insert " << i;
  }
  EXPECT_GT(cache.GetStats().evictions, 0u);
  EXPECT_GT(cache.NumEntries(), 0u);
}

TEST(CacheTest, OversizedEntryIsRejected) {
  StringCache cache(/*capacity_bytes=*/1024, /*num_shards=*/1);
  cache.Insert("small", 1, 64);
  // Larger than the whole shard: must be rejected, not evict everything.
  cache.Insert("huge", 2, 1 << 20);
  EXPECT_FALSE(cache.Lookup("huge").has_value());
  EXPECT_TRUE(cache.Lookup("small").has_value());
  ASSERT_LE(cache.SizeBytes(), 1024u);
}

TEST(CacheTest, LruEvictsLeastRecentlyUsed) {
  // Room for exactly two entries (cost 128 + overhead 64 = 192 each).
  StringCache cache(/*capacity_bytes=*/400, /*num_shards=*/1);
  cache.Insert("a", 1, 128);
  cache.Insert("b", 2, 128);
  ASSERT_TRUE(cache.Lookup("a").has_value());  // Touch: "b" is now LRU.
  cache.Insert("c", 3, 128);
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_FALSE(cache.Lookup("b").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
}

TEST(CacheTest, ReinsertReplacesInPlace) {
  StringCache cache(/*capacity_bytes=*/1 << 12, /*num_shards=*/1);
  cache.Insert("a", 1, 100);
  const size_t bytes_once = cache.SizeBytes();
  cache.Insert("a", 2, 100);
  EXPECT_EQ(cache.SizeBytes(), bytes_once);
  EXPECT_EQ(cache.NumEntries(), 1u);
  EXPECT_EQ(*cache.Lookup("a"), 2);
}

TEST(CacheTest, ReinsertThatBecomesOversizedDropsTheOldEntry) {
  StringCache cache(/*capacity_bytes=*/1 << 10, /*num_shards=*/1);
  cache.Insert("a", 1, 64);
  ASSERT_TRUE(cache.Lookup("a").has_value());
  // Re-insert under the same key with a cost the cache cannot hold. The
  // new value is rightly not cached — but the OLD value must go with it:
  // a cache that keeps serving the small stale entry after the caller
  // replaced it with an oversized one is returning wrong data forever.
  cache.Insert("a", 2, 1 << 20);
  EXPECT_FALSE(cache.Lookup("a").has_value());
  EXPECT_EQ(cache.NumEntries(), 0u);
  // The key is reusable afterwards.
  cache.Insert("a", 3, 64);
  ASSERT_TRUE(cache.Lookup("a").has_value());
  EXPECT_EQ(*cache.Lookup("a"), 3);
}

TEST(CacheTest, GetOrInsertRunsFactoryOncePerKey) {
  StringCache cache(/*capacity_bytes=*/1 << 16, /*num_shards=*/4);
  int calls = 0;
  auto factory = [&calls] {
    ++calls;
    return 7;
  };
  auto cost = [](const int&) { return size_t{16}; };
  EXPECT_EQ(cache.GetOrInsert("k", factory, cost), 7);
  EXPECT_EQ(cache.GetOrInsert("k", factory, cost), 7);
  EXPECT_EQ(calls, 1);
}

TEST(CacheTest, ClearEmptiesEveryShard) {
  StringCache cache(/*capacity_bytes=*/1 << 16, /*num_shards=*/8);
  for (int i = 0; i < 32; ++i) {
    cache.Insert("key" + std::to_string(i), i, 32);
  }
  cache.Clear();
  EXPECT_EQ(cache.NumEntries(), 0u);
  EXPECT_EQ(cache.SizeBytes(), 0u);
  EXPECT_FALSE(cache.Lookup("key0").has_value());
}

TEST(CacheTest, ConcurrentMixedAccessIsSafe) {
  // Hammer one small cache from many threads: lookups, inserts and
  // GetOrInsert over an overlapping key space, with eviction pressure.
  // The assertions are deliberately weak — this test exists for TSan.
  StringCache cache(/*capacity_bytes=*/8192, /*num_shards=*/4);
  ThreadPool pool(8);
  pool.ParallelFor(8, [&cache](size_t w) {
    for (int i = 0; i < 500; ++i) {
      const std::string key = "key" + std::to_string(i % 40);
      if (i % 3 == 0) {
        cache.Insert(key, static_cast<int>(w), 64);
      } else if (i % 3 == 1) {
        auto hit = cache.Lookup(key);
        if (hit.has_value()) {
          ASSERT_GE(*hit, 0);
          ASSERT_LT(*hit, 48);
        }
      } else {
        const int got = cache.GetOrInsert(
            key, [i] { return i % 40; }, [](const int&) { return size_t{64}; });
        ASSERT_GE(got, 0);
        ASSERT_LT(got, 48);
      }
    }
  });
  EXPECT_LE(cache.SizeBytes(), 8192u);
}

Nfa ChainNfa(bool reversed_insertion) {
  // a then b, two orders of AddTransition: canonical bytes must agree.
  Nfa nfa;
  nfa.AddStates(3);
  nfa.SetInitial(0);
  nfa.SetAccepting(2);
  if (reversed_insertion) {
    nfa.AddTransition(1, 1, 2);
    nfa.AddTransition(0, 1, 1);
    nfa.AddTransition(0, 0, 1);
  } else {
    nfa.AddTransition(0, 0, 1);
    nfa.AddTransition(0, 1, 1);
    nfa.AddTransition(1, 1, 2);
  }
  return nfa;
}

TEST(AutomatonInternerTest, DedupsAcrossTransitionInsertionOrder) {
  AutomatonInterner interner;
  const InternedNfa a = interner.Intern(ChainNfa(false));
  const InternedNfa b = interner.Intern(ChainNfa(true));
  EXPECT_EQ(a.unique_id, b.unique_id);
  EXPECT_EQ(a.nfa.get(), b.nfa.get());  // One shared canonical instance.
}

TEST(AutomatonInternerTest, DistinctLanguagesGetDistinctIds) {
  AutomatonInterner interner;
  Nfa other = ChainNfa(false);
  other.SetAccepting(1);
  const InternedNfa a = interner.Intern(ChainNfa(false));
  const InternedNfa b = interner.Intern(other);
  EXPECT_NE(a.unique_id, b.unique_id);
}

TEST(AutomatonInternerTest, DeterminizeCachedMatchesDirectSubsetConstruction) {
  Alphabet alphabet = Alphabet::OfChars("ab");
  const Nfa nfa =
      CompileRegex("(a|b)*a(a|b)", &alphabet).ValueOrDie();
  const std::vector<Label> universe = {0, 1};
  AutomatonInterner interner;
  const InternedNfa interned = interner.Intern(nfa);
  const std::shared_ptr<const Dfa> cached =
      interner.DeterminizeCached(interned, universe);
  const Dfa direct = Determinize(*interned.nfa, universe);
  // Same language on every word up to length 6.
  std::vector<Label> word;
  for (int coded = 0; coded < (1 << 7); ++coded) {
    word.clear();
    int bits = coded;
    while (bits > 1) {
      word.push_back(static_cast<Label>(bits & 1));
      bits >>= 1;
    }
    EXPECT_EQ(cached->Accepts(word), direct.Accepts(word));
    EXPECT_EQ(cached->Accepts(word), interned.nfa->Accepts(word));
  }
  // Second call is a hit: the exact same DFA instance comes back.
  EXPECT_EQ(interner.DeterminizeCached(interned, universe).get(),
            cached.get());
}

TEST(AutomatonInternerTest, ConcurrentInternAgreesOnOneId) {
  AutomatonInterner interner;
  ThreadPool pool(8);
  std::vector<uint64_t> ids(8, 0);
  pool.ParallelFor(8, [&](size_t w) {
    ids[w] = interner.Intern(ChainNfa(w % 2 == 0)).unique_id;
  });
  for (size_t w = 1; w < ids.size(); ++w) EXPECT_EQ(ids[w], ids[0]);
}

GraphDb TwoHopDb() {
  GraphDb db(Alphabet::OfChars("ab"));
  db.AddVertices(4);
  db.AddEdge(0, static_cast<Symbol>(0), 1);
  db.AddEdge(1, static_cast<Symbol>(0), 2);
  return db;
}

TEST(ReachMemoTest, CopiedGraphGetsFreshIdentity) {
  const GraphDb db = TwoHopDb();
  const GraphDb copy = db;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_NE(db.graph_id(), copy.graph_id());
}

TEST(ReachMemoTest, EveryMutationBumpsTheEpoch) {
  GraphDb db = TwoHopDb();
  const uint64_t e0 = db.graph_epoch();
  db.AddEdge(0, static_cast<Symbol>(0), 1);  // Duplicate triple: still bumps.
  const uint64_t e1 = db.graph_epoch();
  EXPECT_GT(e1, e0);
  db.AddVertex();
  EXPECT_GT(db.graph_epoch(), e1);
}

TEST(ReachMemoTest, StaleEpochEntryIsNeverReturnedAfterMutation) {
  GraphDb db = TwoHopDb();
  Alphabet alphabet = Alphabet::OfChars("ab");
  const Nfa lang = CompileRegex("a*", &alphabet).ValueOrDie();
  AutomatonInterner interner;
  const InternedNfa interned = interner.Intern(lang);

  ReachMemo::Global().Clear();
  const auto before = RpqReachAllCached(db, interned);
  EXPECT_EQ(before, RpqReachAll(db, lang));

  // Extend reachability: 2 -a-> 3. A stale pre-mutation reach set would
  // miss (0,3), (1,3), (2,3).
  db.AddEdge(2, static_cast<Symbol>(0), 3);
  const auto after = RpqReachAllCached(db, interned);
  EXPECT_EQ(after, RpqReachAll(db, lang));
  EXPECT_NE(after, before);
}

TEST(ReachMemoTest, WarmLookupServesFromMemo) {
  GraphDb db = TwoHopDb();
  Alphabet alphabet = Alphabet::OfChars("ab");
  const Nfa lang = CompileRegex("aa", &alphabet).ValueOrDie();
  AutomatonInterner interner;
  const InternedNfa interned = interner.Intern(lang);

  ReachMemo::Global().Clear();
  const auto cold = RpqReachAllCached(db, interned);
  const size_t entries = ReachMemo::Global().NumEntries();
  EXPECT_EQ(entries, db.NumVertices());
  const auto warm = RpqReachAllCached(db, interned);
  EXPECT_EQ(cold, warm);
  EXPECT_EQ(ReachMemo::Global().NumEntries(), entries);  // No re-inserts.
}

TEST(ReachMemoTest, ConcurrentCachedReachIsConsistent) {
  GraphDb db = TwoHopDb();
  db.Finalize();
  Alphabet alphabet = Alphabet::OfChars("ab");
  const Nfa lang = CompileRegex("a*", &alphabet).ValueOrDie();
  AutomatonInterner interner;
  const InternedNfa interned = interner.Intern(lang);
  ReachMemo::Global().Clear();
  const auto expected = RpqReachAll(db, lang);
  ThreadPool pool(8);
  pool.ParallelFor(8, [&](size_t) {
    ASSERT_EQ(RpqReachAllCached(db, interned), expected);
  });
}

TEST(ReachMemoTest, MovedFromGraphStopsServingTheOldIdentity) {
  GraphDb db = TwoHopDb();
  Alphabet alphabet = Alphabet::OfChars("ab");
  const Nfa lang = CompileRegex("a*", &alphabet).ValueOrDie();
  AutomatonInterner interner;
  const InternedNfa interned = interner.Intern(lang);
  ReachMemo::Global().Clear();
  const auto original = RpqReachAllCached(db, interned);
  const uint64_t original_id = db.graph_id();

  // Move steals the identity: the stolen graph keeps serving the warm
  // memo entries (it IS the same snapshot)...
  GraphDb stolen = std::move(db);
  EXPECT_EQ(stolen.graph_id(), original_id);
  EXPECT_EQ(RpqReachAllCached(stolen, interned), original);

  // ...while the moved-from shell holds a FRESH id at epoch 0. This is
  // the load-bearing half: if the shell retained (id, epoch), whatever
  // graph gets built in it next would silently serve the old graph's
  // reach sets.
  EXPECT_NE(db.graph_id(), original_id);
  EXPECT_EQ(db.graph_epoch(), 0u);

  // Rebuild the shell as a graph with the same shape but inverted labels:
  // a* reachability collapses to the reflexive pairs. Cached and uncached
  // answers must agree — a stale hit would resurrect `original`.
  GraphDb rebuilt(Alphabet::OfChars("ab"));
  rebuilt.AddVertices(4);
  rebuilt.AddEdge(0, static_cast<Symbol>(1), 1);
  rebuilt.AddEdge(1, static_cast<Symbol>(1), 2);
  db = std::move(rebuilt);
  EXPECT_EQ(RpqReachAllCached(db, interned), RpqReachAll(db, lang));
  EXPECT_NE(RpqReachAllCached(db, interned), original);
}

TEST(PlanCacheTest, AlphaRenamedQueriesShareOneEntry) {
  const Alphabet alphabet = Alphabet::OfChars("ab");
  const EcrpqQuery q1 =
      ParseEcrpq("q() := x -[/a*b/]-> y, y -[/b*a/]-> z", alphabet)
          .ValueOrDie();
  const EcrpqQuery q2 =
      ParseEcrpq("q() := u -[/a*b/]-> v, v -[/b*a/]-> w", alphabet)
          .ValueOrDie();
  ASSERT_EQ(CanonicalQueryKey(q1), CanonicalQueryKey(q2));

  ClearGlobalCaches();
  const QueryClassification c1 = ClassifyQueryCached(q1);
  EXPECT_EQ(GlobalPlanCache().NumEntries(), 1u);
  const QueryClassification c2 = ClassifyQueryCached(q2);
  EXPECT_EQ(GlobalPlanCache().NumEntries(), 1u);  // Hit, not a new entry.
  EXPECT_EQ(c1.engine, c2.engine);
  EXPECT_EQ(c1.measures.treewidth, c2.measures.treewidth);
}

TEST(PlanCacheTest, DistinctStructuresGetDistinctEntries) {
  const Alphabet alphabet = Alphabet::OfChars("ab");
  const EcrpqQuery chain =
      ParseEcrpq("q() := x -[/a*b/]-> y, y -[/b*a/]-> z", alphabet)
          .ValueOrDie();
  const EcrpqQuery fork =
      ParseEcrpq("q() := x -[/a*b/]-> y, x -[/b*a/]-> z", alphabet)
          .ValueOrDie();
  EXPECT_NE(CanonicalQueryKey(chain), CanonicalQueryKey(fork));
  ClearGlobalCaches();
  ClassifyQueryCached(chain);
  ClassifyQueryCached(fork);
  EXPECT_EQ(GlobalPlanCache().NumEntries(), 2u);
}

TEST(PlanCacheTest, DisableCacheBypassesEveryLayer) {
  const Alphabet alphabet = Alphabet::OfChars("ab");
  const EcrpqQuery query =
      ParseEcrpq("q() := x -[/a*b/]-> y", alphabet).ValueOrDie();
  GraphDb db = TwoHopDb();

  ClearGlobalCaches();
  EvalOptions options;
  options.disable_cache = true;
  const EvalResult off = EvaluatePlanned(db, query, options).ValueOrDie();
  EXPECT_EQ(GlobalPlanCache().NumEntries(), 0u);
  EXPECT_EQ(ReachMemo::Global().NumEntries(), 0u);

  options.disable_cache = false;
  const EvalResult on = EvaluatePlanned(db, query, options).ValueOrDie();
  EXPECT_GT(GlobalPlanCache().NumEntries(), 0u);
  EXPECT_EQ(off.satisfiable, on.satisfiable);
  EXPECT_EQ(off.answers, on.answers);
}

}  // namespace
}  // namespace ecrpq
