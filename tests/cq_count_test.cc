// Homomorphism counting via tree-decomposition DP vs brute force.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "cq/count.h"
#include "graphdb/generators.h"
#include "query/parser.h"

namespace ecrpq {
namespace {

RelationalDb CycleDb(uint32_t n) {
  RelationalDb db(n);
  Relation* edge = *db.AddRelation("E", 2);
  for (uint32_t v = 0; v < n; ++v) {
    edge->Add(std::vector<uint32_t>{v, (v + 1) % n});
  }
  db.FinalizeAll();
  return db;
}

TEST(CountTest, PathsInCycle) {
  const RelationalDb db = CycleDb(5);
  CqQuery path;
  path.num_vars = 3;
  path.atoms = {{"E", {0, 1}}, {"E", {1, 2}}};
  Result<uint64_t> count = CountAssignments(db, path);
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(*count, 5u);  // One 2-path per start vertex.
}

TEST(CountTest, UnconstrainedVariablesMultiplyDomain) {
  const RelationalDb db = CycleDb(4);
  CqQuery q;
  q.num_vars = 3;  // Var 2 unconstrained.
  q.atoms = {{"E", {0, 1}}};
  Result<uint64_t> count = CountAssignments(db, q);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 4u * 4u);  // 4 edges × 4 values of var 2.
}

TEST(CountTest, EmptyQueryCountsOne) {
  const RelationalDb db = CycleDb(3);
  CqQuery q;
  q.num_vars = 0;
  Result<uint64_t> count = CountAssignments(db, q);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
}

TEST(CountTest, UnsatisfiableCountsZero) {
  RelationalDb db(3);
  Relation* edge = *db.AddRelation("E", 2);
  edge->Add(std::vector<uint32_t>{0, 1});
  db.FinalizeAll();
  CqQuery triangle;
  triangle.num_vars = 3;
  triangle.atoms = {{"E", {0, 1}}, {"E", {1, 2}}, {"E", {2, 0}}};
  Result<uint64_t> count = CountAssignments(db, triangle);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
}

class CountDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CountDifferentialTest, DpMatchesBruteForce) {
  Rng rng(GetParam());
  const uint32_t domain = 3 + static_cast<uint32_t>(rng.Below(3));
  RelationalDb db(domain);
  for (const char* name : {"R", "S"}) {
    Relation* rel = *db.AddRelation(name, 2);
    const int tuples = 2 + static_cast<int>(rng.Below(10));
    for (int i = 0; i < tuples; ++i) {
      rel->Add(std::vector<uint32_t>{static_cast<uint32_t>(rng.Below(domain)),
                                     static_cast<uint32_t>(rng.Below(domain))});
    }
  }
  db.FinalizeAll();
  CqQuery q;
  q.num_vars = 2 + static_cast<int>(rng.Below(4));
  const int atoms = 1 + static_cast<int>(rng.Below(4));
  for (int a = 0; a < atoms; ++a) {
    q.atoms.push_back(
        CqAtom{rng.Chance(0.5) ? "R" : "S",
               {static_cast<CqVarId>(rng.Below(q.num_vars)),
                static_cast<CqVarId>(rng.Below(q.num_vars))}});
  }
  Result<uint64_t> dp = CountAssignments(db, q);
  Result<uint64_t> brute = CountAssignmentsBrute(db, q);
  ASSERT_TRUE(dp.ok()) << dp.status();
  ASSERT_TRUE(brute.ok());
  EXPECT_EQ(*dp, *brute) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CountDifferentialTest,
                         ::testing::Range<uint64_t>(0, 40));

TEST(CountTest, EcrpqNodeAssignments) {
  // Example 2.1 on the fork graph: count node assignments (x, xp, y)
  // admitting equal-length paths.
  const Alphabet alphabet = Alphabet::OfChars("ab");
  GraphDb db(alphabet);
  db.AddVertices(3);
  db.AddEdge(0, "a", 2);
  db.AddEdge(1, "b", 2);
  Result<EcrpqQuery> q = ParseEcrpq(
      "q(x, xp) := x -[p1]-> y, xp -[p2]-> y, eqlen(p1, p2)", alphabet);
  ASSERT_TRUE(q.ok());
  Result<uint64_t> count = CountEcrpqNodeAssignments(db, *q);
  ASSERT_TRUE(count.ok()) << count.status();
  // Assignments: empty-path triples (v, v, v) for v=0,1,2 plus
  // (0,1,2), (1,0,2), (0,0,2)? 0 and 0 to y=2 equal length: yes (a, a)..
  // wait there is one a-edge 0->2 and one b-edge 1->2:
  // (0,0,2): p1=p2=the a-edge: allowed (paths may coincide): yes.
  // (1,1,2), (0,1,2), (1,0,2) similarly.
  // Total: 3 diagonal + 4 into y=2 = 7.
  EXPECT_EQ(*count, 7u);
}

}  // namespace
}  // namespace ecrpq
