#include <gtest/gtest.h>

#include "common/rng.h"
#include "structure/tree_decomposition.h"
#include "structure/treewidth.h"

namespace ecrpq {
namespace {

SimpleGraph PathGraphSimple(int n) {
  SimpleGraph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

SimpleGraph CycleGraphSimple(int n) {
  SimpleGraph g = PathGraphSimple(n);
  g.AddEdge(n - 1, 0);
  return g;
}

SimpleGraph CompleteGraph(int n) {
  SimpleGraph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.AddEdge(i, j);
  }
  return g;
}

SimpleGraph GridGraphSimple(int w, int h) {
  SimpleGraph g(w * h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (x + 1 < w) g.AddEdge(y * w + x, y * w + x + 1);
      if (y + 1 < h) g.AddEdge(y * w + x, (y + 1) * w + x);
    }
  }
  return g;
}

SimpleGraph RandomSimpleGraph(Rng* rng, int n, double p) {
  SimpleGraph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng->Chance(p)) g.AddEdge(i, j);
    }
  }
  return g;
}

TEST(TreewidthExactTest, KnownValues) {
  EXPECT_EQ(TreewidthExact(SimpleGraph(0))->width, 0);
  EXPECT_EQ(TreewidthExact(SimpleGraph(3))->width, 0);  // No edges.
  EXPECT_EQ(TreewidthExact(PathGraphSimple(8))->width, 1);
  EXPECT_EQ(TreewidthExact(CycleGraphSimple(8))->width, 2);
  EXPECT_EQ(TreewidthExact(CompleteGraph(5))->width, 4);
  EXPECT_EQ(TreewidthExact(GridGraphSimple(3, 3))->width, 3);
  EXPECT_EQ(TreewidthExact(GridGraphSimple(4, 4))->width, 4);
}

TEST(TreewidthExactTest, RefusesLargeGraphs) {
  EXPECT_FALSE(TreewidthExact(PathGraphSimple(25), 20).ok());
}

TEST(TreewidthHeuristicTest, UpperBoundsExact) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const SimpleGraph g = RandomSimpleGraph(&rng, 9, 0.3);
    const int exact = TreewidthExact(g)->width;
    EXPECT_GE(TreewidthMinDegree(g).width, exact);
    EXPECT_GE(TreewidthMinFill(g).width, exact);
    EXPECT_GE(exact, DegeneracyLowerBound(g));
  }
}

TEST(TreewidthHeuristicTest, ExactOnEasyFamilies) {
  // Min-fill is exact on chordal-ish families like paths and cliques.
  EXPECT_EQ(TreewidthMinFill(PathGraphSimple(10)).width, 1);
  EXPECT_EQ(TreewidthMinFill(CompleteGraph(6)).width, 5);
  EXPECT_EQ(TreewidthMinDegree(CycleGraphSimple(10)).width, 2);
}

TEST(TreeDecompositionTest, FromEliminationOrderIsValid) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const SimpleGraph g = RandomSimpleGraph(&rng, 10, 0.25);
    const TreewidthResult tw = TreewidthMinFill(g);
    const TreeDecomposition td =
        DecompositionFromEliminationOrder(g, tw.elimination_order);
    const Status valid = ValidateTreeDecomposition(g, td);
    EXPECT_TRUE(valid.ok()) << valid;
    EXPECT_EQ(td.Width(), tw.width);
  }
}

TEST(TreeDecompositionTest, ExactOrderYieldsExactWidthDecomposition) {
  const SimpleGraph g = GridGraphSimple(3, 3);
  Result<TreewidthResult> tw = TreewidthExact(g);
  ASSERT_TRUE(tw.ok());
  const TreeDecomposition td =
      DecompositionFromEliminationOrder(g, tw->elimination_order);
  EXPECT_TRUE(ValidateTreeDecomposition(g, td).ok());
  EXPECT_EQ(td.Width(), tw->width);
}

TEST(TreeDecompositionTest, DisconnectedGraphBecomesOneTree) {
  SimpleGraph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);  // Two components + isolated vertices 4, 5.
  const TreewidthResult tw = TreewidthMinDegree(g);
  const TreeDecomposition td =
      DecompositionFromEliminationOrder(g, tw.elimination_order);
  EXPECT_TRUE(ValidateTreeDecomposition(g, td).ok());
}

TEST(TreeDecompositionTest, ValidatorCatchesViolations) {
  const SimpleGraph g = PathGraphSimple(3);
  // Missing edge coverage.
  TreeDecomposition bad;
  bad.bags = {{0, 1}, {2}};
  bad.edges = {{0, 1}};
  EXPECT_FALSE(ValidateTreeDecomposition(g, bad).ok());
  // Disconnected occurrence of vertex 1.
  TreeDecomposition split;
  split.bags = {{0, 1}, {2}, {1, 2}};
  split.edges = {{0, 1}, {1, 2}};
  EXPECT_FALSE(ValidateTreeDecomposition(g, split).ok());
  // Valid decomposition for reference.
  TreeDecomposition good;
  good.bags = {{0, 1}, {1, 2}};
  good.edges = {{0, 1}};
  EXPECT_TRUE(ValidateTreeDecomposition(g, good).ok());
  EXPECT_EQ(good.Width(), 1);
}

TEST(TreewidthBestTest, PicksExactWhenSmall) {
  const TreewidthResult r = TreewidthBest(CycleGraphSimple(10));
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.width, 2);
  const TreewidthResult big = TreewidthBest(PathGraphSimple(40));
  EXPECT_FALSE(big.exact);
  EXPECT_EQ(big.width, 1);  // Heuristics still nail paths.
}

}  // namespace
}  // namespace ecrpq
