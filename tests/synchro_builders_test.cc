#include <gtest/gtest.h>

#include "automata/regex.h"
#include "common/rng.h"
#include "synchro/builders.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

SyncRelation Make(Result<SyncRelation> r) {
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).ValueOrDie();
}

Word RandomWordOf(Rng* rng, int max_len, int alphabet_size) {
  Word w(rng->Below(max_len + 1));
  for (Symbol& s : w) s = static_cast<Symbol>(rng->Below(alphabet_size));
  return w;
}

TEST(BuildersTest, UniversalContainsEverything) {
  const SyncRelation universal = Make(UniversalRelation(kAb, 3));
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const std::vector<Word> tuple = {RandomWordOf(&rng, 4, 2),
                                     RandomWordOf(&rng, 4, 2),
                                     RandomWordOf(&rng, 4, 2)};
    EXPECT_TRUE(universal.Contains(tuple));
  }
}

TEST(BuildersTest, EqualityExactlyDiagonal) {
  const SyncRelation eq = Make(EqualityRelation(kAb, 3));
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const Word w = RandomWordOf(&rng, 5, 2);
    EXPECT_TRUE(eq.Contains(std::vector<Word>{w, w, w}));
    Word w2 = RandomWordOf(&rng, 5, 2);
    const bool all_equal = (w2 == w);
    EXPECT_EQ(eq.Contains(std::vector<Word>{w, w2, w}), all_equal);
  }
}

TEST(BuildersTest, EqualLengthChecksLengthsOnly) {
  const SyncRelation eqlen = Make(EqualLengthRelation(kAb, 2));
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const Word u = RandomWordOf(&rng, 6, 2);
    const Word v = RandomWordOf(&rng, 6, 2);
    EXPECT_EQ(eqlen.Contains(std::vector<Word>{u, v}), u.size() == v.size());
  }
}

TEST(BuildersTest, PrefixSemantics) {
  const SyncRelation prefix = Make(PrefixRelation(kAb));
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const Word u = RandomWordOf(&rng, 5, 2);
    const Word v = RandomWordOf(&rng, 5, 2);
    const bool is_prefix =
        u.size() <= v.size() && std::equal(u.begin(), u.end(), v.begin());
    EXPECT_EQ(prefix.Contains(std::vector<Word>{u, v}), is_prefix)
        << "iteration " << i;
  }
}

int HammingOrMinus1(const Word& u, const Word& v) {
  if (u.size() != v.size()) return -1;
  int d = 0;
  for (size_t i = 0; i < u.size(); ++i) d += (u[i] != v[i]);
  return d;
}

TEST(BuildersTest, HammingAtMost) {
  for (int bound = 0; bound <= 2; ++bound) {
    const SyncRelation rel = Make(HammingAtMostRelation(kAb, bound));
    Rng rng(5 + bound);
    for (int i = 0; i < 200; ++i) {
      const Word u = RandomWordOf(&rng, 5, 2);
      Word v = u;
      if (rng.Chance(0.5)) v = RandomWordOf(&rng, 5, 2);
      const int d = HammingOrMinus1(u, v);
      EXPECT_EQ(rel.Contains(std::vector<Word>{u, v}), d >= 0 && d <= bound);
    }
  }
}

TEST(BuildersTest, LexLeqSemantics) {
  const SyncRelation rel = Make(LexLeqRelation(kAb));
  EXPECT_TRUE(rel.Contains(std::vector<Word>{{0, 1}, {0, 1}}));
  EXPECT_TRUE(rel.Contains(std::vector<Word>{{0, 0}, {0, 1}}));
  EXPECT_FALSE(rel.Contains(std::vector<Word>{{0, 1}, {0, 0}}));
  // Different lengths never relate.
  EXPECT_FALSE(rel.Contains(std::vector<Word>{{0}, {0, 1}}));
  // ε <= ε.
  EXPECT_TRUE(rel.Contains(std::vector<Word>{{}, {}}));
}

TEST(BuildersTest, FromLanguageMatchesNfa) {
  Alphabet alphabet = Alphabet::OfChars("ab");
  Result<Nfa> lang = CompileRegex("a*b", &alphabet);
  ASSERT_TRUE(lang.ok());
  const SyncRelation rel = Make(FromLanguage(alphabet, *lang));
  EXPECT_EQ(rel.arity(), 1);
  EXPECT_TRUE(rel.Contains(std::vector<Word>{{1}}));           // "b".
  EXPECT_TRUE(rel.Contains(std::vector<Word>{{0, 0, 1}}));     // "aab".
  EXPECT_FALSE(rel.Contains(std::vector<Word>{{0}}));          // "a".
  EXPECT_FALSE(rel.Contains(std::vector<Word>{{}}));           // ε.
}

TEST(BuildersTest, LanguageLiftConstrainsOneTape) {
  Alphabet alphabet = Alphabet::OfChars("ab");
  Result<Nfa> lang = CompileRegex("ab", &alphabet);
  ASSERT_TRUE(lang.ok());
  const SyncRelation rel = Make(LanguageLift(alphabet, *lang, 3, 1));
  Rng rng(8);
  for (int i = 0; i < 150; ++i) {
    const Word w0 = RandomWordOf(&rng, 4, 2);
    const Word w1 = RandomWordOf(&rng, 4, 2);
    const Word w2 = RandomWordOf(&rng, 4, 2);
    const bool expected = (w1 == Word{0, 1});
    EXPECT_EQ(rel.Contains(std::vector<Word>{w0, w1, w2}), expected);
  }
}

TEST(BuildersTest, LanguageLiftWithEpsilonInLanguage) {
  Alphabet alphabet = Alphabet::OfChars("ab");
  Result<Nfa> lang = CompileRegex("(ab)*", &alphabet);  // ε-rich Thompson NFA.
  ASSERT_TRUE(lang.ok());
  const SyncRelation rel = Make(LanguageLift(alphabet, *lang, 2, 0));
  EXPECT_TRUE(rel.Contains(std::vector<Word>{{}, {1, 1, 1}}));
  EXPECT_TRUE(rel.Contains(std::vector<Word>{{0, 1, 0, 1}, {}}));
  EXPECT_FALSE(rel.Contains(std::vector<Word>{{0}, {1}}));
}

TEST(BuildersTest, InvalidParameters) {
  EXPECT_FALSE(HammingAtMostRelation(kAb, -1).ok());
  EXPECT_FALSE(EditDistanceAtMostRelation(kAb, -2).ok());
  Alphabet alphabet = Alphabet::OfChars("ab");
  Nfa lang(1);
  lang.SetInitial(0);
  lang.SetAccepting(0);
  EXPECT_FALSE(LanguageLift(alphabet, lang, 2, 5).ok());
}

}  // namespace
}  // namespace ecrpq
