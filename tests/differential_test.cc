// DifferentialSuite: randomized differential testing of the observability &
// resource-governance layer against the naive oracle.
//
// Three properties, each over many seeded random instances:
//  - attaching an obs::Session (metrics + tracing, no budget) never changes
//    answers, for 1 and 4 worker threads, including the streamed on_answer
//    callback sequence;
//  - the CQ-reduction pipeline under observation still matches the oracle;
//  - a tight budget yields either the exact un-budgeted result or a clean
//    Status::ResourceExhausted with a populated partial StatsReport — never
//    a third behavior, a crash, or a hang.
//
//  - the pipeline's size-histogram bucket counts are identical at 1 and 4
//    worker threads (its work set is pool-size-independent).
//
// Five parameterized tests x 125 seeds = 625 random instances per run.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/obs.h"
#include "common/rng.h"
#include "eval/generic_eval.h"
#include "eval/naive_eval.h"
#include "eval/reduce_to_cq.h"
#include "graphdb/generators.h"
#include "query/builder.h"
#include "synchro/builders.h"
#include "workloads/query_gen.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

std::shared_ptr<const SyncRelation> Shared(Result<SyncRelation> r) {
  EXPECT_TRUE(r.ok()) << r.status();
  return std::make_shared<const SyncRelation>(std::move(r).ValueOrDie());
}

// Same instance family as eval_differential_test.cc: 2-4 node vars, 2-4
// path atoms, binary relations drawn from {eqlen, eq, prefix, hamming1}.
Result<EcrpqQuery> RandomEcrpq(Rng* rng) {
  EcrpqBuilder builder(kAb);
  const int num_nodes = 2 + static_cast<int>(rng->Below(3));
  std::vector<NodeVarId> nodes;
  for (int i = 0; i < num_nodes; ++i) {
    nodes.push_back(builder.NodeVar("x" + std::to_string(i)));
  }
  const int num_paths = 2 + static_cast<int>(rng->Below(3));
  std::vector<PathVarId> paths;
  for (int i = 0; i < num_paths; ++i) {
    const PathVarId p = builder.PathVar("p" + std::to_string(i));
    builder.Reach(nodes[rng->Below(num_nodes)], p,
                  nodes[rng->Below(num_nodes)]);
    paths.push_back(p);
  }
  const int num_rel_atoms = 1 + static_cast<int>(rng->Below(2));
  for (int i = 0; i < num_rel_atoms; ++i) {
    const PathVarId a = paths[rng->Below(num_paths)];
    PathVarId b = paths[rng->Below(num_paths)];
    if (b == a) b = paths[(std::find(paths.begin(), paths.end(), a) -
                           paths.begin() + 1) %
                          num_paths];
    if (a == b) {
      builder.Relate(Shared(EqualLengthRelation(kAb, 1)), {a}, "any");
      continue;
    }
    switch (rng->Below(4)) {
      case 0:
        builder.Relate(Shared(EqualLengthRelation(kAb, 2)), {a, b}, "eqlen");
        break;
      case 1:
        builder.Relate(Shared(EqualityRelation(kAb, 2)), {a, b}, "eq");
        break;
      case 2:
        builder.Relate(Shared(PrefixRelation(kAb)), {a, b}, "prefix");
        break;
      default:
        builder.Relate(Shared(HammingAtMostRelation(kAb, 1)), {a, b},
                       "hamming1");
        break;
    }
  }
  if (rng->Chance(0.5)) builder.Free({nodes[0]});
  return builder.Build();
}

GraphDb RandomSmallDb(Rng* rng) {
  const int n = 2 + static_cast<int>(rng->Below(3));  // 2-4 vertices.
  GraphDb db(kAb);
  db.AddVertices(n);
  const int edges = 2 + static_cast<int>(rng->Below(2 * n));
  for (int e = 0; e < edges; ++e) {
    db.AddEdge(static_cast<VertexId>(rng->Below(n)),
               static_cast<Symbol>(rng->Below(2)),
               static_cast<VertexId>(rng->Below(n)));
  }
  return db;
}

class DifferentialSuite : public ::testing::TestWithParam<uint64_t> {};

// Observability attached (metrics + trace, no budget) at 1 and 4 threads:
// answers and the streamed callback sequence are byte-identical to the
// plain run, which itself matches the oracle.
TEST_P(DifferentialSuite, ObsOnOffAgreesWithOracle) {
  Rng rng(GetParam());
  Result<EcrpqQuery> q = RandomEcrpq(&rng);
  ASSERT_TRUE(q.ok()) << q.status();
  const GraphDb db = RandomSmallDb(&rng);

  Result<EvalResult> naive = EvaluateNaive(db, *q);
  ASSERT_TRUE(naive.ok()) << naive.status();

  auto run = [&](obs::Session* session,
                 int threads) -> std::pair<EvalResult,
                                           std::vector<std::vector<VertexId>>> {
    std::vector<std::vector<VertexId>> streamed;
    EvalOptions options;
    options.num_threads = threads;
    options.obs = session;
    options.on_answer = [&](const std::vector<VertexId>& answer) {
      streamed.push_back(answer);
      return true;
    };
    Result<EvalResult> result = EvaluateGeneric(db, *q, options);
    EXPECT_TRUE(result.ok()) << result.status();
    return {std::move(result).ValueOrDie(), std::move(streamed)};
  };

  const auto [plain, plain_stream] = run(nullptr, 1);
  ASSERT_EQ(naive->answers, plain.answers)
      << "seed " << GetParam() << "\nquery: " << q->ToString();

  for (int threads : {1, 4}) {
    obs::Session session;
    session.EnableTrace();
    const auto [observed, observed_stream] = run(&session, threads);
    ASSERT_EQ(plain.satisfiable, observed.satisfiable)
        << "seed " << GetParam() << " threads " << threads;
    ASSERT_EQ(plain.answers, observed.answers)
        << "seed " << GetParam() << " threads " << threads
        << "\nquery: " << q->ToString();
    ASSERT_EQ(plain_stream, observed_stream)
        << "seed " << GetParam() << " threads " << threads;
    // Observation observed something whenever there was work to do.
    if (!q->reach_atoms().empty()) {
      const obs::StatsReport report = session.Report();
      EXPECT_GT(report[obs::CounterId::kReachQueries], 0u)
          << "seed " << GetParam() << " threads " << threads;
      // Histograms are always on with a session attached; a run that
      // issued reach queries sampled BFS phase times and frontier sizes —
      // and recording them must not have perturbed the answers above.
      EXPECT_FALSE(report.hist(obs::HistogramId::kPhaseBfsNs).Empty())
          << "seed " << GetParam() << " threads " << threads;
      EXPECT_FALSE(report.hist(obs::HistogramId::kFrontierSize).Empty())
          << "seed " << GetParam() << " threads " << threads;
    }
    EXPECT_GT(session.trace()->NumEvents(), 0u);
  }
}

// The Lemma 4.3 pipeline under observation matches the oracle, and the
// session sees the materialization work.
TEST_P(DifferentialSuite, PipelineWithObsAgreesWithOracle) {
  Rng rng(GetParam() + 10000);
  Result<EcrpqQuery> q = RandomEcrpq(&rng);
  ASSERT_TRUE(q.ok()) << q.status();
  const GraphDb db = RandomSmallDb(&rng);

  Result<EvalResult> naive = EvaluateNaive(db, *q);
  ASSERT_TRUE(naive.ok()) << naive.status();

  obs::Session session;
  ReduceOptions options;
  options.obs = &session;
  Result<EvalResult> piped =
      EvaluateViaCqReduction(db, *q, /*use_treedec=*/true, options);
  ASSERT_TRUE(piped.ok()) << piped.status();
  ASSERT_EQ(naive->satisfiable, piped->satisfiable)
      << "seed " << GetParam() << "\nquery: " << q->ToString();
  ASSERT_EQ(naive->answers, piped->answers)
      << "seed " << GetParam() << "\nquery: " << q->ToString();
  EXPECT_GT(session.Report()[obs::CounterId::kProductStatesExpanded], 0u);
}

// Shared tight-budget property: the run either agrees exactly with the
// oracle (budget never tripped) or fails with a clean ResourceExhausted
// whose session still serves a populated partial StatsReport.
void CheckTightBudget(uint64_t seed, int threads) {
  Rng rng(seed);
  Result<EcrpqQuery> q = RandomEcrpq(&rng);
  ASSERT_TRUE(q.ok()) << q.status();
  const GraphDb db = RandomSmallDb(&rng);

  Result<EvalResult> naive = EvaluateNaive(db, *q);
  ASSERT_TRUE(naive.ok()) << naive.status();

  obs::Session session;
  obs::EvalBudget budget;
  budget.max_product_states = 1 + seed % 16;  // Tight: trips often.
  session.SetBudget(budget);

  EvalOptions options;
  options.num_threads = threads;
  options.obs = &session;
  Result<EvalResult> result = EvaluateGeneric(db, *q, options);
  if (result.ok()) {
    ASSERT_EQ(naive->answers, result->answers)
        << "seed " << seed << " threads " << threads
        << "\nquery: " << q->ToString();
    return;
  }
  ASSERT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << "seed " << seed << " threads " << threads << ": "
      << result.status();
  EXPECT_TRUE(session.Exhausted());
  ASSERT_NE(session.exhausted_reason(), nullptr);
  EXPECT_STREQ(session.exhausted_reason(), "max_product_states");
  // Partial report: tripping the state cap requires having counted states.
  EXPECT_GE(session.Report()[obs::CounterId::kProductStatesExpanded],
            budget.max_product_states)
      << "seed " << seed << " threads " << threads;
}

// Size-histogram determinism across pool sizes: the Lemma 4.3 pipeline
// searches every source tuple exactly once whatever the worker count, so
// the kSize histogram bucket counts (frontier sizes, reach-set sizes, bag
// widths) are identical at 1 and 4 threads — only the kTimeNs histograms
// are allowed to differ. (The generic engine's parallel mode does NOT have
// this property: its per-worker searcher memos split schedule-dependently.)
TEST_P(DifferentialSuite, PipelineSizeHistogramsPoolSizeInvariant) {
  Rng rng(GetParam() + 40000);
  Result<EcrpqQuery> q = RandomEcrpq(&rng);
  ASSERT_TRUE(q.ok()) << q.status();
  const GraphDb db = RandomSmallDb(&rng);

  auto run = [&](int threads) -> std::pair<EvalResult, obs::StatsReport> {
    obs::Session session;
    ReduceOptions options;
    options.obs = &session;
    options.num_threads = threads;
    Result<EvalResult> result =
        EvaluateViaCqReduction(db, *q, /*use_treedec=*/true, options);
    EXPECT_TRUE(result.ok()) << result.status();
    return {std::move(result).ValueOrDie(), session.Report()};
  };

  const auto [r1, s1] = run(1);
  const auto [r4, s4] = run(4);
  ASSERT_EQ(r1.answers, r4.answers)
      << "seed " << GetParam() << "\nquery: " << q->ToString();
  for (int i = 0; i < obs::kNumHistograms; ++i) {
    const obs::HistogramId id = static_cast<obs::HistogramId>(i);
    if (obs::HistogramKindOf(id) != obs::HistogramKind::kSize) continue;
    const obs::HistogramData& a = s1.hist(id);
    const obs::HistogramData& b = s4.hist(id);
    EXPECT_EQ(a.buckets, b.buckets)
        << obs::HistogramName(id) << " seed " << GetParam()
        << "\nquery: " << q->ToString();
    EXPECT_EQ(a.sum, b.sum) << obs::HistogramName(id);
    EXPECT_EQ(a.max, b.max) << obs::HistogramName(id);
  }
}

TEST_P(DifferentialSuite, TightBudgetSequentialAgreesOrExhausts) {
  CheckTightBudget(GetParam() + 20000, /*threads=*/1);
}

TEST_P(DifferentialSuite, TightBudgetParallelAgreesOrExhausts) {
  CheckTightBudget(GetParam() + 30000, /*threads=*/4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSuite,
                         ::testing::Range<uint64_t>(0, 125));

}  // namespace
}  // namespace ecrpq
