// Streaming answers from the generic evaluator.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "eval/generic_eval.h"
#include "graphdb/generators.h"
#include "query/parser.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

EcrpqQuery Parse(std::string_view text) {
  Result<EcrpqQuery> q = ParseEcrpq(text, kAb);
  EXPECT_TRUE(q.ok()) << q.status();
  return std::move(q).ValueOrDie();
}

TEST(StreamingTest, CallbackSeesEveryDistinctAnswer) {
  const GraphDb db = CycleGraph(4, "ab");
  const EcrpqQuery q =
      Parse("q(x, y) := x -[p1]-> y, x -[p2]-> y, eqlen(p1, p2)");
  std::vector<std::vector<VertexId>> streamed;
  EvalOptions options;
  options.on_answer = [&](const std::vector<VertexId>& answer) {
    streamed.push_back(answer);
    return true;
  };
  Result<EvalResult> r = EvaluateGeneric(db, q, options);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(streamed.size(), r->answers.size());
  std::sort(streamed.begin(), streamed.end());
  EXPECT_EQ(streamed, r->answers);
}

TEST(StreamingTest, CallbackCanStopEarly) {
  const GraphDb db = CycleGraph(6, "ab");
  const EcrpqQuery q = Parse("q(x, y) := x -[/a|b/]-> y");
  int seen = 0;
  EvalOptions options;
  options.on_answer = [&](const std::vector<VertexId>&) {
    return ++seen < 3;
  };
  Result<EvalResult> r = EvaluateGeneric(db, q, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(seen, 3);
  EXPECT_EQ(r->answers.size(), 3u);
  EXPECT_TRUE(r->satisfiable);
}

TEST(StreamingTest, NoDuplicateCallbacks) {
  // Many satisfying assignments project to the same answer; the callback
  // must fire once per distinct projection.
  const GraphDb db = CycleGraph(3, "aaa");
  const EcrpqQuery q = Parse("q(x) := x -[p1]-> y, x -[p2]-> z");
  std::set<std::vector<VertexId>> seen;
  EvalOptions options;
  options.on_answer = [&](const std::vector<VertexId>& answer) {
    EXPECT_TRUE(seen.insert(answer).second) << "duplicate callback";
    return true;
  };
  Result<EvalResult> r = EvaluateGeneric(db, q, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(seen.size(), r->answers.size());
}

}  // namespace
}  // namespace ecrpq
