// Service determinism: N seeded client scripts executed CONCURRENTLY
// (one session per thread) must produce, per client, the byte-identical
// response stream that a sequential run of the same scripts produces.
//
// Why this holds: each script mutates only its own named graph (the shared
// "default" graph is only ever queried), sessions execute their own
// requests strictly in order, and every response carries only
// deterministic fields (sorted answers, classification, validation
// errors). The cross-query caches are shared between the concurrent
// clients — a cache hit must never change response bytes, which is exactly
// the PR-7 cache-transparency property, now pinned end-to-end through the
// wire protocol. Runs at pool sizes 1 and 4 and with caches on and off;
// the TSan CI stage runs this whole suite under the race detector.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "eval/planner.h"
#include "graphdb/graph_db.h"
#include "service/query_service.h"

namespace ecrpq {
namespace {

constexpr int kNumClients = 4;
constexpr int kOpsPerClient = 25;

GraphDb BaseGraph(uint64_t seed) {
  Rng rng(seed);
  GraphDb db(Alphabet::OfChars("ab"));
  const int n = 8;
  db.AddVertices(n);
  for (int i = 0; i < 2 * n; ++i) {
    db.AddEdge(static_cast<VertexId>(rng.Below(n)),
               std::string_view(rng.Below(2) == 0 ? "a" : "b"),
               static_cast<VertexId>(rng.Below(n)));
  }
  db.Finalize();
  return db;
}

// One client's request lines. Mutations target the client's own graph
// only; queries go to the own graph or (read-only) to "default". Invalid
// requests are generated on purpose — their error responses are part of
// the deterministic stream.
std::vector<std::string> ClientScript(int client, uint64_t seed) {
  Rng rng(seed * 977 + static_cast<uint64_t>(client));
  const std::string g = "g" + std::to_string(client);
  const std::vector<std::string> kQueries = {
      "q(x) := x -[/a*/]-> y",
      "q(x,y) := x -[/ab/]-> y",
      "q() := x -[/a/]-> y, y -[/b/]-> z",
      "q(x) := x -[/(a|b)*/]-> y, y -[/a/]-> x",
      "q(x,y) := x -[/aa*/]-> y, x -[/b/]-> y",
  };
  std::vector<std::string> script;
  int next_id = 0;
  auto id = [&] { return "c" + std::to_string(client) + "-" +
                         std::to_string(next_id++); };
  script.push_back("{\"id\":\"" + id() + "\",\"op\":\"create_graph\","
                   "\"graph\":\"" + g + "\",\"alphabet\":\"ab\"}");
  script.push_back("{\"id\":\"" + id() + "\",\"op\":\"add_vertex\","
                   "\"graph\":\"" + g + "\",\"count\":6}");
  int vertices = 6;
  for (int i = 0; i < kOpsPerClient; ++i) {
    switch (rng.Below(6)) {
      case 0:
        script.push_back("{\"id\":\"" + id() + "\",\"op\":\"add_vertex\","
                         "\"graph\":\"" + g + "\",\"count\":" +
                         std::to_string(1 + rng.Below(3)) + "}");
        vertices += 1;  // Lower bound; enough to keep edges mostly valid.
        break;
      case 1: {
        // Sometimes deliberately out of range: a deterministic error.
        const int hi = rng.Below(8) == 0 ? vertices + 10 : vertices;
        script.push_back(
            "{\"id\":\"" + id() + "\",\"op\":\"add_edge\",\"graph\":\"" + g +
            "\",\"from\":" + std::to_string(rng.Below(hi)) +
            ",\"symbol\":\"" + (rng.Below(2) == 0 ? "a" : "b") +
            "\",\"to\":" + std::to_string(rng.Below(hi)) + "}");
        break;
      }
      case 2:
      case 3:
        script.push_back(
            "{\"id\":\"" + id() + "\",\"op\":\"query\",\"graph\":\"" + g +
            "\",\"query\":\"" + kQueries[rng.Below(kQueries.size())] +
            "\"}");
        break;
      case 4:
        // Read-only traffic on the SHARED graph: many sessions evaluate
        // on "default" concurrently.
        script.push_back(
            "{\"id\":\"" + id() + "\",\"op\":\"query\","
            "\"query\":\"" + kQueries[rng.Below(kQueries.size())] +
            "\",\"max_answers\":" + std::to_string(1 + rng.Below(5)) + "}");
        break;
      default:
        script.push_back("{\"id\":\"" + id() + "\",\"op\":\"ping\"}");
        break;
    }
  }
  return script;
}

std::vector<std::string> RunScript(QueryService& service,
                                   const std::vector<std::string>& script) {
  auto session = service.OpenSession();
  std::vector<std::string> responses;
  responses.reserve(script.size());
  for (const std::string& line : script) {
    responses.push_back(session->HandleLine(line));
  }
  return responses;
}

class ServiceDifferentialSuite : public ::testing::TestWithParam<uint64_t> {};

void RunDifferential(uint64_t seed, int pool_threads, bool disable_cache) {
  ServiceConfig config;
  config.pool_threads = pool_threads;
  config.disable_cache = disable_cache;

  std::vector<std::vector<std::string>> scripts;
  for (int c = 0; c < kNumClients; ++c) {
    scripts.push_back(ClientScript(c, seed));
  }

  // Oracle: one fresh service, clients run one after another. Disjoint
  // mutation targets make the interleaving irrelevant.
  std::vector<std::vector<std::string>> expected(kNumClients);
  {
    ClearGlobalCaches();  // Both runs start cache-cold.
    QueryService service(config, BaseGraph(seed));
    for (int c = 0; c < kNumClients; ++c) {
      expected[c] = RunScript(service, scripts[c]);
    }
  }

  // Concurrent run: same fresh setup, one thread per client.
  std::vector<std::vector<std::string>> actual(kNumClients);
  {
    ClearGlobalCaches();
    QueryService service(config, BaseGraph(seed));
    std::vector<std::thread> threads;
    for (int c = 0; c < kNumClients; ++c) {
      threads.emplace_back([&service, &scripts, &actual, c] {
        actual[c] = RunScript(service, scripts[c]);
      });
    }
    for (std::thread& t : threads) t.join();
  }

  for (int c = 0; c < kNumClients; ++c) {
    ASSERT_EQ(expected[c].size(), actual[c].size()) << "client " << c;
    for (size_t i = 0; i < expected[c].size(); ++i) {
      EXPECT_EQ(expected[c][i], actual[c][i])
          << "client " << c << " line " << i << ": " << scripts[c][i];
    }
  }
}

TEST_P(ServiceDifferentialSuite, Pool1Cached) {
  RunDifferential(GetParam(), 1, false);
}

TEST_P(ServiceDifferentialSuite, Pool4Cached) {
  RunDifferential(GetParam(), 4, false);
}

TEST_P(ServiceDifferentialSuite, Pool1NoCache) {
  RunDifferential(GetParam(), 1, true);
}

TEST_P(ServiceDifferentialSuite, Pool4NoCache) {
  RunDifferential(GetParam(), 4, true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServiceDifferentialSuite,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace ecrpq
