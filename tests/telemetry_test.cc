// Unit coverage for the request-telemetry sinks: the TelemetryRegistry
// exposition (format, determinism, gauge-group atomicity), the EventLog
// JSON-lines appender, and the FlightRecorder ring (wraparound, trace
// validity, file dumps).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/event_log.h"
#include "common/flight_recorder.h"
#include "common/json.h"
#include "common/metrics.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace ecrpq {
namespace {

using obs::CounterId;
using obs::EventLog;
using obs::FlightRecorder;
using obs::HistogramId;
using obs::TelemetryRegistry;
using obs::ValidateTraceJson;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "ecrpq_telemetry_test_" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(TelemetryRegistryTest, RendersCountersHistogramsAndGauges) {
  obs::Metrics metrics;
  obs::MetricsShard* shard = metrics.AcquireShard();
  shard->Add(CounterId::kProductStatesExpanded, 41);
  for (int i = 1; i <= 100; ++i) {
    shard->Record(HistogramId::kServiceRequestNs, static_cast<uint64_t>(i));
  }

  TelemetryRegistry registry;
  registry.RegisterGroup("admission_", [] {
    return TelemetryRegistry::GaugeGroup{{"submitted", 7}, {"admitted", 7}};
  });

  const std::string text = registry.Render(metrics.Aggregate());
  EXPECT_NE(text.find("# TYPE ecrpq_product_states_expanded counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ecrpq_product_states_expanded 41"), std::string::npos);
  // Histogram family (a Prometheus summary): count, sum, quantiles.
  EXPECT_NE(text.find("# TYPE ecrpq_service_request_ns summary"),
            std::string::npos);
  EXPECT_NE(text.find("ecrpq_service_request_ns_count 100"),
            std::string::npos);
  EXPECT_NE(text.find("ecrpq_service_request_ns_sum 5050"),
            std::string::npos);
  EXPECT_NE(text.find("ecrpq_service_request_ns{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ecrpq_service_request_ns{quantile=\"0.9\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ecrpq_service_request_ns{quantile=\"0.99\"}"),
            std::string::npos);
  // Gauge group, "ecrpq_" + prefix + suffix.
  EXPECT_NE(text.find("# TYPE ecrpq_admission_submitted gauge"),
            std::string::npos);
  EXPECT_NE(text.find("ecrpq_admission_submitted 7"), std::string::npos);

  // Identical state renders byte-identically (deterministic ordering).
  EXPECT_EQ(text, registry.Render(metrics.Aggregate()));
}

TEST(TelemetryRegistryTest, GroupSnapshotIsOneCallbackInvocation) {
  // The registry must take each group from exactly ONE callback invocation
  // per Render — that is what lets a provider that reads all its values
  // under one lock promise cross-value identities in every snapshot.
  TelemetryRegistry registry;
  int calls = 0;
  registry.RegisterGroup("pair_", [&calls] {
    ++calls;
    const uint64_t a = static_cast<uint64_t>(calls) * 10;
    return TelemetryRegistry::GaugeGroup{{"left", a}, {"right", a}};
  });
  obs::Metrics metrics;
  const std::string text = registry.Render(metrics.Aggregate());
  EXPECT_EQ(calls, 1);
  // Both values came from the same invocation.
  EXPECT_NE(text.find("ecrpq_pair_left 10"), std::string::npos) << text;
  EXPECT_NE(text.find("ecrpq_pair_right 10"), std::string::npos) << text;
}

TEST(TelemetryRegistryTest, StatsOnlyExpositionSkipsEmptyHistograms) {
  obs::Metrics metrics;
  obs::MetricsShard* shard = metrics.AcquireShard();
  shard->Add(CounterId::kCacheHits, 3);
  const std::string text = obs::RenderStatsExposition(metrics.Aggregate());
  EXPECT_NE(text.find("ecrpq_cache_hits 3"), std::string::npos) << text;
  // No histogram was recorded: no empty histogram families in the output.
  EXPECT_EQ(text.find("ecrpq_service_request_ns"), std::string::npos) << text;
}

TEST(EventLogTest, AppendsOneFlushedLinePerEvent) {
  const std::string path = TempPath("event_log.jsonl");
  std::remove(path.c_str());
  EventLog log(path);
  ASSERT_TRUE(log.ok());
  log.Append("{\"event\":\"query\",\"n\":1}");
  log.Append("{\"event\":\"query\",\"n\":2}");
  EXPECT_EQ(log.lines_written(), 2u);

  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    Result<json::Value> doc = json::Parse(line);
    ASSERT_TRUE(doc.ok()) << line;
    std::string event;
    ASSERT_TRUE(doc->GetString("event", &event));
    EXPECT_EQ(event, "query");
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(EventLogTest, UnwritablePathIsNotOkAndAppendIsANoOp) {
  EventLog log("/nonexistent-dir-zz/event.jsonl");
  EXPECT_FALSE(log.ok());
  log.Append("{\"event\":\"query\"}");  // Must not crash.
  EXPECT_EQ(log.lines_written(), 0u);
}

TEST(EventLogTest, ConcurrentAppendsNeverInterleaveWithinALine) {
  const std::string path = TempPath("event_log_mt.jsonl");
  std::remove(path.c_str());
  EventLog log(path);
  ASSERT_TRUE(log.ok());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Append("{\"event\":\"query\",\"writer\":" + std::to_string(t) +
                   ",\"n\":" + std::to_string(i) + "}");
      }
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(log.lines_written(), uint64_t{kThreads} * kPerThread);

  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    ASSERT_TRUE(json::Parse(line).ok()) << "torn line: " << line;
  }
  EXPECT_EQ(lines, kThreads * kPerThread);
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, RetainedWindowValidatesAsTraceJson) {
  FlightRecorder recorder(/*capacity=*/8);
  recorder.Record("parse", 0, 100, 50);
  recorder.Record("evaluate", 0, 200, 300, /*arg=*/7);
  EXPECT_EQ(recorder.NumRecorded(), 2u);
  const std::string json = recorder.ToTraceJson("t-42");
  EXPECT_TRUE(ValidateTraceJson(json, /*min_events=*/2).ok()) << json;
  Result<json::Value> doc = json::Parse(json);
  ASSERT_TRUE(doc.ok());
  std::string trace_id;
  ASSERT_TRUE(doc->GetString("traceId", &trace_id)) << json;
  EXPECT_EQ(trace_id, "t-42");
}

TEST(FlightRecorderTest, WraparoundKeepsOnlyTheNewestEvents) {
  FlightRecorder recorder(/*capacity=*/4);
  for (uint64_t i = 0; i < 10; ++i) {
    recorder.Record("event", 0, i * 100, 10, i);
  }
  EXPECT_EQ(recorder.NumRecorded(), 10u);
  const std::string json = recorder.ToTraceJson();
  ASSERT_TRUE(ValidateTraceJson(json, /*min_events=*/4).ok()) << json;
  Result<json::Value> doc = json::Parse(json);
  ASSERT_TRUE(doc.ok());
  const json::Value* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // Exactly the last `capacity` records survive, oldest first.
  ASSERT_EQ(events->AsArray().size(), 4u);
  double prev_ts = -1;
  for (const json::Value& event : events->AsArray()) {
    double ts = 0;
    ASSERT_TRUE(event.GetNumber("ts", &ts));
    EXPECT_GT(ts, prev_ts) << "events must be oldest-first";
    prev_ts = ts;
  }
}

TEST(FlightRecorderTest, DumpToFileWritesAValidPostmortem) {
  const std::string path = TempPath("postmortem.json");
  std::remove(path.c_str());
  FlightRecorder recorder(/*capacity=*/8);
  recorder.Record("service_request", 1, 10, 20);
  ASSERT_TRUE(recorder.DumpToFile(path, "boom-1").ok());
  const std::string dumped = Slurp(path);
  EXPECT_TRUE(ValidateTraceJson(dumped, /*min_events=*/1).ok()) << dumped;
  std::remove(path.c_str());

  EXPECT_FALSE(
      recorder.DumpToFile("/nonexistent-dir-zz/postmortem.json").ok());
}

TEST(FlightRecorderTest, ConcurrentWritersNeverBreakTheDump) {
  FlightRecorder recorder(/*capacity=*/16);
  constexpr int kThreads = 4;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  std::atomic<bool> stop{false};
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, &stop, t] {
      for (uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        recorder.Record("spin", t, i, 1);
        if (i > 20000) break;
      }
    });
  }
  // Dump repeatedly mid-write: torn slots are skipped, never emitted.
  for (int i = 0; i < 50; ++i) {
    const std::string json = recorder.ToTraceJson();
    ASSERT_TRUE(ValidateTraceJson(json).ok()) << json;
  }
  stop.store(true);
  for (std::thread& w : writers) w.join();
  // After the storm a lapped slot may retain an older writer's stamp and
  // be (correctly) skipped — the documented drop-a-torn-record contract —
  // so the drained window is valid but not necessarily full. One fresh
  // single-writer lap must be fully readable again.
  EXPECT_TRUE(ValidateTraceJson(recorder.ToTraceJson()).ok());
  for (uint64_t i = 0; i < 16; ++i) {
    recorder.Record("fresh", 0, i * 10, 1);
  }
  EXPECT_TRUE(
      ValidateTraceJson(recorder.ToTraceJson(), /*min_events=*/16).ok());
}

}  // namespace
}  // namespace ecrpq
