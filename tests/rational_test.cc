// Rational relations (transducers) and the §1 hierarchy: semantics of the
// non-synchronous examples plus differential agreement with SyncRelation
// on the relations in both classes.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "synchro/builders.h"
#include "synchro/rational.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

Word RandomWordOf(Rng* rng, int max_len) {
  Word w(rng->Below(max_len + 1));
  for (Symbol& s : w) s = static_cast<Symbol>(rng->Below(2));
  return w;
}

bool IsSuffix(const Word& u, const Word& v) {
  return u.size() <= v.size() &&
         std::equal(u.rbegin(), u.rend(), v.rbegin());
}

bool IsFactor(const Word& u, const Word& v) {
  if (u.empty()) return true;
  if (u.size() > v.size()) return false;
  for (size_t start = 0; start + u.size() <= v.size(); ++start) {
    if (std::equal(u.begin(), u.end(), v.begin() + start)) return true;
  }
  return false;
}

bool IsSubword(const Word& u, const Word& v) {
  size_t i = 0;
  for (size_t j = 0; j < v.size() && i < u.size(); ++j) {
    if (u[i] == v[j]) ++i;
  }
  return i == u.size();
}

TEST(TransducerTest, ValidationOfTransitions) {
  Transducer t(kAb);
  const StateId s = t.AddState();
  EXPECT_FALSE(t.AddTransition(s, std::nullopt, std::nullopt, s).ok());
  EXPECT_FALSE(t.AddTransition(s, Symbol{9}, std::nullopt, s).ok());
  EXPECT_TRUE(t.AddTransition(s, Symbol{0}, std::nullopt, s).ok());
}

TEST(TransducerTest, SuffixSemantics) {
  const Transducer t = SuffixTransducer(kAb);
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    const Word u = RandomWordOf(&rng, 5);
    const Word v = RandomWordOf(&rng, 5);
    ASSERT_EQ(t.Contains(u, v), IsSuffix(u, v)) << "iteration " << i;
  }
}

TEST(TransducerTest, FactorSemantics) {
  const Transducer t = FactorTransducer(kAb);
  Rng rng(2);
  for (int i = 0; i < 300; ++i) {
    const Word u = RandomWordOf(&rng, 4);
    const Word v = RandomWordOf(&rng, 6);
    ASSERT_EQ(t.Contains(u, v), IsFactor(u, v)) << "iteration " << i;
  }
}

TEST(TransducerTest, SubwordSemantics) {
  const Transducer t = SubwordTransducer(kAb);
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const Word u = RandomWordOf(&rng, 4);
    const Word v = RandomWordOf(&rng, 6);
    ASSERT_EQ(t.Contains(u, v), IsSubword(u, v)) << "iteration " << i;
  }
}

TEST(TransducerTest, PrefixAgreesWithSynchronousPrefix) {
  // Prefix is in Rational ∩ Synchronous: the transducer and the
  // synchronous relation must agree everywhere.
  const Transducer t = PrefixTransducer(kAb);
  Result<SyncRelation> sync = PrefixRelation(kAb);
  ASSERT_TRUE(sync.ok());
  Rng rng(4);
  for (int i = 0; i < 300; ++i) {
    const Word u = RandomWordOf(&rng, 5);
    const Word v = RandomWordOf(&rng, 5);
    ASSERT_EQ(t.Contains(u, v), sync->Contains(std::vector<Word>{u, v}))
        << "iteration " << i;
  }
}

TEST(TransducerTest, IdentityAgreesWithEquality) {
  const Transducer t = IdentityTransducer(kAb);
  Result<SyncRelation> eq = EqualityRelation(kAb, 2);
  ASSERT_TRUE(eq.ok());
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const Word u = RandomWordOf(&rng, 5);
    const Word v = rng.Chance(0.5) ? u : RandomWordOf(&rng, 5);
    ASSERT_EQ(t.Contains(u, v), eq->Contains(std::vector<Word>{u, v}));
  }
}

TEST(TransducerTest, HierarchyWitness) {
  // The suffix relation relates (b, ab) but no synchronous lockstep
  // automaton can: this is the textbook witness that Synchronous ⊊
  // Rational. We verify the rational side accepts the witness family
  // (u, a^n u) for growing n — the unbounded "shift" a synchronous
  // automaton cannot absorb.
  const Transducer t = SuffixTransducer(kAb);
  Word u = {1, 0, 1};  // bab.
  Word v = u;
  for (int n = 0; n < 10; ++n) {
    ASSERT_TRUE(t.Contains(u, v)) << "shift " << n;
    v.insert(v.begin(), 0);  // Prepend 'a'.
  }
  ASSERT_FALSE(t.Contains(v, u));
}

}  // namespace
}  // namespace ecrpq
