// Unit tests for the ecrpq::obs layer (common/metrics.h, common/trace.h,
// common/obs.h): deterministic counter aggregation under a real thread
// pool, span nesting, trace JSON schema round-trip, budget trips on every
// axis with a readable partial report, and always-on death tests for the
// budget invariants (suite BudgetInvariantsDeathTest, kept out of the
// TSan ctest regex — fork-based death tests and TSan don't mix).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/obs.h"
#include "common/thread_pool.h"
#include "eval/generic_eval.h"
#include "workloads/db_gen.h"
#include "workloads/query_gen.h"

namespace ecrpq {
namespace {

using obs::CounterId;
using obs::CounterKind;

TEST(ObsTest, CounterVocabularyIsStable) {
  EXPECT_STREQ(obs::CounterName(CounterId::kProductStatesExpanded),
               "product_states_expanded");
  EXPECT_STREQ(obs::CounterName(CounterId::kFrontierPeak), "frontier_peak");
  EXPECT_STREQ(obs::CounterName(CounterId::kAnswersEmitted),
               "answers_emitted");
  for (int i = 0; i < obs::kNumCounters; ++i) {
    const CounterId id = static_cast<CounterId>(i);
    EXPECT_NE(obs::CounterName(id), nullptr);
    // The only peak (max-folded) counter today is the BFS frontier.
    EXPECT_EQ(obs::CounterKindOf(id) == CounterKind::kMax,
              id == CounterId::kFrontierPeak)
        << obs::CounterName(id);
  }
}

// Hammer per-worker shards from a real 4-thread pool; the aggregate must
// equal the arithmetic total (sum counters) / maximum (peak counters) no
// matter how the scheduler interleaved the workers. Run under TSan via the
// dedicated ci.sh stage.
TEST(ObsTest, ShardAggregationDeterministicAcrossThreads) {
  constexpr size_t kWorkers = 8;
  constexpr uint64_t kAddsPerWorker = 10000;
  obs::Metrics metrics;
  std::vector<obs::MetricsShard*> shards(kWorkers);
  for (size_t w = 0; w < kWorkers; ++w) shards[w] = metrics.AcquireShard();

  ThreadPool pool(4);
  pool.ParallelFor(kWorkers, [&](size_t w) {
    for (uint64_t i = 0; i < kAddsPerWorker; ++i) {
      shards[w]->Add(CounterId::kProductStatesExpanded);
      shards[w]->Add(CounterId::kVisitedBytes, 3);
    }
    shards[w]->RecordMax(CounterId::kFrontierPeak, 100 * (w + 1));
  });

  const obs::StatsReport report = metrics.Aggregate();
  EXPECT_EQ(report[CounterId::kProductStatesExpanded],
            kWorkers * kAddsPerWorker);
  EXPECT_EQ(report[CounterId::kVisitedBytes], kWorkers * kAddsPerWorker * 3);
  EXPECT_EQ(report[CounterId::kFrontierPeak], 100 * kWorkers);
  EXPECT_EQ(report[CounterId::kMemoHits], 0u);
  // Aggregate() is a pure fold: calling it again gives the same report.
  EXPECT_EQ(metrics.Aggregate().values, report.values);
  EXPECT_EQ(metrics.Total(CounterId::kVisitedBytes),
            report[CounterId::kVisitedBytes]);
}

TEST(ObsTest, NullSafeHelpersAndSpansAreNoOps) {
  obs::Add(nullptr, CounterId::kProductStatesExpanded);
  obs::RecordMax(nullptr, CounterId::kFrontierPeak, 42);
  { obs::Span span(nullptr, "never recorded", 7); }
  // Reaching here without a crash is the assertion.
  SUCCEED();
}

TEST(ObsTest, StatsReportRendersEveryCounter) {
  obs::StatsReport report;
  report.at(CounterId::kProductStatesExpanded) = 123;
  const std::string text = report.ToString();
  EXPECT_NE(text.find("product_states_expanded"), std::string::npos);
  EXPECT_NE(text.find("123"), std::string::npos);
  const std::string json = report.ToJson();
  for (int i = 0; i < obs::kNumCounters; ++i) {
    EXPECT_NE(json.find(obs::CounterName(static_cast<CounterId>(i))),
              std::string::npos)
        << json;
  }
}

TEST(ObsTest, SpanNestingIsRecordedWithContainment) {
  obs::Trace trace;
  {
    obs::Span outer(&trace, "outer");
    { obs::Span inner_a(&trace, "inner_a", 0); }
    { obs::Span inner_b(&trace, "inner_b", 1); }
  }
  ASSERT_EQ(trace.NumEvents(), 3u);
  const std::vector<obs::Trace::Event> events = trace.Events();
  // Events() sorts by start time: the outer span started first but is
  // recorded last (RAII), and must contain both inner spans.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner_a");
  EXPECT_STREQ(events[2].name, "inner_b");
  const uint64_t outer_end = events[0].start_ns + events[0].dur_ns;
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_ns, events[0].start_ns);
    EXPECT_LE(events[i].start_ns + events[i].dur_ns, outer_end);
  }
  EXPECT_TRUE(events[1].has_arg);
  EXPECT_EQ(events[2].arg, 1u);
  // inner_a ended before inner_b started (sequential blocks).
  EXPECT_LE(events[1].start_ns + events[1].dur_ns, events[2].start_ns);
}

TEST(ObsTest, TraceJsonRoundTripValidates) {
  obs::Trace trace;
  {
    obs::Span outer(&trace, "phase \"quoted\"\\slash");  // Escaping path.
    obs::Span inner(&trace, "inner", 9);
  }
  const std::string json = trace.ToJson();
  EXPECT_TRUE(obs::ValidateTraceJson(json, /*min_events=*/2).ok())
      << obs::ValidateTraceJson(json, 2) << "\n"
      << json;
}

TEST(ObsTest, ValidateTraceJsonRejectsMalformedInput) {
  EXPECT_FALSE(obs::ValidateTraceJson("", 0).ok());
  EXPECT_FALSE(obs::ValidateTraceJson("not json", 0).ok());
  EXPECT_FALSE(obs::ValidateTraceJson("{}", 0).ok());
  EXPECT_FALSE(obs::ValidateTraceJson(R"({"traceEvents": 5})", 0).ok());
  EXPECT_FALSE(
      obs::ValidateTraceJson(R"({"traceEvents": [{"name": 1}]})", 0).ok());
  EXPECT_FALSE(obs::ValidateTraceJson(
                   R"({"traceEvents": [{"name": "x", "ph": "X")"
                   R"(, "ts": 0, "dur": 1, "pid": 0}]})",
                   0)
                   .ok())
      << "event missing tid must be rejected";
  // Well-formed empty trace: OK at min_events 0, rejected at 1.
  const std::string empty = obs::Trace().ToJson();
  EXPECT_TRUE(obs::ValidateTraceJson(empty, 0).ok());
  EXPECT_FALSE(obs::ValidateTraceJson(empty, 1).ok());
}

// A PSPACE-regime workload big enough that every budget axis below trips
// well before the evaluation finishes.
struct HardInstance {
  GraphDb db;
  EcrpqQuery query;
};

HardInstance MakeHardInstance() {
  Rng rng(7);
  // ~17k product states / tens of milliseconds even optimized: large
  // enough that the strided CheckBudget polls fire many times per axis.
  return HardInstance{
      LayeredDag(&rng, 6, 32, 3, 2),
      EqualityStarQuery(Alphabet::OfChars("ab"), 3).ValueOrDie()};
}

void ExpectBudgetTrip(const obs::EvalBudget& budget, const char* want_reason,
                      int threads) {
  const HardInstance inst = MakeHardInstance();
  obs::Session session;
  session.SetBudget(budget);
  EvalOptions options;
  options.num_threads = threads;
  options.obs = &session;
  Result<EvalResult> result = EvaluateGeneric(inst.db, inst.query, options);
  ASSERT_FALSE(result.ok()) << "budget did not trip (threads " << threads
                            << ")";
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status();
  EXPECT_TRUE(session.Exhausted());
  ASSERT_NE(session.exhausted_reason(), nullptr);
  EXPECT_STREQ(session.exhausted_reason(), want_reason);
  EXPECT_EQ(session.ExhaustedStatus().code(),
            StatusCode::kResourceExhausted);
  // The partial report is readable and reflects real work.
  const obs::StatsReport report = session.Report();
  EXPECT_GT(report[CounterId::kProductStatesExpanded], 0u)
      << report.ToString();
}

TEST(ObsTest, StateBudgetTripsSequentialWithPartialReport) {
  obs::EvalBudget budget;
  budget.max_product_states = 256;
  ExpectBudgetTrip(budget, "max_product_states", /*threads=*/1);
}

TEST(ObsTest, StateBudgetTripsParallelWithPartialReport) {
  obs::EvalBudget budget;
  budget.max_product_states = 256;
  ExpectBudgetTrip(budget, "max_product_states", /*threads=*/4);
}

TEST(ObsTest, MemoryBudgetTripsWithPartialReport) {
  obs::EvalBudget budget;
  budget.max_memory_bytes = 1024;
  ExpectBudgetTrip(budget, "max_memory_bytes", /*threads=*/1);
}

TEST(ObsTest, DeadlineBudgetTripsWithPartialReport) {
  obs::EvalBudget budget;
  budget.timeout_millis = 1;  // Far below this instance's runtime.
  ExpectBudgetTrip(budget, "deadline", /*threads=*/1);
}

TEST(ObsTest, UntrippedBudgetLeavesResultIntact) {
  const HardInstance inst = MakeHardInstance();
  Result<EvalResult> plain = EvaluateGeneric(inst.db, inst.query);
  ASSERT_TRUE(plain.ok()) << plain.status();

  obs::Session session;
  obs::EvalBudget budget;
  budget.max_product_states = 1ull << 40;  // Effectively unreachable.
  session.SetBudget(budget);
  EvalOptions options;
  options.obs = &session;
  Result<EvalResult> budgeted = EvaluateGeneric(inst.db, inst.query, options);
  ASSERT_TRUE(budgeted.ok()) << budgeted.status();
  EXPECT_EQ(plain->satisfiable, budgeted->satisfiable);
  EXPECT_EQ(plain->answers, budgeted->answers);
  EXPECT_FALSE(session.Exhausted());
  EXPECT_EQ(session.exhausted_reason(), nullptr);
  EXPECT_TRUE(session.ExhaustedStatus().ok());
}

TEST(ObsTest, CheckBudgetIsNoOpWhenUnarmed) {
  obs::Session session;
  EXPECT_FALSE(session.armed());
  EXPECT_FALSE(session.CheckBudget());
  EXPECT_FALSE(session.Exhausted());
}

TEST(ObsTest, DeadlineMayBeTightenedOnRearm) {
  obs::Session session;
  obs::EvalBudget budget;
  budget.timeout_millis = 60000;
  session.SetBudget(budget);
  budget.timeout_millis = 30000;  // Tightening is allowed...
  session.SetBudget(budget);      // ...and must not die.
  EXPECT_TRUE(session.armed());
  EXPECT_EQ(session.budget().timeout_millis, 30000);
}

// Budget invariants use always-on ECRPQ_CHECK (PR 1), so these die in
// every build mode.
TEST(BudgetInvariantsDeathTest, ArmingAllUnlimitedBudgetDies) {
  obs::Session session;
  EXPECT_DEATH(session.SetBudget(obs::EvalBudget{}), "CHECK failed");
}

TEST(BudgetInvariantsDeathTest, NegativeTimeoutDies) {
  obs::EvalBudget budget;
  budget.timeout_millis = -1;
  EXPECT_DEATH(budget.CheckInvariants(), "CHECK failed");
}

TEST(BudgetInvariantsDeathTest, LooseningDeadlineOnRearmDies) {
  obs::Session session;
  obs::EvalBudget budget;
  budget.timeout_millis = 1000;
  session.SetBudget(budget);
  obs::EvalBudget later = budget;
  later.timeout_millis = 600000;
  EXPECT_DEATH(session.SetBudget(later), "CHECK failed");
}

}  // namespace
}  // namespace ecrpq
