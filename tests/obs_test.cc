// Unit tests for the ecrpq::obs layer (common/metrics.h, common/trace.h,
// common/obs.h): deterministic counter aggregation under a real thread
// pool, span nesting, trace JSON schema round-trip, budget trips on every
// axis with a readable partial report, and always-on death tests for the
// budget invariants (suite BudgetInvariantsDeathTest, kept out of the
// TSan ctest regex — fork-based death tests and TSan don't mix).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.h"
#include "common/obs.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "eval/generic_eval.h"
#include "workloads/db_gen.h"
#include "workloads/query_gen.h"

namespace ecrpq {
namespace {

using obs::CounterId;
using obs::CounterKind;

TEST(ObsTest, CounterVocabularyIsStable) {
  EXPECT_STREQ(obs::CounterName(CounterId::kProductStatesExpanded),
               "product_states_expanded");
  EXPECT_STREQ(obs::CounterName(CounterId::kFrontierPeak), "frontier_peak");
  EXPECT_STREQ(obs::CounterName(CounterId::kAnswersEmitted),
               "answers_emitted");
  EXPECT_STREQ(obs::CounterName(CounterId::kServiceAdmitted),
               "service_admitted");
  for (int i = 0; i < obs::kNumCounters; ++i) {
    const CounterId id = static_cast<CounterId>(i);
    EXPECT_NE(obs::CounterName(id), nullptr);
    // The peak (max-folded) counters: the BFS frontier high-water mark
    // and the service's concurrent-admissions high-water mark.
    EXPECT_EQ(obs::CounterKindOf(id) == CounterKind::kMax,
              id == CounterId::kFrontierPeak ||
                  id == CounterId::kServiceActivePeak)
        << obs::CounterName(id);
  }
}

// Hammer per-worker shards from a real 4-thread pool; the aggregate must
// equal the arithmetic total (sum counters) / maximum (peak counters) no
// matter how the scheduler interleaved the workers. Run under TSan via the
// dedicated ci.sh stage.
TEST(ObsTest, ShardAggregationDeterministicAcrossThreads) {
  constexpr size_t kWorkers = 8;
  constexpr uint64_t kAddsPerWorker = 10000;
  obs::Metrics metrics;
  std::vector<obs::MetricsShard*> shards(kWorkers);
  for (size_t w = 0; w < kWorkers; ++w) shards[w] = metrics.AcquireShard();

  ThreadPool pool(4);
  pool.ParallelFor(kWorkers, [&](size_t w) {
    for (uint64_t i = 0; i < kAddsPerWorker; ++i) {
      shards[w]->Add(CounterId::kProductStatesExpanded);
      shards[w]->Add(CounterId::kVisitedBytes, 3);
    }
    shards[w]->RecordMax(CounterId::kFrontierPeak, 100 * (w + 1));
  });

  const obs::StatsReport report = metrics.Aggregate();
  EXPECT_EQ(report[CounterId::kProductStatesExpanded],
            kWorkers * kAddsPerWorker);
  EXPECT_EQ(report[CounterId::kVisitedBytes], kWorkers * kAddsPerWorker * 3);
  EXPECT_EQ(report[CounterId::kFrontierPeak], 100 * kWorkers);
  EXPECT_EQ(report[CounterId::kMemoHits], 0u);
  // Aggregate() is a pure fold: calling it again gives the same report.
  EXPECT_EQ(metrics.Aggregate().values, report.values);
  EXPECT_EQ(metrics.Total(CounterId::kVisitedBytes),
            report[CounterId::kVisitedBytes]);
}

TEST(ObsTest, NullSafeHelpersAndSpansAreNoOps) {
  obs::Add(nullptr, CounterId::kProductStatesExpanded);
  obs::RecordMax(nullptr, CounterId::kFrontierPeak, 42);
  { obs::Span span(nullptr, "never recorded", 7); }
  // Reaching here without a crash is the assertion.
  SUCCEED();
}

TEST(ObsTest, StatsReportRendersEveryCounter) {
  obs::StatsReport report;
  report.at(CounterId::kProductStatesExpanded) = 123;
  const std::string text = report.ToString();
  EXPECT_NE(text.find("product_states_expanded"), std::string::npos);
  EXPECT_NE(text.find("123"), std::string::npos);
  const std::string json = report.ToJson();
  for (int i = 0; i < obs::kNumCounters; ++i) {
    EXPECT_NE(json.find(obs::CounterName(static_cast<CounterId>(i))),
              std::string::npos)
        << json;
  }
}

TEST(ObsTest, SpanNestingIsRecordedWithContainment) {
  obs::Trace trace;
  {
    obs::Span outer(&trace, "outer");
    { obs::Span inner_a(&trace, "inner_a", 0); }
    { obs::Span inner_b(&trace, "inner_b", 1); }
  }
  ASSERT_EQ(trace.NumEvents(), 3u);
  const std::vector<obs::Trace::Event> events = trace.Events();
  // Events() sorts by start time: the outer span started first but is
  // recorded last (RAII), and must contain both inner spans.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner_a");
  EXPECT_STREQ(events[2].name, "inner_b");
  const uint64_t outer_end = events[0].start_ns + events[0].dur_ns;
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_ns, events[0].start_ns);
    EXPECT_LE(events[i].start_ns + events[i].dur_ns, outer_end);
  }
  EXPECT_TRUE(events[1].has_arg);
  EXPECT_EQ(events[2].arg, 1u);
  // inner_a ended before inner_b started (sequential blocks).
  EXPECT_LE(events[1].start_ns + events[1].dur_ns, events[2].start_ns);
}

TEST(ObsTest, TraceJsonRoundTripValidates) {
  obs::Trace trace;
  {
    obs::Span outer(&trace, "phase \"quoted\"\\slash");  // Escaping path.
    obs::Span inner(&trace, "inner", 9);
  }
  const std::string json = trace.ToJson();
  EXPECT_TRUE(obs::ValidateTraceJson(json, /*min_events=*/2).ok())
      << obs::ValidateTraceJson(json, 2) << "\n"
      << json;
}

TEST(ObsTest, ValidateTraceJsonRejectsMalformedInput) {
  EXPECT_FALSE(obs::ValidateTraceJson("", 0).ok());
  EXPECT_FALSE(obs::ValidateTraceJson("not json", 0).ok());
  EXPECT_FALSE(obs::ValidateTraceJson("{}", 0).ok());
  EXPECT_FALSE(obs::ValidateTraceJson(R"({"traceEvents": 5})", 0).ok());
  EXPECT_FALSE(
      obs::ValidateTraceJson(R"({"traceEvents": [{"name": 1}]})", 0).ok());
  EXPECT_FALSE(obs::ValidateTraceJson(
                   R"({"traceEvents": [{"name": "x", "ph": "X")"
                   R"(, "ts": 0, "dur": 1, "pid": 0}]})",
                   0)
                   .ok())
      << "event missing tid must be rejected";
  // Well-formed empty trace: OK at min_events 0, rejected at 1.
  const std::string empty = obs::Trace().ToJson();
  EXPECT_TRUE(obs::ValidateTraceJson(empty, 0).ok());
  EXPECT_FALSE(obs::ValidateTraceJson(empty, 1).ok());
}

// A PSPACE-regime workload big enough that every budget axis below trips
// well before the evaluation finishes.
struct HardInstance {
  GraphDb db;
  EcrpqQuery query;
};

HardInstance MakeHardInstance() {
  Rng rng(7);
  // ~17k product states / tens of milliseconds even optimized: large
  // enough that the strided CheckBudget polls fire many times per axis.
  return HardInstance{
      LayeredDag(&rng, 6, 32, 3, 2),
      EqualityStarQuery(Alphabet::OfChars("ab"), 3).ValueOrDie()};
}

void ExpectBudgetTrip(const obs::EvalBudget& budget, const char* want_reason,
                      int threads) {
  const HardInstance inst = MakeHardInstance();
  obs::Session session;
  session.SetBudget(budget);
  EvalOptions options;
  options.num_threads = threads;
  options.obs = &session;
  Result<EvalResult> result = EvaluateGeneric(inst.db, inst.query, options);
  ASSERT_FALSE(result.ok()) << "budget did not trip (threads " << threads
                            << ")";
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status();
  EXPECT_TRUE(session.Exhausted());
  ASSERT_NE(session.exhausted_reason(), nullptr);
  EXPECT_STREQ(session.exhausted_reason(), want_reason);
  EXPECT_EQ(session.ExhaustedStatus().code(),
            StatusCode::kResourceExhausted);
  // The partial report is readable and reflects real work.
  const obs::StatsReport report = session.Report();
  EXPECT_GT(report[CounterId::kProductStatesExpanded], 0u)
      << report.ToString();
}

TEST(ObsTest, StateBudgetTripsSequentialWithPartialReport) {
  obs::EvalBudget budget;
  budget.max_product_states = 256;
  ExpectBudgetTrip(budget, "max_product_states", /*threads=*/1);
}

TEST(ObsTest, StateBudgetTripsParallelWithPartialReport) {
  obs::EvalBudget budget;
  budget.max_product_states = 256;
  ExpectBudgetTrip(budget, "max_product_states", /*threads=*/4);
}

TEST(ObsTest, MemoryBudgetTripsWithPartialReport) {
  obs::EvalBudget budget;
  budget.max_memory_bytes = 1024;
  ExpectBudgetTrip(budget, "max_memory_bytes", /*threads=*/1);
}

TEST(ObsTest, DeadlineBudgetTripsWithPartialReport) {
  obs::EvalBudget budget;
  budget.timeout_millis = 1;  // Far below this instance's runtime.
  ExpectBudgetTrip(budget, "deadline", /*threads=*/1);
}

TEST(ObsTest, UntrippedBudgetLeavesResultIntact) {
  const HardInstance inst = MakeHardInstance();
  Result<EvalResult> plain = EvaluateGeneric(inst.db, inst.query);
  ASSERT_TRUE(plain.ok()) << plain.status();

  obs::Session session;
  obs::EvalBudget budget;
  budget.max_product_states = 1ull << 40;  // Effectively unreachable.
  session.SetBudget(budget);
  EvalOptions options;
  options.obs = &session;
  Result<EvalResult> budgeted = EvaluateGeneric(inst.db, inst.query, options);
  ASSERT_TRUE(budgeted.ok()) << budgeted.status();
  EXPECT_EQ(plain->satisfiable, budgeted->satisfiable);
  EXPECT_EQ(plain->answers, budgeted->answers);
  EXPECT_FALSE(session.Exhausted());
  EXPECT_EQ(session.exhausted_reason(), nullptr);
  EXPECT_TRUE(session.ExhaustedStatus().ok());
}

TEST(ObsTest, CheckBudgetIsNoOpWhenUnarmed) {
  obs::Session session;
  EXPECT_FALSE(session.armed());
  EXPECT_FALSE(session.CheckBudget());
  EXPECT_FALSE(session.Exhausted());
}

TEST(ObsTest, DeadlineMayBeTightenedOnRearm) {
  obs::Session session;
  obs::EvalBudget budget;
  budget.timeout_millis = 60000;
  session.SetBudget(budget);
  budget.timeout_millis = 30000;  // Tightening is allowed...
  session.SetBudget(budget);      // ...and must not die.
  EXPECT_TRUE(session.armed());
  EXPECT_EQ(session.budget().timeout_millis, 30000);
}

// Budget invariants use always-on ECRPQ_CHECK (PR 1), so these die in
// every build mode.
TEST(BudgetInvariantsDeathTest, ArmingAllUnlimitedBudgetDies) {
  obs::Session session;
  EXPECT_DEATH(session.SetBudget(obs::EvalBudget{}), "CHECK failed");
}

TEST(BudgetInvariantsDeathTest, NegativeTimeoutDies) {
  obs::EvalBudget budget;
  budget.timeout_millis = -1;
  EXPECT_DEATH(budget.CheckInvariants(), "CHECK failed");
}

TEST(BudgetInvariantsDeathTest, LooseningDeadlineOnRearmDies) {
  obs::Session session;
  obs::EvalBudget budget;
  budget.timeout_millis = 1000;
  session.SetBudget(budget);
  obs::EvalBudget later = budget;
  later.timeout_millis = 600000;
  EXPECT_DEATH(session.SetBudget(later), "CHECK failed");
}

// ---------------------------------------------------------------------------
// Histograms (PR 5).

using obs::HistogramId;

TEST(ObsHistogramTest, VocabularyIsStable) {
  EXPECT_STREQ(obs::HistogramName(HistogramId::kPhaseBfsNs), "phase_bfs_ns");
  EXPECT_STREQ(obs::HistogramName(HistogramId::kFrontierSize),
               "frontier_size");
  EXPECT_STREQ(obs::HistogramName(HistogramId::kBagWidth), "bag_width");
  for (int i = 0; i < obs::kNumHistograms; ++i) {
    const HistogramId id = static_cast<HistogramId>(i);
    const std::string name = obs::HistogramName(id);
    EXPECT_FALSE(name.empty());
    // The kind is recoverable from the name: time histograms end in _ns.
    const bool name_is_time =
        name.size() >= 3 && name.compare(name.size() - 3, 3, "_ns") == 0;
    EXPECT_EQ(obs::HistogramKindOf(id) == obs::HistogramKind::kTimeNs,
              name_is_time)
        << name;
  }
}

// Log2 bucketing edge cases: 0, 1, the powers of two and their neighbors,
// and the top of the uint64 range.
TEST(ObsHistogramTest, BucketBoundaries) {
  EXPECT_EQ(obs::HistogramBucketOf(0), 0);
  EXPECT_EQ(obs::HistogramBucketOf(1), 1);
  EXPECT_EQ(obs::HistogramBucketOf(2), 2);
  EXPECT_EQ(obs::HistogramBucketOf(3), 2);
  EXPECT_EQ(obs::HistogramBucketOf(4), 3);
  for (int k = 1; k < 64; ++k) {
    const uint64_t low = uint64_t{1} << (k - 1);
    const uint64_t high = (uint64_t{1} << k) - 1;
    EXPECT_EQ(obs::HistogramBucketOf(low), k);
    EXPECT_EQ(obs::HistogramBucketOf(high), k);
    EXPECT_EQ(obs::HistogramBucketUpperBound(k), high);
  }
  EXPECT_EQ(obs::HistogramBucketOf(~uint64_t{0}), 64);
  EXPECT_EQ(obs::HistogramBucketUpperBound(0), 0u);
  EXPECT_EQ(obs::HistogramBucketUpperBound(64), ~uint64_t{0});
  // Every bucket index is in range.
  EXPECT_LT(obs::HistogramBucketOf(~uint64_t{0}),
            obs::kNumHistogramBuckets);
}

TEST(ObsHistogramTest, RecordAndSummarize) {
  obs::Metrics metrics;
  obs::MetricsShard* shard = metrics.AcquireShard();
  // 0 and 1 land in distinct buckets; the max value is exact.
  shard->Record(HistogramId::kFrontierSize, 0);
  shard->Record(HistogramId::kFrontierSize, 1);
  for (int i = 0; i < 98; ++i) shard->Record(HistogramId::kFrontierSize, 5);
  shard->Record(HistogramId::kFrontierSize, ~uint64_t{0});

  const obs::StatsReport report = metrics.Aggregate();
  const obs::HistogramData& h = report.hist(HistogramId::kFrontierSize);
  EXPECT_EQ(h.Count(), 101u);
  EXPECT_EQ(h.max, ~uint64_t{0});
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[3], 98u);  // 5 -> [4,7].
  EXPECT_EQ(h.buckets[64], 1u);
  // p50/p90 fall in the 98-sample bucket; its upper bound (7) stands in.
  EXPECT_EQ(h.Percentile(0.50), 7u);
  EXPECT_EQ(h.Percentile(0.90), 7u);
  // p100 == exact max; the top-bucket representative is clamped to it.
  EXPECT_EQ(h.Percentile(1.0), ~uint64_t{0});
  // Empty histograms summarize to zero.
  EXPECT_TRUE(report.hist(HistogramId::kBagWidth).Empty());
  EXPECT_EQ(report.hist(HistogramId::kBagWidth).Percentile(0.5), 0u);
}

// The fold is a sum of bucket counts / max of maxima, so any partition of
// the same samples across shards — and any concurrent recording order —
// aggregates identically (associativity + commutativity).
TEST(ObsHistogramTest, FoldIsPartitionAndOrderInvariant) {
  // Reference: everything in one shard, sequentially.
  obs::Metrics reference;
  obs::MetricsShard* ref_shard = reference.AcquireShard();
  for (uint64_t v = 0; v < 4000; ++v) {
    ref_shard->Record(HistogramId::kReachSetSize, v % 97);
  }
  const obs::StatsReport want = reference.Aggregate();

  // Same multiset partitioned over 8 shards, recorded from a 4-thread pool.
  obs::Metrics metrics;
  std::vector<obs::MetricsShard*> shards(8);
  for (size_t w = 0; w < shards.size(); ++w) {
    shards[w] = metrics.AcquireShard();
  }
  ThreadPool pool(4);
  pool.ParallelFor(shards.size(), [&](size_t w) {
    for (uint64_t v = w; v < 4000; v += shards.size()) {
      shards[w]->Record(HistogramId::kReachSetSize, v % 97);
    }
  });
  const obs::StatsReport got = metrics.Aggregate();

  const obs::HistogramData& a = want.hist(HistogramId::kReachSetSize);
  const obs::HistogramData& b = got.hist(HistogramId::kReachSetSize);
  EXPECT_EQ(a.buckets, b.buckets);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.Percentile(0.5), b.Percentile(0.5));
}

TEST(ObsHistogramTest, StatsReportToStringIncludesSummaries) {
  obs::Metrics metrics;
  obs::MetricsShard* shard = metrics.AcquireShard();
  shard->Record(HistogramId::kBagWidth, 3);
  const std::string text = metrics.Aggregate().ToString();
  EXPECT_NE(text.find("bag_width"), std::string::npos);
  EXPECT_NE(text.find("p50"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
  // Histograms nothing recorded into stay silent.
  EXPECT_EQ(text.find("phase_bfs_ns"), std::string::npos);
}

// ToJson -> parse round trip: every counter and every non-empty histogram
// summary survives, with the sparse bucket encoding intact.
TEST(ObsHistogramTest, StatsReportJsonRoundTrips) {
  obs::Metrics metrics;
  obs::MetricsShard* shard = metrics.AcquireShard();
  shard->Add(CounterId::kReachQueries, 17);
  shard->Record(HistogramId::kFrontierSize, 0);
  shard->Record(HistogramId::kFrontierSize, 6);
  shard->Record(HistogramId::kFrontierSize, 6);
  const obs::StatsReport report = metrics.Aggregate();

  Result<json::Value> doc = json::Parse(report.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status();
  const json::Value* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  uint64_t reach_queries = 0;
  EXPECT_TRUE(counters->GetUint64("reach_queries", &reach_queries));
  EXPECT_EQ(reach_queries, 17u);

  const json::Value* hists = doc->Find("histograms");
  ASSERT_NE(hists, nullptr);
  const json::Value* frontier = hists->Find("frontier_size");
  ASSERT_NE(frontier, nullptr);
  uint64_t count = 0, sum = 0, max = 0, p50 = 0;
  EXPECT_TRUE(frontier->GetUint64("count", &count));
  EXPECT_TRUE(frontier->GetUint64("sum", &sum));
  EXPECT_TRUE(frontier->GetUint64("max", &max));
  EXPECT_TRUE(frontier->GetUint64("p50", &p50));
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(sum, 12u);
  EXPECT_EQ(max, 6u);
  EXPECT_EQ(p50, 6u);  // Clamped to the exact max inside bucket [4,7].
  const json::Value* buckets = frontier->Find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->is_array());
  // Sparse pairs: [0, 1] and [3, 2].
  ASSERT_EQ(buckets->AsArray().size(), 2u);
  EXPECT_EQ(buckets->AsArray()[0].AsArray()[0].AsUint64(), 0u);
  EXPECT_EQ(buckets->AsArray()[0].AsArray()[1].AsUint64(), 1u);
  EXPECT_EQ(buckets->AsArray()[1].AsArray()[0].AsUint64(), 3u);
  EXPECT_EQ(buckets->AsArray()[1].AsArray()[1].AsUint64(), 2u);
  // Empty histograms are omitted entirely.
  EXPECT_EQ(hists->Find("bag_width"), nullptr);
}

// An instrumented end-to-end evaluation populates the phase and size
// histograms the engines on that code path own.
TEST(ObsHistogramTest, EvaluationPopulatesHistograms) {
  Rng rng(5);
  const GraphDb db = LayeredDag(&rng, 3, 3, 2, 2);
  Result<EcrpqQuery> query = ChainEqLenQuery(Alphabet::OfChars("ab"), 2);
  ASSERT_TRUE(query.ok()) << query.status();

  obs::Session session;
  EvalOptions options;
  options.obs = &session;
  Result<EvalResult> result = EvaluateGeneric(db, *query, options);
  ASSERT_TRUE(result.ok()) << result.status();

  const obs::StatsReport report = session.Report();
  EXPECT_FALSE(report.hist(HistogramId::kFrontierSize).Empty());
  EXPECT_FALSE(report.hist(HistogramId::kPhaseBfsNs).Empty());
  EXPECT_FALSE(report.hist(HistogramId::kPhaseNfaBuildNs).Empty());
  // Every BFS pop saw a non-empty queue, so frontier sizes are >= 1.
  EXPECT_EQ(report.hist(HistogramId::kFrontierSize).buckets[0], 0u);
}

// ---------------------------------------------------------------------------
// Phase profiles (PR 5).

TEST(PhaseProfileTest, SelfTimesTelescopeOnSingleThreadTrace) {
  obs::Trace trace;
  // outer [0, 1000) with children [100, 400) and [500, 900); the middle
  // child has its own nested [150, 250).
  trace.Record("child_a", 0, 100, 300);
  trace.Record("nested", 0, 150, 100);
  trace.Record("child_b", 0, 500, 400);
  trace.Record("outer", 0, 0, 1000);

  const obs::PhaseProfile profile = obs::BuildPhaseProfile(trace);
  EXPECT_EQ(profile.span_ns, 1000u);
  ASSERT_EQ(profile.per_thread.size(), 1u);

  uint64_t outer_self = 0, child_a_self = 0;
  for (const obs::PhaseStats& p : profile.folded) {
    if (p.name == "outer") {
      EXPECT_EQ(p.count, 1u);
      EXPECT_EQ(p.total_ns, 1000u);
      outer_self = p.self_ns;
    }
    if (p.name == "child_a") {
      EXPECT_EQ(p.total_ns, 300u);
      child_a_self = p.self_ns;
    }
  }
  EXPECT_EQ(outer_self, 300u);    // 1000 - 300 - 400.
  EXPECT_EQ(child_a_self, 200u);  // 300 - 100.
  // The telescoping invariant: self times sum to the root span's duration.
  EXPECT_EQ(profile.TotalSelfNs(), 1000u);

  const std::string text = profile.ToString();
  EXPECT_NE(text.find("outer"), std::string::npos);
  EXPECT_NE(text.find("self-time coverage"), std::string::npos);
}

TEST(PhaseProfileTest, PerThreadSectionsAreIndependent) {
  obs::Trace trace;
  trace.Record("work", 0, 0, 100);
  trace.Record("work", 1, 0, 100);  // Concurrent, different thread: no nest.
  const obs::PhaseProfile profile = obs::BuildPhaseProfile(trace);
  ASSERT_EQ(profile.per_thread.size(), 2u);
  ASSERT_EQ(profile.folded.size(), 1u);
  EXPECT_EQ(profile.folded[0].count, 2u);
  EXPECT_EQ(profile.folded[0].total_ns, 200u);
  EXPECT_EQ(profile.folded[0].self_ns, 200u);  // Cross-thread: both self.
  EXPECT_EQ(profile.span_ns, 100u);
}

TEST(PhaseProfileTest, SessionProfileCoversTracedEvaluation) {
  Rng rng(7);
  const GraphDb db = LayeredDag(&rng, 3, 3, 2, 2);
  Result<EcrpqQuery> query = ChainEqLenQuery(Alphabet::OfChars("ab"), 2);
  ASSERT_TRUE(query.ok()) << query.status();

  obs::Session session;
  session.EnableTrace();
  EvalOptions options;
  options.obs = &session;
  options.num_threads = 1;  // Single thread: spans nest, self telescopes.
  Result<EvalResult> result = EvaluateGeneric(db, *query, options);
  ASSERT_TRUE(result.ok()) << result.status();

  const obs::PhaseProfile profile = session.PhaseProfile();
  ASSERT_FALSE(profile.folded.empty());
  ASSERT_GT(profile.span_ns, 0u);
  // Single-threaded nesting: self times telescope to (at most) the traced
  // wall span; on this engine the root span covers everything, so coverage
  // is exact up to span bookkeeping.
  EXPECT_LE(profile.TotalSelfNs(), profile.span_ns);
  EXPECT_GE(profile.TotalSelfNs(), profile.span_ns * 95 / 100);
}

}  // namespace
}  // namespace ecrpq
