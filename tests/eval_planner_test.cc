// The classifier must reproduce the characterization table of
// Theorems 3.1 / 3.2 on the canonical query families.
#include <gtest/gtest.h>

#include "eval/planner.h"
#include "graphdb/generators.h"
#include "query/builder.h"
#include "synchro/builders.h"
#include "workloads/query_gen.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

TEST(ClassifierTest, ChainEqLenIsTractable) {
  Result<EcrpqQuery> q = ChainEqLenQuery(kAb, 8);
  ASSERT_TRUE(q.ok());
  const QueryClassification c = ClassifyQuery(*q);
  EXPECT_EQ(c.measures.cc_vertex, 2);
  EXPECT_EQ(c.measures.cc_hedge, 1);
  EXPECT_LE(c.measures.treewidth, 2);
  EXPECT_EQ(c.eval_regime, EvalRegime::kPolynomialTime);
  EXPECT_EQ(c.param_regime, ParamRegime::kFpt);
  EXPECT_EQ(c.engine, EngineChoice::kCqReduction);
}

TEST(ClassifierTest, CliqueCrpqIsNpRegime) {
  Result<EcrpqQuery> q = CliqueCrpqQuery(kAb, 6, "a*");
  ASSERT_TRUE(q.ok());
  const QueryClassification c = ClassifyQuery(*q);
  EXPECT_EQ(c.measures.cc_vertex, 1);
  EXPECT_EQ(c.measures.cc_hedge, 1);
  EXPECT_EQ(c.measures.treewidth, 5);  // K6.
  EXPECT_EQ(c.eval_regime, EvalRegime::kNp);
  EXPECT_EQ(c.param_regime, ParamRegime::kW1);
  EXPECT_TRUE(c.is_crpq);
  EXPECT_EQ(c.engine, EngineChoice::kCrpqPipeline);
}

TEST(ClassifierTest, EqLenStarIsPspaceRegime) {
  Result<EcrpqQuery> q = EqLenStarQuery(kAb, 6);
  ASSERT_TRUE(q.ok());
  const QueryClassification c = ClassifyQuery(*q);
  EXPECT_EQ(c.measures.cc_vertex, 6);
  EXPECT_EQ(c.measures.cc_hedge, 1);
  EXPECT_EQ(c.eval_regime, EvalRegime::kPspace);
  EXPECT_EQ(c.param_regime, ParamRegime::kXnl);
  EXPECT_EQ(c.engine, EngineChoice::kGeneric);
}

TEST(ClassifierTest, ManySmallAtomsOnOneComponentIsPspaceByCcHedge) {
  // cc_hedge grows while cc_vertex stays at 2: p0 related to p1 by many
  // different binary atoms.
  EcrpqBuilder builder(kAb);
  const NodeVarId x = builder.NodeVar("x");
  const NodeVarId y = builder.NodeVar("y");
  const PathVarId p0 = builder.PathVar("p0");
  const PathVarId p1 = builder.PathVar("p1");
  builder.Reach(x, p0, y);
  builder.Reach(x, p1, y);
  for (int i = 0; i < 6; ++i) {
    Result<SyncRelation> rel = EqualLengthRelation(kAb, 2);
    ASSERT_TRUE(rel.ok());
    builder.Relate(
        std::make_shared<const SyncRelation>(std::move(rel).ValueOrDie()),
        {p0, p1}, "eqlen");
  }
  Result<EcrpqQuery> q = builder.Build();
  ASSERT_TRUE(q.ok());
  const QueryClassification c = ClassifyQuery(*q);
  EXPECT_EQ(c.measures.cc_vertex, 2);
  EXPECT_EQ(c.measures.cc_hedge, 6);
  EXPECT_EQ(c.eval_regime, EvalRegime::kPspace);
  // Parameterized regime only depends on cc_vertex and tw: still FPT.
  EXPECT_EQ(c.param_regime, ParamRegime::kFpt);
}

TEST(ClassifierTest, ThresholdsShiftRegimes) {
  Result<EcrpqQuery> q = EqLenStarQuery(kAb, 3);
  ASSERT_TRUE(q.ok());
  PlannerThresholds generous;
  generous.max_cc_vertex = 4;
  generous.max_cc_hedge = 4;
  generous.max_treewidth = 4;
  EXPECT_EQ(ClassifyQuery(*q, generous).eval_regime,
            EvalRegime::kPolynomialTime);
  PlannerThresholds strict;
  strict.max_cc_vertex = 2;
  EXPECT_EQ(ClassifyQuery(*q, strict).eval_regime, EvalRegime::kPspace);
}

TEST(PlannerTest, RoutesAndEvaluates) {
  GraphDb db = CycleGraph(4, "ab");
  Result<EcrpqQuery> chain = ChainEqLenQuery(db.alphabet(), 3);
  ASSERT_TRUE(chain.ok());
  QueryClassification c;
  Result<EvalResult> r = EvaluatePlanned(db, *chain, {}, {}, &c);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(c.engine, EngineChoice::kCqReduction);
  EXPECT_TRUE(r->satisfiable);  // Cycles admit equal-length consecutive hops.
}

TEST(PlannerTest, ClassificationToStringMentionsRegimes) {
  Result<EcrpqQuery> q = EqLenStarQuery(kAb, 5);
  ASSERT_TRUE(q.ok());
  const QueryClassification c = ClassifyQuery(*q);
  const std::string s = c.ToString();
  EXPECT_NE(s.find("PSPACE"), std::string::npos);
  EXPECT_NE(s.find("XNL"), std::string::npos);
  EXPECT_NE(s.find("cc_vertex=5"), std::string::npos);
}

TEST(RegimeNamesTest, AllEnumeratorsNamed) {
  EXPECT_STRNE(EvalRegimeName(EvalRegime::kPolynomialTime), "?");
  EXPECT_STRNE(EvalRegimeName(EvalRegime::kNp), "?");
  EXPECT_STRNE(EvalRegimeName(EvalRegime::kPspace), "?");
  EXPECT_STRNE(ParamRegimeName(ParamRegime::kFpt), "?");
  EXPECT_STRNE(ParamRegimeName(ParamRegime::kW1), "?");
  EXPECT_STRNE(ParamRegimeName(ParamRegime::kXnl), "?");
  EXPECT_STRNE(EngineChoiceName(EngineChoice::kGeneric), "?");
}

}  // namespace
}  // namespace ecrpq
