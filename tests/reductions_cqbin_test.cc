// Lemma 5.3 (p-eval-CQ_bin(C_collapse) ≤fpt p-eval-ECRPQ): D̂ ⊨ q_G must
// coincide with the relational CQ's satisfiability.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "cq/eval_backtrack.h"
#include "eval/generic_eval.h"
#include "query/abstraction.h"
#include "reductions/cqbin_to_ecrpq.h"
#include "structure/derived.h"

namespace ecrpq {
namespace {

// A shape: two node vertices joined by two edges in one component (via a
// shared hyperedge), plus an independent edge.
TwoLevelGraph TwoEdgeComponentShape() {
  TwoLevelGraph shape;
  shape.num_vertices = 3;
  shape.first_edges = {{0, 1}, {0, 1}, {1, 2}};
  shape.hyperedges = {{0, 1}, {2}};
  return shape;
}

RelationalDb MakeDb(uint32_t domain,
                    const std::vector<std::pair<std::string,
                                                std::vector<std::pair<
                                                    uint32_t, uint32_t>>>>&
                        relations) {
  RelationalDb db(domain);
  for (const auto& [name, tuples] : relations) {
    Relation* rel = *db.AddRelation(name, 2);
    for (const auto& [a, b] : tuples) {
      rel->Add(std::vector<uint32_t>{a, b});
    }
  }
  db.FinalizeAll();
  return db;
}

TEST(CqBinReductionTest, SatisfiableInstance) {
  // Domain {0, 1, 2}; R = {(0,1)}, S = {(1,2)}, T = {(1,1)}.
  const RelationalDb rdb = MakeDb(
      3, {{"R", {{0, 1}}}, {"S", {{1, 2}}}, {"T", {{1, 1}}}});
  const TwoLevelGraph shape = TwoEdgeComponentShape();
  // Edge 0: R(x0, y) ∧ S(y, x1); edge 1: T(x0→y? ...).
  // Use pairs: e0 = (R, S), e1 = (T, T), e2 = (S, T): satisfiable iff some
  // consistent pivot exists.
  Result<CqBinReduction> reduction = CqBinToEcrpq(
      shape, rdb, {{"R", "S"}, {"T", "T"}, {"S", "T"}});
  ASSERT_TRUE(reduction.ok()) << reduction.status();

  Result<CqEvalResult> cq = CqEvaluateBacktracking(rdb, reduction->cq);
  ASSERT_TRUE(cq.ok()) << cq.status();
  Result<EvalResult> ecrpq = EvaluateGeneric(reduction->db, reduction->query);
  ASSERT_TRUE(ecrpq.ok()) << ecrpq.status();
  EXPECT_EQ(ecrpq->satisfiable, cq->satisfiable);
}

TEST(CqBinReductionTest, AbstractionMatchesShape) {
  const RelationalDb rdb = MakeDb(2, {{"R", {{0, 1}}}});
  const TwoLevelGraph shape = TwoEdgeComponentShape();
  Result<CqBinReduction> reduction =
      CqBinToEcrpq(shape, rdb, {{"R", "R"}, {"R", "R"}, {"R", "R"}});
  ASSERT_TRUE(reduction.ok()) << reduction.status();
  const TwoLevelGraph abstraction = QueryAbstraction(
      reduction->query, /*implicit_universal_singletons=*/false);
  EXPECT_EQ(abstraction.num_vertices, shape.num_vertices);
  EXPECT_EQ(abstraction.NumEdges(), shape.NumEdges());
  // One relation atom per G^rel *component* (2), not per hyperedge.
  EXPECT_EQ(abstraction.NumHyperedges(),
            static_cast<int>(RelComponents(shape).size()));
}

TEST(CqBinReductionTest, RejectsBadInput) {
  const RelationalDb rdb = MakeDb(2, {{"R", {{0, 1}}}});
  const TwoLevelGraph shape = TwoEdgeComponentShape();
  // Wrong number of edge relations.
  EXPECT_FALSE(CqBinToEcrpq(shape, rdb, {{"R", "R"}}).ok());
  // Unknown relation.
  EXPECT_FALSE(
      CqBinToEcrpq(shape, rdb, {{"R", "R"}, {"X", "R"}, {"R", "R"}}).ok());
  // Reserved bit names.
  RelationalDb bit_db(2);
  Relation* bit_rel = *bit_db.AddRelation("0", 2);
  bit_rel->Add(std::vector<uint32_t>{0, 1});
  bit_db.FinalizeAll();
  TwoLevelGraph one_edge;
  one_edge.num_vertices = 2;
  one_edge.first_edges = {{0, 1}};
  EXPECT_FALSE(CqBinToEcrpq(one_edge, bit_db, {{"0", "0"}}).ok());
}

class CqBinRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CqBinRandomTest, EcrpqVerdictMatchesCqVerdict) {
  Rng rng(GetParam());
  const uint32_t domain = 2 + static_cast<uint32_t>(rng.Below(4));
  std::vector<std::pair<std::string,
                        std::vector<std::pair<uint32_t, uint32_t>>>>
      spec(2);
  spec[0].first = "R";
  spec[1].first = "S";
  for (auto& [name, tuples] : spec) {
    const int n = 1 + static_cast<int>(rng.Below(domain));
    for (int i = 0; i < n; ++i) {
      tuples.emplace_back(static_cast<uint32_t>(rng.Below(domain)),
                          static_cast<uint32_t>(rng.Below(domain)));
    }
  }
  const RelationalDb rdb = MakeDb(domain, spec);

  // Random small shape: 2-3 vertices, 2-3 edges, random small hyperedges.
  TwoLevelGraph shape;
  shape.num_vertices = 2 + static_cast<int>(rng.Below(2));
  const int num_edges = 2 + static_cast<int>(rng.Below(2));
  for (int e = 0; e < num_edges; ++e) {
    shape.first_edges.emplace_back(
        static_cast<int>(rng.Below(shape.num_vertices)),
        static_cast<int>(rng.Below(shape.num_vertices)));
  }
  if (rng.Chance(0.7)) {
    // Couple the first two edges.
    shape.hyperedges.push_back({0, 1});
  } else {
    shape.hyperedges.push_back({0});
  }
  std::vector<std::pair<std::string, std::string>> edge_rels;
  for (int e = 0; e < num_edges; ++e) {
    edge_rels.emplace_back(rng.Chance(0.5) ? "R" : "S",
                           rng.Chance(0.5) ? "R" : "S");
  }

  Result<CqBinReduction> reduction = CqBinToEcrpq(shape, rdb, edge_rels);
  ASSERT_TRUE(reduction.ok()) << reduction.status();
  Result<CqEvalResult> cq = CqEvaluateBacktracking(rdb, reduction->cq);
  ASSERT_TRUE(cq.ok()) << cq.status();
  Result<EvalResult> ecrpq = EvaluateGeneric(reduction->db, reduction->query);
  ASSERT_TRUE(ecrpq.ok()) << ecrpq.status();
  ASSERT_EQ(ecrpq->satisfiable, cq->satisfiable)
      << "seed " << GetParam() << "\nquery: " << reduction->query.ToString()
      << "\ncq: " << reduction->cq.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CqBinRandomTest,
                         ::testing::Range<uint64_t>(0, 30));

}  // namespace
}  // namespace ecrpq
