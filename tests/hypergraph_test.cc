// GYO acyclicity and join trees.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/reduce_to_cq.h"
#include "graphdb/generators.h"
#include "query/parser.h"
#include "structure/hypergraph.h"
#include "structure/treewidth.h"
#include "workloads/query_gen.h"

namespace ecrpq {
namespace {

Hypergraph Make(int n, std::vector<std::vector<int>> edges) {
  Hypergraph h;
  h.num_vertices = n;
  h.edges = std::move(edges);
  h.Normalize();
  return h;
}

TEST(HypergraphTest, PathOfTriplesIsAcyclic) {
  // {0,1,2}, {2,3,4}, {4,5,6}: a classic acyclic chain.
  const Hypergraph h = Make(7, {{0, 1, 2}, {2, 3, 4}, {4, 5, 6}});
  EXPECT_TRUE(IsAlphaAcyclic(h));
  auto tree = BuildJoinTree(h);
  ASSERT_TRUE(tree.has_value());
  EXPECT_TRUE(ValidateJoinTree(h, *tree));
}

TEST(HypergraphTest, TriangleOfPairsIsCyclic) {
  const Hypergraph h = Make(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_FALSE(IsAlphaAcyclic(h));
  EXPECT_FALSE(BuildJoinTree(h).has_value());
}

TEST(HypergraphTest, TriangleWithCoveringEdgeIsAcyclic) {
  // α-acyclicity is not hereditary: adding the big edge {0,1,2} makes the
  // triangle acyclic.
  const Hypergraph h = Make(3, {{0, 1}, {1, 2}, {2, 0}, {0, 1, 2}});
  EXPECT_TRUE(IsAlphaAcyclic(h));
  auto tree = BuildJoinTree(h);
  ASSERT_TRUE(tree.has_value());
  EXPECT_TRUE(ValidateJoinTree(h, *tree));
}

TEST(HypergraphTest, DegenerateCases) {
  EXPECT_TRUE(IsAlphaAcyclic(Make(0, {})));
  EXPECT_TRUE(IsAlphaAcyclic(Make(3, {{0, 1, 2}})));
  EXPECT_TRUE(IsAlphaAcyclic(Make(4, {{0, 1}, {2, 3}})));  // Disconnected.
  const Hypergraph dup = Make(2, {{0, 1}, {0, 1}});
  EXPECT_TRUE(IsAlphaAcyclic(dup));
}

TEST(HypergraphTest, CqHypergraphFromAtoms) {
  CqQuery q;
  q.num_vars = 4;
  q.atoms = {{"R", {0, 1, 2}}, {"S", {2, 3}}, {"T", {3, 3}}};
  const Hypergraph h = CqHypergraph(q);
  EXPECT_EQ(h.edges.size(), 3u);
  EXPECT_EQ(h.edges[2], (std::vector<int>{3}));  // Deduped repeated var.
  EXPECT_TRUE(IsAlphaAcyclic(h));
}

TEST(HypergraphTest, Lemma43OutputIsAcyclicDespiteTreewidth) {
  // A chain ECRPQ's Lemma 4.3 reduction has 4-ary atoms whose Gaifman
  // cliques give treewidth 3, but the atom hypergraph is an acyclic chain —
  // the sharper structure the paper's [9, 17] remark points to.
  const Alphabet alphabet = Alphabet::OfChars("ab");
  Result<EcrpqQuery> q = ChainEqLenQuery(alphabet, 4);
  ASSERT_TRUE(q.ok());
  const GraphDb db = CycleGraph(4, "ab");
  Result<CqReduction> reduction = ReduceToCq(db, *q);
  ASSERT_TRUE(reduction.ok()) << reduction.status();
  const Hypergraph h = CqHypergraph(reduction->query);
  EXPECT_TRUE(IsAlphaAcyclic(h));
  // Gaifman treewidth of the same CQ equals the 4-ary clique width.
  Result<TreewidthResult> tw =
      TreewidthExact(reduction->query.GaifmanGraph());
  ASSERT_TRUE(tw.ok());
  EXPECT_EQ(tw->width, 3);
}

class HypergraphRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HypergraphRandomTest, JoinTreeValidWheneverAcyclic) {
  Rng rng(GetParam());
  Hypergraph h;
  h.num_vertices = 4 + static_cast<int>(rng.Below(4));
  const int edges = 2 + static_cast<int>(rng.Below(5));
  for (int e = 0; e < edges; ++e) {
    std::vector<int> members;
    for (int v = 0; v < h.num_vertices; ++v) {
      if (rng.Chance(0.35)) members.push_back(v);
    }
    if (members.empty()) {
      members.push_back(static_cast<int>(rng.Below(h.num_vertices)));
    }
    h.edges.push_back(std::move(members));
  }
  h.Normalize();
  auto tree = BuildJoinTree(h);
  EXPECT_EQ(tree.has_value(), IsAlphaAcyclic(h));
  if (tree.has_value()) {
    EXPECT_TRUE(ValidateJoinTree(h, *tree)) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HypergraphRandomTest,
                         ::testing::Range<uint64_t>(0, 30));

}  // namespace
}  // namespace ecrpq
