#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "synchro/builders.h"
#include "synchro/ops.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

SyncRelation Make(Result<SyncRelation> r) {
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).ValueOrDie();
}

Word RandomWordOf(Rng* rng, int max_len, int alphabet_size) {
  Word w(rng->Below(max_len + 1));
  for (Symbol& s : w) s = static_cast<Symbol>(rng->Below(alphabet_size));
  return w;
}

TEST(SynchroOpsTest, IntersectIsConjunction) {
  const SyncRelation eqlen = Make(EqualLengthRelation(kAb, 2));
  const SyncRelation hamming1 = Make(HammingAtMostRelation(kAb, 1));
  const SyncRelation both = Make(Intersect(eqlen, hamming1));
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const std::vector<Word> t = {RandomWordOf(&rng, 5, 2),
                                 RandomWordOf(&rng, 5, 2)};
    ASSERT_EQ(both.Contains(t), eqlen.Contains(t) && hamming1.Contains(t));
  }
}

TEST(SynchroOpsTest, UnionIsDisjunction) {
  const SyncRelation eq = Make(EqualityRelation(kAb, 2));
  const SyncRelation prefix = Make(PrefixRelation(kAb));
  const SyncRelation either = Make(Union(eq, prefix));
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const std::vector<Word> t = {RandomWordOf(&rng, 4, 2),
                                 RandomWordOf(&rng, 4, 2)};
    ASSERT_EQ(either.Contains(t), eq.Contains(t) || prefix.Contains(t));
  }
}

TEST(SynchroOpsTest, ComplementIsRelationNegation) {
  const SyncRelation prefix = Make(PrefixRelation(kAb));
  const SyncRelation not_prefix = Make(Complement(prefix));
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const std::vector<Word> t = {RandomWordOf(&rng, 4, 2),
                                 RandomWordOf(&rng, 4, 2)};
    ASSERT_EQ(not_prefix.Contains(t), !prefix.Contains(t));
  }
}

TEST(SynchroOpsTest, DoubleComplementIsIdentity) {
  const SyncRelation eqlen = Make(EqualLengthRelation(kAb, 2));
  const SyncRelation back = Make(Complement(Make(Complement(eqlen))));
  Result<bool> equiv = EquivalentRelations(eqlen, back);
  ASSERT_TRUE(equiv.ok()) << equiv.status();
  EXPECT_TRUE(*equiv);
}

TEST(SynchroOpsTest, ProjectDropsTapes) {
  // Project the 3-ary equality onto tapes {0, 2}: binary equality.
  const SyncRelation eq3 = Make(EqualityRelation(kAb, 3));
  const SyncRelation proj = Make(Project(eq3, {0, 2}));
  EXPECT_EQ(proj.arity(), 2);
  const SyncRelation eq2 = Make(EqualityRelation(kAb, 2));
  Result<bool> equiv = EquivalentRelations(proj, eq2);
  ASSERT_TRUE(equiv.ok()) << equiv.status();
  EXPECT_TRUE(*equiv);
}

TEST(SynchroOpsTest, ProjectHandlesMidWordBlankColumns) {
  // Prefix relation projected onto the *first* tape: the second tape may be
  // longer, creating all-blank columns after projection. The result must be
  // the universal unary relation A*.
  const SyncRelation prefix = Make(PrefixRelation(kAb));
  const SyncRelation proj = Make(Project(prefix, {0}));
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const std::vector<Word> t = {RandomWordOf(&rng, 5, 2)};
    EXPECT_TRUE(proj.Contains(t));
  }
}

TEST(SynchroOpsTest, ProjectSwapsTapes) {
  const SyncRelation prefix = Make(PrefixRelation(kAb));
  const SyncRelation swapped = Make(Project(prefix, {1, 0}));
  Rng rng(5);
  for (int i = 0; i < 150; ++i) {
    const Word u = RandomWordOf(&rng, 4, 2);
    const Word v = RandomWordOf(&rng, 4, 2);
    ASSERT_EQ(swapped.Contains(std::vector<Word>{u, v}),
              prefix.Contains(std::vector<Word>{v, u}));
  }
}

TEST(SynchroOpsTest, ProjectValidatesArguments) {
  const SyncRelation eq = Make(EqualityRelation(kAb, 2));
  EXPECT_FALSE(Project(eq, {}).ok());
  EXPECT_FALSE(Project(eq, {0, 0}).ok());
  EXPECT_FALSE(Project(eq, {2}).ok());
}

TEST(SynchroOpsTest, ReindexEmbedsRelation) {
  // Binary equality reindexed into tapes {2, 0} of a 3-tape relation:
  // w2 == w0, w1 free.
  const SyncRelation eq = Make(EqualityRelation(kAb, 2));
  const SyncRelation wide = Make(Reindex(eq, {2, 0}, 3));
  EXPECT_EQ(wide.arity(), 3);
  Rng rng(6);
  for (int i = 0; i < 150; ++i) {
    const Word w0 = RandomWordOf(&rng, 3, 2);
    const Word w1 = RandomWordOf(&rng, 3, 2);
    const Word w2 = rng.Chance(0.5) ? w0 : RandomWordOf(&rng, 3, 2);
    ASSERT_EQ(wide.Contains(std::vector<Word>{w0, w1, w2}), w2 == w0);
  }
}

TEST(SynchroOpsTest, ReindexValidatesMap) {
  const SyncRelation eq = Make(EqualityRelation(kAb, 2));
  EXPECT_FALSE(Reindex(eq, {0}, 3).ok());        // Wrong size.
  EXPECT_FALSE(Reindex(eq, {0, 0}, 3).ok());     // Not injective.
  EXPECT_FALSE(Reindex(eq, {0, 3}, 3).ok());     // Out of range.
}

TEST(SynchroOpsTest, JoinComponentsLemma41) {
  // Component: eqlen(t0, t1) ∧ eq(t1, t2). Joint relation over 3 tapes.
  const SyncRelation eqlen = Make(EqualLengthRelation(kAb, 2));
  const SyncRelation eq = Make(EqualityRelation(kAb, 2));
  const SyncRelation joint = Make(JoinComponents(
      kAb, {TapeMapping{&eqlen, {0, 1}}, TapeMapping{&eq, {1, 2}}}, 3));
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const Word w0 = RandomWordOf(&rng, 4, 2);
    Word w1 = rng.Chance(0.5) ? Word(w0.size(), 0) : RandomWordOf(&rng, 4, 2);
    const Word w2 = rng.Chance(0.5) ? w1 : RandomWordOf(&rng, 4, 2);
    const bool expected = (w0.size() == w1.size()) && (w1 == w2);
    ASSERT_EQ(joint.Contains(std::vector<Word>{w0, w1, w2}), expected);
  }
}

TEST(SynchroOpsTest, JoinOfNothingIsUniversal) {
  const SyncRelation joint = Make(JoinComponents(kAb, {}, 2));
  EXPECT_TRUE(joint.Contains(std::vector<Word>{{0}, {1, 1}}));
}

TEST(SynchroOpsTest, ComposePrefixWithPrefixIsPrefix) {
  const SyncRelation prefix = Make(PrefixRelation(kAb));
  const SyncRelation composed = Make(Compose(prefix, prefix));
  Result<bool> equiv = EquivalentRelations(composed, prefix);
  ASSERT_TRUE(equiv.ok()) << equiv.status();
  EXPECT_TRUE(*equiv);  // Prefix order is transitive and reflexive.
}

TEST(SynchroOpsTest, ComposeEqualityIsIdentity) {
  const SyncRelation eq = Make(EqualityRelation(kAb, 2));
  const SyncRelation composed = Make(Compose(eq, eq));
  Result<bool> equiv = EquivalentRelations(composed, eq);
  ASSERT_TRUE(equiv.ok()) << equiv.status();
  EXPECT_TRUE(*equiv);
}

TEST(SynchroOpsTest, ComposeHammingAddsBudgets) {
  // hamming<=1 ∘ hamming<=1 ⊆ hamming<=2, and the composition reaches
  // distance-2 pairs.
  const SyncRelation h1 = Make(HammingAtMostRelation(kAb, 1));
  const SyncRelation h2 = Make(HammingAtMostRelation(kAb, 2));
  const SyncRelation composed = Make(Compose(h1, h1));
  Rng rng(17);
  for (int i = 0; i < 150; ++i) {
    const Word u = RandomWordOf(&rng, 4, 2);
    Word v = u;
    for (size_t j = 0; j < v.size(); ++j) {
      if (rng.Chance(0.4)) v[j] = static_cast<Symbol>(1 - v[j]);
    }
    const bool in_h2 = h2.Contains(std::vector<Word>{u, v});
    ASSERT_EQ(composed.Contains(std::vector<Word>{u, v}), in_h2)
        << "iteration " << i;
  }
}

TEST(SynchroOpsTest, InclusionChain) {
  const SyncRelation eq = Make(EqualityRelation(kAb, 2));
  const SyncRelation prefix = Make(PrefixRelation(kAb));
  const SyncRelation hamming0 = Make(HammingAtMostRelation(kAb, 0));
  const SyncRelation hamming2 = Make(HammingAtMostRelation(kAb, 2));
  // eq ⊆ prefix, eq ≡ hamming0 ⊆ hamming2, prefix ⊄ eq.
  EXPECT_TRUE(*RelationIncluded(eq, prefix));
  EXPECT_TRUE(*RelationIncluded(eq, hamming0));
  EXPECT_TRUE(*RelationIncluded(hamming0, eq));
  EXPECT_TRUE(*RelationIncluded(hamming0, hamming2));
  EXPECT_FALSE(*RelationIncluded(prefix, eq));
  EXPECT_FALSE(*RelationIncluded(hamming2, hamming0));
}

TEST(SynchroOpsTest, EnumerateTuplesShortestFirst) {
  const SyncRelation prefix = Make(PrefixRelation(kAb));
  Result<std::vector<std::vector<Word>>> tuples =
      EnumerateTuples(prefix, 7);
  ASSERT_TRUE(tuples.ok()) << tuples.status();
  ASSERT_EQ(tuples->size(), 7u);
  // First tuple: (ε, ε); next: all one-column pairs.
  EXPECT_TRUE((*tuples)[0][0].empty());
  EXPECT_TRUE((*tuples)[0][1].empty());
  // One-column tuples come next: (ε,a), (ε,b), (a,a), (b,b) — then
  // two-column ones. Lengths are non-decreasing.
  for (size_t i = 1; i <= 4; ++i) {
    EXPECT_EQ((*tuples)[i][1].size(), 1u);
  }
  for (size_t i = 1; i < 7; ++i) {
    EXPECT_GE((*tuples)[i][1].size(), (*tuples)[i - 1][1].size());
    // Every enumerated tuple is actually in the relation.
    EXPECT_TRUE(prefix.Contains((*tuples)[i]));
  }
}

TEST(SynchroOpsTest, EnumerateTuplesOfEmptyRelationIsEmpty) {
  const SyncRelation eq = Make(EqualityRelation(kAb, 2));
  const SyncRelation complement_eq = Make(Complement(eq));
  const SyncRelation never = Make(Intersect(eq, complement_eq));
  Result<std::vector<std::vector<Word>>> tuples = EnumerateTuples(never, 5);
  ASSERT_TRUE(tuples.ok());
  EXPECT_TRUE(tuples->empty());
}

TEST(SynchroOpsTest, EnumerateRespectsLimitAndNoDuplicates) {
  const SyncRelation eqlen = Make(EqualLengthRelation(kAb, 2));
  Result<std::vector<std::vector<Word>>> tuples = EnumerateTuples(eqlen, 30);
  ASSERT_TRUE(tuples.ok());
  EXPECT_EQ(tuples->size(), 30u);
  std::set<std::vector<Word>> unique(tuples->begin(), tuples->end());
  EXPECT_EQ(unique.size(), 30u);
}

TEST(SynchroOpsTest, ReduceRelationPreservesSemantics) {
  // A deliberately bloated relation: union of eq with itself twice.
  const SyncRelation eq = Make(EqualityRelation(kAb, 2));
  const SyncRelation bloated = Make(Union(Make(Union(eq, eq)), eq));
  const SyncRelation reduced = Make(ReduceRelation(bloated));
  EXPECT_LT(reduced.nfa().NumStates(), bloated.nfa().NumStates());
  Result<bool> equivalent = EquivalentRelations(reduced, eq);
  ASSERT_TRUE(equivalent.ok()) << equivalent.status();
  EXPECT_TRUE(*equivalent);
}

TEST(SynchroOpsTest, ComposeRequiresBinary) {
  const SyncRelation eq3 = Make(EqualityRelation(kAb, 3));
  const SyncRelation eq2 = Make(EqualityRelation(kAb, 2));
  EXPECT_FALSE(Compose(eq3, eq2).ok());
}

TEST(SynchroOpsTest, ShapeMismatchErrors) {
  const SyncRelation eq2 = Make(EqualityRelation(kAb, 2));
  const SyncRelation eq3 = Make(EqualityRelation(kAb, 3));
  EXPECT_FALSE(Intersect(eq2, eq3).ok());
  const Alphabet abc = Alphabet::OfChars("abc");
  const SyncRelation eq2c = Make(EqualityRelation(abc, 2));
  EXPECT_FALSE(Union(eq2, eq2c).ok());
}

}  // namespace
}  // namespace ecrpq
