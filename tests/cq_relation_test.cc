#include <gtest/gtest.h>

#include "cq/relational_db.h"

namespace ecrpq {
namespace {

TEST(RelationTest, AddFinalizeDedupe) {
  Relation r("R", 2);
  const uint32_t t1[2] = {1, 2};
  const uint32_t t2[2] = {3, 4};
  r.Add(t1);
  r.Add(t2);
  r.Add(t1);  // Duplicate.
  r.Finalize();
  EXPECT_EQ(r.NumTuples(), 2u);
  EXPECT_TRUE(r.Contains(t1));
  EXPECT_TRUE(r.Contains(t2));
  const uint32_t t3[2] = {1, 3};
  EXPECT_FALSE(r.Contains(t3));
}

TEST(RelationTest, TuplesSortedAfterFinalize) {
  Relation r("R", 1);
  for (uint32_t v : {5u, 1u, 3u}) {
    r.Add(std::vector<uint32_t>{v});
  }
  r.Finalize();
  EXPECT_EQ(r.Tuple(0)[0], 1u);
  EXPECT_EQ(r.Tuple(1)[0], 3u);
  EXPECT_EQ(r.Tuple(2)[0], 5u);
}

TEST(RelationTest, MatchesByBoundPattern) {
  Relation r("R", 3);
  r.Add(std::vector<uint32_t>{1, 2, 3});
  r.Add(std::vector<uint32_t>{1, 5, 6});
  r.Add(std::vector<uint32_t>{2, 2, 3});
  r.Finalize();
  // Bind position 0 = 1: two rows.
  EXPECT_EQ(r.Matches(0b001, {1}).size(), 2u);
  // Bind positions 0 and 1.
  EXPECT_EQ(r.Matches(0b011, {1, 2}).size(), 1u);
  EXPECT_EQ(r.Matches(0b011, {9, 9}).size(), 0u);
  // Bind position 2 = 3: rows 0 and 2.
  EXPECT_EQ(r.Matches(0b100, {3}).size(), 2u);
  // Empty mask: all rows share the empty key.
  EXPECT_EQ(r.Matches(0, {}).size(), 3u);
}

TEST(RelationalDbTest, AddFindRequire) {
  RelationalDb db(10);
  Result<Relation*> r = db.AddRelation("edge", 2);
  ASSERT_TRUE(r.ok());
  (*r)->Add(std::vector<uint32_t>{0, 1});
  EXPECT_FALSE(db.AddRelation("edge", 2).ok());  // Duplicate.
  db.FinalizeAll();
  EXPECT_NE(db.Find("edge"), nullptr);
  EXPECT_EQ(db.Find("missing"), nullptr);
  EXPECT_TRUE(db.Require("edge").ok());
  EXPECT_FALSE(db.Require("missing").ok());
  EXPECT_EQ(db.NumRelations(), 1u);
  EXPECT_EQ(db.TotalTuples(), 1u);
  EXPECT_EQ(db.domain_size(), 10u);
}

}  // namespace
}  // namespace ecrpq
