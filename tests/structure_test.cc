#include <gtest/gtest.h>

#include <algorithm>

#include "structure/derived.h"
#include "structure/measures.h"
#include "structure/two_level_graph.h"

namespace ecrpq {
namespace {

// A 2L graph modelled on the paper's running illustration: a component
// {π2, π3, π4} glued by two hyperedges, plus an isolated constrained edge
// π0 and an unconstrained edge π1. cc_vertex = 3, cc_hedge = 2.
TwoLevelGraph PaperStyleGraph() {
  TwoLevelGraph g;
  g.num_vertices = 5;
  g.first_edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}};
  g.hyperedges = {{2, 3}, {3, 4}, {0}};
  return g;
}

TEST(TwoLevelGraphTest, ValidateAcceptsAndRejects) {
  TwoLevelGraph g = PaperStyleGraph();
  EXPECT_TRUE(g.Validate().ok());
  g.hyperedges.push_back({});
  EXPECT_FALSE(g.Validate().ok());
  g.hyperedges.back() = {1, 1};
  EXPECT_FALSE(g.Validate().ok());
  g.hyperedges.back() = {99};
  EXPECT_FALSE(g.Validate().ok());
  g.hyperedges.pop_back();
  g.first_edges.push_back({0, 17});
  EXPECT_FALSE(g.Validate().ok());
}

TEST(DerivedTest, RelComponentsPartitionEdges) {
  const TwoLevelGraph g = PaperStyleGraph();
  const std::vector<RelComponent> comps = RelComponents(g);
  // Components: {0}, {1}, {2, 3, 4}.
  ASSERT_EQ(comps.size(), 3u);
  size_t total_edges = 0;
  for (const RelComponent& c : comps) total_edges += c.edges.size();
  EXPECT_EQ(total_edges, 5u);
  // The big component has edges {2, 3, 4} and hyperedges {0, 1}.
  auto big = std::find_if(comps.begin(), comps.end(), [](const auto& c) {
    return c.edges.size() == 3;
  });
  ASSERT_NE(big, comps.end());
  EXPECT_EQ(big->edges, (std::vector<int>{2, 3, 4}));
  EXPECT_EQ(big->hyperedges.size(), 2u);
}

TEST(MeasuresTest, PaperExampleValues) {
  const TwoLevelGraph g = PaperStyleGraph();
  EXPECT_EQ(CcVertex(g), 3);
  EXPECT_EQ(CcHedge(g), 2);
}

TEST(MeasuresTest, NoHyperedges) {
  TwoLevelGraph g;
  g.num_vertices = 3;
  g.first_edges = {{0, 1}, {1, 2}};
  EXPECT_EQ(CcVertex(g), 1);  // Singleton components.
  EXPECT_EQ(CcHedge(g), 0);
}

TEST(DerivedTest, NodeGraphCliquifiesComponents) {
  const TwoLevelGraph g = PaperStyleGraph();
  const SimpleGraph node = NodeGraph(g);
  EXPECT_EQ(node.NumVertices(), 5);
  // Component {π2=(2,3), π3=(3,4), π4=(4,0)} covers vertices {0, 2, 3, 4}:
  // a 4-clique. Component {π0=(0,1)} adds edge {0, 1}.
  EXPECT_TRUE(node.HasEdge(2, 3));
  EXPECT_TRUE(node.HasEdge(2, 4));
  EXPECT_TRUE(node.HasEdge(2, 0));
  EXPECT_TRUE(node.HasEdge(3, 0));
  EXPECT_TRUE(node.HasEdge(0, 1));
  // π1 = (1, 2) is in no hyperedge: no clique contribution.
  EXPECT_FALSE(node.HasEdge(1, 2));
  EXPECT_EQ(node.NumEdges(), 7u);  // C(4,2) = 6 plus {0, 1}.
}

TEST(DerivedTest, CollapseGraphSplitsEdges) {
  const TwoLevelGraph g = PaperStyleGraph();
  const Multigraph collapse = CollapseGraph(g);
  // 5 node vertices + 3 component vertices; 2 half-edges per edge.
  EXPECT_EQ(collapse.num_vertices, 8);
  EXPECT_EQ(collapse.edges.size(), 10u);
  // Every collapse edge connects a node vertex (< 5) with a component
  // vertex (>= 5).
  for (const auto& [a, b] : collapse.edges) {
    EXPECT_TRUE((a < 5 && b >= 5) || (a >= 5 && b < 5));
  }
}

TEST(DerivedTest, SelfLoopFirstEdge) {
  TwoLevelGraph g;
  g.num_vertices = 1;
  g.first_edges = {{0, 0}, {0, 0}};
  g.hyperedges = {{0, 1}};
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_EQ(CcVertex(g), 2);
  EXPECT_EQ(CcHedge(g), 1);
  const SimpleGraph node = NodeGraph(g);
  EXPECT_EQ(node.NumEdges(), 0u);  // Single vertex: no simple edges.
}

TEST(MeasuresTest, ComputeMeasuresBundlesTreewidth) {
  const TwoLevelGraph g = PaperStyleGraph();
  const TwoLevelMeasures m = ComputeMeasures(g);
  EXPECT_EQ(m.cc_vertex, 3);
  EXPECT_EQ(m.cc_hedge, 2);
  EXPECT_EQ(m.treewidth, 3);  // The 4-clique in G^node.
  EXPECT_TRUE(m.treewidth_exact);
}

}  // namespace
}  // namespace ecrpq
