// Tests for the annotated synchronization wrappers (common/annotations.h):
// Mutex/MutexLock/CondVar behavior, and death tests proving that
// Mutex::AssertHeld is a real runtime check in every build mode — the GCC
// belt to the clang -Wthread-safety suspenders (suite
// AnnotationsDeathTest, kept out of the TSan ctest regex like the other
// death suites: fork-based death tests and TSan don't mix).
#include "common/annotations.h"

#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace ecrpq {
namespace {

TEST(AnnotationsTest, MutexLockProvidesMutualExclusion) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(AnnotationsTest, TryLockReportsContention) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  std::thread other([&] { EXPECT_FALSE(mu.TryLock()); });
  other.join();
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(AnnotationsTest, AssertHeldPassesWhileHolding) {
  Mutex mu;
  {
    MutexLock lock(mu);
    mu.AssertHeld();  // Must not die.
  }
  mu.Lock();
  mu.AssertHeld();
  mu.Unlock();
}

TEST(AnnotationsTest, CondVarWakesExplicitWhileLoop) {
  // The wrapper has no predicate overload on purpose (lambdas are opaque to
  // the capability analysis); this is the canonical wait shape.
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = -1;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    mu.AssertHeld();  // Wait() re-acquires before returning.
    observed = 42;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

TEST(AnnotationsTest, CondVarSurvivesSpuriousShapedNotifies) {
  Mutex mu;
  CondVar cv;
  int stage = 0;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (stage < 2) cv.Wait(mu);
  });
  for (int s = 1; s <= 2; ++s) {
    {
      MutexLock lock(mu);
      stage = s;
    }
    cv.NotifyOne();
  }
  waiter.join();
  EXPECT_EQ(stage, 2);
}

TEST(AnnotationsTest, ExclusiveRoleIsAFreeToken) {
  // Phantom capability: Assert() is a no-op anchor for the analysis, and
  // the role is copyable so owning objects stay movable/copyable.
  ExclusiveRole role;
  role.Assert();
  ExclusiveRole copy = role;
  copy.Assert();
}

TEST(AnnotationsDeathTest, AssertHeldDiesWhenUnheld) {
  Mutex mu;
  EXPECT_DEATH(mu.AssertHeld(), "does not hold the mutex");
}

TEST(AnnotationsDeathTest, AssertHeldDiesAfterUnlock) {
  Mutex mu;
  mu.Lock();
  mu.Unlock();
  EXPECT_DEATH(mu.AssertHeld(), "does not hold the mutex");
}

TEST(AnnotationsDeathTest, AssertHeldDiesOnWrongThread) {
  // Holding the lock on one thread does not satisfy AssertHeld on another:
  // ownership is per-thread, exactly what GUARDED_BY encodes statically.
  Mutex mu;
  mu.Lock();
  EXPECT_DEATH(
      {
        std::thread t([&] { mu.AssertHeld(); });
        t.join();
      },
      "does not hold the mutex");
  mu.Unlock();
}

}  // namespace
}  // namespace ecrpq
