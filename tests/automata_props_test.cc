// Structural-operation properties on random automata: Trim, Normalize,
// RemoveEpsilon and Determinize must all preserve the language; Minimize
// yields a canonical size.
#include <gtest/gtest.h>

#include "automata/ops.h"
#include "automata/random.h"
#include "automata/regex.h"
#include "common/rng.h"

namespace ecrpq {
namespace {

const std::vector<Label> kUniverse = {0, 1};

class AutomataPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AutomataPropertyTest, TrimPreservesLanguage) {
  Rng rng(GetParam());
  RandomNfaOptions options;
  options.num_states = 4 + static_cast<int>(rng.Below(8));
  options.alphabet_size = 2;
  options.accept_prob = 0.25;
  const Nfa nfa = RandomNfa(&rng, options);
  Nfa trimmed = nfa;
  trimmed.Trim();
  EXPECT_LE(trimmed.NumStates(), nfa.NumStates());
  EXPECT_TRUE(Equivalent(nfa, trimmed, kUniverse)) << "seed " << GetParam();
}

TEST_P(AutomataPropertyTest, NormalizePreservesRepresentationSemantics) {
  Rng rng(GetParam() + 50);
  RandomNfaOptions options;
  options.num_states = 5;
  options.alphabet_size = 2;
  const Nfa nfa = RandomNfa(&rng, options);
  Nfa normalized = nfa;
  normalized.Normalize();
  for (int i = 0; i < 100; ++i) {
    const auto word = RandomWord(&rng, static_cast<int>(rng.Below(7)), 2);
    ASSERT_EQ(nfa.Accepts(word), normalized.Accepts(word));
  }
}

TEST_P(AutomataPropertyTest, DeterminizeRoundTrip) {
  Rng rng(GetParam() + 100);
  RandomNfaOptions options;
  options.num_states = 4 + static_cast<int>(rng.Below(4));
  options.alphabet_size = 2;
  const Nfa nfa = RandomNfa(&rng, options);
  const Dfa dfa = Determinize(nfa, kUniverse);
  EXPECT_TRUE(Equivalent(nfa, dfa.ToNfa(), kUniverse))
      << "seed " << GetParam();
}

TEST_P(AutomataPropertyTest, MinimalDfaSizeIsCanonical) {
  // Two equivalent automata minimize to the same number of states.
  Rng rng(GetParam() + 200);
  RandomNfaOptions options;
  options.num_states = 4 + static_cast<int>(rng.Below(4));
  options.alphabet_size = 2;
  const Nfa nfa = RandomNfa(&rng, options);
  const Dfa direct = Determinize(nfa, kUniverse).Minimize();
  // An equivalent variant: complement twice at the NFA level.
  const Nfa doubled = Complement(Complement(nfa, kUniverse), kUniverse);
  const Dfa via_complement = Determinize(doubled, kUniverse).Minimize();
  EXPECT_EQ(direct.NumStates(), via_complement.NumStates())
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutomataPropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace ecrpq
