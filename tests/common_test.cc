#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <set>
#include <vector>

#include "common/bitset.h"
#include "common/hash.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace ecrpq {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::Invalid("bad arity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arity");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad arity");
}

TEST(StatusTest, CopyIsCheap) {
  Status a = Status::NotFound("x");
  Status b = a;  // Shared state.
  EXPECT_EQ(b.message(), "x");
  EXPECT_EQ(b.code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::OutOfRange("too big");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

Result<int> Doubler(Result<int> input) {
  ECRPQ_ASSIGN_OR_RAISE(int v, input);
  return v * 2;
}

TEST(ResultTest, AssignOrRaisePropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_FALSE(Doubler(Status::Invalid("nope")).ok());
  EXPECT_EQ(Doubler(Status::Invalid("nope")).status().message(), "nope");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int diff = 0;
  for (int i = 0; i < 16; ++i) diff += (a.Next() != b.Next());
  EXPECT_GT(diff, 0);
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(17), 17u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All five values show up.
}

TEST(BitsetTest, SetTestReset) {
  DynamicBitset bits(130);
  EXPECT_FALSE(bits.Test(129));
  bits.Set(129);
  EXPECT_TRUE(bits.Test(129));
  bits.Reset(129);
  EXPECT_FALSE(bits.Test(129));
}

TEST(BitsetTest, TestAndSetReportsFirstVisit) {
  DynamicBitset bits(64);
  EXPECT_TRUE(bits.TestAndSet(10));
  EXPECT_FALSE(bits.TestAndSet(10));
  EXPECT_EQ(bits.CountSet(), 1u);
}

TEST(BitsetTest, InitialValueAndClear) {
  DynamicBitset bits(70, true);
  EXPECT_EQ(bits.CountSet(), 70u);
  bits.Clear();
  EXPECT_EQ(bits.CountSet(), 0u);
}

TEST(StringsTest, Split) {
  const auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringsTest, Strip) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringsTest, JoinAndStartsWith) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_TRUE(StartsWith("edge 0 a 1", "edge"));
  EXPECT_FALSE(StartsWith("ed", "edge"));
}

TEST(HashTest, VectorHashDistinguishes) {
  VectorHash<uint32_t> h;
  EXPECT_NE(h({1, 2, 3}), h({3, 2, 1}));
  EXPECT_NE(h({}), h({0}));
  EXPECT_EQ(h({1, 2, 3}), h({1, 2, 3}));
}

// Shift edge cases: bit 0, bit 63 (the full 64-bit shift range), and sizes
// straddling a word boundary. Written against the UBSan-checked build —
// any shift-width or overflow slip here is a sanitizer failure.
TEST(BitsetTest, WordBoundaryAndBit63) {
  for (const size_t n : {size_t{1}, size_t{63}, size_t{64}, size_t{65},
                         size_t{128}, size_t{129}}) {
    DynamicBitset bits(n);
    EXPECT_EQ(bits.CountSet(), 0u) << n;
    bits.Set(0);
    bits.Set(n - 1);
    EXPECT_TRUE(bits.Test(0)) << n;
    EXPECT_TRUE(bits.Test(n - 1)) << n;
    EXPECT_EQ(bits.CountSet(), n == 1 ? 1u : 2u) << n;
    bits.Reset(n - 1);
    EXPECT_FALSE(bits.Test(n - 1)) << n;
  }
}

TEST(BitsetTest, AllOnesConstructionTrimsPastTheEnd) {
  // Initializing to all-ones must not count ghost bits in the last word.
  for (const size_t n : {size_t{1}, size_t{63}, size_t{64}, size_t{65}}) {
    DynamicBitset bits(n, true);
    EXPECT_EQ(bits.CountSet(), n) << n;
    EXPECT_TRUE(bits.Test(n - 1)) << n;
  }
}

TEST(BitsetTest, EmptyBitsetIsWellFormed) {
  DynamicBitset bits(0);
  EXPECT_EQ(bits.size(), 0u);
  EXPECT_EQ(bits.CountSet(), 0u);
  bits.Clear();
}

// ---- Word-parallel sweeps, property-checked against bit-at-a-time
// reference loops on randomized inputs (sizes deliberately straddle word
// boundaries so the last-partial-word masking is exercised). ----

DynamicBitset RandomBitset(Rng& rng, size_t n, uint64_t density_pct) {
  DynamicBitset bits(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Below(100) < density_pct) bits.Set(i);
  }
  return bits;
}

TEST(BitsetTest, BulkOpsMatchScalarReference) {
  Rng rng(20220714);
  for (const size_t n : {size_t{0}, size_t{1}, size_t{63}, size_t{64},
                         size_t{65}, size_t{127}, size_t{320}, size_t{1000}}) {
    for (int round = 0; round < 8; ++round) {
      const DynamicBitset a = RandomBitset(rng, n, 40);
      const DynamicBitset b = RandomBitset(rng, n, 40);

      DynamicBitset or_fast = a;
      or_fast.OrAssign(b);
      DynamicBitset and_fast = a;
      and_fast.AndAssign(b);
      DynamicBitset diff_fast = a;
      diff_fast.DifferenceAssign(b);

      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(or_fast.Test(i), a.Test(i) || b.Test(i)) << n << ":" << i;
        EXPECT_EQ(and_fast.Test(i), a.Test(i) && b.Test(i)) << n << ":" << i;
        EXPECT_EQ(diff_fast.Test(i), a.Test(i) && !b.Test(i))
            << n << ":" << i;
      }
      // The bulk ops must not disturb ghost bits past size(): counts derived
      // from whole words stay exact.
      EXPECT_EQ(or_fast.CountSet() + and_fast.CountSet(),
                a.CountSet() + b.CountSet());
      EXPECT_EQ(diff_fast.CountSet(), a.CountSet() - and_fast.CountSet());
    }
  }
}

TEST(BitsetTest, ForEachSetBitMatchesScalarScan) {
  Rng rng(7151);
  for (const size_t n : {size_t{0}, size_t{1}, size_t{64}, size_t{65},
                         size_t{129}, size_t{500}}) {
    for (const uint64_t density : {uint64_t{0}, uint64_t{3}, uint64_t{50},
                                   uint64_t{100}}) {
      const DynamicBitset bits = RandomBitset(rng, n, density);
      std::vector<size_t> expected;
      for (size_t i = 0; i < n; ++i) {
        if (bits.Test(i)) expected.push_back(i);
      }
      std::vector<size_t> got;
      bits.ForEachSetBit([&](size_t i) { got.push_back(i); });
      EXPECT_EQ(got, expected) << "n=" << n << " density=" << density;
      EXPECT_EQ(got.size(), bits.CountSet());
    }
  }
}

TEST(BitsetTest, ForEachUnsetBitMatchesScalarScanAndStaysInRange) {
  Rng rng(40414243);
  for (const size_t n : {size_t{1}, size_t{63}, size_t{64}, size_t{65},
                         size_t{127}, size_t{130}}) {
    for (const uint64_t density : {uint64_t{0}, uint64_t{50},
                                   uint64_t{100}}) {
      const DynamicBitset bits = RandomBitset(rng, n, density);
      std::vector<size_t> expected;
      for (size_t i = 0; i < n; ++i) {
        if (!bits.Test(i)) expected.push_back(i);
      }
      std::vector<size_t> got;
      bits.ForEachUnsetBit([&](size_t i) {
        ASSERT_LT(i, n);  // Ghost bits past size() must never surface.
        got.push_back(i);
      });
      EXPECT_EQ(got, expected) << "n=" << n << " density=" << density;
    }
  }
}

TEST(BitsetTest, AnySetAndEquality) {
  DynamicBitset a(100), b(100);
  EXPECT_FALSE(a.AnySet());
  EXPECT_TRUE(a == b);
  a.Set(99);
  EXPECT_TRUE(a.AnySet());
  EXPECT_FALSE(a == b);
  b.Set(99);
  EXPECT_TRUE(a == b);
}

// Signed/overflow edge cases: the mixers must accept extreme and negative
// inputs without signed overflow (all arithmetic is on unsigned types) and
// still distinguish values.
TEST(HashTest, MixersHandleExtremeInputs) {
  EXPECT_NE(HashMix64(0), HashMix64(~uint64_t{0}));
  EXPECT_NE(HashMix64(uint64_t{1} << 63), HashMix64(0));
  EXPECT_NE(HashCombine(~size_t{0}, ~uint64_t{0}),
            HashCombine(~size_t{0}, 0));
}

TEST(HashTest, SignedValuesHashConsistently) {
  VectorHash<int64_t> h;
  const std::vector<int64_t> negatives = {-1, std::numeric_limits<int64_t>::min()};
  EXPECT_EQ(h(negatives), h(negatives));
  EXPECT_NE(h(negatives), h({-1, -1}));
  PairHash<int32_t, int32_t> ph;
  EXPECT_NE(ph({-1, 0}), ph({0, -1}));
  EXPECT_EQ(ph({std::numeric_limits<int32_t>::min(), -1}),
            ph({std::numeric_limits<int32_t>::min(), -1}));
}

}  // namespace
}  // namespace ecrpq
