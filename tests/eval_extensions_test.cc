// UECRPQ unions and ECRPQ satisfiability (the paper's closing remarks made
// executable).
#include <gtest/gtest.h>

#include "eval/generic_eval.h"
#include "eval/satisfiability.h"
#include "eval/uecrpq.h"
#include "graphdb/generators.h"
#include "query/parser.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

EcrpqQuery Parse(std::string_view text) {
  Result<EcrpqQuery> q = ParseEcrpq(text, kAb);
  EXPECT_TRUE(q.ok()) << q.status();
  return std::move(q).ValueOrDie();
}

TEST(UecrpqTest, ValidationRejectsMixedArity) {
  UecrpqQuery u;
  u.disjuncts.push_back(Parse("q(x) := x -[/a/]-> y"));
  u.disjuncts.push_back(Parse("q() := x -[/b/]-> y"));
  EXPECT_FALSE(ValidateUnion(u).ok());
  UecrpqQuery empty;
  EXPECT_FALSE(ValidateUnion(empty).ok());
}

TEST(UecrpqTest, UnionOfAnswersIsMerged) {
  const GraphDb db = PathGraph(4, "ab");  // 0 -a-> 1 -b-> 2 -a-> 3.
  UecrpqQuery u;
  u.disjuncts.push_back(Parse("q(x) := x -[/a/]-> y"));   // x ∈ {0, 2}.
  u.disjuncts.push_back(Parse("q(x) := x -[/b/]-> y"));   // x ∈ {1}.
  Result<EvalResult> r = EvaluateUnion(db, u);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->satisfiable);
  ASSERT_EQ(r->answers.size(), 3u);
  EXPECT_EQ(r->answers[0], (std::vector<VertexId>{0}));
  EXPECT_EQ(r->answers[1], (std::vector<VertexId>{1}));
  EXPECT_EQ(r->answers[2], (std::vector<VertexId>{2}));
}

TEST(UecrpqTest, BooleanShortCircuits) {
  const GraphDb db = PathGraph(3, "aa");
  UecrpqQuery u;
  u.disjuncts.push_back(Parse("q() := x -[/a/]-> y"));      // Satisfiable.
  u.disjuncts.push_back(Parse("q() := x -[/bbbb/]-> y"));   // Not.
  Result<EvalResult> r = EvaluateUnion(db, u);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->satisfiable);
  // Unsatisfiable union.
  UecrpqQuery bad;
  bad.disjuncts.push_back(Parse("q() := x -[/b/]-> y"));
  bad.disjuncts.push_back(Parse("q() := x -[/ab/]-> y"));
  Result<EvalResult> rb = EvaluateUnion(db, bad);
  ASSERT_TRUE(rb.ok());
  EXPECT_FALSE(rb->satisfiable);
}

TEST(UecrpqTest, ClassifyUnionTakesWorstRegime) {
  UecrpqQuery u;
  u.disjuncts.push_back(Parse("q() := x -[/a*/]-> y"));  // Tractable CRPQ.
  u.disjuncts.push_back(
      Parse("q() := x -[p0]-> y0, x -[p1]-> y1, x -[p2]-> y2,"
            " eqlen(p0, p1, p2)"));  // cc_vertex = 3: PSPACE regime.
  const QueryClassification c = ClassifyUnion(u);
  EXPECT_EQ(c.eval_regime, EvalRegime::kPspace);
  EXPECT_EQ(c.measures.cc_vertex, 3);
  EXPECT_FALSE(c.is_crpq);
}

TEST(SatisfiabilityTest, SatisfiableQueryYieldsWorkingWitness) {
  const EcrpqQuery q = Parse(
      "q() := x -[p1]-> y, x -[p2]-> y, eqlen(p1, p2), lang(/ab/, p1),"
      " lang(/ba|bb/, p2)");
  Result<SatisfiabilityResult> sat = CheckSatisfiable(q);
  ASSERT_TRUE(sat.ok()) << sat.status();
  ASSERT_TRUE(sat->satisfiable);
  ASSERT_TRUE(sat->witness.has_value());
  // The witness database must actually satisfy the query.
  Result<EvalResult> check = EvaluateGeneric(*sat->witness, q);
  ASSERT_TRUE(check.ok()) << check.status();
  EXPECT_TRUE(check->satisfiable);
}

TEST(SatisfiabilityTest, ContradictoryRelationsUnsatisfiable) {
  // p1 must spell "ab" and equal p2 which must spell "ba": impossible.
  const EcrpqQuery q = Parse(
      "q() := x -[p1]-> y, x -[p2]-> y, eq(p1, p2), lang(/ab/, p1),"
      " lang(/ba/, p2)");
  Result<SatisfiabilityResult> sat = CheckSatisfiable(q);
  ASSERT_TRUE(sat.ok()) << sat.status();
  EXPECT_FALSE(sat->satisfiable);
  EXPECT_FALSE(sat->witness.has_value());
}

TEST(SatisfiabilityTest, EmptyWordsGlueEndpoints) {
  // p1 forced to ε: its endpoints coincide; p2 then runs from that vertex.
  const EcrpqQuery q = Parse(
      "q() := x -[p1]-> y, y -[p2]-> z, lang(//, p1), lang(/ab/, p2)");
  Result<SatisfiabilityResult> sat = CheckSatisfiable(q);
  ASSERT_TRUE(sat.ok()) << sat.status();
  ASSERT_TRUE(sat->satisfiable);
  Result<EvalResult> check = EvaluateGeneric(*sat->witness, q);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->satisfiable);
}

TEST(SatisfiabilityTest, UnconstrainedQueryTriviallySatisfiable) {
  const EcrpqQuery q = Parse("q() := x -[p]-> y");
  Result<SatisfiabilityResult> sat = CheckSatisfiable(q);
  ASSERT_TRUE(sat.ok());
  ASSERT_TRUE(sat->satisfiable);
  Result<EvalResult> check = EvaluateGeneric(*sat->witness, q);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->satisfiable);
}

TEST(SatisfiabilityTest, CrossComponentWitness) {
  // Two independent components with different label constraints.
  const EcrpqQuery q = Parse(
      "q() := x -[p1]-> y, u -[p2]-> v, u -[p3]-> v,"
      " lang(/aaa/, p1), eq(p2, p3), lang(/b+/, p2)");
  Result<SatisfiabilityResult> sat = CheckSatisfiable(q);
  ASSERT_TRUE(sat.ok()) << sat.status();
  ASSERT_TRUE(sat->satisfiable);
  Result<EvalResult> check = EvaluateGeneric(*sat->witness, q);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->satisfiable);
}

}  // namespace
}  // namespace ecrpq
