// Query simplification: semantics preserved, regime improved.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/generic_eval.h"
#include "eval/planner.h"
#include "graphdb/generators.h"
#include "query/parser.h"
#include "query/simplify.h"

namespace ecrpq {
namespace {

const Alphabet kAb = Alphabet::OfChars("ab");

EcrpqQuery Parse(std::string_view text) {
  Result<EcrpqQuery> q = ParseEcrpq(text, kAb);
  EXPECT_TRUE(q.ok()) << q.status();
  return std::move(q).ValueOrDie();
}

TEST(SimplifyTest, DropsUniversalBinaryAtom) {
  // The universal atom glues p1 and p2 into one component (ccv = 2,
  // PSPACE-looking); dropping it makes the query a plain CRPQ.
  const EcrpqQuery q = Parse(
      "q() := x -[p1]-> y, y -[p2]-> z, universal(p1, p2),"
      " lang(/a*/, p1), lang(/b*/, p2)");
  const QueryClassification before = ClassifyQuery(q);
  EXPECT_EQ(before.measures.cc_vertex, 2);
  EXPECT_FALSE(before.is_crpq);

  SimplifyStats stats;
  Result<EcrpqQuery> simplified = SimplifyQuery(q, {}, &stats);
  ASSERT_TRUE(simplified.ok()) << simplified.status();
  EXPECT_EQ(stats.dropped_universal_atoms, 1);
  const QueryClassification after = ClassifyQuery(*simplified);
  EXPECT_EQ(after.measures.cc_vertex, 1);
  EXPECT_TRUE(after.is_crpq);
}

TEST(SimplifyTest, MergesUnaryAtomsIntoCrpq) {
  // Two language atoms on one path variable: formally not a CRPQ.
  const EcrpqQuery q = Parse(
      "q() := x -[p]-> y, lang(/a*b/, p), lang(/(a|b)(a|b)/, p)");
  EXPECT_FALSE(q.IsCrpq());
  SimplifyStats stats;
  Result<EcrpqQuery> simplified = SimplifyQuery(q, {}, &stats);
  ASSERT_TRUE(simplified.ok()) << simplified.status();
  EXPECT_EQ(stats.merged_unary_atoms, 1);
  EXPECT_TRUE(simplified->IsCrpq());
  EXPECT_EQ(simplified->rel_atoms().size(), 1u);
  // The merged language is a*b ∩ (a|b)^2 = {ab}.
  EXPECT_TRUE(simplified->relation(0).Contains(
      std::vector<Word>{{0, 1}}));
  EXPECT_FALSE(simplified->relation(0).Contains(
      std::vector<Word>{{1, 1}}));  // bb is not in a*b.
  EXPECT_FALSE(simplified->relation(0).Contains(
      std::vector<Word>{{1}}));
}

TEST(SimplifyTest, ReducesRelationStates) {
  const EcrpqQuery q =
      Parse("q() := x -[p]-> y, lang(/(a|b)*(ab|ba)(a|b)*/, p)");
  SimplifyStats stats;
  Result<EcrpqQuery> simplified = SimplifyQuery(q, {}, &stats);
  ASSERT_TRUE(simplified.ok());
  EXPECT_LT(stats.relation_states_after, stats.relation_states_before);
}

TEST(SimplifyTest, UniversalityCapIsConservative) {
  const EcrpqQuery q = Parse(
      "q() := x -[p1]-> y, x -[p2]-> y, x -[p3]-> y, x -[p4]-> y,"
      " universal(p1, p2, p3, p4)");
  SimplifyOptions options;
  options.max_universality_arity = 3;  // Atom has arity 4: skipped.
  SimplifyStats stats;
  Result<EcrpqQuery> simplified = SimplifyQuery(q, options, &stats);
  ASSERT_TRUE(simplified.ok());
  EXPECT_EQ(stats.dropped_universal_atoms, 0);
  EXPECT_EQ(simplified->rel_atoms().size(), 1u);
  // With a higher cap it is detected.
  options.max_universality_arity = 4;
  simplified = SimplifyQuery(q, options, &stats);
  ASSERT_TRUE(simplified.ok());
  EXPECT_EQ(stats.dropped_universal_atoms, 1);
}

class SimplifyDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplifyDifferentialTest, SemanticsPreserved) {
  Rng rng(GetParam());
  GraphDb db(kAb);
  const int n = 3 + static_cast<int>(rng.Below(3));
  db.AddVertices(n);
  for (int e = 0; e < 2 * n; ++e) {
    db.AddEdge(static_cast<VertexId>(rng.Below(n)),
               static_cast<Symbol>(rng.Below(2)),
               static_cast<VertexId>(rng.Below(n)));
  }
  const EcrpqQuery q = Parse(
      "q(x) := x -[p1]-> y, y -[p2]-> z, universal(p1, p2),"
      " lang(/a(a|b)*/, p1), lang(/(a|b)*/, p1), eqlen(p1, p2)");
  Result<EcrpqQuery> simplified = SimplifyQuery(q);
  ASSERT_TRUE(simplified.ok()) << simplified.status();
  Result<EvalResult> before = EvaluateGeneric(db, q);
  Result<EvalResult> after = EvaluateGeneric(db, *simplified);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->satisfiable, after->satisfiable) << GetParam();
  EXPECT_EQ(before->answers, after->answers) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyDifferentialTest,
                         ::testing::Range<uint64_t>(0, 15));

}  // namespace
}  // namespace ecrpq
