// Lemma 5.1 in action: solving DFA intersection non-emptiness *through* the
// ECRPQ engine, by the paper's polynomial-time reduction, and checking the
// verdict against the direct on-the-fly product solver.
#include <cstdio>

#include "automata/ine.h"
#include "eval/generic_eval.h"
#include "reductions/ine_to_ecrpq.h"
#include "workloads/db_gen.h"

using namespace ecrpq;

int main() {
  Rng rng(2022);
  std::printf("=== INE -> ECRPQ (Lemma 5.1), 6 random instances ===\n\n");
  for (int trial = 0; trial < 6; ++trial) {
    const bool plant = trial % 2 == 0;
    const IneInstance ine = RandomIneInstance(&rng, 3, 5, 2, plant);

    // Direct verdict.
    std::vector<const Nfa*> ptrs;
    for (const Nfa& nfa : ine.languages) ptrs.push_back(&nfa);
    const IneResult direct = IntersectionNonEmpty(ptrs);

    // Reduction + ECRPQ evaluation (case 1: one 3-ary hyperedge).
    Result<IneReduction> reduction = IneToEcrpq(ine, IneWitnessShapeCase1(3));
    reduction.status().Check();
    Result<EvalResult> eval = EvaluateGeneric(reduction->db, reduction->query);
    eval.status().Check();

    std::printf("instance %d (%s): direct=%s  via-ECRPQ=%s  %s\n", trial,
                plant ? "planted " : "random  ",
                direct.non_empty ? "non-empty" : "empty    ",
                eval->satisfiable ? "non-empty" : "empty    ",
                direct.non_empty == eval->satisfiable ? "AGREE" : "MISMATCH");
    std::printf(
        "  reduction: |D| = %d vertices, %zu edges; query: %d path vars; "
        "product states explored: %zu\n",
        reduction->db.NumVertices(), reduction->db.NumEdges(),
        reduction->query.NumPathVars(), eval->stats.product_states);
    if (direct.non_empty) {
      std::printf("  witness length: %zu\n", direct.witness.size());
    }
  }
  std::printf(
      "\nThe query never embeds the input automata (they live in the\n"
      "database), which is what makes the Lemma 5.4 variant an FPT\n"
      "reduction with parameter |q| = f(k).\n");
  return 0;
}
