// Sequence-graph scenario: a pangenome-style graph over {a, c, g, t} whose
// paths spell DNA haplotypes. The ECRPQ asks for pairs of start nodes whose
// spelled sequences (into a common sink) are within small edit distance —
// the "edit-distance at most k" synchronous relation the paper cites as a
// natural ECRPQ use case.
#include <cstdio>
#include <string>

#include "eval/generic_eval.h"
#include "graphdb/graph_db.h"
#include "query/parser.h"

using namespace ecrpq;

int main() {
  Alphabet alphabet = Alphabet::OfChars("acgt");
  GraphDb db(alphabet);
  // Two haplotype branches that diverge and re-join (a "bubble"):
  //   source 0 -a-> 1 -c-> 2 -g-> 3 (reference: "acg")
  //   source 4 -a-> 5 -t-> 6 -g-> 3 (variant:   "atg", 1 substitution)
  //   source 7 -a-> 8 -c-> 9 -g-> 10 -t-> 3 (insertion: "acgt")
  db.AddVertices(11);
  db.AddEdge(0, "a", 1);
  db.AddEdge(1, "c", 2);
  db.AddEdge(2, "g", 3);
  db.AddEdge(4, "a", 5);
  db.AddEdge(5, "t", 6);
  db.AddEdge(6, "g", 3);
  db.AddEdge(7, "a", 8);
  db.AddEdge(8, "c", 9);
  db.AddEdge(9, "g", 10);
  db.AddEdge(10, "t", 3);

  std::printf("=== Sequence graph: %d nodes ===\n", db.NumVertices());
  std::printf("reference path 0..3 spells acg; variants atg and acgt\n\n");

  for (int k = 0; k <= 2; ++k) {
    const std::string text =
        "q(x, xp) := x -[p1]-> sink, xp -[p2]-> sink, edit(" +
        std::to_string(k) + ", p1, p2), lang(/a(a|c|g|t)(a|c|g|t)+/, p1)";
    Result<EcrpqQuery> q = ParseEcrpq(text, alphabet);
    q.status().Check();
    Result<EvalResult> r = EvaluateGeneric(db, *q);
    r.status().Check();
    std::printf("edit distance <= %d: %zu ordered start pairs\n", k,
                r->answers.size());
    for (const auto& answer : r->answers) {
      if (answer[0] >= answer[1]) continue;
      std::printf("  starts %u and %u\n", answer[0], answer[1]);
    }
  }
  std::printf(
      "\nExpected shape: k=0 relates a start only to itself-like paths;\n"
      "k=1 adds the substitution pair (0, 4) and insertion pair (0, 7);\n"
      "k=2 additionally relates the two variants (4, 7).\n");
  return 0;
}
