// Planner demo: the characterization of Theorems 3.1 / 3.2 as an executable
// classifier. For each query family the demo prints the three structural
// measures (cc_vertex, cc_hedge, tw(G^node)), the complexity regime of the
// smallest natural class containing the query, and the engine the planner
// routes it to.
#include <cstdio>

#include "eval/planner.h"
#include "query/parser.h"
#include "workloads/query_gen.h"

using namespace ecrpq;

namespace {

void Show(const char* title, const Result<EcrpqQuery>& query) {
  query.status().Check();
  std::printf("--- %s\n    %s\n", title, query->ToString().c_str());
  const QueryClassification c = ClassifyQuery(*query);
  std::printf("%s\n\n", c.ToString().c_str());
}

}  // namespace

int main() {
  const Alphabet alphabet = Alphabet::OfChars("ab");

  std::printf("==============================================\n");
  std::printf(" ECRPQ complexity classification (PODS 2022)\n");
  std::printf("==============================================\n\n");

  Show("Paper Example 2.1 (two equal-length paths)",
       ExampleTwoOneQuery(alphabet));

  Show("Chain with local eq-len atoms (tractable regime, Thm 3.2(3))",
       ChainEqLenQuery(alphabet, 6));

  Show("CRPQ 4-clique (NP / W[1] regime, Thm 3.2(2))",
       CliqueCrpqQuery(alphabet, 4, "a*b"));

  Show("Equal-length 5-star (PSPACE / XNL regime, Thm 3.2(1))",
       EqLenStarQuery(alphabet, 5));

  Show("Equality 3-star", EqualityStarQuery(alphabet, 3));

  Show("Hand-written mixed query",
       ParseEcrpq("q(x) := x -[p1]-> y, y -[p2]-> z, z -[p3]-> x,"
                  " prefix(p1, p2), lang(/a*b/, p3)",
                  alphabet));

  std::printf(
      "Reading the table (for a class C with these measures unbounded):\n"
      "  cc_vertex unbounded                    -> eval PSPACE, p-eval XNL\n"
      "  cc bounded, treewidth unbounded        -> eval NP,     p-eval W[1]\n"
      "  cc_vertex, cc_hedge, treewidth bounded -> eval PTIME,  p-eval FPT\n");
  return 0;
}
