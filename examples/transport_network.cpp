// Transport network scenario: a metro map whose edges are labelled by line
// (m = magenta, g = green, s = shuttle). ECRPQs with inter-path relations
// answer questions plain CRPQs cannot:
//
//  1. "Which pairs of stations have two *different-line* routes of equal
//     length to a common hub?"   (eq-len, the paper's running relation)
//  2. "From which stations can one reach a hub by a route whose line
//     sequence equals another station's route?" (equality relation)
#include <cstdio>

#include "eval/generic_eval.h"
#include "eval/planner.h"
#include "query/parser.h"

using namespace ecrpq;

int main() {
  Alphabet alphabet = Alphabet::OfChars("mgs");
  GraphDb db(alphabet);
  // Stations: 0=Airport 1=Harbor 2=Center 3=Market 4=Stadium 5=University.
  const char* names[] = {"Airport", "Harbor", "Center",
                         "Market", "Stadium", "University"};
  db.AddVertices(6);
  // Magenta line: Airport -> Market -> Center.
  db.AddEdge(0, "m", 3);
  db.AddEdge(3, "m", 2);
  // Green line: Harbor -> Stadium -> Center.
  db.AddEdge(1, "g", 4);
  db.AddEdge(4, "g", 2);
  // Shuttle: University -> Center, Airport -> Center (direct).
  db.AddEdge(5, "s", 2);
  db.AddEdge(0, "s", 2);
  // Green continues: Center -> University.
  db.AddEdge(2, "g", 5);

  std::printf("=== Metro network: %d stations, %zu connections ===\n\n",
              db.NumVertices(), db.NumEdges());

  // Q1: pairs of stations with equal-length routes to a common station.
  Result<EcrpqQuery> q1 = ParseEcrpq(
      "q(x, xp) := x -[p1]-> hub, xp -[p2]-> hub, eqlen(p1, p2)", alphabet);
  q1.status().Check();
  Result<EvalResult> r1 = EvaluateGeneric(db, *q1);
  r1.status().Check();
  std::printf("Q1 (equal-length routes to a common hub): %zu pairs\n",
              r1->answers.size());
  for (const auto& answer : r1->answers) {
    if (answer[0] >= answer[1]) continue;  // Unordered pairs, no self-pairs.
    std::printf("  %-10s <-> %s\n", names[answer[0]], names[answer[1]]);
  }

  // Q2: same *line sequence* (label equality) — a stronger condition.
  Result<EcrpqQuery> q2 = ParseEcrpq(
      "q(x, xp) := x -[p1]-> hub, xp -[p2]-> hub, eq(p1, p2)", alphabet);
  q2.status().Check();
  Result<EvalResult> r2 = EvaluateGeneric(db, *q2);
  r2.status().Check();
  std::printf("\nQ2 (identical line sequences): %zu pairs\n",
              r2->answers.size());
  for (const auto& answer : r2->answers) {
    if (answer[0] >= answer[1]) continue;
    std::printf("  %-10s <-> %s\n", names[answer[0]], names[answer[1]]);
  }

  // Q3: a CRPQ for comparison — any magenta-then-anything route into a
  // green departure point.
  Result<EcrpqQuery> q3 = ParseEcrpq(
      "q(x) := x -[/mm*/]-> y, y -[/g/]-> z", alphabet);
  q3.status().Check();
  QueryClassification c;
  Result<EvalResult> r3 = EvaluatePlanned(db, *q3, {}, {}, &c);
  r3.status().Check();
  std::printf("\nQ3 (CRPQ: magenta ride into a green connection):\n");
  std::printf("planner: %s\n", c.ToString().c_str());
  for (const auto& answer : r3->answers) {
    std::printf("  start at %s\n", names[answer[0]]);
  }
  return 0;
}
