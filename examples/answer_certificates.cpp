// Answer certificates: every answer the engine reports can be backed by an
// explicit witness — a full variable assignment plus one path per path
// variable — and the certificate is independently checkable.
//
// Scenario: a package-dependency graph whose edges are labelled r (runtime
// dependency) or b (build dependency). We ask for package pairs that reach
// a common dependency through runtime chains of equal length, then print
// and validate the certificate for each answer.
#include <cstdio>

#include "eval/explain.h"
#include "eval/generic_eval.h"
#include "query/parser.h"

using namespace ecrpq;

int main() {
  Alphabet alphabet = Alphabet::OfChars("rb");
  GraphDb db(alphabet);
  const char* names[] = {"app",  "cli",    "libnet", "libio",
                         "zlib", "libfmt", "unused"};
  db.AddVertices(7);
  db.AddEdge(0, "r", 2);  // app -> libnet
  db.AddEdge(0, "b", 5);  // app -(build)-> libfmt
  db.AddEdge(1, "r", 3);  // cli -> libio
  db.AddEdge(2, "r", 4);  // libnet -> zlib
  db.AddEdge(3, "r", 4);  // libio -> zlib
  db.AddEdge(5, "r", 4);  // libfmt -> zlib

  Result<EcrpqQuery> query = ParseEcrpq(
      "q(x, y) := x -[p1]-> dep, y -[p2]-> dep, eqlen(p1, p2),"
      " lang(/rr*/, p1), lang(/rr*/, p2)",
      alphabet);
  query.status().Check();

  Result<EvalResult> result = EvaluateGeneric(db, *query);
  result.status().Check();
  std::printf("%zu answers; certificates:\n\n", result->answers.size());

  for (const auto& answer : result->answers) {
    if (answer[0] >= answer[1]) continue;  // Unordered pairs only.
    Result<std::optional<Explanation>> explanation =
        ExplainAnswer(db, *query, answer);
    explanation.status().Check();
    if (!explanation->has_value()) continue;
    const Status valid = ValidateExplanation(db, *query, **explanation);
    std::printf("(%s, %s) — certificate %s\n", names[answer[0]],
                names[answer[1]], valid.ok() ? "VALID" : "INVALID");
    std::printf("%s\n", (**explanation).ToString(*query, db).c_str());
  }

  // A non-answer has no certificate.
  Result<std::optional<Explanation>> none =
      ExplainAnswer(db, *query, {0, 6});  // `unused` reaches nothing.
  none.status().Check();
  std::printf("certificate for (app, unused): %s\n",
              none->has_value() ? "unexpected!" : "none (not an answer)");
  return 0;
}
