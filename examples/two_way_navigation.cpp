// Two-way navigation (C2RPQ-style) on a citation graph: inverse labels
// let one query walk edges backwards, and inter-path relations still apply.
//
//   "cites" edges: paper -c-> cited paper.
//   Co-citation: two papers citing a common third — y <-c- x -c-> z is the
//   one-path pattern  y -[/<c~>c/]-> z  on the inverse-closed graph.
#include <cstdio>

#include "eval/generic_eval.h"
#include "graphdb/graph_db.h"
#include "query/parser.h"

using namespace ecrpq;

int main() {
  Alphabet alphabet = Alphabet::OfChars("c");
  GraphDb citations(alphabet);
  const char* names[] = {"codd70", "fagin74", "chandra77",
                         "vardi82", "survey24"};
  citations.AddVertices(5);
  citations.AddEdge(1, "c", 0);  // fagin74 cites codd70.
  citations.AddEdge(2, "c", 0);  // chandra77 cites codd70.
  citations.AddEdge(3, "c", 2);  // vardi82 cites chandra77.
  citations.AddEdge(4, "c", 3);  // survey24 cites vardi82.
  citations.AddEdge(4, "c", 2);  // survey24 cites chandra77.

  const GraphDb db = WithInverses(citations);
  std::printf("citation graph: %d papers; inverse-closed alphabet:", 5);
  for (const auto& name : db.alphabet().names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n");

  // Q1: co-citing pairs (both cite a common paper).
  Result<EcrpqQuery> q1 =
      ParseEcrpq("q(y, z) := y -[/c<c~>/]-> z", db.alphabet());
  q1.status().Check();
  Result<EvalResult> r1 = EvaluateGeneric(db, *q1);
  r1.status().Check();
  std::printf("co-citing pairs (cite a common paper):\n");
  for (const auto& answer : r1->answers) {
    if (answer[0] >= answer[1]) continue;
    std::printf("  %s and %s\n", names[answer[0]], names[answer[1]]);
  }

  // Q2: co-citation at *equal depth*: x and y reach a common ancestor
  // through forward citation chains of the same length — an ECRPQ mixing
  // two-way navigation data with the eq-len relation.
  Result<EcrpqQuery> q2 = ParseEcrpq(
      "q(x, y) := x -[p1]-> a, y -[p2]-> a, eqlen(p1, p2),"
      " lang(/cc*/, p1), lang(/cc*/, p2)",
      db.alphabet());
  q2.status().Check();
  Result<EvalResult> r2 = EvaluateGeneric(db, *q2);
  r2.status().Check();
  std::printf("\npairs citing a common ancestor at equal depth:\n");
  for (const auto& answer : r2->answers) {
    if (answer[0] >= answer[1]) continue;
    std::printf("  %s and %s\n", names[answer[0]], names[answer[1]]);
  }
  return 0;
}
