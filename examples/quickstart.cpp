// Quickstart: build a graph database, parse an ECRPQ, evaluate it, and
// extract witness paths.
//
// The query is Example 2.1 from the paper:
//   q(x, x') = ∃y  x -π1-> y  ∧  x' -π2-> y  ∧  eq-len(π1, π2)
#include <cstdio>

#include "eval/generic_eval.h"
#include "eval/merge.h"
#include "graphdb/graph_db.h"
#include "graphdb/tuple_search.h"
#include "query/parser.h"

using namespace ecrpq;

int main() {
  // A small labelled graph:
  //        a         b
  //   0 ------> 2 <------ 1
  //             ^
  //         a   |   a
  //   1 ------> 3 ------> 2   (so 1 also reaches 2 in two steps)
  Alphabet alphabet = Alphabet::OfChars("ab");
  GraphDb db(alphabet);
  db.AddVertices(4);
  db.AddEdge(0, "a", 2);
  db.AddEdge(1, "b", 2);
  db.AddEdge(1, "a", 3);
  db.AddEdge(3, "a", 2);

  // Parse the query. 'eqlen' is the equal-length synchronous relation.
  Result<EcrpqQuery> query = ParseEcrpq(
      "q(x, xp) := x -[pi1]-> y, xp -[pi2]-> y, eqlen(pi1, pi2)", alphabet);
  query.status().Check();
  std::printf("query: %s\n", query->ToString().c_str());

  // Evaluate.
  Result<EvalResult> result = EvaluateGeneric(db, *query);
  result.status().Check();
  std::printf("satisfiable: %s, %zu answers\n",
              result->satisfiable ? "yes" : "no", result->answers.size());
  for (const auto& answer : result->answers) {
    std::printf("  (x = %u, xp = %u)\n", answer[0], answer[1]);
  }

  // Witness paths for the answer (0, 1): run the component search directly.
  const std::vector<ComponentPlan> plans = PlanComponents(*query);
  Result<JoinMachine> machine = JoinMachine::Create(
      query->alphabet(), plans[0].machine_components,
      static_cast<int>(plans[0].paths.size()));
  machine.status().Check();
  Result<TupleSearcher> searcher = TupleSearcher::Create(&db, &*machine);
  searcher.status().Check();
  // Both paths must end at a common y; try y = 2.
  const auto witness = searcher->WitnessPaths({0, 1}, {2, 2});
  if (witness.has_value()) {
    std::printf("witness for (x=0, xp=1) meeting at y=2:\n");
    for (size_t tape = 0; tape < witness->size(); ++tape) {
      std::printf("  pi%zu:", tape + 1);
      for (const PathStep& step : (*witness)[tape]) {
        std::printf(" %u -%s-> %u", step.from,
                    db.alphabet().Name(step.symbol).c_str(), step.to);
      }
      std::printf("\n");
    }
  }
  return 0;
}
