// The paper's §1 hierarchy, computed: Recognizable ⊊ Synchronous ⊊
// Rational, and why ECRPQ = CRPQ+Synchronous is the sweet spot.
//
//  - Recognizable relations collapse CRPQ+R to unions of CRPQs (we expand
//    one and count the disjuncts);
//  - synchronous relations power ECRPQ (decidable, closed under Boolean
//    operations — we complement and intersect live);
//  - rational relations (suffix/factor/subword, as transducers) are
//    strictly beyond: CRPQ+Rational evaluation is undecidable, so the
//    library offers membership only.
#include <cstdio>

#include "automata/regex.h"
#include "query/recognizable.h"
#include "synchro/builders.h"
#include "synchro/ops.h"
#include "synchro/rational.h"

using namespace ecrpq;

int main() {
  const Alphabet alphabet = Alphabet::OfChars("ab");

  std::printf("== 1. Recognizable: unions of products of languages ==\n");
  std::vector<RecognizableRelation::Product> products(2);
  Alphabet scratch = alphabet;
  products[0].languages.push_back(*CompileRegex("a*", &scratch));
  products[0].languages.push_back(*CompileRegex("b*", &scratch));
  products[1].languages.push_back(*CompileRegex("ab", &scratch));
  products[1].languages.push_back(*CompileRegex("ba", &scratch));
  RecognizableRelation rec =
      RecognizableRelation::Create(alphabet, 2, std::move(products))
          .ValueOrDie();
  RecognizableQuery q(alphabet);
  const NodeVarId x = q.NodeVar("x");
  const NodeVarId y = q.NodeVar("y");
  const PathVarId p1 = q.PathVar("p1");
  const PathVarId p2 = q.PathVar("p2");
  q.Reach(x, p1, y);
  q.Reach(x, p2, y);
  q.Relate(std::make_shared<const RecognizableRelation>(rec), {p1, p2});
  const UecrpqQuery expanded = q.ToUcrpq().ValueOrDie();
  std::printf(
      "CRPQ + (a* x b*) ∪ (ab x ba) expands to %zu CRPQ disjuncts:\n",
      expanded.disjuncts.size());
  for (const EcrpqQuery& d : expanded.disjuncts) {
    std::printf("  %s\n", d.ToString().c_str());
  }

  std::printf("\n== 2. Synchronous: Boolean-closed, decidable ==\n");
  const SyncRelation eqlen = EqualLengthRelation(alphabet, 2).ValueOrDie();
  const SyncRelation hamming1 =
      HammingAtMostRelation(alphabet, 1).ValueOrDie();
  const SyncRelation same_len_but_far =
      Intersect(eqlen, Complement(hamming1).ValueOrDie()).ValueOrDie();
  std::printf("eq-len ∩ ¬(hamming<=1): sample tuples:\n");
  for (const auto& tuple : EnumerateTuples(same_len_but_far, 4).ValueOrDie()) {
    std::printf("  %s\n", same_len_but_far.FormatTuple(tuple).c_str());
  }
  std::printf("eq ⊆ eq-len: %s\n",
              *RelationIncluded(EqualityRelation(alphabet, 2).ValueOrDie(),
                                eqlen)
                  ? "yes"
                  : "no");

  std::printf("\n== 3. Rational: beyond synchronous ==\n");
  const Transducer suffix = SuffixTransducer(alphabet);
  const Word bab = {1, 0, 1};
  Word padded = bab;
  for (int shift = 0; shift <= 3; ++shift) {
    std::printf("suffix(bab, %s): %s\n",
                std::string(shift, 'a').append("bab").c_str(),
                suffix.Contains(bab, padded) ? "yes" : "no");
    padded.insert(padded.begin(), 0);
  }
  std::printf(
      "(suffix needs an unbounded shift buffer — no synchronous automaton\n"
      " tracks it, and CRPQ+Rational evaluation is undecidable, which is\n"
      " why ECRPQ stops at synchronous relations.)\n");
  return 0;
}
