# Empty compiler generated dependencies file for bench_e10_crpq_pipeline.
# This may be replaced when dependencies are built.
