file(REMOVE_RECURSE
  "CMakeFiles/bench_e03_np_regime.dir/bench_e03_np_regime.cc.o"
  "CMakeFiles/bench_e03_np_regime.dir/bench_e03_np_regime.cc.o.d"
  "bench_e03_np_regime"
  "bench_e03_np_regime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e03_np_regime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
