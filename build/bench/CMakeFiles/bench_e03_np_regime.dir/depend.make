# Empty dependencies file for bench_e03_np_regime.
# This may be replaced when dependencies are built.
