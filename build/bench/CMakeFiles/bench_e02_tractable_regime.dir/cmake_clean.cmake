file(REMOVE_RECURSE
  "CMakeFiles/bench_e02_tractable_regime.dir/bench_e02_tractable_regime.cc.o"
  "CMakeFiles/bench_e02_tractable_regime.dir/bench_e02_tractable_regime.cc.o.d"
  "bench_e02_tractable_regime"
  "bench_e02_tractable_regime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e02_tractable_regime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
