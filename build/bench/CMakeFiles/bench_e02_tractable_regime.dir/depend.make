# Empty dependencies file for bench_e02_tractable_regime.
# This may be replaced when dependencies are built.
