# Empty dependencies file for bench_e01_pspace_regime.
# This may be replaced when dependencies are built.
