file(REMOVE_RECURSE
  "CMakeFiles/bench_e01_pspace_regime.dir/bench_e01_pspace_regime.cc.o"
  "CMakeFiles/bench_e01_pspace_regime.dir/bench_e01_pspace_regime.cc.o.d"
  "bench_e01_pspace_regime"
  "bench_e01_pspace_regime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e01_pspace_regime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
