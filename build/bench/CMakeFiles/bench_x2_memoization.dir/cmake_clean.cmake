file(REMOVE_RECURSE
  "CMakeFiles/bench_x2_memoization.dir/bench_x2_memoization.cc.o"
  "CMakeFiles/bench_x2_memoization.dir/bench_x2_memoization.cc.o.d"
  "bench_x2_memoization"
  "bench_x2_memoization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x2_memoization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
