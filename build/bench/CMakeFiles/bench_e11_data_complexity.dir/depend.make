# Empty dependencies file for bench_e11_data_complexity.
# This may be replaced when dependencies are built.
