# Empty dependencies file for bench_e12_planner_ablation.
# This may be replaced when dependencies are built.
