file(REMOVE_RECURSE
  "CMakeFiles/bench_e04_fpt_scaling.dir/bench_e04_fpt_scaling.cc.o"
  "CMakeFiles/bench_e04_fpt_scaling.dir/bench_e04_fpt_scaling.cc.o.d"
  "bench_e04_fpt_scaling"
  "bench_e04_fpt_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e04_fpt_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
