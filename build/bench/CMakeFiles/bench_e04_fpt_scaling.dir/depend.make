# Empty dependencies file for bench_e04_fpt_scaling.
# This may be replaced when dependencies are built.
