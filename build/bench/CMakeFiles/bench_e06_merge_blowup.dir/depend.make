# Empty dependencies file for bench_e06_merge_blowup.
# This may be replaced when dependencies are built.
