file(REMOVE_RECURSE
  "CMakeFiles/bench_e05_pie_reduction.dir/bench_e05_pie_reduction.cc.o"
  "CMakeFiles/bench_e05_pie_reduction.dir/bench_e05_pie_reduction.cc.o.d"
  "bench_e05_pie_reduction"
  "bench_e05_pie_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e05_pie_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
