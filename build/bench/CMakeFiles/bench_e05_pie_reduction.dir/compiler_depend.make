# Empty compiler generated dependencies file for bench_e05_pie_reduction.
# This may be replaced when dependencies are built.
