file(REMOVE_RECURSE
  "CMakeFiles/bench_x3_counting.dir/bench_x3_counting.cc.o"
  "CMakeFiles/bench_x3_counting.dir/bench_x3_counting.cc.o.d"
  "bench_x3_counting"
  "bench_x3_counting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x3_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
