# Empty compiler generated dependencies file for bench_x3_counting.
# This may be replaced when dependencies are built.
