# Empty compiler generated dependencies file for bench_e07_cq_reduction.
# This may be replaced when dependencies are built.
