file(REMOVE_RECURSE
  "CMakeFiles/bench_e07_cq_reduction.dir/bench_e07_cq_reduction.cc.o"
  "CMakeFiles/bench_e07_cq_reduction.dir/bench_e07_cq_reduction.cc.o.d"
  "bench_e07_cq_reduction"
  "bench_e07_cq_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e07_cq_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
