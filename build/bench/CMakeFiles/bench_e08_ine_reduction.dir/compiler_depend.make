# Empty compiler generated dependencies file for bench_e08_ine_reduction.
# This may be replaced when dependencies are built.
