# Empty dependencies file for bench_x4_simplify.
# This may be replaced when dependencies are built.
