file(REMOVE_RECURSE
  "CMakeFiles/bench_x4_simplify.dir/bench_x4_simplify.cc.o"
  "CMakeFiles/bench_x4_simplify.dir/bench_x4_simplify.cc.o.d"
  "bench_x4_simplify"
  "bench_x4_simplify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x4_simplify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
