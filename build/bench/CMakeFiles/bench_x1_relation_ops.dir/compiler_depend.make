# Empty compiler generated dependencies file for bench_x1_relation_ops.
# This may be replaced when dependencies are built.
