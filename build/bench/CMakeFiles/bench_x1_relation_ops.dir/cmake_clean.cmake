file(REMOVE_RECURSE
  "CMakeFiles/bench_x1_relation_ops.dir/bench_x1_relation_ops.cc.o"
  "CMakeFiles/bench_x1_relation_ops.dir/bench_x1_relation_ops.cc.o.d"
  "bench_x1_relation_ops"
  "bench_x1_relation_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x1_relation_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
