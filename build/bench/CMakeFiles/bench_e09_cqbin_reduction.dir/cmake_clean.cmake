file(REMOVE_RECURSE
  "CMakeFiles/bench_e09_cqbin_reduction.dir/bench_e09_cqbin_reduction.cc.o"
  "CMakeFiles/bench_e09_cqbin_reduction.dir/bench_e09_cqbin_reduction.cc.o.d"
  "bench_e09_cqbin_reduction"
  "bench_e09_cqbin_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e09_cqbin_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
