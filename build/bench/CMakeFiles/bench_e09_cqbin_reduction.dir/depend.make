# Empty dependencies file for bench_e09_cqbin_reduction.
# This may be replaced when dependencies are built.
