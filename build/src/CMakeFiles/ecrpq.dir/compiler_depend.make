# Empty compiler generated dependencies file for ecrpq.
# This may be replaced when dependencies are built.
