
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automata/alphabet.cc" "src/CMakeFiles/ecrpq.dir/automata/alphabet.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/automata/alphabet.cc.o.d"
  "/root/repo/src/automata/dfa.cc" "src/CMakeFiles/ecrpq.dir/automata/dfa.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/automata/dfa.cc.o.d"
  "/root/repo/src/automata/ine.cc" "src/CMakeFiles/ecrpq.dir/automata/ine.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/automata/ine.cc.o.d"
  "/root/repo/src/automata/io.cc" "src/CMakeFiles/ecrpq.dir/automata/io.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/automata/io.cc.o.d"
  "/root/repo/src/automata/nfa.cc" "src/CMakeFiles/ecrpq.dir/automata/nfa.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/automata/nfa.cc.o.d"
  "/root/repo/src/automata/ops.cc" "src/CMakeFiles/ecrpq.dir/automata/ops.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/automata/ops.cc.o.d"
  "/root/repo/src/automata/random.cc" "src/CMakeFiles/ecrpq.dir/automata/random.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/automata/random.cc.o.d"
  "/root/repo/src/automata/regex.cc" "src/CMakeFiles/ecrpq.dir/automata/regex.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/automata/regex.cc.o.d"
  "/root/repo/src/automata/simulation.cc" "src/CMakeFiles/ecrpq.dir/automata/simulation.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/automata/simulation.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/ecrpq.dir/common/status.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/ecrpq.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/common/strings.cc.o.d"
  "/root/repo/src/cq/count.cc" "src/CMakeFiles/ecrpq.dir/cq/count.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/cq/count.cc.o.d"
  "/root/repo/src/cq/cq.cc" "src/CMakeFiles/ecrpq.dir/cq/cq.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/cq/cq.cc.o.d"
  "/root/repo/src/cq/eval_backtrack.cc" "src/CMakeFiles/ecrpq.dir/cq/eval_backtrack.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/cq/eval_backtrack.cc.o.d"
  "/root/repo/src/cq/eval_treedec.cc" "src/CMakeFiles/ecrpq.dir/cq/eval_treedec.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/cq/eval_treedec.cc.o.d"
  "/root/repo/src/cq/homomorphism.cc" "src/CMakeFiles/ecrpq.dir/cq/homomorphism.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/cq/homomorphism.cc.o.d"
  "/root/repo/src/cq/relation.cc" "src/CMakeFiles/ecrpq.dir/cq/relation.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/cq/relation.cc.o.d"
  "/root/repo/src/cq/relational_db.cc" "src/CMakeFiles/ecrpq.dir/cq/relational_db.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/cq/relational_db.cc.o.d"
  "/root/repo/src/eval/adaptive.cc" "src/CMakeFiles/ecrpq.dir/eval/adaptive.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/eval/adaptive.cc.o.d"
  "/root/repo/src/eval/crpq_eval.cc" "src/CMakeFiles/ecrpq.dir/eval/crpq_eval.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/eval/crpq_eval.cc.o.d"
  "/root/repo/src/eval/explain.cc" "src/CMakeFiles/ecrpq.dir/eval/explain.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/eval/explain.cc.o.d"
  "/root/repo/src/eval/generic_eval.cc" "src/CMakeFiles/ecrpq.dir/eval/generic_eval.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/eval/generic_eval.cc.o.d"
  "/root/repo/src/eval/merge.cc" "src/CMakeFiles/ecrpq.dir/eval/merge.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/eval/merge.cc.o.d"
  "/root/repo/src/eval/naive_eval.cc" "src/CMakeFiles/ecrpq.dir/eval/naive_eval.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/eval/naive_eval.cc.o.d"
  "/root/repo/src/eval/planner.cc" "src/CMakeFiles/ecrpq.dir/eval/planner.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/eval/planner.cc.o.d"
  "/root/repo/src/eval/reduce_to_cq.cc" "src/CMakeFiles/ecrpq.dir/eval/reduce_to_cq.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/eval/reduce_to_cq.cc.o.d"
  "/root/repo/src/eval/satisfiability.cc" "src/CMakeFiles/ecrpq.dir/eval/satisfiability.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/eval/satisfiability.cc.o.d"
  "/root/repo/src/eval/uecrpq.cc" "src/CMakeFiles/ecrpq.dir/eval/uecrpq.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/eval/uecrpq.cc.o.d"
  "/root/repo/src/graphdb/dot.cc" "src/CMakeFiles/ecrpq.dir/graphdb/dot.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/graphdb/dot.cc.o.d"
  "/root/repo/src/graphdb/generators.cc" "src/CMakeFiles/ecrpq.dir/graphdb/generators.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/graphdb/generators.cc.o.d"
  "/root/repo/src/graphdb/graph_db.cc" "src/CMakeFiles/ecrpq.dir/graphdb/graph_db.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/graphdb/graph_db.cc.o.d"
  "/root/repo/src/graphdb/io.cc" "src/CMakeFiles/ecrpq.dir/graphdb/io.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/graphdb/io.cc.o.d"
  "/root/repo/src/graphdb/rpq_reach.cc" "src/CMakeFiles/ecrpq.dir/graphdb/rpq_reach.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/graphdb/rpq_reach.cc.o.d"
  "/root/repo/src/graphdb/tuple_search.cc" "src/CMakeFiles/ecrpq.dir/graphdb/tuple_search.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/graphdb/tuple_search.cc.o.d"
  "/root/repo/src/query/abstraction.cc" "src/CMakeFiles/ecrpq.dir/query/abstraction.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/query/abstraction.cc.o.d"
  "/root/repo/src/query/ast.cc" "src/CMakeFiles/ecrpq.dir/query/ast.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/query/ast.cc.o.d"
  "/root/repo/src/query/builder.cc" "src/CMakeFiles/ecrpq.dir/query/builder.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/query/builder.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/ecrpq.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/query/parser.cc.o.d"
  "/root/repo/src/query/recognizable.cc" "src/CMakeFiles/ecrpq.dir/query/recognizable.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/query/recognizable.cc.o.d"
  "/root/repo/src/query/simplify.cc" "src/CMakeFiles/ecrpq.dir/query/simplify.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/query/simplify.cc.o.d"
  "/root/repo/src/query/validate.cc" "src/CMakeFiles/ecrpq.dir/query/validate.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/query/validate.cc.o.d"
  "/root/repo/src/reductions/cc_tame.cc" "src/CMakeFiles/ecrpq.dir/reductions/cc_tame.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/reductions/cc_tame.cc.o.d"
  "/root/repo/src/reductions/cqbin_to_ecrpq.cc" "src/CMakeFiles/ecrpq.dir/reductions/cqbin_to_ecrpq.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/reductions/cqbin_to_ecrpq.cc.o.d"
  "/root/repo/src/reductions/ine_to_ecrpq.cc" "src/CMakeFiles/ecrpq.dir/reductions/ine_to_ecrpq.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/reductions/ine_to_ecrpq.cc.o.d"
  "/root/repo/src/reductions/pie_to_ecrpq.cc" "src/CMakeFiles/ecrpq.dir/reductions/pie_to_ecrpq.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/reductions/pie_to_ecrpq.cc.o.d"
  "/root/repo/src/structure/derived.cc" "src/CMakeFiles/ecrpq.dir/structure/derived.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/structure/derived.cc.o.d"
  "/root/repo/src/structure/dot.cc" "src/CMakeFiles/ecrpq.dir/structure/dot.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/structure/dot.cc.o.d"
  "/root/repo/src/structure/hypergraph.cc" "src/CMakeFiles/ecrpq.dir/structure/hypergraph.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/structure/hypergraph.cc.o.d"
  "/root/repo/src/structure/measures.cc" "src/CMakeFiles/ecrpq.dir/structure/measures.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/structure/measures.cc.o.d"
  "/root/repo/src/structure/tree_decomposition.cc" "src/CMakeFiles/ecrpq.dir/structure/tree_decomposition.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/structure/tree_decomposition.cc.o.d"
  "/root/repo/src/structure/treewidth.cc" "src/CMakeFiles/ecrpq.dir/structure/treewidth.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/structure/treewidth.cc.o.d"
  "/root/repo/src/structure/two_level_graph.cc" "src/CMakeFiles/ecrpq.dir/structure/two_level_graph.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/structure/two_level_graph.cc.o.d"
  "/root/repo/src/synchro/builders.cc" "src/CMakeFiles/ecrpq.dir/synchro/builders.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/synchro/builders.cc.o.d"
  "/root/repo/src/synchro/convolution.cc" "src/CMakeFiles/ecrpq.dir/synchro/convolution.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/synchro/convolution.cc.o.d"
  "/root/repo/src/synchro/io.cc" "src/CMakeFiles/ecrpq.dir/synchro/io.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/synchro/io.cc.o.d"
  "/root/repo/src/synchro/join.cc" "src/CMakeFiles/ecrpq.dir/synchro/join.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/synchro/join.cc.o.d"
  "/root/repo/src/synchro/ops.cc" "src/CMakeFiles/ecrpq.dir/synchro/ops.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/synchro/ops.cc.o.d"
  "/root/repo/src/synchro/rational.cc" "src/CMakeFiles/ecrpq.dir/synchro/rational.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/synchro/rational.cc.o.d"
  "/root/repo/src/synchro/recognizable.cc" "src/CMakeFiles/ecrpq.dir/synchro/recognizable.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/synchro/recognizable.cc.o.d"
  "/root/repo/src/synchro/sync_relation.cc" "src/CMakeFiles/ecrpq.dir/synchro/sync_relation.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/synchro/sync_relation.cc.o.d"
  "/root/repo/src/synchro/tape_pack.cc" "src/CMakeFiles/ecrpq.dir/synchro/tape_pack.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/synchro/tape_pack.cc.o.d"
  "/root/repo/src/workloads/db_gen.cc" "src/CMakeFiles/ecrpq.dir/workloads/db_gen.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/workloads/db_gen.cc.o.d"
  "/root/repo/src/workloads/query_gen.cc" "src/CMakeFiles/ecrpq.dir/workloads/query_gen.cc.o" "gcc" "src/CMakeFiles/ecrpq.dir/workloads/query_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
