file(REMOVE_RECURSE
  "libecrpq.a"
)
