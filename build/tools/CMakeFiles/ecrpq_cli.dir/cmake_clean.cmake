file(REMOVE_RECURSE
  "CMakeFiles/ecrpq_cli.dir/ecrpq_cli.cc.o"
  "CMakeFiles/ecrpq_cli.dir/ecrpq_cli.cc.o.d"
  "ecrpq_cli"
  "ecrpq_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecrpq_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
