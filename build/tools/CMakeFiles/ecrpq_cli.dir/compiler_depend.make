# Empty compiler generated dependencies file for ecrpq_cli.
# This may be replaced when dependencies are built.
