file(REMOVE_RECURSE
  "CMakeFiles/synchro_join_test.dir/synchro_join_test.cc.o"
  "CMakeFiles/synchro_join_test.dir/synchro_join_test.cc.o.d"
  "synchro_join_test"
  "synchro_join_test.pdb"
  "synchro_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synchro_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
