# Empty compiler generated dependencies file for synchro_join_test.
# This may be replaced when dependencies are built.
