# Empty compiler generated dependencies file for reductions_cqbin_test.
# This may be replaced when dependencies are built.
