file(REMOVE_RECURSE
  "CMakeFiles/reductions_cqbin_test.dir/reductions_cqbin_test.cc.o"
  "CMakeFiles/reductions_cqbin_test.dir/reductions_cqbin_test.cc.o.d"
  "reductions_cqbin_test"
  "reductions_cqbin_test.pdb"
  "reductions_cqbin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reductions_cqbin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
