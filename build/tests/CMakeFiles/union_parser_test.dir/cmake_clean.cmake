file(REMOVE_RECURSE
  "CMakeFiles/union_parser_test.dir/union_parser_test.cc.o"
  "CMakeFiles/union_parser_test.dir/union_parser_test.cc.o.d"
  "union_parser_test"
  "union_parser_test.pdb"
  "union_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/union_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
