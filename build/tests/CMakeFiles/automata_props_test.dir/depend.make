# Empty dependencies file for automata_props_test.
# This may be replaced when dependencies are built.
