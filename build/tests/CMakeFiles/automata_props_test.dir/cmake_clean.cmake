file(REMOVE_RECURSE
  "CMakeFiles/automata_props_test.dir/automata_props_test.cc.o"
  "CMakeFiles/automata_props_test.dir/automata_props_test.cc.o.d"
  "automata_props_test"
  "automata_props_test.pdb"
  "automata_props_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automata_props_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
