file(REMOVE_RECURSE
  "CMakeFiles/rpq_reach_test.dir/rpq_reach_test.cc.o"
  "CMakeFiles/rpq_reach_test.dir/rpq_reach_test.cc.o.d"
  "rpq_reach_test"
  "rpq_reach_test.pdb"
  "rpq_reach_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpq_reach_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
