file(REMOVE_RECURSE
  "CMakeFiles/synchro_relation_test.dir/synchro_relation_test.cc.o"
  "CMakeFiles/synchro_relation_test.dir/synchro_relation_test.cc.o.d"
  "synchro_relation_test"
  "synchro_relation_test.pdb"
  "synchro_relation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synchro_relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
