# Empty dependencies file for synchro_relation_test.
# This may be replaced when dependencies are built.
