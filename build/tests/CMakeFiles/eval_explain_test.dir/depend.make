# Empty dependencies file for eval_explain_test.
# This may be replaced when dependencies are built.
