file(REMOVE_RECURSE
  "CMakeFiles/eval_explain_test.dir/eval_explain_test.cc.o"
  "CMakeFiles/eval_explain_test.dir/eval_explain_test.cc.o.d"
  "eval_explain_test"
  "eval_explain_test.pdb"
  "eval_explain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_explain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
