# Empty compiler generated dependencies file for eval_differential_test.
# This may be replaced when dependencies are built.
