file(REMOVE_RECURSE
  "CMakeFiles/eval_differential_test.dir/eval_differential_test.cc.o"
  "CMakeFiles/eval_differential_test.dir/eval_differential_test.cc.o.d"
  "eval_differential_test"
  "eval_differential_test.pdb"
  "eval_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
