# Empty dependencies file for reductions_pie_test.
# This may be replaced when dependencies are built.
