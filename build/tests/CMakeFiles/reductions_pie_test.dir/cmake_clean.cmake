file(REMOVE_RECURSE
  "CMakeFiles/reductions_pie_test.dir/reductions_pie_test.cc.o"
  "CMakeFiles/reductions_pie_test.dir/reductions_pie_test.cc.o.d"
  "reductions_pie_test"
  "reductions_pie_test.pdb"
  "reductions_pie_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reductions_pie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
