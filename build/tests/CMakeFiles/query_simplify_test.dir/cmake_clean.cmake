file(REMOVE_RECURSE
  "CMakeFiles/query_simplify_test.dir/query_simplify_test.cc.o"
  "CMakeFiles/query_simplify_test.dir/query_simplify_test.cc.o.d"
  "query_simplify_test"
  "query_simplify_test.pdb"
  "query_simplify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_simplify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
