# Empty dependencies file for query_simplify_test.
# This may be replaced when dependencies are built.
