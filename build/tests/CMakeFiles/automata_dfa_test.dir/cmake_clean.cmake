file(REMOVE_RECURSE
  "CMakeFiles/automata_dfa_test.dir/automata_dfa_test.cc.o"
  "CMakeFiles/automata_dfa_test.dir/automata_dfa_test.cc.o.d"
  "automata_dfa_test"
  "automata_dfa_test.pdb"
  "automata_dfa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automata_dfa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
