file(REMOVE_RECURSE
  "CMakeFiles/query_ast_test.dir/query_ast_test.cc.o"
  "CMakeFiles/query_ast_test.dir/query_ast_test.cc.o.d"
  "query_ast_test"
  "query_ast_test.pdb"
  "query_ast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_ast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
