# Empty dependencies file for query_ast_test.
# This may be replaced when dependencies are built.
