file(REMOVE_RECURSE
  "CMakeFiles/cq_homomorphism_test.dir/cq_homomorphism_test.cc.o"
  "CMakeFiles/cq_homomorphism_test.dir/cq_homomorphism_test.cc.o.d"
  "cq_homomorphism_test"
  "cq_homomorphism_test.pdb"
  "cq_homomorphism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_homomorphism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
