# Empty dependencies file for cq_homomorphism_test.
# This may be replaced when dependencies are built.
