file(REMOVE_RECURSE
  "CMakeFiles/automata_simulation_test.dir/automata_simulation_test.cc.o"
  "CMakeFiles/automata_simulation_test.dir/automata_simulation_test.cc.o.d"
  "automata_simulation_test"
  "automata_simulation_test.pdb"
  "automata_simulation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automata_simulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
