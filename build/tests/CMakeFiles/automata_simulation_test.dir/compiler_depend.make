# Empty compiler generated dependencies file for automata_simulation_test.
# This may be replaced when dependencies are built.
