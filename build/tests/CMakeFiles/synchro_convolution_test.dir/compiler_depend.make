# Empty compiler generated dependencies file for synchro_convolution_test.
# This may be replaced when dependencies are built.
