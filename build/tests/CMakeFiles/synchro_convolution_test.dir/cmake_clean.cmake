file(REMOVE_RECURSE
  "CMakeFiles/synchro_convolution_test.dir/synchro_convolution_test.cc.o"
  "CMakeFiles/synchro_convolution_test.dir/synchro_convolution_test.cc.o.d"
  "synchro_convolution_test"
  "synchro_convolution_test.pdb"
  "synchro_convolution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synchro_convolution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
