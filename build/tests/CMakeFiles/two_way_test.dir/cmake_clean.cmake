file(REMOVE_RECURSE
  "CMakeFiles/two_way_test.dir/two_way_test.cc.o"
  "CMakeFiles/two_way_test.dir/two_way_test.cc.o.d"
  "two_way_test"
  "two_way_test.pdb"
  "two_way_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_way_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
