# Empty compiler generated dependencies file for recognizable_test.
# This may be replaced when dependencies are built.
