file(REMOVE_RECURSE
  "CMakeFiles/recognizable_test.dir/recognizable_test.cc.o"
  "CMakeFiles/recognizable_test.dir/recognizable_test.cc.o.d"
  "recognizable_test"
  "recognizable_test.pdb"
  "recognizable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recognizable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
