# Empty dependencies file for cq_relation_test.
# This may be replaced when dependencies are built.
