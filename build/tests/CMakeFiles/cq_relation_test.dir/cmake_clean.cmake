file(REMOVE_RECURSE
  "CMakeFiles/cq_relation_test.dir/cq_relation_test.cc.o"
  "CMakeFiles/cq_relation_test.dir/cq_relation_test.cc.o.d"
  "cq_relation_test"
  "cq_relation_test.pdb"
  "cq_relation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
