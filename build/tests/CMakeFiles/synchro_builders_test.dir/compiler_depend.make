# Empty compiler generated dependencies file for synchro_builders_test.
# This may be replaced when dependencies are built.
