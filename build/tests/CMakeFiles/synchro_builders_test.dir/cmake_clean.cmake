file(REMOVE_RECURSE
  "CMakeFiles/synchro_builders_test.dir/synchro_builders_test.cc.o"
  "CMakeFiles/synchro_builders_test.dir/synchro_builders_test.cc.o.d"
  "synchro_builders_test"
  "synchro_builders_test.pdb"
  "synchro_builders_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synchro_builders_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
