# Empty dependencies file for exhaustive_small_world_test.
# This may be replaced when dependencies are built.
