# Empty dependencies file for cq_count_test.
# This may be replaced when dependencies are built.
