file(REMOVE_RECURSE
  "CMakeFiles/cq_count_test.dir/cq_count_test.cc.o"
  "CMakeFiles/cq_count_test.dir/cq_count_test.cc.o.d"
  "cq_count_test"
  "cq_count_test.pdb"
  "cq_count_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_count_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
