# Empty dependencies file for eval_merge_test.
# This may be replaced when dependencies are built.
