file(REMOVE_RECURSE
  "CMakeFiles/eval_merge_test.dir/eval_merge_test.cc.o"
  "CMakeFiles/eval_merge_test.dir/eval_merge_test.cc.o.d"
  "eval_merge_test"
  "eval_merge_test.pdb"
  "eval_merge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
