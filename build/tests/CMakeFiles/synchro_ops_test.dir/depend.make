# Empty dependencies file for synchro_ops_test.
# This may be replaced when dependencies are built.
