file(REMOVE_RECURSE
  "CMakeFiles/synchro_ops_test.dir/synchro_ops_test.cc.o"
  "CMakeFiles/synchro_ops_test.dir/synchro_ops_test.cc.o.d"
  "synchro_ops_test"
  "synchro_ops_test.pdb"
  "synchro_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synchro_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
