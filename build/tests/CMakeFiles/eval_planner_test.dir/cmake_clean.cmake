file(REMOVE_RECURSE
  "CMakeFiles/eval_planner_test.dir/eval_planner_test.cc.o"
  "CMakeFiles/eval_planner_test.dir/eval_planner_test.cc.o.d"
  "eval_planner_test"
  "eval_planner_test.pdb"
  "eval_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
