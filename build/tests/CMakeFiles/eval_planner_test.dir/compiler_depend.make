# Empty compiler generated dependencies file for eval_planner_test.
# This may be replaced when dependencies are built.
