file(REMOVE_RECURSE
  "CMakeFiles/synchro_io_test.dir/synchro_io_test.cc.o"
  "CMakeFiles/synchro_io_test.dir/synchro_io_test.cc.o.d"
  "synchro_io_test"
  "synchro_io_test.pdb"
  "synchro_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synchro_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
