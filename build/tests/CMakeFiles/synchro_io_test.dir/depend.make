# Empty dependencies file for synchro_io_test.
# This may be replaced when dependencies are built.
