file(REMOVE_RECURSE
  "CMakeFiles/automata_regex_test.dir/automata_regex_test.cc.o"
  "CMakeFiles/automata_regex_test.dir/automata_regex_test.cc.o.d"
  "automata_regex_test"
  "automata_regex_test.pdb"
  "automata_regex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automata_regex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
