file(REMOVE_RECURSE
  "CMakeFiles/reductions_ine_test.dir/reductions_ine_test.cc.o"
  "CMakeFiles/reductions_ine_test.dir/reductions_ine_test.cc.o.d"
  "reductions_ine_test"
  "reductions_ine_test.pdb"
  "reductions_ine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reductions_ine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
