# Empty dependencies file for automata_nfa_test.
# This may be replaced when dependencies are built.
