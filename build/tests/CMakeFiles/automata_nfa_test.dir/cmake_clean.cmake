file(REMOVE_RECURSE
  "CMakeFiles/automata_nfa_test.dir/automata_nfa_test.cc.o"
  "CMakeFiles/automata_nfa_test.dir/automata_nfa_test.cc.o.d"
  "automata_nfa_test"
  "automata_nfa_test.pdb"
  "automata_nfa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automata_nfa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
