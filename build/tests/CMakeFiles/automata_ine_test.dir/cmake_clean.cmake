file(REMOVE_RECURSE
  "CMakeFiles/automata_ine_test.dir/automata_ine_test.cc.o"
  "CMakeFiles/automata_ine_test.dir/automata_ine_test.cc.o.d"
  "automata_ine_test"
  "automata_ine_test.pdb"
  "automata_ine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automata_ine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
