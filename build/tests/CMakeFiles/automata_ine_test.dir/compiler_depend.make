# Empty compiler generated dependencies file for automata_ine_test.
# This may be replaced when dependencies are built.
