file(REMOVE_RECURSE
  "CMakeFiles/eval_engines_test.dir/eval_engines_test.cc.o"
  "CMakeFiles/eval_engines_test.dir/eval_engines_test.cc.o.d"
  "eval_engines_test"
  "eval_engines_test.pdb"
  "eval_engines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_engines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
