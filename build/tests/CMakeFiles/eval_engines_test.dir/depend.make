# Empty dependencies file for eval_engines_test.
# This may be replaced when dependencies are built.
