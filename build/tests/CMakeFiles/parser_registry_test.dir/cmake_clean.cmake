file(REMOVE_RECURSE
  "CMakeFiles/parser_registry_test.dir/parser_registry_test.cc.o"
  "CMakeFiles/parser_registry_test.dir/parser_registry_test.cc.o.d"
  "parser_registry_test"
  "parser_registry_test.pdb"
  "parser_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parser_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
