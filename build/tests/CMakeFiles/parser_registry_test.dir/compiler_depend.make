# Empty compiler generated dependencies file for parser_registry_test.
# This may be replaced when dependencies are built.
