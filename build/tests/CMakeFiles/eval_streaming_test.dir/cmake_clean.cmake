file(REMOVE_RECURSE
  "CMakeFiles/eval_streaming_test.dir/eval_streaming_test.cc.o"
  "CMakeFiles/eval_streaming_test.dir/eval_streaming_test.cc.o.d"
  "eval_streaming_test"
  "eval_streaming_test.pdb"
  "eval_streaming_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_streaming_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
