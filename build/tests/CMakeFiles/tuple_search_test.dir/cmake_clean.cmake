file(REMOVE_RECURSE
  "CMakeFiles/tuple_search_test.dir/tuple_search_test.cc.o"
  "CMakeFiles/tuple_search_test.dir/tuple_search_test.cc.o.d"
  "tuple_search_test"
  "tuple_search_test.pdb"
  "tuple_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuple_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
