file(REMOVE_RECURSE
  "CMakeFiles/cc_tame_test.dir/cc_tame_test.cc.o"
  "CMakeFiles/cc_tame_test.dir/cc_tame_test.cc.o.d"
  "cc_tame_test"
  "cc_tame_test.pdb"
  "cc_tame_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_tame_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
