# Empty dependencies file for cc_tame_test.
# This may be replaced when dependencies are built.
