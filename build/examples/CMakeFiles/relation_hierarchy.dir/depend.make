# Empty dependencies file for relation_hierarchy.
# This may be replaced when dependencies are built.
