file(REMOVE_RECURSE
  "CMakeFiles/relation_hierarchy.dir/relation_hierarchy.cpp.o"
  "CMakeFiles/relation_hierarchy.dir/relation_hierarchy.cpp.o.d"
  "relation_hierarchy"
  "relation_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relation_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
