file(REMOVE_RECURSE
  "CMakeFiles/ine_via_ecrpq.dir/ine_via_ecrpq.cpp.o"
  "CMakeFiles/ine_via_ecrpq.dir/ine_via_ecrpq.cpp.o.d"
  "ine_via_ecrpq"
  "ine_via_ecrpq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ine_via_ecrpq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
