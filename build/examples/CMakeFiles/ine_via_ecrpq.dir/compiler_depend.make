# Empty compiler generated dependencies file for ine_via_ecrpq.
# This may be replaced when dependencies are built.
