file(REMOVE_RECURSE
  "CMakeFiles/two_way_navigation.dir/two_way_navigation.cpp.o"
  "CMakeFiles/two_way_navigation.dir/two_way_navigation.cpp.o.d"
  "two_way_navigation"
  "two_way_navigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_way_navigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
