# Empty dependencies file for two_way_navigation.
# This may be replaced when dependencies are built.
