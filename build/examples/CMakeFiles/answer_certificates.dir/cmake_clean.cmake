file(REMOVE_RECURSE
  "CMakeFiles/answer_certificates.dir/answer_certificates.cpp.o"
  "CMakeFiles/answer_certificates.dir/answer_certificates.cpp.o.d"
  "answer_certificates"
  "answer_certificates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/answer_certificates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
