# Empty dependencies file for answer_certificates.
# This may be replaced when dependencies are built.
