# Empty dependencies file for planner_demo.
# This may be replaced when dependencies are built.
