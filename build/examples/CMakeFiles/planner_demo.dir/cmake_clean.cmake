file(REMOVE_RECURSE
  "CMakeFiles/planner_demo.dir/planner_demo.cpp.o"
  "CMakeFiles/planner_demo.dir/planner_demo.cpp.o.d"
  "planner_demo"
  "planner_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planner_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
