file(REMOVE_RECURSE
  "CMakeFiles/transport_network.dir/transport_network.cpp.o"
  "CMakeFiles/transport_network.dir/transport_network.cpp.o.d"
  "transport_network"
  "transport_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
