# Empty compiler generated dependencies file for transport_network.
# This may be replaced when dependencies are built.
