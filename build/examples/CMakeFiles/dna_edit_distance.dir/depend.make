# Empty dependencies file for dna_edit_distance.
# This may be replaced when dependencies are built.
