file(REMOVE_RECURSE
  "CMakeFiles/dna_edit_distance.dir/dna_edit_distance.cpp.o"
  "CMakeFiles/dna_edit_distance.dir/dna_edit_distance.cpp.o.d"
  "dna_edit_distance"
  "dna_edit_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dna_edit_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
