#include "query/recognizable.h"

#include <string>
#include <utility>

#include "automata/ops.h"
#include "common/check.h"
#include "query/builder.h"
#include "synchro/builders.h"

namespace ecrpq {
namespace {

constexpr size_t kMaxDisjuncts = 10000;

}  // namespace

NodeVarId RecognizableQuery::NodeVar(std::string_view name) {
  for (size_t i = 0; i < node_names_.size(); ++i) {
    if (node_names_[i] == name) return static_cast<NodeVarId>(i);
  }
  node_names_.emplace_back(name);
  return static_cast<NodeVarId>(node_names_.size() - 1);
}

PathVarId RecognizableQuery::PathVar(std::string_view name) {
  for (size_t i = 0; i < path_names_.size(); ++i) {
    if (path_names_[i] == name) return static_cast<PathVarId>(i);
  }
  path_names_.emplace_back(name);
  return static_cast<PathVarId>(path_names_.size() - 1);
}

void RecognizableQuery::Reach(NodeVarId from, PathVarId path, NodeVarId to) {
  reach_atoms_.push_back(ReachAtom{from, path, to});
}

void RecognizableQuery::Relate(
    std::shared_ptr<const RecognizableRelation> relation,
    std::vector<PathVarId> paths) {
  relations_.push_back(std::move(relation));
  rec_atoms_.push_back(
      RecAtom{static_cast<uint32_t>(relations_.size() - 1),
              std::move(paths)});
}

void RecognizableQuery::Free(std::vector<NodeVarId> free_vars) {
  free_vars_ = std::move(free_vars);
}

Result<UecrpqQuery> RecognizableQuery::ToUcrpq() const {
  // Count the disjuncts: the product of per-atom product counts. An atom
  // with no products denotes the empty relation: the query is equivalent
  // to a single unsatisfiable CRPQ.
  size_t num_disjuncts = 1;
  bool empty_atom = false;
  for (const RecAtom& atom : rec_atoms_) {
    const size_t count = relations_[atom.relation]->products().size();
    if (count == 0) {
      empty_atom = true;
      break;
    }
    num_disjuncts *= count;
    if (num_disjuncts > kMaxDisjuncts) {
      return Status::CapacityExceeded(
          "union expansion exceeds " + std::to_string(kMaxDisjuncts) +
          " disjuncts");
    }
  }

  UecrpqQuery out;
  // Helper building one disjunct from a per-atom product choice.
  auto build_disjunct =
      [&](const std::vector<size_t>& choice,
          bool force_empty) -> Result<EcrpqQuery> {
    EcrpqBuilder builder(alphabet_);
    for (const std::string& name : node_names_) builder.NodeVar(name);
    for (const std::string& name : path_names_) builder.PathVar(name);
    for (const ReachAtom& atom : reach_atoms_) {
      builder.Reach(atom.from, atom.path, atom.to);
    }
    // Per path variable, intersect the languages imposed by the chosen
    // products of the atoms mentioning it.
    std::vector<std::optional<Nfa>> lang_of(path_names_.size());
    if (force_empty && !path_names_.empty()) {
      Nfa empty(1);
      empty.SetInitial(0);  // No accepting state: the empty language.
      lang_of[0] = std::move(empty);
    } else if (!force_empty) {
      for (size_t a = 0; a < rec_atoms_.size(); ++a) {
        const RecAtom& atom = rec_atoms_[a];
        const RecognizableRelation::Product& product =
            relations_[atom.relation]->products()[choice[a]];
        for (size_t i = 0; i < atom.paths.size(); ++i) {
          const PathVarId p = atom.paths[i];
          if (!lang_of[p].has_value()) {
            lang_of[p] = product.languages[i];
          } else {
            lang_of[p] = Intersect(*lang_of[p], product.languages[i]);
          }
        }
      }
    }
    for (size_t p = 0; p < path_names_.size(); ++p) {
      if (!lang_of[p].has_value()) continue;
      ECRPQ_ASSIGN_OR_RAISE(SyncRelation unary,
                            FromLanguage(alphabet_, *lang_of[p]));
      builder.Relate(std::make_shared<const SyncRelation>(std::move(unary)),
                     {static_cast<PathVarId>(p)}, "lang");
    }
    builder.Free(free_vars_);
    return builder.Build();
  };

  if (empty_atom) {
    ECRPQ_ASSIGN_OR_RAISE(EcrpqQuery disjunct, build_disjunct({}, true));
    out.disjuncts.push_back(std::move(disjunct));
    return out;
  }

  std::vector<size_t> choice(rec_atoms_.size(), 0);
  while (true) {
    ECRPQ_ASSIGN_OR_RAISE(EcrpqQuery disjunct, build_disjunct(choice, false));
    ECRPQ_DCHECK(disjunct.IsCrpq());
    out.disjuncts.push_back(std::move(disjunct));
    // Mixed-radix increment.
    size_t a = 0;
    for (; a < rec_atoms_.size(); ++a) {
      if (++choice[a] < relations_[rec_atoms_[a].relation]->products().size()) {
        break;
      }
      choice[a] = 0;
    }
    if (a == rec_atoms_.size()) break;
  }
  if (out.disjuncts.empty()) {
    // No relation atoms at all: the query itself is a CRPQ.
    ECRPQ_ASSIGN_OR_RAISE(EcrpqQuery disjunct, build_disjunct({}, false));
    out.disjuncts.push_back(std::move(disjunct));
  }
  return out;
}

Result<EcrpqQuery> RecognizableQuery::ToEcrpq() const {
  EcrpqBuilder builder(alphabet_);
  for (const std::string& name : node_names_) builder.NodeVar(name);
  for (const std::string& name : path_names_) builder.PathVar(name);
  for (const ReachAtom& atom : reach_atoms_) {
    builder.Reach(atom.from, atom.path, atom.to);
  }
  for (const RecAtom& atom : rec_atoms_) {
    ECRPQ_ASSIGN_OR_RAISE(SyncRelation rel,
                          relations_[atom.relation]->ToSynchronous());
    builder.Relate(std::make_shared<const SyncRelation>(std::move(rel)),
                   atom.paths, "rec");
  }
  builder.Free(free_vars_);
  return builder.Build();
}

}  // namespace ecrpq
