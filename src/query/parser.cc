#include "query/parser.h"

#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include "automata/regex.h"
#include "query/builder.h"
#include "synchro/builders.h"

namespace ecrpq {
namespace {

struct Token {
  enum class Kind {
    kIdent,
    kInt,
    kRegex,   // text between slashes, without them
    kLParen,
    kRParen,
    kComma,
    kDefine,  // :=
    kArrowIn,   // -[
    kArrowOut,  // ]->
    kEnd,
  };
  Kind kind;
  std::string text;
  size_t pos;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Lex() {
    std::vector<Token> tokens;
    while (true) {
      SkipSpace();
      if (pos_ >= input_.size()) break;
      const size_t start = pos_;
      const char c = input_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t end = pos_;
        while (end < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[end])) ||
                input_[end] == '_')) {
          ++end;
        }
        tokens.push_back(Token{Token::Kind::kIdent,
                               std::string(input_.substr(pos_, end - pos_)),
                               start});
        pos_ = end;
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t end = pos_;
        while (end < input_.size() &&
               std::isdigit(static_cast<unsigned char>(input_[end]))) {
          ++end;
        }
        tokens.push_back(Token{Token::Kind::kInt,
                               std::string(input_.substr(pos_, end - pos_)),
                               start});
        pos_ = end;
      } else if (c == '/') {
        ++pos_;
        std::string body;
        while (pos_ < input_.size() && input_[pos_] != '/') {
          if (input_[pos_] == '\\' && pos_ + 1 < input_.size() &&
              input_[pos_ + 1] == '/') {
            body += '/';
            pos_ += 2;
          } else {
            body += input_[pos_];
            ++pos_;
          }
        }
        if (pos_ >= input_.size()) {
          return Status::ParseError("unterminated /regex/ at position " +
                                    std::to_string(start));
        }
        ++pos_;  // Closing slash.
        tokens.push_back(Token{Token::Kind::kRegex, body, start});
      } else if (c == '(') {
        tokens.push_back(Token{Token::Kind::kLParen, "(", start});
        ++pos_;
      } else if (c == ')') {
        tokens.push_back(Token{Token::Kind::kRParen, ")", start});
        ++pos_;
      } else if (c == ',') {
        tokens.push_back(Token{Token::Kind::kComma, ",", start});
        ++pos_;
      } else if (c == ':' && Peek(1) == '=') {
        tokens.push_back(Token{Token::Kind::kDefine, ":=", start});
        pos_ += 2;
      } else if (c == '-' && Peek(1) == '[') {
        tokens.push_back(Token{Token::Kind::kArrowIn, "-[", start});
        pos_ += 2;
      } else if (c == ']' && Peek(1) == '-' && Peek(2) == '>') {
        tokens.push_back(Token{Token::Kind::kArrowOut, "]->", start});
        pos_ += 3;
      } else {
        return Status::ParseError("unexpected character '" +
                                  std::string(1, c) + "' at position " +
                                  std::to_string(start));
      }
    }
    tokens.push_back(Token{Token::Kind::kEnd, "", input_.size()});
    return tokens;
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }
  char Peek(size_t ahead) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }

  std::string_view input_;
  size_t pos_ = 0;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, const Alphabet& alphabet,
         const RelationRegistry* custom)
      : tokens_(std::move(tokens)),
        builder_(alphabet),
        alphabet_(alphabet),
        custom_(custom) {}

  Result<EcrpqQuery> Parse() {
    ECRPQ_RETURN_NOT_OK(ParseHead());
    ECRPQ_RETURN_NOT_OK(Expect(Token::Kind::kDefine, ":="));
    ECRPQ_RETURN_NOT_OK(ParseAtom());
    while (Current().kind == Token::Kind::kComma) {
      ++pos_;
      ECRPQ_RETURN_NOT_OK(ParseAtom());
    }
    if (Current().kind != Token::Kind::kEnd) {
      return Err("trailing input");
    }
    return builder_.Build();
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }
  const Token& Lookahead(size_t n) const {
    return tokens_[std::min(pos_ + n, tokens_.size() - 1)];
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " at position " +
                              std::to_string(Current().pos));
  }

  Status Expect(Token::Kind kind, const char* what) {
    if (Current().kind != kind) {
      return Err(std::string("expected '") + what + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Status ParseHead() {
    if (Current().kind != Token::Kind::kIdent) return Err("expected query name");
    ++pos_;  // Query name is decorative.
    ECRPQ_RETURN_NOT_OK(Expect(Token::Kind::kLParen, "("));
    std::vector<NodeVarId> free_vars;
    if (Current().kind == Token::Kind::kIdent) {
      free_vars.push_back(builder_.NodeVar(Current().text));
      ++pos_;
      while (Current().kind == Token::Kind::kComma) {
        ++pos_;
        if (Current().kind != Token::Kind::kIdent) {
          return Err("expected free variable name");
        }
        free_vars.push_back(builder_.NodeVar(Current().text));
        ++pos_;
      }
    }
    ECRPQ_RETURN_NOT_OK(Expect(Token::Kind::kRParen, ")"));
    builder_.Free(free_vars);
    return Status::OK();
  }

  Status ParseAtom() {
    if (Current().kind != Token::Kind::kIdent) {
      return Err("expected an atom");
    }
    // Reachability atom: ident -[ ... ]-> ident. Otherwise relation atom.
    if (Lookahead(1).kind == Token::Kind::kArrowIn) {
      return ParseReach();
    }
    return ParseRelAtom();
  }

  Status ParseReach() {
    const NodeVarId from = builder_.NodeVar(Current().text);
    ++pos_;
    ECRPQ_RETURN_NOT_OK(Expect(Token::Kind::kArrowIn, "-["));
    if (Current().kind == Token::Kind::kRegex) {
      const std::string regex = Current().text;
      ++pos_;
      ECRPQ_RETURN_NOT_OK(Expect(Token::Kind::kArrowOut, "]->"));
      if (Current().kind != Token::Kind::kIdent) {
        return Err("expected target node variable");
      }
      const NodeVarId to = builder_.NodeVar(Current().text);
      ++pos_;
      ECRPQ_ASSIGN_OR_RAISE(PathVarId ignored,
                            builder_.ReachRegex(from, regex, to));
      (void)ignored;
      return Status::OK();
    }
    if (Current().kind != Token::Kind::kIdent) {
      return Err("expected path variable or /regex/");
    }
    const PathVarId path = builder_.PathVar(Current().text);
    ++pos_;
    ECRPQ_RETURN_NOT_OK(Expect(Token::Kind::kArrowOut, "]->"));
    if (Current().kind != Token::Kind::kIdent) {
      return Err("expected target node variable");
    }
    const NodeVarId to = builder_.NodeVar(Current().text);
    ++pos_;
    builder_.Reach(from, path, to);
    return Status::OK();
  }

  Status ParsePathList(std::vector<PathVarId>* paths) {
    while (true) {
      if (Current().kind != Token::Kind::kIdent) {
        return Err("expected path variable");
      }
      paths->push_back(builder_.PathVar(Current().text));
      ++pos_;
      if (Current().kind != Token::Kind::kComma) break;
      ++pos_;
    }
    return Status::OK();
  }

  Status ParseRelAtom() {
    const std::string name = Current().text;
    ++pos_;
    ECRPQ_RETURN_NOT_OK(Expect(Token::Kind::kLParen, "("));

    std::vector<PathVarId> paths;
    std::shared_ptr<const SyncRelation> relation;
    std::string display = name;

    if (name == "lang") {
      if (Current().kind != Token::Kind::kRegex) {
        return Err("lang expects (/regex/, path)");
      }
      const std::string regex = Current().text;
      ++pos_;
      ECRPQ_RETURN_NOT_OK(Expect(Token::Kind::kComma, ","));
      ECRPQ_RETURN_NOT_OK(ParsePathList(&paths));
      if (paths.size() != 1) return Err("lang takes exactly one path");
      Alphabet scratch = alphabet_;
      ECRPQ_ASSIGN_OR_RAISE(Nfa lang, CompileRegex(regex, &scratch));
      if (scratch.size() != alphabet_.size()) {
        return Status::ParseError("regex /" + regex +
                                  "/ uses symbols outside the alphabet");
      }
      ECRPQ_ASSIGN_OR_RAISE(SyncRelation rel, FromLanguage(alphabet_, lang));
      relation = std::make_shared<const SyncRelation>(std::move(rel));
      display = "lang(/" + regex + "/)";
      // Rebuild display without the regex inside the arg list.
      ECRPQ_RETURN_NOT_OK(Expect(Token::Kind::kRParen, ")"));
      builder_.Relate(std::move(relation), paths, display);
      return Status::OK();
    }

    if (name == "hamming" || name == "edit") {
      if (Current().kind != Token::Kind::kInt) {
        return Err(name + " expects (d, path, path)");
      }
      const int d = std::stoi(Current().text);
      ++pos_;
      ECRPQ_RETURN_NOT_OK(Expect(Token::Kind::kComma, ","));
      ECRPQ_RETURN_NOT_OK(ParsePathList(&paths));
      if (paths.size() != 2) return Err(name + " takes exactly two paths");
      Result<SyncRelation> rel =
          name == "hamming" ? HammingAtMostRelation(alphabet_, d)
                            : EditDistanceAtMostRelation(alphabet_, d);
      if (!rel.ok()) return rel.status();
      relation =
          std::make_shared<const SyncRelation>(std::move(rel).ValueOrDie());
      display = name + "(" + std::to_string(d) + ")";
      ECRPQ_RETURN_NOT_OK(Expect(Token::Kind::kRParen, ")"));
      builder_.Relate(std::move(relation), paths, display);
      return Status::OK();
    }

    ECRPQ_RETURN_NOT_OK(ParsePathList(&paths));
    ECRPQ_RETURN_NOT_OK(Expect(Token::Kind::kRParen, ")"));
    const int k = static_cast<int>(paths.size());
    if (custom_ != nullptr) {
      auto it = custom_->find(name);
      if (it != custom_->end()) {
        builder_.Relate(it->second, paths, name);
        return Status::OK();
      }
    }
    Result<SyncRelation> rel = Status::Invalid("unset");
    if (name == "eq") {
      rel = EqualityRelation(alphabet_, k);
    } else if (name == "eqlen") {
      rel = EqualLengthRelation(alphabet_, k);
    } else if (name == "prefix") {
      if (k != 2) return Err("prefix takes exactly two paths");
      rel = PrefixRelation(alphabet_);
    } else if (name == "lexleq") {
      if (k != 2) return Err("lexleq takes exactly two paths");
      rel = LexLeqRelation(alphabet_);
    } else if (name == "universal") {
      rel = UniversalRelation(alphabet_, k);
    } else {
      return Err("unknown relation '" + name + "'");
    }
    if (!rel.ok()) return rel.status();
    relation =
        std::make_shared<const SyncRelation>(std::move(rel).ValueOrDie());
    builder_.Relate(std::move(relation), paths, display);
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  EcrpqBuilder builder_;
  Alphabet alphabet_;
  const RelationRegistry* custom_;
};

}  // namespace

Result<EcrpqQuery> ParseEcrpq(std::string_view text, const Alphabet& alphabet,
                              const RelationRegistry* custom) {
  ECRPQ_ASSIGN_OR_RAISE(std::vector<Token> tokens, Lexer(text).Lex());
  return Parser(std::move(tokens), alphabet, custom).Parse();
}

Result<UecrpqQuery> ParseUecrpq(std::string_view text,
                                const Alphabet& alphabet,
                                const RelationRegistry* custom) {
  UecrpqQuery out;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t split = text.find(';', start);
    const std::string_view piece =
        text.substr(start, split == std::string_view::npos
                               ? std::string_view::npos
                               : split - start);
    ECRPQ_ASSIGN_OR_RAISE(EcrpqQuery disjunct,
                          ParseEcrpq(piece, alphabet, custom));
    out.disjuncts.push_back(std::move(disjunct));
    if (split == std::string_view::npos) break;
    start = split + 1;
  }
  return out;
}

}  // namespace ecrpq
