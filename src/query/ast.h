// ECRPQ abstract syntax.
//
// An ECRPQ (paper eq. (1)) is
//     q(x̄) = ∃ȳ ∃π̄  γ(x̄ȳπ̄) ∧ ρ(π̄)
// where γ is a conjunction of reachability atoms z -π-> z' (each path
// variable in exactly one) and ρ a conjunction of relation atoms
// R(π_1, ..., π_r) over synchronous relations with pairwise-distinct path
// variables per atom. Queries may be Boolean (no free variables) or have
// free *node* variables.
#ifndef ECRPQ_QUERY_AST_H_
#define ECRPQ_QUERY_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "automata/alphabet.h"
#include "synchro/sync_relation.h"

namespace ecrpq {

// Indices into EcrpqQuery's variable tables.
using NodeVarId = uint32_t;
using PathVarId = uint32_t;

struct ReachAtom {
  NodeVarId from;
  PathVarId path;
  NodeVarId to;
  bool operator==(const ReachAtom&) const = default;
};

struct RelAtom {
  // Index into EcrpqQuery::relations().
  uint32_t relation;
  // Pairwise-distinct path variables; size == relation arity.
  std::vector<PathVarId> paths;
  bool operator==(const RelAtom&) const = default;
};

class EcrpqQuery {
 public:
  EcrpqQuery() = default;

  const Alphabet& alphabet() const { return alphabet_; }

  int NumNodeVars() const { return static_cast<int>(node_var_names_.size()); }
  int NumPathVars() const { return static_cast<int>(path_var_names_.size()); }
  const std::string& NodeVarName(NodeVarId v) const {
    return node_var_names_[v];
  }
  const std::string& PathVarName(PathVarId p) const {
    return path_var_names_[p];
  }

  // Free node variables, in answer-tuple order. Empty for Boolean queries.
  const std::vector<NodeVarId>& free_vars() const { return free_vars_; }
  bool IsBoolean() const { return free_vars_.empty(); }

  const std::vector<ReachAtom>& reach_atoms() const { return reach_atoms_; }
  const std::vector<RelAtom>& rel_atoms() const { return rel_atoms_; }
  const std::vector<std::shared_ptr<const SyncRelation>>& relations() const {
    return relations_;
  }
  const SyncRelation& relation(uint32_t index) const {
    return *relations_[index];
  }

  // True iff the query is a CRPQ: all relations unary and every path
  // variable in at most one relation atom.
  bool IsCrpq() const;

  // Pretty-printer (matches the parser's concrete syntax).
  std::string ToString() const;

 private:
  friend class EcrpqBuilder;

  Alphabet alphabet_;
  std::vector<std::string> node_var_names_;
  std::vector<std::string> path_var_names_;
  std::vector<NodeVarId> free_vars_;
  std::vector<ReachAtom> reach_atoms_;
  std::vector<RelAtom> rel_atoms_;
  std::vector<std::shared_ptr<const SyncRelation>> relations_;
  std::vector<std::string> relation_display_names_;

 public:
  const std::vector<std::string>& relation_display_names() const {
    return relation_display_names_;
  }
};

// A union of ECRPQ queries (UECRPQ) — the paper's closing remark: all
// characterization results extend to finite unions.
struct UecrpqQuery {
  std::vector<EcrpqQuery> disjuncts;
};

}  // namespace ecrpq

#endif  // ECRPQ_QUERY_AST_H_
