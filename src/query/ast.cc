#include "query/ast.h"

#include <sstream>

namespace ecrpq {

bool EcrpqQuery::IsCrpq() const {
  std::vector<int> uses(NumPathVars(), 0);
  for (const RelAtom& atom : rel_atoms_) {
    if (relations_[atom.relation]->arity() != 1) return false;
    for (PathVarId p : atom.paths) {
      if (++uses[p] > 1) return false;
    }
  }
  return true;
}

std::string EcrpqQuery::ToString() const {
  std::ostringstream out;
  out << "q(";
  for (size_t i = 0; i < free_vars_.size(); ++i) {
    if (i > 0) out << ", ";
    out << node_var_names_[free_vars_[i]];
  }
  out << ") := ";
  bool first = true;
  for (const ReachAtom& atom : reach_atoms_) {
    if (!first) out << ", ";
    first = false;
    out << node_var_names_[atom.from] << " -[" << path_var_names_[atom.path]
        << "]-> " << node_var_names_[atom.to];
  }
  for (const RelAtom& atom : rel_atoms_) {
    if (!first) out << ", ";
    first = false;
    out << relation_display_names_[atom.relation] << "(";
    for (size_t i = 0; i < atom.paths.size(); ++i) {
      if (i > 0) out << ", ";
      out << path_var_names_[atom.paths[i]];
    }
    out << ")";
  }
  return out.str();
}

}  // namespace ecrpq
