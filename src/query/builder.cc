#include "query/builder.h"

#include <utility>

#include "automata/regex.h"
#include "query/validate.h"
#include "synchro/builders.h"

namespace ecrpq {

EcrpqBuilder::EcrpqBuilder(Alphabet alphabet) {
  query_.alphabet_ = std::move(alphabet);
}

NodeVarId EcrpqBuilder::NodeVar(std::string_view name) {
  for (size_t i = 0; i < query_.node_var_names_.size(); ++i) {
    if (query_.node_var_names_[i] == name) return static_cast<NodeVarId>(i);
  }
  query_.node_var_names_.emplace_back(name);
  return static_cast<NodeVarId>(query_.node_var_names_.size() - 1);
}

PathVarId EcrpqBuilder::PathVar(std::string_view name) {
  for (size_t i = 0; i < query_.path_var_names_.size(); ++i) {
    if (query_.path_var_names_[i] == name) return static_cast<PathVarId>(i);
  }
  query_.path_var_names_.emplace_back(name);
  return static_cast<PathVarId>(query_.path_var_names_.size() - 1);
}

EcrpqBuilder& EcrpqBuilder::Reach(NodeVarId from, PathVarId path,
                                  NodeVarId to) {
  query_.reach_atoms_.push_back(ReachAtom{from, path, to});
  return *this;
}

EcrpqBuilder& EcrpqBuilder::Relate(
    std::shared_ptr<const SyncRelation> relation,
    const std::vector<PathVarId>& paths, std::string_view display_name) {
  query_.relations_.push_back(std::move(relation));
  query_.relation_display_names_.emplace_back(display_name);
  query_.rel_atoms_.push_back(
      RelAtom{static_cast<uint32_t>(query_.relations_.size() - 1), paths});
  return *this;
}

Result<PathVarId> EcrpqBuilder::ReachRegex(NodeVarId from,
                                           std::string_view regex,
                                           NodeVarId to) {
  // Compile over a copy so symbols not in the query alphabet are reported
  // rather than silently interned.
  Alphabet scratch = query_.alphabet_;
  ECRPQ_ASSIGN_OR_RAISE(Nfa lang, CompileRegex(regex, &scratch));
  if (scratch.size() != query_.alphabet_.size()) {
    return Status::Invalid("regex '" + std::string(regex) +
                           "' uses symbols outside the query alphabet");
  }
  ECRPQ_ASSIGN_OR_RAISE(SyncRelation rel,
                        FromLanguage(query_.alphabet_, lang));
  const PathVarId path =
      PathVar("_p" + std::to_string(fresh_path_counter_++));
  Reach(from, path, to);
  Relate(std::make_shared<const SyncRelation>(std::move(rel)), {path},
         "lang(/" + std::string(regex) + "/)");
  return path;
}

EcrpqBuilder& EcrpqBuilder::Free(const std::vector<NodeVarId>& free_vars) {
  query_.free_vars_ = free_vars;
  return *this;
}

Result<EcrpqQuery> EcrpqBuilder::Build() const {
  ECRPQ_RETURN_NOT_OK(ValidateQuery(query_));
  return query_;
}

}  // namespace ecrpq
