// Structural validation of ECRPQ queries (the well-formedness conditions of
// paper §2).
#ifndef ECRPQ_QUERY_VALIDATE_H_
#define ECRPQ_QUERY_VALIDATE_H_

#include "common/status.h"
#include "query/ast.h"

namespace ecrpq {

// Checks:
//  - every path variable appears in exactly one reachability atom;
//  - relation atoms use pairwise-distinct path variables;
//  - relation arities match atom widths;
//  - all relations share the query's alphabet;
//  - free variables are declared node variables;
//  - variable ids are in range.
Status ValidateQuery(const EcrpqQuery& query);

// ValidateQuery plus the database-facing precondition shared by every
// evaluation entry point: the database alphabet must be an id-aligned prefix
// of the query alphabet, so database symbols feed directly into the query's
// automata. The check is vacuous for queries without path variables (and
// hence without reachability or relation atoms): no automaton ever consumes
// a database symbol, so any database is acceptable — in particular the
// empty query is trivially true on every database.
Status ValidateQueryForDb(const EcrpqQuery& query,
                          const Alphabet& db_alphabet);

}  // namespace ecrpq

#endif  // ECRPQ_QUERY_VALIDATE_H_
