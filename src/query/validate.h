// Structural validation of ECRPQ queries (the well-formedness conditions of
// paper §2).
#ifndef ECRPQ_QUERY_VALIDATE_H_
#define ECRPQ_QUERY_VALIDATE_H_

#include "common/status.h"
#include "query/ast.h"

namespace ecrpq {

// Checks:
//  - every path variable appears in exactly one reachability atom;
//  - relation atoms use pairwise-distinct path variables;
//  - relation arities match atom widths;
//  - all relations share the query's alphabet;
//  - free variables are declared node variables;
//  - variable ids are in range.
Status ValidateQuery(const EcrpqQuery& query);

}  // namespace ecrpq

#endif  // ECRPQ_QUERY_VALIDATE_H_
