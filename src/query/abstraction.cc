#include "query/abstraction.h"

#include <vector>

#include "common/check.h"

namespace ecrpq {

TwoLevelGraph QueryAbstraction(const EcrpqQuery& query,
                               bool implicit_universal_singletons) {
  TwoLevelGraph g;
  g.num_vertices = query.NumNodeVars();
  // First-level edge index == path variable id; the validator guarantees
  // each path variable occurs in exactly one reachability atom.
  g.first_edges.assign(query.NumPathVars(), {0, 0});
  for (const ReachAtom& atom : query.reach_atoms()) {
    g.first_edges[atom.path] = {static_cast<int>(atom.from),
                                static_cast<int>(atom.to)};
  }
  std::vector<bool> constrained(query.NumPathVars(), false);
  for (const RelAtom& atom : query.rel_atoms()) {
    std::vector<int> members;
    members.reserve(atom.paths.size());
    for (PathVarId p : atom.paths) {
      members.push_back(static_cast<int>(p));
      constrained[p] = true;
    }
    g.hyperedges.push_back(std::move(members));
  }
  if (implicit_universal_singletons) {
    for (int p = 0; p < query.NumPathVars(); ++p) {
      if (!constrained[p]) g.hyperedges.push_back({p});
    }
  }
  return g;
}

SimpleGraph CrpqGaifmanGraph(const EcrpqQuery& query) {
  SimpleGraph g(query.NumNodeVars());
  for (const ReachAtom& atom : query.reach_atoms()) {
    g.AddEdge(static_cast<int>(atom.from), static_cast<int>(atom.to));
  }
  return g;
}

}  // namespace ecrpq
