#include "query/simplify.h"

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "query/builder.h"
#include "query/validate.h"
#include "synchro/builders.h"
#include "synchro/ops.h"

namespace ecrpq {
namespace {

// Conservative universality test: may return false negatives above the
// arity cap, never false positives.
Result<bool> IsUniversal(const SyncRelation& rel, int max_arity) {
  if (rel.arity() > max_arity) return false;
  ECRPQ_ASSIGN_OR_RAISE(SyncRelation universal,
                        UniversalRelation(rel.alphabet(), rel.arity()));
  return RelationIncluded(universal, rel);
}

}  // namespace

Result<EcrpqQuery> SimplifyQuery(const EcrpqQuery& query,
                                 const SimplifyOptions& options,
                                 SimplifyStats* stats) {
  ECRPQ_RETURN_NOT_OK(ValidateQuery(query));
  SimplifyStats local;

  // Pass 1: keep only non-universal atoms; collect unary atoms per path
  // variable for merging.
  std::map<PathVarId, std::optional<SyncRelation>> unary_of;
  struct KeptAtom {
    SyncRelation relation;
    std::vector<PathVarId> paths;
    std::string display;
  };
  std::vector<KeptAtom> kept;

  for (const RelAtom& atom : query.rel_atoms()) {
    const SyncRelation& rel = query.relation(atom.relation);
    local.relation_states_before += rel.nfa().NumStates();
    ECRPQ_ASSIGN_OR_RAISE(bool universal,
                          IsUniversal(rel, options.max_universality_arity));
    if (universal) {
      ++local.dropped_universal_atoms;
      continue;
    }
    if (rel.arity() == 1) {
      auto& slot = unary_of[atom.paths[0]];
      if (!slot.has_value()) {
        slot = rel;
      } else {
        ++local.merged_unary_atoms;
        ECRPQ_ASSIGN_OR_RAISE(slot, Intersect(*slot, rel));
      }
      continue;
    }
    kept.push_back(KeptAtom{
        rel, atom.paths,
        query.relation_display_names()[atom.relation]});
  }

  // Rebuild.
  EcrpqBuilder builder(query.alphabet());
  for (int v = 0; v < query.NumNodeVars(); ++v) {
    builder.NodeVar(query.NodeVarName(v));
  }
  for (int p = 0; p < query.NumPathVars(); ++p) {
    builder.PathVar(query.PathVarName(p));
  }
  for (const ReachAtom& atom : query.reach_atoms()) {
    builder.Reach(atom.from, atom.path, atom.to);
  }
  auto emit = [&](SyncRelation rel, const std::vector<PathVarId>& paths,
                  const std::string& display) -> Status {
    if (options.reduce_relations) {
      ECRPQ_ASSIGN_OR_RAISE(rel, ReduceRelation(rel));
    }
    local.relation_states_after += rel.nfa().NumStates();
    builder.Relate(std::make_shared<const SyncRelation>(std::move(rel)),
                   paths, display);
    return Status::OK();
  };
  for (auto& [path, merged] : unary_of) {
    ECRPQ_RETURN_NOT_OK(emit(std::move(*merged), {path}, "lang"));
  }
  for (KeptAtom& atom : kept) {
    ECRPQ_RETURN_NOT_OK(
        emit(std::move(atom.relation), atom.paths, atom.display));
  }
  builder.Free(query.free_vars());
  if (stats != nullptr) *stats = local;
  return builder.Build();
}

}  // namespace ecrpq
