#include "query/simplify.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "automata/interner.h"
#include "common/hash.h"
#include "query/builder.h"
#include "query/validate.h"
#include "synchro/builders.h"
#include "synchro/ops.h"

namespace ecrpq {
namespace {

// Conservative universality test: may return false negatives above the
// arity cap, never false positives.
Result<bool> IsUniversal(const SyncRelation& rel, int max_arity) {
  if (rel.arity() > max_arity) return false;
  ECRPQ_ASSIGN_OR_RAISE(SyncRelation universal,
                        UniversalRelation(rel.alphabet(), rel.arity()));
  return RelationIncluded(universal, rel);
}

}  // namespace

Result<EcrpqQuery> SimplifyQuery(const EcrpqQuery& query,
                                 const SimplifyOptions& options,
                                 SimplifyStats* stats) {
  ECRPQ_RETURN_NOT_OK(ValidateQuery(query));
  SimplifyStats local;

  // Pass 1: keep only non-universal atoms; collect unary atoms per path
  // variable for merging.
  std::map<PathVarId, std::optional<SyncRelation>> unary_of;
  struct KeptAtom {
    SyncRelation relation;
    std::vector<PathVarId> paths;
    std::string display;
  };
  std::vector<KeptAtom> kept;

  for (const RelAtom& atom : query.rel_atoms()) {
    const SyncRelation& rel = query.relation(atom.relation);
    local.relation_states_before += rel.nfa().NumStates();
    ECRPQ_ASSIGN_OR_RAISE(bool universal,
                          IsUniversal(rel, options.max_universality_arity));
    if (universal) {
      ++local.dropped_universal_atoms;
      continue;
    }
    if (rel.arity() == 1) {
      auto& slot = unary_of[atom.paths[0]];
      if (!slot.has_value()) {
        slot = rel;
      } else {
        ++local.merged_unary_atoms;
        ECRPQ_ASSIGN_OR_RAISE(slot, Intersect(*slot, rel));
      }
      continue;
    }
    kept.push_back(KeptAtom{
        rel, atom.paths,
        query.relation_display_names()[atom.relation]});
  }

  // Rebuild.
  EcrpqBuilder builder(query.alphabet());
  for (int v = 0; v < query.NumNodeVars(); ++v) {
    builder.NodeVar(query.NodeVarName(v));
  }
  for (int p = 0; p < query.NumPathVars(); ++p) {
    builder.PathVar(query.PathVarName(p));
  }
  for (const ReachAtom& atom : query.reach_atoms()) {
    builder.Reach(atom.from, atom.path, atom.to);
  }
  auto emit = [&](SyncRelation rel, const std::vector<PathVarId>& paths,
                  const std::string& display) -> Status {
    if (options.reduce_relations) {
      ECRPQ_ASSIGN_OR_RAISE(rel, ReduceRelation(rel));
    }
    local.relation_states_after += rel.nfa().NumStates();
    builder.Relate(std::make_shared<const SyncRelation>(std::move(rel)),
                   paths, display);
    return Status::OK();
  };
  for (auto& [path, merged] : unary_of) {
    ECRPQ_RETURN_NOT_OK(emit(std::move(*merged), {path}, "lang"));
  }
  for (KeptAtom& atom : kept) {
    ECRPQ_RETURN_NOT_OK(
        emit(std::move(atom.relation), atom.paths, atom.display));
  }
  builder.Free(query.free_vars());
  if (stats != nullptr) *stats = local;
  return builder.Build();
}

std::string CanonicalQueryKey(const EcrpqQuery& query) {
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(query.NumNodeVars()));
  AppendU32(&out, static_cast<uint32_t>(query.NumPathVars()));
  // Free variables keep their order: it is the answer-tuple order, part of
  // the query's meaning.
  AppendU32(&out, static_cast<uint32_t>(query.free_vars().size()));
  for (NodeVarId v : query.free_vars()) AppendU32(&out, v);
  // Reach atoms in sorted order — atom listing order never affects the
  // abstraction's measures or engine choice.
  std::vector<ReachAtom> reach(query.reach_atoms());
  std::sort(reach.begin(), reach.end(),
            [](const ReachAtom& a, const ReachAtom& b) {
              return std::tie(a.from, a.path, a.to) <
                     std::tie(b.from, b.path, b.to);
            });
  AppendU32(&out, static_cast<uint32_t>(reach.size()));
  for (const ReachAtom& atom : reach) {
    AppendU32(&out, atom.from);
    AppendU32(&out, atom.path);
    AppendU32(&out, atom.to);
  }
  // Relation atoms: each serialized as (arity, alphabet size, canonical
  // automaton bytes, path-variable list) with length prefixes, then the
  // serializations sorted — display names are deliberately absent, content
  // identifies the relation.
  std::vector<std::string> rel_bytes;
  rel_bytes.reserve(query.rel_atoms().size());
  for (const RelAtom& atom : query.rel_atoms()) {
    const SyncRelation& rel = query.relation(atom.relation);
    std::string r;
    AppendU32(&r, static_cast<uint32_t>(rel.arity()));
    AppendU32(&r, static_cast<uint32_t>(rel.alphabet().size()));
    const std::string nfa = CanonicalNfaBytes(rel.nfa());
    AppendU32(&r, static_cast<uint32_t>(nfa.size()));
    r += nfa;
    AppendU32(&r, static_cast<uint32_t>(atom.paths.size()));
    for (PathVarId p : atom.paths) AppendU32(&r, p);
    rel_bytes.push_back(std::move(r));
  }
  std::sort(rel_bytes.begin(), rel_bytes.end());
  AppendU32(&out, static_cast<uint32_t>(rel_bytes.size()));
  for (const std::string& r : rel_bytes) {
    AppendU32(&out, static_cast<uint32_t>(r.size()));
    out += r;
  }
  return out;
}

}  // namespace ecrpq
