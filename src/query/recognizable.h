// CRPQ + Recognizable: the fragment whose relation atoms are recognizable
// relations. As the paper recalls (§1), every CRPQ+Recognizable query is
// equivalent to a finite union of CRPQs: distribute each atom's products
// and fold the resulting per-path languages into single unary constraints.
//
// This module provides the query type and both translations:
//  * ToUcrpq()  — the union-of-CRPQs normal form (each disjunct a CRPQ);
//  * ToEcrpq()  — a single ECRPQ via the synchronous embedding (for
//                 differential testing and engine comparison).
#ifndef ECRPQ_QUERY_RECOGNIZABLE_H_
#define ECRPQ_QUERY_RECOGNIZABLE_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "query/ast.h"
#include "synchro/recognizable.h"

namespace ecrpq {

class RecognizableQuery {
 public:
  struct RecAtom {
    uint32_t relation;  // Index into relations().
    std::vector<PathVarId> paths;
  };

  // Builder-style construction mirroring EcrpqBuilder's essentials.
  explicit RecognizableQuery(Alphabet alphabet)
      : alphabet_(std::move(alphabet)) {}

  NodeVarId NodeVar(std::string_view name);
  PathVarId PathVar(std::string_view name);
  void Reach(NodeVarId from, PathVarId path, NodeVarId to);
  void Relate(std::shared_ptr<const RecognizableRelation> relation,
              std::vector<PathVarId> paths);
  void Free(std::vector<NodeVarId> free_vars);

  const Alphabet& alphabet() const { return alphabet_; }
  int NumNodeVars() const { return static_cast<int>(node_names_.size()); }
  int NumPathVars() const { return static_cast<int>(path_names_.size()); }

  // Union-of-CRPQs expansion. The number of disjuncts is the product of
  // the atoms' product counts (exponential in the query, as the known
  // non-elementary succinctness gap allows); per-path languages from
  // several atoms are intersected so every disjunct is a genuine CRPQ.
  Result<UecrpqQuery> ToUcrpq() const;

  // Single-ECRPQ form through RecognizableRelation::ToSynchronous.
  Result<EcrpqQuery> ToEcrpq() const;

 private:
  Alphabet alphabet_;
  std::vector<std::string> node_names_;
  std::vector<std::string> path_names_;
  std::vector<NodeVarId> free_vars_;
  std::vector<ReachAtom> reach_atoms_;
  std::vector<std::shared_ptr<const RecognizableRelation>> relations_;
  std::vector<RecAtom> rec_atoms_;
};

}  // namespace ecrpq

#endif  // ECRPQ_QUERY_RECOGNIZABLE_H_
