// Abstraction of an ECRPQ as a 2L graph (paper §2, "Two-level graphs"):
// V = node variables, E = path variables (η from the reachability atoms),
// H = relation atoms (ν from their path-variable lists).
#ifndef ECRPQ_QUERY_ABSTRACTION_H_
#define ECRPQ_QUERY_ABSTRACTION_H_

#include "query/ast.h"
#include "structure/two_level_graph.h"

namespace ecrpq {

// When `implicit_universal_singletons` is set (the default), every path
// variable that appears in no relation atom receives a singleton hyperedge,
// as if constrained by the universal unary relation A*. This matches the
// evaluation semantics (an unconstrained path variable behaves exactly like
// one constrained by A*) and makes G^node contain the full Gaifman graph of
// the reachability subquery. Pass false for the paper's literal definition.
TwoLevelGraph QueryAbstraction(const EcrpqQuery& query,
                               bool implicit_universal_singletons = true);

// The CRPQ abstraction: the graph on node variables with an edge {x, y} for
// every reachability atom x -π-> y.
SimpleGraph CrpqGaifmanGraph(const EcrpqQuery& query);

}  // namespace ecrpq

#endif  // ECRPQ_QUERY_ABSTRACTION_H_
