// A concrete syntax for ECRPQ queries.
//
//   q(x, y) := x -[pi1]-> z, y -[pi2]-> z, eqlen(pi1, pi2)
//
// Atoms:
//   reachability:  x -[pi]-> y          (pi a path variable)
//                  x -[/a*b/]-> y       (CRPQ sugar: fresh variable + lang)
//   relations:     eq(p1, ..., pk)      equality of all labels
//                  eqlen(p1, ..., pk)   equal length
//                  prefix(p1, p2)       label(p1) prefix of label(p2)
//                  lexleq(p1, p2)       same length, lexicographically <=
//                  universal(p1, ..., pk)
//                  hamming(d, p1, p2)   Hamming distance <= d
//                  edit(d, p1, p2)      Levenshtein distance <= d
//                  lang(/regex/, p)     label(p) in the regular language
//
// The head lists free node variables; `q()` declares a Boolean query.
// Regexes are compiled over the supplied alphabet; using a symbol the
// alphabet does not know is an error.
#ifndef ECRPQ_QUERY_PARSER_H_
#define ECRPQ_QUERY_PARSER_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "automata/alphabet.h"
#include "common/result.h"
#include "query/ast.h"

namespace ecrpq {

// Named user-supplied relations, usable as atoms by name:
//   myrel(p1, p2)
// Names must not collide with the builtins. Relations must share the
// query's alphabet (checked by validation).
using RelationRegistry =
    std::map<std::string, std::shared_ptr<const SyncRelation>>;

Result<EcrpqQuery> ParseEcrpq(std::string_view text, const Alphabet& alphabet,
                              const RelationRegistry* custom = nullptr);

// A union of queries, disjuncts separated by ';':
//   q(x) := x -[/a/]-> y ; q(x) := x -[/b/]-> y
// All disjuncts must share the answer arity (checked by ValidateUnion at
// evaluation time; the parser only splits and parses).
Result<UecrpqQuery> ParseUecrpq(std::string_view text,
                                const Alphabet& alphabet,
                                const RelationRegistry* custom = nullptr);

}  // namespace ecrpq

#endif  // ECRPQ_QUERY_PARSER_H_
