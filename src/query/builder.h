// Fluent construction of ECRPQ queries.
//
//   EcrpqBuilder b(alphabet);
//   auto x = b.NodeVar("x"), y = b.NodeVar("y"), z = b.NodeVar("z");
//   auto p1 = b.PathVar("pi1"), p2 = b.PathVar("pi2");
//   b.Reach(x, p1, z);
//   b.Reach(y, p2, z);
//   b.Relate(eq_len_relation, {p1, p2});       // shared_ptr<SyncRelation>
//   b.Free({x, y});
//   ECRPQ_ASSIGN_OR_RAISE(EcrpqQuery q, b.Build());
#ifndef ECRPQ_QUERY_BUILDER_H_
#define ECRPQ_QUERY_BUILDER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "query/ast.h"

namespace ecrpq {

class EcrpqBuilder {
 public:
  explicit EcrpqBuilder(Alphabet alphabet);

  // Returns the variable with this name, creating it on first use.
  NodeVarId NodeVar(std::string_view name);
  PathVarId PathVar(std::string_view name);

  EcrpqBuilder& Reach(NodeVarId from, PathVarId path, NodeVarId to);

  // Adds a relation atom. The relation is shared (not copied). An optional
  // display name is used by EcrpqQuery::ToString.
  EcrpqBuilder& Relate(std::shared_ptr<const SyncRelation> relation,
                       const std::vector<PathVarId>& paths,
                       std::string_view display_name = "rel");

  // Convenience for CRPQ atoms: from -[regex]-> to with a fresh path
  // variable; the regex is compiled over the query alphabet.
  Result<PathVarId> ReachRegex(NodeVarId from, std::string_view regex,
                               NodeVarId to);

  EcrpqBuilder& Free(const std::vector<NodeVarId>& free_vars);

  // Validates (query/validate.h) and returns the query.
  Result<EcrpqQuery> Build() const;

 private:
  EcrpqQuery query_;
  int fresh_path_counter_ = 0;
};

}  // namespace ecrpq

#endif  // ECRPQ_QUERY_BUILDER_H_
