#include "query/validate.h"

#include <string>
#include <vector>

#include "synchro/sync_relation.h"

namespace ecrpq {

Status ValidateQuery(const EcrpqQuery& query) {
  const int num_nodes = query.NumNodeVars();
  const int num_paths = query.NumPathVars();

  std::vector<int> path_uses(num_paths, 0);
  for (const ReachAtom& atom : query.reach_atoms()) {
    if (atom.from >= static_cast<NodeVarId>(num_nodes) ||
        atom.to >= static_cast<NodeVarId>(num_nodes)) {
      return Status::Invalid("reachability atom uses unknown node variable");
    }
    if (atom.path >= static_cast<PathVarId>(num_paths)) {
      return Status::Invalid("reachability atom uses unknown path variable");
    }
    ++path_uses[atom.path];
  }
  for (int p = 0; p < num_paths; ++p) {
    if (path_uses[p] != 1) {
      return Status::Invalid(
          "path variable '" + query.PathVarName(p) + "' appears in " +
          std::to_string(path_uses[p]) +
          " reachability atoms; exactly one required");
    }
  }

  for (const RelAtom& atom : query.rel_atoms()) {
    if (atom.relation >= query.relations().size()) {
      return Status::Invalid("relation atom references unknown relation");
    }
    const SyncRelation& rel = query.relation(atom.relation);
    if (static_cast<int>(atom.paths.size()) != rel.arity()) {
      return Status::Invalid(
          "relation atom width " + std::to_string(atom.paths.size()) +
          " does not match relation arity " + std::to_string(rel.arity()));
    }
    for (size_t i = 0; i < atom.paths.size(); ++i) {
      if (atom.paths[i] >= static_cast<PathVarId>(num_paths)) {
        return Status::Invalid("relation atom uses unknown path variable");
      }
      for (size_t j = i + 1; j < atom.paths.size(); ++j) {
        if (atom.paths[i] == atom.paths[j]) {
          return Status::Invalid(
              "relation atom uses path variable '" +
              query.PathVarName(atom.paths[i]) +
              "' twice; path variables are pairwise distinct per atom");
        }
      }
    }
    if (!(rel.alphabet() == query.alphabet())) {
      return Status::Invalid("relation alphabet differs from query alphabet");
    }
  }

  for (NodeVarId v : query.free_vars()) {
    if (v >= static_cast<NodeVarId>(num_nodes)) {
      return Status::Invalid("free variable is not a node variable");
    }
  }
  return Status::OK();
}

Status ValidateQueryForDb(const EcrpqQuery& query,
                          const Alphabet& db_alphabet) {
  ECRPQ_RETURN_NOT_OK(ValidateQuery(query));
  if (query.NumPathVars() == 0) return Status::OK();
  if (!AlphabetsCompatible(db_alphabet, query.alphabet())) {
    return Status::Invalid(
        "database alphabet is not an id-aligned prefix of the query "
        "alphabet");
  }
  return Status::OK();
}

}  // namespace ecrpq
