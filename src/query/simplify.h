// Static query simplification — semantics-preserving rewrites that can
// *improve the query's regime* under the paper's characterization:
//
//  1. drop relation atoms that are universal (they constrain nothing but
//     inflate cc_vertex / cc_hedge — a universal binary atom can glue two
//     otherwise-independent components into one);
//  2. merge all unary (language) atoms on the same path variable into one
//     intersection atom (cc_hedge shrinks; a query that was formally not a
//     CRPQ because a path variable carried two language atoms becomes
//     one);
//  3. drop unary atoms whose language is A* (same as 1);
//  4. quotient every remaining relation NFA by simulation equivalence
//     (smaller machines for the product constructions downstream).
//
// Universality checks are only attempted up to `max_universality_arity`
// (they cost a letter-universe enumeration).
#ifndef ECRPQ_QUERY_SIMPLIFY_H_
#define ECRPQ_QUERY_SIMPLIFY_H_

#include "common/result.h"
#include "query/ast.h"

namespace ecrpq {

struct SimplifyOptions {
  int max_universality_arity = 3;
  bool reduce_relations = true;
};

struct SimplifyStats {
  int dropped_universal_atoms = 0;
  int merged_unary_atoms = 0;
  int relation_states_before = 0;
  int relation_states_after = 0;
};

Result<EcrpqQuery> SimplifyQuery(const EcrpqQuery& query,
                                 const SimplifyOptions& options = {},
                                 SimplifyStats* stats = nullptr);

// Canonical structural serialization of a query — the plan-cache key
// (eval/planner.h). Two queries map to the same bytes iff they have the
// same structure up to (a) variable NAMES (ids are already positional, so
// alpha-renamed variants serialize identically), (b) atom ORDER (reach and
// relation atoms are serialized in sorted order), and (c) relation display
// names (relations contribute their exact canonical automaton bytes, not
// their labels). Everything the classifier depends on — the two-level
// abstraction, its measures, IsCrpq — is invariant under exactly those
// three quotients, so a classification cached under this key is correct
// for every query that produces it. The serialization is exact (full
// bytes, never a hash), so distinct structures can never collide into one
// cache entry.
std::string CanonicalQueryKey(const EcrpqQuery& query);

}  // namespace ecrpq

#endif  // ECRPQ_QUERY_SIMPLIFY_H_
