// Static query simplification — semantics-preserving rewrites that can
// *improve the query's regime* under the paper's characterization:
//
//  1. drop relation atoms that are universal (they constrain nothing but
//     inflate cc_vertex / cc_hedge — a universal binary atom can glue two
//     otherwise-independent components into one);
//  2. merge all unary (language) atoms on the same path variable into one
//     intersection atom (cc_hedge shrinks; a query that was formally not a
//     CRPQ because a path variable carried two language atoms becomes
//     one);
//  3. drop unary atoms whose language is A* (same as 1);
//  4. quotient every remaining relation NFA by simulation equivalence
//     (smaller machines for the product constructions downstream).
//
// Universality checks are only attempted up to `max_universality_arity`
// (they cost a letter-universe enumeration).
#ifndef ECRPQ_QUERY_SIMPLIFY_H_
#define ECRPQ_QUERY_SIMPLIFY_H_

#include "common/result.h"
#include "query/ast.h"

namespace ecrpq {

struct SimplifyOptions {
  int max_universality_arity = 3;
  bool reduce_relations = true;
};

struct SimplifyStats {
  int dropped_universal_atoms = 0;
  int merged_unary_atoms = 0;
  int relation_states_before = 0;
  int relation_states_after = 0;
};

Result<EcrpqQuery> SimplifyQuery(const EcrpqQuery& query,
                                 const SimplifyOptions& options = {},
                                 SimplifyStats* stats = nullptr);

}  // namespace ecrpq

#endif  // ECRPQ_QUERY_SIMPLIFY_H_
