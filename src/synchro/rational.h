// Rational (binary) word relations, represented by finite transducers.
//
// Completes the hierarchy of paper §1: Recognizable ⊊ Synchronous ⊊
// Rational. CRPQ+Rational *evaluation is undecidable* even for very simple
// rational relations (the paper, citing [2]) — so this class deliberately
// offers no evaluation hook; it exists for membership testing, for the
// example relations the paper names as non-synchronous (suffix, factor,
// scattered subword), and for differential tests against SyncRelation on
// the relations that live in both classes (prefix, equality, ...).
//
// A transducer here is an NFA whose transitions read one optional input
// letter and emit one optional output letter: labels (a | ε, b | ε), not
// both ε (use real ε-transitions for that).
#ifndef ECRPQ_SYNCHRO_RATIONAL_H_
#define ECRPQ_SYNCHRO_RATIONAL_H_

#include <optional>
#include <vector>

#include "automata/alphabet.h"
#include "common/result.h"
#include "synchro/convolution.h"

namespace ecrpq {

class Transducer {
 public:
  struct Transition {
    // kNoLetter means this side consumes/emits nothing on this step.
    static constexpr Symbol kNoLetter = ~Symbol{0};
    Symbol input;
    Symbol output;
    StateId to;
  };

  explicit Transducer(Alphabet alphabet) : alphabet_(std::move(alphabet)) {}

  const Alphabet& alphabet() const { return alphabet_; }

  StateId AddState();
  int NumStates() const { return static_cast<int>(transitions_.size()); }
  void SetInitial(StateId s);
  void SetAccepting(StateId s);
  // At least one side must carry a letter.
  Status AddTransition(StateId from, std::optional<Symbol> input,
                       std::optional<Symbol> output, StateId to);

  // Membership of the pair (u, v): dynamic programming over
  // (position in u, position in v, state) — O(|u|·|v|·|δ|).
  bool Contains(const Word& u, const Word& v) const;

 private:
  Alphabet alphabet_;
  std::vector<std::vector<Transition>> transitions_;
  std::vector<StateId> initial_;
  std::vector<bool> accepting_;
};

// {(u, v) : u is a suffix of v} — rational, NOT synchronous.
Transducer SuffixTransducer(const Alphabet& alphabet);

// {(u, v) : u is a factor (contiguous substring) of v} — rational, NOT
// synchronous.
Transducer FactorTransducer(const Alphabet& alphabet);

// {(u, v) : u is a scattered subword of v} — rational, NOT synchronous.
Transducer SubwordTransducer(const Alphabet& alphabet);

// {(u, v) : u is a prefix of v} — rational AND synchronous (differential
// test target against PrefixRelation).
Transducer PrefixTransducer(const Alphabet& alphabet);

// {(u, u) : u ∈ A*}.
Transducer IdentityTransducer(const Alphabet& alphabet);

}  // namespace ecrpq

#endif  // ECRPQ_SYNCHRO_RATIONAL_H_
