#include "synchro/rational.h"

#include <deque>

#include "common/check.h"
#include "common/hash.h"

namespace ecrpq {

StateId Transducer::AddState() {
  transitions_.emplace_back();
  accepting_.push_back(false);
  return static_cast<StateId>(transitions_.size() - 1);
}

void Transducer::SetInitial(StateId s) {
  ECRPQ_CHECK_LT(s, transitions_.size());
  initial_.push_back(s);
}

void Transducer::SetAccepting(StateId s) {
  ECRPQ_CHECK_LT(s, transitions_.size());
  accepting_[s] = true;
}

Status Transducer::AddTransition(StateId from, std::optional<Symbol> input,
                                 std::optional<Symbol> output, StateId to) {
  if (from >= transitions_.size() || to >= transitions_.size()) {
    return Status::Invalid("transducer state out of range");
  }
  if (!input.has_value() && !output.has_value()) {
    return Status::Invalid("transition must read or write a letter");
  }
  for (const std::optional<Symbol>& side : {input, output}) {
    if (side.has_value() &&
        *side >= static_cast<Symbol>(alphabet_.size())) {
      return Status::Invalid("transition symbol outside alphabet");
    }
  }
  transitions_[from].push_back(
      Transition{input.value_or(Transition::kNoLetter),
                 output.value_or(Transition::kNoLetter), to});
  return Status::OK();
}

bool Transducer::Contains(const Word& u, const Word& v) const {
  // BFS over configurations (i, j, q): consumed i letters of u, emitted j
  // letters of v, in state q.
  const size_t nq = transitions_.size();
  if (nq == 0) return false;
  auto code = [&](size_t i, size_t j, StateId q) {
    return (i * (v.size() + 1) + j) * nq + q;
  };
  std::vector<bool> visited((u.size() + 1) * (v.size() + 1) * nq, false);
  std::deque<std::tuple<size_t, size_t, StateId>> queue;
  for (StateId q : initial_) {
    if (!visited[code(0, 0, q)]) {
      visited[code(0, 0, q)] = true;
      queue.emplace_back(0, 0, q);
    }
  }
  while (!queue.empty()) {
    const auto [i, j, q] = queue.front();
    queue.pop_front();
    if (i == u.size() && j == v.size() && accepting_[q]) return true;
    for (const Transition& t : transitions_[q]) {
      size_t ni = i;
      size_t nj = j;
      if (t.input != Transition::kNoLetter) {
        if (i >= u.size() || u[i] != t.input) continue;
        ni = i + 1;
      }
      if (t.output != Transition::kNoLetter) {
        if (j >= v.size() || v[j] != t.output) continue;
        nj = j + 1;
      }
      if (!visited[code(ni, nj, t.to)]) {
        visited[code(ni, nj, t.to)] = true;
        queue.emplace_back(ni, nj, t.to);
      }
    }
  }
  return false;
}

namespace {

// Shared scaffold: a two-phase transducer. Phase transitions are supplied
// by the caller via flags.
Transducer CopyingCore(const Alphabet& alphabet) {
  Transducer t(alphabet);
  (void)t.AddState();
  return t;
}

}  // namespace

Transducer SuffixTransducer(const Alphabet& alphabet) {
  // State 0: emit v's extra prefix (ε, a); state 1: copy u (a, a).
  Transducer t = CopyingCore(alphabet);
  const StateId copy = t.AddState();
  t.SetInitial(0);
  t.SetAccepting(0);  // u = v = ε ... also u = ε suffix of any v via state 0.
  t.SetAccepting(copy);
  for (Symbol a = 0; a < static_cast<Symbol>(alphabet.size()); ++a) {
    t.AddTransition(0, std::nullopt, a, 0).Check();
    t.AddTransition(0, a, a, copy).Check();
    t.AddTransition(copy, a, a, copy).Check();
  }
  return t;
}

Transducer FactorTransducer(const Alphabet& alphabet) {
  // State 0: skip v-prefix; state 1: copy u; state 2: skip v-suffix.
  Transducer t = CopyingCore(alphabet);
  const StateId copy = t.AddState();
  const StateId tail = t.AddState();
  t.SetInitial(0);
  t.SetAccepting(0);
  t.SetAccepting(copy);
  t.SetAccepting(tail);
  for (Symbol a = 0; a < static_cast<Symbol>(alphabet.size()); ++a) {
    t.AddTransition(0, std::nullopt, a, 0).Check();
    t.AddTransition(0, a, a, copy).Check();
    t.AddTransition(copy, a, a, copy).Check();
    t.AddTransition(copy, std::nullopt, a, tail).Check();
    t.AddTransition(0, std::nullopt, a, tail).Check();  // u = ε case.
    t.AddTransition(tail, std::nullopt, a, tail).Check();
  }
  return t;
}

Transducer SubwordTransducer(const Alphabet& alphabet) {
  // One state: either copy a letter of u or skip a letter of v.
  Transducer t = CopyingCore(alphabet);
  t.SetInitial(0);
  t.SetAccepting(0);
  for (Symbol a = 0; a < static_cast<Symbol>(alphabet.size()); ++a) {
    t.AddTransition(0, a, a, 0).Check();
    t.AddTransition(0, std::nullopt, a, 0).Check();
  }
  return t;
}

Transducer PrefixTransducer(const Alphabet& alphabet) {
  // State 0: copy u; state 1: emit v's extra suffix.
  Transducer t = CopyingCore(alphabet);
  const StateId tail = t.AddState();
  t.SetInitial(0);
  t.SetAccepting(0);
  t.SetAccepting(tail);
  for (Symbol a = 0; a < static_cast<Symbol>(alphabet.size()); ++a) {
    t.AddTransition(0, a, a, 0).Check();
    t.AddTransition(0, std::nullopt, a, tail).Check();
    t.AddTransition(tail, std::nullopt, a, tail).Check();
  }
  return t;
}

Transducer IdentityTransducer(const Alphabet& alphabet) {
  Transducer t = CopyingCore(alphabet);
  t.SetInitial(0);
  t.SetAccepting(0);
  for (Symbol a = 0; a < static_cast<Symbol>(alphabet.size()); ++a) {
    t.AddTransition(0, a, a, 0).Check();
  }
  return t;
}

}  // namespace ecrpq
