// Recognizable word relations: finite unions of cross products
// L_1 × ... × L_k of regular languages.
//
// Recognizable ⊊ Synchronous ⊊ Rational (paper §1). CRPQ extended with
// recognizable relations collapses to unions of CRPQs (see
// query/recognizable.h); this module provides the relation class itself
// and its embedding into SyncRelation, witnessing the strict inclusion
// computationally.
#ifndef ECRPQ_SYNCHRO_RECOGNIZABLE_H_
#define ECRPQ_SYNCHRO_RECOGNIZABLE_H_

#include <vector>

#include "automata/nfa.h"
#include "common/result.h"
#include "synchro/sync_relation.h"

namespace ecrpq {

class RecognizableRelation {
 public:
  // One disjunct: the cross product languages_[0] × ... × languages_[k-1].
  struct Product {
    std::vector<Nfa> languages;  // Symbol-labelled NFAs, one per tape.
  };

  // All products must have exactly `arity` languages.
  static Result<RecognizableRelation> Create(Alphabet alphabet, int arity,
                                             std::vector<Product> products);

  int arity() const { return arity_; }
  const Alphabet& alphabet() const { return alphabet_; }
  const std::vector<Product>& products() const { return products_; }

  bool Contains(std::span<const Word> words) const;

  // The same relation as a synchronous relation (union over products of
  // intersections of per-tape language lifts).
  Result<SyncRelation> ToSynchronous() const;

 private:
  RecognizableRelation(Alphabet alphabet, int arity,
                       std::vector<Product> products)
      : alphabet_(std::move(alphabet)),
        arity_(arity),
        products_(std::move(products)) {}

  Alphabet alphabet_;
  int arity_;
  std::vector<Product> products_;
};

}  // namespace ecrpq

#endif  // ECRPQ_SYNCHRO_RECOGNIZABLE_H_
