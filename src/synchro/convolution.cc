#include "synchro/convolution.h"

#include <algorithm>

namespace ecrpq {

std::vector<Label> Convolve(std::span<const Word> words,
                            const TapePack& pack) {
  ECRPQ_CHECK_EQ(static_cast<int>(words.size()), pack.arity());
  size_t max_len = 0;
  for (const Word& w : words) max_len = std::max(max_len, w.size());
  std::vector<Label> out;
  out.reserve(max_len);
  std::vector<TapeLetter> column(words.size());
  for (size_t t = 0; t < max_len; ++t) {
    for (size_t i = 0; i < words.size(); ++i) {
      column[i] = t < words[i].size() ? static_cast<TapeLetter>(words[i][t])
                                      : kBlank;
    }
    out.push_back(pack.Pack(column));
  }
  return out;
}

Result<std::vector<Word>> Deconvolve(std::span<const Label> columns,
                                     const TapePack& pack) {
  std::vector<Word> words(pack.arity());
  std::vector<bool> finished(pack.arity(), false);
  for (size_t t = 0; t < columns.size(); ++t) {
    bool all_blank = true;
    for (int i = 0; i < pack.arity(); ++i) {
      const TapeLetter letter = pack.Get(columns[t], i);
      if (letter == kBlank) {
        finished[i] = true;
      } else {
        if (finished[i]) {
          return Status::Invalid(
              "invalid convolution: letter after blank on tape " +
              std::to_string(i));
        }
        words[i].push_back(static_cast<Symbol>(letter));
        all_blank = false;
      }
    }
    if (all_blank) {
      return Status::Invalid("invalid convolution: all-blank column at " +
                             std::to_string(t));
    }
  }
  return words;
}

bool IsValidConvolution(std::span<const Label> columns, const TapePack& pack) {
  return Deconvolve(columns, pack).ok();
}

}  // namespace ecrpq
