#include "synchro/sync_relation.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/hash.h"

namespace ecrpq {

Result<SyncRelation> SyncRelation::Create(Alphabet alphabet, int arity,
                                          Nfa nfa) {
  ECRPQ_ASSIGN_OR_RAISE(TapePack pack,
                        TapePack::Create(arity, alphabet.size()));
  // Validate that transition labels are packable values.
  const uint64_t num_labels = pack.NumLabels();
  // Labels are dense codes < product of per-tape radix only when bits are
  // exactly log2; with rounded-up bits the max code can exceed NumLabels.
  // Validate per tape instead.
  const int used_bits = pack.bits_per_tape() * arity;
  for (StateId s = 0; s < static_cast<StateId>(nfa.NumStates()); ++s) {
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      if (t.label == kEpsilon) continue;
      if (used_bits < 64 && (t.label >> used_bits) != 0) {
        return Status::Invalid(
            "relation NFA transition label has bits beyond the packed tapes");
      }
      for (int tape = 0; tape < arity; ++tape) {
        const TapeLetter letter = pack.Get(t.label, tape);
        if (letter != kBlank &&
            letter >= static_cast<TapeLetter>(alphabet.size())) {
          return Status::Invalid(
              "relation NFA transition uses a symbol outside the alphabet");
        }
      }
    }
  }
  (void)num_labels;
  SyncRelation relation(std::move(alphabet), pack, std::move(nfa));
  ECRPQ_DCHECK_INVARIANT(relation);
  return relation;
}

void SyncRelation::CheckInvariants() const {
  pack_.CheckInvariants();
  nfa_.CheckInvariants();
  ECRPQ_CHECK_EQ(pack_.alphabet_size(), alphabet_.size())
      << "SyncRelation: tape pack sized for a different alphabet";
  for (StateId s = 0; s < static_cast<StateId>(nfa_.NumStates()); ++s) {
    for (const Nfa::Transition& t : nfa_.TransitionsFrom(s)) {
      if (t.label == kEpsilon) continue;
      ECRPQ_CHECK(pack_.IsValidLabel(t.label))
          << "SyncRelation: transition label " << t.label
          << " violates the packing discipline (state " << s << ")";
    }
  }
}

bool SyncRelation::Contains(std::span<const Word> words) const {
  ECRPQ_CHECK_EQ(static_cast<int>(words.size()), arity());
  const std::vector<Label> conv = Convolve(words, pack_);
  return nfa_.Accepts(conv);
}

SyncRelation SyncRelation::Normalized() const {
  // Product with the convolution-validity automaton: states are pairs
  // (q, mask) where mask records which tapes have started padding. A letter
  // is admissible from mask m iff no tape in m carries a symbol; tapes with
  // ⊥ join the mask. All-blank letters are inadmissible (no trailing
  // all-blank columns in a canonical convolution). ε-transitions keep mask.
  const int k = arity();
  const uint32_t full_mask = (k >= 32) ? ~uint32_t{0}
                                       : ((uint32_t{1} << k) - 1);
  (void)full_mask;

  std::unordered_map<uint64_t, StateId> id_of;
  std::vector<std::pair<StateId, uint32_t>> states;
  Nfa out;

  auto intern = [&](StateId q, uint32_t mask) -> StateId {
    const uint64_t key = (static_cast<uint64_t>(q) << 32) | mask;
    auto [it, inserted] =
        id_of.emplace(key, static_cast<StateId>(states.size()));
    if (inserted) {
      states.emplace_back(q, mask);
      const StateId id = out.AddState();
      ECRPQ_DCHECK(id == it->second);
      if (nfa_.IsAccepting(q)) out.SetAccepting(id);
    }
    return it->second;
  };

  for (StateId q : nfa_.initial()) {
    out.SetInitial(intern(q, 0));
  }
  for (size_t cur = 0; cur < states.size(); ++cur) {
    const auto [q, mask] = states[cur];
    for (const Nfa::Transition& t : nfa_.TransitionsFrom(q)) {
      if (t.label == kEpsilon) {
        out.AddTransition(static_cast<StateId>(cur), kEpsilon,
                          intern(t.to, mask));
        continue;
      }
      if (pack_.AllTapesBlank(t.label)) continue;
      uint32_t new_mask = mask;
      bool admissible = true;
      for (int tape = 0; tape < k; ++tape) {
        const TapeLetter letter = pack_.Get(t.label, tape);
        if (letter == kBlank) {
          new_mask |= uint32_t{1} << tape;
        } else if (mask & (uint32_t{1} << tape)) {
          admissible = false;
          break;
        }
      }
      if (!admissible) continue;
      out.AddTransition(static_cast<StateId>(cur), t.label,
                        intern(t.to, new_mask));
    }
  }
  out.Trim();
  SyncRelation normalized(alphabet_, pack_, std::move(out));
  ECRPQ_DCHECK_INVARIANT(normalized);
  return normalized;
}

bool SyncRelation::IsEmpty() const { return !Witness().has_value(); }

std::optional<std::vector<Word>> SyncRelation::Witness() const {
  const SyncRelation normalized = Normalized();
  auto witness = normalized.nfa_.ShortestWitness();
  if (!witness.has_value()) return std::nullopt;
  auto words = Deconvolve(*witness, pack_);
  ECRPQ_CHECK(words.ok()) << "normalized relation produced an invalid "
                             "convolution witness";
  return std::move(words).ValueOrDie();
}

std::string SyncRelation::FormatTuple(std::span<const Word> words) const {
  std::string result = "(";
  for (size_t i = 0; i < words.size(); ++i) {
    if (i > 0) result += ", ";
    result += "\"";
    for (Symbol s : words[i]) result += alphabet_.Name(s);
    result += "\"";
  }
  result += ")";
  return result;
}

bool AlphabetsCompatible(const Alphabet& graph_alphabet,
                         const Alphabet& rel_alphabet) {
  if (graph_alphabet.size() > rel_alphabet.size()) return false;
  for (int i = 0; i < graph_alphabet.size(); ++i) {
    if (graph_alphabet.names()[i] != rel_alphabet.names()[i]) return false;
  }
  return true;
}

}  // namespace ecrpq
