#include "synchro/io.h"

#include <charconv>
#include <sstream>
#include <vector>

#include "common/strings.h"

namespace ecrpq {
namespace {

Result<uint64_t> ParseUint(std::string_view token) {
  uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::ParseError("not an unsigned integer: '" +
                              std::string(token) + "'");
  }
  return value;
}

std::string FormatColumn(const SyncRelation& relation, Label label) {
  std::string out = "(";
  for (int tape = 0; tape < relation.arity(); ++tape) {
    if (tape > 0) out += ",";
    const TapeLetter letter = relation.pack().Get(label, tape);
    out += (letter == kBlank) ? "_" : relation.alphabet().Name(letter);
  }
  out += ")";
  return out;
}

}  // namespace

std::string SyncRelationToString(const SyncRelation& relation) {
  std::ostringstream out;
  out << "relation arity " << relation.arity() << "\n";
  out << "alphabet";
  for (const std::string& name : relation.alphabet().names()) {
    out << " " << name;
  }
  out << "\n";
  const Nfa& nfa = relation.nfa();
  out << "states " << nfa.NumStates() << "\n";
  out << "initial";
  for (StateId s : nfa.initial()) out << " " << s;
  out << "\n";
  out << "accepting";
  for (StateId s = 0; s < static_cast<StateId>(nfa.NumStates()); ++s) {
    if (nfa.IsAccepting(s)) out << " " << s;
  }
  out << "\n";
  for (StateId s = 0; s < static_cast<StateId>(nfa.NumStates()); ++s) {
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      out << "trans " << s << " ";
      if (t.label == kEpsilon) {
        out << "eps";
      } else {
        out << FormatColumn(relation, t.label);
      }
      out << " " << t.to << "\n";
    }
  }
  return out.str();
}

Result<SyncRelation> SyncRelationFromString(std::string_view text) {
  int arity = -1;
  Alphabet alphabet;
  Nfa nfa;
  bool have_states = false;
  std::optional<TapePack> pack;

  auto parse_column = [&](std::string_view token) -> Result<Label> {
    if (token.size() < 2 || token.front() != '(' || token.back() != ')') {
      return Status::ParseError("column must look like (a,b,_)");
    }
    const std::vector<std::string> parts =
        SplitString(token.substr(1, token.size() - 2), ',');
    if (static_cast<int>(parts.size()) != arity) {
      return Status::ParseError("column width does not match arity");
    }
    std::vector<TapeLetter> letters(arity);
    for (int i = 0; i < arity; ++i) {
      if (parts[i] == "_") {
        letters[i] = kBlank;
      } else {
        ECRPQ_ASSIGN_OR_RAISE(Symbol sym, alphabet.Require(parts[i]));
        letters[i] = static_cast<TapeLetter>(sym);
      }
    }
    return pack->Pack(letters);
  };

  for (const std::string& raw_line : SplitString(text, '\n')) {
    std::string_view line = StripWhitespace(raw_line);
    const size_t comment = line.find('#');
    if (comment != std::string_view::npos) {
      line = StripWhitespace(line.substr(0, comment));
    }
    if (line.empty()) continue;
    std::vector<std::string> tokens;
    for (const std::string& tok : SplitString(line, ' ')) {
      if (!tok.empty()) tokens.push_back(tok);
    }
    if (tokens.empty()) continue;
    const std::string& kind = tokens[0];
    if (kind == "relation") {
      if (tokens.size() != 3 || tokens[1] != "arity") {
        return Status::ParseError("want 'relation arity <k>'");
      }
      ECRPQ_ASSIGN_OR_RAISE(uint64_t k, ParseUint(tokens[2]));
      arity = static_cast<int>(k);
    } else if (kind == "alphabet") {
      for (size_t i = 1; i < tokens.size(); ++i) alphabet.Intern(tokens[i]);
    } else if (kind == "states") {
      if (arity < 1) return Status::ParseError("states before arity");
      if (alphabet.size() == 0) {
        return Status::ParseError("states before alphabet");
      }
      ECRPQ_ASSIGN_OR_RAISE(TapePack created,
                            TapePack::Create(arity, alphabet.size()));
      pack = created;
      if (tokens.size() != 2) return Status::ParseError("states: want count");
      ECRPQ_ASSIGN_OR_RAISE(uint64_t n, ParseUint(tokens[1]));
      nfa = Nfa(static_cast<int>(n));
      have_states = true;
    } else if (kind == "initial" || kind == "accepting") {
      if (!have_states) return Status::ParseError(kind + " before states");
      for (size_t i = 1; i < tokens.size(); ++i) {
        ECRPQ_ASSIGN_OR_RAISE(uint64_t s, ParseUint(tokens[i]));
        if (s >= static_cast<uint64_t>(nfa.NumStates())) {
          return Status::ParseError(kind + " state out of range");
        }
        if (kind == "initial") {
          nfa.SetInitial(static_cast<StateId>(s));
        } else {
          nfa.SetAccepting(static_cast<StateId>(s));
        }
      }
    } else if (kind == "trans") {
      if (!have_states) return Status::ParseError("trans before states");
      if (tokens.size() != 4) {
        return Status::ParseError("trans: want 'trans from (col) to'");
      }
      ECRPQ_ASSIGN_OR_RAISE(uint64_t from, ParseUint(tokens[1]));
      ECRPQ_ASSIGN_OR_RAISE(uint64_t to, ParseUint(tokens[3]));
      if (from >= static_cast<uint64_t>(nfa.NumStates()) ||
          to >= static_cast<uint64_t>(nfa.NumStates())) {
        return Status::ParseError("trans state out of range");
      }
      Label label;
      if (tokens[2] == "eps") {
        label = kEpsilon;
      } else {
        ECRPQ_ASSIGN_OR_RAISE(label, parse_column(tokens[2]));
      }
      nfa.AddTransition(static_cast<StateId>(from), label,
                        static_cast<StateId>(to));
    } else {
      return Status::ParseError("unknown directive: " + kind);
    }
  }
  if (arity < 1) return Status::ParseError("missing 'relation arity' line");
  if (!have_states) return Status::ParseError("missing 'states' line");
  return SyncRelation::Create(std::move(alphabet), arity, std::move(nfa));
}

}  // namespace ecrpq
