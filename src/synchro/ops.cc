#include "synchro/ops.h"

#include <algorithm>
#include <set>
#include <string>
#include <utility>

#include "automata/ops.h"
#include "automata/simulation.h"
#include "synchro/builders.h"

namespace ecrpq {
namespace {

Status CheckSameShape(const SyncRelation& a, const SyncRelation& b) {
  if (a.arity() != b.arity()) {
    return Status::Invalid("relation arities differ: " +
                           std::to_string(a.arity()) + " vs " +
                           std::to_string(b.arity()));
  }
  if (!(a.alphabet() == b.alphabet())) {
    return Status::Invalid("relation alphabets differ");
  }
  return Status::OK();
}

}  // namespace

Result<SyncRelation> Intersect(const SyncRelation& a, const SyncRelation& b) {
  ECRPQ_RETURN_NOT_OK(CheckSameShape(a, b));
  // Label-level product is sound for tuple membership: a tuple is in both
  // relations iff both NFAs accept its canonical convolution.
  Nfa product = ::ecrpq::Intersect(a.nfa(), b.nfa());
  product.Trim();
  return SyncRelation::Create(a.alphabet(), a.arity(), std::move(product));
}

Result<SyncRelation> Union(const SyncRelation& a, const SyncRelation& b) {
  ECRPQ_RETURN_NOT_OK(CheckSameShape(a, b));
  return SyncRelation::Create(a.alphabet(), a.arity(),
                              ::ecrpq::Union(a.nfa(), b.nfa()));
}

Result<SyncRelation> Complement(const SyncRelation& a) {
  // Complement at the language level over the full letter universe, then
  // normalize: the relation complement is (valid convolutions) \ L(nfa).
  ECRPQ_ASSIGN_OR_RAISE(std::vector<Label> universe,
                        a.pack().EnumerateAllLabels());
  Nfa complemented = ::ecrpq::Complement(a.nfa(), universe);
  ECRPQ_ASSIGN_OR_RAISE(
      SyncRelation raw,
      SyncRelation::Create(a.alphabet(), a.arity(), std::move(complemented)));
  return raw.Normalized();
}

Result<SyncRelation> Project(const SyncRelation& a,
                             const std::vector<int>& tapes) {
  if (tapes.empty()) return Status::Invalid("projection needs >= 1 tape");
  for (int t : tapes) {
    if (t < 0 || t >= a.arity()) {
      return Status::Invalid("projection tape out of range");
    }
  }
  for (size_t i = 0; i < tapes.size(); ++i) {
    for (size_t j = i + 1; j < tapes.size(); ++j) {
      if (tapes[i] == tapes[j]) {
        return Status::Invalid("projection tapes must be distinct");
      }
    }
  }
  const int new_arity = static_cast<int>(tapes.size());
  ECRPQ_ASSIGN_OR_RAISE(TapePack new_pack,
                        TapePack::Create(new_arity, a.alphabet().size()));
  // Normalize first so that only valid convolutions contribute; then
  // relabel, turning columns that become all-blank into ε (they correspond
  // to positions where only dropped tapes carried symbols).
  const SyncRelation norm = a.Normalized();
  const Nfa& src = norm.nfa();
  Nfa out(src.NumStates());
  for (StateId s : src.initial()) out.SetInitial(s);
  std::vector<TapeLetter> column(new_arity);
  for (StateId s = 0; s < static_cast<StateId>(src.NumStates()); ++s) {
    if (src.IsAccepting(s)) out.SetAccepting(s);
    for (const Nfa::Transition& t : src.TransitionsFrom(s)) {
      if (t.label == kEpsilon) {
        out.AddTransition(s, kEpsilon, t.to);
        continue;
      }
      for (int i = 0; i < new_arity; ++i) {
        column[i] = a.pack().Get(t.label, tapes[i]);
      }
      const Label new_label = new_pack.Pack(column);
      out.AddTransition(
          s, new_pack.AllTapesBlank(new_label) ? kEpsilon : new_label, t.to);
    }
  }
  out.Trim();
  return SyncRelation::Create(a.alphabet(), new_arity, std::move(out));
}

Result<SyncRelation> Reindex(const SyncRelation& a,
                             const std::vector<int>& tape_map, int new_arity) {
  if (static_cast<int>(tape_map.size()) != a.arity()) {
    return Status::Invalid("tape_map size must equal relation arity");
  }
  std::vector<bool> used(new_arity, false);
  for (int t : tape_map) {
    if (t < 0 || t >= new_arity) {
      return Status::Invalid("tape_map target out of range");
    }
    if (used[t]) return Status::Invalid("tape_map must be injective");
    used[t] = true;
  }
  ECRPQ_ASSIGN_OR_RAISE(TapePack new_pack,
                        TapePack::Create(new_arity, a.alphabet().size()));
  ECRPQ_ASSIGN_OR_RAISE(std::vector<Label> universe,
                        new_pack.EnumerateAllLabels());

  // States of `a` while its own tapes run, plus one pad state for after all
  // of `a`'s tapes have ended (other tapes may continue).
  const Nfa& src = a.nfa();
  const StateId pad = static_cast<StateId>(src.NumStates());
  Nfa out(src.NumStates() + 1);
  for (StateId s : src.initial()) out.SetInitial(s);
  out.SetAccepting(pad);
  for (StateId s = 0; s < static_cast<StateId>(src.NumStates()); ++s) {
    if (src.IsAccepting(s)) out.SetAccepting(s);
    for (const Nfa::Transition& t : src.TransitionsFrom(s)) {
      if (t.label == kEpsilon) out.AddTransition(s, kEpsilon, t.to);
    }
  }
  std::vector<TapeLetter> sub(a.arity());
  for (const Label l : universe) {
    if (new_pack.AllTapesBlank(l)) continue;
    bool all_blank_sub = true;
    for (int i = 0; i < a.arity(); ++i) {
      sub[i] = new_pack.Get(l, tape_map[i]);
      all_blank_sub = all_blank_sub && (sub[i] == kBlank);
    }
    if (all_blank_sub) {
      // All of `a`'s tapes have ended at this column.
      for (StateId s = 0; s < static_cast<StateId>(src.NumStates()); ++s) {
        if (src.IsAccepting(s)) out.AddTransition(s, l, pad);
      }
      out.AddTransition(pad, l, pad);
    } else {
      const Label sub_label = a.pack().Pack(sub);
      for (StateId s = 0; s < static_cast<StateId>(src.NumStates()); ++s) {
        for (const Nfa::Transition& t : src.TransitionsFrom(s)) {
          if (t.label == sub_label) out.AddTransition(s, l, t.to);
        }
      }
    }
  }
  return SyncRelation::Create(a.alphabet(), new_arity, std::move(out));
}

Result<SyncRelation> JoinComponents(const Alphabet& alphabet,
                                    const std::vector<TapeMapping>& parts,
                                    int joint_arity) {
  if (parts.empty()) {
    return UniversalRelation(alphabet, joint_arity);
  }
  ECRPQ_ASSIGN_OR_RAISE(
      SyncRelation acc,
      Reindex(*parts[0].relation, parts[0].tape_map, joint_arity));
  for (size_t i = 1; i < parts.size(); ++i) {
    ECRPQ_ASSIGN_OR_RAISE(
        SyncRelation next,
        Reindex(*parts[i].relation, parts[i].tape_map, joint_arity));
    ECRPQ_ASSIGN_OR_RAISE(acc, Intersect(acc, next));
  }
  return acc;
}

Result<SyncRelation> ReduceRelation(const SyncRelation& a) {
  return SyncRelation::Create(a.alphabet(), a.arity(),
                              ReduceBySimulation(a.nfa()));
}

Result<SyncRelation> Compose(const SyncRelation& a, const SyncRelation& b) {
  if (a.arity() != 2 || b.arity() != 2) {
    return Status::Invalid("composition requires binary relations");
  }
  ECRPQ_RETURN_NOT_OK(CheckSameShape(a, b));
  // Tapes of the intermediate 3-ary relation: 0 = x, 1 = y, 2 = z.
  ECRPQ_ASSIGN_OR_RAISE(SyncRelation a3, Reindex(a, {0, 1}, 3));
  ECRPQ_ASSIGN_OR_RAISE(SyncRelation b3, Reindex(b, {1, 2}, 3));
  ECRPQ_ASSIGN_OR_RAISE(SyncRelation both, Intersect(a3, b3));
  return Project(both, {0, 2});
}

Result<bool> EquivalentRelations(const SyncRelation& a,
                                 const SyncRelation& b) {
  ECRPQ_RETURN_NOT_OK(CheckSameShape(a, b));
  ECRPQ_ASSIGN_OR_RAISE(std::vector<Label> universe,
                        a.pack().EnumerateAllLabels());
  const SyncRelation na = a.Normalized();
  const SyncRelation nb = b.Normalized();
  return Equivalent(na.nfa(), nb.nfa(), universe);
}

Result<bool> RelationIncluded(const SyncRelation& a, const SyncRelation& b) {
  ECRPQ_RETURN_NOT_OK(CheckSameShape(a, b));
  ECRPQ_ASSIGN_OR_RAISE(std::vector<Label> universe,
                        a.pack().EnumerateAllLabels());
  const SyncRelation na = a.Normalized();
  const SyncRelation nb = b.Normalized();
  return Included(na.nfa(), nb.nfa(), universe);
}

Result<std::vector<std::vector<Word>>> EnumerateTuples(const SyncRelation& a,
                                                       size_t limit,
                                                       size_t max_columns) {
  // Breadth-first over (state, partial convolution) of the normalized NFA;
  // accepting states yield tuples. BFS order = convolution-length order.
  const SyncRelation norm = a.Normalized();
  std::vector<std::vector<Word>> out;
  if (limit == 0) return out;
  struct Node {
    StateId state;
    std::vector<Label> columns;
  };
  std::vector<Node> frontier;
  std::set<std::pair<StateId, std::vector<Label>>> seen_nodes;
  std::set<std::vector<Label>> emitted;
  auto push = [&](std::vector<Node>* dst, StateId s,
                  std::vector<Label> columns) {
    if (seen_nodes.emplace(s, columns).second) {
      dst->push_back(Node{s, std::move(columns)});
    }
  };
  {
    std::vector<StateId> init(norm.nfa().initial());
    norm.nfa().EpsilonClose(&init);
    for (StateId s : init) push(&frontier, s, {});
  }
  for (size_t depth = 0; depth <= max_columns && !frontier.empty(); ++depth) {
    for (const Node& node : frontier) {
      if (norm.nfa().IsAccepting(node.state) &&
          emitted.insert(node.columns).second) {
        ECRPQ_ASSIGN_OR_RAISE(std::vector<Word> tuple,
                              Deconvolve(node.columns, a.pack()));
        out.push_back(std::move(tuple));
        if (out.size() >= limit) return out;
      }
    }
    std::vector<Node> next;
    for (const Node& node : frontier) {
      for (const Nfa::Transition& t :
           norm.nfa().TransitionsFrom(node.state)) {
        if (t.label == kEpsilon) continue;  // Handled via closure below.
        std::vector<Label> columns = node.columns;
        columns.push_back(t.label);
        std::vector<StateId> closure{t.to};
        norm.nfa().EpsilonClose(&closure);
        for (StateId s : closure) push(&next, s, columns);
      }
    }
    frontier = std::move(next);
  }
  return out;
}

}  // namespace ecrpq
