// Boolean and structural operations on synchronous relations.
//
// Synchronous relations are effectively closed under all of these (paper §2,
// citing [5]); the implementations make the closure effective. Complement
// and Project must normalize first — see sync_relation.h for why.
#ifndef ECRPQ_SYNCHRO_OPS_H_
#define ECRPQ_SYNCHRO_OPS_H_

#include <vector>

#include "common/result.h"
#include "synchro/sync_relation.h"

namespace ecrpq {

// a ∩ b. Arities and alphabets must match.
Result<SyncRelation> Intersect(const SyncRelation& a, const SyncRelation& b);

// a ∪ b. Arities and alphabets must match.
Result<SyncRelation> Union(const SyncRelation& a, const SyncRelation& b);

// (A*)^k \ a. Determinizes over the full packed-letter universe, so the cost
// is exponential in the NFA size in the worst case and the letter universe
// (|A|+1)^k must stay enumerable.
Result<SyncRelation> Complement(const SyncRelation& a);

// Projection onto the given tapes (in the given order; indices must be
// distinct). E.g. Project(R, {1}) of a binary R is its second-coordinate
// language; Project(R, {1, 0}) swaps the tapes.
Result<SyncRelation> Project(const SyncRelation& a,
                             const std::vector<int>& tapes);

// Embeds `a` into a wider relation of `new_arity` tapes: tape i of `a`
// becomes tape tape_map[i]; the remaining tapes are unconstrained (any
// word). This is cylindrification + permutation, the building block of the
// Lemma 4.1 component merge.
Result<SyncRelation> Reindex(const SyncRelation& a,
                             const std::vector<int>& tape_map, int new_arity);

// The product construction of Lemma 4.1: given relations R_1, ..., R_l and,
// for each, a mapping of its tapes into {0, ..., joint_arity-1}, returns the
// joint relation R with f(π̄) ∈ R iff f(π̄_i) ∈ R_i for all i. State count is
// bounded by the product of the operands' state counts (plus pad states) —
// polynomial when cc_vertex and cc_hedge are constants, as the paper notes.
struct TapeMapping {
  const SyncRelation* relation;
  std::vector<int> tape_map;  // tape i of *relation -> tape_map[i] of joint.
};
Result<SyncRelation> JoinComponents(const Alphabet& alphabet,
                                    const std::vector<TapeMapping>& parts,
                                    int joint_arity);

// Same relation with a simulation-quotiented NFA (automata/simulation.h):
// cheap shrinking before the multiplicative product constructions.
Result<SyncRelation> ReduceRelation(const SyncRelation& a);

// Composition of binary relations: a ∘ b = {(x, z) : ∃y a(x, y) ∧ b(y, z)}.
// Synchronous relations are closed under composition (they are the
// FO-interpretable relations of automatic structures); implemented as
// Reindex to three tapes + Intersect + Project — so it inherits the
// letter-universe costs of those operations.
Result<SyncRelation> Compose(const SyncRelation& a, const SyncRelation& b);

// Do the two relations contain exactly the same tuples?
Result<bool> EquivalentRelations(const SyncRelation& a, const SyncRelation& b);

// Is every tuple of `a` a tuple of `b`? (Decidable for synchronous
// relations — one of the paper's reasons to prefer them over Rational.)
Result<bool> RelationIncluded(const SyncRelation& a, const SyncRelation& b);

// Up to `limit` tuples of the relation in order of convolution length
// (shortest first; ties in unspecified order). Convolutions longer than
// `max_columns` are cut off, so the enumeration always terminates.
Result<std::vector<std::vector<Word>>> EnumerateTuples(const SyncRelation& a,
                                                       size_t limit,
                                                       size_t max_columns = 32);

}  // namespace ecrpq

#endif  // ECRPQ_SYNCHRO_OPS_H_
