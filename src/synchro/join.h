// JoinMachine: the *lazy* counterpart of JoinComponents (Lemma 4.1).
//
// Evaluating an ECRPQ requires running the conjunction of all relation atoms
// in one G^rel connected component over a shared set of path variables.
// Materializing the merged automaton (ops.h JoinComponents) pays an
// (|A|+1)^r letter-enumeration cost up front. The evaluator instead only
// ever feeds *concrete* packed letters derived from graph edges, so this
// class exposes the merged automaton as a deterministic transition system,
// built on demand:
//
//  - each component relation is determinized lazily (subset construction,
//    subsets interned per component);
//  - a joint state is a vector of per-component subset ids;
//  - padding is handled with a virtual "pad" element inside subsets: once
//    all tapes of a component read ⊥, the component survives iff it had
//    accepted (or its NFA explicitly continues on ⊥^k letters).
//
// The machine is deterministic, which makes it directly usable as the
// automaton component of the graph-product searches in graphdb/tuple_search.
#ifndef ECRPQ_SYNCHRO_JOIN_H_
#define ECRPQ_SYNCHRO_JOIN_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "synchro/sync_relation.h"

namespace ecrpq {

class JoinMachine {
 public:
  struct Component {
    const SyncRelation* relation;
    // tape i of *relation -> tape tape_map[i] of the joint machine.
    std::vector<int> tape_map;
  };

  // Joint state: one subset id per component.
  using State = std::vector<uint32_t>;

  // Validates arities/alphabets and tape maps. Relations must stay alive for
  // the lifetime of the machine.
  static Result<JoinMachine> Create(const Alphabet& alphabet,
                                    std::vector<Component> components,
                                    int joint_arity);

  int joint_arity() const { return joint_arity_; }
  const TapePack& pack() const { return pack_; }

  State Initial();

  // Deterministic step on a packed joint letter. A present but empty
  // component subset marks a dead state — test with IsDead.
  State Next(const State& state, Label joint_label);

  bool IsDead(const State& state) const;

  // True iff every component currently accepts (contains an accepting NFA
  // state or the pad marker).
  bool IsAccepting(const State& state) const;

  // Diagnostics: total interned subsets across components.
  size_t NumInternedSubsets() const;

 private:
  // Lazily determinized view of one component.
  struct Lazy {
    const SyncRelation* relation;
    std::vector<int> tape_map;
    // Pad marker id = relation->nfa().NumStates().
    StateId pad_id;
    std::map<std::vector<StateId>, uint32_t> subset_ids;
    std::vector<std::vector<StateId>> subsets;
    std::vector<bool> subset_accepting;
    // Transition cache, parallel to `subsets`: packed sub-label -> subset id.
    std::vector<std::unordered_map<Label, uint32_t>> move_cache;
  };

  JoinMachine(const Alphabet& alphabet, std::vector<Component> components,
              int joint_arity, TapePack pack);

  uint32_t InternSubset(Lazy* lazy, std::vector<StateId> subset);
  uint32_t MoveComponent(Lazy* lazy, uint32_t subset_id, Label sub_label,
                         bool sub_all_blank);

  Alphabet alphabet_;
  int joint_arity_;
  TapePack pack_;
  std::vector<Lazy> lazies_;
};

}  // namespace ecrpq

#endif  // ECRPQ_SYNCHRO_JOIN_H_
