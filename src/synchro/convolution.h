// Convolution of word tuples: w1 ⊗ ... ⊗ wk.
//
// The convolution is the smallest word over (A ∪ {⊥})^k whose projection on
// tape i spells w_i followed by blanks. E.g. aab ⊗ c ⊗ bb =
// (a,c,b)(a,⊥,b)(b,⊥,⊥). Synchronous relations are exactly the relations
// whose convolution language is regular (paper §2).
#ifndef ECRPQ_SYNCHRO_CONVOLUTION_H_
#define ECRPQ_SYNCHRO_CONVOLUTION_H_

#include <span>
#include <vector>

#include "automata/alphabet.h"
#include "automata/nfa.h"
#include "common/result.h"
#include "synchro/tape_pack.h"

namespace ecrpq {

// A word over the symbol alphabet (label of a path in a graph database).
using Word = std::vector<Symbol>;

// Packs the canonical convolution of `words` (one per tape).
std::vector<Label> Convolve(std::span<const Word> words, const TapePack& pack);

// Inverse of Convolve. Fails if `columns` is not a valid convolution (a
// letter following a blank on the same tape, or a trailing all-blank column).
Result<std::vector<Word>> Deconvolve(std::span<const Label> columns,
                                     const TapePack& pack);

// True iff `columns` is the canonical convolution of some word tuple.
bool IsValidConvolution(std::span<const Label> columns, const TapePack& pack);

}  // namespace ecrpq

#endif  // ECRPQ_SYNCHRO_CONVOLUTION_H_
