// SyncRelation: a k-ary synchronous (regular/automatic) word relation,
// represented as an NFA over packed multi-tape letters (tape_pack.h).
//
// Membership semantics: a tuple (w1, ..., wk) is in the relation iff the NFA
// accepts the canonical convolution w1 ⊗ ... ⊗ wk. The NFA is *not* required
// to reject invalid convolutions; language-level operations that need
// canonicity (complement, equivalence, projection, witness search) first
// normalize via the 2^k-state convolution-validity product (Normalized()).
#ifndef ECRPQ_SYNCHRO_SYNC_RELATION_H_
#define ECRPQ_SYNCHRO_SYNC_RELATION_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "automata/alphabet.h"
#include "automata/nfa.h"
#include "common/result.h"
#include "synchro/convolution.h"
#include "synchro/tape_pack.h"

namespace ecrpq {

class SyncRelation {
 public:
  // `nfa` must use labels packed for (arity, alphabet.size()).
  static Result<SyncRelation> Create(Alphabet alphabet, int arity, Nfa nfa);

  int arity() const { return pack_.arity(); }
  const Alphabet& alphabet() const { return alphabet_; }
  const TapePack& pack() const { return pack_; }
  const Nfa& nfa() const { return nfa_; }
  Nfa* mutable_nfa() { return &nfa_; }

  // Tuple membership. `words` must have `arity()` entries; symbols must be
  // valid for `alphabet()`.
  bool Contains(std::span<const Word> words) const;

  // Equivalent relation whose NFA accepts exactly the valid convolutions of
  // the relation (no garbage words). States multiply by at most 2^arity, and
  // only reachable (state, finished-tapes-mask) pairs are materialized.
  SyncRelation Normalized() const;

  // True iff the relation contains no tuple.
  bool IsEmpty() const;

  // A tuple with a shortest convolution, or nullopt if empty.
  std::optional<std::vector<Word>> Witness() const;

  // Human-readable tuple rendering, e.g. ("ab", "b") using symbol names.
  std::string FormatTuple(std::span<const Word> words) const;

  // Arity/padding discipline (fires ECRPQ_CHECK on violation, any build
  // mode): the pack matches the alphabet, the NFA is structurally sound,
  // and every non-ε transition label is a valid packed letter — no stray
  // high bits, every tape field ⊥ or an in-alphabet symbol. Re-asserted via
  // ECRPQ_DCHECK_INVARIANT after construction and normalization; callers
  // mutating through mutable_nfa() should re-check explicitly.
  void CheckInvariants() const;

 private:
  SyncRelation(Alphabet alphabet, TapePack pack, Nfa nfa)
      : alphabet_(std::move(alphabet)), pack_(pack), nfa_(std::move(nfa)) {}

  Alphabet alphabet_;
  TapePack pack_;
  Nfa nfa_;
};

// True when `graph_alphabet` is an id-aligned prefix of `rel_alphabet`:
// every graph symbol has the same id and name in the relation's alphabet.
// Query evaluation requires this so that packed letters built from graph
// edge symbols are meaningful to the relation automaton.
bool AlphabetsCompatible(const Alphabet& graph_alphabet,
                         const Alphabet& rel_alphabet);

}  // namespace ecrpq

#endif  // ECRPQ_SYNCHRO_SYNC_RELATION_H_
