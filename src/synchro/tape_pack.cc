#include "synchro/tape_pack.h"

#include <string>

namespace ecrpq {

Result<TapePack> TapePack::Create(int arity, int alphabet_size) {
  if (arity < 1) return Status::Invalid("arity must be >= 1");
  if (alphabet_size < 1) return Status::Invalid("alphabet must be non-empty");
  int bits = 1;
  while ((uint64_t{1} << bits) < static_cast<uint64_t>(alphabet_size) + 1) {
    ++bits;
  }
  if (bits * arity > 64) {
    return Status::CapacityExceeded(
        "cannot pack " + std::to_string(arity) + " tapes over alphabet of " +
        std::to_string(alphabet_size) + " symbols into 64 bits");
  }
  return TapePack(arity, alphabet_size, bits);
}

uint64_t TapePack::NumLabels() const {
  uint64_t n = 1;
  for (int i = 0; i < arity_; ++i) n *= static_cast<uint64_t>(alphabet_size_) + 1;
  return n;
}

Label TapePack::Pack(std::span<const TapeLetter> letters) const {
  ECRPQ_DCHECK(static_cast<int>(letters.size()) == arity_);
  Label label = 0;
  for (int i = 0; i < arity_; ++i) {
    uint64_t v;
    if (letters[i] == kBlank) {
      v = 0;
    } else {
      ECRPQ_DCHECK(letters[i] < static_cast<TapeLetter>(alphabet_size_));
      v = static_cast<uint64_t>(letters[i]) + 1;
    }
    label |= v << (bits_ * i);
  }
  return label;
}

Label TapePack::Set(Label label, int tape, TapeLetter letter) const {
  ECRPQ_DCHECK(tape < arity_);
  const uint64_t v = (letter == kBlank) ? 0 : static_cast<uint64_t>(letter) + 1;
  ECRPQ_DCHECK(v <= mask_);
  label &= ~(mask_ << (bits_ * tape));
  return label | (v << (bits_ * tape));
}

bool TapePack::IsValidLabel(Label label) const {
  const int used_bits = bits_ * arity_;
  if (used_bits < 64 && (label >> used_bits) != 0) return false;
  for (int tape = 0; tape < arity_; ++tape) {
    const uint64_t v = (label >> (bits_ * tape)) & mask_;
    // 0 encodes ⊥; otherwise v-1 must be a symbol id.
    if (v > static_cast<uint64_t>(alphabet_size_)) return false;
  }
  return true;
}

void TapePack::CheckInvariants() const {
  ECRPQ_CHECK_GE(arity_, 1) << "TapePack: arity must be positive";
  ECRPQ_CHECK_GE(alphabet_size_, 1) << "TapePack: alphabet must be non-empty";
  ECRPQ_CHECK((uint64_t{1} << bits_) >=
              static_cast<uint64_t>(alphabet_size_) + 1)
      << "TapePack: per-tape bit width too small for alphabet + blank";
  ECRPQ_CHECK_LE(bits_ * arity_, 64)
      << "TapePack: tapes do not fit into a 64-bit label";
  ECRPQ_CHECK_EQ(mask_, (uint64_t{1} << bits_) - 1)
      << "TapePack: mask out of sync with bit width";
}

Result<std::vector<Label>> TapePack::EnumerateAllLabels(uint64_t limit) const {
  const uint64_t n = NumLabels();
  if (n > limit) {
    return Status::CapacityExceeded(
        "label universe has " + std::to_string(n) +
        " letters, above the limit of " + std::to_string(limit));
  }
  std::vector<Label> labels;
  labels.reserve(n);
  std::vector<TapeLetter> letters(arity_, kBlank);
  while (true) {
    labels.push_back(Pack(letters));
    // Mixed-radix increment: kBlank -> 0 -> 1 -> ... -> |A|-1 -> wrap.
    int i = 0;
    for (; i < arity_; ++i) {
      if (letters[i] == kBlank) {
        letters[i] = 0;
        break;
      }
      if (letters[i] + 1 < static_cast<TapeLetter>(alphabet_size_)) {
        ++letters[i];
        break;
      }
      letters[i] = kBlank;
    }
    if (i == arity_) break;
  }
  return labels;
}

}  // namespace ecrpq
