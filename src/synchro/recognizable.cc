#include "synchro/recognizable.h"

#include <utility>

#include "common/check.h"
#include "synchro/builders.h"
#include "synchro/ops.h"

namespace ecrpq {

Result<RecognizableRelation> RecognizableRelation::Create(
    Alphabet alphabet, int arity, std::vector<Product> products) {
  if (arity < 1) return Status::Invalid("arity must be >= 1");
  for (const Product& product : products) {
    if (static_cast<int>(product.languages.size()) != arity) {
      return Status::Invalid(
          "every product needs exactly one language per tape");
    }
    for (const Nfa& lang : product.languages) {
      for (const Label label : lang.CollectLabels()) {
        if (label >= static_cast<Label>(alphabet.size())) {
          return Status::Invalid("language uses symbol outside alphabet");
        }
      }
    }
  }
  return RecognizableRelation(std::move(alphabet), arity,
                              std::move(products));
}

bool RecognizableRelation::Contains(std::span<const Word> words) const {
  ECRPQ_CHECK_EQ(static_cast<int>(words.size()), arity_);
  for (const Product& product : products_) {
    bool all = true;
    for (int i = 0; i < arity_ && all; ++i) {
      std::vector<Label> word(words[i].begin(), words[i].end());
      all = product.languages[i].Accepts(word);
    }
    if (all) return true;
  }
  return false;
}

Result<SyncRelation> RecognizableRelation::ToSynchronous() const {
  // Union over products; each product is the intersection of per-tape
  // language lifts.
  std::optional<SyncRelation> acc;
  for (const Product& product : products_) {
    std::optional<SyncRelation> product_rel;
    for (int i = 0; i < arity_; ++i) {
      ECRPQ_ASSIGN_OR_RAISE(
          SyncRelation lifted,
          LanguageLift(alphabet_, product.languages[i], arity_, i));
      if (!product_rel.has_value()) {
        product_rel = std::move(lifted);
      } else {
        ECRPQ_ASSIGN_OR_RAISE(product_rel, Intersect(*product_rel, lifted));
      }
    }
    if (!acc.has_value()) {
      acc = std::move(*product_rel);
    } else {
      ECRPQ_ASSIGN_OR_RAISE(acc, Union(*acc, *product_rel));
    }
  }
  if (!acc.has_value()) {
    // Empty union: the empty relation.
    Nfa empty(1);
    empty.SetInitial(0);
    return SyncRelation::Create(alphabet_, arity_, std::move(empty));
  }
  return std::move(*acc);
}

}  // namespace ecrpq
