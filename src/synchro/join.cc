#include "synchro/join.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"

namespace ecrpq {

Result<JoinMachine> JoinMachine::Create(const Alphabet& alphabet,
                                        std::vector<Component> components,
                                        int joint_arity) {
  ECRPQ_ASSIGN_OR_RAISE(TapePack pack,
                        TapePack::Create(joint_arity, alphabet.size()));
  for (const Component& c : components) {
    if (c.relation == nullptr) return Status::Invalid("null relation");
    if (!(c.relation->alphabet() == alphabet)) {
      return Status::Invalid("component alphabet differs from joint alphabet");
    }
    if (static_cast<int>(c.tape_map.size()) != c.relation->arity()) {
      return Status::Invalid("tape_map size must equal relation arity");
    }
    std::vector<bool> used(joint_arity, false);
    for (int t : c.tape_map) {
      if (t < 0 || t >= joint_arity) {
        return Status::Invalid("tape_map target out of range");
      }
      if (used[t]) {
        return Status::Invalid(
            "tape_map must be injective (a path variable appears at most "
            "once per relation atom)");
      }
      used[t] = true;
    }
  }
  return JoinMachine(alphabet, std::move(components), joint_arity, pack);
}

JoinMachine::JoinMachine(const Alphabet& alphabet,
                         std::vector<Component> components, int joint_arity,
                         TapePack pack)
    : alphabet_(alphabet), joint_arity_(joint_arity), pack_(pack) {
  lazies_.reserve(components.size());
  for (Component& c : components) {
    Lazy lazy;
    lazy.relation = c.relation;
    lazy.tape_map = std::move(c.tape_map);
    lazy.pad_id = static_cast<StateId>(c.relation->nfa().NumStates());
    lazies_.push_back(std::move(lazy));
  }
}

uint32_t JoinMachine::InternSubset(Lazy* lazy, std::vector<StateId> subset) {
  std::sort(subset.begin(), subset.end());
  subset.erase(std::unique(subset.begin(), subset.end()), subset.end());
  auto [it, inserted] = lazy->subset_ids.emplace(
      subset, static_cast<uint32_t>(lazy->subsets.size()));
  if (inserted) {
    bool accepting = false;
    for (StateId s : subset) {
      if (s == lazy->pad_id || lazy->relation->nfa().IsAccepting(s)) {
        accepting = true;
        break;
      }
    }
    lazy->subsets.push_back(std::move(subset));
    lazy->subset_accepting.push_back(accepting);
    lazy->move_cache.emplace_back();
  }
  return it->second;
}

uint32_t JoinMachine::MoveComponent(Lazy* lazy, uint32_t subset_id,
                                    Label sub_label, bool sub_all_blank) {
  auto& cache = lazy->move_cache[subset_id];
  auto cached = cache.find(sub_label);
  if (cached != cache.end()) return cached->second;

  const Nfa& nfa = lazy->relation->nfa();
  const std::vector<StateId>& subset = lazy->subsets[subset_id];
  std::vector<StateId> next;
  bool add_pad = false;
  for (StateId s : subset) {
    if (s == lazy->pad_id) {
      // Once padding, stay padding (only on all-blank sub-letters).
      if (sub_all_blank) add_pad = true;
      continue;
    }
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      if (t.label == sub_label) next.push_back(t.to);
    }
    if (sub_all_blank && nfa.IsAccepting(s)) add_pad = true;
  }
  nfa.EpsilonClose(&next);
  if (add_pad) next.push_back(lazy->pad_id);
  const uint32_t id = InternSubset(lazy, std::move(next));
  // Re-lookup: InternSubset may have grown move_cache, invalidating `cache`.
  lazy->move_cache[subset_id].emplace(sub_label, id);
  return id;
}

JoinMachine::State JoinMachine::Initial() {
  State state;
  state.reserve(lazies_.size());
  for (Lazy& lazy : lazies_) {
    std::vector<StateId> subset(lazy.relation->nfa().initial());
    lazy.relation->nfa().EpsilonClose(&subset);
    state.push_back(InternSubset(&lazy, std::move(subset)));
  }
  return state;
}

JoinMachine::State JoinMachine::Next(const State& state, Label joint_label) {
  ECRPQ_DCHECK(state.size() == lazies_.size());
  State next;
  next.reserve(lazies_.size());
  std::vector<TapeLetter> sub;
  for (size_t c = 0; c < lazies_.size(); ++c) {
    Lazy& lazy = lazies_[c];
    const int k = lazy.relation->arity();
    sub.assign(k, kBlank);
    bool all_blank = true;
    for (int i = 0; i < k; ++i) {
      sub[i] = pack_.Get(joint_label, lazy.tape_map[i]);
      all_blank = all_blank && (sub[i] == kBlank);
    }
    const Label sub_label = lazy.relation->pack().Pack(sub);
    next.push_back(MoveComponent(&lazy, state[c], sub_label, all_blank));
  }
  return next;
}

bool JoinMachine::IsDead(const State& state) const {
  for (size_t c = 0; c < lazies_.size(); ++c) {
    if (lazies_[c].subsets[state[c]].empty()) return true;
  }
  return false;
}

bool JoinMachine::IsAccepting(const State& state) const {
  for (size_t c = 0; c < lazies_.size(); ++c) {
    if (!lazies_[c].subset_accepting[state[c]]) return false;
  }
  return !lazies_.empty() || true;
}

size_t JoinMachine::NumInternedSubsets() const {
  size_t n = 0;
  for (const Lazy& lazy : lazies_) n += lazy.subsets.size();
  return n;
}

}  // namespace ecrpq
