// Builders for the classical synchronous relations.
//
// The paper's examples: equality, equal-length, prefix, "edit distance at
// most 14" are all here, together with language lifts (a regular language on
// one tape, anything on the others) and the universal relation. Non-examples
// from the paper — suffix, factor, scattered subword — are *not* synchronous
// and deliberately absent.
#ifndef ECRPQ_SYNCHRO_BUILDERS_H_
#define ECRPQ_SYNCHRO_BUILDERS_H_

#include "automata/alphabet.h"
#include "automata/nfa.h"
#include "common/result.h"
#include "synchro/sync_relation.h"

namespace ecrpq {

// All tuples of words: A* × ... × A* (arity times).
Result<SyncRelation> UniversalRelation(const Alphabet& alphabet, int arity);

// {(w, ..., w) : w ∈ A*} — all tapes equal.
Result<SyncRelation> EqualityRelation(const Alphabet& alphabet, int arity);

// {(w1, ..., wk) : |w1| = ... = |wk|} — the 'eq-len' of paper Example 2.1.
Result<SyncRelation> EqualLengthRelation(const Alphabet& alphabet, int arity);

// {(u, v) : u is a prefix of v} (binary).
Result<SyncRelation> PrefixRelation(const Alphabet& alphabet);

// {(u, v) : |u| = |v| and u, v differ in at most d positions} (binary).
Result<SyncRelation> HammingAtMostRelation(const Alphabet& alphabet, int d);

// {(u, v) : Levenshtein distance(u, v) <= d} (binary). Built with the
// bounded-lag construction: states are (pending-buffer, edits-used) pairs;
// buffers never exceed d symbols because a lag of L forces >= L edits.
Result<SyncRelation> EditDistanceAtMostRelation(const Alphabet& alphabet,
                                                int d);

// {(u, v) : |u| = |v|, u <=_lex v} (binary, same-length lexicographic order
// by symbol id).
Result<SyncRelation> LexLeqRelation(const Alphabet& alphabet);

// Arity-1 relation from a word NFA over Symbol labels (a regular language
// seen as a unary synchronous relation). Relabels symbols to packed letters.
Result<SyncRelation> FromLanguage(const Alphabet& alphabet, const Nfa& lang);

// {(w1, ..., wk) : w_tape ∈ L(lang)} — the regular language `lang` on one
// tape, unconstrained on the rest. `lang` has Symbol labels.
Result<SyncRelation> LanguageLift(const Alphabet& alphabet, const Nfa& lang,
                                  int arity, int tape);

}  // namespace ecrpq

#endif  // ECRPQ_SYNCHRO_BUILDERS_H_
