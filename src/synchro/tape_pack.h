// TapePack: bit-packing of multi-tape letters.
//
// A k-ary synchronous relation is an NFA over the alphabet (A ∪ {⊥})^k.
// We pack one letter of that alphabet — one "column" of a convolution —
// into a single 64-bit Label: each tape gets ceil(log2(|A|+1)) bits holding
// symbol+1, with 0 encoding the blank (padding) letter ⊥.
#ifndef ECRPQ_SYNCHRO_TAPE_PACK_H_
#define ECRPQ_SYNCHRO_TAPE_PACK_H_

#include <cstdint>
#include <span>
#include <vector>

#include "automata/alphabet.h"
#include "automata/nfa.h"
#include "common/result.h"

namespace ecrpq {

// A tape letter: a Symbol, or kBlank (⊥).
using TapeLetter = uint32_t;
inline constexpr TapeLetter kBlank = ~TapeLetter{0};

class TapePack {
 public:
  // Fails if k * ceil(log2(alphabet_size+1)) exceeds 64 bits.
  static Result<TapePack> Create(int arity, int alphabet_size);

  int arity() const { return arity_; }
  int alphabet_size() const { return alphabet_size_; }
  int bits_per_tape() const { return bits_; }

  // Number of packed letters, (|A|+1)^arity.
  uint64_t NumLabels() const;

  Label Pack(std::span<const TapeLetter> letters) const;

  TapeLetter Get(Label label, int tape) const {
    ECRPQ_DCHECK(tape < arity_);
    const uint64_t v = (label >> (bits_ * tape)) & mask_;
    return v == 0 ? kBlank : static_cast<TapeLetter>(v - 1);
  }

  // Returns `label` with the letter on `tape` replaced.
  Label Set(Label label, int tape, TapeLetter letter) const;

  // Packed all-blank letter (⊥, ..., ⊥) — the letter that never occurs in a
  // valid convolution column... except as trailing padding of projections.
  Label AllBlank() const { return 0; }

  bool AllTapesBlank(Label label) const { return label == 0; }

  // Enumerates every packed letter (A ∪ {⊥})^arity, including all-blank.
  // Fails if there are more than `limit` of them.
  Result<std::vector<Label>> EnumerateAllLabels(uint64_t limit = 1 << 22) const;

  // True iff `label` respects the packing discipline: no bits beyond
  // arity·bits_per_tape, and every tape field holds ⊥ or a symbol id below
  // the alphabet size.
  bool IsValidLabel(Label label) const;

  // Packing invariants (fires ECRPQ_CHECK on violation, any build mode):
  // positive arity and alphabet, bit width covering the alphabet, and all
  // tapes fitting into the 64-bit label.
  void CheckInvariants() const;

  bool operator==(const TapePack&) const = default;

 private:
  TapePack(int arity, int alphabet_size, int bits)
      : arity_(arity),
        alphabet_size_(alphabet_size),
        bits_(bits),
        mask_((uint64_t{1} << bits) - 1) {}

  int arity_;
  int alphabet_size_;
  int bits_;
  uint64_t mask_;
};

}  // namespace ecrpq

#endif  // ECRPQ_SYNCHRO_TAPE_PACK_H_
