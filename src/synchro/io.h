// Text serialization of synchronous relations — lets users ship custom
// relations to the CLI and persist constructed ones.
//
//   relation arity 2
//   alphabet a b
//   states 3
//   initial 0
//   accepting 2
//   trans 0 (a,b) 1
//   trans 1 (a,_) 2     # '_' is the padding letter ⊥
//   trans 1 eps 2       # ε-transition
#ifndef ECRPQ_SYNCHRO_IO_H_
#define ECRPQ_SYNCHRO_IO_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "synchro/sync_relation.h"

namespace ecrpq {

std::string SyncRelationToString(const SyncRelation& relation);

Result<SyncRelation> SyncRelationFromString(std::string_view text);

}  // namespace ecrpq

#endif  // ECRPQ_SYNCHRO_IO_H_
