#include "synchro/builders.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "common/check.h"

namespace ecrpq {

Result<SyncRelation> UniversalRelation(const Alphabet& alphabet, int arity) {
  ECRPQ_ASSIGN_OR_RAISE(TapePack pack,
                        TapePack::Create(arity, alphabet.size()));
  ECRPQ_ASSIGN_OR_RAISE(std::vector<Label> labels, pack.EnumerateAllLabels());
  Nfa nfa(1);
  nfa.SetInitial(0);
  nfa.SetAccepting(0);
  for (const Label l : labels) {
    if (pack.AllTapesBlank(l)) continue;
    nfa.AddTransition(0, l, 0);
  }
  return SyncRelation::Create(alphabet, arity, std::move(nfa));
}

Result<SyncRelation> EqualityRelation(const Alphabet& alphabet, int arity) {
  ECRPQ_ASSIGN_OR_RAISE(TapePack pack,
                        TapePack::Create(arity, alphabet.size()));
  Nfa nfa(1);
  nfa.SetInitial(0);
  nfa.SetAccepting(0);
  std::vector<TapeLetter> column(arity);
  for (Symbol a = 0; a < static_cast<Symbol>(alphabet.size()); ++a) {
    std::fill(column.begin(), column.end(), static_cast<TapeLetter>(a));
    nfa.AddTransition(0, pack.Pack(column), 0);
  }
  return SyncRelation::Create(alphabet, arity, std::move(nfa));
}

Result<SyncRelation> EqualLengthRelation(const Alphabet& alphabet, int arity) {
  ECRPQ_ASSIGN_OR_RAISE(TapePack pack,
                        TapePack::Create(arity, alphabet.size()));
  ECRPQ_ASSIGN_OR_RAISE(std::vector<Label> labels, pack.EnumerateAllLabels());
  Nfa nfa(1);
  nfa.SetInitial(0);
  nfa.SetAccepting(0);
  for (const Label l : labels) {
    bool no_blank = true;
    for (int t = 0; t < arity && no_blank; ++t) {
      no_blank = pack.Get(l, t) != kBlank;
    }
    if (no_blank) nfa.AddTransition(0, l, 0);
  }
  return SyncRelation::Create(alphabet, arity, std::move(nfa));
}

Result<SyncRelation> PrefixRelation(const Alphabet& alphabet) {
  ECRPQ_ASSIGN_OR_RAISE(TapePack pack, TapePack::Create(2, alphabet.size()));
  // State 0: reading both tapes (u not yet ended); state 1: u ended, v
  // continues. Both accepting (u = v is a prefix).
  Nfa nfa(2);
  nfa.SetInitial(0);
  nfa.SetAccepting(0);
  nfa.SetAccepting(1);
  const int n = alphabet.size();
  for (Symbol a = 0; a < static_cast<Symbol>(n); ++a) {
    const TapeLetter both[2] = {a, a};
    nfa.AddTransition(0, pack.Pack(both), 0);
    const TapeLetter tail[2] = {kBlank, a};
    nfa.AddTransition(0, pack.Pack(tail), 1);
    nfa.AddTransition(1, pack.Pack(tail), 1);
  }
  return SyncRelation::Create(alphabet, 2, std::move(nfa));
}

Result<SyncRelation> HammingAtMostRelation(const Alphabet& alphabet, int d) {
  if (d < 0) return Status::Invalid("Hamming bound must be >= 0");
  ECRPQ_ASSIGN_OR_RAISE(TapePack pack, TapePack::Create(2, alphabet.size()));
  // State i = number of mismatches so far; all accepting.
  Nfa nfa(d + 1);
  nfa.SetInitial(0);
  const int n = alphabet.size();
  for (int i = 0; i <= d; ++i) {
    nfa.SetAccepting(i);
    for (Symbol a = 0; a < static_cast<Symbol>(n); ++a) {
      for (Symbol b = 0; b < static_cast<Symbol>(n); ++b) {
        const TapeLetter col[2] = {a, b};
        if (a == b) {
          nfa.AddTransition(i, pack.Pack(col), i);
        } else if (i < d) {
          nfa.AddTransition(i, pack.Pack(col), i + 1);
        }
      }
    }
  }
  return SyncRelation::Create(alphabet, 2, std::move(nfa));
}

Result<SyncRelation> LexLeqRelation(const Alphabet& alphabet) {
  ECRPQ_ASSIGN_OR_RAISE(TapePack pack, TapePack::Create(2, alphabet.size()));
  // State 0: equal so far; state 1: already strictly smaller.
  Nfa nfa(2);
  nfa.SetInitial(0);
  nfa.SetAccepting(0);
  nfa.SetAccepting(1);
  const int n = alphabet.size();
  for (Symbol a = 0; a < static_cast<Symbol>(n); ++a) {
    for (Symbol b = 0; b < static_cast<Symbol>(n); ++b) {
      const TapeLetter col[2] = {a, b};
      if (a == b) {
        nfa.AddTransition(0, pack.Pack(col), 0);
      } else if (a < b) {
        nfa.AddTransition(0, pack.Pack(col), 1);
      }
      nfa.AddTransition(1, pack.Pack(col), 1);
    }
  }
  return SyncRelation::Create(alphabet, 2, std::move(nfa));
}

namespace {

// State of the bounded-lag edit-distance construction: at most one of the
// two tapes has unconsumed (pending) symbols; `on_second_tape` says which.
struct LagState {
  bool on_second_tape = false;
  std::vector<TapeLetter> buffer;  // Pending symbols, |buffer| <= d.
  int edits = 0;

  bool operator<(const LagState& other) const {
    return std::tie(on_second_tape, buffer, edits) <
           std::tie(other.on_second_tape, other.buffer, other.edits);
  }
};

// Configuration mid-closure: both buffers may be transiently non-empty.
struct LagConfig {
  std::vector<TapeLetter> bx;
  std::vector<TapeLetter> by;
  int edits;

  bool operator<(const LagConfig& other) const {
    return std::tie(bx, by, edits) < std::tie(other.bx, other.by, other.edits);
  }
};

// Explores all alignment-operation sequences (match / substitute / delete /
// insert) from `start`, collecting every configuration where at least one
// buffer is empty (a valid automaton state) with buffer length <= d.
void OpClosure(const LagConfig& start, int d, std::set<LagConfig>* visited,
               std::set<LagState>* out) {
  if (visited->count(start)) return;
  visited->insert(start);
  if (start.edits > d) return;
  if (start.bx.empty() || start.by.empty()) {
    const bool on_second = start.bx.empty() && !start.by.empty();
    const std::vector<TapeLetter>& buf = on_second ? start.by : start.bx;
    if (static_cast<int>(buf.size()) <= d) {
      out->insert(LagState{on_second, buf, start.edits});
    }
  }
  auto pop_front = [](const std::vector<TapeLetter>& v) {
    return std::vector<TapeLetter>(v.begin() + 1, v.end());
  };
  if (!start.bx.empty() && !start.by.empty()) {
    // Match or substitute.
    const int cost = start.bx.front() == start.by.front() ? 0 : 1;
    OpClosure(LagConfig{pop_front(start.bx), pop_front(start.by),
                        start.edits + cost},
              d, visited, out);
  }
  if (!start.bx.empty()) {
    OpClosure(LagConfig{pop_front(start.bx), start.by, start.edits + 1}, d,
              visited, out);
  }
  if (!start.by.empty()) {
    OpClosure(LagConfig{start.bx, pop_front(start.by), start.edits + 1}, d,
              visited, out);
  }
}

}  // namespace

Result<SyncRelation> EditDistanceAtMostRelation(const Alphabet& alphabet,
                                                int d) {
  if (d < 0) return Status::Invalid("edit-distance bound must be >= 0");
  ECRPQ_ASSIGN_OR_RAISE(TapePack pack, TapePack::Create(2, alphabet.size()));
  const int n = alphabet.size();

  std::map<LagState, StateId> state_id;
  std::vector<LagState> states;
  Nfa nfa;

  auto intern = [&](const LagState& s) -> StateId {
    auto [it, inserted] =
        state_id.emplace(s, static_cast<StateId>(states.size()));
    if (inserted) {
      states.push_back(s);
      const StateId id = nfa.AddState();
      ECRPQ_DCHECK(id == it->second);
      // Accepting iff the pending buffer can be cleaned up by trailing
      // deletions/insertions within the remaining budget.
      if (s.edits + static_cast<int>(s.buffer.size()) <= d) {
        nfa.SetAccepting(id);
      }
    }
    return it->second;
  };

  const StateId start = intern(LagState{});
  nfa.SetInitial(start);

  for (size_t cur = 0; cur < states.size(); ++cur) {
    const LagState s = states[cur];  // Copy: vector grows during the loop.
    // Input letters: (cx, cy) in (A ∪ {⊥})² minus (⊥, ⊥).
    for (int cx = -1; cx < n; ++cx) {
      for (int cy = -1; cy < n; ++cy) {
        if (cx < 0 && cy < 0) continue;
        LagConfig config;
        config.edits = s.edits;
        config.bx = s.on_second_tape ? std::vector<TapeLetter>{} : s.buffer;
        config.by = s.on_second_tape ? s.buffer : std::vector<TapeLetter>{};
        if (cx >= 0) config.bx.push_back(static_cast<TapeLetter>(cx));
        if (cy >= 0) config.by.push_back(static_cast<TapeLetter>(cy));
        std::set<LagConfig> visited;
        std::set<LagState> successors;
        OpClosure(config, d, &visited, &successors);
        if (successors.empty()) continue;
        const TapeLetter col[2] = {
            cx < 0 ? kBlank : static_cast<TapeLetter>(cx),
            cy < 0 ? kBlank : static_cast<TapeLetter>(cy)};
        const Label label = pack.Pack(col);
        for (const LagState& succ : successors) {
          nfa.AddTransition(static_cast<StateId>(cur), label, intern(succ));
        }
      }
    }
  }
  nfa.Normalize();
  return SyncRelation::Create(alphabet, 2, std::move(nfa));
}

Result<SyncRelation> FromLanguage(const Alphabet& alphabet, const Nfa& lang) {
  ECRPQ_ASSIGN_OR_RAISE(TapePack pack, TapePack::Create(1, alphabet.size()));
  Nfa nfa(lang.NumStates());
  for (StateId s : lang.initial()) nfa.SetInitial(s);
  for (StateId s = 0; s < static_cast<StateId>(lang.NumStates()); ++s) {
    if (lang.IsAccepting(s)) nfa.SetAccepting(s);
    for (const Nfa::Transition& t : lang.TransitionsFrom(s)) {
      if (t.label == kEpsilon) {
        nfa.AddTransition(s, kEpsilon, t.to);
        continue;
      }
      if (t.label >= static_cast<Label>(alphabet.size())) {
        return Status::Invalid("language NFA uses symbol outside alphabet");
      }
      const TapeLetter col[1] = {static_cast<TapeLetter>(t.label)};
      nfa.AddTransition(s, pack.Pack(col), t.to);
    }
  }
  return SyncRelation::Create(alphabet, 1, std::move(nfa));
}

Result<SyncRelation> LanguageLift(const Alphabet& alphabet, const Nfa& lang,
                                  int arity, int tape) {
  if (tape < 0 || tape >= arity) {
    return Status::Invalid("lift tape out of range");
  }
  ECRPQ_ASSIGN_OR_RAISE(TapePack pack,
                        TapePack::Create(arity, alphabet.size()));
  ECRPQ_ASSIGN_OR_RAISE(std::vector<Label> labels, pack.EnumerateAllLabels());

  // States: lang states (word on `tape` still running) + one pad state
  // (word on `tape` finished and accepted; other tapes may continue).
  const StateId pad = static_cast<StateId>(lang.NumStates());
  Nfa nfa(lang.NumStates() + 1);
  for (StateId s : lang.initial()) nfa.SetInitial(s);
  nfa.SetAccepting(pad);
  for (StateId s = 0; s < static_cast<StateId>(lang.NumStates()); ++s) {
    if (lang.IsAccepting(s)) nfa.SetAccepting(s);
  }
  for (const Label l : labels) {
    if (pack.AllTapesBlank(l)) continue;
    const TapeLetter letter = pack.Get(l, tape);
    if (letter == kBlank) {
      // Tape word has ended; only reachable through accepting lang states.
      for (StateId s = 0; s < static_cast<StateId>(lang.NumStates()); ++s) {
        if (lang.IsAccepting(s)) nfa.AddTransition(s, l, pad);
      }
      nfa.AddTransition(pad, l, pad);
    } else {
      for (StateId s = 0; s < static_cast<StateId>(lang.NumStates()); ++s) {
        for (const Nfa::Transition& t : lang.TransitionsFrom(s)) {
          if (t.label == static_cast<Label>(letter)) {
            nfa.AddTransition(s, l, t.to);
          }
        }
      }
    }
  }
  // ε-transitions of the language are tape-local.
  for (StateId s = 0; s < static_cast<StateId>(lang.NumStates()); ++s) {
    for (const Nfa::Transition& t : lang.TransitionsFrom(s)) {
      if (t.label == kEpsilon) nfa.AddTransition(s, kEpsilon, t.to);
    }
  }
  return SyncRelation::Create(alphabet, arity, std::move(nfa));
}

}  // namespace ecrpq
