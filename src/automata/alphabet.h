// Alphabet: interning of edge-label symbols.
//
// Graph databases, regular expressions and synchronous relations all share a
// finite alphabet A of edge labels. Symbols are interned to dense ids so that
// automata transitions and packed multi-tape labels are plain integers.
#ifndef ECRPQ_AUTOMATA_ALPHABET_H_
#define ECRPQ_AUTOMATA_ALPHABET_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ecrpq {

// Dense id of an interned symbol. Ids are assigned in interning order,
// starting at 0.
using Symbol = uint32_t;

class Alphabet {
 public:
  Alphabet() = default;

  // Convenience: an alphabet of single-character symbols "a", "b", ... taken
  // from `chars` in order.
  static Alphabet OfChars(std::string_view chars);

  // Convenience: an alphabet {a0, a1, ..., a<n-1>} of n synthetic symbols.
  static Alphabet OfSize(int n);

  // Returns the id of `name`, interning it if new.
  Symbol Intern(std::string_view name);

  // Returns the id of `name` if present.
  std::optional<Symbol> Find(std::string_view name) const;

  // Returns the id of `name`, or an error if absent.
  Result<Symbol> Require(std::string_view name) const;

  // Name of an interned symbol. Dies on out-of-range ids.
  const std::string& Name(Symbol s) const;

  int size() const { return static_cast<int>(names_.size()); }

  bool operator==(const Alphabet& other) const {
    return names_ == other.names_;
  }

  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Symbol> index_;
};

}  // namespace ecrpq

#endif  // ECRPQ_AUTOMATA_ALPHABET_H_
