#include "automata/dfa.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

namespace ecrpq {

Dfa::Dfa(int num_states, std::vector<Label> labels)
    : num_states_(num_states), labels_(std::move(labels)) {
  ECRPQ_CHECK_GT(num_states_, 0);
  table_.assign(static_cast<size_t>(num_states_) * labels_.size(), 0);
  accepting_.assign(num_states_, false);
  ECRPQ_DCHECK_INVARIANT(*this);
}

void Dfa::CheckInvariants() const {
  ECRPQ_CHECK_GT(num_states_, 0) << "Dfa: must have at least one state";
  ECRPQ_CHECK(std::is_sorted(labels_.begin(), labels_.end()))
      << "Dfa: label set must be sorted";
  ECRPQ_CHECK(std::adjacent_find(labels_.begin(), labels_.end()) ==
              labels_.end())
      << "Dfa: label set must be deduplicated";
  ECRPQ_CHECK_EQ(table_.size(),
                 static_cast<size_t>(num_states_) * labels_.size())
      << "Dfa: transition table is not dense";
  ECRPQ_CHECK_EQ(accepting_.size(), static_cast<size_t>(num_states_))
      << "Dfa: accepting bitmap out of sync with state count";
  ECRPQ_CHECK_LT(initial_, static_cast<StateId>(num_states_))
      << "Dfa: initial state out of range";
  for (const StateId to : table_) {
    ECRPQ_CHECK_LT(to, static_cast<StateId>(num_states_))
        << "Dfa: transition target out of range";
  }
}

int Dfa::LabelIndex(Label label) const {
  const int idx = FindLabelIndex(label);
  ECRPQ_CHECK_GE(idx, 0);
  return idx;
}

int Dfa::FindLabelIndex(Label label) const {
  auto it = std::lower_bound(labels_.begin(), labels_.end(), label);
  if (it == labels_.end() || *it != label) return -1;
  return static_cast<int>(it - labels_.begin());
}

bool Dfa::Accepts(std::span<const Label> word) const {
  StateId s = initial_;
  for (const Label a : word) {
    const int idx = FindLabelIndex(a);
    if (idx < 0) return false;
    s = Next(s, idx);
  }
  return accepting_[s];
}

Nfa Dfa::ToNfa() const {
  Nfa nfa(num_states_);
  nfa.SetInitial(initial_);
  for (int s = 0; s < num_states_; ++s) {
    if (accepting_[s]) nfa.SetAccepting(s);
    for (size_t li = 0; li < labels_.size(); ++li) {
      nfa.AddTransition(s, labels_[li], Next(s, static_cast<int>(li)));
    }
  }
  return nfa;
}

void Dfa::Complement() {
  for (int s = 0; s < num_states_; ++s) accepting_[s] = !accepting_[s];
}

Dfa Dfa::Minimize() const {
  const int n = num_states_;
  const int nl = static_cast<int>(labels_.size());

  // Restrict to reachable states first.
  std::vector<int> reach_id(n, -1);
  std::vector<StateId> order;
  reach_id[initial_] = 0;
  order.push_back(initial_);
  for (size_t i = 0; i < order.size(); ++i) {
    const StateId s = order[i];
    for (int li = 0; li < nl; ++li) {
      const StateId t = Next(s, li);
      if (reach_id[t] < 0) {
        reach_id[t] = static_cast<int>(order.size());
        order.push_back(t);
      }
    }
  }
  const int m = static_cast<int>(order.size());

  // Moore refinement on reachable states.
  std::vector<int> block(m);
  for (int i = 0; i < m; ++i) block[i] = accepting_[order[i]] ? 1 : 0;
  int num_blocks = 2;
  // If all states agree on acceptance there is a single block.
  {
    bool has0 = false, has1 = false;
    for (int b : block) (b ? has1 : has0) = true;
    if (!has0 || !has1) {
      for (int& b : block) b = 0;
      num_blocks = 1;
    }
  }
  while (true) {
    // Signature of each state: (block, block of successor per label).
    std::map<std::vector<int>, int> sig_to_block;
    std::vector<int> new_block(m);
    for (int i = 0; i < m; ++i) {
      std::vector<int> sig;
      sig.reserve(nl + 1);
      sig.push_back(block[i]);
      for (int li = 0; li < nl; ++li) {
        sig.push_back(block[reach_id[Next(order[i], li)]]);
      }
      auto [it, inserted] =
          sig_to_block.emplace(std::move(sig), static_cast<int>(
                                                   sig_to_block.size()));
      new_block[i] = it->second;
    }
    const int new_num_blocks = static_cast<int>(sig_to_block.size());
    block = std::move(new_block);
    if (new_num_blocks == num_blocks) break;
    num_blocks = new_num_blocks;
  }

  Dfa out(num_blocks, labels_);
  out.SetInitial(block[0]);  // order[0] == initial_.
  for (int i = 0; i < m; ++i) {
    const StateId s = order[i];
    if (accepting_[s]) out.SetAccepting(block[i]);
    for (int li = 0; li < nl; ++li) {
      out.SetNext(block[i], li, block[reach_id[Next(s, li)]]);
    }
  }
  ECRPQ_DCHECK_INVARIANT(out);
  return out;
}

}  // namespace ecrpq
