#include "automata/io.h"

#include <charconv>
#include <sstream>
#include <vector>

#include "common/strings.h"

namespace ecrpq {
namespace {

Result<uint64_t> ParseUint(std::string_view token) {
  uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::ParseError("not an unsigned integer: '" +
                              std::string(token) + "'");
  }
  return value;
}

}  // namespace

std::string NfaToString(const Nfa& nfa) {
  std::ostringstream out;
  out << "states " << nfa.NumStates() << "\n";
  out << "initial";
  for (StateId s : nfa.initial()) out << " " << s;
  out << "\n";
  out << "accepting";
  for (StateId s = 0; s < static_cast<StateId>(nfa.NumStates()); ++s) {
    if (nfa.IsAccepting(s)) out << " " << s;
  }
  out << "\n";
  for (StateId s = 0; s < static_cast<StateId>(nfa.NumStates()); ++s) {
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      out << "trans " << s << " ";
      if (t.label == kEpsilon) {
        out << "eps";
      } else {
        out << t.label;
      }
      out << " " << t.to << "\n";
    }
  }
  return out.str();
}

Result<Nfa> NfaFromString(std::string_view text) {
  Nfa nfa;
  bool have_states = false;
  for (const std::string& raw_line : SplitString(text, '\n')) {
    const std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> tokens;
    for (const std::string& tok : SplitString(line, ' ')) {
      if (!tok.empty()) tokens.push_back(tok);
    }
    if (tokens.empty()) continue;
    const std::string& kind = tokens[0];
    if (kind == "states") {
      if (tokens.size() != 2) return Status::ParseError("states: want count");
      ECRPQ_ASSIGN_OR_RAISE(uint64_t n, ParseUint(tokens[1]));
      nfa = Nfa(static_cast<int>(n));
      have_states = true;
    } else if (kind == "initial") {
      if (!have_states) return Status::ParseError("initial before states");
      for (size_t i = 1; i < tokens.size(); ++i) {
        ECRPQ_ASSIGN_OR_RAISE(uint64_t s, ParseUint(tokens[i]));
        if (s >= static_cast<uint64_t>(nfa.NumStates())) {
          return Status::ParseError("initial state out of range");
        }
        nfa.SetInitial(static_cast<StateId>(s));
      }
    } else if (kind == "accepting") {
      if (!have_states) return Status::ParseError("accepting before states");
      for (size_t i = 1; i < tokens.size(); ++i) {
        ECRPQ_ASSIGN_OR_RAISE(uint64_t s, ParseUint(tokens[i]));
        if (s >= static_cast<uint64_t>(nfa.NumStates())) {
          return Status::ParseError("accepting state out of range");
        }
        nfa.SetAccepting(static_cast<StateId>(s));
      }
    } else if (kind == "trans") {
      if (!have_states) return Status::ParseError("trans before states");
      if (tokens.size() != 4) {
        return Status::ParseError("trans: want 'trans from label to'");
      }
      ECRPQ_ASSIGN_OR_RAISE(uint64_t from, ParseUint(tokens[1]));
      ECRPQ_ASSIGN_OR_RAISE(uint64_t to, ParseUint(tokens[3]));
      if (from >= static_cast<uint64_t>(nfa.NumStates()) ||
          to >= static_cast<uint64_t>(nfa.NumStates())) {
        return Status::ParseError("trans state out of range");
      }
      Label label;
      if (tokens[2] == "eps") {
        label = kEpsilon;
      } else {
        ECRPQ_ASSIGN_OR_RAISE(label, ParseUint(tokens[2]));
      }
      nfa.AddTransition(static_cast<StateId>(from), label,
                        static_cast<StateId>(to));
    } else {
      return Status::ParseError("unknown directive: " + kind);
    }
  }
  if (!have_states) return Status::ParseError("missing 'states' line");
  return nfa;
}

}  // namespace ecrpq
