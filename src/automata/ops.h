// Language-level operations on automata: determinization, product,
// union, complement, equivalence.
//
// Operations that need the full label universe (complement, equivalence)
// take it explicitly: an NFA only records the labels it uses, but the
// language complement depends on the alphabet it is interpreted over.
#ifndef ECRPQ_AUTOMATA_OPS_H_
#define ECRPQ_AUTOMATA_OPS_H_

#include <vector>

#include "automata/dfa.h"
#include "automata/nfa.h"

namespace ecrpq {

// Subset construction. `universe` must be sorted and contain every label
// appearing in `nfa`. The result is complete over `universe`.
Dfa Determinize(const Nfa& nfa, const std::vector<Label>& universe);

// Product automaton accepting L(a) ∩ L(b). On-the-fly: only reachable pairs
// are materialized. ε-transitions in either operand are handled.
Nfa Intersect(const Nfa& a, const Nfa& b);

// Disjoint union accepting L(a) ∪ L(b).
Nfa Union(const Nfa& a, const Nfa& b);

// Complement of L(nfa) relative to universe^*.
Nfa Complement(const Nfa& nfa, const std::vector<Label>& universe);

// Language equivalence over the given universe.
bool Equivalent(const Nfa& a, const Nfa& b, const std::vector<Label>& universe);

// Language inclusion L(a) ⊆ L(b) over the given universe.
bool Included(const Nfa& a, const Nfa& b, const std::vector<Label>& universe);

// Union of the label sets of several automata with `extra` added, sorted.
std::vector<Label> UnionLabels(const std::vector<const Nfa*>& nfas,
                               const std::vector<Label>& extra = {});

// Equivalent NFA without ε-transitions (same state count; standard closure
// construction). Polynomial.
Nfa RemoveEpsilon(const Nfa& nfa);

}  // namespace ecrpq

#endif  // ECRPQ_AUTOMATA_OPS_H_
