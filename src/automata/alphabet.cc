#include "automata/alphabet.h"

#include <string>

#include "common/check.h"

namespace ecrpq {

Alphabet Alphabet::OfChars(std::string_view chars) {
  Alphabet a;
  for (char c : chars) a.Intern(std::string_view(&c, 1));
  return a;
}

Alphabet Alphabet::OfSize(int n) {
  Alphabet a;
  for (int i = 0; i < n; ++i) a.Intern("a" + std::to_string(i));
  return a;
}

Symbol Alphabet::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  const Symbol id = static_cast<Symbol>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

std::optional<Symbol> Alphabet::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

Result<Symbol> Alphabet::Require(std::string_view name) const {
  auto found = Find(name);
  if (!found.has_value()) {
    return Status::NotFound("symbol not in alphabet: " + std::string(name));
  }
  return *found;
}

const std::string& Alphabet::Name(Symbol s) const {
  ECRPQ_CHECK_LT(s, names_.size());
  return names_[s];
}

}  // namespace ecrpq
