#include "automata/nfa.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <unordered_map>
#include <vector>

namespace ecrpq {

void Nfa::EpsilonClose(std::vector<StateId>* states) const {
  std::vector<StateId> stack(*states);
  std::vector<bool> in_set(transitions_.size(), false);
  for (StateId s : *states) in_set[s] = true;
  while (!stack.empty()) {
    const StateId s = stack.back();
    stack.pop_back();
    for (const Transition& t : transitions_[s]) {
      if (t.label == kEpsilon && !in_set[t.to]) {
        in_set[t.to] = true;
        states->push_back(t.to);
        stack.push_back(t.to);
      }
    }
  }
  std::sort(states->begin(), states->end());
  states->erase(std::unique(states->begin(), states->end()), states->end());
}

bool Nfa::Accepts(std::span<const Label> word) const {
  std::vector<StateId> current(initial_);
  EpsilonClose(&current);
  for (const Label a : word) {
    std::vector<StateId> next;
    for (StateId s : current) {
      for (const Transition& t : transitions_[s]) {
        if (t.label == a) next.push_back(t.to);
      }
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    EpsilonClose(&next);
    current = std::move(next);
    if (current.empty()) return false;
  }
  for (StateId s : current) {
    if (accepting_[s]) return true;
  }
  return false;
}

bool Nfa::IsEmpty() const { return !ShortestWitness().has_value(); }

std::optional<std::vector<Label>> Nfa::ShortestWitness() const {
  // BFS over states; ε-transitions contribute no letters.
  struct Parent {
    StateId from;
    Label label;  // kEpsilon for ε steps.
  };
  std::vector<bool> visited(transitions_.size(), false);
  std::vector<Parent> parent(transitions_.size());
  std::deque<StateId> queue;
  for (StateId s : initial_) {
    if (!visited[s]) {
      visited[s] = true;
      parent[s] = Parent{s, kEpsilon};
      queue.push_back(s);
    }
  }
  // Note: a plain FIFO BFS does not give shortest *words* in the presence of
  // ε-transitions (an ε step is free). We use a 0/1-BFS: ε steps go to the
  // front of the deque.
  std::optional<StateId> goal;
  while (!queue.empty()) {
    const StateId s = queue.front();
    queue.pop_front();
    if (accepting_[s]) {
      goal = s;
      break;
    }
    for (const Transition& t : transitions_[s]) {
      if (visited[t.to]) continue;
      visited[t.to] = true;
      parent[t.to] = Parent{s, t.label};
      if (t.label == kEpsilon) {
        queue.push_front(t.to);
      } else {
        queue.push_back(t.to);
      }
    }
  }
  if (!goal.has_value()) return std::nullopt;
  std::vector<Label> word;
  StateId s = *goal;
  while (parent[s].from != s || parent[s].label != kEpsilon) {
    if (parent[s].label != kEpsilon) word.push_back(parent[s].label);
    const StateId prev = parent[s].from;
    if (prev == s) break;
    s = prev;
  }
  std::reverse(word.begin(), word.end());
  return word;
}

std::vector<Label> Nfa::CollectLabels() const {
  std::vector<Label> labels;
  for (const auto& row : transitions_) {
    for (const Transition& t : row) {
      if (t.label != kEpsilon) labels.push_back(t.label);
    }
  }
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  return labels;
}

void Nfa::Trim() {
  const int n = NumStates();
  // Forward reachability.
  std::vector<bool> fwd(n, false);
  {
    std::vector<StateId> stack;
    for (StateId s : initial_) {
      if (!fwd[s]) {
        fwd[s] = true;
        stack.push_back(s);
      }
    }
    while (!stack.empty()) {
      const StateId s = stack.back();
      stack.pop_back();
      for (const Transition& t : transitions_[s]) {
        if (!fwd[t.to]) {
          fwd[t.to] = true;
          stack.push_back(t.to);
        }
      }
    }
  }
  // Backward reachability from accepting states (over reversed edges).
  std::vector<std::vector<StateId>> rev(n);
  for (int s = 0; s < n; ++s) {
    for (const Transition& t : transitions_[s]) {
      rev[t.to].push_back(static_cast<StateId>(s));
    }
  }
  std::vector<bool> bwd(n, false);
  {
    std::vector<StateId> stack;
    for (int s = 0; s < n; ++s) {
      if (accepting_[s] && !bwd[s]) {
        bwd[s] = true;
        stack.push_back(static_cast<StateId>(s));
      }
    }
    while (!stack.empty()) {
      const StateId s = stack.back();
      stack.pop_back();
      for (StateId p : rev[s]) {
        if (!bwd[p]) {
          bwd[p] = true;
          stack.push_back(p);
        }
      }
    }
  }
  // Renumber kept states.
  std::vector<StateId> remap(n, ~StateId{0});
  StateId next = 0;
  for (int s = 0; s < n; ++s) {
    if (fwd[s] && bwd[s]) remap[s] = next++;
  }
  std::vector<std::vector<Transition>> new_transitions(next);
  std::vector<bool> new_accepting(next, false);
  std::vector<StateId> new_initial;
  for (int s = 0; s < n; ++s) {
    if (remap[s] == ~StateId{0}) continue;
    new_accepting[remap[s]] = accepting_[s];
    for (const Transition& t : transitions_[s]) {
      if (remap[t.to] != ~StateId{0}) {
        new_transitions[remap[s]].push_back(Transition{t.label, remap[t.to]});
      }
    }
  }
  for (StateId s : initial_) {
    if (remap[s] != ~StateId{0}) new_initial.push_back(remap[s]);
  }
  std::sort(new_initial.begin(), new_initial.end());
  new_initial.erase(std::unique(new_initial.begin(), new_initial.end()),
                    new_initial.end());
  transitions_ = std::move(new_transitions);
  accepting_ = std::move(new_accepting);
  initial_ = std::move(new_initial);
  ECRPQ_DCHECK_INVARIANT(*this);
}

void Nfa::Normalize() {
  for (auto& row : transitions_) {
    std::sort(row.begin(), row.end(),
              [](const Transition& a, const Transition& b) {
                return a.label != b.label ? a.label < b.label : a.to < b.to;
              });
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }
  std::sort(initial_.begin(), initial_.end());
  initial_.erase(std::unique(initial_.begin(), initial_.end()),
                 initial_.end());
  ECRPQ_DCHECK_INVARIANT(*this);
}

void Nfa::CheckInvariants() const {
  const size_t n = transitions_.size();
  ECRPQ_CHECK_EQ(accepting_.size(), n)
      << "Nfa: accepting bitmap out of sync with state count";
  for (const StateId s : initial_) {
    ECRPQ_CHECK_LT(s, n) << "Nfa: initial state out of range";
  }
  for (size_t from = 0; from < n; ++from) {
    for (const Transition& t : transitions_[from]) {
      ECRPQ_CHECK_LT(t.to, n) << "Nfa: transition target out of range (from "
                              << from << ")";
    }
  }
}

}  // namespace ecrpq
