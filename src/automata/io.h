// Text serialization of NFAs — a small line-oriented format used by tests,
// examples, and the CLI tools.
//
//   states <n>
//   initial <s> [<s> ...]
//   accepting <s> [<s> ...]
//   trans <from> <label|'eps'> <to>
//   ... (one trans line per transition)
#ifndef ECRPQ_AUTOMATA_IO_H_
#define ECRPQ_AUTOMATA_IO_H_

#include <string>
#include <string_view>

#include "automata/nfa.h"
#include "common/result.h"

namespace ecrpq {

std::string NfaToString(const Nfa& nfa);

Result<Nfa> NfaFromString(std::string_view text);

}  // namespace ecrpq

#endif  // ECRPQ_AUTOMATA_IO_H_
