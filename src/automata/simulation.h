// Simulation preorders and simulation-quotient reduction for NFAs.
//
// Quotienting an NFA by simulation equivalence preserves its language and
// can shrink it substantially without the exponential cost of
// determinization — useful before the product constructions of Lemma 4.1,
// whose cost multiplies across member automata sizes.
#ifndef ECRPQ_AUTOMATA_SIMULATION_H_
#define ECRPQ_AUTOMATA_SIMULATION_H_

#include <vector>

#include "automata/nfa.h"

namespace ecrpq {

// The (greatest) forward simulation preorder: result[s][t] iff t simulates
// s — acceptance of s implies acceptance of t, and every move of s can be
// matched by a move of t to a simulating state. ε-transitions are
// eliminated internally first, so indices refer to RemoveEpsilon(nfa)'s
// states when the input has ε-transitions.
std::vector<std::vector<bool>> SimulationPreorder(const Nfa& nfa);

// Quotient of the NFA by simulation equivalence (mutual simulation).
// L(result) == L(nfa); never has more states.
Nfa ReduceBySimulation(const Nfa& nfa);

}  // namespace ecrpq

#endif  // ECRPQ_AUTOMATA_SIMULATION_H_
