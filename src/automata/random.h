// Seeded random automata and word generators for tests and benchmarks.
#ifndef ECRPQ_AUTOMATA_RANDOM_H_
#define ECRPQ_AUTOMATA_RANDOM_H_

#include <vector>

#include "automata/dfa.h"
#include "automata/nfa.h"
#include "common/rng.h"

namespace ecrpq {

struct RandomDfaOptions {
  int num_states = 8;
  // Labels 0..alphabet_size-1.
  int alphabet_size = 2;
  double accept_prob = 0.3;
  // Guarantee at least one accepting state.
  bool force_accepting = true;
};

// Uniform random complete DFA over labels {0, ..., alphabet_size-1}.
Dfa RandomDfa(Rng* rng, const RandomDfaOptions& options);

struct RandomNfaOptions {
  int num_states = 8;
  int alphabet_size = 2;
  // Expected number of outgoing transitions per (state, label).
  double density = 1.2;
  double accept_prob = 0.3;
  bool force_accepting = true;
};

// Random NFA (no ε-transitions) over labels {0, ..., alphabet_size-1}.
Nfa RandomNfa(Rng* rng, const RandomNfaOptions& options);

// Random word of the given length over labels {0, ..., alphabet_size-1}.
std::vector<Label> RandomWord(Rng* rng, int length, int alphabet_size);

}  // namespace ecrpq

#endif  // ECRPQ_AUTOMATA_RANDOM_H_
