// Dfa: complete deterministic finite automaton over an explicit label set.
//
// The transition function is stored as a dense table indexed by
// (state, label-index). Completeness is an invariant: every state has a
// transition for every label (constructions add a sink state if needed),
// which makes complementation a matter of flipping accepting bits.
#ifndef ECRPQ_AUTOMATA_DFA_H_
#define ECRPQ_AUTOMATA_DFA_H_

#include <cstdint>
#include <span>
#include <vector>

#include "automata/nfa.h"
#include "common/check.h"

namespace ecrpq {

class Dfa {
 public:
  // Creates a complete DFA with `num_states` states over the given sorted,
  // deduplicated label set. All transitions initially self-loop on state 0;
  // callers are expected to set them all.
  Dfa(int num_states, std::vector<Label> labels);

  int NumStates() const { return num_states_; }
  const std::vector<Label>& labels() const { return labels_; }

  StateId initial() const { return initial_; }
  void SetInitial(StateId s) {
    ECRPQ_DCHECK(s < static_cast<StateId>(num_states_));
    initial_ = s;
  }

  bool IsAccepting(StateId s) const {
    ECRPQ_DCHECK(s < static_cast<StateId>(num_states_));
    return accepting_[s];
  }
  void SetAccepting(StateId s, bool accepting = true) {
    ECRPQ_DCHECK(s < static_cast<StateId>(num_states_));
    accepting_[s] = accepting;
  }

  // Index of `label` in the label set; dies if absent (see FindLabelIndex).
  int LabelIndex(Label label) const;

  // Index of `label`, or -1 if the label is not part of this DFA's alphabet.
  int FindLabelIndex(Label label) const;

  StateId Next(StateId s, int label_index) const {
    ECRPQ_DCHECK(s < static_cast<StateId>(num_states_));
    ECRPQ_DCHECK(label_index >= 0 &&
                 label_index < static_cast<int>(labels_.size()));
    return table_[static_cast<size_t>(s) * labels_.size() + label_index];
  }
  void SetNext(StateId s, int label_index, StateId to) {
    ECRPQ_DCHECK(s < static_cast<StateId>(num_states_));
    ECRPQ_DCHECK(label_index >= 0 &&
                 label_index < static_cast<int>(labels_.size()));
    ECRPQ_DCHECK(to < static_cast<StateId>(num_states_));
    table_[static_cast<size_t>(s) * labels_.size() + label_index] = to;
  }

  // Membership. Words containing labels outside the alphabet are rejected.
  bool Accepts(std::span<const Label> word) const;

  // Converts to an equivalent NFA (same states, same transitions).
  Nfa ToNfa() const;

  // In-place complement (flips accepting states). Valid because the DFA is
  // complete by construction.
  void Complement();

  // Returns the minimal DFA for the same language (Moore's partition
  // refinement followed by removal of unreachable states).
  Dfa Minimize() const;

  // Structural invariants (fires ECRPQ_CHECK on violation, any build mode):
  //  - the label set is sorted and deduplicated (alphabet consistency);
  //  - the transition table is dense: num_states × |labels| entries;
  //  - every transition target and the initial state are in range
  //    (completeness of the transition function).
  void CheckInvariants() const;

 private:
  int num_states_;
  std::vector<Label> labels_;
  std::vector<StateId> table_;
  StateId initial_ = 0;
  std::vector<bool> accepting_;
};

}  // namespace ecrpq

#endif  // ECRPQ_AUTOMATA_DFA_H_
