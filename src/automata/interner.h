// AutomatonInterner: cross-query canonicalization and deduplication of
// NFAs, plus a memoized Determinize.
//
// Evaluating a server-shaped workload re-builds the same language automata
// over and over (every CRPQ reach atom materializes one, every repeated
// regex compiles one). The interner maps each NFA to one shared canonical
// instance:
//
//  - Intern(nfa) normalizes a copy (per-state transition lists sorted and
//    deduplicated — which cannot change any reach set: the product BFS
//    emits via a vertex bitset sweep, so its output is independent of
//    transition order) and keys it on an exact canonical byte
//    serialization. Equal automata — regardless of transition insertion
//    order or initial-state listing order — intern to the same
//    shared_ptr and the same process-unique `unique_id`.
//  - unique_id is never reused, so downstream memo keys (the reach-set
//    memo keys on it) cannot suffer ABA: if the interner evicts an entry
//    and later re-interns equal bytes, the new id is fresh and the stale
//    downstream entries simply miss and age out.
//  - DeterminizeCached memoizes the subset construction per
//    (unique_id, label universe). The method is deliberately NOT named
//    "Determinize(": the ecrpq-raw-determinize lint rule pattern-matches
//    direct calls in src/eval/ and src/graphdb/, which must route here.
//
// Thread-safety: both maps live in ShardedLruCache (annotated mutexes);
// Intern uses the atomic GetOrInsert so racing threads agree on one
// unique_id per canonical byte string.
#ifndef ECRPQ_AUTOMATA_INTERNER_H_
#define ECRPQ_AUTOMATA_INTERNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "automata/dfa.h"
#include "automata/nfa.h"
#include "common/cache.h"
#include "common/metrics.h"

namespace ecrpq {

// A canonicalized, deduplicated automaton handle. The shared_ptr keeps the
// instance alive independently of interner eviction.
struct InternedNfa {
  std::shared_ptr<const Nfa> nfa;
  uint64_t unique_id = 0;
};

// Exact canonical serialization of `nfa` up to transition-list order and
// initial-list order (the serialization sorts both): two NFAs get equal
// bytes iff they are state-by-state identical modulo those orders. Used as
// the interner key — full bytes, not a hash, so collisions cannot conflate
// distinct automata.
std::string CanonicalNfaBytes(const Nfa& nfa);

class AutomatonInterner {
 public:
  static constexpr size_t kDefaultCapacityBytes = 16u << 20;  // 16 MiB.

  explicit AutomatonInterner(size_t capacity_bytes = kDefaultCapacityBytes)
      : nfas_(capacity_bytes / 2, /*num_shards=*/8),
        dfas_(capacity_bytes / 2, /*num_shards=*/8) {}

  // The process-wide instance every engine shares.
  static AutomatonInterner& Global();

  // Canonicalizes and dedups. O(|nfa| log |nfa|) on a miss, O(|nfa|) on a
  // hit (serialization is recomputed; the win is sharing the instance and
  // the downstream memo hits its id unlocks).
  InternedNfa Intern(const Nfa& nfa, obs::MetricsShard* obs_shard = nullptr);

  // Memoized subset construction for `interned` over `universe` (sorted,
  // superset of the NFA's labels — the Determinize contract).
  std::shared_ptr<const Dfa> DeterminizeCached(
      const InternedNfa& interned, const std::vector<Label>& universe,
      obs::MetricsShard* obs_shard = nullptr);

  // Test/bench hook: drop all entries (unique-id counter keeps running).
  void Clear() {
    nfas_.Clear();
    dfas_.Clear();
  }

  size_t SizeBytes() const { return nfas_.SizeBytes() + dfas_.SizeBytes(); }

  ShardedLruCache<std::string, InternedNfa, BytesHash>& nfa_cache() {
    return nfas_;
  }
  ShardedLruCache<std::string, std::shared_ptr<const Dfa>, BytesHash>&
  dfa_cache() {
    return dfas_;
  }

 private:
  ShardedLruCache<std::string, InternedNfa, BytesHash> nfas_;
  ShardedLruCache<std::string, std::shared_ptr<const Dfa>, BytesHash> dfas_;
};

}  // namespace ecrpq

#endif  // ECRPQ_AUTOMATA_INTERNER_H_
