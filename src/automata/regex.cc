#include "automata/regex.h"

#include <utility>

#include "common/check.h"

namespace ecrpq {
namespace {

constexpr std::string_view kMetaChars = "()|*+?.\\<>";

bool IsMeta(char c) { return kMetaChars.find(c) != std::string_view::npos; }

RegexPtr MakeNode(RegexNode::Kind kind) {
  auto node = std::make_unique<RegexNode>();
  node->kind = kind;
  return node;
}

// Recursive-descent parser.
class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<RegexPtr> Parse() {
    ECRPQ_ASSIGN_OR_RAISE(RegexPtr node, ParseAlt());
    if (pos_ != input_.size()) {
      return Status::ParseError("unexpected character '" +
                                std::string(1, input_[pos_]) +
                                "' at position " + std::to_string(pos_));
    }
    return node;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }

  Result<RegexPtr> ParseAlt() {
    ECRPQ_ASSIGN_OR_RAISE(RegexPtr first, ParseConcat());
    if (AtEnd() || Peek() != '|') return first;
    RegexPtr alt = MakeNode(RegexNode::Kind::kAlt);
    alt->children.push_back(std::move(first));
    while (!AtEnd() && Peek() == '|') {
      ++pos_;
      ECRPQ_ASSIGN_OR_RAISE(RegexPtr next, ParseConcat());
      alt->children.push_back(std::move(next));
    }
    return alt;
  }

  Result<RegexPtr> ParseConcat() {
    std::vector<RegexPtr> parts;
    while (!AtEnd() && Peek() != '|' && Peek() != ')') {
      ECRPQ_ASSIGN_OR_RAISE(RegexPtr part, ParseRep());
      parts.push_back(std::move(part));
    }
    if (parts.empty()) return MakeNode(RegexNode::Kind::kEmptyString);
    if (parts.size() == 1) return std::move(parts[0]);
    RegexPtr concat = MakeNode(RegexNode::Kind::kConcat);
    concat->children = std::move(parts);
    return concat;
  }

  Result<RegexPtr> ParseRep() {
    ECRPQ_ASSIGN_OR_RAISE(RegexPtr node, ParseAtom());
    while (!AtEnd()) {
      RegexNode::Kind kind;
      switch (Peek()) {
        case '*':
          kind = RegexNode::Kind::kStar;
          break;
        case '+':
          kind = RegexNode::Kind::kPlus;
          break;
        case '?':
          kind = RegexNode::Kind::kOpt;
          break;
        default:
          return node;
      }
      ++pos_;
      RegexPtr rep = MakeNode(kind);
      rep->children.push_back(std::move(node));
      node = std::move(rep);
    }
    return node;
  }

  Result<RegexPtr> ParseAtom() {
    if (AtEnd()) return Status::ParseError("unexpected end of pattern");
    const char c = Peek();
    if (c == '(') {
      ++pos_;
      ECRPQ_ASSIGN_OR_RAISE(RegexPtr inner, ParseAlt());
      if (AtEnd() || Peek() != ')') {
        return Status::ParseError("missing ')' at position " +
                                  std::to_string(pos_));
      }
      ++pos_;
      return inner;
    }
    if (c == '.') {
      ++pos_;
      return MakeNode(RegexNode::Kind::kAny);
    }
    if (c == '\\') {
      ++pos_;
      if (AtEnd()) return Status::ParseError("dangling escape at end");
      RegexPtr sym = MakeNode(RegexNode::Kind::kSymbol);
      sym->symbol = std::string(1, input_[pos_]);
      ++pos_;
      return sym;
    }
    if (c == '<') {
      // Multi-character symbol literal: <name> (e.g. inverse labels a~).
      ++pos_;
      std::string name;
      while (!AtEnd() && Peek() != '>') {
        name += Peek();
        ++pos_;
      }
      if (AtEnd()) return Status::ParseError("missing '>' in symbol literal");
      ++pos_;
      if (name.empty()) {
        return Status::ParseError("empty <> symbol literal");
      }
      RegexPtr sym = MakeNode(RegexNode::Kind::kSymbol);
      sym->symbol = name;
      return sym;
    }
    if (IsMeta(c)) {
      return Status::ParseError("unexpected metacharacter '" +
                                std::string(1, c) + "' at position " +
                                std::to_string(pos_));
    }
    ++pos_;
    RegexPtr sym = MakeNode(RegexNode::Kind::kSymbol);
    sym->symbol = std::string(1, c);
    return sym;
  }

  std::string_view input_;
  size_t pos_ = 0;
};

// Thompson fragments: a sub-NFA with one entry and one exit state.
struct Fragment {
  StateId entry;
  StateId exit;
};

Fragment Compile(const RegexNode& node, Alphabet* alphabet, Nfa* nfa) {
  switch (node.kind) {
    case RegexNode::Kind::kEmptyString: {
      const StateId s = nfa->AddState();
      const StateId t = nfa->AddState();
      nfa->AddTransition(s, kEpsilon, t);
      return {s, t};
    }
    case RegexNode::Kind::kSymbol: {
      const StateId s = nfa->AddState();
      const StateId t = nfa->AddState();
      nfa->AddTransition(s, alphabet->Intern(node.symbol), t);
      return {s, t};
    }
    case RegexNode::Kind::kAny: {
      const StateId s = nfa->AddState();
      const StateId t = nfa->AddState();
      for (Symbol a = 0; a < static_cast<Symbol>(alphabet->size()); ++a) {
        nfa->AddTransition(s, a, t);
      }
      return {s, t};
    }
    case RegexNode::Kind::kConcat: {
      ECRPQ_CHECK_GE(node.children.size(), 2u);
      Fragment acc = Compile(*node.children[0], alphabet, nfa);
      for (size_t i = 1; i < node.children.size(); ++i) {
        Fragment next = Compile(*node.children[i], alphabet, nfa);
        nfa->AddTransition(acc.exit, kEpsilon, next.entry);
        acc.exit = next.exit;
      }
      return acc;
    }
    case RegexNode::Kind::kAlt: {
      const StateId s = nfa->AddState();
      const StateId t = nfa->AddState();
      for (const RegexPtr& child : node.children) {
        Fragment f = Compile(*child, alphabet, nfa);
        nfa->AddTransition(s, kEpsilon, f.entry);
        nfa->AddTransition(f.exit, kEpsilon, t);
      }
      return {s, t};
    }
    case RegexNode::Kind::kStar: {
      Fragment inner = Compile(*node.children[0], alphabet, nfa);
      const StateId s = nfa->AddState();
      const StateId t = nfa->AddState();
      nfa->AddTransition(s, kEpsilon, inner.entry);
      nfa->AddTransition(inner.exit, kEpsilon, t);
      nfa->AddTransition(s, kEpsilon, t);
      nfa->AddTransition(inner.exit, kEpsilon, inner.entry);
      return {s, t};
    }
    case RegexNode::Kind::kPlus: {
      Fragment inner = Compile(*node.children[0], alphabet, nfa);
      const StateId s = nfa->AddState();
      const StateId t = nfa->AddState();
      nfa->AddTransition(s, kEpsilon, inner.entry);
      nfa->AddTransition(inner.exit, kEpsilon, t);
      nfa->AddTransition(inner.exit, kEpsilon, inner.entry);
      return {s, t};
    }
    case RegexNode::Kind::kOpt: {
      Fragment inner = Compile(*node.children[0], alphabet, nfa);
      const StateId s = nfa->AddState();
      const StateId t = nfa->AddState();
      nfa->AddTransition(s, kEpsilon, inner.entry);
      nfa->AddTransition(inner.exit, kEpsilon, t);
      nfa->AddTransition(s, kEpsilon, t);
      return {s, t};
    }
  }
  ECRPQ_CHECK(false) << "unreachable regex kind";
  return {0, 0};
}

std::string EscapeSymbol(const std::string& s) {
  if (s.size() == 1 && IsMeta(s[0])) return "\\" + s;
  if (s.size() > 1) return "<" + s + ">";
  return s;
}

}  // namespace

Result<RegexPtr> ParseRegex(std::string_view pattern) {
  return Parser(pattern).Parse();
}

Nfa CompileRegex(const RegexNode& regex, Alphabet* alphabet) {
  Nfa nfa;
  const Fragment f = Compile(regex, alphabet, &nfa);
  nfa.SetInitial(f.entry);
  nfa.SetAccepting(f.exit);
  return nfa;
}

Result<Nfa> CompileRegex(std::string_view pattern, Alphabet* alphabet) {
  ECRPQ_ASSIGN_OR_RAISE(RegexPtr regex, ParseRegex(pattern));
  return CompileRegex(*regex, alphabet);
}

std::string RegexToString(const RegexNode& regex) {
  switch (regex.kind) {
    case RegexNode::Kind::kEmptyString:
      return "()";
    case RegexNode::Kind::kSymbol:
      return EscapeSymbol(regex.symbol);
    case RegexNode::Kind::kAny:
      return ".";
    case RegexNode::Kind::kConcat: {
      std::string out;
      for (const RegexPtr& c : regex.children) {
        const bool paren = c->kind == RegexNode::Kind::kAlt;
        if (paren) out += "(";
        out += RegexToString(*c);
        if (paren) out += ")";
      }
      return out;
    }
    case RegexNode::Kind::kAlt: {
      std::string out;
      for (size_t i = 0; i < regex.children.size(); ++i) {
        if (i > 0) out += "|";
        out += RegexToString(*regex.children[i]);
      }
      return out;
    }
    case RegexNode::Kind::kStar:
    case RegexNode::Kind::kPlus:
    case RegexNode::Kind::kOpt: {
      const RegexNode& child = *regex.children[0];
      const bool paren = child.kind == RegexNode::Kind::kConcat ||
                         child.kind == RegexNode::Kind::kAlt;
      std::string out = paren ? "(" + RegexToString(child) + ")"
                              : RegexToString(child);
      out += regex.kind == RegexNode::Kind::kStar  ? "*"
             : regex.kind == RegexNode::Kind::kPlus ? "+"
                                                    : "?";
      return out;
    }
  }
  ECRPQ_CHECK(false) << "unreachable regex kind";
  return "";
}

}  // namespace ecrpq
