// Nfa: nondeterministic finite automaton with 64-bit transition labels.
//
// The label space is deliberately opaque: word automata use Symbol ids,
// synchronous-relation automata use packed multi-tape letters (see
// synchro/tape_pack.h). The reserved label kEpsilon marks ε-transitions.
#ifndef ECRPQ_AUTOMATA_NFA_H_
#define ECRPQ_AUTOMATA_NFA_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/check.h"

namespace ecrpq {

using StateId = uint32_t;
using Label = uint64_t;

inline constexpr Label kEpsilon = ~Label{0};

class Nfa {
 public:
  struct Transition {
    Label label;
    StateId to;
    bool operator==(const Transition&) const = default;
  };

  Nfa() = default;
  explicit Nfa(int num_states) { AddStates(num_states); }

  StateId AddState() {
    transitions_.emplace_back();
    accepting_.push_back(false);
    return static_cast<StateId>(transitions_.size() - 1);
  }

  void AddStates(int n) {
    for (int i = 0; i < n; ++i) AddState();
  }

  int NumStates() const { return static_cast<int>(transitions_.size()); }

  size_t NumTransitions() const {
    size_t n = 0;
    for (const auto& t : transitions_) n += t.size();
    return n;
  }

  void AddTransition(StateId from, Label label, StateId to) {
    ECRPQ_DCHECK(from < transitions_.size());
    ECRPQ_DCHECK(to < transitions_.size());
    transitions_[from].push_back(Transition{label, to});
  }

  void SetInitial(StateId s) {
    ECRPQ_DCHECK(s < transitions_.size());
    initial_.push_back(s);
  }

  void SetAccepting(StateId s, bool accepting = true) {
    ECRPQ_DCHECK(s < transitions_.size());
    accepting_[s] = accepting;
  }

  bool IsAccepting(StateId s) const {
    ECRPQ_DCHECK(s < transitions_.size());
    return accepting_[s];
  }

  const std::vector<StateId>& initial() const { return initial_; }

  std::span<const Transition> TransitionsFrom(StateId s) const {
    ECRPQ_DCHECK(s < transitions_.size());
    return transitions_[s];
  }

  // ε-closure of a state set, in-place (the set is kept sorted and deduped).
  void EpsilonClose(std::vector<StateId>* states) const;

  // Membership: does the automaton accept `word` (sequence of labels)?
  bool Accepts(std::span<const Label> word) const;

  // True iff the accepted language is empty.
  bool IsEmpty() const;

  // A shortest accepted word, or nullopt if the language is empty.
  std::optional<std::vector<Label>> ShortestWitness() const;

  // All distinct non-ε labels appearing on transitions, sorted.
  std::vector<Label> CollectLabels() const;

  // Removes states that are not both reachable from an initial state and
  // co-reachable from an accepting state. Renumbers states.
  void Trim();

  // Sorts each state's transition list by (label, to) and removes duplicates.
  void Normalize();

  // Structural invariants (fires ECRPQ_CHECK on violation, any build mode):
  //  - accepting bits sized to the state count;
  //  - every initial state id in range;
  //  - every transition target in range.
  // Mutating operations re-assert this via ECRPQ_DCHECK_INVARIANT.
  void CheckInvariants() const;

  // Deep equality of representation (not language equivalence).
  bool operator==(const Nfa&) const = default;

 private:
  std::vector<std::vector<Transition>> transitions_;
  std::vector<StateId> initial_;
  std::vector<bool> accepting_;
};

}  // namespace ecrpq

#endif  // ECRPQ_AUTOMATA_NFA_H_
