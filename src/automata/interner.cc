#include "automata/interner.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "automata/ops.h"
#include "common/hash.h"

namespace ecrpq {
namespace {

// Heap footprint estimates for the LRU byte budget. Coarse on purpose (the
// budget bounds order of magnitude, not exact bytes) but monotone in the
// real allocation size.
size_t NfaCostBytes(const Nfa& nfa) {
  return static_cast<size_t>(nfa.NumStates()) * 48 +
         nfa.NumTransitions() * sizeof(Nfa::Transition);
}

size_t DfaCostBytes(const Dfa& dfa) {
  return static_cast<size_t>(dfa.NumStates()) * dfa.labels().size() *
             sizeof(StateId) +
         dfa.labels().size() * sizeof(Label) + dfa.NumStates() / 8 + 64;
}

uint64_t NextUniqueId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::string CanonicalNfaBytes(const Nfa& nfa) {
  std::string out;
  const uint32_t n = static_cast<uint32_t>(nfa.NumStates());
  out.reserve(16 + n * 8 + nfa.NumTransitions() * 12);
  AppendU32(&out, n);
  // Initial states, sorted + deduplicated (listing order is irrelevant to
  // the language and to every consumer).
  std::vector<StateId> init(nfa.initial());
  std::sort(init.begin(), init.end());
  init.erase(std::unique(init.begin(), init.end()), init.end());
  AppendU32(&out, static_cast<uint32_t>(init.size()));
  for (StateId s : init) AppendU32(&out, s);
  // Accepting bitset.
  for (StateId s = 0; s < n; ++s) {
    out.push_back(nfa.IsAccepting(s) ? '\1' : '\0');
  }
  // Per-state transitions, sorted by (label, to) and deduplicated — the
  // same canonical order Nfa::Normalize() produces, computed on a scratch
  // copy so serialization never mutates its argument.
  std::vector<Nfa::Transition> scratch;
  for (StateId s = 0; s < n; ++s) {
    const auto span = nfa.TransitionsFrom(s);
    scratch.assign(span.begin(), span.end());
    std::sort(scratch.begin(), scratch.end(),
              [](const Nfa::Transition& a, const Nfa::Transition& b) {
                return a.label != b.label ? a.label < b.label : a.to < b.to;
              });
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    AppendU32(&out, static_cast<uint32_t>(scratch.size()));
    for (const Nfa::Transition& t : scratch) {
      AppendU64(&out, t.label);
      AppendU32(&out, t.to);
    }
  }
  return out;
}

AutomatonInterner& AutomatonInterner::Global() {
  static AutomatonInterner* interner = new AutomatonInterner();
  return *interner;
}

InternedNfa AutomatonInterner::Intern(const Nfa& nfa,
                                      obs::MetricsShard* obs_shard) {
  std::string key = CanonicalNfaBytes(nfa);
  const size_t cost = key.size() + NfaCostBytes(nfa);
  // GetOrInsert holds the shard lock across the factory, so two threads
  // interning equal automata concurrently observe ONE unique_id — the
  // stability the reach-set memo keys depend on.
  return nfas_.GetOrInsert(
      key,
      [&] {
        auto canonical = std::make_shared<Nfa>(nfa);
        canonical->Normalize();
        return InternedNfa{std::move(canonical), NextUniqueId()};
      },
      [&](const InternedNfa&) { return cost; }, obs_shard);
}

std::shared_ptr<const Dfa> AutomatonInterner::DeterminizeCached(
    const InternedNfa& interned, const std::vector<Label>& universe,
    obs::MetricsShard* obs_shard) {
  ECRPQ_CHECK(interned.nfa != nullptr)
      << "DeterminizeCached: intern the NFA first";
  std::string key;
  key.reserve(8 + universe.size() * 8);
  AppendU64(&key, interned.unique_id);
  for (Label l : universe) AppendU64(&key, l);
  return dfas_.GetOrInsert(
      key,
      [&] {
        return std::make_shared<const Dfa>(
            Determinize(*interned.nfa, universe));
      },
      [](const std::shared_ptr<const Dfa>& dfa) {
        return DfaCostBytes(*dfa);
      },
      obs_shard);
}

}  // namespace ecrpq
