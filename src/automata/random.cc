#include "automata/random.h"

namespace ecrpq {

Dfa RandomDfa(Rng* rng, const RandomDfaOptions& options) {
  std::vector<Label> labels;
  for (int a = 0; a < options.alphabet_size; ++a) {
    labels.push_back(static_cast<Label>(a));
  }
  Dfa dfa(options.num_states, std::move(labels));
  dfa.SetInitial(0);
  bool any_accepting = false;
  for (int s = 0; s < options.num_states; ++s) {
    for (int li = 0; li < options.alphabet_size; ++li) {
      dfa.SetNext(s, li,
                  static_cast<StateId>(rng->Below(options.num_states)));
    }
    if (rng->Chance(options.accept_prob)) {
      dfa.SetAccepting(s);
      any_accepting = true;
    }
  }
  if (!any_accepting && options.force_accepting) {
    dfa.SetAccepting(static_cast<StateId>(rng->Below(options.num_states)));
  }
  return dfa;
}

Nfa RandomNfa(Rng* rng, const RandomNfaOptions& options) {
  Nfa nfa(options.num_states);
  nfa.SetInitial(0);
  const double per_edge_prob =
      options.density / static_cast<double>(options.num_states);
  bool any_accepting = false;
  for (int s = 0; s < options.num_states; ++s) {
    for (int a = 0; a < options.alphabet_size; ++a) {
      for (int t = 0; t < options.num_states; ++t) {
        if (rng->Chance(per_edge_prob)) {
          nfa.AddTransition(s, static_cast<Label>(a),
                            static_cast<StateId>(t));
        }
      }
    }
    if (rng->Chance(options.accept_prob)) {
      nfa.SetAccepting(s);
      any_accepting = true;
    }
  }
  if (!any_accepting && options.force_accepting) {
    nfa.SetAccepting(static_cast<StateId>(rng->Below(options.num_states)));
  }
  return nfa;
}

std::vector<Label> RandomWord(Rng* rng, int length, int alphabet_size) {
  std::vector<Label> word(length);
  for (int i = 0; i < length; ++i) {
    word[i] = static_cast<Label>(rng->Below(alphabet_size));
  }
  return word;
}

}  // namespace ecrpq
