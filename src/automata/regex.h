// Regular expressions over an Alphabet, compiled to NFAs via the Thompson
// construction.
//
// Grammar (POSIX-ish subset):
//   alt    :=  concat ('|' concat)*
//   concat :=  rep*                        (empty concat denotes ε)
//   rep    :=  atom ('*' | '+' | '?')*
//   atom   :=  sym | '.' | '(' alt ')'
//   sym    :=  any character except ( ) | * + ? . \   or   '\' c  (escape)
//
// Each non-escaped character is one symbol of the alphabet. '.' stands for
// any symbol of the alphabet (at compile time). Symbols are interned into the
// supplied alphabet on demand.
#ifndef ECRPQ_AUTOMATA_REGEX_H_
#define ECRPQ_AUTOMATA_REGEX_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "automata/alphabet.h"
#include "automata/nfa.h"
#include "common/result.h"

namespace ecrpq {

struct RegexNode;
using RegexPtr = std::unique_ptr<RegexNode>;

struct RegexNode {
  enum class Kind {
    kEmptyString,  // ε — named to avoid shadowing nfa.h's kEpsilon label.
    kSymbol,
    kAny,
    kConcat,
    kAlt,
    kStar,
    kPlus,
    kOpt
  };
  Kind kind;
  std::string symbol;            // kSymbol only.
  std::vector<RegexPtr> children;  // kConcat/kAlt: 2+; kStar/kPlus/kOpt: 1.
};

// Parses a regular expression. Does not touch any alphabet (symbols stay
// strings until compilation).
Result<RegexPtr> ParseRegex(std::string_view pattern);

// Compiles a parsed regex to an NFA, interning symbols into `alphabet`.
// '.' expands to the symbols present in `alphabet` at call time, so intern
// the full alphabet before compiling patterns that use '.'.
Nfa CompileRegex(const RegexNode& regex, Alphabet* alphabet);

// Parse + compile in one step.
Result<Nfa> CompileRegex(std::string_view pattern, Alphabet* alphabet);

// Renders the regex back to a string (parenthesized, parse-stable).
std::string RegexToString(const RegexNode& regex);

}  // namespace ecrpq

#endif  // ECRPQ_AUTOMATA_REGEX_H_
