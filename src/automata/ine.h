// Intersection non-emptiness (INE) — the paper's complexity yardstick.
//
// INE for regular languages is PSPACE-complete [Kozen'77]; its parameterized
// version p-IE (parameter = number of automata) is XNL-complete [20 in the
// paper]. The lower-bound reductions of Lemmas 5.1 and 5.4 reduce (p-)INE to
// (p-)eval-ECRPQ; this module provides the independent solver used to
// differential-test those reductions and to benchmark against.
#ifndef ECRPQ_AUTOMATA_INE_H_
#define ECRPQ_AUTOMATA_INE_H_

#include <optional>
#include <vector>

#include "automata/dfa.h"
#include "automata/nfa.h"

namespace ecrpq {

struct IneOptions {
  // Abort after this many product states have been explored; returns nullopt
  // from the *Witness variants and treats the instance as "unknown". 0 means
  // unlimited.
  size_t max_states = 0;
};

struct IneResult {
  // True iff the intersection is non-empty (valid only if !aborted).
  bool non_empty = false;
  // Shortest word in the intersection when non-empty.
  std::vector<Label> witness;
  // Number of product states explored (the PSPACE-ness made visible).
  size_t explored_states = 0;
  // Search hit options.max_states before reaching a verdict.
  bool aborted = false;
};

// On-the-fly BFS over the product of the automata. Never materializes the
// product automaton. Works for NFAs with ε-transitions.
IneResult IntersectionNonEmpty(const std::vector<const Nfa*>& automata,
                               const IneOptions& options = {});

// Convenience overload for DFAs.
IneResult IntersectionNonEmpty(const std::vector<const Dfa*>& automata,
                               const IneOptions& options = {});

}  // namespace ecrpq

#endif  // ECRPQ_AUTOMATA_INE_H_
