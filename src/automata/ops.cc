#include "automata/ops.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/hash.h"

namespace ecrpq {

Dfa Determinize(const Nfa& nfa, const std::vector<Label>& universe) {
  ECRPQ_DCHECK(std::is_sorted(universe.begin(), universe.end()));

  std::map<std::vector<StateId>, StateId> subset_id;
  std::vector<std::vector<StateId>> subsets;

  auto intern = [&](std::vector<StateId> subset) -> std::pair<StateId, bool> {
    auto [it, inserted] =
        subset_id.emplace(subset, static_cast<StateId>(subsets.size()));
    if (inserted) subsets.push_back(std::move(subset));
    return {it->second, inserted};
  };

  std::vector<StateId> start(nfa.initial());
  nfa.EpsilonClose(&start);
  intern(std::move(start));

  // Rows of the eventual table, built as we discover subsets.
  std::vector<std::vector<StateId>> rows;
  for (size_t cur = 0; cur < subsets.size(); ++cur) {
    std::vector<StateId> row(universe.size());
    for (size_t li = 0; li < universe.size(); ++li) {
      const Label a = universe[li];
      std::vector<StateId> next;
      for (StateId s : subsets[cur]) {
        for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
          if (t.label == a) next.push_back(t.to);
        }
      }
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
      nfa.EpsilonClose(&next);
      row[li] = intern(std::move(next)).first;
    }
    rows.push_back(std::move(row));
  }

  Dfa dfa(static_cast<int>(subsets.size()), universe);
  dfa.SetInitial(0);
  for (size_t s = 0; s < subsets.size(); ++s) {
    for (size_t li = 0; li < universe.size(); ++li) {
      dfa.SetNext(static_cast<StateId>(s), static_cast<int>(li), rows[s][li]);
    }
    for (StateId q : subsets[s]) {
      if (nfa.IsAccepting(q)) {
        dfa.SetAccepting(static_cast<StateId>(s));
        break;
      }
    }
  }
  return dfa;
}

Nfa Intersect(const Nfa& a, const Nfa& b) {
  // Pair states (sa, sb), discovered on the fly. ε in either component moves
  // independently.
  std::unordered_map<uint64_t, StateId> pair_id;
  std::vector<std::pair<StateId, StateId>> pairs;
  Nfa out;

  auto key = [&](StateId sa, StateId sb) {
    return (static_cast<uint64_t>(sa) << 32) | sb;
  };
  auto intern = [&](StateId sa, StateId sb) -> StateId {
    auto [it, inserted] =
        pair_id.emplace(key(sa, sb), static_cast<StateId>(pairs.size()));
    if (inserted) {
      pairs.emplace_back(sa, sb);
      const StateId id = out.AddState();
      ECRPQ_DCHECK(id == it->second);
      if (a.IsAccepting(sa) && b.IsAccepting(sb)) out.SetAccepting(id);
    }
    return it->second;
  };

  for (StateId sa : a.initial()) {
    for (StateId sb : b.initial()) {
      out.SetInitial(intern(sa, sb));
    }
  }
  for (size_t cur = 0; cur < pairs.size(); ++cur) {
    const auto [sa, sb] = pairs[cur];
    for (const Nfa::Transition& ta : a.TransitionsFrom(sa)) {
      if (ta.label == kEpsilon) {
        out.AddTransition(static_cast<StateId>(cur), kEpsilon,
                          intern(ta.to, sb));
        continue;
      }
      for (const Nfa::Transition& tb : b.TransitionsFrom(sb)) {
        if (tb.label == ta.label) {
          out.AddTransition(static_cast<StateId>(cur), ta.label,
                            intern(ta.to, tb.to));
        }
      }
    }
    for (const Nfa::Transition& tb : b.TransitionsFrom(sb)) {
      if (tb.label == kEpsilon) {
        out.AddTransition(static_cast<StateId>(cur), kEpsilon,
                          intern(sa, tb.to));
      }
    }
  }
  out.Normalize();
  return out;
}

Nfa Union(const Nfa& a, const Nfa& b) {
  Nfa out(a.NumStates() + b.NumStates());
  const StateId offset = static_cast<StateId>(a.NumStates());
  for (StateId s = 0; s < static_cast<StateId>(a.NumStates()); ++s) {
    if (a.IsAccepting(s)) out.SetAccepting(s);
    for (const Nfa::Transition& t : a.TransitionsFrom(s)) {
      out.AddTransition(s, t.label, t.to);
    }
  }
  for (StateId s = 0; s < static_cast<StateId>(b.NumStates()); ++s) {
    if (b.IsAccepting(s)) out.SetAccepting(offset + s);
    for (const Nfa::Transition& t : b.TransitionsFrom(s)) {
      out.AddTransition(offset + s, t.label, offset + t.to);
    }
  }
  for (StateId s : a.initial()) out.SetInitial(s);
  for (StateId s : b.initial()) out.SetInitial(offset + s);
  return out;
}

Nfa Complement(const Nfa& nfa, const std::vector<Label>& universe) {
  Dfa dfa = Determinize(nfa, universe);
  dfa.Complement();
  return dfa.ToNfa();
}

bool Included(const Nfa& a, const Nfa& b,
              const std::vector<Label>& universe) {
  // L(a) ⊆ L(b)  iff  L(a) ∩ ¬L(b) = ∅.
  Nfa not_b = Complement(b, universe);
  return Intersect(a, not_b).IsEmpty();
}

bool Equivalent(const Nfa& a, const Nfa& b,
                const std::vector<Label>& universe) {
  return Included(a, b, universe) && Included(b, a, universe);
}

Nfa RemoveEpsilon(const Nfa& nfa) {
  const int n = nfa.NumStates();
  Nfa out(n);
  for (StateId s = 0; s < static_cast<StateId>(n); ++s) {
    std::vector<StateId> closure{s};
    nfa.EpsilonClose(&closure);
    bool accepting = false;
    for (StateId c : closure) {
      accepting = accepting || nfa.IsAccepting(c);
      for (const Nfa::Transition& t : nfa.TransitionsFrom(c)) {
        if (t.label != kEpsilon) out.AddTransition(s, t.label, t.to);
      }
    }
    if (accepting) out.SetAccepting(s);
  }
  for (StateId s : nfa.initial()) out.SetInitial(s);
  out.Normalize();
  out.Trim();
  return out;
}

std::vector<Label> UnionLabels(const std::vector<const Nfa*>& nfas,
                               const std::vector<Label>& extra) {
  std::vector<Label> labels(extra);
  for (const Nfa* nfa : nfas) {
    const std::vector<Label> ls = nfa->CollectLabels();
    labels.insert(labels.end(), ls.begin(), ls.end());
  }
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  return labels;
}

}  // namespace ecrpq
