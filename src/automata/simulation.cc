#include "automata/simulation.h"

#include <algorithm>
#include <map>

#include "automata/ops.h"
#include "common/check.h"

namespace ecrpq {

std::vector<std::vector<bool>> SimulationPreorder(const Nfa& input) {
  // Work on an ε-free automaton.
  bool has_epsilon = false;
  for (StateId s = 0; s < static_cast<StateId>(input.NumStates()); ++s) {
    for (const Nfa::Transition& t : input.TransitionsFrom(s)) {
      if (t.label == kEpsilon) {
        has_epsilon = true;
        break;
      }
    }
  }
  const Nfa nfa = has_epsilon ? RemoveEpsilon(input) : input;
  const int n = nfa.NumStates();

  // Per state: transitions grouped by label.
  std::vector<std::map<Label, std::vector<StateId>>> moves(n);
  for (StateId s = 0; s < static_cast<StateId>(n); ++s) {
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      moves[s][t.label].push_back(t.to);
    }
  }

  // Greatest fixpoint: start from the acceptance-compatible full relation
  // and remove violating pairs until stable.
  std::vector<std::vector<bool>> sim(n, std::vector<bool>(n, true));
  for (int s = 0; s < n; ++s) {
    for (int t = 0; t < n; ++t) {
      if (nfa.IsAccepting(s) && !nfa.IsAccepting(t)) sim[s][t] = false;
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (int s = 0; s < n; ++s) {
      for (int t = 0; t < n; ++t) {
        if (!sim[s][t]) continue;
        // Every s -a-> s' must be matched by some t -a-> t' with
        // sim[s'][t'].
        bool ok = true;
        for (const auto& [label, succs] : moves[s]) {
          auto it = moves[t].find(label);
          for (StateId sp : succs) {
            bool matched = false;
            if (it != moves[t].end()) {
              for (StateId tp : it->second) {
                if (sim[sp][tp]) {
                  matched = true;
                  break;
                }
              }
            }
            if (!matched) {
              ok = false;
              break;
            }
          }
          if (!ok) break;
        }
        if (!ok) {
          sim[s][t] = false;
          changed = true;
        }
      }
    }
  }
  return sim;
}

Nfa ReduceBySimulation(const Nfa& input) {
  bool has_epsilon = false;
  for (StateId s = 0; s < static_cast<StateId>(input.NumStates()); ++s) {
    for (const Nfa::Transition& t : input.TransitionsFrom(s)) {
      if (t.label == kEpsilon) {
        has_epsilon = true;
        break;
      }
    }
  }
  const Nfa nfa = has_epsilon ? RemoveEpsilon(input) : input;
  const int n = nfa.NumStates();
  if (n == 0) return nfa;

  const std::vector<std::vector<bool>> sim = SimulationPreorder(nfa);

  // Equivalence classes of mutual simulation; representative = smallest id.
  std::vector<int> rep(n);
  for (int s = 0; s < n; ++s) {
    rep[s] = s;
    for (int t = 0; t < s; ++t) {
      if (sim[s][t] && sim[t][s]) {
        rep[s] = rep[t];
        break;
      }
    }
  }
  std::vector<int> dense(n, -1);
  int num_classes = 0;
  for (int s = 0; s < n; ++s) {
    if (rep[s] == s) dense[s] = num_classes++;
  }
  Nfa out(num_classes);
  for (StateId s : nfa.initial()) out.SetInitial(dense[rep[s]]);
  for (int s = 0; s < n; ++s) {
    if (nfa.IsAccepting(s)) out.SetAccepting(dense[rep[s]]);
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      out.AddTransition(dense[rep[s]], t.label, dense[rep[t.to]]);
    }
  }
  out.Normalize();
  out.Trim();
  return out;
}

}  // namespace ecrpq
