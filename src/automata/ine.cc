#include "automata/ine.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/hash.h"

namespace ecrpq {
namespace {

using Tuple = std::vector<StateId>;

struct Search {
  const std::vector<const Nfa*>& automata;
  const IneOptions& options;

  std::unordered_map<Tuple, uint32_t, VectorHash<StateId>> id_of;
  std::vector<Tuple> tuples;
  // parent[i] = (predecessor id, label taken); label == kEpsilon for ε.
  std::vector<std::pair<uint32_t, Label>> parent;
  std::deque<uint32_t> queue;

  // Interns a tuple; pushes it to the front (ε edge) or back (letter edge)
  // of the 0/1-BFS deque if new. Returns false when the state budget is hit.
  bool Visit(Tuple tuple, uint32_t from, Label label, bool front) {
    auto [it, inserted] =
        id_of.emplace(std::move(tuple), static_cast<uint32_t>(tuples.size()));
    if (!inserted) return true;
    if (options.max_states != 0 && tuples.size() >= options.max_states) {
      return false;
    }
    tuples.push_back(it->first);
    parent.emplace_back(from, label);
    if (front) {
      queue.push_front(it->second);
    } else {
      queue.push_back(it->second);
    }
    return true;
  }

  bool AllAccepting(const Tuple& tuple) const {
    for (size_t i = 0; i < automata.size(); ++i) {
      if (!automata[i]->IsAccepting(tuple[i])) return false;
    }
    return true;
  }

  std::vector<Label> ReconstructWitness(uint32_t id) const {
    std::vector<Label> word;
    while (parent[id].first != id) {
      if (parent[id].second != kEpsilon) word.push_back(parent[id].second);
      id = parent[id].first;
    }
    std::reverse(word.begin(), word.end());
    return word;
  }

  // Enumerates all successor tuples of `tuple` under letter `a`, where
  // component i must pick one of succs[i]. Returns false on budget overrun.
  bool EmitLetterSuccessors(uint32_t from,
                            const std::vector<std::vector<StateId>>& succs,
                            Label a) {
    Tuple scratch(succs.size());
    return EmitRec(from, succs, a, 0, &scratch);
  }

  bool EmitRec(uint32_t from, const std::vector<std::vector<StateId>>& succs,
               Label a, size_t i, Tuple* scratch) {
    if (i == succs.size()) {
      return Visit(*scratch, from, a, /*front=*/false);
    }
    for (StateId s : succs[i]) {
      (*scratch)[i] = s;
      if (!EmitRec(from, succs, a, i + 1, scratch)) return false;
    }
    return true;
  }
};

}  // namespace

IneResult IntersectionNonEmpty(const std::vector<const Nfa*>& automata,
                               const IneOptions& options) {
  IneResult result;
  if (automata.empty()) {
    // Empty intersection over A* — conventionally non-empty (ε).
    result.non_empty = true;
    return result;
  }

  Search search{automata, options, {}, {}, {}, {}};

  // Seed with the cartesian product of initial states.
  {
    Tuple scratch(automata.size());
    // Iterative cartesian product over initial-state lists.
    std::vector<size_t> idx(automata.size(), 0);
    for (const Nfa* a : automata) {
      if (a->initial().empty()) {
        result.non_empty = false;
        return result;
      }
    }
    bool done = false;
    while (!done) {
      for (size_t i = 0; i < automata.size(); ++i) {
        scratch[i] = automata[i]->initial()[idx[i]];
      }
      Tuple seed = scratch;
      auto [it, inserted] = search.id_of.emplace(
          std::move(seed), static_cast<uint32_t>(search.tuples.size()));
      if (inserted) {
        search.tuples.push_back(it->first);
        search.parent.emplace_back(it->second, kEpsilon);
        search.queue.push_back(it->second);
      }
      // Advance mixed-radix counter.
      size_t i = 0;
      for (; i < automata.size(); ++i) {
        if (++idx[i] < automata[i]->initial().size()) break;
        idx[i] = 0;
      }
      done = (i == automata.size());
    }
  }

  bool aborted = false;
  while (!search.queue.empty() && !aborted) {
    const uint32_t id = search.queue.front();
    search.queue.pop_front();
    const Tuple tuple = search.tuples[id];  // Copy: vector may reallocate.

    if (search.AllAccepting(tuple)) {
      result.non_empty = true;
      result.witness = search.ReconstructWitness(id);
      result.explored_states = search.tuples.size();
      return result;
    }

    // ε moves: one component at a time.
    for (size_t i = 0; i < automata.size() && !aborted; ++i) {
      for (const Nfa::Transition& t : automata[i]->TransitionsFrom(tuple[i])) {
        if (t.label != kEpsilon) continue;
        Tuple next = tuple;
        next[i] = t.to;
        if (!search.Visit(std::move(next), id, kEpsilon, /*front=*/true)) {
          aborted = true;
          break;
        }
      }
    }
    if (aborted) break;

    // Letter moves: candidate letters come from component 0's transitions.
    std::vector<Label> letters;
    for (const Nfa::Transition& t : automata[0]->TransitionsFrom(tuple[0])) {
      if (t.label != kEpsilon) letters.push_back(t.label);
    }
    std::sort(letters.begin(), letters.end());
    letters.erase(std::unique(letters.begin(), letters.end()), letters.end());

    for (const Label a : letters) {
      std::vector<std::vector<StateId>> succs(automata.size());
      bool feasible = true;
      for (size_t i = 0; i < automata.size(); ++i) {
        for (const Nfa::Transition& t :
             automata[i]->TransitionsFrom(tuple[i])) {
          if (t.label == a) succs[i].push_back(t.to);
        }
        if (succs[i].empty()) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;
      if (!search.EmitLetterSuccessors(id, succs, a)) {
        aborted = true;
        break;
      }
    }
  }

  result.non_empty = false;
  result.aborted = aborted;
  result.explored_states = search.tuples.size();
  return result;
}

IneResult IntersectionNonEmpty(const std::vector<const Dfa*>& automata,
                               const IneOptions& options) {
  std::vector<Nfa> nfas;
  nfas.reserve(automata.size());
  for (const Dfa* d : automata) nfas.push_back(d->ToNfa());
  std::vector<const Nfa*> ptrs;
  ptrs.reserve(nfas.size());
  for (const Nfa& n : nfas) ptrs.push_back(&n);
  return IntersectionNonEmpty(ptrs, options);
}

}  // namespace ecrpq
