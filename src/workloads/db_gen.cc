#include "workloads/db_gen.h"

#include <string>

#include "automata/random.h"
#include "common/check.h"

namespace ecrpq {
namespace {

Alphabet LatinAlphabet(int size) {
  ECRPQ_CHECK_LE(size, 26);
  Alphabet alphabet;
  for (int i = 0; i < size; ++i) {
    const char c = static_cast<char>('a' + i);
    alphabet.Intern(std::string_view(&c, 1));
  }
  return alphabet;
}

// Plants acceptance of `word` into a DFA by rerouting the needed
// transitions from the initial state and accepting the final landing state.
void PlantWordDfa(Dfa* dfa, const std::vector<Label>& word) {
  StateId s = dfa->initial();
  for (size_t i = 0; i < word.size(); ++i) {
    // Route along fresh-ish states deterministically: reuse state (i+1) mod
    // NumStates to avoid self-trapping.
    const StateId next =
        static_cast<StateId>((s + 1) % static_cast<StateId>(dfa->NumStates()));
    dfa->SetNext(s, dfa->LabelIndex(word[i]), next);
    s = next;
  }
  dfa->SetAccepting(s);
}

}  // namespace

GraphDb LayeredDag(Rng* rng, int layers, int width, int fanout,
                   int alphabet_size) {
  ECRPQ_CHECK_GE(layers, 1);
  ECRPQ_CHECK_GE(width, 1);
  GraphDb db(LatinAlphabet(alphabet_size));
  db.AddVertices(layers * width);
  for (int l = 0; l + 1 < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      const VertexId from = static_cast<VertexId>(l * width + w);
      for (int f = 0; f < fanout; ++f) {
        const VertexId to =
            static_cast<VertexId>((l + 1) * width + rng->Below(width));
        db.AddEdge(from, static_cast<Symbol>(rng->Below(alphabet_size)), to);
      }
    }
  }
  return db;
}

IneInstance RandomIneInstance(Rng* rng, int num_languages, int states_each,
                              int alphabet_size, bool plant_word) {
  PieInstance pie =
      RandomPieInstance(rng, num_languages, states_each, alphabet_size,
                        plant_word);
  IneInstance ine;
  ine.alphabet = pie.alphabet;
  for (const Dfa& dfa : pie.automata) ine.languages.push_back(dfa.ToNfa());
  return ine;
}

PieInstance RandomPieInstance(Rng* rng, int num_automata, int states_each,
                              int alphabet_size, bool plant_word) {
  PieInstance pie;
  pie.alphabet = LatinAlphabet(alphabet_size);
  std::vector<Label> planted;
  if (plant_word) {
    planted = RandomWord(rng, states_each / 2 + 1, alphabet_size);
  }
  for (int i = 0; i < num_automata; ++i) {
    RandomDfaOptions options;
    options.num_states = states_each;
    options.alphabet_size = alphabet_size;
    options.accept_prob = 0.15;
    // Without planting, make acceptance sparse so empty intersections occur.
    options.force_accepting = true;
    Dfa dfa = RandomDfa(rng, options);
    if (plant_word) PlantWordDfa(&dfa, planted);
    pie.automata.push_back(std::move(dfa));
  }
  return pie;
}

}  // namespace ecrpq
