// Parameterized query families realizing each regime of the
// characterization (Theorems 3.1 / 3.2). Used by tests and benchmarks.
#ifndef ECRPQ_WORKLOADS_QUERY_GEN_H_
#define ECRPQ_WORKLOADS_QUERY_GEN_H_

#include "automata/alphabet.h"
#include "common/result.h"
#include "common/rng.h"
#include "query/ast.h"

namespace ecrpq {

// Tractable regime (Thm 3.2(3)): a chain
//   x_0 -π_1-> x_1 -π_2-> ... -π_L-> x_L
// with eqlen(π_i, π_{i+1}) for odd i. Measures: cc_vertex <= 2,
// cc_hedge <= 1, tw(G^node) <= 3. Boolean.
Result<EcrpqQuery> ChainEqLenQuery(const Alphabet& alphabet, int length);

// NP / W[1] regime (Thm 3.2(2), 3.1(2)): a k-clique of CRPQ atoms
//   x_i -[regex]-> x_j for all i < j. Measures: cc_vertex = 1,
// cc_hedge = 1, tw = k-1. Boolean.
Result<EcrpqQuery> CliqueCrpqQuery(const Alphabet& alphabet, int k,
                                   std::string_view regex);

// PSPACE / XNL regime (Thm 3.2(1), 3.1(1)): a star
//   x -π_i-> y_i (i = 1..k) with one k-ary eqlen(π_1, ..., π_k).
// Measures: cc_vertex = k, cc_hedge = 1, tw = k (component clique).
Result<EcrpqQuery> EqLenStarQuery(const Alphabet& alphabet, int k);

// Like EqLenStarQuery but with k-ary *equality* (stronger coupling).
Result<EcrpqQuery> EqualityStarQuery(const Alphabet& alphabet, int k);

// Two-path comparison query (paper Example 2.1):
//   q(x, x') = ∃y x -π1-> y ∧ x' -π2-> y ∧ eq-len(π1, π2).
Result<EcrpqQuery> ExampleTwoOneQuery(const Alphabet& alphabet);

// Random CRPQ over a path/tree-like pattern with `atoms` atoms and regexes
// sampled from a small pool — mixed workloads for planner ablation.
Result<EcrpqQuery> RandomCrpqQuery(Rng* rng, const Alphabet& alphabet,
                                   int num_vars, int atoms);

}  // namespace ecrpq

#endif  // ECRPQ_WORKLOADS_QUERY_GEN_H_
