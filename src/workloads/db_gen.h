// Database families for benchmarks (thin wrappers and combinations of
// graphdb/generators.h plus INE input families).
#ifndef ECRPQ_WORKLOADS_DB_GEN_H_
#define ECRPQ_WORKLOADS_DB_GEN_H_

#include <vector>

#include "automata/nfa.h"
#include "common/rng.h"
#include "graphdb/graph_db.h"
#include "reductions/ine_to_ecrpq.h"
#include "reductions/pie_to_ecrpq.h"

namespace ecrpq {

// A layered DAG: `layers` layers of `width` vertices; edges from each vertex
// to `fanout` random vertices of the next layer with random labels. Acyclic,
// so path lengths (hence eq-length searches) are bounded — good for scaling
// sweeps with predictable work.
GraphDb LayeredDag(Rng* rng, int layers, int width, int fanout,
                   int alphabet_size);

// A random INE instance over an alphabet of `alphabet_size` symbols whose
// intersection is guaranteed non-empty (all automata accept a planted word)
// when `plant_word` is true.
IneInstance RandomIneInstance(Rng* rng, int num_languages, int states_each,
                              int alphabet_size, bool plant_word);

// Same but with DFAs, for p-IE.
PieInstance RandomPieInstance(Rng* rng, int num_automata, int states_each,
                              int alphabet_size, bool plant_word);

}  // namespace ecrpq

#endif  // ECRPQ_WORKLOADS_DB_GEN_H_
