#include "workloads/query_gen.h"

#include <memory>
#include <string>

#include "query/builder.h"
#include "synchro/builders.h"

namespace ecrpq {
namespace {

Result<std::shared_ptr<const SyncRelation>> Shared(
    Result<SyncRelation> relation) {
  if (!relation.ok()) return relation.status();
  return std::make_shared<const SyncRelation>(std::move(relation).ValueOrDie());
}

}  // namespace

Result<EcrpqQuery> ChainEqLenQuery(const Alphabet& alphabet, int length) {
  if (length < 1) return Status::Invalid("chain length must be >= 1");
  EcrpqBuilder builder(alphabet);
  std::vector<PathVarId> paths;
  for (int i = 0; i < length; ++i) {
    const NodeVarId from = builder.NodeVar("x" + std::to_string(i));
    const NodeVarId to = builder.NodeVar("x" + std::to_string(i + 1));
    const PathVarId p = builder.PathVar("p" + std::to_string(i));
    builder.Reach(from, p, to);
    paths.push_back(p);
  }
  ECRPQ_ASSIGN_OR_RAISE(std::shared_ptr<const SyncRelation> eqlen,
                        Shared(EqualLengthRelation(alphabet, 2)));
  for (int i = 0; i + 1 < length; i += 2) {
    builder.Relate(eqlen, {paths[i], paths[i + 1]}, "eqlen");
  }
  return builder.Build();
}

Result<EcrpqQuery> CliqueCrpqQuery(const Alphabet& alphabet, int k,
                                   std::string_view regex) {
  if (k < 2) return Status::Invalid("clique size must be >= 2");
  EcrpqBuilder builder(alphabet);
  std::vector<NodeVarId> vars;
  for (int i = 0; i < k; ++i) {
    vars.push_back(builder.NodeVar("x" + std::to_string(i)));
  }
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      ECRPQ_ASSIGN_OR_RAISE(PathVarId ignored,
                            builder.ReachRegex(vars[i], regex, vars[j]));
      (void)ignored;
    }
  }
  return builder.Build();
}

namespace {

Result<EcrpqQuery> StarQuery(const Alphabet& alphabet, int k, bool equality) {
  if (k < 1) return Status::Invalid("star width must be >= 1");
  EcrpqBuilder builder(alphabet);
  const NodeVarId x = builder.NodeVar("x");
  std::vector<PathVarId> paths;
  for (int i = 0; i < k; ++i) {
    const NodeVarId y = builder.NodeVar("y" + std::to_string(i));
    const PathVarId p = builder.PathVar("p" + std::to_string(i));
    builder.Reach(x, p, y);
    paths.push_back(p);
  }
  ECRPQ_ASSIGN_OR_RAISE(
      std::shared_ptr<const SyncRelation> rel,
      Shared(equality ? EqualityRelation(alphabet, k)
                      : EqualLengthRelation(alphabet, k)));
  builder.Relate(rel, paths, equality ? "eq" : "eqlen");
  return builder.Build();
}

}  // namespace

Result<EcrpqQuery> EqLenStarQuery(const Alphabet& alphabet, int k) {
  return StarQuery(alphabet, k, /*equality=*/false);
}

Result<EcrpqQuery> EqualityStarQuery(const Alphabet& alphabet, int k) {
  return StarQuery(alphabet, k, /*equality=*/true);
}

Result<EcrpqQuery> ExampleTwoOneQuery(const Alphabet& alphabet) {
  EcrpqBuilder builder(alphabet);
  const NodeVarId x = builder.NodeVar("x");
  const NodeVarId xp = builder.NodeVar("xp");
  const NodeVarId y = builder.NodeVar("y");
  const PathVarId p1 = builder.PathVar("pi1");
  const PathVarId p2 = builder.PathVar("pi2");
  builder.Reach(x, p1, y);
  builder.Reach(xp, p2, y);
  ECRPQ_ASSIGN_OR_RAISE(std::shared_ptr<const SyncRelation> eqlen,
                        Shared(EqualLengthRelation(alphabet, 2)));
  builder.Relate(eqlen, {p1, p2}, "eqlen");
  builder.Free({x, xp});
  return builder.Build();
}

Result<EcrpqQuery> RandomCrpqQuery(Rng* rng, const Alphabet& alphabet,
                                   int num_vars, int atoms) {
  if (num_vars < 2) return Status::Invalid("need >= 2 variables");
  static const char* kRegexPool[] = {"a*", "a*b", "(a|b)*", "ab*", "b(a|b)*",
                                     "a(a|b)*b", "(ab)*", "a|b*"};
  EcrpqBuilder builder(alphabet);
  std::vector<NodeVarId> vars;
  for (int i = 0; i < num_vars; ++i) {
    vars.push_back(builder.NodeVar("x" + std::to_string(i)));
  }
  for (int a = 0; a < atoms; ++a) {
    const NodeVarId from = vars[rng->Below(num_vars)];
    const NodeVarId to = vars[rng->Below(num_vars)];
    const char* regex =
        kRegexPool[rng->Below(sizeof(kRegexPool) / sizeof(kRegexPool[0]))];
    ECRPQ_ASSIGN_OR_RAISE(PathVarId ignored,
                          builder.ReachRegex(from, regex, to));
    (void)ignored;
  }
  return builder.Build();
}

}  // namespace ecrpq
