// UECRPQ: finite unions of ECRPQ queries. The paper's concluding remark
// notes the characterization extends to them; evaluation is simply the
// union of the disjuncts' answer sets (for Boolean queries: disjunction).
#ifndef ECRPQ_EVAL_UECRPQ_H_
#define ECRPQ_EVAL_UECRPQ_H_

#include "common/result.h"
#include "eval/generic_eval.h"
#include "eval/planner.h"
#include "graphdb/graph_db.h"
#include "query/ast.h"

namespace ecrpq {

// Checks that the union is well-formed: at least one disjunct, all
// disjuncts individually valid, same alphabet, and the same number of free
// variables (answer arity).
Status ValidateUnion(const UecrpqQuery& query);

// Evaluates every disjunct with the planner-routed engine and merges the
// answer sets (sorted, deduplicated). A Boolean union short-circuits on the
// first satisfiable disjunct.
Result<EvalResult> EvaluateUnion(const GraphDb& db, const UecrpqQuery& query,
                                 const EvalOptions& options = {});

// The union's regime is the worst regime among its disjuncts (a class
// containing the union contains every disjunct's class).
QueryClassification ClassifyUnion(const UecrpqQuery& query,
                                  const PlannerThresholds& thresholds = {});

}  // namespace ecrpq

#endif  // ECRPQ_EVAL_UECRPQ_H_
