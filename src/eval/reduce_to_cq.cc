#include "eval/reduce_to_cq.h"

#include <string>
#include <vector>

#include "common/check.h"
#include "cq/eval_backtrack.h"
#include "cq/eval_treedec.h"
#include "eval/merge.h"
#include "graphdb/tuple_search.h"
#include "query/validate.h"
#include "synchro/join.h"

namespace ecrpq {

Result<CqReduction> ReduceToCq(const GraphDb& db, const EcrpqQuery& query,
                               const ReduceOptions& options) {
  ECRPQ_RETURN_NOT_OK(ValidateQuery(query));
  if (!AlphabetsCompatible(db.alphabet(), query.alphabet())) {
    return Status::Invalid(
        "database alphabet is not an id-aligned prefix of the query "
        "alphabet");
  }
  CqReduction reduction;
  reduction.db = std::make_unique<RelationalDb>(
      static_cast<uint32_t>(db.NumVertices()));
  reduction.query.num_vars = query.NumNodeVars();
  for (int v = 0; v < query.NumNodeVars(); ++v) {
    reduction.query.var_names.push_back(query.NodeVarName(v));
  }
  for (NodeVarId v : query.free_vars()) {
    reduction.query.free_vars.push_back(v);
  }

  const std::vector<ComponentPlan> plans = PlanComponents(query);
  const VertexId n = static_cast<VertexId>(db.NumVertices());

  size_t total_tuples = 0;
  for (size_t c = 0; c < plans.size() && n > 0; ++c) {
    const ComponentPlan& plan = plans[c];
    const int r = static_cast<int>(plan.paths.size());
    const std::string name = "comp" + std::to_string(c);

    ECRPQ_ASSIGN_OR_RAISE(
        JoinMachine machine,
        JoinMachine::Create(query.alphabet(), plan.machine_components, r));
    TupleSearchOptions search_options;
    search_options.max_states = options.max_product_states;
    ECRPQ_ASSIGN_OR_RAISE(TupleSearcher searcher,
                          TupleSearcher::Create(&db, &machine, search_options));

    ECRPQ_ASSIGN_OR_RAISE(Relation * rel,
                          reduction.db->AddRelation(name, 2 * r));
    // Enumerate all |V|^r source tuples — the O(|D|^{2 cc_vertex}) step.
    std::vector<VertexId> sources(r, 0);
    std::vector<uint32_t> row(2 * r);
    while (true) {
      ++reduction.source_tuples_enumerated;
      const ReachSet& reach = searcher.Reach(sources);
      if (reach.aborted) {
        return Status::CapacityExceeded(
            "component search exceeded the product-state budget");
      }
      for (const std::vector<VertexId>& targets : reach.targets) {
        for (int i = 0; i < r; ++i) {
          row[2 * i] = sources[i];
          row[2 * i + 1] = targets[i];
        }
        rel->Add(row);
        ++total_tuples;
        if (options.max_tuples != 0 && total_tuples > options.max_tuples) {
          return Status::CapacityExceeded(
              "materialized relations exceeded the tuple budget");
        }
      }
      // Mixed-radix increment of the source tuple.
      int i = 0;
      for (; i < r; ++i) {
        if (++sources[i] < n) break;
        sources[i] = 0;
      }
      if (i == r || n == 0) break;
    }
    reduction.product_states += searcher.TotalExploredStates();

    // The CQ atom R'_C(x_1, y_1, ..., x_r, y_r).
    CqAtom atom;
    atom.relation = name;
    for (int i = 0; i < r; ++i) {
      atom.vars.push_back(plan.sources[i]);
      atom.vars.push_back(plan.targets[i]);
    }
    reduction.query.atoms.push_back(std::move(atom));
  }
  reduction.db->FinalizeAll();
  return reduction;
}

Result<EvalResult> EvaluateViaCqReduction(const GraphDb& db,
                                          const EcrpqQuery& query,
                                          bool use_treedec,
                                          const ReduceOptions& options,
                                          size_t max_answers) {
  EvalResult out;
  if (db.NumVertices() == 0) {
    out.satisfiable = (query.NumNodeVars() == 0);
    if (out.satisfiable) out.answers.push_back({});
    return out;
  }
  ECRPQ_ASSIGN_OR_RAISE(CqReduction reduction, ReduceToCq(db, query, options));
  CqEvalOptions cq_options;
  cq_options.max_answers = query.IsBoolean() ? 1 : max_answers;
  ECRPQ_ASSIGN_OR_RAISE(
      CqEvalResult cq_result,
      use_treedec
          ? CqEvaluateTreeDec(*reduction.db, reduction.query, cq_options)
          : CqEvaluateBacktracking(*reduction.db, reduction.query,
                                   cq_options));
  out.satisfiable = cq_result.satisfiable;
  out.aborted = cq_result.aborted;
  out.stats.product_states = reduction.product_states;
  for (auto& answer : cq_result.answers) {
    out.answers.push_back(std::move(answer));
  }
  return out;
}

}  // namespace ecrpq
