#include "eval/reduce_to_cq.h"

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "cq/eval_backtrack.h"
#include "cq/eval_treedec.h"
#include "eval/merge.h"
#include "graphdb/tuple_search.h"
#include "query/validate.h"
#include "synchro/join.h"

namespace ecrpq {
namespace {

obs::Trace* TraceOf(const ReduceOptions& options) {
  return options.obs != nullptr ? options.obs->trace() : nullptr;
}

}  // namespace

Result<CqReduction> ReduceToCq(const GraphDb& db, const EcrpqQuery& query,
                               const ReduceOptions& options) {
  obs::Span span(TraceOf(options), "ReduceToCq");
  obs::MetricsShard* shard = options.obs != nullptr
                                 ? options.obs->metrics().AcquireShard()
                                 : nullptr;
  ECRPQ_RETURN_NOT_OK(ValidateQueryForDb(query, db.alphabet()));
  CqReduction reduction;
  reduction.db = std::make_unique<RelationalDb>(
      static_cast<uint32_t>(db.NumVertices()));
  reduction.query.num_vars = query.NumNodeVars();
  for (int v = 0; v < query.NumNodeVars(); ++v) {
    reduction.query.var_names.push_back(query.NodeVarName(v));
  }
  for (NodeVarId v : query.free_vars()) {
    reduction.query.free_vars.push_back(v);
  }

  const std::vector<ComponentPlan> plans = PlanComponents(query);
  const VertexId n = static_cast<VertexId>(db.NumVertices());

  const int threads = ThreadPool::ResolveNumThreads(options.num_threads);
  ThreadPool* pool = nullptr;
  if (threads > 1 && n > 1) {
    db.Finalize();  // The lazy CSR build is not thread-safe.
    pool = ThreadPool::Shared(threads);
  }
  const int num_workers = pool != nullptr ? threads : 1;

  size_t total_tuples = 0;
  for (size_t c = 0; c < plans.size() && n > 0; ++c) {
    const ComponentPlan& plan = plans[c];
    const int r = static_cast<int>(plan.paths.size());
    const std::string name = "comp" + std::to_string(c);
    obs::Span component_span(TraceOf(options), "ReduceToCq.component",
                             static_cast<uint64_t>(c));
    obs::ScopedTimer component_timer(shard, obs::HistogramId::kPhaseReduceNs);

    // One machine + searcher per worker: the machine's lazy determinization
    // caches are not shareable across threads, and the enumeration below
    // never repeats a source tuple, so splitting the memo loses nothing.
    std::vector<std::unique_ptr<JoinMachine>> machines;
    std::vector<std::unique_ptr<TupleSearcher>> searchers;
    std::vector<TupleSearcher*> searcher_ptrs;
    {
      obs::ScopedTimer nfa_timer(shard, obs::HistogramId::kPhaseNfaBuildNs);
      for (int w = 0; w < num_workers; ++w) {
        ECRPQ_ASSIGN_OR_RAISE(
            JoinMachine machine,
            JoinMachine::Create(query.alphabet(), plan.machine_components, r));
        machines.push_back(std::make_unique<JoinMachine>(std::move(machine)));
        TupleSearchOptions search_options;
        search_options.max_states = options.max_product_states;
        search_options.obs = options.obs;
        ECRPQ_ASSIGN_OR_RAISE(
            TupleSearcher searcher,
            TupleSearcher::Create(&db, machines.back().get(), search_options));
        searchers.push_back(
            std::make_unique<TupleSearcher>(std::move(searcher)));
        searcher_ptrs.push_back(searchers.back().get());
      }
    }

    ECRPQ_ASSIGN_OR_RAISE(Relation * rel,
                          reduction.db->AddRelation(name, 2 * r));

    // The CQ atom R'_C(x_1, y_1, ..., x_r, y_r). Lemma 4.3's atom is a pure
    // 2r-ary template: when the same node variable occupies several endpoint
    // positions of the component, every position after the first gets a
    // fresh copy variable and the coincidence is pushed into the
    // materialized relation (only rows agreeing on coinciding positions are
    // kept). The atom therefore spans 2r pairwise-distinct variables and
    // its hypergraph edge has the full 2r-clique Gaifman footprint.
    CqAtom atom;
    atom.relation = name;
    std::vector<int> same_as(2 * r, -1);  // Position of the original, or -1.
    {
      std::map<NodeVarId, int> first_position;
      for (int i = 0; i < 2 * r; ++i) {
        const NodeVarId v =
            (i % 2 == 0) ? plan.sources[i / 2] : plan.targets[i / 2];
        const auto [it, inserted] = first_position.try_emplace(v, i);
        if (inserted) {
          atom.vars.push_back(v);
        } else {
          same_as[i] = it->second;
          atom.vars.push_back(
              static_cast<CqVarId>(reduction.query.num_vars));
          reduction.query.var_names.push_back(
              query.NodeVarName(v) + "'" +
              std::to_string(reduction.query.num_vars));
          ++reduction.query.num_vars;
        }
      }
    }

    // Enumerate all |V|^r source tuples — the O(|D|^{2 cc_vertex}) step.
    // Tuples are drawn in mixed-radix order and searched in batches: the
    // per-tuple product BFS runs fan out across the pool, and the batch is
    // merged back in enumeration order, so relation contents and any budget
    // error are identical to the sequential run.
    constexpr size_t kBatchSize = 1024;
    std::vector<VertexId> sources(r, 0);
    std::vector<uint32_t> row(2 * r);
    std::vector<std::vector<VertexId>> batch;
    bool exhausted = false;
    while (!exhausted) {
      batch.clear();
      while (batch.size() < kBatchSize) {
        batch.push_back(sources);
        // Mixed-radix increment of the source tuple.
        int i = 0;
        for (; i < r; ++i) {
          if (++sources[i] < n) break;
          sources[i] = 0;
        }
        if (i == r) {
          exhausted = true;
          break;
        }
      }
      const std::vector<const ReachSet*> reaches = ReachMany(
          searcher_ptrs, batch, pool,
          options.obs != nullptr ? options.obs->cancel_token() : nullptr,
          shard);
      for (size_t b = 0; b < batch.size(); ++b) {
        ++reduction.source_tuples_enumerated;
        if (reaches[b] == nullptr) {
          // Slots are only skipped when the session's cancel token fired,
          // which here means the budget tripped mid-batch.
          return options.obs->ExhaustedStatus();
        }
        const ReachSet& reach = *reaches[b];
        if (reach.aborted) {
          if (options.obs != nullptr && options.obs->Exhausted()) {
            return options.obs->ExhaustedStatus();
          }
          return Status::CapacityExceeded(
              "component search exceeded the product-state budget");
        }
        for (const std::vector<VertexId>& targets : reach.targets) {
          for (int i = 0; i < r; ++i) {
            row[2 * i] = batch[b][i];
            row[2 * i + 1] = targets[i];
          }
          bool coincides = true;
          for (int i = 0; i < 2 * r && coincides; ++i) {
            if (same_as[i] >= 0 && row[i] != row[same_as[i]]) {
              coincides = false;
            }
          }
          if (!coincides) continue;
          rel->Add(row);
          ++total_tuples;
          obs::Add(shard, obs::CounterId::kTuplesMaterialized);
          if (options.max_tuples != 0 && total_tuples > options.max_tuples) {
            return Status::CapacityExceeded(
                "materialized relations exceeded the tuple budget");
          }
        }
      }
      if (options.obs != nullptr && options.obs->CheckBudget()) {
        return options.obs->ExhaustedStatus();
      }
    }
    for (const auto& searcher : searchers) {
      reduction.product_states += searcher->TotalExploredStates();
    }

    reduction.query.atoms.push_back(std::move(atom));
  }
  reduction.db->FinalizeAll();
  return reduction;
}

Result<EvalResult> EvaluateViaCqReduction(const GraphDb& db,
                                          const EcrpqQuery& query,
                                          bool use_treedec,
                                          const ReduceOptions& options,
                                          size_t max_answers) {
  EvalResult out;
  if (db.NumVertices() == 0) {
    out.satisfiable = (query.NumNodeVars() == 0);
    if (out.satisfiable) out.answers.push_back({});
    return out;
  }
  ECRPQ_ASSIGN_OR_RAISE(CqReduction reduction, ReduceToCq(db, query, options));
  CqEvalOptions cq_options;
  cq_options.max_answers = query.IsBoolean() ? 1 : max_answers;
  cq_options.obs = options.obs;
  obs::Span cq_span(TraceOf(options), "EvaluateReducedCq");
  ECRPQ_ASSIGN_OR_RAISE(
      CqEvalResult cq_result,
      use_treedec
          ? CqEvaluateTreeDec(*reduction.db, reduction.query, cq_options)
          : CqEvaluateBacktracking(*reduction.db, reduction.query,
                                   cq_options));
  out.satisfiable = cq_result.satisfiable;
  out.aborted = cq_result.aborted;
  out.stats.product_states = reduction.product_states;
  for (auto& answer : cq_result.answers) {
    out.answers.push_back(std::move(answer));
  }
  return out;
}

}  // namespace ecrpq
