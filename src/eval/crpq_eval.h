// CRPQ fast path (Corollary 2.4): each atom x -L-> y is replaced by the
// binary reachability relation R_L, computed in polynomial time by product
// BFS (graphdb/rpq_reach.h); the query becomes a CQ over binary relations
// whose Gaifman graph is the CRPQ abstraction.
#ifndef ECRPQ_EVAL_CRPQ_EVAL_H_
#define ECRPQ_EVAL_CRPQ_EVAL_H_

#include "common/result.h"
#include "eval/generic_eval.h"
#include "graphdb/graph_db.h"
#include "query/ast.h"

namespace ecrpq {

// Errors with InvalidArgument if !query.IsCrpq(). `use_treedec` selects the
// tree-decomposition CQ engine (polynomial for bounded-treewidth queries)
// over the backtracking engine. A non-null `obs` session observes the
// per-atom relation builds and the CQ phase and enforces the session budget
// (Status::ResourceExhausted on trip).
Result<EvalResult> EvaluateCrpq(const GraphDb& db, const EcrpqQuery& query,
                                bool use_treedec = true,
                                size_t max_answers = 0,
                                obs::Session* obs = nullptr);

}  // namespace ecrpq

#endif  // ECRPQ_EVAL_CRPQ_EVAL_H_
