// CRPQ fast path (Corollary 2.4): each atom x -L-> y is replaced by the
// binary reachability relation R_L, computed in polynomial time by product
// BFS (graphdb/rpq_reach.h); the query becomes a CQ over binary relations
// whose Gaifman graph is the CRPQ abstraction.
#ifndef ECRPQ_EVAL_CRPQ_EVAL_H_
#define ECRPQ_EVAL_CRPQ_EVAL_H_

#include "common/result.h"
#include "eval/generic_eval.h"
#include "graphdb/graph_db.h"
#include "query/ast.h"

namespace ecrpq {

// Errors with InvalidArgument if !query.IsCrpq(). `use_treedec` selects the
// tree-decomposition CQ engine (polynomial for bounded-treewidth queries)
// over the backtracking engine. A non-null `obs` session observes the
// per-atom relation builds and the CQ phase and enforces the session budget
// (Status::ResourceExhausted on trip).
//
// By default each reach atom's language NFA is interned (shared across
// queries, see automata/interner.h) and its per-source reach sets are
// served from the epoch-keyed global reach memo (graphdb/reach_memo.h).
// `disable_cache` bypasses both — answers are byte-identical either way;
// the flag exists for ablation and the ecrpq_cli --no-cache escape hatch.
Result<EvalResult> EvaluateCrpq(const GraphDb& db, const EcrpqQuery& query,
                                bool use_treedec = true,
                                size_t max_answers = 0,
                                obs::Session* obs = nullptr,
                                bool disable_cache = false);

}  // namespace ecrpq

#endif  // ECRPQ_EVAL_CRPQ_EVAL_H_
