#include "eval/adaptive.h"

#include <algorithm>
#include <cmath>

namespace ecrpq {

Result<EvalResult> EvaluateAdaptive(const GraphDb& db,
                                    const EcrpqQuery& query,
                                    const AdaptiveOptions& options,
                                    AdaptiveReport* report) {
  const QueryClassification classification =
      ClassifyQuery(query, options.thresholds);
  if (report != nullptr) {
    report->classification = classification;
    report->fell_back = false;
  }

  // Phase-1 budget: enough to cover an easy instance's reachable product
  // space, small enough to bail out before exponential blowup.
  const double n = std::max(1, db.NumVertices());
  const int r = std::min(classification.measures.cc_vertex,
                         options.cc_vertex_cap);
  const double raw = options.budget_factor * std::pow(n, r) *
                     std::max(1, classification.measures.cc_hedge);
  // At least 1: a budget of 0 would mean "unlimited" downstream.
  const size_t budget =
      std::max<size_t>(1, static_cast<size_t>(std::min(raw, 1e9)));
  if (report != nullptr) report->phase1_budget = budget;

  EvalOptions phase1 = options.eval;
  phase1.max_product_states = budget;
  ECRPQ_ASSIGN_OR_RAISE(EvalResult lazy, EvaluateGeneric(db, query, phase1));
  if (!lazy.aborted) return lazy;

  // Phase 2: regime-prescribed engine, unbudgeted.
  if (report != nullptr) {
    report->fell_back = true;
    report->fallback_engine = classification.engine;
  }
  if (classification.engine == EngineChoice::kGeneric) {
    // PSPACE regime: nothing structurally better; lift the budget.
    EvalOptions unbounded = options.eval;
    unbounded.max_product_states = 0;
    return EvaluateGeneric(db, query, unbounded);
  }
  return EvaluatePlanned(db, query, options.eval, options.thresholds);
}

}  // namespace ecrpq
