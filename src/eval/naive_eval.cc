#include "eval/naive_eval.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "common/check.h"
#include "eval/merge.h"
#include "query/validate.h"

namespace ecrpq {
namespace {

// All target tuples v̄ such that paths ū_i → v̄_i jointly satisfy `rel`.
// Configurations are (v̄, NFA state, frozen mask), explored to fixpoint with
// ordered sets.
std::set<std::vector<VertexId>> NaiveReach(const GraphDb& db,
                                           const SyncRelation& rel,
                                           const std::vector<VertexId>& start) {
  const int r = rel.arity();
  using Config = std::tuple<std::vector<VertexId>, StateId, uint32_t>;
  std::set<Config> visited;
  std::vector<Config> worklist;
  std::set<std::vector<VertexId>> accepted;

  auto push = [&](Config c) {
    if (visited.insert(c).second) worklist.push_back(std::move(c));
  };

  for (StateId q : rel.nfa().initial()) {
    push(Config{start, q, 0});
  }
  while (!worklist.empty()) {
    const auto [verts, q, mask] = worklist.back();
    worklist.pop_back();
    if (rel.nfa().IsAccepting(q)) accepted.insert(verts);
    for (const Nfa::Transition& t : rel.nfa().TransitionsFrom(q)) {
      if (t.label == kEpsilon) {
        push(Config{verts, t.to, mask});
        continue;
      }
      // Decode the packed letter; every tape must either take a matching
      // edge (if its letter is a symbol) or stand still (if ⊥). A frozen
      // tape may only see ⊥.
      if (rel.pack().AllTapesBlank(t.label)) continue;
      std::vector<std::vector<VertexId>> choices(r);
      uint32_t new_mask = mask;
      bool feasible = true;
      for (int i = 0; i < r && feasible; ++i) {
        const TapeLetter letter = rel.pack().Get(t.label, i);
        if (letter == kBlank) {
          new_mask |= uint32_t{1} << i;
          choices[i] = {verts[i]};
        } else if (mask & (uint32_t{1} << i)) {
          feasible = false;
        } else {
          for (const LabeledEdge& e : db.OutEdges(verts[i])) {
            if (e.symbol == static_cast<Symbol>(letter)) {
              choices[i].push_back(e.to);
            }
          }
          if (choices[i].empty()) feasible = false;
        }
      }
      if (!feasible) continue;
      // Cartesian product of per-tape choices.
      std::vector<size_t> idx(r, 0);
      while (true) {
        std::vector<VertexId> next(r);
        for (int i = 0; i < r; ++i) next[i] = choices[i][idx[i]];
        push(Config{std::move(next), t.to, new_mask});
        int i = 0;
        for (; i < r; ++i) {
          if (++idx[i] < choices[i].size()) break;
          idx[i] = 0;
        }
        if (i == r) break;
      }
    }
  }
  return accepted;
}

// Plain reachability closure (for unconstrained path variables).
std::vector<std::vector<bool>> ReachabilityClosure(const GraphDb& db) {
  const int n = db.NumVertices();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (int s = 0; s < n; ++s) {
    std::vector<VertexId> stack{static_cast<VertexId>(s)};
    reach[s][s] = true;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (const LabeledEdge& e : db.OutEdges(v)) {
        if (!reach[s][e.to]) {
          reach[s][e.to] = true;
          stack.push_back(e.to);
        }
      }
    }
  }
  return reach;
}

}  // namespace

Result<EvalResult> EvaluateNaive(const GraphDb& db, const EcrpqQuery& query,
                                 size_t max_answers) {
  ECRPQ_RETURN_NOT_OK(ValidateQuery(query));
  EvalResult out;
  if (db.NumVertices() == 0) {
    out.satisfiable = (query.NumNodeVars() == 0);
    if (out.satisfiable) out.answers.push_back({});
    return out;
  }

  // Lemma 4.1 (materialized): one relation atom per component.
  ECRPQ_ASSIGN_OR_RAISE(EcrpqQuery merged, MergeQueryComponents(query));

  // Per merged atom: endpoints per tape.
  std::vector<NodeVarId> from_of(merged.NumPathVars());
  std::vector<NodeVarId> to_of(merged.NumPathVars());
  for (const ReachAtom& atom : merged.reach_atoms()) {
    from_of[atom.path] = atom.from;
    to_of[atom.path] = atom.to;
  }
  std::vector<bool> constrained(merged.NumPathVars(), false);
  for (const RelAtom& atom : merged.rel_atoms()) {
    for (PathVarId p : atom.paths) constrained[p] = true;
  }

  const std::vector<std::vector<bool>> closure = ReachabilityClosure(db);
  const int n = db.NumVertices();
  const int num_vars = merged.NumNodeVars();

  // Memoized per-atom reach sets.
  std::vector<std::map<std::vector<VertexId>, std::set<std::vector<VertexId>>>>
      memo(merged.rel_atoms().size());

  std::set<std::vector<VertexId>> answers;
  std::vector<VertexId> assignment(num_vars, 0);

  bool done = false;
  auto enumerate = [&](auto&& self, int var) -> void {
    if (done) return;
    if (var == num_vars) {
      // Check unconstrained path variables (plain reachability).
      for (const ReachAtom& atom : merged.reach_atoms()) {
        if (!constrained[atom.path] &&
            !closure[assignment[atom.from]][assignment[atom.to]]) {
          return;
        }
      }
      // Check merged relation atoms.
      for (size_t a = 0; a < merged.rel_atoms().size(); ++a) {
        const RelAtom& atom = merged.rel_atoms()[a];
        const SyncRelation& rel = merged.relation(atom.relation);
        std::vector<VertexId> sources, targets;
        for (PathVarId p : atom.paths) {
          sources.push_back(assignment[from_of[p]]);
          targets.push_back(assignment[to_of[p]]);
        }
        auto it = memo[a].find(sources);
        if (it == memo[a].end()) {
          it = memo[a].emplace(sources, NaiveReach(db, rel, sources)).first;
        }
        if (it->second.count(targets) == 0) return;
      }
      std::vector<VertexId> answer;
      for (NodeVarId v : merged.free_vars()) answer.push_back(assignment[v]);
      answers.insert(std::move(answer));
      out.satisfiable = true;
      if (merged.IsBoolean() ||
          (max_answers != 0 && answers.size() >= max_answers)) {
        done = true;
      }
      return;
    }
    for (int value = 0; value < n && !done; ++value) {
      assignment[var] = static_cast<VertexId>(value);
      self(self, var + 1);
    }
  };
  enumerate(enumerate, 0);

  out.answers.assign(answers.begin(), answers.end());
  return out;
}

}  // namespace ecrpq
