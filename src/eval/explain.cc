#include "eval/explain.h"

#include <sstream>

#include "common/check.h"
#include "eval/merge.h"
#include "graphdb/tuple_search.h"
#include "query/validate.h"

namespace ecrpq {

std::string Explanation::ToString(const EcrpqQuery& query,
                                  const GraphDb& db) const {
  std::ostringstream out;
  for (int v = 0; v < query.NumNodeVars(); ++v) {
    if (v < static_cast<int>(node_assignment.size()) &&
        node_assignment[v] != ~VertexId{0}) {
      out << query.NodeVarName(v) << " = " << node_assignment[v] << "\n";
    }
  }
  for (int p = 0; p < query.NumPathVars(); ++p) {
    out << query.PathVarName(p) << ":";
    if (p < static_cast<int>(paths.size())) {
      if (paths[p].empty()) out << " (empty path)";
      for (const PathStep& step : paths[p]) {
        out << " " << step.from << " -"
            << db.alphabet().Name(step.symbol) << "-> " << step.to;
      }
    }
    out << "\n";
  }
  return out.str();
}

Result<std::optional<Explanation>> ExplainAnswer(
    const GraphDb& db, const EcrpqQuery& query,
    const std::vector<VertexId>& answer) {
  ECRPQ_RETURN_NOT_OK(ValidateQuery(query));
  if (answer.size() != query.free_vars().size()) {
    return Status::Invalid("answer arity does not match the free variables");
  }
  EvalOptions options;
  options.capture_assignment = true;
  options.max_answers = 1;
  for (size_t i = 0; i < answer.size(); ++i) {
    options.pin.emplace_back(query.free_vars()[i], answer[i]);
  }
  ECRPQ_ASSIGN_OR_RAISE(EvalResult result,
                        EvaluateGeneric(db, query, options));
  if (!result.satisfiable) return std::optional<Explanation>{};
  ECRPQ_CHECK_EQ(static_cast<int>(result.first_assignment.size()),
                 query.NumNodeVars());

  Explanation explanation;
  explanation.node_assignment = result.first_assignment;
  explanation.paths.resize(query.NumPathVars());

  // Re-run the per-component searches with witness tracking.
  for (const ComponentPlan& plan : PlanComponents(query)) {
    ECRPQ_ASSIGN_OR_RAISE(
        JoinMachine machine,
        JoinMachine::Create(query.alphabet(), plan.machine_components,
                            static_cast<int>(plan.paths.size())));
    ECRPQ_ASSIGN_OR_RAISE(TupleSearcher searcher,
                          TupleSearcher::Create(&db, &machine));
    std::vector<VertexId> sources, targets;
    for (size_t t = 0; t < plan.paths.size(); ++t) {
      sources.push_back(explanation.node_assignment[plan.sources[t]]);
      targets.push_back(explanation.node_assignment[plan.targets[t]]);
    }
    auto witness = searcher.WitnessPaths(sources, targets);
    if (!witness.has_value()) {
      return Status::Internal(
          "satisfying assignment lost its component witness");
    }
    for (size_t t = 0; t < plan.paths.size(); ++t) {
      explanation.paths[plan.paths[t]] = std::move((*witness)[t]);
    }
  }
  return std::optional<Explanation>(std::move(explanation));
}

Status ValidateExplanation(const GraphDb& db, const EcrpqQuery& query,
                           const Explanation& explanation) {
  ECRPQ_RETURN_NOT_OK(ValidateQuery(query));
  if (static_cast<int>(explanation.paths.size()) != query.NumPathVars() ||
      static_cast<int>(explanation.node_assignment.size()) !=
          query.NumNodeVars()) {
    return Status::Invalid("explanation shape does not match the query");
  }
  // Reachability atoms: endpoints and real edges.
  for (const ReachAtom& atom : query.reach_atoms()) {
    const std::vector<PathStep>& path = explanation.paths[atom.path];
    VertexId cur = explanation.node_assignment[atom.from];
    for (const PathStep& step : path) {
      if (step.from != cur) {
        return Status::Invalid("path " + query.PathVarName(atom.path) +
                               " is not connected");
      }
      if (!db.HasEdge(step.from, step.symbol, step.to)) {
        return Status::Invalid("path " + query.PathVarName(atom.path) +
                               " uses a non-existent edge");
      }
      cur = step.to;
    }
    if (cur != explanation.node_assignment[atom.to]) {
      return Status::Invalid("path " + query.PathVarName(atom.path) +
                             " ends at the wrong vertex");
    }
  }
  // Relation atoms: labels jointly accepted.
  for (const RelAtom& atom : query.rel_atoms()) {
    std::vector<Word> words;
    for (PathVarId p : atom.paths) {
      Word w;
      for (const PathStep& step : explanation.paths[p]) {
        w.push_back(step.symbol);
      }
      words.push_back(std::move(w));
    }
    if (!query.relation(atom.relation).Contains(words)) {
      return Status::Invalid("relation atom " +
                             query.relation_display_names()[atom.relation] +
                             " rejects the witness labels");
    }
  }
  return Status::OK();
}

}  // namespace ecrpq
