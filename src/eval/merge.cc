#include "eval/merge.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "query/abstraction.h"
#include "query/builder.h"
#include "structure/derived.h"
#include "synchro/ops.h"

namespace ecrpq {

std::vector<ComponentPlan> PlanComponents(const EcrpqQuery& query) {
  const TwoLevelGraph g =
      QueryAbstraction(query, /*implicit_universal_singletons=*/true);
  const std::vector<RelComponent> components = RelComponents(g);

  // Endpoints per path variable.
  std::vector<NodeVarId> from_of(query.NumPathVars());
  std::vector<NodeVarId> to_of(query.NumPathVars());
  for (const ReachAtom& atom : query.reach_atoms()) {
    from_of[atom.path] = atom.from;
    to_of[atom.path] = atom.to;
  }

  std::vector<ComponentPlan> plans;
  plans.reserve(components.size());
  for (const RelComponent& comp : components) {
    ComponentPlan plan;
    plan.paths.assign(comp.edges.begin(), comp.edges.end());
    std::sort(plan.paths.begin(), plan.paths.end());
    std::map<PathVarId, int> tape_of;
    for (size_t i = 0; i < plan.paths.size(); ++i) {
      tape_of[plan.paths[i]] = static_cast<int>(i);
      plan.sources.push_back(from_of[plan.paths[i]]);
      plan.targets.push_back(to_of[plan.paths[i]]);
    }
    for (int h : comp.hyperedges) {
      // Hyperedges beyond the real relation atoms are the implicit universal
      // singletons added by the abstraction; they impose no constraint.
      if (h >= static_cast<int>(query.rel_atoms().size())) continue;
      const RelAtom& atom = query.rel_atoms()[h];
      JoinMachine::Component mc;
      mc.relation = &query.relation(atom.relation);
      for (PathVarId p : atom.paths) {
        mc.tape_map.push_back(tape_of.at(p));
      }
      plan.machine_components.push_back(std::move(mc));
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

Result<EcrpqQuery> MergeQueryComponents(const EcrpqQuery& query) {
  const std::vector<ComponentPlan> plans = PlanComponents(query);

  EcrpqBuilder builder(query.alphabet());
  // Reproduce variables in the same order so ids are stable.
  for (int v = 0; v < query.NumNodeVars(); ++v) {
    builder.NodeVar(query.NodeVarName(v));
  }
  for (int p = 0; p < query.NumPathVars(); ++p) {
    builder.PathVar(query.PathVarName(p));
  }
  for (const ReachAtom& atom : query.reach_atoms()) {
    builder.Reach(atom.from, atom.path, atom.to);
  }
  for (const ComponentPlan& plan : plans) {
    if (plan.machine_components.empty()) continue;
    std::vector<TapeMapping> parts;
    parts.reserve(plan.machine_components.size());
    for (const JoinMachine::Component& mc : plan.machine_components) {
      parts.push_back(TapeMapping{mc.relation, mc.tape_map});
    }
    ECRPQ_ASSIGN_OR_RAISE(
        SyncRelation merged,
        JoinComponents(query.alphabet(), parts,
                       static_cast<int>(plan.paths.size())));
    builder.Relate(std::make_shared<const SyncRelation>(std::move(merged)),
                   plan.paths, "merged");
  }
  builder.Free(query.free_vars());
  return builder.Build();
}

}  // namespace ecrpq
