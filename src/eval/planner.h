// Planner: the characterization of Theorems 3.1 / 3.2 as an executable
// classifier + engine router.
//
// For a single query the three measures (cc_vertex, cc_hedge, treewidth of
// G^node) are of course finite; the regimes of the theorems speak about
// *classes* of queries where a measure is unbounded. The classifier reports
// the regime of the smallest natural class containing the query relative to
// configurable thresholds: a query whose measures are within thresholds is
// evaluated with the polynomial pipeline the upper-bound proofs describe;
// one with bounded cc but large treewidth falls to the NP engine; anything
// else runs the generic (PSPACE-shaped) evaluator.
#ifndef ECRPQ_EVAL_PLANNER_H_
#define ECRPQ_EVAL_PLANNER_H_

#include <string>

#include "common/cache.h"
#include "common/hash.h"
#include "common/result.h"
#include "eval/generic_eval.h"
#include "graphdb/graph_db.h"
#include "query/ast.h"
#include "structure/measures.h"

namespace ecrpq {

// Combined-complexity regimes of Theorem 3.2.
enum class EvalRegime {
  kPolynomialTime,  // cc_vertex, cc_hedge, tw all bounded.
  kNp,              // cc bounded, tw unbounded.
  kPspace,          // cc_vertex or cc_hedge unbounded.
};

// Parameterized regimes of Theorem 3.1.
enum class ParamRegime {
  kFpt,  // cc_vertex, tw bounded.
  kW1,   // cc_vertex bounded, tw unbounded.
  kXnl,  // cc_vertex unbounded.
};

const char* EvalRegimeName(EvalRegime r);
const char* ParamRegimeName(ParamRegime r);

struct PlannerThresholds {
  int max_cc_vertex = 2;
  int max_cc_hedge = 3;
  int max_treewidth = 2;
};

enum class EngineChoice {
  kCrpqPipeline,      // Corollary 2.4: R_L materialization + tree-dec CQ.
  kCqReduction,       // Lemma 4.3 pipeline + tree-dec CQ (poly regime).
  kCqReductionNp,     // Lemma 4.3 pipeline + backtracking CQ (NP regime).
  kGeneric,           // Lazy product evaluator (PSPACE regime).
};

const char* EngineChoiceName(EngineChoice e);

struct QueryClassification {
  TwoLevelMeasures measures;
  bool is_crpq = false;
  EvalRegime eval_regime = EvalRegime::kPspace;
  ParamRegime param_regime = ParamRegime::kXnl;
  EngineChoice engine = EngineChoice::kGeneric;

  std::string ToString() const;
  // Compact single-line JSON verdict for the telemetry layer (event-log
  // records, `trace` op metadata): the measures that drove the routing
  // decision plus the chosen regimes and engine. Key order is fixed, so
  // the serialization is deterministic.
  std::string ToJson() const;
};

QueryClassification ClassifyQuery(const EcrpqQuery& query,
                                  const PlannerThresholds& thresholds = {});

// Cached classification: the verdict is served from the process-wide plan
// cache, keyed on CanonicalQueryKey(query) (query/simplify.h — exact
// canonical bytes, so alpha-renamed / atom-permuted variants share one
// entry and distinct structures never collide) plus the thresholds. The
// expensive part of classification is the G^node treewidth computation;
// a warm hit skips it entirely. `obs_shard` (nullable) receives
// kCacheHits/kCacheMisses/kCacheLookupNs.
QueryClassification ClassifyQueryCached(
    const EcrpqQuery& query, const PlannerThresholds& thresholds = {},
    obs::MetricsShard* obs_shard = nullptr);

// The process-wide plan cache (tests, benches, stats).
using PlanCache =
    ShardedLruCache<std::string, QueryClassification, BytesHash>;
PlanCache& GlobalPlanCache();

// Drops every entry of every process-wide cross-query cache: the plan
// cache, the automaton interner and the reach-set memo. Test and
// cold-cache-benchmark hook; never required for correctness (epoch keys
// already make stale reach entries unreachable).
void ClearGlobalCaches();

// Classifies and routes. `classification_out` (optional) receives the plan.
Result<EvalResult> EvaluatePlanned(const GraphDb& db, const EcrpqQuery& query,
                                   const EvalOptions& options = {},
                                   const PlannerThresholds& thresholds = {},
                                   QueryClassification* classification_out =
                                       nullptr);

}  // namespace ecrpq

#endif  // ECRPQ_EVAL_PLANNER_H_
