// NaiveEvaluator: a deliberately independent brute-force oracle for
// differential testing.
//
// It shares as little code as possible with the production engines:
//  - components are merged with the *materialized* Lemma 4.1 construction
//    (synchro/ops.h Reindex + Intersect), not the lazy JoinMachine;
//  - path-tuple reachability runs over single NFA states (nondeterministic
//    product) with ordered sets, not per-component determinized subsets with
//    hash-interned states;
//  - node variables are assigned by exhaustive enumeration of |V|^{#vars},
//    not by component-guided backtracking.
//
// Complete (no length bounds: the configuration space is finite) but
// exponential in everything; use on small instances only.
#ifndef ECRPQ_EVAL_NAIVE_EVAL_H_
#define ECRPQ_EVAL_NAIVE_EVAL_H_

#include "common/result.h"
#include "eval/generic_eval.h"
#include "graphdb/graph_db.h"
#include "query/ast.h"

namespace ecrpq {

Result<EvalResult> EvaluateNaive(const GraphDb& db, const EcrpqQuery& query,
                                 size_t max_answers = 0);

}  // namespace ecrpq

#endif  // ECRPQ_EVAL_NAIVE_EVAL_H_
