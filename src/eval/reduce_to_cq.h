// The reduction of Lemma 4.3: ECRPQ evaluation → CQ evaluation.
//
// For each G^rel component with path variables π_1..π_r (endpoints x_i, y_i)
// the relation
//   R'_C = {(u_1, v_1, ..., u_r, v_r) : ∃ paths u_i → v_i whose labels are
//           jointly accepted by the component's merged relation}
// is materialized over the vertex domain, and the ECRPQ becomes the CQ
//   ⋀_C R'_C(x_1, y_1, ..., x_r, y_r)
// over 2r pairwise-distinct variables per atom (coinciding endpoints are
// split into fresh copies whose equality is enforced inside R'_C), so each
// atom contributes a full 2r-clique to the Gaifman graph while the atom
// hypergraph keeps the component chain structure. Construction cost is
// O(|D|^{2·cc_vertex}) per component — polynomial when cc_vertex (and, for
// the query-rewriting step, cc_hedge) are bounded, as the lemma states.
#ifndef ECRPQ_EVAL_REDUCE_TO_CQ_H_
#define ECRPQ_EVAL_REDUCE_TO_CQ_H_

#include <memory>

#include "common/obs.h"
#include "common/result.h"
#include "cq/cq.h"
#include "cq/relational_db.h"
#include "eval/generic_eval.h"
#include "graphdb/graph_db.h"
#include "query/ast.h"

namespace ecrpq {

struct CqReduction {
  std::unique_ptr<RelationalDb> db;
  CqQuery query;
  // Diagnostics for experiment E7.
  size_t source_tuples_enumerated = 0;
  size_t product_states = 0;
};

struct ReduceOptions {
  // Abort when the materialized relations exceed this many tuples in total
  // (0 = unlimited).
  size_t max_tuples = 0;
  // Per-source search budget (0 = unlimited).
  size_t max_product_states = 0;
  // Worker threads for the per-source-tuple searches of the leaf-relation
  // materialization: 0 = ECRPQ_THREADS / hardware default, 1 = sequential.
  // The materialized relations (and any budget error) are identical for
  // every value: batches of source tuples are searched concurrently but
  // merged in enumeration order.
  int num_threads = 0;
  // Observability & resource-governance session (common/obs.h). A tripped
  // budget turns into Status::ResourceExhausted (distinct from the
  // CapacityExceeded of max_tuples / max_product_states above); the partial
  // StatsReport stays readable via the session. Null = zero overhead.
  obs::Session* obs = nullptr;
};

Result<CqReduction> ReduceToCq(const GraphDb& db, const EcrpqQuery& query,
                               const ReduceOptions& options = {});

// End-to-end: reduce, then evaluate the CQ with the tree-decomposition
// engine (use_treedec) or the backtracking engine. This is the paper's
// polynomial-time / NP pipeline for bounded-cc queries.
Result<EvalResult> EvaluateViaCqReduction(const GraphDb& db,
                                          const EcrpqQuery& query,
                                          bool use_treedec = true,
                                          const ReduceOptions& options = {},
                                          size_t max_answers = 0);

}  // namespace ecrpq

#endif  // ECRPQ_EVAL_REDUCE_TO_CQ_H_
