#include "eval/crpq_eval.h"

#include <string>
#include <vector>

#include "automata/interner.h"
#include "cq/cq.h"
#include "cq/eval_backtrack.h"
#include "cq/eval_treedec.h"
#include "cq/relational_db.h"
#include "graphdb/reach_memo.h"
#include "graphdb/rpq_reach.h"
#include "query/validate.h"
#include "synchro/tape_pack.h"

namespace ecrpq {

Result<EvalResult> EvaluateCrpq(const GraphDb& db, const EcrpqQuery& query,
                                bool use_treedec, size_t max_answers,
                                obs::Session* obs, bool disable_cache) {
  obs::Span span(obs != nullptr ? obs->trace() : nullptr, "EvaluateCrpq");
  obs::MetricsShard* shard =
      obs != nullptr ? obs->metrics().AcquireShard() : nullptr;
  ECRPQ_RETURN_NOT_OK(ValidateQueryForDb(query, db.alphabet()));
  if (!query.IsCrpq()) {
    return Status::Invalid("EvaluateCrpq requires a CRPQ");
  }
  EvalResult out;
  if (db.NumVertices() == 0) {
    out.satisfiable = (query.NumNodeVars() == 0);
    if (out.satisfiable) out.answers.push_back({});
    return out;
  }

  // Language per path variable (A* when unconstrained). Relation NFAs of
  // arity 1 use packed letters (symbol+1); unpack back to Symbol labels.
  std::vector<const SyncRelation*> lang_of(query.NumPathVars(), nullptr);
  for (const RelAtom& atom : query.rel_atoms()) {
    lang_of[atom.paths[0]] = &query.relation(atom.relation);
  }

  RelationalDb rdb(static_cast<uint32_t>(db.NumVertices()));
  CqQuery cq;
  cq.num_vars = query.NumNodeVars();
  for (int v = 0; v < cq.num_vars; ++v) {
    cq.var_names.push_back(query.NodeVarName(v));
  }
  for (NodeVarId v : query.free_vars()) cq.free_vars.push_back(v);

  for (size_t a = 0; a < query.reach_atoms().size(); ++a) {
    const ReachAtom& atom = query.reach_atoms()[a];
    // Build the Symbol-labelled language NFA.
    Nfa lang;
    if (lang_of[atom.path] == nullptr) {
      // A*: one accepting state looping on every symbol.
      lang.AddState();
      lang.SetInitial(0);
      lang.SetAccepting(0);
      for (Symbol s = 0; s < static_cast<Symbol>(query.alphabet().size());
           ++s) {
        lang.AddTransition(0, static_cast<Label>(s), 0);
      }
    } else {
      const SyncRelation& rel = *lang_of[atom.path];
      lang.AddStates(rel.nfa().NumStates());
      for (StateId s : rel.nfa().initial()) lang.SetInitial(s);
      for (StateId s = 0; s < static_cast<StateId>(rel.nfa().NumStates());
           ++s) {
        if (rel.nfa().IsAccepting(s)) lang.SetAccepting(s);
        for (const Nfa::Transition& t : rel.nfa().TransitionsFrom(s)) {
          if (t.label == kEpsilon) {
            lang.AddTransition(s, kEpsilon, t.to);
          } else {
            const TapeLetter letter = rel.pack().Get(t.label, 0);
            if (letter == kBlank) continue;  // ⊥ never occurs on arity 1.
            lang.AddTransition(s, static_cast<Label>(letter), t.to);
          }
        }
      }
    }
    const std::string name = "reach" + std::to_string(a);
    ECRPQ_ASSIGN_OR_RAISE(Relation * rel, rdb.AddRelation(name, 2));
    {
      // One reach-atom materialization == one kPhaseReduceNs sample.
      // Cached path: intern the language (dedups across atoms AND across
      // queries — repeated regexes share one normalized automaton) and
      // serve per-source reach sets from the epoch-keyed global memo.
      // RpqReachFrom's output is independent of transition order, so the
      // interned (normalized) automaton yields byte-identical rows.
      obs::ScopedTimer reduce_timer(shard, obs::HistogramId::kPhaseReduceNs);
      const std::vector<std::pair<VertexId, VertexId>> rows =
          disable_cache
              ? RpqReachAll(db, lang, /*num_threads=*/0, obs)
              : RpqReachAllCached(
                    db, AutomatonInterner::Global().Intern(lang, shard),
                    /*num_threads=*/0, obs);
      for (const auto& [u, v] : rows) {
        const uint32_t row[2] = {u, v};
        rel->Add(row);
        obs::Add(shard, obs::CounterId::kTuplesMaterialized);
      }
    }
    if (obs != nullptr && obs->CheckBudget()) {
      return obs->ExhaustedStatus();
    }
    cq.atoms.push_back(CqAtom{name, {atom.from, atom.to}});
  }
  rdb.FinalizeAll();

  CqEvalOptions options;
  options.max_answers = query.IsBoolean() ? 1 : max_answers;
  options.obs = obs;
  ECRPQ_ASSIGN_OR_RAISE(CqEvalResult cq_result,
                        use_treedec
                            ? CqEvaluateTreeDec(rdb, cq, options)
                            : CqEvaluateBacktracking(rdb, cq, options));
  out.satisfiable = cq_result.satisfiable;
  out.aborted = cq_result.aborted;
  for (auto& answer : cq_result.answers) {
    out.answers.push_back(std::move(answer));
  }
  return out;
}

}  // namespace ecrpq
