// Answer explanation: certify one concrete answer tuple with a full
// satisfying assignment and explicit witness paths, one per path variable.
//
// Returned paths realize the reachability atoms and their labels jointly
// satisfy every relation atom — a checkable certificate of membership.
#ifndef ECRPQ_EVAL_EXPLAIN_H_
#define ECRPQ_EVAL_EXPLAIN_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "eval/generic_eval.h"
#include "graphdb/graph_db.h"
#include "graphdb/rpq_reach.h"
#include "query/ast.h"

namespace ecrpq {

struct Explanation {
  // Assignment per node variable (indexed by NodeVarId). Variables the
  // witness never had to bind hold ~0u.
  std::vector<VertexId> node_assignment;
  // One witness path per path variable (indexed by PathVarId).
  std::vector<std::vector<PathStep>> paths;

  // Human-readable rendering (variable names from the query).
  std::string ToString(const EcrpqQuery& query, const GraphDb& db) const;
};

// Explains `answer` (values for the query's free variables, in order).
// Returns nullopt if the tuple is not actually an answer on `db`.
Result<std::optional<Explanation>> ExplainAnswer(
    const GraphDb& db, const EcrpqQuery& query,
    const std::vector<VertexId>& answer);

// Validates an explanation against the database and the query: paths are
// real edge sequences with the right endpoints, and all relation atoms
// accept the path labels.
Status ValidateExplanation(const GraphDb& db, const EcrpqQuery& query,
                           const Explanation& explanation);

}  // namespace ecrpq

#endif  // ECRPQ_EVAL_EXPLAIN_H_
