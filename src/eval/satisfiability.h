// ECRPQ satisfiability: is there *some* graph database satisfying q?
//
// For synchronous relations this is decidable (contrast: CRPQ+Rational
// satisfiability is undecidable, paper §1 citing [2]). The key fact: a
// Boolean ECRPQ is satisfiable iff every G^rel component's joint relation
// (Lemma 4.1) is non-empty. One direction is immediate; for the other, a
// witness database is built from any tuple of words accepted by each
// component: draw each path variable's word as a fresh chain of edges
// between the endpoint vertices chosen for its node variables (one vertex
// per node variable). Empty words force their endpoints to coincide, which
// a union-find over node variables resolves.
#ifndef ECRPQ_EVAL_SATISFIABILITY_H_
#define ECRPQ_EVAL_SATISFIABILITY_H_

#include <optional>

#include "common/result.h"
#include "graphdb/graph_db.h"
#include "query/ast.h"

namespace ecrpq {

struct SatisfiabilityResult {
  bool satisfiable = false;
  // A canonical database on which the query holds (present iff
  // satisfiable). Its alphabet is the query's alphabet.
  std::optional<GraphDb> witness;
};

Result<SatisfiabilityResult> CheckSatisfiable(const EcrpqQuery& query);

}  // namespace ecrpq

#endif  // ECRPQ_EVAL_SATISFIABILITY_H_
