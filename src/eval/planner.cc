#include "eval/planner.h"

#include <sstream>
#include <string>

#include "automata/interner.h"
#include "eval/crpq_eval.h"
#include "eval/reduce_to_cq.h"
#include "graphdb/reach_memo.h"
#include "query/abstraction.h"
#include "query/simplify.h"

namespace ecrpq {

namespace {

std::string PlanCacheKey(const EcrpqQuery& query,
                         const PlannerThresholds& thresholds) {
  std::string key = CanonicalQueryKey(query);
  // Thresholds move the regime boundaries, so they are part of the key.
  AppendU32(&key, static_cast<uint32_t>(thresholds.max_cc_vertex));
  AppendU32(&key, static_cast<uint32_t>(thresholds.max_cc_hedge));
  AppendU32(&key, static_cast<uint32_t>(thresholds.max_treewidth));
  return key;
}

}  // namespace

const char* EvalRegimeName(EvalRegime r) {
  switch (r) {
    case EvalRegime::kPolynomialTime:
      return "polynomial-time (Thm 3.2(3))";
    case EvalRegime::kNp:
      return "NP (Thm 3.2(2))";
    case EvalRegime::kPspace:
      return "PSPACE (Thm 3.2(1))";
  }
  return "?";
}

const char* ParamRegimeName(ParamRegime r) {
  switch (r) {
    case ParamRegime::kFpt:
      return "FPT (Thm 3.1(3))";
    case ParamRegime::kW1:
      return "W[1]-complete (Thm 3.1(2))";
    case ParamRegime::kXnl:
      return "XNL-complete (Thm 3.1(1))";
  }
  return "?";
}

const char* EngineChoiceName(EngineChoice e) {
  switch (e) {
    case EngineChoice::kCrpqPipeline:
      return "crpq-pipeline";
    case EngineChoice::kCqReduction:
      return "cq-reduction/treedec";
    case EngineChoice::kCqReductionNp:
      return "cq-reduction/backtracking";
    case EngineChoice::kGeneric:
      return "generic-product";
  }
  return "?";
}

std::string QueryClassification::ToString() const {
  std::ostringstream out;
  out << "cc_vertex=" << measures.cc_vertex
      << " cc_hedge=" << measures.cc_hedge << " tw(G^node)="
      << measures.treewidth << (measures.treewidth_exact ? "" : " (approx)")
      << (is_crpq ? " [CRPQ]" : "") << "\n";
  out << "  eval:   " << EvalRegimeName(eval_regime) << "\n";
  out << "  p-eval: " << ParamRegimeName(param_regime) << "\n";
  out << "  engine: " << EngineChoiceName(engine);
  return out.str();
}

std::string QueryClassification::ToJson() const {
  std::ostringstream out;
  out << "{\"cc_vertex\": " << measures.cc_vertex
      << ", \"cc_hedge\": " << measures.cc_hedge
      << ", \"tw\": " << measures.treewidth << ", \"tw_exact\": "
      << (measures.treewidth_exact ? "true" : "false") << ", \"is_crpq\": "
      << (is_crpq ? "true" : "false") << ", \"eval_regime\": \""
      << EvalRegimeName(eval_regime) << "\", \"param_regime\": \""
      << ParamRegimeName(param_regime) << "\", \"engine\": \""
      << EngineChoiceName(engine) << "\"}";
  return out.str();
}

QueryClassification ClassifyQuery(const EcrpqQuery& query,
                                  const PlannerThresholds& thresholds) {
  QueryClassification c;
  const TwoLevelGraph g = QueryAbstraction(query);
  c.measures = ComputeMeasures(g);
  c.is_crpq = query.IsCrpq();

  const bool ccv_ok = c.measures.cc_vertex <= thresholds.max_cc_vertex;
  const bool cch_ok = c.measures.cc_hedge <= thresholds.max_cc_hedge;
  const bool tw_ok = c.measures.treewidth <= thresholds.max_treewidth;

  if (ccv_ok && cch_ok) {
    c.eval_regime =
        tw_ok ? EvalRegime::kPolynomialTime : EvalRegime::kNp;
  } else {
    c.eval_regime = EvalRegime::kPspace;
  }
  if (ccv_ok) {
    c.param_regime = tw_ok ? ParamRegime::kFpt : ParamRegime::kW1;
  } else {
    c.param_regime = ParamRegime::kXnl;
  }

  if (c.is_crpq) {
    c.engine = EngineChoice::kCrpqPipeline;
  } else if (c.eval_regime == EvalRegime::kPolynomialTime) {
    c.engine = EngineChoice::kCqReduction;
  } else if (c.eval_regime == EvalRegime::kNp) {
    c.engine = EngineChoice::kCqReductionNp;
  } else {
    c.engine = EngineChoice::kGeneric;
  }
  return c;
}

PlanCache& GlobalPlanCache() {
  static PlanCache* cache = new PlanCache(4u << 20, /*num_shards=*/8);
  return *cache;
}

void ClearGlobalCaches() {
  GlobalPlanCache().Clear();
  AutomatonInterner::Global().Clear();
  ReachMemo::Global().Clear();
}

QueryClassification ClassifyQueryCached(const EcrpqQuery& query,
                                        const PlannerThresholds& thresholds,
                                        obs::MetricsShard* obs_shard) {
  const std::string key = PlanCacheKey(query, thresholds);
  PlanCache& cache = GlobalPlanCache();
  if (std::optional<QueryClassification> hit = cache.Lookup(key, obs_shard)) {
    return *hit;
  }
  // Racing classifiers of the same query may both compute — classification
  // is a pure function of the key, so last-insert-wins is harmless, and
  // not holding the shard lock across the treewidth computation keeps the
  // cache responsive for unrelated queries.
  const QueryClassification c = ClassifyQuery(query, thresholds);
  cache.Insert(key, c, key.size() + sizeof(QueryClassification), obs_shard);
  return c;
}

Result<EvalResult> EvaluatePlanned(const GraphDb& db, const EcrpqQuery& query,
                                   const EvalOptions& options,
                                   const PlannerThresholds& thresholds,
                                   QueryClassification* classification_out) {
  obs::MetricsShard* shard =
      options.obs != nullptr ? options.obs->metrics().AcquireShard() : nullptr;
  const QueryClassification c =
      options.disable_cache ? ClassifyQuery(query, thresholds)
                            : ClassifyQueryCached(query, thresholds, shard);
  if (classification_out != nullptr) *classification_out = c;
  ReduceOptions reduce_options;
  reduce_options.max_product_states = options.max_product_states;
  reduce_options.obs = options.obs;
  switch (c.engine) {
    case EngineChoice::kCrpqPipeline:
      return EvaluateCrpq(db, query, /*use_treedec=*/true,
                          options.max_answers, options.obs,
                          options.disable_cache);
    case EngineChoice::kCqReduction:
      return EvaluateViaCqReduction(db, query, /*use_treedec=*/true,
                                    reduce_options, options.max_answers);
    case EngineChoice::kCqReductionNp:
      return EvaluateViaCqReduction(db, query, /*use_treedec=*/false,
                                    reduce_options, options.max_answers);
    case EngineChoice::kGeneric:
      return EvaluateGeneric(db, query, options);
  }
  return Status::Internal("unknown engine choice");
}

}  // namespace ecrpq
