// Component planning and merging (Lemma 4.1).
//
// PlanComponents groups the relation atoms of a query by G^rel connected
// component and lays out each component's path variables as the tapes of a
// joint relation. GenericEvaluator and ReduceToCq consume the plan with the
// *lazy* JoinMachine; MergeQueryComponents is the materialized construction
// of Lemma 4.1 (one explicit product relation per component), used by the
// merge-blowup experiment (E6) and available as a standalone rewrite.
#ifndef ECRPQ_EVAL_MERGE_H_
#define ECRPQ_EVAL_MERGE_H_

#include <vector>

#include "common/result.h"
#include "query/ast.h"
#include "synchro/join.h"

namespace ecrpq {

struct ComponentPlan {
  // Tape i of the joint relation is path variable paths[i] (sorted ids).
  std::vector<PathVarId> paths;
  // Per tape: endpoints of the unique reachability atom using that path.
  std::vector<NodeVarId> sources;
  std::vector<NodeVarId> targets;
  // One entry per relation atom in this component (implicitly-universal
  // singleton components have none).
  std::vector<JoinMachine::Component> machine_components;
};

// One plan per G^rel component (with implicit universal singletons for
// unconstrained path variables). The query must outlive the plans (machine
// components point into its relations).
std::vector<ComponentPlan> PlanComponents(const EcrpqQuery& query);

// Lemma 4.1: an equivalent query whose G^rel components each consist of a
// single hyperedge, by replacing each component's atoms with their product
// relation. Costs up to the product of the component's NFA sizes times the
// (|A|+1)^r letter enumeration — polynomial when cc_vertex and cc_hedge are
// constants.
Result<EcrpqQuery> MergeQueryComponents(const EcrpqQuery& query);

}  // namespace ecrpq

#endif  // ECRPQ_EVAL_MERGE_H_
