// GenericEvaluator: sound and complete evaluation for arbitrary ECRPQ.
//
// The algorithm mirrors the PSPACE upper bound (Prop. 2.2 / Lemma 4.2): per
// G^rel component, paths are searched simultaneously in the product of
// |component| copies of the database with the component's joint relation
// automaton (lazy Lemma 4.1 join). Node variables are assigned by
// backtracking; for each component, unassigned source variables are
// enumerated, the memoized reachability set Reach(ū) is computed once, and
// its accepting target tuples drive the assignment of target variables.
//
// Cost is exponential only in cc_vertex (tuple width) and in the treewidth
// of the node-variable constraint structure — exactly the measures of the
// characterization.
#ifndef ECRPQ_EVAL_GENERIC_EVAL_H_
#define ECRPQ_EVAL_GENERIC_EVAL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/obs.h"
#include "common/result.h"
#include "graphdb/graph_db.h"
#include "graphdb/tuple_search.h"
#include "query/ast.h"

namespace ecrpq {

struct EvalOptions {
  // Worker threads for the branch-parallel search: 0 = the ECRPQ_THREADS /
  // hardware default, 1 = fully sequential, N > 1 = a pool of N workers.
  // Answers (including max_answers early-stop and on_answer callback
  // sequences) are identical for every value; only EvalStats may grow with
  // parallelism, because branches explored concurrently are not un-explored
  // when an early stop cuts the replay short.
  int num_threads = 0;
  // Abort any single component search beyond this many product states
  // (0 = unlimited).
  size_t max_product_states = 0;
  // Stop after this many distinct answers (0 = unlimited; Boolean queries
  // stop at the first satisfying assignment regardless).
  size_t max_answers = 0;
  // Pre-pinned node-variable values (e.g. to certify one concrete answer
  // tuple; see eval/explain.h). Pinned variables are never re-enumerated.
  std::vector<std::pair<NodeVarId, VertexId>> pin;
  // Record the full node assignment of the first satisfying solution in
  // EvalResult::first_assignment.
  bool capture_assignment = false;
  // Disable per-source memoization in the component searches (ablation).
  bool disable_memo = false;
  // Bypass the process-wide cross-query caches — plan cache (eval/planner),
  // automaton interner (automata/interner.h) and reach-set memo
  // (graphdb/reach_memo.h) — for this evaluation: nothing is looked up and
  // nothing is published. Answers are byte-identical either way (the cache
  // differential suite checks this); the switch exists as an escape hatch
  // (ecrpq_cli --no-cache) and for cold-path benchmarking.
  bool disable_cache = false;
  // Streaming: invoked once per *distinct* answer as it is found (before
  // the final sorted answer vector is produced). Returning false stops the
  // evaluation early. Boolean queries stream at most one (empty) tuple.
  std::function<bool(const std::vector<VertexId>&)> on_answer;
  // Observability & resource-governance session (common/obs.h): counters,
  // trace spans and the evaluation-wide budget. When the budget trips,
  // EvaluateGeneric returns Status::ResourceExhausted and the partial
  // StatsReport stays readable via the session. Null = zero overhead;
  // answers are byte-identical with or without a session attached.
  obs::Session* obs = nullptr;
};

struct EvalStats {
  size_t product_states = 0;     // Total across component searches.
  size_t reach_queries = 0;      // Source tuples BFS'd.
  size_t assignments_tried = 0;  // Backtracking nodes.
};

struct EvalResult {
  bool satisfiable = false;
  // Distinct answers projected to the free variables, sorted. For Boolean
  // queries: one empty tuple when satisfiable.
  std::vector<std::vector<VertexId>> answers;
  bool aborted = false;
  EvalStats stats;
  // With EvalOptions::capture_assignment: the node assignment of the first
  // satisfying solution (indexed by NodeVarId; ~0u for variables the
  // solution never had to bind). Empty when unsatisfiable or not requested.
  std::vector<VertexId> first_assignment;
};

// One-shot evaluation.
Result<EvalResult> EvaluateGeneric(const GraphDb& db, const EcrpqQuery& query,
                                   const EvalOptions& options = {});

}  // namespace ecrpq

#endif  // ECRPQ_EVAL_GENERIC_EVAL_H_
