#include "eval/satisfiability.h"

#include <numeric>
#include <vector>

#include "common/check.h"
#include "eval/merge.h"
#include "query/validate.h"
#include "synchro/ops.h"

namespace ecrpq {
namespace {

class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Merge(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

}  // namespace

Result<SatisfiabilityResult> CheckSatisfiable(const EcrpqQuery& query) {
  ECRPQ_RETURN_NOT_OK(ValidateQuery(query));
  SatisfiabilityResult out;

  const std::vector<ComponentPlan> plans = PlanComponents(query);
  // Per component: a witness word tuple (tape order = plan.paths).
  std::vector<std::vector<Word>> witnesses;
  witnesses.reserve(plans.size());
  for (const ComponentPlan& plan : plans) {
    if (plan.machine_components.empty()) {
      // Unconstrained component: ε on every tape.
      witnesses.emplace_back(plan.paths.size());
      continue;
    }
    std::vector<TapeMapping> parts;
    for (const JoinMachine::Component& mc : plan.machine_components) {
      parts.push_back(TapeMapping{mc.relation, mc.tape_map});
    }
    ECRPQ_ASSIGN_OR_RAISE(
        SyncRelation joint,
        JoinComponents(query.alphabet(), parts,
                       static_cast<int>(plan.paths.size())));
    std::optional<std::vector<Word>> witness = joint.Witness();
    if (!witness.has_value()) {
      out.satisfiable = false;
      return out;
    }
    witnesses.push_back(std::move(*witness));
  }
  out.satisfiable = true;

  // Build the canonical witness database. ε-labelled paths glue their
  // endpoints together.
  UnionFind uf(query.NumNodeVars());
  for (size_t c = 0; c < plans.size(); ++c) {
    for (size_t t = 0; t < plans[c].paths.size(); ++t) {
      if (witnesses[c][t].empty()) {
        uf.Merge(static_cast<int>(plans[c].sources[t]),
                 static_cast<int>(plans[c].targets[t]));
      }
    }
  }
  GraphDb db(query.alphabet());
  std::vector<VertexId> vertex_of(query.NumNodeVars(), 0);
  std::vector<int> rep_vertex(query.NumNodeVars(), -1);
  for (int v = 0; v < query.NumNodeVars(); ++v) {
    const int rep = uf.Find(v);
    if (rep_vertex[rep] < 0) {
      rep_vertex[rep] = static_cast<int>(db.AddVertex());
    }
    vertex_of[v] = static_cast<VertexId>(rep_vertex[rep]);
  }
  if (db.NumVertices() == 0) db.AddVertex();  // Queries with no variables.
  for (size_t c = 0; c < plans.size(); ++c) {
    for (size_t t = 0; t < plans[c].paths.size(); ++t) {
      const Word& w = witnesses[c][t];
      if (w.empty()) continue;
      VertexId cur = vertex_of[plans[c].sources[t]];
      for (size_t i = 0; i + 1 < w.size(); ++i) {
        const VertexId next = db.AddVertex();
        db.AddEdge(cur, w[i], next);
        cur = next;
      }
      db.AddEdge(cur, w.back(), vertex_of[plans[c].targets[t]]);
    }
  }
  out.witness = std::move(db);
  return out;
}

}  // namespace ecrpq
