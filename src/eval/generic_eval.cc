#include "eval/generic_eval.h"

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "common/check.h"
#include "common/hash.h"
#include "eval/merge.h"
#include "query/validate.h"

namespace ecrpq {
namespace {

constexpr VertexId kUnset = ~VertexId{0};

struct Engine {
  const GraphDb& db;
  const EcrpqQuery& query;
  const EvalOptions& options;

  std::vector<ComponentPlan> plans;
  std::vector<std::unique_ptr<JoinMachine>> machines;
  std::vector<std::unique_ptr<TupleSearcher>> searchers;

  std::vector<VertexId> assignment;
  std::unordered_set<std::vector<VertexId>, VectorHash<VertexId>> answers;
  EvalResult result;
  bool done = false;

  void Emit() {
    std::vector<VertexId> answer;
    answer.reserve(query.free_vars().size());
    for (NodeVarId v : query.free_vars()) answer.push_back(assignment[v]);
    const auto [it, inserted] = answers.insert(std::move(answer));
    if (inserted && options.on_answer && !options.on_answer(*it)) {
      done = true;
    }
    if (options.capture_assignment && !result.satisfiable) {
      result.first_assignment = assignment;
    }
    result.satisfiable = true;
    if (query.IsBoolean() ||
        (options.max_answers != 0 && answers.size() >= options.max_answers)) {
      done = true;
    }
  }

  // Stage 3: free variables that occur in no reachability atom range over
  // the whole vertex set.
  void AssignIsolated(const std::vector<NodeVarId>& isolated_free,
                      size_t idx) {
    if (done) return;
    if (idx == isolated_free.size()) {
      Emit();
      return;
    }
    const NodeVarId v = isolated_free[idx];
    if (assignment[v] != kUnset) {  // Pinned.
      AssignIsolated(isolated_free, idx + 1);
      return;
    }
    for (VertexId value = 0;
         value < static_cast<VertexId>(db.NumVertices()) && !done; ++value) {
      assignment[v] = value;
      AssignIsolated(isolated_free, idx + 1);
    }
    assignment[v] = kUnset;
  }

  // Stage 2 for one component: source variables are fully assigned; iterate
  // accepting target tuples and bind target variables.
  void SolveTargets(size_t comp, const std::vector<NodeVarId>& isolated_free) {
    const ComponentPlan& plan = plans[comp];
    std::vector<VertexId> sources(plan.paths.size());
    for (size_t i = 0; i < plan.paths.size(); ++i) {
      sources[i] = assignment[plan.sources[i]];
      ECRPQ_DCHECK(sources[i] != kUnset);
    }
    const ReachSet& reach = searchers[comp]->Reach(sources);
    if (reach.aborted) {
      result.aborted = true;
      done = true;
      return;
    }
    for (const std::vector<VertexId>& targets : reach.targets) {
      ++result.stats.assignments_tried;
      std::vector<NodeVarId> newly;
      bool consistent = true;
      for (size_t i = 0; i < plan.paths.size() && consistent; ++i) {
        const NodeVarId tv = plan.targets[i];
        if (assignment[tv] == kUnset) {
          assignment[tv] = targets[i];
          newly.push_back(tv);
        } else if (assignment[tv] != targets[i]) {
          consistent = false;
        }
      }
      if (consistent) SolveComponent(comp + 1, isolated_free);
      for (NodeVarId v : newly) assignment[v] = kUnset;
      if (done) return;
    }
  }

  // Stage 1 for one component: enumerate values for unassigned source
  // variables, then hand over to SolveTargets.
  void SolveSources(size_t comp, const std::vector<NodeVarId>& unassigned,
                    size_t idx, const std::vector<NodeVarId>& isolated_free) {
    if (done) return;
    if (idx == unassigned.size()) {
      SolveTargets(comp, isolated_free);
      return;
    }
    const NodeVarId v = unassigned[idx];
    for (VertexId value = 0;
         value < static_cast<VertexId>(db.NumVertices()) && !done; ++value) {
      ++result.stats.assignments_tried;
      assignment[v] = value;
      SolveSources(comp, unassigned, idx + 1, isolated_free);
    }
    assignment[v] = kUnset;
  }

  void SolveComponent(size_t comp, const std::vector<NodeVarId>& isolated_free) {
    if (done) return;
    if (comp == plans.size()) {
      AssignIsolated(isolated_free, 0);
      return;
    }
    std::vector<NodeVarId> unassigned;
    for (NodeVarId v : plans[comp].sources) {
      if (assignment[v] == kUnset &&
          std::find(unassigned.begin(), unassigned.end(), v) ==
              unassigned.end()) {
        unassigned.push_back(v);
      }
    }
    SolveSources(comp, unassigned, 0, isolated_free);
  }
};

}  // namespace

Result<EvalResult> EvaluateGeneric(const GraphDb& db, const EcrpqQuery& query,
                                   const EvalOptions& options) {
  ECRPQ_RETURN_NOT_OK(ValidateQueryForDb(query, db.alphabet()));

  EvalResult empty_result;
  if (db.NumVertices() == 0) {
    empty_result.satisfiable = (query.NumNodeVars() == 0);
    if (empty_result.satisfiable) empty_result.answers.push_back({});
    return empty_result;
  }

  Engine engine{db, query, options, {}, {}, {}, {}, {}, {}, false};
  engine.plans = PlanComponents(query);
  // Solve small components first: they bind variables cheaply and their
  // memoized reach sets are reused across backtracking branches.
  std::sort(engine.plans.begin(), engine.plans.end(),
            [](const ComponentPlan& a, const ComponentPlan& b) {
              return a.paths.size() < b.paths.size();
            });
  for (const ComponentPlan& plan : engine.plans) {
    ECRPQ_ASSIGN_OR_RAISE(
        JoinMachine machine,
        JoinMachine::Create(query.alphabet(), plan.machine_components,
                            static_cast<int>(plan.paths.size())));
    engine.machines.push_back(
        std::make_unique<JoinMachine>(std::move(machine)));
    TupleSearchOptions search_options;
    search_options.max_states = options.max_product_states;
    search_options.disable_memo = options.disable_memo;
    ECRPQ_ASSIGN_OR_RAISE(
        TupleSearcher searcher,
        TupleSearcher::Create(&db, engine.machines.back().get(),
                              search_options));
    engine.searchers.push_back(
        std::make_unique<TupleSearcher>(std::move(searcher)));
  }

  engine.assignment.assign(query.NumNodeVars(), kUnset);
  for (const auto& [var, value] : options.pin) {
    if (var >= static_cast<NodeVarId>(query.NumNodeVars())) {
      return Status::Invalid("pinned variable out of range");
    }
    if (value >= static_cast<VertexId>(db.NumVertices())) {
      return Status::Invalid("pinned value out of range");
    }
    engine.assignment[var] = value;
  }

  // Free variables not touched by any reachability atom.
  std::vector<NodeVarId> isolated_free;
  {
    std::vector<bool> covered(query.NumNodeVars(), false);
    for (const ReachAtom& atom : query.reach_atoms()) {
      covered[atom.from] = true;
      covered[atom.to] = true;
    }
    for (NodeVarId v : query.free_vars()) {
      if (!covered[v]) isolated_free.push_back(v);
    }
  }

  engine.SolveComponent(0, isolated_free);

  engine.result.answers.assign(engine.answers.begin(), engine.answers.end());
  std::sort(engine.result.answers.begin(), engine.result.answers.end());
  for (const auto& searcher : engine.searchers) {
    engine.result.stats.product_states += searcher->TotalExploredStates();
    engine.result.stats.reach_queries += searcher->NumMemoizedSources();
  }
  return engine.result;
}

}  // namespace ecrpq
