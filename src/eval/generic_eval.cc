#include "eval/generic_eval.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <unordered_set>
#include <utility>

#include "common/annotations.h"
#include "common/check.h"
#include "common/hash.h"
#include "common/thread_pool.h"
#include "common/worklist.h"
#include "eval/merge.h"
#include "query/validate.h"

namespace ecrpq {
namespace {

constexpr VertexId kUnset = ~VertexId{0};

// Backtracking nodes between full budget checks. Exhaustion is observed via
// a relaxed flag load on every Stopped() call; the (counter totals + clock)
// check only runs at this stride.
constexpr size_t kEngineBudgetStride = 4096;

obs::Trace* TraceOf(const EvalOptions& options) {
  return options.obs != nullptr ? options.obs->trace() : nullptr;
}

// One answer recorded by a branch engine, in branch-local emission order.
// The parallel driver partitions the sequential enumeration by the value of
// one branch variable, lets workers record what each branch *would* emit,
// and replays the branches in value order — so the user-visible stream
// (dedup, max_answers cutoff, on_answer calls) is exactly the sequential
// one.
struct RecordedAnswer {
  std::vector<VertexId> answer;
  // Full node assignment; captured only for the first event of a branch
  // when EvalOptions::capture_assignment is set (the replay's first
  // consumed event is always some branch's first event).
  std::vector<VertexId> assignment;
};

struct Engine {
  Engine(const GraphDb& db, const EcrpqQuery& query,
         const EvalOptions& options, const std::vector<ComponentPlan>& plans)
      : db(db),
        query(query),
        options(options),
        plans(plans),
        shard(options.obs != nullptr ? options.obs->metrics().AcquireShard()
                                     : nullptr) {
    if (shard != nullptr) start_time = std::chrono::steady_clock::now();
  }

  const GraphDb& db;
  const EcrpqQuery& query;
  const EvalOptions& options;
  const std::vector<ComponentPlan>& plans;

  std::vector<std::unique_ptr<JoinMachine>> machines;
  std::vector<std::unique_ptr<TupleSearcher>> searchers;

  std::vector<VertexId> assignment;
  // In record mode this set persists across a worker's branches: an answer
  // suppressed here was recorded by an earlier branch of the same worker,
  // which the ordered replay always consumes first.
  std::unordered_set<std::vector<VertexId>, VectorHash<VertexId>> answers;
  EvalResult result;
  bool done = false;

  // Record mode (parallel branches): Emit() appends locally-new answers to
  // *record instead of running the sequential side effects; max_answers and
  // on_answer are applied by the ordered replay on the coordinator thread.
  std::vector<RecordedAnswer>* record = nullptr;
  // Cooperative cancellation, flipped by the coordinator once the replay
  // has everything it needs (or an abort stopped it).
  const CancelToken* cancel = nullptr;

  // Metrics shard of this engine (one engine == one worker thread); null
  // when no obs session is attached.
  obs::MetricsShard* shard;
  // Engine construction time — the zero point for kAnswerLatencyNs samples.
  std::chrono::steady_clock::time_point start_time{};
  // Stopped() is called on hot paths and must stay const; the budget tick
  // counter is bookkeeping, not engine state.
  mutable size_t budget_tick = 0;

  // Records engine-start -> now into the answer-latency histogram.
  void RecordAnswerLatency() {
    if (shard == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_time;
    shard->Record(
        obs::HistogramId::kAnswerLatencyNs,
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
  }

  Status InitSearchers() {
    obs::Span span(TraceOf(options), "JoinMachine::Create");
    obs::ScopedTimer timer(shard, obs::HistogramId::kPhaseNfaBuildNs);
    for (const ComponentPlan& plan : plans) {
      ECRPQ_ASSIGN_OR_RAISE(
          JoinMachine machine,
          JoinMachine::Create(query.alphabet(), plan.machine_components,
                              static_cast<int>(plan.paths.size())));
      machines.push_back(std::make_unique<JoinMachine>(std::move(machine)));
      TupleSearchOptions search_options;
      search_options.max_states = options.max_product_states;
      search_options.disable_memo = options.disable_memo;
      search_options.obs = options.obs;
      ECRPQ_ASSIGN_OR_RAISE(
          TupleSearcher searcher,
          TupleSearcher::Create(&db, machines.back().get(), search_options));
      searchers.push_back(
          std::make_unique<TupleSearcher>(std::move(searcher)));
    }
    return Status();  // Default-constructed == OK.
  }

  void ResetForBranch(std::vector<RecordedAnswer>* branch_record) {
    record = branch_record;
    done = false;
    result.aborted = false;
  }

  bool Stopped() const {
    if (done) return true;
    if (cancel != nullptr && cancel->IsCancelled()) return true;
    if (options.obs != nullptr) {
      if (options.obs->Exhausted()) return true;
      if ((++budget_tick & (kEngineBudgetStride - 1)) == 0 &&
          options.obs->CheckBudget()) {
        return true;
      }
    }
    return false;
  }

  void Emit() {
    std::vector<VertexId> answer;
    answer.reserve(query.free_vars().size());
    for (NodeVarId v : query.free_vars()) answer.push_back(assignment[v]);
    if (record != nullptr) {
      const auto [it, inserted] = answers.insert(std::move(answer));
      if (inserted) {
        obs::Add(shard, obs::CounterId::kAnswersEmitted);
        RecordAnswerLatency();
        RecordedAnswer rec;
        rec.answer = *it;
        if (options.capture_assignment && record->empty()) {
          rec.assignment = assignment;
        }
        record->push_back(std::move(rec));
      }
      result.satisfiable = true;  // Branch-local; the replay recomputes it.
      if (query.IsBoolean()) done = true;
      return;
    }
    const auto [it, inserted] = answers.insert(std::move(answer));
    if (inserted) {
      obs::Add(shard, obs::CounterId::kAnswersEmitted);
      RecordAnswerLatency();
    }
    if (inserted && options.on_answer && !options.on_answer(*it)) {
      done = true;
    }
    if (options.capture_assignment && !result.satisfiable) {
      result.first_assignment = assignment;
    }
    result.satisfiable = true;
    if (query.IsBoolean() ||
        (options.max_answers != 0 && answers.size() >= options.max_answers)) {
      done = true;
    }
  }

  // Stage 3: free variables that occur in no reachability atom range over
  // the whole vertex set.
  void AssignIsolated(const std::vector<NodeVarId>& isolated_free,
                      size_t idx) {
    if (Stopped()) return;
    if (idx == isolated_free.size()) {
      Emit();
      return;
    }
    const NodeVarId v = isolated_free[idx];
    if (assignment[v] != kUnset) {  // Pinned.
      AssignIsolated(isolated_free, idx + 1);
      return;
    }
    for (VertexId value = 0;
         value < static_cast<VertexId>(db.NumVertices()) && !Stopped();
         ++value) {
      assignment[v] = value;
      AssignIsolated(isolated_free, idx + 1);
    }
    assignment[v] = kUnset;
  }

  // Stage 2 for one component: source variables are fully assigned; iterate
  // accepting target tuples and bind target variables.
  void SolveTargets(size_t comp, const std::vector<NodeVarId>& isolated_free) {
    const ComponentPlan& plan = plans[comp];
    std::vector<VertexId> sources(plan.paths.size());
    for (size_t i = 0; i < plan.paths.size(); ++i) {
      sources[i] = assignment[plan.sources[i]];
      ECRPQ_DCHECK(sources[i] != kUnset);
    }
    const ReachSet& reach = searchers[comp]->Reach(sources);
    if (reach.aborted) {
      result.aborted = true;
      done = true;
      return;
    }
    for (const std::vector<VertexId>& targets : reach.targets) {
      ++result.stats.assignments_tried;
      obs::Add(shard, obs::CounterId::kAssignmentsTried);
      std::vector<NodeVarId> newly;
      bool consistent = true;
      for (size_t i = 0; i < plan.paths.size() && consistent; ++i) {
        const NodeVarId tv = plan.targets[i];
        if (assignment[tv] == kUnset) {
          assignment[tv] = targets[i];
          newly.push_back(tv);
        } else if (assignment[tv] != targets[i]) {
          consistent = false;
        }
      }
      if (consistent) SolveComponent(comp + 1, isolated_free);
      for (NodeVarId v : newly) assignment[v] = kUnset;
      if (Stopped()) return;
    }
  }

  // Stage 1 for one component: enumerate values for unassigned source
  // variables, then hand over to SolveTargets.
  void SolveSources(size_t comp, const std::vector<NodeVarId>& unassigned,
                    size_t idx, const std::vector<NodeVarId>& isolated_free) {
    if (Stopped()) return;
    if (idx == unassigned.size()) {
      SolveTargets(comp, isolated_free);
      return;
    }
    const NodeVarId v = unassigned[idx];
    for (VertexId value = 0;
         value < static_cast<VertexId>(db.NumVertices()) && !Stopped();
         ++value) {
      ++result.stats.assignments_tried;
      obs::Add(shard, obs::CounterId::kAssignmentsTried);
      assignment[v] = value;
      SolveSources(comp, unassigned, idx + 1, isolated_free);
    }
    assignment[v] = kUnset;
  }

  void SolveComponent(size_t comp,
                      const std::vector<NodeVarId>& isolated_free) {
    if (Stopped()) return;
    if (comp == plans.size()) {
      AssignIsolated(isolated_free, 0);
      return;
    }
    SolveSources(comp, UnassignedSources(comp), 0, isolated_free);
  }

  std::vector<NodeVarId> UnassignedSources(size_t comp) const {
    std::vector<NodeVarId> unassigned;
    for (NodeVarId v : plans[comp].sources) {
      if (assignment[v] == kUnset &&
          std::find(unassigned.begin(), unassigned.end(), v) ==
              unassigned.end()) {
        unassigned.push_back(v);
      }
    }
    return unassigned;
  }

  void AccumulateSearchStats() {
    for (const auto& searcher : searchers) {
      result.stats.product_states += searcher->TotalExploredStates();
      result.stats.reach_queries += searcher->NumMemoizedSources();
    }
  }
};

// Branch-parallel evaluation: partition the sequential enumeration by the
// value of the first unassigned source variable of the first component,
// search branches concurrently (each worker owns a full engine and reuses
// its searcher memo across the branches it claims), then replay recorded
// answers in branch order. See docs/ARCHITECTURE.md, "Threading model".
Result<EvalResult> EvaluateParallel(
    const GraphDb& db, const EcrpqQuery& query, const EvalOptions& options,
    const std::vector<ComponentPlan>& plans,
    const std::vector<VertexId>& base_assignment,
    const std::vector<NodeVarId>& isolated_free, NodeVarId branch_var,
    int threads) {
  db.Finalize();  // The lazy CSR build is not thread-safe; do it up front.
  const VertexId n = static_cast<VertexId>(db.NumVertices());
  const int num_workers = std::min<int>(threads, static_cast<int>(n));

  CancelToken cancel;
  std::vector<std::unique_ptr<Engine>> engines;
  engines.reserve(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    engines.push_back(std::make_unique<Engine>(db, query, options, plans));
    ECRPQ_RETURN_NOT_OK(engines.back()->InitSearchers());
    engines.back()->cancel = &cancel;
  }

  struct Branch {
    std::vector<RecordedAnswer> events;
    bool aborted = false;
  };
  std::vector<Branch> branches(n);
  // Coordinator handshake: workers mark a branch ready under the mutex and
  // the replay thread waits for branches in value order. branches[b] itself
  // is published by the ready flip (write before, read after).
  struct Coordinator {
    explicit Coordinator(size_t n) : ready(n, 0) {}
    Mutex mutex;
    CondVar cv;
    std::vector<char> ready ECRPQ_GUARDED_BY(mutex);
  };
  Coordinator coord(n);

  // Branch values are distributed through the work-stealing scheduler:
  // worker w exclusively drives engines[w] (searcher memos are single-owner
  // state), chunks of adjacent branch values keep memo locality, and idle
  // workers steal whole chunks from busy ones — a branch with a heavy
  // subtree no longer serializes the tail of the enumeration behind it.
  // Start() returns immediately, so the ordered replay below runs
  // concurrently with the search.
  obs::MetricsShard* sched_shard = options.obs != nullptr
                                       ? options.obs->metrics().AcquireShard()
                                       : nullptr;
  FrontierScheduler scheduler(ThreadPool::Shared(threads), sched_shard);
  scheduler.Start(n, [&](size_t b, int w) {
    ECRPQ_DCHECK(static_cast<size_t>(w) < engines.size());
    if (!cancel.IsCancelled()) {
      Engine& eng = *engines[w];
      obs::Span branch_span(TraceOf(options), "EvaluateGeneric.branch", b);
      obs::Add(eng.shard, obs::CounterId::kBranchesExplored);
      obs::ScopedTimer branch_timer(eng.shard,
                                    obs::HistogramId::kPhaseBranchNs);
      eng.ResetForBranch(&branches[b].events);
      eng.assignment = base_assignment;
      eng.assignment[branch_var] = static_cast<VertexId>(b);
      eng.SolveComponent(0, isolated_free);
      branches[b].aborted = eng.result.aborted;
    }
    {
      MutexLock lock(coord.mutex);
      coord.ready[b] = 1;
    }
    coord.cv.NotifyAll();
  });

  // Ordered replay on this thread: consume branches in value order and
  // apply the sequential side effects (global dedup, callback, cutoffs).
  EvalResult result;
  std::unordered_set<std::vector<VertexId>, VectorHash<VertexId>> global;
  bool stopped = false;
  bool any_event = false;
  for (VertexId b = 0; b < n && !stopped; ++b) {
    {
      MutexLock lock(coord.mutex);
      while (coord.ready[b] == 0) coord.cv.Wait(coord.mutex);
    }
    for (const RecordedAnswer& event : branches[b].events) {
      if (!any_event && options.capture_assignment) {
        result.first_assignment = event.assignment;
      }
      any_event = true;
      result.satisfiable = true;
      const auto [it, inserted] = global.insert(event.answer);
      if (inserted && options.on_answer && !options.on_answer(*it)) {
        stopped = true;
        break;
      }
      if (query.IsBoolean() ||
          (options.max_answers != 0 &&
           global.size() >= options.max_answers)) {
        stopped = true;
        break;
      }
    }
    if (!stopped && branches[b].aborted) {
      result.aborted = true;
      stopped = true;
    }
  }
  cancel.Cancel();
  scheduler.Wait();

  // Final check (not just Exhausted()): a run whose totals crossed the
  // budget never returns OK, even when it finished between poll strides.
  if (options.obs != nullptr && options.obs->CheckBudget()) {
    return options.obs->ExhaustedStatus();
  }

  result.answers.assign(global.begin(), global.end());
  std::sort(result.answers.begin(), result.answers.end());
  for (const auto& eng : engines) {
    eng->AccumulateSearchStats();
    result.stats.product_states += eng->result.stats.product_states;
    result.stats.reach_queries += eng->result.stats.reach_queries;
    result.stats.assignments_tried += eng->result.stats.assignments_tried;
  }
  return result;
}

}  // namespace

Result<EvalResult> EvaluateGeneric(const GraphDb& db, const EcrpqQuery& query,
                                   const EvalOptions& options) {
  obs::Span span(TraceOf(options), "EvaluateGeneric");
  ECRPQ_RETURN_NOT_OK(ValidateQueryForDb(query, db.alphabet()));

  EvalResult empty_result;
  if (db.NumVertices() == 0) {
    empty_result.satisfiable = (query.NumNodeVars() == 0);
    if (empty_result.satisfiable) empty_result.answers.push_back({});
    return empty_result;
  }

  std::vector<ComponentPlan> plans = PlanComponents(query);
  // Solve small components first: they bind variables cheaply and their
  // memoized reach sets are reused across backtracking branches.
  std::sort(plans.begin(), plans.end(),
            [](const ComponentPlan& a, const ComponentPlan& b) {
              return a.paths.size() < b.paths.size();
            });

  std::vector<VertexId> base_assignment(query.NumNodeVars(), kUnset);
  for (const auto& [var, value] : options.pin) {
    if (var >= static_cast<NodeVarId>(query.NumNodeVars())) {
      return Status::Invalid("pinned variable out of range");
    }
    if (value >= static_cast<VertexId>(db.NumVertices())) {
      return Status::Invalid("pinned value out of range");
    }
    base_assignment[var] = value;
  }

  // Free variables not touched by any reachability atom.
  std::vector<NodeVarId> isolated_free;
  {
    std::vector<bool> covered(query.NumNodeVars(), false);
    for (const ReachAtom& atom : query.reach_atoms()) {
      covered[atom.from] = true;
      covered[atom.to] = true;
    }
    for (NodeVarId v : query.free_vars()) {
      if (!covered[v]) isolated_free.push_back(v);
    }
  }

  const int threads = ThreadPool::ResolveNumThreads(options.num_threads);
  if (threads > 1 && db.NumVertices() > 1 && !plans.empty()) {
    // Branch on the first value the sequential engine would enumerate: the
    // first unassigned source variable of the first component.
    std::vector<NodeVarId> unassigned;
    for (NodeVarId v : plans[0].sources) {
      if (base_assignment[v] == kUnset &&
          std::find(unassigned.begin(), unassigned.end(), v) ==
              unassigned.end()) {
        unassigned.push_back(v);
      }
    }
    if (!unassigned.empty()) {
      return EvaluateParallel(db, query, options, plans, base_assignment,
                              isolated_free, unassigned[0], threads);
    }
  }

  Engine engine(db, query, options, plans);
  ECRPQ_RETURN_NOT_OK(engine.InitSearchers());
  engine.assignment = base_assignment;
  engine.SolveComponent(0, isolated_free);

  // Final check, as in EvaluateParallel: totals that crossed the budget
  // between poll strides still surface as ResourceExhausted.
  if (options.obs != nullptr && options.obs->CheckBudget()) {
    return options.obs->ExhaustedStatus();
  }

  engine.result.answers.assign(engine.answers.begin(), engine.answers.end());
  std::sort(engine.result.answers.begin(), engine.result.answers.end());
  engine.AccumulateSearchStats();
  return engine.result;
}

}  // namespace ecrpq
