// Adaptive evaluation: budgeted lazy search with a regime-aware fallback.
//
// The E12 ablation shows the lazy product evaluator dominates on easy
// (satisfiable, small) instances while the Lemma 4.3 pipeline provides the
// polynomial worst-case guarantee in the tractable regime. The adaptive
// engine combines both, guided by the classification:
//
//   1. run the lazy generic evaluator with a product-state budget derived
//      from the database size and the query's cc_vertex;
//   2. if it finishes, done — its answer is exact;
//   3. if it hits the budget, fall back to the engine the planner
//      prescribes for the query's regime (pipeline engines materialize
//      bottom-up and are immune to unlucky search orders; in the PSPACE
//      regime there is nothing better, so the budget is lifted instead).
#ifndef ECRPQ_EVAL_ADAPTIVE_H_
#define ECRPQ_EVAL_ADAPTIVE_H_

#include "common/result.h"
#include "eval/generic_eval.h"
#include "eval/planner.h"

namespace ecrpq {

struct AdaptiveOptions {
  // Budget for phase 1 as a multiple of |V|^min(cc_vertex, cap) · cc_hedge.
  double budget_factor = 64.0;
  int cc_vertex_cap = 2;
  EvalOptions eval;                 // max_answers etc.
  PlannerThresholds thresholds;
};

struct AdaptiveReport {
  QueryClassification classification;
  size_t phase1_budget = 0;
  bool fell_back = false;
  EngineChoice fallback_engine = EngineChoice::kGeneric;
};

Result<EvalResult> EvaluateAdaptive(const GraphDb& db,
                                    const EcrpqQuery& query,
                                    const AdaptiveOptions& options = {},
                                    AdaptiveReport* report = nullptr);

}  // namespace ecrpq

#endif  // ECRPQ_EVAL_ADAPTIVE_H_
