#include "eval/uecrpq.h"

#include <algorithm>
#include <set>

#include "query/validate.h"

namespace ecrpq {

Status ValidateUnion(const UecrpqQuery& query) {
  if (query.disjuncts.empty()) {
    return Status::Invalid("a UECRPQ needs at least one disjunct");
  }
  const size_t arity = query.disjuncts[0].free_vars().size();
  const Alphabet& alphabet = query.disjuncts[0].alphabet();
  for (const EcrpqQuery& disjunct : query.disjuncts) {
    ECRPQ_RETURN_NOT_OK(ValidateQuery(disjunct));
    if (disjunct.free_vars().size() != arity) {
      return Status::Invalid(
          "all disjuncts of a union must have the same answer arity");
    }
    if (!(disjunct.alphabet() == alphabet)) {
      return Status::Invalid("all disjuncts must share one alphabet");
    }
  }
  return Status::OK();
}

Result<EvalResult> EvaluateUnion(const GraphDb& db, const UecrpqQuery& query,
                                 const EvalOptions& options) {
  ECRPQ_RETURN_NOT_OK(ValidateUnion(query));
  EvalResult merged;
  std::set<std::vector<VertexId>> answers;
  const bool boolean = query.disjuncts[0].IsBoolean();
  for (const EcrpqQuery& disjunct : query.disjuncts) {
    ECRPQ_ASSIGN_OR_RAISE(EvalResult result,
                          EvaluatePlanned(db, disjunct, options));
    merged.aborted = merged.aborted || result.aborted;
    merged.satisfiable = merged.satisfiable || result.satisfiable;
    merged.stats.product_states += result.stats.product_states;
    answers.insert(result.answers.begin(), result.answers.end());
    if (boolean && merged.satisfiable) break;
    if (options.max_answers != 0 && answers.size() >= options.max_answers) {
      break;
    }
  }
  merged.answers.assign(answers.begin(), answers.end());
  if (options.max_answers != 0 &&
      merged.answers.size() > options.max_answers) {
    merged.answers.resize(options.max_answers);
  }
  return merged;
}

QueryClassification ClassifyUnion(const UecrpqQuery& query,
                                  const PlannerThresholds& thresholds) {
  QueryClassification worst;
  bool first = true;
  for (const EcrpqQuery& disjunct : query.disjuncts) {
    const QueryClassification c = ClassifyQuery(disjunct, thresholds);
    if (first) {
      worst = c;
      first = false;
      continue;
    }
    worst.measures.cc_vertex =
        std::max(worst.measures.cc_vertex, c.measures.cc_vertex);
    worst.measures.cc_hedge =
        std::max(worst.measures.cc_hedge, c.measures.cc_hedge);
    worst.measures.treewidth =
        std::max(worst.measures.treewidth, c.measures.treewidth);
    worst.measures.treewidth_exact =
        worst.measures.treewidth_exact && c.measures.treewidth_exact;
    worst.is_crpq = worst.is_crpq && c.is_crpq;
    if (static_cast<int>(c.eval_regime) >
        static_cast<int>(worst.eval_regime)) {
      worst.eval_regime = c.eval_regime;
    }
    if (static_cast<int>(c.param_regime) >
        static_cast<int>(worst.param_regime)) {
      worst.param_regime = c.param_regime;
    }
    if (static_cast<int>(c.engine) > static_cast<int>(worst.engine)) {
      worst.engine = c.engine;
    }
  }
  return worst;
}

}  // namespace ecrpq
