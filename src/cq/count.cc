#include "cq/count.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"
#include "common/hash.h"
#include "cq/eval_backtrack.h"
#include "eval/reduce_to_cq.h"
#include "structure/tree_decomposition.h"
#include "structure/treewidth.h"

namespace ecrpq {
namespace {

using u128 = unsigned __int128;

Result<uint64_t> Narrow(u128 value) {
  if (value > static_cast<u128>(~uint64_t{0})) {
    return Status::CapacityExceeded("assignment count exceeds 2^64-1");
  }
  return static_cast<uint64_t>(value);
}

std::vector<uint32_t> ProjectTuple(const std::vector<int>& vars,
                                   const std::vector<uint32_t>& tuple,
                                   const std::vector<int>& onto) {
  std::vector<uint32_t> out;
  out.reserve(onto.size());
  size_t j = 0;
  for (int v : onto) {
    while (j < vars.size() && vars[j] < v) ++j;
    ECRPQ_CHECK(j < vars.size() && vars[j] == v);
    out.push_back(tuple[j]);
  }
  return out;
}

}  // namespace

Result<uint64_t> CountAssignments(const RelationalDb& db,
                                  const CqQuery& query) {
  ECRPQ_RETURN_NOT_OK(ValidateCq(db, query));
  if (query.num_vars == 0) return uint64_t{1};

  const SimpleGraph gaifman = query.GaifmanGraph();
  const TreewidthResult tw = TreewidthBest(gaifman);
  const TreeDecomposition td =
      DecompositionFromEliminationOrder(gaifman, tw.elimination_order);
  const int num_bags = static_cast<int>(td.bags.size());

  // Tree structure rooted at 0.
  std::vector<std::vector<int>> adj(num_bags);
  for (const auto& [a, b] : td.edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::vector<int> parent(num_bags, -1);
  std::vector<std::vector<int>> children(num_bags);
  std::vector<int> order;  // Pre-order.
  {
    std::vector<int> stack{0};
    std::vector<bool> seen(num_bags, false);
    seen[0] = true;
    while (!stack.empty()) {
      const int b = stack.back();
      stack.pop_back();
      order.push_back(b);
      for (int nb : adj[b]) {
        if (!seen[nb]) {
          seen[nb] = true;
          parent[nb] = b;
          children[b].push_back(nb);
          stack.push_back(nb);
        }
      }
    }
  }

  // Assign every atom to one bag containing its variables.
  std::vector<std::vector<size_t>> atoms_of_bag(num_bags);
  for (size_t a = 0; a < query.atoms.size(); ++a) {
    std::vector<int> avars;
    for (CqVarId v : query.atoms[a].vars) avars.push_back(static_cast<int>(v));
    std::sort(avars.begin(), avars.end());
    avars.erase(std::unique(avars.begin(), avars.end()), avars.end());
    bool placed = false;
    for (int b = 0; b < num_bags && !placed; ++b) {
      if (std::includes(td.bags[b].begin(), td.bags[b].end(), avars.begin(),
                        avars.end())) {
        atoms_of_bag[b].push_back(a);
        placed = true;
      }
    }
    if (!placed) {
      return Status::Internal("atom not covered by the tree decomposition");
    }
  }

  // Materialize bag tuples.
  std::vector<std::vector<std::vector<uint32_t>>> bag_tuples(num_bags);
  for (int b = 0; b < num_bags; ++b) {
    CqQuery sub;
    sub.num_vars = query.num_vars;
    for (int v : td.bags[b]) sub.free_vars.push_back(static_cast<CqVarId>(v));
    for (size_t a : atoms_of_bag[b]) sub.atoms.push_back(query.atoms[a]);
    ECRPQ_ASSIGN_OR_RAISE(CqEvalResult result,
                          CqEvaluateBacktracking(db, sub));
    bag_tuples[b] = std::move(result.answers);
  }

  // Bottom-up DP: counts[b][i] = #assignments of subtree(b)'s variables
  // restricting to bag tuple i.
  std::vector<std::vector<u128>> counts(num_bags);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const int b = *it;
    counts[b].assign(bag_tuples[b].size(), 1);
    for (int c : children[b]) {
      // Separator = bag(b) ∩ bag(c).
      std::vector<int> sep;
      std::set_intersection(td.bags[b].begin(), td.bags[b].end(),
                            td.bags[c].begin(), td.bags[c].end(),
                            std::back_inserter(sep));
      // Child contributions grouped by separator projection.
      std::unordered_map<std::vector<uint32_t>, u128, VectorHash<uint32_t>>
          by_sep;
      for (size_t i = 0; i < bag_tuples[c].size(); ++i) {
        by_sep[ProjectTuple(td.bags[c], bag_tuples[c][i], sep)] +=
            counts[c][i];
      }
      for (size_t i = 0; i < bag_tuples[b].size(); ++i) {
        auto found = by_sep.find(ProjectTuple(td.bags[b], bag_tuples[b][i],
                                              sep));
        // 128-bit intermediates; the final Narrow() guards the result. (A
        // count needing more than 128 bits would require ~2^64 vertices.)
        counts[b][i] *= (found == by_sep.end()) ? 0 : found->second;
      }
    }
  }

  u128 total = 0;
  for (const u128 c : counts[0]) total += c;
  return Narrow(total);
}

Result<uint64_t> CountAssignmentsBrute(const RelationalDb& db,
                                       const CqQuery& query) {
  ECRPQ_RETURN_NOT_OK(ValidateCq(db, query));
  const uint32_t n = db.domain_size();
  if (query.num_vars == 0) return uint64_t{1};
  if (n == 0) return uint64_t{0};
  std::vector<uint32_t> assignment(query.num_vars, 0);
  u128 count = 0;
  while (true) {
    bool ok = true;
    for (const CqAtom& atom : query.atoms) {
      std::vector<uint32_t> tuple;
      for (CqVarId v : atom.vars) tuple.push_back(assignment[v]);
      if (!db.Find(atom.relation)->Contains(tuple)) {
        ok = false;
        break;
      }
    }
    if (ok) ++count;
    int i = 0;
    for (; i < query.num_vars; ++i) {
      if (++assignment[i] < n) break;
      assignment[i] = 0;
    }
    if (i == query.num_vars) break;
  }
  return Narrow(count);
}

Result<uint64_t> CountEcrpqNodeAssignments(const GraphDb& db,
                                           const EcrpqQuery& query) {
  if (db.NumVertices() == 0) {
    return static_cast<uint64_t>(query.NumNodeVars() == 0 ? 1 : 0);
  }
  ECRPQ_ASSIGN_OR_RAISE(CqReduction reduction, ReduceToCq(db, query));
  return CountAssignments(*reduction.db, reduction.query);
}

}  // namespace ecrpq
