#include "cq/cq.h"

#include <sstream>

namespace ecrpq {

SimpleGraph CqQuery::GaifmanGraph() const {
  SimpleGraph g(num_vars);
  for (const CqAtom& atom : atoms) {
    for (size_t i = 0; i < atom.vars.size(); ++i) {
      for (size_t j = i + 1; j < atom.vars.size(); ++j) {
        g.AddEdge(static_cast<int>(atom.vars[i]),
                  static_cast<int>(atom.vars[j]));
      }
    }
  }
  return g;
}

std::string CqQuery::ToString() const {
  auto var_name = [this](CqVarId v) {
    if (v < var_names.size() && !var_names[v].empty()) return var_names[v];
    return "v" + std::to_string(v);
  };
  std::ostringstream out;
  out << "q(";
  for (size_t i = 0; i < free_vars.size(); ++i) {
    if (i > 0) out << ", ";
    out << var_name(free_vars[i]);
  }
  out << ") := ";
  for (size_t a = 0; a < atoms.size(); ++a) {
    if (a > 0) out << ", ";
    out << atoms[a].relation << "(";
    for (size_t i = 0; i < atoms[a].vars.size(); ++i) {
      if (i > 0) out << ", ";
      out << var_name(atoms[a].vars[i]);
    }
    out << ")";
  }
  return out.str();
}

Status ValidateCq(const RelationalDb& db, const CqQuery& query) {
  for (const CqAtom& atom : query.atoms) {
    const Relation* rel = db.Find(atom.relation);
    if (rel == nullptr) {
      return Status::Invalid("CQ uses unknown relation " + atom.relation);
    }
    if (static_cast<int>(atom.vars.size()) != rel->arity()) {
      return Status::Invalid("CQ atom width does not match arity of " +
                             atom.relation);
    }
    for (CqVarId v : atom.vars) {
      if (v >= static_cast<CqVarId>(query.num_vars)) {
        return Status::Invalid("CQ atom uses out-of-range variable");
      }
    }
  }
  for (CqVarId v : query.free_vars) {
    if (v >= static_cast<CqVarId>(query.num_vars)) {
      return Status::Invalid("CQ free variable out of range");
    }
  }
  return Status::OK();
}

}  // namespace ecrpq
