// RelationalDb: a named collection of relations plus a domain size — the
// target structure of the ECRPQ → CQ reduction (Lemma 4.3) and of the CQ
// evaluators.
#ifndef ECRPQ_CQ_RELATIONAL_DB_H_
#define ECRPQ_CQ_RELATIONAL_DB_H_

#include <map>
#include <string>
#include <string_view>

#include "common/result.h"
#include "cq/relation.h"

namespace ecrpq {

class RelationalDb {
 public:
  explicit RelationalDb(uint32_t domain_size) : domain_size_(domain_size) {}

  // Values range over {0, ..., domain_size-1}.
  uint32_t domain_size() const { return domain_size_; }

  // Creates a relation; errors on duplicate names.
  Result<Relation*> AddRelation(std::string_view name, int arity);

  const Relation* Find(std::string_view name) const;
  Result<const Relation*> Require(std::string_view name) const;

  // Finalizes every relation.
  void FinalizeAll();

  size_t NumRelations() const { return relations_.size(); }
  size_t TotalTuples() const;

 private:
  uint32_t domain_size_;
  std::map<std::string, Relation, std::less<>> relations_;
};

}  // namespace ecrpq

#endif  // ECRPQ_CQ_RELATIONAL_DB_H_
