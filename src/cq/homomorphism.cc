#include "cq/homomorphism.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "common/check.h"
#include "structure/treewidth.h"

namespace ecrpq {
namespace {

constexpr CqVarId kUnset = ~CqVarId{0};

// Backtracking enumeration of homomorphisms from `from` into `to`,
// pre-seeded with `seed` (kUnset = unassigned). Calls `visit` on every
// total homomorphism; stops early when visit returns true. Returns whether
// any visit returned true.
bool ForEachHomomorphism(
    const CqQuery& from, const CqQuery& to, std::vector<CqVarId> seed,
    const std::function<bool(const std::vector<CqVarId>&)>& visit) {
  // Index `to`'s atoms by relation name.
  std::map<std::string, std::vector<const CqAtom*>> to_atoms;
  for (const CqAtom& atom : to.atoms) {
    to_atoms[atom.relation].push_back(&atom);
  }
  bool stopped = false;

  auto recurse = [&](auto&& self, size_t atom_idx) -> void {
    if (stopped) return;
    if (atom_idx == from.atoms.size()) {
      // Total function: map still-unset variables to 0 if possible.
      std::vector<CqVarId> h = seed;
      for (CqVarId& v : h) {
        if (v == kUnset) {
          if (to.num_vars == 0) return;
          v = 0;
        }
      }
      stopped = visit(h);
      return;
    }
    const CqAtom& atom = from.atoms[atom_idx];
    auto it = to_atoms.find(atom.relation);
    if (it == to_atoms.end()) return;
    for (const CqAtom* candidate : it->second) {
      ECRPQ_DCHECK(candidate->vars.size() == atom.vars.size());
      std::vector<CqVarId> newly;
      bool consistent = true;
      for (size_t i = 0; i < atom.vars.size() && consistent; ++i) {
        const CqVarId v = atom.vars[i];
        const CqVarId target = candidate->vars[i];
        if (seed[v] == kUnset) {
          seed[v] = target;
          newly.push_back(v);
        } else if (seed[v] != target) {
          consistent = false;
        }
      }
      if (consistent) self(self, atom_idx + 1);
      for (CqVarId v : newly) seed[v] = kUnset;
      if (stopped) return;
    }
  };
  recurse(recurse, 0);
  return stopped;
}

Status CheckShapes(const CqQuery& from, const CqQuery& to) {
  if (from.free_vars.size() != to.free_vars.size()) {
    return Status::Invalid(
        "homomorphism requires equal numbers of free variables");
  }
  return Status::OK();
}

// Variables of `q` that occur in atoms or are free.
std::vector<bool> UsedVars(const CqQuery& q) {
  std::vector<bool> used(q.num_vars, false);
  for (const CqAtom& atom : q.atoms) {
    for (CqVarId v : atom.vars) used[v] = true;
  }
  for (CqVarId v : q.free_vars) used[v] = true;
  return used;
}

// Drops unused variables and renumbers.
CqQuery Compact(const CqQuery& q) {
  const std::vector<bool> used = UsedVars(q);
  std::vector<CqVarId> remap(q.num_vars, kUnset);
  CqQuery out;
  for (int v = 0; v < q.num_vars; ++v) {
    if (used[v]) {
      remap[v] = static_cast<CqVarId>(out.num_vars++);
      if (v < static_cast<int>(q.var_names.size())) {
        out.var_names.push_back(q.var_names[v]);
      } else {
        out.var_names.push_back("v" + std::to_string(v));
      }
    }
  }
  for (const CqAtom& atom : q.atoms) {
    CqAtom mapped = atom;
    for (CqVarId& v : mapped.vars) v = remap[v];
    out.atoms.push_back(std::move(mapped));
  }
  for (CqVarId v : q.free_vars) out.free_vars.push_back(remap[v]);
  // Deduplicate atoms.
  std::sort(out.atoms.begin(), out.atoms.end(),
            [](const CqAtom& a, const CqAtom& b) {
              return std::tie(a.relation, a.vars) <
                     std::tie(b.relation, b.vars);
            });
  out.atoms.erase(std::unique(out.atoms.begin(), out.atoms.end(),
                              [](const CqAtom& a, const CqAtom& b) {
                                return a.relation == b.relation &&
                                       a.vars == b.vars;
                              }),
                  out.atoms.end());
  return out;
}

}  // namespace

Result<std::optional<std::vector<CqVarId>>> FindCqHomomorphism(
    const CqQuery& from, const CqQuery& to) {
  ECRPQ_RETURN_NOT_OK(CheckShapes(from, to));
  std::vector<CqVarId> seed(from.num_vars, kUnset);
  for (size_t i = 0; i < from.free_vars.size(); ++i) {
    const CqVarId v = from.free_vars[i];
    if (seed[v] != kUnset && seed[v] != to.free_vars[i]) {
      return std::optional<std::vector<CqVarId>>{};
    }
    seed[v] = to.free_vars[i];
  }
  std::optional<std::vector<CqVarId>> found;
  ForEachHomomorphism(from, to, std::move(seed),
                      [&](const std::vector<CqVarId>& h) {
                        found = h;
                        return true;
                      });
  return found;
}

Result<bool> CqContainedIn(const CqQuery& q1, const CqQuery& q2) {
  ECRPQ_ASSIGN_OR_RAISE(std::optional<std::vector<CqVarId>> hom,
                        FindCqHomomorphism(q2, q1));
  return hom.has_value();
}

Result<bool> CqEquivalent(const CqQuery& q1, const CqQuery& q2) {
  ECRPQ_ASSIGN_OR_RAISE(bool sub, CqContainedIn(q1, q2));
  if (!sub) return false;
  return CqContainedIn(q2, q1);
}

Result<CqQuery> CqCore(const CqQuery& query) {
  CqQuery current = Compact(query);
  while (true) {
    // Look for a proper endomorphism (free variables fixed, image smaller
    // than the full variable set).
    std::vector<CqVarId> seed(current.num_vars, kUnset);
    for (CqVarId v : current.free_vars) seed[v] = v;
    std::optional<std::vector<CqVarId>> proper;
    ForEachHomomorphism(
        current, current, std::move(seed),
        [&](const std::vector<CqVarId>& h) {
          std::set<CqVarId> image(h.begin(), h.end());
          if (static_cast<int>(image.size()) < current.num_vars) {
            proper = h;
            return true;
          }
          return false;
        });
    if (!proper.has_value()) return current;
    // Retract: map every atom through h, then compact.
    CqQuery retract;
    retract.num_vars = current.num_vars;
    retract.var_names = current.var_names;
    retract.free_vars = current.free_vars;
    for (const CqAtom& atom : current.atoms) {
      CqAtom mapped = atom;
      for (CqVarId& v : mapped.vars) v = (*proper)[v];
      retract.atoms.push_back(std::move(mapped));
    }
    current = Compact(retract);
  }
}

Result<int> SemanticTreewidth(const CqQuery& query) {
  ECRPQ_ASSIGN_OR_RAISE(CqQuery core, CqCore(query));
  ECRPQ_ASSIGN_OR_RAISE(TreewidthResult tw,
                        TreewidthExact(core.GaifmanGraph()));
  return tw.width;
}

}  // namespace ecrpq
