// Backtracking CQ evaluation — the general (NP) algorithm.
//
// Atoms are ordered greedily to bind variables early; candidate tuples for
// each atom come from per-bound-pattern hash indexes (cq/relation.h).
#ifndef ECRPQ_CQ_EVAL_BACKTRACK_H_
#define ECRPQ_CQ_EVAL_BACKTRACK_H_

#include <cstdint>
#include <vector>

#include "common/obs.h"
#include "common/result.h"
#include "cq/cq.h"

namespace ecrpq {

struct CqEvalOptions {
  // Stop after this many distinct answers (0 = unlimited). Satisfiability
  // checks pass 1.
  size_t max_answers = 0;
  // Abort after this many backtracking steps (0 = unlimited).
  size_t max_steps = 0;
  // Observability & resource-governance session (common/obs.h). A tripped
  // budget turns the evaluation into Status::ResourceExhausted (the
  // max_steps cutoff above instead returns OK with aborted = true). Null =
  // zero overhead.
  obs::Session* obs = nullptr;
};

struct CqEvalResult {
  bool satisfiable = false;
  // Distinct answers projected to free_vars (empty vector element for
  // Boolean queries when satisfiable).
  std::vector<std::vector<uint32_t>> answers;
  size_t steps = 0;
  bool aborted = false;
};

Result<CqEvalResult> CqEvaluateBacktracking(const RelationalDb& db,
                                            const CqQuery& query,
                                            const CqEvalOptions& options = {});

// Convenience: Boolean satisfiability.
Result<bool> CqSatisfiable(const RelationalDb& db, const CqQuery& query);

}  // namespace ecrpq

#endif  // ECRPQ_CQ_EVAL_BACKTRACK_H_
