// Tree-decomposition-based CQ evaluation — the |D|^{O(tw)} algorithm behind
// Proposition 2.3(1) and the polynomial upper bounds of Theorem 3.2(3).
//
// Pipeline: tree-decompose the Gaifman graph; assign every atom to a bag
// containing its variables; materialize each bag's relation (all assignments
// of the bag's variables satisfying its atoms, unconstrained bag variables
// ranging over the domain); semijoin-reduce leaves upward (Yannakakis);
// satisfiable iff the root survives; answers are enumerated by a consistent
// top-down walk.
#ifndef ECRPQ_CQ_EVAL_TREEDEC_H_
#define ECRPQ_CQ_EVAL_TREEDEC_H_

#include "common/result.h"
#include "cq/cq.h"
#include "cq/eval_backtrack.h"
#include "structure/tree_decomposition.h"

namespace ecrpq {

struct TreeDecEvalStats {
  int width_used = 0;
  size_t bag_tuples_materialized = 0;
};

Result<CqEvalResult> CqEvaluateTreeDec(const RelationalDb& db,
                                       const CqQuery& query,
                                       const CqEvalOptions& options = {},
                                       TreeDecEvalStats* stats = nullptr);

}  // namespace ecrpq

#endif  // ECRPQ_CQ_EVAL_TREEDEC_H_
