// Counting satisfying assignments of a CQ (homomorphism counting) by
// dynamic programming over a tree decomposition — polynomial for bounded
// treewidth, the counting analogue of the Prop. 2.3 evaluation bound.
//
// Counts *full* assignments (all variables), not projected answers:
// projected counting is #·NP-hard even for tractable shapes, while
// homomorphism counting inherits the |D|^{O(tw)} bound.
#ifndef ECRPQ_CQ_COUNT_H_
#define ECRPQ_CQ_COUNT_H_

#include <cstdint>

#include "common/result.h"
#include "cq/cq.h"
#include "graphdb/graph_db.h"
#include "query/ast.h"

namespace ecrpq {

// Number of satisfying assignments of all of `query`'s variables. Overflow
// beyond 2^64-1 is reported as an error.
Result<uint64_t> CountAssignments(const RelationalDb& db,
                                  const CqQuery& query);

// Brute-force reference (enumeration over domain^num_vars) for testing.
Result<uint64_t> CountAssignmentsBrute(const RelationalDb& db,
                                       const CqQuery& query);

// ECRPQ-level wrapper: the number of satisfying node-variable assignments
// of an ECRPQ on a graph database (via the Lemma 4.3 reduction; cost
// inherits its O(|D|^{2·cc_vertex}) materialization).
Result<uint64_t> CountEcrpqNodeAssignments(const GraphDb& db,
                                           const EcrpqQuery& query);

}  // namespace ecrpq

#endif  // ECRPQ_CQ_COUNT_H_
