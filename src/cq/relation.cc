#include "cq/relation.h"

#include <algorithm>

namespace ecrpq {

const std::vector<uint32_t> Relation::kNoRows;

void Relation::Add(std::span<const uint32_t> tuple) {
  ECRPQ_CHECK(!finalized_);
  ECRPQ_CHECK_EQ(static_cast<int>(tuple.size()), arity_);
  data_.insert(data_.end(), tuple.begin(), tuple.end());
}

void Relation::Finalize() {
  if (finalized_) return;
  const size_t n = NumTuples();
  std::vector<uint32_t> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = static_cast<uint32_t>(i);
  auto cmp = [&](uint32_t a, uint32_t b) {
    return std::lexicographical_compare(
        data_.begin() + a * arity_, data_.begin() + (a + 1) * arity_,
        data_.begin() + b * arity_, data_.begin() + (b + 1) * arity_);
  };
  auto eq = [&](uint32_t a, uint32_t b) {
    return std::equal(data_.begin() + a * arity_,
                      data_.begin() + (a + 1) * arity_,
                      data_.begin() + b * arity_);
  };
  std::sort(rows.begin(), rows.end(), cmp);
  rows.erase(std::unique(rows.begin(), rows.end(), eq), rows.end());
  std::vector<uint32_t> sorted;
  sorted.reserve(rows.size() * arity_);
  for (uint32_t r : rows) {
    sorted.insert(sorted.end(), data_.begin() + r * arity_,
                  data_.begin() + (r + 1) * arity_);
  }
  data_ = std::move(sorted);
  finalized_ = true;
  ECRPQ_DCHECK_INVARIANT(*this);
}

void Relation::CheckInvariants() const {
  ECRPQ_CHECK_GT(arity_, 0) << "Relation " << name_ << ": non-positive arity";
  ECRPQ_CHECK_EQ(data_.size() % arity_, 0u)
      << "Relation " << name_ << ": data is not a whole number of rows";
  if (!finalized_) return;
  const size_t n = NumTuples();
  for (size_t row = 1; row < n; ++row) {
    const auto prev = data_.begin() + (row - 1) * arity_;
    const auto cur = data_.begin() + row * arity_;
    ECRPQ_CHECK(std::lexicographical_compare(prev, prev + arity_, cur,
                                             cur + arity_))
        << "Relation " << name_
        << ": finalized rows not sorted/deduplicated at row " << row;
  }
}

bool Relation::Contains(std::span<const uint32_t> tuple) const {
  ECRPQ_CHECK(finalized_);
  ECRPQ_CHECK_EQ(static_cast<int>(tuple.size()), arity_);
  const uint32_t mask = (arity_ >= 32) ? ~uint32_t{0}
                                       : ((uint32_t{1} << arity_) - 1);
  const std::vector<uint32_t> key(tuple.begin(), tuple.end());
  return !Matches(mask, key).empty();
}

const Relation::Index& Relation::IndexFor(uint32_t mask) const {
  auto it = indexes_.find(mask);
  if (it != indexes_.end()) return it->second;
  Index index;
  const size_t n = NumTuples();
  std::vector<uint32_t> key;
  for (size_t row = 0; row < n; ++row) {
    key.clear();
    for (int i = 0; i < arity_; ++i) {
      if (mask & (uint32_t{1} << i)) key.push_back(data_[row * arity_ + i]);
    }
    index[key].push_back(static_cast<uint32_t>(row));
  }
  return indexes_.emplace(mask, std::move(index)).first->second;
}

const std::vector<uint32_t>& Relation::Matches(
    uint32_t mask, const std::vector<uint32_t>& key) const {
  ECRPQ_CHECK(finalized_);
  const Index& index = IndexFor(mask);
  auto it = index.find(key);
  if (it == index.end()) return kNoRows;
  return it->second;
}

}  // namespace ecrpq
