#include "cq/relational_db.h"

namespace ecrpq {

Result<Relation*> RelationalDb::AddRelation(std::string_view name,
                                            int arity) {
  auto [it, inserted] =
      relations_.emplace(std::string(name), Relation(std::string(name), arity));
  if (!inserted) {
    return Status::Invalid("duplicate relation name: " + std::string(name));
  }
  return &it->second;
}

const Relation* RelationalDb::Find(std::string_view name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

Result<const Relation*> RelationalDb::Require(std::string_view name) const {
  const Relation* rel = Find(name);
  if (rel == nullptr) {
    return Status::NotFound("no relation named " + std::string(name));
  }
  return rel;
}

void RelationalDb::FinalizeAll() {
  for (auto& [name, rel] : relations_) rel.Finalize();
}

size_t RelationalDb::TotalTuples() const {
  size_t n = 0;
  for (const auto& [name, rel] : relations_) n += rel.NumTuples();
  return n;
}

}  // namespace ecrpq
