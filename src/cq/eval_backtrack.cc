#include "cq/eval_backtrack.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "common/check.h"
#include "common/hash.h"

namespace ecrpq {
namespace {

constexpr uint32_t kUnset = ~uint32_t{0};

// Backtracking nodes between full budget checks (exhaustion itself is a
// relaxed flag load on every node).
constexpr size_t kCqBudgetStride = 4096;

// Greedy join order: repeatedly pick the atom with the most already-bound
// variables, breaking ties by smaller relation.
std::vector<size_t> OrderAtoms(const RelationalDb& db, const CqQuery& query) {
  const size_t n = query.atoms.size();
  std::vector<bool> used(n, false);
  std::vector<bool> bound(query.num_vars, false);
  std::vector<size_t> order;
  order.reserve(n);
  for (size_t step = 0; step < n; ++step) {
    size_t best = n;
    long best_unbound = 0;
    size_t best_size = 0;
    for (size_t a = 0; a < n; ++a) {
      if (used[a]) continue;
      long unbound = 0;
      for (CqVarId v : query.atoms[a].vars) {
        if (!bound[v]) ++unbound;
      }
      const size_t size = db.Find(query.atoms[a].relation)->NumTuples();
      if (best == n || unbound < best_unbound ||
          (unbound == best_unbound && size < best_size)) {
        best = a;
        best_unbound = unbound;
        best_size = size;
      }
    }
    used[best] = true;
    order.push_back(best);
    for (CqVarId v : query.atoms[best].vars) bound[v] = true;
  }
  return order;
}

}  // namespace

Result<CqEvalResult> CqEvaluateBacktracking(const RelationalDb& db,
                                            const CqQuery& query,
                                            const CqEvalOptions& options) {
  ECRPQ_RETURN_NOT_OK(ValidateCq(db, query));
  CqEvalResult result;
  const std::vector<size_t> order = OrderAtoms(db, query);
  std::vector<uint32_t> assignment(query.num_vars, kUnset);
  std::unordered_set<std::vector<uint32_t>, VectorHash<uint32_t>> answers;

  // Free variables not covered by any atom range over the whole domain.
  std::vector<CqVarId> uncovered_free;
  {
    std::vector<bool> covered(query.num_vars, false);
    for (const CqAtom& atom : query.atoms) {
      for (CqVarId v : atom.vars) covered[v] = true;
    }
    for (CqVarId v : query.free_vars) {
      if (!covered[v]) uncovered_free.push_back(v);
    }
    // A non-free uncovered variable only needs a non-empty domain.
    for (int v = 0; v < query.num_vars; ++v) {
      if (!covered[v] && db.domain_size() == 0) {
        result.satisfiable = false;
        return result;
      }
    }
  }

  const bool want_all = options.max_answers != 1;
  bool done = false;
  obs::MetricsShard* shard = options.obs != nullptr
                                 ? options.obs->metrics().AcquireShard()
                                 : nullptr;
  size_t budget_tick = 0;
  std::chrono::steady_clock::time_point start_time{};
  if (shard != nullptr) start_time = std::chrono::steady_clock::now();

  // Emits the current full assignment's projection (expanding uncovered free
  // variables over the domain).
  auto emit = [&](auto&& self, size_t uncovered_idx) -> void {
    if (done) return;
    if (uncovered_idx == uncovered_free.size()) {
      std::vector<uint32_t> answer;
      answer.reserve(query.free_vars.size());
      for (CqVarId v : query.free_vars) answer.push_back(assignment[v]);
      const bool inserted = answers.insert(std::move(answer)).second;
      if (inserted && shard != nullptr) {
        const auto elapsed = std::chrono::steady_clock::now() - start_time;
        shard->Record(
            obs::HistogramId::kAnswerLatencyNs,
            static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                    .count()));
      }
      result.satisfiable = true;
      if (!want_all ||
          (options.max_answers != 0 && answers.size() >= options.max_answers)) {
        done = true;
      }
      return;
    }
    const CqVarId v = uncovered_free[uncovered_idx];
    for (uint32_t value = 0; value < db.domain_size() && !done; ++value) {
      assignment[v] = value;
      self(self, uncovered_idx + 1);
    }
    assignment[v] = kUnset;
  };

  auto recurse = [&](auto&& self, size_t depth) -> void {
    if (done) return;
    if (options.max_steps != 0 && result.steps >= options.max_steps) {
      result.aborted = true;
      done = true;
      return;
    }
    if (options.obs != nullptr &&
        (options.obs->Exhausted() ||
         ((++budget_tick & (kCqBudgetStride - 1)) == 0 &&
          options.obs->CheckBudget()))) {
      result.aborted = true;
      done = true;
      return;
    }
    if (depth == order.size()) {
      emit(emit, 0);
      return;
    }
    const CqAtom& atom = query.atoms[order[depth]];
    const Relation& rel = *db.Find(atom.relation);
    uint32_t mask = 0;
    std::vector<uint32_t> key;
    for (size_t i = 0; i < atom.vars.size(); ++i) {
      if (assignment[atom.vars[i]] != kUnset) {
        mask |= uint32_t{1} << i;
        key.push_back(assignment[atom.vars[i]]);
      }
    }
    std::vector<CqVarId> newly_bound;
    for (const uint32_t row : rel.Matches(mask, key)) {
      ++result.steps;
      obs::Add(shard, obs::CounterId::kAssignmentsTried);
      if (options.max_steps != 0 && result.steps >= options.max_steps) {
        result.aborted = true;
        done = true;
        break;
      }
      const auto tuple = rel.Tuple(row);
      // Bind and check repeated variables within the atom.
      newly_bound.clear();
      bool consistent = true;
      for (size_t i = 0; i < atom.vars.size() && consistent; ++i) {
        const CqVarId v = atom.vars[i];
        if (assignment[v] == kUnset) {
          assignment[v] = tuple[i];
          newly_bound.push_back(v);
        } else if (assignment[v] != tuple[i]) {
          consistent = false;
        }
      }
      if (consistent) self(self, depth + 1);
      for (CqVarId v : newly_bound) assignment[v] = kUnset;
      if (done) break;
    }
  };
  recurse(recurse, 0);

  // Final check (not just Exhausted()): totals that crossed the budget
  // between poll strides still surface as ResourceExhausted.
  if (options.obs != nullptr && options.obs->CheckBudget()) {
    return options.obs->ExhaustedStatus();
  }

  result.answers.assign(answers.begin(), answers.end());
  std::sort(result.answers.begin(), result.answers.end());
  return result;
}

Result<bool> CqSatisfiable(const RelationalDb& db, const CqQuery& query) {
  CqEvalOptions options;
  options.max_answers = 1;
  ECRPQ_ASSIGN_OR_RAISE(CqEvalResult result,
                        CqEvaluateBacktracking(db, query, options));
  if (result.aborted) return Status::CapacityExceeded("CQ evaluation aborted");
  return result.satisfiable;
}

}  // namespace ecrpq
