// Relation: a set of fixed-arity tuples over uint32 values (vertex ids),
// with lazily-built hash indexes per bound-position pattern.
#ifndef ECRPQ_CQ_RELATION_H_
#define ECRPQ_CQ_RELATION_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/hash.h"

namespace ecrpq {

class Relation {
 public:
  Relation(std::string name, int arity)
      : name_(std::move(name)), arity_(arity) {
    ECRPQ_CHECK_GT(arity_, 0);
  }

  const std::string& name() const { return name_; }
  int arity() const { return arity_; }
  size_t NumTuples() const { return data_.size() / arity_; }

  void Add(std::span<const uint32_t> tuple);

  // Sorts and deduplicates. Must be called before queries; adding after
  // finalization is an error.
  void Finalize();
  bool finalized() const { return finalized_; }

  std::span<const uint32_t> Tuple(size_t row) const {
    return {data_.data() + row * arity_, static_cast<size_t>(arity_)};
  }

  bool Contains(std::span<const uint32_t> tuple) const;

  // Rows whose values at the positions in `mask` (bit i = position i bound)
  // equal `key` (the bound values, in position order). Builds and caches an
  // index per distinct mask.
  const std::vector<uint32_t>& Matches(uint32_t mask,
                                       const std::vector<uint32_t>& key) const;

  // Storage invariants (fires ECRPQ_CHECK on violation, any build mode):
  // positive arity, data a whole number of rows, and — once finalized —
  // rows sorted lexicographically and deduplicated. Finalize() re-asserts
  // this via ECRPQ_DCHECK_INVARIANT.
  void CheckInvariants() const;

 private:
  using Index =
      std::unordered_map<std::vector<uint32_t>, std::vector<uint32_t>,
                         VectorHash<uint32_t>>;
  const Index& IndexFor(uint32_t mask) const;

  std::string name_;
  int arity_;
  std::vector<uint32_t> data_;  // Row-major.
  bool finalized_ = false;
  mutable std::unordered_map<uint32_t, Index> indexes_;
  static const std::vector<uint32_t> kNoRows;
};

}  // namespace ecrpq

#endif  // ECRPQ_CQ_RELATION_H_
