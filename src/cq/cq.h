// Conjunctive queries over a RelationalDb.
#ifndef ECRPQ_CQ_CQ_H_
#define ECRPQ_CQ_CQ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "cq/relational_db.h"
#include "structure/two_level_graph.h"

namespace ecrpq {

using CqVarId = uint32_t;

struct CqAtom {
  std::string relation;
  std::vector<CqVarId> vars;  // Size must match the relation's arity.
};

struct CqQuery {
  int num_vars = 0;
  std::vector<std::string> var_names;  // Optional; sized num_vars if used.
  std::vector<CqVarId> free_vars;      // Empty = Boolean.
  std::vector<CqAtom> atoms;

  // Gaifman graph: vars as vertices, cliques over each atom's vars.
  SimpleGraph GaifmanGraph() const;

  std::string ToString() const;
};

// Shape checks against a database (relations exist, arities match, var ids
// in range).
Status ValidateCq(const RelationalDb& db, const CqQuery& query);

}  // namespace ecrpq

#endif  // ECRPQ_CQ_CQ_H_
