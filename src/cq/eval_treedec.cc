#include "cq/eval_treedec.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/hash.h"
#include "structure/treewidth.h"

namespace ecrpq {
namespace {

constexpr uint32_t kUnset = ~uint32_t{0};

struct BagData {
  std::vector<int> vars;                     // Sorted bag variables.
  std::vector<std::vector<uint32_t>> tuples; // Assignments, aligned to vars.
  std::vector<int> children;
  int parent = -1;
};

// Projection of `tuple` (aligned with `vars`) onto `onto` (subset of vars,
// sorted).
std::vector<uint32_t> ProjectTuple(const std::vector<int>& vars,
                                   const std::vector<uint32_t>& tuple,
                                   const std::vector<int>& onto) {
  std::vector<uint32_t> out;
  out.reserve(onto.size());
  size_t j = 0;
  for (int v : onto) {
    while (j < vars.size() && vars[j] < v) ++j;
    ECRPQ_CHECK(j < vars.size() && vars[j] == v);
    out.push_back(tuple[j]);
  }
  return out;
}

std::vector<int> SortedIntersection(const std::vector<int>& a,
                                    const std::vector<int>& b) {
  std::vector<int> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

Result<CqEvalResult> CqEvaluateTreeDec(const RelationalDb& db,
                                       const CqQuery& query,
                                       const CqEvalOptions& options,
                                       TreeDecEvalStats* stats) {
  ECRPQ_RETURN_NOT_OK(ValidateCq(db, query));
  obs::Trace* trace =
      options.obs != nullptr ? options.obs->trace() : nullptr;
  obs::MetricsShard* shard = options.obs != nullptr
                                 ? options.obs->metrics().AcquireShard()
                                 : nullptr;
  obs::Span eval_span(trace, "CqEvaluateTreeDec");
  CqEvalResult result;
  if (query.num_vars == 0) {
    result.satisfiable = true;
    result.answers.push_back({});
    return result;
  }

  // 1. Decompose the Gaifman graph.
  const SimpleGraph gaifman = query.GaifmanGraph();
  TreewidthResult tw;
  TreeDecomposition td;
  {
    obs::Span span(trace, "TreeDec.decompose");
    tw = TreewidthBest(gaifman);
    td = DecompositionFromEliminationOrder(gaifman, tw.elimination_order);
  }
  if (stats != nullptr) stats->width_used = td.Width();

  const int num_bags = static_cast<int>(td.bags.size());
  std::vector<BagData> bags(num_bags);
  for (int b = 0; b < num_bags; ++b) bags[b].vars = td.bags[b];

  // Root the tree at 0; compute parents/children and a DFS post-order.
  std::vector<std::vector<int>> adj(num_bags);
  for (const auto& [a, b] : td.edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::vector<int> post_order;
  {
    std::vector<int> stack{0};
    std::vector<bool> seen(num_bags, false);
    seen[0] = true;
    std::vector<int> visit_order;
    while (!stack.empty()) {
      const int b = stack.back();
      stack.pop_back();
      visit_order.push_back(b);
      for (int nb : adj[b]) {
        if (!seen[nb]) {
          seen[nb] = true;
          bags[nb].parent = b;
          bags[b].children.push_back(nb);
          stack.push_back(nb);
        }
      }
    }
    post_order.assign(visit_order.rbegin(), visit_order.rend());
  }

  // 2. Assign atoms to bags (every atom's variable set is a clique of the
  // Gaifman graph, hence inside some bag).
  std::vector<std::vector<size_t>> atoms_of_bag(num_bags);
  for (size_t a = 0; a < query.atoms.size(); ++a) {
    std::vector<int> avars;
    for (CqVarId v : query.atoms[a].vars) avars.push_back(static_cast<int>(v));
    std::sort(avars.begin(), avars.end());
    avars.erase(std::unique(avars.begin(), avars.end()), avars.end());
    bool placed = false;
    for (int b = 0; b < num_bags && !placed; ++b) {
      if (std::includes(bags[b].vars.begin(), bags[b].vars.end(),
                        avars.begin(), avars.end())) {
        atoms_of_bag[b].push_back(a);
        placed = true;
      }
    }
    if (!placed) {
      return Status::Internal(
          "atom not contained in any bag — invalid tree decomposition");
    }
  }

  // 3. Materialize bag relations via the backtracking evaluator on the
  // bag-local sub-query (free vars = bag vars).
  {
    obs::Span span(trace, "TreeDec.materialize_bags");
    for (int b = 0; b < num_bags; ++b) {
      obs::ScopedTimer bag_timer(shard,
                                 obs::HistogramId::kPhaseBagMaterializeNs);
      obs::Record(shard, obs::HistogramId::kBagWidth, bags[b].vars.size());
      CqQuery sub;
      sub.num_vars = query.num_vars;
      for (int v : bags[b].vars) {
        sub.free_vars.push_back(static_cast<CqVarId>(v));
      }
      for (size_t a : atoms_of_bag[b]) sub.atoms.push_back(query.atoms[a]);
      CqEvalOptions sub_options;
      sub_options.max_steps = options.max_steps;
      sub_options.obs = options.obs;
      ECRPQ_ASSIGN_OR_RAISE(CqEvalResult sub_result,
                            CqEvaluateBacktracking(db, sub, sub_options));
      if (sub_result.aborted) {
        result.aborted = true;
        return result;
      }
      bags[b].tuples = std::move(sub_result.answers);
      obs::Add(shard, obs::CounterId::kBagTuplesMaterialized,
               bags[b].tuples.size());
      if (stats != nullptr) {
        stats->bag_tuples_materialized += bags[b].tuples.size();
      }
      if (options.obs != nullptr && options.obs->CheckBudget()) {
        return options.obs->ExhaustedStatus();
      }
    }
  }

  // 4. Yannakakis up-pass: semijoin-filter each bag's parent.
  {
    obs::Span span(trace, "TreeDec.semijoin");
    for (int b : post_order) {
      if (bags[b].parent < 0) continue;
      BagData& parent = bags[bags[b].parent];
      const std::vector<int> sep =
          SortedIntersection(bags[b].vars, parent.vars);
      std::unordered_set<std::vector<uint32_t>, VectorHash<uint32_t>>
          child_keys;
      for (const auto& t : bags[b].tuples) {
        child_keys.insert(ProjectTuple(bags[b].vars, t, sep));
      }
      std::vector<std::vector<uint32_t>> kept;
      for (auto& t : parent.tuples) {
        if (child_keys.count(ProjectTuple(parent.vars, t, sep)) > 0) {
          kept.push_back(std::move(t));
        }
      }
      parent.tuples = std::move(kept);
    }
  }

  if (bags[0].tuples.empty()) {
    result.satisfiable = false;
    return result;
  }
  result.satisfiable = true;

  // 5. Enumerate answers top-down. Pre-index each bag's tuples by their
  // separator-with-parent projection.
  std::vector<std::unordered_map<std::vector<uint32_t>,
                                 std::vector<uint32_t>,  // Tuple row ids.
                                 VectorHash<uint32_t>>>
      by_sep(num_bags);
  std::vector<std::vector<int>> sep_with_parent(num_bags);
  for (int b = 0; b < num_bags; ++b) {
    if (bags[b].parent < 0) continue;
    sep_with_parent[b] =
        SortedIntersection(bags[b].vars, bags[bags[b].parent].vars);
    for (size_t i = 0; i < bags[b].tuples.size(); ++i) {
      by_sep[b][ProjectTuple(bags[b].vars, bags[b].tuples[i],
                             sep_with_parent[b])]
          .push_back(static_cast<uint32_t>(i));
    }
  }

  std::vector<uint32_t> assignment(query.num_vars, kUnset);
  std::unordered_set<std::vector<uint32_t>, VectorHash<uint32_t>> answers;
  bool done = false;
  size_t budget_tick = 0;

  // Pre-order list of bags for the enumeration walk.
  std::vector<int> pre_order;
  {
    std::vector<int> stack{0};
    while (!stack.empty()) {
      const int b = stack.back();
      stack.pop_back();
      pre_order.push_back(b);
      for (int c : bags[b].children) stack.push_back(c);
    }
  }

  auto walk = [&](auto&& self, size_t idx) -> void {
    if (done) return;
    if (options.obs != nullptr &&
        (options.obs->Exhausted() ||
         ((++budget_tick & 4095) == 0 && options.obs->CheckBudget()))) {
      done = true;
      return;
    }
    if (idx == pre_order.size()) {
      std::vector<uint32_t> answer;
      answer.reserve(query.free_vars.size());
      for (CqVarId v : query.free_vars) {
        ECRPQ_DCHECK(assignment[v] != kUnset);
        answer.push_back(assignment[v]);
      }
      answers.insert(std::move(answer));
      if (options.max_answers != 0 && answers.size() >= options.max_answers) {
        done = true;
      }
      return;
    }
    const int b = pre_order[idx];
    const BagData& bag = bags[b];
    // Candidate tuples: all (root) or those matching the parent separator.
    auto try_tuple = [&](const std::vector<uint32_t>& tuple) {
      std::vector<int> newly;
      bool consistent = true;
      for (size_t i = 0; i < bag.vars.size() && consistent; ++i) {
        const int v = bag.vars[i];
        if (assignment[v] == kUnset) {
          assignment[v] = tuple[i];
          newly.push_back(v);
        } else if (assignment[v] != tuple[i]) {
          consistent = false;
        }
      }
      if (consistent) self(self, idx + 1);
      for (int v : newly) assignment[v] = kUnset;
    };
    if (bag.parent < 0) {
      for (const auto& tuple : bag.tuples) {
        try_tuple(tuple);
        if (done) return;
      }
    } else {
      std::vector<uint32_t> key;
      key.reserve(sep_with_parent[b].size());
      for (int v : sep_with_parent[b]) {
        ECRPQ_DCHECK(assignment[v] != kUnset);
        key.push_back(assignment[v]);
      }
      auto it = by_sep[b].find(key);
      if (it == by_sep[b].end()) return;
      for (uint32_t row : it->second) {
        try_tuple(bags[b].tuples[row]);
        if (done) return;
      }
    }
  };
  {
    obs::Span span(trace, "TreeDec.enumerate");
    walk(walk, 0);
  }

  // Final check (not just Exhausted()): totals that crossed the budget
  // between poll strides still surface as ResourceExhausted.
  if (options.obs != nullptr && options.obs->CheckBudget()) {
    return options.obs->ExhaustedStatus();
  }

  result.answers.assign(answers.begin(), answers.end());
  std::sort(result.answers.begin(), result.answers.end());
  return result;
}

}  // namespace ecrpq
