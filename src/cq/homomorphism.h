// CQ homomorphisms, containment, cores and semantic treewidth.
//
// Background (paper §2, Prop. 2.5 citing [14]): for classes of CQs the
// right tractability criterion is not the treewidth of the query as
// written but of its *core* — the minimal homomorphic retract. A CQ class
// is tractable iff each query is equivalent to one of bounded treewidth,
// and the canonical such equivalent is the core. This module supplies the
// classical machinery: homomorphism search, containment via the
// Chandra–Merlin criterion, core computation, and the induced "semantic
// treewidth" of a query.
//
// All algorithms are exact and exponential in the query size (the problems
// are NP-hard); intended for the small queries where this matters.
#ifndef ECRPQ_CQ_HOMOMORPHISM_H_
#define ECRPQ_CQ_HOMOMORPHISM_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "cq/cq.h"

namespace ecrpq {

// A homomorphism h : vars(from) → vars(to) such that every atom R(x̄) of
// `from` becomes an atom R(h(x̄)) present in `to`, and h(free_i(from)) =
// free_i(to) (answer variables correspond positionwise). Queries must have
// the same number of free variables. Returns nullopt if none exists.
Result<std::optional<std::vector<CqVarId>>> FindCqHomomorphism(
    const CqQuery& from, const CqQuery& to);

// Chandra–Merlin: q1 ⊆ q2 (answers of q1 contained in q2's on every
// database) iff there is a homomorphism q2 → q1.
Result<bool> CqContainedIn(const CqQuery& q1, const CqQuery& q2);

// Both containments.
Result<bool> CqEquivalent(const CqQuery& q1, const CqQuery& q2);

// The core: an equivalent subquery with the minimum number of variables
// (unique up to isomorphism). Free variables are always retained.
Result<CqQuery> CqCore(const CqQuery& query);

// Exact treewidth of the core's Gaifman graph — the measure Prop. 2.5's
// tractability criterion bounds. Errors if the core is too large for the
// exact treewidth algorithm.
Result<int> SemanticTreewidth(const CqQuery& query);

}  // namespace ecrpq

#endif  // ECRPQ_CQ_HOMOMORPHISM_H_
