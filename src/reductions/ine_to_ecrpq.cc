#include "reductions/ine_to_ecrpq.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>

#include "automata/ops.h"
#include "common/check.h"
#include "query/builder.h"
#include "structure/derived.h"
#include "synchro/builders.h"
#include "synchro/tape_pack.h"

namespace ecrpq {
namespace {

// Universal word automaton over base symbols 0..|A|-1 (the A* dummy).
Nfa UniversalLanguage(int alphabet_size) {
  Nfa nfa(1);
  nfa.SetInitial(0);
  nfa.SetAccepting(0);
  for (int a = 0; a < alphabet_size; ++a) {
    nfa.AddTransition(0, static_cast<Label>(a), 0);
  }
  return nfa;
}

// The pattern relation of case 1: tapes t = 1..k carry $ # u #^{num_t} $
// with a shared u ∈ A*. Built over the extended alphabet B = A ∪ {$, #}.
Result<SyncRelation> PatternRelation(const Alphabet& ext_alphabet,
                                     int base_size,
                                     const std::vector<int>& numbers) {
  const int k = static_cast<int>(numbers.size());
  ECRPQ_ASSIGN_OR_RAISE(TapePack pack,
                        TapePack::Create(k, ext_alphabet.size()));
  const TapeLetter dollar = static_cast<TapeLetter>(base_size);
  const TapeLetter hash = static_cast<TapeLetter>(base_size + 1);
  const int max_num = *std::max_element(numbers.begin(), numbers.end());

  // States: 0 = start, 1 = after the opening ($..$), 2 = running u (after
  // the opening (#..#)), 3 + j = after suffix column j (j = 1..max_num+1).
  Nfa nfa(3 + max_num + 1);
  nfa.SetInitial(0);
  std::vector<TapeLetter> column(k);

  std::fill(column.begin(), column.end(), dollar);
  nfa.AddTransition(0, pack.Pack(column), 1);
  std::fill(column.begin(), column.end(), hash);
  nfa.AddTransition(1, pack.Pack(column), 2);
  for (int a = 0; a < base_size; ++a) {
    std::fill(column.begin(), column.end(), static_cast<TapeLetter>(a));
    nfa.AddTransition(2, pack.Pack(column), 2);
  }
  for (int j = 1; j <= max_num + 1; ++j) {
    for (int t = 0; t < k; ++t) {
      if (j <= numbers[t]) {
        column[t] = hash;
      } else if (j == numbers[t] + 1) {
        column[t] = dollar;
      } else {
        column[t] = kBlank;
      }
    }
    // Suffix chain: state 2+(j-1) --C_j--> 2+j (state 2 is the u-running
    // state; state 2+j means "after suffix column j").
    nfa.AddTransition(2 + (j - 1), pack.Pack(column), 2 + j);
  }
  nfa.SetAccepting(2 + max_num + 1);
  return SyncRelation::Create(ext_alphabet, k, std::move(nfa));
}

}  // namespace

TwoLevelGraph IneWitnessShapeCase1(int n) {
  TwoLevelGraph g;
  g.num_vertices = 1;
  std::vector<int> all;
  for (int i = 0; i < n; ++i) {
    g.first_edges.push_back({0, 0});
    all.push_back(i);
  }
  g.hyperedges.push_back(all);
  return g;
}

TwoLevelGraph IneWitnessShapeChain(int n) {
  TwoLevelGraph g;
  g.num_vertices = n + 1;
  for (int i = 0; i < n; ++i) g.first_edges.push_back({i, i + 1});
  if (n == 1) {
    g.hyperedges.push_back({0});
  }
  for (int i = 0; i + 1 < n; ++i) g.hyperedges.push_back({i, i + 1});
  return g;
}

TwoLevelGraph IneWitnessShapeCase2(int n) {
  TwoLevelGraph g;
  g.num_vertices = 2;
  g.first_edges.push_back({0, 1});
  for (int i = 0; i < n; ++i) g.hyperedges.push_back({0});
  return g;
}

Result<IneReduction> IneToEcrpq(const IneInstance& ine,
                                const TwoLevelGraph& shape) {
  ECRPQ_RETURN_NOT_OK(shape.Validate());
  const int n = static_cast<int>(ine.languages.size());
  if (n == 0) return Status::Invalid("need at least one language");
  const int base_size = ine.alphabet.size();

  // Extended alphabet B = A ∪ {$, #}.
  Alphabet ext = ine.alphabet;
  const Symbol dollar = ext.Intern("$");
  const Symbol hash = ext.Intern("#");

  // Case analysis on the shape.
  const std::vector<RelComponent> components = RelComponents(shape);
  std::vector<bool> covered(shape.NumEdges(), false);
  std::vector<int> incidence(shape.NumEdges(), 0);
  for (const auto& h : shape.hyperedges) {
    for (int e : h) {
      covered[e] = true;
      ++incidence[e];
    }
  }
  int case1_component = -1;
  for (size_t c = 0; c < components.size(); ++c) {
    if (static_cast<int>(components[c].edges.size()) < n) continue;
    bool all_covered = true;
    for (int e : components[c].edges) all_covered = all_covered && covered[e];
    if (all_covered) {
      case1_component = static_cast<int>(c);
      break;
    }
  }
  int case2_edge = -1;
  for (int e = 0; e < shape.NumEdges(); ++e) {
    if (incidence[e] >= n) {
      case2_edge = e;
      break;
    }
  }
  if (case1_component < 0 && case2_edge < 0) {
    return Status::Invalid(
        "shape witnesses neither a component with >= n covered vertices nor "
        "a vertex with >= n incident hyperedges");
  }

  // ε-free languages.
  std::vector<Nfa> langs;
  langs.reserve(ine.languages.size());
  for (const Nfa& lang : ine.languages) langs.push_back(RemoveEpsilon(lang));

  IneReduction out{EcrpqQuery{}, GraphDb(ext), 0};
  EcrpqBuilder builder(ext);
  for (int v = 0; v < shape.num_vertices; ++v) {
    builder.NodeVar("x" + std::to_string(v));
  }
  std::vector<PathVarId> path_of(shape.NumEdges());
  for (int e = 0; e < shape.NumEdges(); ++e) {
    path_of[e] = builder.PathVar("p" + std::to_string(e));
    builder.Reach(static_cast<NodeVarId>(shape.first_edges[e].first),
                  path_of[e],
                  static_cast<NodeVarId>(shape.first_edges[e].second));
  }

  if (case1_component >= 0) {
    out.case_used = 1;
    const RelComponent& comp = components[case1_component];
    const int m = static_cast<int>(comp.edges.size());
    // Pad languages up to m with A* dummies.
    while (static_cast<int>(langs.size()) < m) {
      langs.push_back(UniversalLanguage(base_size));
    }
    // Number component vertices 1..m (edges are sorted by id).
    std::map<int, int> number_of;
    for (int i = 0; i < m; ++i) number_of[comp.edges[i]] = i + 1;

    // Relations: the pattern relation on component hyperedges, universal
    // elsewhere.
    std::vector<bool> in_component(shape.NumHyperedges(), false);
    for (int h : comp.hyperedges) in_component[h] = true;
    for (int h = 0; h < shape.NumHyperedges(); ++h) {
      std::vector<int> members = shape.hyperedges[h];
      std::sort(members.begin(), members.end());
      std::vector<PathVarId> paths;
      for (int e : members) paths.push_back(path_of[e]);
      if (in_component[h]) {
        std::vector<int> numbers;
        for (int e : members) numbers.push_back(number_of.at(e));
        ECRPQ_ASSIGN_OR_RAISE(SyncRelation rel,
                              PatternRelation(ext, base_size, numbers));
        builder.Relate(std::make_shared<const SyncRelation>(std::move(rel)),
                       paths, "ine-pattern");
      } else {
        ECRPQ_ASSIGN_OR_RAISE(
            SyncRelation rel,
            UniversalRelation(ext, static_cast<int>(members.size())));
        builder.Relate(std::make_shared<const SyncRelation>(std::move(rel)),
                       paths, "universal");
      }
    }

    // Database: shared vertex v plus one gadget per language.
    const VertexId v = out.db.AddVertex();
    for (int i = 1; i <= m; ++i) {
      const Nfa& lang = langs[i - 1];
      const VertexId entry = out.db.AddVertex();
      out.db.AddEdge(v, dollar, entry);
      const VertexId offset = static_cast<VertexId>(out.db.NumVertices());
      out.db.AddVertices(lang.NumStates());
      for (StateId s : lang.initial()) {
        out.db.AddEdge(entry, hash, offset + s);
      }
      for (StateId s = 0; s < static_cast<StateId>(lang.NumStates()); ++s) {
        for (const Nfa::Transition& t : lang.TransitionsFrom(s)) {
          ECRPQ_CHECK(t.label != kEpsilon);
          out.db.AddEdge(offset + s, static_cast<Symbol>(t.label),
                         offset + t.to);
        }
        if (lang.IsAccepting(s)) {
          // Return chain: i hash edges, then $ back to v.
          VertexId prev = offset + s;
          for (int j = 0; j < i; ++j) {
            const VertexId z = out.db.AddVertex();
            out.db.AddEdge(prev, hash, z);
            prev = z;
          }
          out.db.AddEdge(prev, dollar, v);
        }
      }
    }
  } else {
    out.case_used = 2;
    // Case 2: the chosen edge is incident to >= n hyperedges; lift L_i onto
    // its tape in the i-th of them, universal elsewhere.
    int used = 0;
    for (int h = 0; h < shape.NumHyperedges(); ++h) {
      std::vector<int> members = shape.hyperedges[h];
      std::sort(members.begin(), members.end());
      std::vector<PathVarId> paths;
      int tape_of_edge = -1;
      for (size_t i = 0; i < members.size(); ++i) {
        paths.push_back(path_of[members[i]]);
        if (members[i] == case2_edge) tape_of_edge = static_cast<int>(i);
      }
      if (tape_of_edge >= 0 && used < n) {
        ECRPQ_ASSIGN_OR_RAISE(
            SyncRelation rel,
            LanguageLift(ext, langs[used],
                         static_cast<int>(members.size()), tape_of_edge));
        builder.Relate(std::make_shared<const SyncRelation>(std::move(rel)),
                       paths, "ine-lift");
        ++used;
      } else {
        ECRPQ_ASSIGN_OR_RAISE(
            SyncRelation rel,
            UniversalRelation(ext, static_cast<int>(members.size())));
        builder.Relate(std::make_shared<const SyncRelation>(std::move(rel)),
                       paths, "universal");
      }
    }
    ECRPQ_CHECK_EQ(used, n);
    // Database: one vertex with an a-self-loop per base symbol.
    const VertexId v = out.db.AddVertex();
    for (int a = 0; a < base_size; ++a) {
      out.db.AddEdge(v, static_cast<Symbol>(a), v);
    }
  }

  ECRPQ_ASSIGN_OR_RAISE(out.query, builder.Build());
  return out;
}

}  // namespace ecrpq
