#include "reductions/cc_tame.h"

#include <string>

#include "structure/derived.h"

namespace ecrpq {

Result<BigComponentWitness> FindBigComponentWitness(
    const ShapeGenerator& generator, int n) {
  if (n < 1) return Status::Invalid("n must be >= 1");
  // As in the paper: query f at n + (n-1)². If neither witness existed,
  // every component would have <= n-1 vertices and every vertex <= n-1
  // incident hyperedges, bounding cc_vertex + cc_hedge by (n-1) + (n-1)² —
  // contradicting the generator's contract.
  const int k = n + (n - 1) * (n - 1);
  BigComponentWitness witness;
  witness.shape = generator(k);
  ECRPQ_RETURN_NOT_OK(witness.shape.Validate());

  const std::vector<RelComponent> components = RelComponents(witness.shape);
  // Case (i): a component with >= n vertices.
  for (size_t c = 0; c < components.size(); ++c) {
    if (static_cast<int>(components[c].edges.size()) >= n) {
      witness.component_index = static_cast<int>(c);
      witness.by_vertices = true;
      return witness;
    }
  }
  // Case (ii): a vertex (first-level edge) incident to >= n hyperedges.
  std::vector<int> incidence(witness.shape.NumEdges(), 0);
  for (const auto& h : witness.shape.hyperedges) {
    for (int e : h) ++incidence[e];
  }
  for (int e = 0; e < witness.shape.NumEdges(); ++e) {
    if (incidence[e] >= n) {
      // Locate the component containing e.
      for (size_t c = 0; c < components.size(); ++c) {
        for (int member : components[c].edges) {
          if (member == e) {
            witness.component_index = static_cast<int>(c);
            witness.by_vertices = false;
            return witness;
          }
        }
      }
    }
  }
  return Status::Internal(
      "generator violates cc-tameness: f(" + std::to_string(k) +
      ") has neither a component with " + std::to_string(n) +
      " vertices nor a vertex with " + std::to_string(n) +
      " incident hyperedges");
}

}  // namespace ecrpq
