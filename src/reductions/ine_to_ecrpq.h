// Lemma 5.1: intersection non-emptiness (INE) ≤p eval-ECRPQ(C), for any
// cc-tame class C with cc_vertex + cc_hedge unbounded.
//
// Given regular languages L_1, ..., L_n and a 2L graph `shape` (an element
// of C witnessing a big connected component, cf. Lemma A.1), produces in
// polynomial time an ECRPQ q with abstraction `shape` and a graph database
// D such that D ⊨ q  iff  L_1 ∩ ... ∩ L_n ≠ ∅.
//
// Case 1 (component with m >= n vertices, all covered by hyperedges):
//   alphabet B = A ∪ {$, #}; component path variable number i is forced to
//   read  $ # u #^i $  with u shared across each relation atom — and, by
//   connectivity of the component, across the whole component. The database
//   is the union of gadgets D_i (one per language; the list is padded with
//   A* dummies up to m): a shared vertex v with
//     v -$-> e_i -#-> (initial of NFA_i),  NFA_i's transition graph,
//     (each final) -#-> z_1 -#-> ... -#-> z_i -$-> v.
//   Reading $ # u #^i $ forces a v→v traversal of gadget D_i with
//   u ∈ L_i: v is the only vertex with $-successors followed by #, the
//   trailing #-run length pins the gadget, and the final $ only enters v.
//
// Case 2 (some path variable incident to n hyperedges): each of those
//   hyperedges' relations lifts L_i onto the shared variable's tape; the
//   database is a single vertex with an a-self-loop per a ∈ A.
#ifndef ECRPQ_REDUCTIONS_INE_TO_ECRPQ_H_
#define ECRPQ_REDUCTIONS_INE_TO_ECRPQ_H_

#include <vector>

#include "automata/alphabet.h"
#include "automata/nfa.h"
#include "common/result.h"
#include "graphdb/graph_db.h"
#include "query/ast.h"
#include "structure/two_level_graph.h"

namespace ecrpq {

struct IneInstance {
  Alphabet alphabet;          // The base alphabet A.
  std::vector<Nfa> languages; // Symbol-labelled NFAs.
};

struct IneReduction {
  EcrpqQuery query;
  GraphDb db;
  int case_used = 0;  // 1 or 2.
};

// Automatically picks case 1 when `shape` has a component with >= n fully
// hyperedge-covered G^rel vertices, else case 2 when some G^rel vertex is
// incident to >= n hyperedges; errors otherwise (the shape does not witness
// a big enough component — supply one via IneWitnessShape*).
Result<IneReduction> IneToEcrpq(const IneInstance& ine,
                                const TwoLevelGraph& shape);

// Canonical witness shapes (the computable f of cc-tameness / Lemma A.1).
// Case-1 witness: one node vertex, n self-loop edges, one n-ary hyperedge.
TwoLevelGraph IneWitnessShapeCase1(int n);
// Case-1 witness with binary hyperedges only: n edges chained by n-1
// two-element hyperedges (bounded hyperedge size, unbounded cc_vertex).
TwoLevelGraph IneWitnessShapeChain(int n);
// Case-2 witness: one edge incident to n singleton hyperedges
// (cc_vertex = 1, cc_hedge = n).
TwoLevelGraph IneWitnessShapeCase2(int n);

}  // namespace ecrpq

#endif  // ECRPQ_REDUCTIONS_INE_TO_ECRPQ_H_
