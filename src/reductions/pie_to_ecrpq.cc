#include "reductions/pie_to_ecrpq.h"

namespace ecrpq {
namespace {

IneInstance ToIne(const PieInstance& pie) {
  IneInstance ine;
  ine.alphabet = pie.alphabet;
  ine.languages.reserve(pie.automata.size());
  for (const Dfa& dfa : pie.automata) {
    ine.languages.push_back(dfa.ToNfa());
  }
  return ine;
}

}  // namespace

Result<IneReduction> PieToEcrpqBoundedHyperedges(const PieInstance& pie) {
  if (pie.automata.empty()) return Status::Invalid("need >= 1 automaton");
  const int k = static_cast<int>(pie.automata.size());
  return IneToEcrpq(ToIne(pie), IneWitnessShapeChain(k));
}

Result<IneReduction> PieToEcrpqUnboundedHyperedge(const PieInstance& pie) {
  if (pie.automata.empty()) return Status::Invalid("need >= 1 automaton");
  const int k = static_cast<int>(pie.automata.size());
  return IneToEcrpq(ToIne(pie), IneWitnessShapeCase1(k));
}

}  // namespace ecrpq
