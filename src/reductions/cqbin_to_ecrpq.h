// Lemma 5.3: p-eval-CQ_bin(C_collapse) FPT-reduces to p-eval-ECRPQ(C).
//
// Input: a 2L graph `shape` (the element G of C), a relational database of
// binary relations, and, per first-level edge e = {v, v'} of the shape, a
// pair of relation names (R_e, R'_e). The corresponding CQ_bin query is
//     ⋀_e  R_e(x_v, y_{c_e}) ∧ R'_e(y_{c_e}, x_{v'})
// whose multigraph is exactly shape_collapse (component variables y_c).
//
// Output: an ECRPQ q_G with abstraction `shape` and an expanded graph
// database D̂ with (i) a forward edge a -R-> b and backward edge b -R⁻¹-> a
// per database tuple, and (ii) a {0,1}-labelled simple cycle of length
// n' = max(1, ceil(log2 |dom|)) at every domain vertex spelling its binary
// id. The relation of component c forces every tape (path variable of c) to
// read  R_e · w · R'_e  with one shared w ∈ {0,1}^{n'} — so all paths of a
// component pivot through the same middle vertex, which plays y_c.
// Then D̂ ⊨ q_G iff the relational database satisfies the CQ.
#ifndef ECRPQ_REDUCTIONS_CQBIN_TO_ECRPQ_H_
#define ECRPQ_REDUCTIONS_CQBIN_TO_ECRPQ_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "cq/cq.h"
#include "cq/relational_db.h"
#include "graphdb/graph_db.h"
#include "query/ast.h"
#include "structure/two_level_graph.h"

namespace ecrpq {

struct CqBinReduction {
  EcrpqQuery query;  // q_G, abstraction = shape.
  GraphDb db;        // D̂.
  CqQuery cq;        // The source CQ_bin query (vars: V then components).
};

// `edge_relations[e] = (R_e, R'_e)` names binary relations of `rdb`.
Result<CqBinReduction> CqBinToEcrpq(
    const TwoLevelGraph& shape, const RelationalDb& rdb,
    const std::vector<std::pair<std::string, std::string>>& edge_relations);

}  // namespace ecrpq

#endif  // ECRPQ_REDUCTIONS_CQBIN_TO_ECRPQ_H_
