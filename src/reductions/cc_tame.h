// Lemma A.1 (appendix): for a cc-tame class C with cc_vertex + cc_hedge
// unbounded, one can *compute* an element whose G^rel has a component with
// n vertices or a vertex incident to n hyperedges. cc-tameness hands us a
// polynomial-time generator f with cc_vertex(f(k)) + cc_hedge(f(k)) >= k;
// querying f(n + (n-1)²) and inspecting components does the rest.
//
// This is the glue between the abstract classes of the characterization and
// the concrete witness shapes the Lemma 5.1 / 5.4 reductions consume.
#ifndef ECRPQ_REDUCTIONS_CC_TAME_H_
#define ECRPQ_REDUCTIONS_CC_TAME_H_

#include <functional>

#include "common/result.h"
#include "structure/two_level_graph.h"

namespace ecrpq {

// The computable generator of a cc-tame class: f(k) must satisfy
// cc_vertex(f(k)) + cc_hedge(f(k)) >= k.
using ShapeGenerator = std::function<TwoLevelGraph(int)>;

struct BigComponentWitness {
  TwoLevelGraph shape;
  // Index into RelComponents(shape) of the big component.
  int component_index = -1;
  // True: the component has >= n vertices (Lemma 5.1 case 1).
  // False: some vertex is incident to >= n hyperedges (case 2).
  bool by_vertices = false;
};

// Implements the Lemma A.1 argument. Errors (Internal) if the generator
// violates the cc-tameness contract.
Result<BigComponentWitness> FindBigComponentWitness(
    const ShapeGenerator& generator, int n);

}  // namespace ecrpq

#endif  // ECRPQ_REDUCTIONS_CC_TAME_H_
