// Lemma 5.4: the parameterized intersection problem p-IE (XNL-complete)
// FPT-reduces to p-eval-ECRPQ(C) whenever cc_vertex(C) = ∞.
//
// Both cases of the proof are instantiated through the Lemma 5.1 machinery
// with canonical witness shapes:
//  - case (a), bounded hyperedge sizes: a "long path" of k binary
//    hyperedges chained by shared path variables (IneWitnessShapeChain);
//  - case (b), unbounded hyperedge sizes: one k-ary hyperedge
//    (IneWitnessShapeCase1).
//
// The FPT bound: the produced query's size depends only on k (pattern
// relations have O(k) states and never embed the input automata — the
// automata live in the database, whose size is linear in Σ|A_i|).
#ifndef ECRPQ_REDUCTIONS_PIE_TO_ECRPQ_H_
#define ECRPQ_REDUCTIONS_PIE_TO_ECRPQ_H_

#include <vector>

#include "automata/dfa.h"
#include "common/result.h"
#include "reductions/ine_to_ecrpq.h"

namespace ecrpq {

struct PieInstance {
  Alphabet alphabet;
  std::vector<Dfa> automata;  // Labels must be symbol ids of `alphabet`.
};

// Case (a): bounded (binary) hyperedges, chained.
Result<IneReduction> PieToEcrpqBoundedHyperedges(const PieInstance& pie);

// Case (b): one hyperedge of size k.
Result<IneReduction> PieToEcrpqUnboundedHyperedge(const PieInstance& pie);

}  // namespace ecrpq

#endif  // ECRPQ_REDUCTIONS_PIE_TO_ECRPQ_H_
