#include "reductions/cqbin_to_ecrpq.h"

#include <algorithm>
#include <map>
#include <memory>

#include "common/check.h"
#include "query/builder.h"
#include "structure/derived.h"
#include "synchro/tape_pack.h"

namespace ecrpq {
namespace {

int BitsFor(uint32_t n) {
  int bits = 1;
  while ((uint64_t{1} << bits) < n) ++bits;
  return bits;
}

}  // namespace

Result<CqBinReduction> CqBinToEcrpq(
    const TwoLevelGraph& shape, const RelationalDb& rdb,
    const std::vector<std::pair<std::string, std::string>>& edge_relations) {
  ECRPQ_RETURN_NOT_OK(shape.Validate());
  if (static_cast<int>(edge_relations.size()) != shape.NumEdges()) {
    return Status::Invalid("need one (R, R') relation pair per shape edge");
  }
  for (const auto& [r, rp] : edge_relations) {
    for (const std::string& name : {r, rp}) {
      if (name == "0" || name == "1") {
        return Status::Invalid(
            "relation names '0' and '1' are reserved for id-cycle labels");
      }
      ECRPQ_ASSIGN_OR_RAISE(const Relation* rel, rdb.Require(name));
      if (rel->arity() != 2) {
        return Status::Invalid("relation " + name + " is not binary");
      }
    }
  }
  const uint32_t n = rdb.domain_size();
  if (n == 0) return Status::Invalid("empty domain");
  const int bits = BitsFor(n);

  // Alphabet: one symbol per distinct relation name, plus the id bits.
  Alphabet alphabet;
  std::map<std::string, Symbol> sym_of;
  for (const auto& [r, rp] : edge_relations) {
    for (const std::string& name : {r, rp}) {
      sym_of.emplace(name, alphabet.Intern(name));
    }
  }
  const Symbol bit_sym[2] = {alphabet.Intern("0"), alphabet.Intern("1")};

  CqBinReduction out{EcrpqQuery{}, GraphDb(alphabet), CqQuery{}};

  // --- D̂: domain vertices, relation edges, binary-id cycles. ---
  out.db.AddVertices(static_cast<int>(n));
  std::map<std::string, bool> emitted;
  for (const auto& [r, rp] : edge_relations) {
    for (const std::string& name : {r, rp}) {
      if (emitted[name]) continue;
      emitted[name] = true;
      const Relation* rel = rdb.Find(name);
      for (size_t row = 0; row < rel->NumTuples(); ++row) {
        const auto tuple = rel->Tuple(row);
        if (tuple[0] >= n || tuple[1] >= n) {
          return Status::Invalid("tuple value outside domain");
        }
        out.db.AddEdge(tuple[0], sym_of.at(name), tuple[1]);
      }
    }
  }
  for (uint32_t i = 0; i < n; ++i) {
    // Simple cycle spelling the `bits`-bit binary id of i, MSB first.
    VertexId prev = i;
    for (int b = 0; b < bits; ++b) {
      const int bit = (i >> (bits - 1 - b)) & 1;
      const VertexId next =
          (b == bits - 1) ? static_cast<VertexId>(i) : out.db.AddVertex();
      out.db.AddEdge(prev, bit_sym[bit], next);
      prev = next;
    }
  }

  // --- q_G with abstraction `shape`. ---
  const std::vector<RelComponent> components = RelComponents(shape);
  EcrpqBuilder builder(alphabet);
  for (int v = 0; v < shape.num_vertices; ++v) {
    builder.NodeVar("x" + std::to_string(v));
  }
  std::vector<PathVarId> path_of(shape.NumEdges());
  for (int e = 0; e < shape.NumEdges(); ++e) {
    path_of[e] = builder.PathVar("p" + std::to_string(e));
    builder.Reach(static_cast<NodeVarId>(shape.first_edges[e].first),
                  path_of[e],
                  static_cast<NodeVarId>(shape.first_edges[e].second));
  }
  for (const RelComponent& comp : components) {
    std::vector<int> members(comp.edges);
    std::sort(members.begin(), members.end());
    const int k = static_cast<int>(members.size());
    ECRPQ_ASSIGN_OR_RAISE(TapePack pack,
                          TapePack::Create(k, alphabet.size()));
    // States: 0 --(R_e per tape)--> 1 --bits (shared)--> ... --> bits+1
    // --(R'_e per tape)--> bits+2 (accepting).
    Nfa nfa(bits + 3);
    nfa.SetInitial(0);
    nfa.SetAccepting(bits + 2);
    std::vector<TapeLetter> column(k);
    for (int t = 0; t < k; ++t) {
      column[t] =
          static_cast<TapeLetter>(sym_of.at(edge_relations[members[t]].first));
    }
    nfa.AddTransition(0, pack.Pack(column), 1);
    for (int b = 0; b < 2; ++b) {
      std::fill(column.begin(), column.end(),
                static_cast<TapeLetter>(bit_sym[b]));
      const Label l = pack.Pack(column);
      for (int j = 1; j <= bits; ++j) nfa.AddTransition(j, l, j + 1);
    }
    for (int t = 0; t < k; ++t) {
      column[t] = static_cast<TapeLetter>(
          sym_of.at(edge_relations[members[t]].second));
    }
    nfa.AddTransition(bits + 1, pack.Pack(column), bits + 2);
    ECRPQ_ASSIGN_OR_RAISE(SyncRelation rel,
                          SyncRelation::Create(alphabet, k, std::move(nfa)));
    std::vector<PathVarId> paths;
    for (int e : members) paths.push_back(path_of[e]);
    builder.Relate(std::make_shared<const SyncRelation>(std::move(rel)),
                   paths, "pivot");
  }
  ECRPQ_ASSIGN_OR_RAISE(out.query, builder.Build());

  // --- The source CQ_bin query (for differential validation). ---
  out.cq.num_vars = shape.num_vertices + static_cast<int>(components.size());
  for (int v = 0; v < shape.num_vertices; ++v) {
    out.cq.var_names.push_back("x" + std::to_string(v));
  }
  std::vector<int> component_of_edge(shape.NumEdges(), -1);
  for (size_t c = 0; c < components.size(); ++c) {
    out.cq.var_names.push_back("y" + std::to_string(c));
    for (int e : components[c].edges) {
      component_of_edge[e] = static_cast<int>(c);
    }
  }
  for (int e = 0; e < shape.NumEdges(); ++e) {
    const CqVarId yc = static_cast<CqVarId>(shape.num_vertices +
                                            component_of_edge[e]);
    out.cq.atoms.push_back(
        CqAtom{edge_relations[e].first,
               {static_cast<CqVarId>(shape.first_edges[e].first), yc}});
    out.cq.atoms.push_back(
        CqAtom{edge_relations[e].second,
               {yc, static_cast<CqVarId>(shape.first_edges[e].second)}});
  }
  return out;
}

}  // namespace ecrpq
