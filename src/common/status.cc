#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace ecrpq {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kCapacityExceeded:
      return "Capacity exceeded";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg)
    : state_(std::make_shared<const State>(State{code, std::move(msg)})) {}

const std::string& Status::message() const {
  static const std::string kEmpty;
  return ok() ? kEmpty : state_->msg;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += state_->msg;
  return out;
}

void Status::Check() const {
  if (ok()) return;
  std::fprintf(stderr, "ecrpq: fatal status: %s\n", ToString().c_str());
  std::abort();
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace ecrpq
