// Small string helpers shared by parsers and serializers.
#ifndef ECRPQ_COMMON_STRINGS_H_
#define ECRPQ_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace ecrpq {

// Splits on a delimiter character; keeps empty fields.
std::vector<std::string> SplitString(std::string_view s, char delim);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

// Joins elements with a separator.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

}  // namespace ecrpq

#endif  // ECRPQ_COMMON_STRINGS_H_
