#include "common/strings.h"

namespace ecrpq {

std::vector<std::string> SplitString(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' ||
                          s[b] == '\r')) {
    ++b;
  }
  size_t e = s.size();
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace ecrpq

