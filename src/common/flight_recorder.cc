#include "common/flight_recorder.h"

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace ecrpq {
namespace obs {

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      origin_(std::chrono::steady_clock::now()),
      slots_(capacity_) {}

FlightRecorder& FlightRecorder::Process() {
  static FlightRecorder* recorder = new FlightRecorder(1024);
  return *recorder;
}

uint64_t FlightRecorder::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

void FlightRecorder::Record(const char* name, int tid, uint64_t start_ns,
                            uint64_t dur_ns, uint64_t arg) {
  const uint64_t claim = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[claim % capacity_];
  // Invalidate first so a reader racing this write sees "in flux", not a
  // stale-payload/new-seq mix.
  slot.seq.store(0, std::memory_order_release);
  slot.name = name;
  slot.tid = tid;
  slot.start_ns = start_ns;
  slot.dur_ns = dur_ns;
  slot.arg = arg;
  slot.seq.store(claim + 1, std::memory_order_release);
}

namespace {

std::string MicrosFR(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

void AppendEscaped(std::string_view s, std::ostringstream* out) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out->put('\\');
    out->put(c);
  }
}

}  // namespace

std::string FlightRecorder::ToTraceJson(std::string_view trace_id) const {
  struct Copied {
    uint64_t seq;
    const char* name;
    int tid;
    uint64_t start_ns;
    uint64_t dur_ns;
    uint64_t arg;
  };
  std::vector<Copied> window;
  window.reserve(capacity_);
  const uint64_t end = next_.load(std::memory_order_acquire);
  const uint64_t begin = end > capacity_ ? end - capacity_ : 0;
  for (uint64_t i = begin; i < end; ++i) {
    const Slot& slot = slots_[i % capacity_];
    const uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
    if (seq_before != i + 1) continue;  // Overwritten or mid-write: skip.
    Copied c{seq_before, slot.name,   slot.tid,
             slot.start_ns, slot.dur_ns, slot.arg};
    // A writer lapping us invalidates seq first, so an unchanged stamp
    // means the payload we copied was not torn.
    if (slot.seq.load(std::memory_order_acquire) != seq_before) continue;
    if (c.name == nullptr) continue;
    window.push_back(c);
  }

  std::ostringstream out;
  out << "{";
  if (!trace_id.empty()) {
    out << "\"traceId\": \"";
    AppendEscaped(trace_id, &out);
    out << "\", ";
  }
  out << "\"traceEvents\": [\n";
  for (size_t i = 0; i < window.size(); ++i) {
    const Copied& e = window[i];
    out << "  {\"name\": \"";
    AppendEscaped(e.name, &out);
    out << "\", \"cat\": \"flightrec\", \"ph\": \"X\", \"pid\": 0, \"tid\": "
        << e.tid << ", \"ts\": " << MicrosFR(e.start_ns)
        << ", \"dur\": " << MicrosFR(e.dur_ns) << ", \"args\": {\"seq\": "
        << e.seq - 1 << ", \"v\": " << e.arg << "}}"
        << (i + 1 < window.size() ? "," : "") << "\n";
  }
  out << "], \"displayTimeUnit\": \"ms\"}\n";
  return out.str();
}

Status FlightRecorder::DumpToFile(const std::string& path,
                                  std::string_view trace_id) const {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open " + path + " for writing");
  out << ToTraceJson(trace_id);
  if (!out) return Status::Internal("short write to " + path);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Fatal-signal dump.

namespace {

// Written once by InstallFatalSignalDump before any handler can run; the
// handler only reads. A plain pointer (not std::string) so the handler
// never touches a possibly-mid-mutation object.
std::atomic<const char*> g_fatal_dump_path{nullptr};

void FatalSignalHandler(int signo) {
  const char* path = g_fatal_dump_path.load(std::memory_order_acquire);
  if (path != nullptr) {
    // Best effort: DumpToFile allocates, which is formally unsafe in a
    // handler but the process is dying anyway (see header).
    (void)FlightRecorder::Process().DumpToFile(path, "fatal-signal");
  }
  std::signal(signo, SIG_DFL);
  std::raise(signo);
}

}  // namespace

void FlightRecorder::InstallFatalSignalDump(const std::string& path) {
  // Leaked on purpose: the handler may outlive every caller scope.
  char* copy = new char[path.size() + 1];
  std::snprintf(copy, path.size() + 1, "%s", path.c_str());
  g_fatal_dump_path.store(copy, std::memory_order_release);
  std::signal(SIGSEGV, FatalSignalHandler);
  std::signal(SIGABRT, FatalSignalHandler);
  std::signal(SIGBUS, FatalSignalHandler);
  std::signal(SIGFPE, FatalSignalHandler);
}

}  // namespace obs
}  // namespace ecrpq
