#include "common/worklist.h"

#include <algorithm>
#include <utility>

namespace ecrpq {
namespace {

// Chunks are packed (begin << 32) | end; the index spaces scheduled here
// (vertices, branch values, batch slots) are all 32-bit.
constexpr uint64_t PackChunk(size_t begin, size_t end) {
  return (static_cast<uint64_t>(begin) << 32) | static_cast<uint64_t>(end);
}
constexpr size_t ChunkBegin(uint64_t chunk) {
  return static_cast<size_t>(chunk >> 32);
}
constexpr size_t ChunkEnd(uint64_t chunk) {
  return static_cast<size_t>(chunk & 0xffffffffu);
}

}  // namespace

size_t FrontierScheduler::ChunkSizeFor(size_t n, int workers) {
  if (workers <= 1) return n == 0 ? 1 : n;
  const size_t target = n / (static_cast<size_t>(workers) * 8);
  return std::clamp<size_t>(target, 1, 64);
}

void FrontierScheduler::Start(size_t n, TaskFn fn) {
  ECRPQ_CHECK(!running_) << "FrontierScheduler::Start while a run is active";
  ECRPQ_CHECK(n < (uint64_t{1} << 32)) << "index space too large to chunk";
  n_ = n;
  fn_ = std::move(fn);
  workers_ = 1;
  if (n == 0) return;
  const int pool_threads = pool_ != nullptr ? pool_->num_threads() : 1;
  if (pool_threads <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn_(i, 0);
    return;
  }
  const size_t chunk = ChunkSizeFor(n, pool_threads);
  const size_t num_chunks = (n + chunk - 1) / chunk;
  workers_ =
      static_cast<int>(std::min<size_t>(pool_threads, num_chunks));
  // Seed chunks round-robin so every worker starts with a contiguous-ish
  // slice of the index space. Seeding happens before any Submit: the
  // scheduler is the deques' single writer here, and the pool's queue
  // handoff publishes them to the workers.
  const size_t per_worker =
      (num_chunks + static_cast<size_t>(workers_) - 1) /
      static_cast<size_t>(workers_);
  deques_.clear();
  deques_.reserve(workers_);
  for (int w = 0; w < workers_; ++w) {
    deques_.push_back(std::make_unique<WorkStealingDeque>(per_worker));
  }
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = c * chunk;
    const size_t end = std::min(n, begin + chunk);
    deques_[c % static_cast<size_t>(workers_)]->PushBottom(
        PackChunk(begin, end));
  }
  running_ = true;
  wg_.Add(workers_);
  for (int w = 0; w < workers_; ++w) {
    pool_->Submit([this, w] {
      WorkerRun(w);
      wg_.Done();
    });
  }
}

void FrontierScheduler::Wait() {
  if (!running_) return;
  wg_.Wait();
  running_ = false;
  deques_.clear();
  fn_ = nullptr;
}

void FrontierScheduler::WorkerRun(int w) {
  uint64_t steal_attempts = 0;
  uint64_t steals_succeeded = 0;
  auto run_chunk = [&](uint64_t chunk) {
    const size_t end = ChunkEnd(chunk);
    for (size_t i = ChunkBegin(chunk); i < end; ++i) fn_(i, w);
  };
  // Phase 1: drain the worker's own deque (LIFO, uncontended fast path).
  while (std::optional<uint64_t> chunk = deques_[w]->PopBottom()) {
    run_chunk(*chunk);
  }
  // Phase 2: steal (FIFO from victims' tops). The work set is static — no
  // chunk spawns chunks — so once a full sweep over all victims comes back
  // empty, every remaining index is already running on some worker and
  // this worker can retire.
  for (;;) {
    bool swept_clean = true;
    for (int off = 1; off < workers_; ++off) {
      WorkStealingDeque& victim = *deques_[(w + off) % workers_];
      for (;;) {
        uint64_t chunk = 0;
        ++steal_attempts;
        const WorkStealingDeque::StealResult r = victim.Steal(&chunk);
        if (r == WorkStealingDeque::StealResult::kEmpty) break;
        if (r == WorkStealingDeque::StealResult::kLost) {
          // Lost a race while items may remain: not a clean sweep.
          swept_clean = false;
          break;
        }
        ++steals_succeeded;
        swept_clean = false;
        run_chunk(chunk);
      }
    }
    if (swept_clean) break;
  }
  obs::Add(shard_, obs::CounterId::kStealAttempts, steal_attempts);
  obs::Add(shard_, obs::CounterId::kStealsSucceeded, steals_succeeded);
}

}  // namespace ecrpq
