// Lock-free evaluation metrics: per-thread counter shards aggregated
// deterministically into a StatsReport.
//
// Design:
//  - every worker (engine, searcher) acquires its *own* MetricsShard from
//    the evaluation's Metrics registry; increments are relaxed atomic adds
//    on a cache-line-aligned block the worker exclusively writes, so the
//    hot path is wait-free and contention-free;
//  - aggregation folds shards with commutative operations only (sum for
//    throughput counters, max for peaks), so the StatsReport is identical
//    for every interleaving and pool size that does the same work;
//  - everything is null-safe: call sites guard on a nullable shard pointer
//    (see the free Add/RecordMax helpers), and with observability disabled
//    the engine never touches a shard at all — the zero-overhead-when-
//    disabled contract of docs/OBSERVABILITY.md.
#ifndef ECRPQ_COMMON_METRICS_H_
#define ECRPQ_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

namespace ecrpq {
namespace obs {

// The metric vocabulary. Names (CounterName) are the stable identifiers
// used in reports, trace metadata, BENCH_*.json and docs/OBSERVABILITY.md.
enum class CounterId : int {
  kProductStatesExpanded = 0,  // Product-BFS states interned (all searches).
  kFrontierPeak,               // Max BFS frontier size (max-aggregated).
  kTuplesMaterialized,         // Rows added to materialized CQ relations.
  kBagTuplesMaterialized,      // Tuples materialized in tree-dec bags.
  kMemoHits,                   // Reach() calls served from the memo.
  kMemoMisses,                 // Reach() calls that ran a fresh BFS.
  kReachQueries,               // Total Reach() calls (hits + misses).
  kVisitedBytes,               // Bytes allocated for visited-set tracking.
  kRpqBfsRuns,                 // Per-source product BFS runs (RPQ layer).
  kAssignmentsTried,           // Backtracking nodes in the generic engine.
  kBranchesExplored,           // Parallel branches claimed by workers.
  kAnswersEmitted,             // Answers emitted (pre-dedup, per branch).
  kNumCounters,
};

inline constexpr int kNumCounters = static_cast<int>(CounterId::kNumCounters);

// How a counter folds across shards.
enum class CounterKind { kSum, kMax };

const char* CounterName(CounterId id);
CounterKind CounterKindOf(CounterId id);

// Deterministic aggregate of one evaluation's metrics.
struct StatsReport {
  std::array<uint64_t, kNumCounters> values{};

  uint64_t operator[](CounterId id) const {
    return values[static_cast<int>(id)];
  }
  uint64_t& at(CounterId id) { return values[static_cast<int>(id)]; }

  // Aligned "name  value" lines, one per counter.
  std::string ToString() const;
  // Flat JSON object {"product_states_expanded": 0, ...}, keys in enum
  // order.
  std::string ToJson() const;
};

// One worker's counter block. Writers own their shard exclusively; readers
// (aggregation, budget checks) may load concurrently from any thread.
class alignas(64) MetricsShard {
 public:
  void Add(CounterId id, uint64_t n = 1) {
    counters_[static_cast<int>(id)].fetch_add(n, std::memory_order_relaxed);
  }
  void RecordMax(CounterId id, uint64_t v) {
    std::atomic<uint64_t>& c = counters_[static_cast<int>(id)];
    uint64_t cur = c.load(std::memory_order_relaxed);
    while (cur < v &&
           !c.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  uint64_t Load(CounterId id) const {
    return counters_[static_cast<int>(id)].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<uint64_t>, kNumCounters> counters_{};
};

// Registry of shards for one evaluation. AcquireShard() is the only
// synchronized operation and is called once per worker-scoped object
// (engine, searcher) — never from a hot loop.
class Metrics {
 public:
  Metrics() = default;
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  // Returns a fresh shard with a stable address (lives as long as the
  // Metrics object).
  MetricsShard* AcquireShard();

  // Folds all shards (sum / max per CounterKindOf). Safe to call while
  // writers are active: the result is then a consistent-enough snapshot of
  // a moment in the run (each counter individually exact at load time).
  StatsReport Aggregate() const;

  // Current folded value of a single counter — the cheap primitive budget
  // checks poll.
  uint64_t Total(CounterId id) const;

 private:
  mutable std::mutex mutex_;            // Guards shards_ growth only.
  std::deque<MetricsShard> shards_;     // deque: stable element addresses.
};

// Null-safe increment helpers: the disabled path is one predictable branch.
inline void Add(MetricsShard* shard, CounterId id, uint64_t n = 1) {
  if (shard != nullptr) shard->Add(id, n);
}
inline void RecordMax(MetricsShard* shard, CounterId id, uint64_t v) {
  if (shard != nullptr) shard->RecordMax(id, v);
}

}  // namespace obs
}  // namespace ecrpq

#endif  // ECRPQ_COMMON_METRICS_H_
