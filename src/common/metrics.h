// Lock-free evaluation metrics: per-thread counter and histogram shards
// aggregated deterministically into a StatsReport.
//
// Design:
//  - every worker (engine, searcher) acquires its *own* MetricsShard from
//    the evaluation's Metrics registry; increments are relaxed atomic adds
//    on a cache-line-aligned block the worker exclusively writes, so the
//    hot path is wait-free and contention-free;
//  - aggregation folds shards with commutative operations only (sum for
//    throughput counters and histogram buckets, max for peaks), so the
//    StatsReport is identical for every interleaving and pool size that
//    does the same work;
//  - everything is null-safe: call sites guard on a nullable shard pointer
//    (see the free Add/RecordMax/Record helpers), and with observability
//    disabled the engine never touches a shard at all — the
//    zero-overhead-when-disabled contract of docs/OBSERVABILITY.md.
//
// Histograms use log2 ("power of two") buckets: bucket 0 holds the value
// 0 and bucket k >= 1 holds values in [2^(k-1), 2^k - 1]. Two kinds exist:
//  - kTimeNs histograms record wall-clock phase durations; their bucket
//    counts vary run to run and are *excluded* from determinism checks;
//  - kSize histograms record work-shape samples (frontier sizes, bag
//    widths); their bucket counts are a pure function of the work done, so
//    engines whose work set is pool-size-independent produce identical
//    bucket counts at every pool size (checked by the differential suite).
#ifndef ECRPQ_COMMON_METRICS_H_
#define ECRPQ_COMMON_METRICS_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <deque>
#include <string>

#include "common/annotations.h"

namespace ecrpq {
namespace obs {

// The metric vocabulary. Names (CounterName) are the stable identifiers
// used in reports, trace metadata, BENCH_*.json and docs/OBSERVABILITY.md.
enum class CounterId : int {
  kProductStatesExpanded = 0,  // Product-BFS states interned (all searches).
  kFrontierPeak,               // Max BFS frontier size (max-aggregated).
  kTuplesMaterialized,         // Rows added to materialized CQ relations.
  kBagTuplesMaterialized,      // Tuples materialized in tree-dec bags.
  kMemoHits,                   // Reach() calls served from the memo.
  kMemoMisses,                 // Reach() calls that ran a fresh BFS.
  kReachQueries,               // Total Reach() calls (hits + misses).
  kVisitedBytes,               // Bytes allocated for visited-set tracking.
  kRpqBfsRuns,                 // Per-source product BFS runs (RPQ layer).
  kAssignmentsTried,           // Backtracking nodes in the generic engine.
  kBranchesExplored,           // Parallel branches claimed by workers.
  kAnswersEmitted,             // Answers emitted (pre-dedup, per branch).
  // Work-stealing runtime (common/worklist.h). Scheduling-dependent: their
  // values vary run to run under contention and are excluded from
  // cross-pool-size determinism comparisons (bench export prefixes them
  // "sched_" so bench_compare treats them as informational).
  kStealAttempts,              // Steal probes by idle scheduler workers.
  kStealsSucceeded,            // Steal probes that won a chunk.
  // Direction-optimizing product BFS. Deterministic: the switch decision is
  // a pure function of per-level frontier/unvisited sizes.
  kDirectionSwitches,          // Top-down <-> bottom-up transitions.
  // Cross-query caching layer (common/cache.h). History-dependent: values
  // depend on what earlier evaluations left in the process-wide caches, so
  // — like the sched_ group — they are excluded from determinism
  // comparisons and exported with a "cache_" name prefix that
  // bench_compare treats as informational-only.
  kCacheHits,                  // Cache lookups served from a live entry.
  kCacheMisses,                // Cache lookups that found nothing.
  kCacheEvictions,             // LRU entries evicted to respect the budget.
  // Query-service admission control (service/admission.h). Load- and
  // timing-dependent like the sched_ group: a queued-vs-admitted outcome
  // depends on what else is in flight, so these are exported with a
  // "service_" name prefix that bench_compare treats as
  // informational-only.
  kServiceAdmitted,            // Queries admitted (immediately or queued).
  kServiceQueued,              // Queries that waited in the admission queue.
  kServiceRejected,            // Queries rejected (policy or queue deadline).
  kServiceActivePeak,          // Max concurrently admitted (max-aggregated).
  // Request-telemetry layer (event log, flight recorder). Load-dependent
  // like the service_ group; exported with a "telemetry_" name prefix that
  // bench_compare treats as informational-only.
  kTelemetryEventsLogged,      // Records appended to the JSON-lines log.
  kTelemetryPostmortemDumps,   // Flight-recorder postmortem files written.
  kNumCounters,
};

inline constexpr int kNumCounters = static_cast<int>(CounterId::kNumCounters);

// How a counter folds across shards.
enum class CounterKind { kSum, kMax };

const char* CounterName(CounterId id);
CounterKind CounterKindOf(CounterId id);

// The histogram vocabulary — phase wall-times and work-size distributions.
// Names (HistogramName) are the stable identifiers used in reports,
// StatsReport::ToJson() and docs/OBSERVABILITY.md.
enum class HistogramId : int {
  // Phase wall-time (nanoseconds per occurrence). Non-deterministic values;
  // excluded from determinism checks.
  kPhaseNfaBuildNs = 0,      // JoinMachine / product-NFA construction.
  kPhaseBfsNs,               // One product BFS run (tuple or per-source).
  kPhaseReduceNs,            // One reduction component materialization.
  kPhaseBagMaterializeNs,    // One tree-dec bag materialization.
  kPhaseBranchNs,            // One parallel branch evaluation.
  kAnswerLatencyNs,          // Engine start -> each answer emission.
  // Work-size samples. Deterministic bucket counts whenever the engine's
  // work set does not depend on the pool size (see header comment).
  kFrontierSize,             // BFS frontier size at each pop.
  kReachSetSize,             // Accepting targets found per fresh BFS.
  kBagWidth,                 // Variables per materialized tree-dec bag.
  kFrontierOccupancy,        // Frontier size per level (level-sync BFS).
  kCacheLookupNs,            // One sharded-LRU lookup, hit or miss.
  kServiceRequestNs,         // QueryService request: admission -> response.
  kServiceQueueNs,           // Admission wait per query (0 when unqueued).
  kNumHistograms,
};

inline constexpr int kNumHistograms =
    static_cast<int>(HistogramId::kNumHistograms);

// Log2 bucketing: bucket 0 <=> value 0; bucket k >= 1 <=> [2^(k-1), 2^k).
// 65 buckets cover the full uint64_t range (bit_width(~0ull) == 64).
inline constexpr int kNumHistogramBuckets = 65;

constexpr int HistogramBucketOf(uint64_t v) { return std::bit_width(v); }

// Inclusive upper bound of a bucket's value range (0 for bucket 0,
// 2^k - 1 for bucket k) — the deterministic representative used for
// percentile estimates.
constexpr uint64_t HistogramBucketUpperBound(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket >= 64) return ~uint64_t{0};
  return (uint64_t{1} << bucket) - 1;
}

// Whether a histogram records wall-clock durations or work sizes.
enum class HistogramKind { kTimeNs, kSize };

const char* HistogramName(HistogramId id);
HistogramKind HistogramKindOf(HistogramId id);

// Folded (cross-shard) view of one histogram: bucket counts plus exact
// sum/max. Percentiles are estimated from the buckets (each bucket's
// upper bound stands in for its values, clamped to the exact max), so the
// summary is a deterministic function of the bucket counts.
struct HistogramData {
  std::array<uint64_t, kNumHistogramBuckets> buckets{};
  uint64_t sum = 0;
  uint64_t max = 0;

  uint64_t Count() const;
  // q in [0, 1]; returns 0 on an empty histogram. Percentile(1.0) == max.
  uint64_t Percentile(double q) const;
  bool Empty() const { return Count() == 0; }
};

// Deterministic aggregate of one evaluation's metrics.
struct StatsReport {
  std::array<uint64_t, kNumCounters> values{};
  std::array<HistogramData, kNumHistograms> histograms{};

  uint64_t operator[](CounterId id) const {
    return values[static_cast<int>(id)];
  }
  uint64_t& at(CounterId id) { return values[static_cast<int>(id)]; }

  const HistogramData& hist(HistogramId id) const {
    return histograms[static_cast<int>(id)];
  }
  HistogramData& hist(HistogramId id) {
    return histograms[static_cast<int>(id)];
  }

  // Aligned "name  value" lines, one per counter, followed by one
  // count/sum/p50/p90/p99/max line per non-empty histogram.
  std::string ToString() const;
  // {"counters": {...}, "histograms": {...}}; counter keys in enum order,
  // histogram entries carry count/sum/max/p50/p90/p99 and a sparse
  // "buckets" array of [bucket_index, count] pairs.
  std::string ToJson() const;
};

// One worker's counter block. Writers own their shard exclusively; readers
// (aggregation, budget checks) may load concurrently from any thread.
class alignas(64) MetricsShard {
 public:
  void Add(CounterId id, uint64_t n = 1) {
    counters_[static_cast<int>(id)].fetch_add(n, std::memory_order_relaxed);
  }
  void RecordMax(CounterId id, uint64_t v) {
    std::atomic<uint64_t>& c = counters_[static_cast<int>(id)];
    uint64_t cur = c.load(std::memory_order_relaxed);
    while (cur < v &&
           !c.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  uint64_t Load(CounterId id) const {
    return counters_[static_cast<int>(id)].load(std::memory_order_relaxed);
  }

  // Records one sample into a histogram: a relaxed bucket increment, a
  // relaxed sum add and a CAS-max — wait-free for the (exclusive) writer.
  void Record(HistogramId id, uint64_t v) {
    Hist& h = histograms_[static_cast<int>(id)];
    h.buckets[HistogramBucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    h.sum.fetch_add(v, std::memory_order_relaxed);
    uint64_t cur = h.max.load(std::memory_order_relaxed);
    while (cur < v &&
           !h.max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  // Concurrent-read snapshot of one histogram (folded by Metrics).
  void LoadInto(HistogramId id, HistogramData* out) const {
    const Hist& h = histograms_[static_cast<int>(id)];
    for (int b = 0; b < kNumHistogramBuckets; ++b) {
      out->buckets[b] += h.buckets[b].load(std::memory_order_relaxed);
    }
    out->sum += h.sum.load(std::memory_order_relaxed);
    out->max = std::max(out->max, h.max.load(std::memory_order_relaxed));
  }

 private:
  struct Hist {
    std::array<std::atomic<uint64_t>, kNumHistogramBuckets> buckets{};
    std::atomic<uint64_t> sum{};
    std::atomic<uint64_t> max{};
  };

  std::array<std::atomic<uint64_t>, kNumCounters> counters_{};
  std::array<Hist, kNumHistograms> histograms_{};
};

// Registry of shards for one evaluation. AcquireShard() is the only
// synchronized operation and is called once per worker-scoped object
// (engine, searcher) — never from a hot loop.
class Metrics {
 public:
  Metrics() = default;
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  // Returns a fresh shard with a stable address (lives as long as the
  // Metrics object).
  MetricsShard* AcquireShard() ECRPQ_EXCLUDES(mutex_);

  // Folds all shards (sum / max per CounterKindOf). Safe to call while
  // writers are active: the result is then a consistent-enough snapshot of
  // a moment in the run (each counter individually exact at load time).
  StatsReport Aggregate() const ECRPQ_EXCLUDES(mutex_);

  // Current folded value of a single counter — the cheap primitive budget
  // checks poll.
  uint64_t Total(CounterId id) const ECRPQ_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;  // Guards shards_ growth only.
  // deque: stable element addresses. Guarded as a container; the shards
  // themselves are atomics written lock-free by their owning workers.
  std::deque<MetricsShard> shards_ ECRPQ_GUARDED_BY(mutex_);
};

// Null-safe increment helpers: the disabled path is one predictable branch.
inline void Add(MetricsShard* shard, CounterId id, uint64_t n = 1) {
  if (shard != nullptr) shard->Add(id, n);
}
inline void RecordMax(MetricsShard* shard, CounterId id, uint64_t v) {
  if (shard != nullptr) shard->RecordMax(id, v);
}
inline void Record(MetricsShard* shard, HistogramId id, uint64_t v) {
  if (shard != nullptr) shard->Record(id, v);
}

// RAII phase timer: records the scope's wall time (ns) into a kTimeNs
// histogram on destruction. Against a null shard the clock is never read —
// the zero-overhead-when-disabled contract.
class ScopedTimer {
 public:
  ScopedTimer(MetricsShard* shard, HistogramId id) : shard_(shard), id_(id) {
    if (shard_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (shard_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    shard_->Record(
        id_, static_cast<uint64_t>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                     .count()));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricsShard* shard_;
  HistogramId id_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace obs
}  // namespace ecrpq

#endif  // ECRPQ_COMMON_METRICS_H_
