// Deterministic, seedable pseudo-random generator used by all randomized
// components (generators, property tests, benchmarks). We deliberately do not
// use std::mt19937 so that sequences are stable across standard libraries.
#ifndef ECRPQ_COMMON_RNG_H_
#define ECRPQ_COMMON_RNG_H_

#include <cstdint>

#include "common/check.h"
#include "common/hash.h"

namespace ecrpq {

// xoshiro256** — fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // Seed expansion via splitmix64, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      s_[i] = HashMix64(x);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be positive.
  uint64_t Below(uint64_t bound) {
    ECRPQ_CHECK_GT(bound, 0u);
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = ~uint64_t{0} - (~uint64_t{0} % bound);
    uint64_t x;
    do {
      x = Next();
    } while (x >= limit);
    return x % bound;
  }

  // Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    ECRPQ_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Bernoulli with probability p.
  bool Chance(double p) {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53 < p;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

}  // namespace ecrpq

#endif  // ECRPQ_COMMON_RNG_H_
