#include "common/trace.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace ecrpq {
namespace obs {

int CurrentTraceThreadId() {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Trace::Trace() : origin_(std::chrono::steady_clock::now()) {}

uint64_t Trace::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

void Trace::Record(const char* name, int tid, uint64_t start_ns,
                   uint64_t dur_ns) {
  MutexLock lock(mutex_);
  events_.push_back(Event{name, tid, start_ns, dur_ns, 0, false});
}

void Trace::Record(const char* name, int tid, uint64_t start_ns,
                   uint64_t dur_ns, uint64_t arg) {
  MutexLock lock(mutex_);
  events_.push_back(Event{name, tid, start_ns, dur_ns, arg, true});
}

size_t Trace::NumEvents() const {
  MutexLock lock(mutex_);
  return events_.size();
}

std::vector<Trace::Event> Trace::Events() const {
  std::vector<Event> snapshot;
  {
    MutexLock lock(mutex_);
    snapshot = events_;
  }
  std::sort(snapshot.begin(), snapshot.end(),
            [](const Event& a, const Event& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              return std::strcmp(a.name, b.name) < 0;
            });
  return snapshot;
}

namespace {

// Trace Event Format timestamps are microseconds; keep ns precision as a
// fraction.
std::string Micros(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

std::string EscapeJson(const char* s) {
  std::string out;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\') out.push_back('\\');
    out.push_back(*p);
  }
  return out;
}

std::string EscapeJson(std::string_view s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string Trace::ToJson(std::string_view trace_id) const {
  const std::vector<Event> events = Events();
  std::ostringstream out;
  out << "{";
  if (!trace_id.empty()) {
    out << "\"traceId\": \"" << EscapeJson(trace_id) << "\", ";
  }
  out << "\"traceEvents\": [\n";
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    out << "  {\"name\": \"" << EscapeJson(e.name)
        << "\", \"cat\": \"ecrpq\", \"ph\": \"X\", \"pid\": 0, \"tid\": "
        << e.tid << ", \"ts\": " << Micros(e.start_ns)
        << ", \"dur\": " << Micros(e.dur_ns);
    if (e.has_arg) out << ", \"args\": {\"v\": " << e.arg << "}";
    out << "}" << (i + 1 < events.size() ? "," : "") << "\n";
  }
  out << "], \"displayTimeUnit\": \"ms\"}\n";
  return out.str();
}

Status Trace::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open " + path + " for writing");
  out << ToJson();
  if (!out) return Status::Internal("short write to " + path);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Phase profiles.

namespace {

// Accumulates one thread's events (already sorted by start) into per-name
// stats using an interval-nesting stack: a span's self time is its duration
// minus the durations of its direct children on the same thread.
void AccumulateThread(const std::vector<Trace::Event>& events,
                      std::map<std::string, PhaseStats>* stats) {
  struct Open {
    const char* name;
    uint64_t end_ns;
    uint64_t child_ns = 0;
    uint64_t dur_ns;
  };
  std::vector<Open> stack;
  auto close_top = [&]() {
    const Open top = stack.back();
    stack.pop_back();
    PhaseStats& s = (*stats)[top.name];
    if (s.name.empty()) s.name = top.name;
    const uint64_t child = std::min(top.child_ns, top.dur_ns);
    s.self_ns += top.dur_ns - child;
    if (!stack.empty()) stack.back().child_ns += top.dur_ns;
  };
  for (const Trace::Event& e : events) {
    while (!stack.empty() && stack.back().end_ns <= e.start_ns) close_top();
    PhaseStats& s = (*stats)[e.name];
    if (s.name.empty()) s.name = e.name;
    ++s.count;
    s.total_ns += e.dur_ns;
    stack.push_back(Open{e.name, e.start_ns + e.dur_ns, 0, e.dur_ns});
  }
  while (!stack.empty()) close_top();
}

std::vector<PhaseStats> SortedStats(
    const std::map<std::string, PhaseStats>& stats) {
  std::vector<PhaseStats> out;
  out.reserve(stats.size());
  for (const auto& [name, s] : stats) out.push_back(s);
  std::sort(out.begin(), out.end(),
            [](const PhaseStats& a, const PhaseStats& b) {
              if (a.self_ns != b.self_ns) return a.self_ns > b.self_ns;
              return a.name < b.name;
            });
  return out;
}

std::string Millis(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

void AppendPhaseTable(const std::vector<PhaseStats>& phases,
                      uint64_t denom_ns, std::ostringstream* out) {
  size_t width = std::strlen("phase");
  for (const PhaseStats& p : phases) {
    width = std::max(width, p.name.size());
  }
  char line[160];
  std::snprintf(line, sizeof(line), "%-*s  %8s  %12s  %12s  %7s\n",
                static_cast<int>(width), "phase", "count", "total_ms",
                "self_ms", "self%");
  *out << line;
  for (const PhaseStats& p : phases) {
    const double pct =
        denom_ns == 0
            ? 0.0
            : 100.0 * static_cast<double>(p.self_ns) /
                  static_cast<double>(denom_ns);
    std::snprintf(line, sizeof(line), "%-*s  %8llu  %12s  %12s  %6.1f%%\n",
                  static_cast<int>(width), p.name.c_str(),
                  static_cast<unsigned long long>(p.count),
                  Millis(p.total_ns).c_str(), Millis(p.self_ns).c_str(), pct);
    *out << line;
  }
}

}  // namespace

uint64_t PhaseProfile::TotalSelfNs() const {
  uint64_t total = 0;
  for (const PhaseStats& p : folded) total += p.self_ns;
  return total;
}

std::string PhaseProfile::ToString() const {
  std::ostringstream out;
  AppendPhaseTable(folded, span_ns, &out);
  if (per_thread.size() > 1) {
    for (const auto& [tid, phases] : per_thread) {
      out << "\nthread " << tid << ":\n";
      AppendPhaseTable(phases, span_ns, &out);
    }
  }
  const uint64_t self = TotalSelfNs();
  const double coverage =
      span_ns == 0 ? 0.0
                   : 100.0 * static_cast<double>(self) /
                         static_cast<double>(span_ns);
  char line[96];
  std::snprintf(line, sizeof(line),
                "self-time coverage: %.1f%% of %s ms wall\n", coverage,
                Millis(span_ns).c_str());
  out << line;
  return out.str();
}

PhaseProfile BuildPhaseProfile(const Trace& trace) {
  PhaseProfile profile;
  const std::vector<Trace::Event> events = trace.Events();
  if (events.empty()) return profile;
  uint64_t first_start = ~uint64_t{0};
  uint64_t last_end = 0;
  std::map<int, std::vector<Trace::Event>> by_tid;
  for (const Trace::Event& e : events) {
    first_start = std::min(first_start, e.start_ns);
    last_end = std::max(last_end, e.start_ns + e.dur_ns);
    by_tid[e.tid].push_back(e);
  }
  profile.span_ns = last_end - first_start;
  std::map<std::string, PhaseStats> folded;
  for (auto& [tid, tid_events] : by_tid) {
    // The nesting stack needs parents before children: start ascending,
    // and at equal start the longer (enclosing) span first.
    std::stable_sort(tid_events.begin(), tid_events.end(),
                     [](const Trace::Event& a, const Trace::Event& b) {
                       if (a.start_ns != b.start_ns) {
                         return a.start_ns < b.start_ns;
                       }
                       return a.dur_ns > b.dur_ns;
                     });
    std::map<std::string, PhaseStats> per;
    AccumulateThread(tid_events, &per);
    for (const auto& [name, s] : per) {
      PhaseStats& f = folded[name];
      if (f.name.empty()) f.name = name;
      f.count += s.count;
      f.total_ns += s.total_ns;
      f.self_ns += s.self_ns;
    }
    profile.per_thread.emplace_back(tid, SortedStats(per));
  }
  profile.folded = SortedStats(folded);
  return profile;
}

// ---------------------------------------------------------------------------
// Minimal JSON parser for the schema check. Recognizes the full JSON value
// grammar (objects, arrays, strings, numbers, true/false/null); no unicode
// unescaping — the validator only needs structure and key presence.

namespace {

class JsonScanner {
 public:
  explicit JsonScanner(const std::string& text) : text_(text) {}

  // Parses one value; on success leaves pos_ after it.
  bool ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(nullptr);
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString(nullptr);
    if (c == 't') return ParseLiteral("true");
    if (c == 'f') return ParseLiteral("false");
    if (c == 'n') return ParseLiteral("null");
    return ParseNumber();
  }

  // Parses an object; records its top-level keys (and, for "traceEvents",
  // remembers the array span) via the callback when non-null.
  bool ParseObject(std::vector<std::string>* keys_out) {
    if (!Expect('{')) return false;
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      if (keys_out != nullptr) keys_out->push_back(key);
      SkipSpace();
      if (!Expect(':')) return false;
      if (!ParseValue()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Expect('}');
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  const std::string& error() const { return error_; }
  size_t pos() const { return pos_; }
  void set_pos(size_t p) { pos_ = p; }

  bool ParseString(std::string* out) {
    if (!Expect('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("dangling escape");
      } else if (out != nullptr) {
        out->push_back(c);
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a number");
    return true;
  }

  bool ParseArray() {
    if (!Expect('[')) return false;
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!ParseValue()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Expect(']');
    }
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool Expect(char c) {
    SkipSpace();
    if (Peek() != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool ParseLiteral(const char* lit) {
    const size_t len = std::strlen(lit);
    if (text_.compare(pos_, len, lit) != 0) {
      return Fail(std::string("expected ") + lit);
    }
    pos_ += len;
    return true;
  }

  bool Fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

// Validates one event object in place (scanner positioned at '{').
bool ValidateEventObject(JsonScanner* scanner, std::string* why) {
  // Re-parse the object manually so key/value types can be checked.
  scanner->SkipSpace();
  if (!scanner->Expect('{')) {
    *why = scanner->error();
    return false;
  }
  bool has_name = false, has_ph = false, has_ts = false, has_dur = false,
       has_pid = false, has_tid = false;
  scanner->SkipSpace();
  if (scanner->Peek() == '}') {
    *why = "empty trace event object";
    return false;
  }
  while (true) {
    scanner->SkipSpace();
    std::string key;
    if (!scanner->ParseString(&key)) {
      *why = scanner->error();
      return false;
    }
    scanner->SkipSpace();
    if (!scanner->Expect(':')) {
      *why = scanner->error();
      return false;
    }
    scanner->SkipSpace();
    const char c = scanner->Peek();
    const bool is_string = c == '"';
    const bool is_number =
        c == '-' || std::isdigit(static_cast<unsigned char>(c)) != 0;
    if (!scanner->ParseValue()) {
      *why = scanner->error();
      return false;
    }
    if (key == "name" || key == "ph" || key == "cat") {
      if (!is_string) {
        *why = "event field \"" + key + "\" is not a string";
        return false;
      }
      if (key == "name") has_name = true;
      if (key == "ph") has_ph = true;
    } else if (key == "ts" || key == "dur" || key == "pid" || key == "tid") {
      if (!is_number) {
        *why = "event field \"" + key + "\" is not a number";
        return false;
      }
      if (key == "ts") has_ts = true;
      if (key == "dur") has_dur = true;
      if (key == "pid") has_pid = true;
      if (key == "tid") has_tid = true;
    }
    scanner->SkipSpace();
    if (scanner->Peek() == ',') {
      scanner->set_pos(scanner->pos() + 1);
      continue;
    }
    if (!scanner->Expect('}')) {
      *why = scanner->error();
      return false;
    }
    break;
  }
  if (!has_name || !has_ph || !has_ts || !has_dur || !has_pid || !has_tid) {
    *why = "event object missing a required field "
           "(name/ph/ts/dur/pid/tid)";
    return false;
  }
  return true;
}

}  // namespace

Status ValidateTraceJson(const std::string& text, size_t min_events) {
  // Pass 1: the whole text must be one well-formed JSON value.
  {
    JsonScanner scanner(text);
    if (!scanner.ParseValue() || !scanner.AtEnd()) {
      return Status::ParseError(
          "trace is not well-formed JSON: " +
          (scanner.error().empty() ? "trailing garbage" : scanner.error()));
    }
  }
  // Pass 2: structural schema. Walk to the "traceEvents" array and check
  // each element.
  JsonScanner scanner(text);
  scanner.SkipSpace();
  if (scanner.Peek() != '{') {
    return Status::ParseError("trace top level is not a JSON object");
  }
  scanner.set_pos(scanner.pos() + 1);
  size_t num_events = 0;
  bool saw_trace_events = false;
  scanner.SkipSpace();
  if (scanner.Peek() != '}') {
    while (true) {
      scanner.SkipSpace();
      std::string key;
      if (!scanner.ParseString(&key)) {
        return Status::ParseError(scanner.error());
      }
      scanner.SkipSpace();
      if (!scanner.Expect(':')) return Status::ParseError(scanner.error());
      if (key == "traceEvents") {
        saw_trace_events = true;
        scanner.SkipSpace();
        if (scanner.Peek() != '[') {
          return Status::ParseError("\"traceEvents\" is not an array");
        }
        scanner.set_pos(scanner.pos() + 1);
        scanner.SkipSpace();
        if (scanner.Peek() == ']') {
          scanner.set_pos(scanner.pos() + 1);
        } else {
          while (true) {
            scanner.SkipSpace();
            if (scanner.Peek() != '{') {
              return Status::ParseError("trace event is not an object");
            }
            std::string why;
            if (!ValidateEventObject(&scanner, &why)) {
              return Status::ParseError(why);
            }
            ++num_events;
            scanner.SkipSpace();
            if (scanner.Peek() == ',') {
              scanner.set_pos(scanner.pos() + 1);
              continue;
            }
            if (!scanner.Expect(']')) {
              return Status::ParseError(scanner.error());
            }
            break;
          }
        }
      } else {
        if (!scanner.ParseValue()) return Status::ParseError(scanner.error());
      }
      scanner.SkipSpace();
      if (scanner.Peek() == ',') {
        scanner.set_pos(scanner.pos() + 1);
        continue;
      }
      if (!scanner.Expect('}')) return Status::ParseError(scanner.error());
      break;
    }
  }
  if (!saw_trace_events) {
    return Status::ParseError("trace has no \"traceEvents\" key");
  }
  if (num_events < min_events) {
    return Status::Invalid("trace holds " + std::to_string(num_events) +
                           " event(s), expected at least " +
                           std::to_string(min_events));
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace ecrpq
