// Compile-time concurrency contracts: Clang thread-safety (capability)
// annotations plus annotated synchronization primitives.
//
// Two layers live here:
//
//  1. The annotation macros (ECRPQ_GUARDED_BY, ECRPQ_REQUIRES, ...). Under
//     clang they expand to the capability-analysis attributes checked by
//     -Wthread-safety; under every other compiler they expand to nothing,
//     so the tree builds identically with GCC. The ECRPQ_ANALYZE=
//     thread-safety CMake mode (see the top-level CMakeLists.txt) compiles
//     with the analysis promoted to errors.
//
//  2. Annotated wrappers over the standard primitives: Mutex, MutexLock,
//     CondVar, and the phantom ExclusiveRole capability. Project rule
//     (enforced by tools/ecrpq_lint, rule naked-mutex): *all* locking goes
//     through these wrappers — a naked std::mutex or std::lock_guard
//     anywhere else in the tree is a lint error, because the analysis
//     cannot see through unannotated primitives and every unannotated
//     locking site is a hole in the compile-time story.
//
// Style guide (docs/STATIC_ANALYSIS.md has the long form):
//  - data owned by a lock       -> member annotated ECRPQ_GUARDED_BY(mu_);
//  - function called under lock -> declaration annotated ECRPQ_REQUIRES(mu_);
//  - function that must NOT be  -> ECRPQ_EXCLUDES(mu_) (deadlock guard);
//    called under the lock
//  - single-writer / freeze-then-share state with no runtime lock
//                               -> guard with an ExclusiveRole and assert it
//                                  at the contract's entry points.
#ifndef ECRPQ_COMMON_ANNOTATIONS_H_
#define ECRPQ_COMMON_ANNOTATIONS_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>  // NOLINT(ecrpq-naked-mutex) -- the one wrapping site.
#include <thread>

#include "common/check.h"

// ---------------------------------------------------------------------------
// Attribute macros. The vocabulary and expansion follow the Clang
// thread-safety documentation (and Abseil's thread_annotations.h); only the
// spelling is project-prefixed.

#if defined(__clang__) && !defined(SWIG)
#define ECRPQ_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ECRPQ_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// On a class: instances of this type are capabilities (lockable things).
#define ECRPQ_CAPABILITY(x) ECRPQ_THREAD_ANNOTATION(capability(x))

// On a class: RAII object that acquires a capability at construction and
// releases it at destruction (MutexLock below).
#define ECRPQ_SCOPED_CAPABILITY ECRPQ_THREAD_ANNOTATION(scoped_lockable)

// On a data member: reads and writes require holding the capability.
#define ECRPQ_GUARDED_BY(x) ECRPQ_THREAD_ANNOTATION(guarded_by(x))

// On a pointer member: the pointed-to data (not the pointer) is guarded.
#define ECRPQ_PT_GUARDED_BY(x) ECRPQ_THREAD_ANNOTATION(pt_guarded_by(x))

// On a function: the caller must hold the capability (shared: may read).
#define ECRPQ_REQUIRES(...) \
  ECRPQ_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ECRPQ_REQUIRES_SHARED(...) \
  ECRPQ_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// On a function: acquires / releases the capability.
#define ECRPQ_ACQUIRE(...) \
  ECRPQ_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ECRPQ_RELEASE(...) \
  ECRPQ_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ECRPQ_TRY_ACQUIRE(...) \
  ECRPQ_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// On a function: must be called while NOT holding the capability.
#define ECRPQ_EXCLUDES(...) ECRPQ_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// On a function: asserts (to the analysis) that the capability is held on
// entry, without acquiring it. This is the escape hatch that encodes
// contracts with no runtime lock — the caller promises exclusivity and the
// analysis checks every guarded access downstream. ECRPQ_ASSERT_EXCLUSIVE
// is the same attribute under the name the style guide uses for phantom
// (ExclusiveRole) capabilities.
#define ECRPQ_ASSERT_CAPABILITY(x) \
  ECRPQ_THREAD_ANNOTATION(assert_capability(x))
#define ECRPQ_ASSERT_EXCLUSIVE(x) ECRPQ_ASSERT_CAPABILITY(x)

// On a function returning a reference to a capability.
#define ECRPQ_RETURN_CAPABILITY(x) ECRPQ_THREAD_ANNOTATION(lock_returned(x))

// On a function: opt out of the analysis (wrapper internals only).
#define ECRPQ_NO_THREAD_SAFETY_ANALYSIS \
  ECRPQ_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ecrpq {

// ---------------------------------------------------------------------------
// Mutex: std::mutex with capability annotations and owner tracking.
//
// The owner id makes AssertHeld() real in every build mode (an ECRPQ_CHECK,
// per the repo's CheckInvariants convention), so annotation misuse that
// clang would catch at compile time also dies at runtime under GCC — the
// belt to the analysis's suspenders. Tracking is two relaxed atomic stores
// per lock/unlock, noise next to the lock operation itself.
class ECRPQ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ECRPQ_ACQUIRE() {
    mu_.lock();
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }

  void Unlock() ECRPQ_RELEASE() {
    owner_.store(std::thread::id(), std::memory_order_relaxed);
    mu_.unlock();
  }

  bool TryLock() ECRPQ_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
    return true;
  }

  // Dies unless the calling thread holds this mutex. Fires in every build
  // mode; tests use it to demonstrate misuse detection (annotations_test).
  void AssertHeld() const ECRPQ_ASSERT_CAPABILITY(this) {
    ECRPQ_CHECK(owner_.load(std::memory_order_relaxed) ==
                std::this_thread::get_id())
        << "Mutex::AssertHeld: calling thread does not hold the mutex";
  }

 private:
  friend class CondVar;

  // BasicLockable view of the mutex for condition_variable_any: keeps the
  // owner id honest across the unlock/sleep/relock inside a wait. Analysis
  // is off here — from the caller's point of view CondVar::Wait holds the
  // mutex before and after, which ECRPQ_REQUIRES on Wait() captures.
  class WaitView {
   public:
    explicit WaitView(Mutex& mu) : mu_(mu) {}
    void lock() ECRPQ_NO_THREAD_SAFETY_ANALYSIS {
      mu_.mu_.lock();
      mu_.owner_.store(std::this_thread::get_id(),
                       std::memory_order_relaxed);
    }
    void unlock() ECRPQ_NO_THREAD_SAFETY_ANALYSIS {
      mu_.owner_.store(std::thread::id(), std::memory_order_relaxed);
      mu_.mu_.unlock();
    }

   private:
    Mutex& mu_;
  };

  std::mutex mu_;  // NOLINT(ecrpq-naked-mutex) -- the wrapped primitive.
  std::atomic<std::thread::id> owner_{};
};

// RAII lock for a Mutex. The scoped-capability annotation lets the analysis
// treat the guarded region as the lock object's lifetime.
class ECRPQ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ECRPQ_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() ECRPQ_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable paired with Mutex. No predicate overload on purpose:
// a lambda predicate is a separate function the analysis cannot see into,
// so waits are written as explicit `while (!cond) cv.Wait(mu);` loops whose
// condition reads sit in the annotated caller.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases mu and sleeps; re-acquires mu before returning.
  // May wake spuriously — always wait in a condition loop.
  void Wait(Mutex& mu) ECRPQ_REQUIRES(mu) {
    Mutex::WaitView view(mu);
    cv_.wait(view);
  }

  // Like Wait, but gives up at `deadline`. Returns true when the deadline
  // passed (the caller's condition may STILL have become true in the same
  // instant — always re-check it), false on a possibly-spurious earlier
  // wakeup. Used by bounded-deadline waits (admission-control queueing).
  bool WaitUntil(Mutex& mu, std::chrono::steady_clock::time_point deadline)
      ECRPQ_REQUIRES(mu) {
    Mutex::WaitView view(mu);
    return cv_.wait_until(view, deadline) == std::cv_status::timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // NOLINTNEXTLINE(ecrpq-naked-mutex) -- the wrapped primitive.
  std::condition_variable_any cv_;
};

// ---------------------------------------------------------------------------
// ExclusiveRole: a phantom capability — a compile-time token with no runtime
// lock — for single-writer / build-then-freeze contracts.
//
// Usage (GraphDb's lazy CSR build is the in-tree example): annotate the
// state covered by the contract ECRPQ_GUARDED_BY(role_), and have each
// entry point that is allowed to touch it call role_.Assert() (or carry
// ECRPQ_ASSERT_EXCLUSIVE(role_) on its declaration). The assertion is free
// at runtime; its value is that any *new* code path reaching the guarded
// state without passing an asserting entry point fails -Wthread-safety —
// the contract cannot silently grow un-audited access sites.
class ECRPQ_CAPABILITY("role") ExclusiveRole {
 public:
  // Copyable on purpose (unlike Mutex): the role is a compile-time token
  // with no identity, and the owning objects (GraphDb, TupleSearcher) must
  // stay movable/copyable.
  ExclusiveRole() = default;

  // Declares (to the analysis) that the caller is entitled to the role:
  // it is either the single build-phase writer, or a reader in the frozen
  // phase where the guarded state is immutable. Documentation + analysis
  // anchor; no runtime effect.
  void Assert() const ECRPQ_ASSERT_CAPABILITY(this) {}
};

}  // namespace ecrpq

#endif  // ECRPQ_COMMON_ANNOTATIONS_H_
