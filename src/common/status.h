// Status: lightweight error propagation for non-exceptional failure paths.
//
// Modeled on the Status idiom used by Apache Arrow and RocksDB: operations
// that can fail due to bad input (malformed regex, arity overflow, unknown
// symbol, ...) return Status or Result<T> (see result.h) rather than
// throwing. Programmer errors (violated invariants) use ECRPQ_DCHECK.
#ifndef ECRPQ_COMMON_STATUS_H_
#define ECRPQ_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace ecrpq {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotImplemented = 3,
  kParseError = 4,
  kCapacityExceeded = 5,
  kNotFound = 6,
  kInternal = 7,
  kResourceExhausted = 8,
};

// Returns a human-readable name ("Invalid argument", ...) for a code.
const char* StatusCodeToString(StatusCode code);

// A Status is either OK (cheap: a null pointer) or carries a code + message.
//
// [[nodiscard]]: a dropped Status is a swallowed error — every call site
// must propagate (ECRPQ_RETURN_NOT_OK), check, or Check() it. The
// ECRPQ_ANALYZE and default builds promote the discard warning to an error
// (-Werror=unused-result in the top-level CMakeLists.txt).
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK.
  Status(StatusCode code, std::string msg);

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  // An evaluation budget (states, memory, deadline) was exhausted; see
  // common/obs.h. The caller's obs::Session holds the partial StatsReport.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const;

  std::string ToString() const;

  // Dies with the status message if not OK. For use in tests/examples and at
  // startup, where failure is unrecoverable.
  void Check() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<const State> state_;  // null == OK
};

std::ostream& operator<<(std::ostream& os, const Status& s);

}  // namespace ecrpq

// Propagates a non-OK Status to the caller.
#define ECRPQ_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::ecrpq::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (0)

#endif  // ECRPQ_COMMON_STATUS_H_
