// Result<T>: a value or a non-OK Status, in the style of arrow::Result.
#ifndef ECRPQ_COMMON_RESULT_H_
#define ECRPQ_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace ecrpq {

// [[nodiscard]]: discarding a Result drops its error channel; see the note
// on Status in common/status.h.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit conversions from values and from error Statuses keep call sites
  // terse: `return 42;` or `return Status::Invalid(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                          // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    ECRPQ_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& {
    ECRPQ_CHECK(ok()) << "ValueOrDie on error Result: " << status_.ToString();
    return *value_;
  }
  T& ValueOrDie() & {
    ECRPQ_CHECK(ok()) << "ValueOrDie on error Result: " << status_.ToString();
    return *value_;
  }
  // By value on rvalue Results: returning T&& into the dying temporary is a
  // dangling-reference trap (e.g. range-for over `f().ValueOrDie()`).
  T ValueOrDie() && {
    ECRPQ_CHECK(ok()) << "ValueOrDie on error Result: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  Status status_;  // OK iff value_ present.
  std::optional<T> value_;
};

}  // namespace ecrpq

// ECRPQ_ASSIGN_OR_RAISE(lhs, expr): evaluates `expr` (a Result<T>); on error
// returns the Status from the enclosing function, otherwise moves the value
// into `lhs` (which may be a declaration).
#define ECRPQ_ASSIGN_OR_RAISE_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueOrDie();

#define ECRPQ_ASSIGN_OR_RAISE_CONCAT_INNER(a, b) a##b
#define ECRPQ_ASSIGN_OR_RAISE_CONCAT(a, b) \
  ECRPQ_ASSIGN_OR_RAISE_CONCAT_INNER(a, b)

#define ECRPQ_ASSIGN_OR_RAISE(lhs, expr)                                     \
  ECRPQ_ASSIGN_OR_RAISE_IMPL(                                                \
      ECRPQ_ASSIGN_OR_RAISE_CONCAT(_ecrpq_result_, __LINE__), lhs, expr)

#endif  // ECRPQ_COMMON_RESULT_H_
