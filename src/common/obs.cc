#include "common/obs.h"

#include <string>

#include "common/check.h"

namespace ecrpq {
namespace obs {

void EvalBudget::CheckInvariants() const {
  ECRPQ_CHECK(!Unlimited())
      << "arming an EvalBudget with every limit unset (0 = unlimited on "
         "all axes) is a programmer error";
  ECRPQ_CHECK_GE(timeout_millis, 0);
}

void Session::SetBudget(const EvalBudget& budget) {
  budget.CheckInvariants();
  MutexLock lock(arm_mutex_);
  budget_ = budget;
  if (budget.timeout_millis > 0) {
    const auto new_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(budget.timeout_millis);
    if (has_deadline_) {
      // Deadline monotonicity: a budget may be tightened mid-flight (e.g.
      // an outer layer clamping an inner one) but never loosened — workers
      // cache no deadline state, so a later deadline would retroactively
      // un-trip decisions already taken.
      ECRPQ_CHECK(new_deadline <= deadline_)
          << "re-arming an EvalBudget may only keep or tighten the "
             "deadline";
    }
    deadline_ = new_deadline;
    has_deadline_ = true;
  }
  armed_ = true;
}

bool Session::CheckBudget() {
  MutexLock lock(arm_mutex_);
  if (!armed_) return false;
  if (Exhausted()) return true;
  if (budget_.max_product_states != 0 &&
      metrics_.Total(CounterId::kProductStatesExpanded) >=
          budget_.max_product_states) {
    Trip("max_product_states");
  } else if (budget_.max_memory_bytes != 0 &&
             metrics_.Total(CounterId::kVisitedBytes) >=
                 budget_.max_memory_bytes) {
    Trip("max_memory_bytes");
  } else if (has_deadline_ &&
             std::chrono::steady_clock::now() >= deadline_) {
    Trip("deadline");
  }
  return Exhausted();
}

void Session::Trip(const char* reason) {
  reason_.store(reason, std::memory_order_relaxed);
  exhausted_.store(true, std::memory_order_relaxed);
  cancel_.Cancel();
}

Status Session::ExhaustedStatus() const {
  if (!Exhausted()) return Status::OK();
  const char* reason = exhausted_reason();
  return Status::ResourceExhausted(
      std::string("evaluation budget exhausted: ") +
      (reason != nullptr ? reason : "unknown limit"));
}

}  // namespace obs
}  // namespace ecrpq
