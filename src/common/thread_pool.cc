#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "common/check.h"

namespace ecrpq {

void WaitGroup::Add(int n) {
  MutexLock lock(mutex_);
  count_ += n;
  ECRPQ_CHECK_GE(count_, 0);
}

void WaitGroup::Done() {
  MutexLock lock(mutex_);
  ECRPQ_CHECK_GT(count_, 0);
  if (--count_ == 0) cv_.NotifyAll();
}

void WaitGroup::Wait() {
  MutexLock lock(mutex_);
  while (count_ != 0) cv_.Wait(mutex_);
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  if (num_threads_ > 1) {
    workers_.reserve(num_threads_);
    for (int i = 0; i < num_threads_; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::DefaultNumThreads() {
  // getenv is not thread-safe against concurrent setenv (concurrency-mt-
  // unsafe), but nothing in this process mutates the environment after
  // main() starts — reads of an immutable environment are safe.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("ECRPQ_THREADS"); env != nullptr) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0 && parsed <= 1024) {
      return static_cast<int>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ThreadPool::ResolveNumThreads(int requested) {
  if (requested == 0) return DefaultNumThreads();
  return requested < 1 ? 1 : requested;
}

ThreadPool* ThreadPool::Shared(int threads) {
  if (threads < 1) threads = 1;
  // Keyed by size: tests and options legitimately ask for different pool
  // sizes in one process (the determinism suite runs 1/2/4/8). A handful of
  // sizes ever occur, so the map stays tiny; the pools join their workers
  // at static destruction.
  struct Registry {
    Mutex mutex;
    std::map<int, std::unique_ptr<ThreadPool>> pools ECRPQ_GUARDED_BY(mutex);
  };
  // Function-local static: destroyed (joining all workers) at process
  // exit, after main() returns — no leaks under LSan, no racing shutdown.
  static Registry registry;
  MutexLock lock(registry.mutex);
  std::unique_ptr<ThreadPool>& pool = registry.pools[threads];
  if (pool == nullptr) pool = std::make_unique<ThreadPool>(threads);
  return pool.get();
}

void ThreadPool::Submit(std::function<void()> fn) {
  if (workers_.empty()) {
    fn();
    return;
  }
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(fn));
  }
  cv_.NotifyOne();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto next = std::make_shared<std::atomic<size_t>>(0);
  WaitGroup wg;
  const size_t drains =
      std::min(static_cast<size_t>(num_threads_), n);
  auto drain = [next, &fn, n] {
    for (size_t i = next->fetch_add(1, std::memory_order_relaxed); i < n;
         i = next->fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };
  wg.Add(static_cast<int>(drains));
  for (size_t t = 0; t < drains; ++t) {
    Submit([drain, &wg] {
      drain();
      wg.Done();
    });
  }
  wg.Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutdown_ && queue_.empty()) cv_.Wait(mutex_);
      if (queue_.empty()) return;  // shutdown_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace ecrpq
