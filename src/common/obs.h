// ecrpq::obs — the observability & resource-governance session threaded
// through the engines.
//
// One obs::Session spans one evaluation (or a batch the caller wants
// observed together). It bundles:
//  - Metrics: lock-free per-worker counter shards, deterministically
//    aggregated into a StatsReport (common/metrics.h);
//  - Trace: RAII spans exported as chrome://tracing JSON, opt-in via
//    EnableTrace() (common/trace.h);
//  - EvalBudget: cooperative resource limits (product states, visited-set
//    memory, wall-clock deadline). Workers poll CheckBudget() at a coarse
//    stride; when a limit is crossed the session trips an atomic flag and
//    its CancelToken, in-flight work unwinds, and the evaluation entry
//    point returns Status::ResourceExhausted. The partial StatsReport
//    stays readable on the session (Report()) — the "what had it done so
//    far" channel for budget post-mortems.
//
// Determinism contract: attaching a session with metrics/tracing (no
// budget) never changes answers, cutoff behavior, or callback sequences —
// observation only reads. A budget can of course cut an evaluation short;
// the outcome is then either the exact un-budgeted result or a clean
// ResourceExhausted, never a third behavior.
//
// Sessions are not reusable across evaluations that need separate reports:
// counters accumulate monotonically.
#ifndef ECRPQ_COMMON_OBS_H_
#define ECRPQ_COMMON_OBS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>

#include "common/annotations.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace ecrpq {
namespace obs {

// Cooperative resource limits. 0 always means "no limit on this axis";
// arming a budget requires at least one axis to be limited (CheckInvariants
// fires otherwise — arming an all-unlimited budget is a programmer error).
struct EvalBudget {
  // Evaluation-wide cap on product states interned across every search
  // (kProductStatesExpanded). Distinct from the *per-search* abort of
  // EvalOptions::max_product_states, which predates budgets and returns an
  // aborted-but-OK result.
  uint64_t max_product_states = 0;
  // Cap on bytes allocated for visited-set tracking (kVisitedBytes).
  uint64_t max_memory_bytes = 0;
  // Wall-clock limit, applied from the moment the budget is armed
  // (Session::SetBudget). Must be non-negative.
  int64_t timeout_millis = 0;

  bool Unlimited() const {
    return max_product_states == 0 && max_memory_bytes == 0 &&
           timeout_millis == 0;
  }

  // Always-on invariant checks (PR 1 dcheck.h pattern: the method uses
  // ECRPQ_CHECK so tests can demonstrate the failure in every build mode;
  // Session::SetBudget invokes it on the arming path).
  void CheckInvariants() const;
};

class Session {
 public:
  Session() = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  // Tracing is off (trace() == nullptr, spans are no-ops) until enabled.
  void EnableTrace() { trace_enabled_ = true; }
  Trace* trace() { return trace_enabled_ ? &trace_ : nullptr; }

  // Request-scoped trace id (wire-propagated by the query service, empty
  // outside a service context). Set once before evaluation starts; spans
  // recorded under this session belong to this id, which is what makes
  // concurrent sessions' traces linkable after export
  // (Trace::ToJson(trace_id)).
  void SetTraceId(std::string trace_id) { trace_id_ = std::move(trace_id); }
  const std::string& trace_id() const { return trace_id_; }

  // Arms (or re-arms) the budget. Invariants, enforced in every build mode:
  //  - at least one limit is non-zero and timeout_millis >= 0
  //    (EvalBudget::CheckInvariants);
  //  - deadline monotonicity: re-arming may only keep or tighten an
  //    already-armed deadline, never push it later.
  // Arming state lives under arm_mutex_ so a re-arm can race a worker's
  // CheckBudget() poll without tearing.
  void SetBudget(const EvalBudget& budget) ECRPQ_EXCLUDES(arm_mutex_);
  bool armed() const ECRPQ_EXCLUDES(arm_mutex_) {
    MutexLock lock(arm_mutex_);
    return armed_;
  }
  // By value: a reference could dangle across a concurrent re-arm.
  EvalBudget budget() const ECRPQ_EXCLUDES(arm_mutex_) {
    MutexLock lock(arm_mutex_);
    return budget_;
  }

  // Fast path for hot loops: has some limit already tripped?
  bool Exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }

  // Re-evaluates the armed limits against the current counters and clock;
  // trips Exhausted() and the cancel token when one is crossed. Returns
  // Exhausted(). Cheap enough for a ~1k-iteration stride, not for every
  // iteration. No-op (false) when no budget is armed.
  bool CheckBudget() ECRPQ_EXCLUDES(arm_mutex_);

  // Fired when the budget trips; engines already polling a CancelToken can
  // share this one.
  CancelToken* cancel_token() { return &cancel_; }

  // "max_product_states", "max_memory_bytes" or "deadline"; nullptr while
  // not exhausted.
  const char* exhausted_reason() const {
    return reason_.load(std::memory_order_relaxed);
  }

  // ResourceExhausted carrying the reason, or OK when not exhausted.
  Status ExhaustedStatus() const;

  // Deterministic aggregate of everything counted so far — complete after
  // a successful run, partial after a budget trip.
  StatsReport Report() const { return metrics_.Aggregate(); }

  // Top-down time breakdown (self vs. cumulative per phase, per-thread and
  // folded) derived from the spans recorded so far. Meaningful only after
  // EnableTrace(); with tracing off the profile is empty. Qualified return
  // type: the method name shadows obs::PhaseProfile inside the class.
  obs::PhaseProfile PhaseProfile() const { return BuildPhaseProfile(trace_); }

 private:
  void Trip(const char* reason);

  Metrics metrics_;
  Trace trace_;
  bool trace_enabled_ = false;
  std::string trace_id_;

  // Arming state: written by SetBudget, read by every CheckBudget poll.
  // The tripped flag itself stays lock-free (exhausted_ below) so the
  // Exhausted() fast path costs one relaxed load.
  mutable Mutex arm_mutex_;
  EvalBudget budget_ ECRPQ_GUARDED_BY(arm_mutex_);
  bool armed_ ECRPQ_GUARDED_BY(arm_mutex_) = false;
  bool has_deadline_ ECRPQ_GUARDED_BY(arm_mutex_) = false;
  std::chrono::steady_clock::time_point deadline_
      ECRPQ_GUARDED_BY(arm_mutex_){};

  std::atomic<bool> exhausted_{false};
  std::atomic<const char*> reason_{nullptr};
  CancelToken cancel_;
};

}  // namespace obs
}  // namespace ecrpq

#endif  // ECRPQ_COMMON_OBS_H_
