#include "common/json.h"

#include <cmath>
#include <cstdlib>

#include "common/check.h"

namespace ecrpq {
namespace json {

bool Value::AsBool() const {
  ECRPQ_CHECK(is_bool()) << "json::Value is not a bool";
  return bool_;
}

double Value::AsNumber() const {
  ECRPQ_CHECK(is_number()) << "json::Value is not a number";
  return number_;
}

uint64_t Value::AsUint64() const {
  const double d = AsNumber();
  if (!(d >= 0) || d >= 18446744073709551616.0) return 0;
  return static_cast<uint64_t>(d);
}

const std::string& Value::AsString() const {
  ECRPQ_CHECK(is_string()) << "json::Value is not a string";
  return string_;
}

const Array& Value::AsArray() const {
  ECRPQ_CHECK(is_array()) << "json::Value is not an array";
  return *array_;
}

const Object& Value::AsObject() const {
  ECRPQ_CHECK(is_object()) << "json::Value is not an object";
  return *object_;
}

const Value* Value::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : *object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool Value::GetNumber(const std::string& key, double* out) const {
  const Value* v = Find(key);
  if (v == nullptr || !v->is_number()) return false;
  *out = v->AsNumber();
  return true;
}

bool Value::GetUint64(const std::string& key, uint64_t* out) const {
  const Value* v = Find(key);
  if (v == nullptr || !v->is_number()) return false;
  *out = v->AsUint64();
  return true;
}

bool Value::GetString(const std::string& key, std::string* out) const {
  const Value* v = Find(key);
  if (v == nullptr || !v->is_string()) return false;
  *out = v->AsString();
  return true;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Value> Document() {
    SkipWs();
    ECRPQ_ASSIGN_OR_RAISE(Value v, ParseValue(0));
    SkipWs();
    if (pos_ != text_.size()) return Error("trailing characters");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::ParseError("JSON: " + what + " at byte " +
                              std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Literal(const char* lit) {
    size_t p = pos_;
    for (const char* c = lit; *c != '\0'; ++c, ++p) {
      if (p >= text_.size() || text_[p] != *c) return false;
    }
    pos_ = p;
    return true;
  }

  Result<Value> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case 'n':
        if (Literal("null")) return Value();
        return Error("bad literal");
      case 't':
        if (Literal("true")) return Value(true);
        return Error("bad literal");
      case 'f':
        if (Literal("false")) return Value(false);
        return Error("bad literal");
      case '"':
        return ParseString();
      case '[':
        return ParseArray(depth);
      case '{':
        return ParseObject(depth);
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        return Error("unexpected character");
    }
  }

  Result<Value> ParseNumber() {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double d = std::strtod(begin, &end);
    if (end == begin || !std::isfinite(d)) return Error("bad number");
    pos_ += static_cast<size_t>(end - begin);
    return Value(d);
  }

  Result<Value> ParseString() {
    ++pos_;  // Opening quote.
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Value(std::move(out));
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad \\u escape");
          }
          // UTF-8 encode (BMP only; the repo's writers never emit
          // surrogate pairs).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  Result<Value> ParseArray(int depth) {
    ++pos_;  // '['
    Array items;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Value(std::move(items));
    }
    while (true) {
      SkipWs();
      ECRPQ_ASSIGN_OR_RAISE(Value v, ParseValue(depth + 1));
      items.push_back(std::move(v));
      SkipWs();
      if (pos_ >= text_.size()) return Error("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') return Value(std::move(items));
      if (c != ',') return Error("expected ',' or ']'");
    }
  }

  Result<Value> ParseObject(int depth) {
    ++pos_;  // '{'
    Object members;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Value(std::move(members));
    }
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected member name");
      }
      ECRPQ_ASSIGN_OR_RAISE(Value key, ParseString());
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_++] != ':') {
        return Error("expected ':'");
      }
      SkipWs();
      ECRPQ_ASSIGN_OR_RAISE(Value v, ParseValue(depth + 1));
      members.emplace_back(key.AsString(), std::move(v));
      SkipWs();
      if (pos_ >= text_.size()) return Error("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') return Value(std::move(members));
      if (c != ',') return Error("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(const std::string& text) {
  return Parser(text).Document();
}

}  // namespace json
}  // namespace ecrpq
