#include "common/telemetry.h"

#include <sstream>

namespace ecrpq {
namespace obs {

namespace {

void AppendCounter(const char* name, CounterKind kind, uint64_t value,
                   std::ostringstream* out) {
  // Max-folded counters (peaks) are gauges in Prometheus terms: they can
  // stay flat or be out-raced, they are not monotone sums.
  *out << "# TYPE ecrpq_" << name
       << (kind == CounterKind::kMax ? " gauge\n" : " counter\n");
  *out << "ecrpq_" << name << " " << value << "\n";
}

void AppendHistogram(const char* name, const HistogramData& h,
                     std::ostringstream* out) {
  *out << "# TYPE ecrpq_" << name << " summary\n";
  *out << "ecrpq_" << name << "_count " << h.Count() << "\n";
  *out << "ecrpq_" << name << "_sum " << h.sum << "\n";
  *out << "ecrpq_" << name << "{quantile=\"0.5\"} " << h.Percentile(0.50)
       << "\n";
  *out << "ecrpq_" << name << "{quantile=\"0.9\"} " << h.Percentile(0.90)
       << "\n";
  *out << "ecrpq_" << name << "{quantile=\"0.99\"} " << h.Percentile(0.99)
       << "\n";
  *out << "ecrpq_" << name << "_max " << h.max << "\n";
}

}  // namespace

std::string RenderStatsExposition(const StatsReport& report) {
  std::ostringstream out;
  for (int i = 0; i < kNumCounters; ++i) {
    const CounterId id = static_cast<CounterId>(i);
    AppendCounter(CounterName(id), CounterKindOf(id), report.values[i], &out);
  }
  for (int i = 0; i < kNumHistograms; ++i) {
    const HistogramId id = static_cast<HistogramId>(i);
    const HistogramData& h = report.histograms[i];
    if (h.Empty()) continue;  // Match StatsReport: silent when unused.
    AppendHistogram(HistogramName(id), h, &out);
  }
  return out.str();
}

void TelemetryRegistry::RegisterGroup(const std::string& prefix, GroupFn fn) {
  MutexLock lock(mutex_);
  groups_.push_back(Group{prefix, std::move(fn)});
}

std::string TelemetryRegistry::Render(const StatsReport& report) const {
  std::ostringstream out;
  out << RenderStatsExposition(report);
  // Snapshot the provider list, then run the callbacks unlocked: a provider
  // may itself take locks (admission mutex) and must not nest under ours.
  std::vector<Group> groups;
  {
    MutexLock lock(mutex_);
    groups = groups_;
  }
  for (const Group& group : groups) {
    const GaugeGroup values = group.fn();
    for (const auto& [suffix, value] : values) {
      out << "# TYPE ecrpq_" << group.prefix << suffix << " gauge\n";
      out << "ecrpq_" << group.prefix << suffix << " " << value << "\n";
    }
  }
  return out.str();
}

}  // namespace obs
}  // namespace ecrpq
