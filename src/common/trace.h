// Tracing: RAII spans recorded into a chrome://tracing-compatible JSON
// trace (the "Trace Event Format", complete events, ph:"X").
//
// A Span measures one region on one thread; on destruction it appends a
// completed event to the owning Trace. Span construction against a null
// Trace* is a no-op (two stores), which is how observability-disabled runs
// pay nothing: the engine holds a null trace pointer and every span
// collapses.
//
// Span names must be string literals (or otherwise outlive the Trace);
// events store the pointer, not a copy. The optional `arg` renders as
// {"args":{"v":N}} — used for branch indices, component ids, sizes.
//
// Load a written file in chrome://tracing or https://ui.perfetto.dev.
#ifndef ECRPQ_COMMON_TRACE_H_
#define ECRPQ_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/status.h"

namespace ecrpq {
namespace obs {

// Small dense id for the calling thread, stable for the thread's lifetime
// (process-wide numbering; the main thread is usually 0).
int CurrentTraceThreadId();

class Trace {
 public:
  struct Event {
    const char* name;
    int tid;
    uint64_t start_ns;  // Relative to the Trace's construction.
    uint64_t dur_ns;
    uint64_t arg;
    bool has_arg;
  };

  Trace();
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  // Appends a completed event. Thread-safe.
  void Record(const char* name, int tid, uint64_t start_ns, uint64_t dur_ns)
      ECRPQ_EXCLUDES(mutex_);
  void Record(const char* name, int tid, uint64_t start_ns, uint64_t dur_ns,
              uint64_t arg) ECRPQ_EXCLUDES(mutex_);

  // Nanoseconds since this Trace was constructed.
  uint64_t NowNs() const;

  // Snapshot, sorted by (start, tid).
  size_t NumEvents() const ECRPQ_EXCLUDES(mutex_);
  std::vector<Event> Events() const ECRPQ_EXCLUDES(mutex_);

  // {"traceEvents":[...],"displayTimeUnit":"ms"} — events sorted by
  // (start, tid, name) so output layout is stable for a given set of spans.
  // A non-empty `trace_id` adds a top-level "traceId" key, which is how the
  // query service links one request's exported trace back to the wire
  // trace_id it was submitted under (extra top-level keys are fine for both
  // chrome://tracing and ValidateTraceJson).
  std::string ToJson(std::string_view trace_id = {}) const;
  Status WriteFile(const std::string& path) const;

 private:
  std::chrono::steady_clock::time_point origin_;
  mutable Mutex mutex_;
  std::vector<Event> events_ ECRPQ_GUARDED_BY(mutex_);
};

// RAII span. Usage:
//   obs::Span span(trace, "ReduceToCq");          // trace may be null
//   obs::Span span(trace, "branch", branch_index);
class Span {
 public:
  Span(Trace* trace, const char* name)
      : trace_(trace), name_(name), has_arg_(false), arg_(0) {
    if (trace_ != nullptr) start_ns_ = trace_->NowNs();
  }
  Span(Trace* trace, const char* name, uint64_t arg)
      : trace_(trace), name_(name), has_arg_(true), arg_(arg) {
    if (trace_ != nullptr) start_ns_ = trace_->NowNs();
  }
  ~Span() {
    if (trace_ == nullptr) return;
    const uint64_t end_ns = trace_->NowNs();
    if (has_arg_) {
      trace_->Record(name_, CurrentTraceThreadId(), start_ns_,
                     end_ns - start_ns_, arg_);
    } else {
      trace_->Record(name_, CurrentTraceThreadId(), start_ns_,
                     end_ns - start_ns_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Trace* trace_;
  const char* name_;
  bool has_arg_;
  uint64_t arg_;
  uint64_t start_ns_ = 0;
};

// Aggregated per-phase timing derived from a Trace's spans.
//
// "Cumulative" (total_ns) is the summed duration of every span with that
// name; "self" (self_ns) subtracts the time spent in spans nested inside it
// on the same thread, so for a properly nested single-thread trace the
// self times of all phases telescope to exactly the duration of the
// top-level span(s) — the invariant behind `ecrpq_cli profile`'s coverage
// line. Spans on different threads never nest into each other, so on a
// multi-thread trace the per-thread sections are exact while the folded
// self-time sum can exceed wall time (concurrent phases both count).
struct PhaseStats {
  std::string name;
  uint64_t count = 0;
  uint64_t total_ns = 0;  // Cumulative: sum of span durations.
  uint64_t self_ns = 0;   // Cumulative minus nested same-thread spans.
};

struct PhaseProfile {
  // Per-phase stats folded across threads, sorted by self_ns descending
  // (ties by name, so output is stable).
  std::vector<PhaseStats> folded;
  // The same breakdown per trace thread id, phases in the same order
  // discipline.
  std::vector<std::pair<int, std::vector<PhaseStats>>> per_thread;
  // First span start to last span end across the whole trace.
  uint64_t span_ns = 0;

  uint64_t TotalSelfNs() const;
  // Aligned table: phase, count, cumulative ms, self ms, self%; followed by
  // per-thread sections when more than one thread recorded spans, and a
  // closing "self-time coverage" line (TotalSelfNs / span_ns).
  std::string ToString() const;
};

// Builds the profile from the trace's current events. Deterministic for a
// fixed set of events.
PhaseProfile BuildPhaseProfile(const Trace& trace);

// Schema check for an exported trace: the text must parse as JSON, carry a
// top-level "traceEvents" array, and every event must be an object with
// string "name"/"ph" and numeric "ts"/"dur"/"pid"/"tid" fields. With
// `min_events` > 0, additionally fails when the trace holds fewer events —
// the "non-empty trace" gate used by tools/ci.sh.
Status ValidateTraceJson(const std::string& text, size_t min_events = 0);

}  // namespace obs
}  // namespace ecrpq

#endif  // ECRPQ_COMMON_TRACE_H_
