// EventLog: append-only JSON-lines sink for structured service events
// (slow queries, budget trips, protocol errors).
//
// The log is a dumb, thread-safe appender: callers hand it one complete
// JSON object per event (no trailing newline) and it writes exactly one
// line per call, flushed, under one mutex — so concurrent sessions never
// interleave bytes within a line and a crash loses at most the event being
// written. Record CONSTRUCTION lives with the callers (the query service
// builds its records in service terms); this file knows nothing about the
// wire protocol.
//
// Schema of the service's query records (documented for consumers;
// docs/OBSERVABILITY.md carries the full version):
//   {"event":"query","ts_ms":...,"trace_id":"...","request_id":"...", ...}
#ifndef ECRPQ_COMMON_EVENT_LOG_H_
#define ECRPQ_COMMON_EVENT_LOG_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>

#include "common/annotations.h"
#include "common/status.h"

namespace ecrpq {
namespace obs {

class EventLog {
 public:
  // Opens `path` for append (creating it if missing). Check ok() before
  // relying on the log; Append on a failed log is a silent no-op so the
  // serving path never has to branch on sink health.
  explicit EventLog(const std::string& path);
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  bool ok() const { return ok_; }
  const std::string& path() const { return path_; }

  // Writes `json_object` + '\n' and flushes. `json_object` must be one
  // complete JSON object with no embedded newline (ECRPQ_DCHECKed).
  void Append(std::string_view json_object) ECRPQ_EXCLUDES(mutex_);

  // Lifetime count of lines written (test/obs hook).
  uint64_t lines_written() const ECRPQ_EXCLUDES(mutex_);

 private:
  const std::string path_;
  bool ok_ = false;
  mutable Mutex mutex_;
  std::ofstream out_ ECRPQ_GUARDED_BY(mutex_);
  uint64_t lines_written_ ECRPQ_GUARDED_BY(mutex_) = 0;
};

}  // namespace obs
}  // namespace ecrpq

#endif  // ECRPQ_COMMON_EVENT_LOG_H_
