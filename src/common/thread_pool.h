// ThreadPool: a small fixed-size worker pool for the parallel evaluation
// layer (per-source RPQ searches, product-tuple searches, leaf-relation
// materialization).
//
// Design constraints, in order:
//  - pool size 1 is *exactly* the sequential engine: no worker threads are
//    spawned and every task runs inline on the calling thread, so the
//    single-threaded code path is byte-for-byte today's behavior;
//  - callers own determinism: the pool only promises that every submitted
//    task runs; callers index results by input position and merge in input
//    order, never in completion order;
//  - cooperative cancellation: long tasks poll a CancelToken so early-stop
//    options (max_answers, streaming callbacks returning false) can cut
//    short in-flight work.
//
// The default pool size is the ECRPQ_THREADS environment variable when set
// to a positive integer, otherwise std::thread::hardware_concurrency().
#ifndef ECRPQ_COMMON_THREAD_POOL_H_
#define ECRPQ_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotations.h"

namespace ecrpq {

// Cooperative cancellation flag shared between a coordinator and workers.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool IsCancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

// Counts outstanding tasks; Wait() blocks until the count returns to zero.
class WaitGroup {
 public:
  void Add(int n = 1) ECRPQ_EXCLUDES(mutex_);
  void Done() ECRPQ_EXCLUDES(mutex_);
  void Wait() ECRPQ_EXCLUDES(mutex_);

 private:
  Mutex mutex_;
  CondVar cv_;
  int count_ ECRPQ_GUARDED_BY(mutex_) = 0;
};

class ThreadPool {
 public:
  // A pool of max(1, num_threads) threads. Size 1 spawns no threads.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // ECRPQ_THREADS env override when positive, else hardware concurrency
  // (at least 1).
  static int DefaultNumThreads();

  // Maps an options-style request to a concrete size: 0 means
  // DefaultNumThreads(), anything else is clamped to at least 1.
  static int ResolveNumThreads(int requested);

  // Process-shared pool of exactly max(1, threads) workers. Pools are
  // created on first use, keyed by size, and live until process exit — the
  // evaluation entry points use this so a short query does not pay thread
  // spawn + join on every call (which would drown the parallel speedup for
  // sub-millisecond workloads). Tasks from concurrent evaluations may
  // interleave on the same workers; every caller already synchronizes with
  // its own WaitGroup/coordinator, and determinism never depended on task
  // placement. Do not fan out onto a shared pool from *inside* one of its
  // own worker tasks: a worker blocking on work queued behind it deadlocks.
  static ThreadPool* Shared(int threads);

  // Enqueues fn. With one thread, runs fn inline before returning.
  void Submit(std::function<void()> fn) ECRPQ_EXCLUDES(mutex_);

  // Runs fn(0) .. fn(n - 1), blocking until all complete. Iterations are
  // claimed dynamically (an atomic counter), so the *schedule* is
  // nondeterministic but each index always receives the same work; callers
  // write results into slot i and get deterministic output. With one thread
  // this is a plain sequential loop on the calling thread; otherwise all
  // work runs on the pool's workers and the caller only blocks.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop() ECRPQ_EXCLUDES(mutex_);

  int num_threads_;
  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ ECRPQ_GUARDED_BY(mutex_);
  bool shutdown_ ECRPQ_GUARDED_BY(mutex_) = false;
};

}  // namespace ecrpq

#endif  // ECRPQ_COMMON_THREAD_POOL_H_
