// Minimal JSON value parser — just enough for the repo's own machine
// formats (BENCH_*.json, StatsReport::ToJson, trace exports). Not a
// general-purpose library: no \uXXXX surrogate pairs beyond the BMP, no
// configurable depth limits, numbers parsed with strtod.
//
// Values are immutable after Parse(). Object member order is preserved
// (stored as a vector of pairs), which keeps round-trip tests byte-exact
// for the repo's deterministic writers.
#ifndef ECRPQ_COMMON_JSON_H_
#define ECRPQ_COMMON_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ecrpq {
namespace json {

class Value;
using Array = std::vector<Value>;
using Object = std::vector<std::pair<std::string, Value>>;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  explicit Value(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Value(double d) : type_(Type::kNumber), number_(d) {}
  explicit Value(std::string s)
      : type_(Type::kString), string_(std::move(s)) {}
  explicit Value(Array a)
      : type_(Type::kArray), array_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : type_(Type::kObject),
        object_(std::make_shared<Object>(std::move(o))) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Accessors ECRPQ_CHECK on type mismatch — callers test the type first
  // (or use Find/Get below which fold the test in).
  bool AsBool() const;
  double AsNumber() const;
  // AsNumber checked + cast; values outside uint64 range are clamped to 0.
  uint64_t AsUint64() const;
  const std::string& AsString() const;
  const Array& AsArray() const;
  const Object& AsObject() const;

  // Object member lookup (first match); nullptr when absent or not an
  // object.
  const Value* Find(const std::string& key) const;
  // Typed lookups: false / untouched `out` when the member is absent or has
  // the wrong type.
  bool GetNumber(const std::string& key, double* out) const;
  bool GetUint64(const std::string& key, uint64_t* out) const;
  bool GetString(const std::string& key, std::string* out) const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  // shared_ptr keeps Value copyable and cheap to pass around; parsed
  // documents are read-only so sharing is safe.
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

// Parses one JSON document (trailing whitespace allowed, trailing garbage is
// an error). Errors carry a byte offset.
Result<Value> Parse(const std::string& text);

}  // namespace json
}  // namespace ecrpq

#endif  // ECRPQ_COMMON_JSON_H_
