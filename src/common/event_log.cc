#include "common/event_log.h"

#include "common/dcheck.h"

namespace ecrpq {
namespace obs {

EventLog::EventLog(const std::string& path) : path_(path) {
  MutexLock lock(mutex_);
  out_.open(path, std::ios::app);
  ok_ = static_cast<bool>(out_);
}

void EventLog::Append(std::string_view json_object) {
  ECRPQ_DCHECK(json_object.find('\n') == std::string_view::npos)
      << "event-log records must be single-line JSON objects";
  MutexLock lock(mutex_);
  if (!out_) return;
  out_.write(json_object.data(),
             static_cast<std::streamsize>(json_object.size()));
  out_.put('\n');
  out_.flush();
  ++lines_written_;
}

uint64_t EventLog::lines_written() const {
  MutexLock lock(mutex_);
  return lines_written_;
}

}  // namespace obs
}  // namespace ecrpq
