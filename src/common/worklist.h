// The work-stealing runtime behind the parallel evaluation layer: a
// Chase-Lev-style deque of chunked work items plus the FrontierScheduler
// that drives the hot fan-out loops (per-source product BFS, batched tuple
// searches, branch-parallel backtracking) from per-worker worklists.
//
// Why not ThreadPool::ParallelFor? The fixed atomic-counter schedule hands
// out indices one at a time: cheap items pay one contended fetch_add each,
// and an expensive item pins its worker while the counter starves everyone
// of locality. The scheduler here seeds each worker with contiguous chunks
// of the index space; a worker drains its own deque LIFO (cache-warm,
// uncontended) and only when empty steals FIFO from a victim — the classic
// work-stealing recipe (Chase & Lev, SPAA'05) specialized to a static work
// set, which is exactly what the evaluation fan-outs are: the index space
// is known up front and chunks never spawn more chunks.
//
// Determinism: the scheduler only changes *which worker* runs index i and
// *when* — every index still runs exactly once, callers still write results
// into slot i and merge in input order, and answer emission stays behind
// the ordered-coordinator replay (eval/generic_eval.cc). The differential
// suite checks this at pool sizes 1/2/4/8.
//
// Concurrency contract (PR 5 vocabulary): PushBottom/PopBottom are
// owner-only (an ExclusiveRole capability — the deque has exactly one
// owning worker once the scheduler hands it off; the scheduler itself is
// the single writer during seeding, before any worker starts). Steal may be
// called from any thread. All cross-thread state is std::atomic — including
// the buffer slots, so a stale speculative read in a lost steal race is an
// atomic load, not a data race (TSan-clean by construction).
#ifndef ECRPQ_COMMON_WORKLIST_H_
#define ECRPQ_COMMON_WORKLIST_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/annotations.h"
#include "common/check.h"
#include "common/metrics.h"
#include "common/thread_pool.h"

namespace ecrpq {

// Single-owner bottom, lock-free top. Fixed capacity chosen at
// construction: the schedulers built on top seed all work up front and
// never push from inside a task, so the high-water mark is known exactly
// and growth is unnecessary (PushBottom CHECKs instead of reallocating —
// a full deque is a scheduler bug, not a load condition).
class WorkStealingDeque {
 public:
  enum class StealResult { kStolen, kEmpty, kLost };

  explicit WorkStealingDeque(size_t capacity)
      : mask_(RoundUpPow2(capacity < 2 ? 2 : capacity) - 1),
        buffer_(mask_ + 1) {}

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  size_t capacity() const { return mask_ + 1; }

  // Owner-only. Appends an item at the bottom.
  void PushBottom(uint64_t item) ECRPQ_ASSERT_EXCLUSIVE(owner_role_) {
    owner_role_.Assert();
    const uint64_t b = bottom_.load(std::memory_order_relaxed);
    const uint64_t t = top_.load(std::memory_order_acquire);
    ECRPQ_CHECK(b - t <= mask_) << "WorkStealingDeque overflow";
    buffer_[b & mask_].store(item, std::memory_order_relaxed);
    // Publish the slot before the new bottom becomes visible to thieves.
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  // Owner-only. Takes the most recently pushed item (LIFO), or nullopt when
  // the deque is empty. The memory-order choreography is the C11 Chase-Lev
  // formulation (Lê et al., PPoPP'13).
  std::optional<uint64_t> PopBottom() ECRPQ_ASSERT_EXCLUSIVE(owner_role_) {
    owner_role_.Assert();
    const uint64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    uint64_t t = top_.load(std::memory_order_relaxed);
    // Signed comparison: popping an empty deque decrements bottom below top
    // (transiently to -1 when both started at 0), which unsigned compares
    // would misread as a huge size.
    if (static_cast<int64_t>(t) > static_cast<int64_t>(b)) {
      // Already empty: restore bottom.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    uint64_t item = buffer_[b & mask_].load(std::memory_order_relaxed);
    if (t == b) {
      // Last item: race the thieves for it via top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        // A thief won; the deque is now empty.
        bottom_.store(b + 1, std::memory_order_relaxed);
        return std::nullopt;
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  // Any thread. Tries to take the oldest item (FIFO). kLost means the CAS
  // lost a race with the owner or another thief while items may remain —
  // callers should retry; kEmpty is a definitive miss.
  StealResult Steal(uint64_t* item) {
    uint64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const uint64_t b = bottom_.load(std::memory_order_acquire);
    // Signed: bottom may transiently sit one below top mid-PopBottom.
    if (static_cast<int64_t>(t) >= static_cast<int64_t>(b)) {
      return StealResult::kEmpty;
    }
    // Speculative read: if the CAS below fails the slot may have been
    // recycled, but the value is discarded — and the slot is an atomic, so
    // the stale read is defined behavior.
    const uint64_t candidate = buffer_[t & mask_].load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return StealResult::kLost;
    }
    *item = candidate;
    return StealResult::kStolen;
  }

  // Approximate (racy) size; exact when no concurrent operations run.
  size_t ApproxSize() const {
    const int64_t b =
        static_cast<int64_t>(bottom_.load(std::memory_order_relaxed));
    const int64_t t =
        static_cast<int64_t>(top_.load(std::memory_order_relaxed));
    return b > t ? static_cast<size_t>(b - t) : 0;
  }

 private:
  static size_t RoundUpPow2(size_t v) {
    size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  const uint64_t mask_;
  // Slots are atomics so lost-race speculative reads are never data races.
  std::vector<std::atomic<uint64_t>> buffer_;
  // Owner index (bottom) vs thief index (top); both increase monotonically.
  std::atomic<uint64_t> bottom_{0};
  std::atomic<uint64_t> top_{0};
  // Phantom capability: exactly one thread may call PushBottom/PopBottom at
  // a time (the seeding scheduler, then the owning worker after handoff —
  // the pool's Submit synchronizes the transfer).
  ExclusiveRole owner_role_;
};

// Drives fn(index, worker) for every index in [0, n) across a thread pool
// using per-worker chunked deques with stealing. `worker` identifies the
// executing worker in [0, num_workers()): callers use it to index
// per-worker state (searchers, engines) exactly as with the old
// Submit-per-worker pattern.
//
// Start() returns once all work is seeded and submitted; Wait() blocks
// until every index has run. Execute() is Start+Wait. With a null/1-thread
// pool or n <= 1, Start() runs everything inline on the calling thread
// (pool size 1 stays byte-for-byte the sequential engine).
//
// Steal traffic is recorded into the optional MetricsShard (steal_attempts
// / steals_succeeded) — scheduling-dependent by nature, so these counters
// are excluded from determinism comparisons.
class FrontierScheduler {
 public:
  using TaskFn = std::function<void(size_t index, int worker)>;

  explicit FrontierScheduler(ThreadPool* pool,
                             obs::MetricsShard* shard = nullptr)
      : pool_(pool), shard_(shard) {}
  ~FrontierScheduler() { Wait(); }

  FrontierScheduler(const FrontierScheduler&) = delete;
  FrontierScheduler& operator=(const FrontierScheduler&) = delete;

  // Number of workers the last Start() fanned out to (1 when inline).
  int num_workers() const { return workers_; }

  // Chunk granularity: small enough that W workers get ~8 chunks each to
  // balance, capped at 64 so one stolen chunk never carries a large tail of
  // an imbalanced frontier.
  static size_t ChunkSizeFor(size_t n, int workers);

  void Start(size_t n, TaskFn fn);
  void Wait();
  void Execute(size_t n, TaskFn fn) {
    Start(n, std::move(fn));
    Wait();
  }

 private:
  void WorkerRun(int w);

  ThreadPool* pool_;
  obs::MetricsShard* shard_;
  int workers_ = 1;
  size_t n_ = 0;
  TaskFn fn_;
  std::vector<std::unique_ptr<WorkStealingDeque>> deques_;
  WaitGroup wg_;
  bool running_ = false;
};

}  // namespace ecrpq

#endif  // ECRPQ_COMMON_WORKLIST_H_
