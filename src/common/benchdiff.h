// Noise-aware comparison of two BENCH_*.json files (the bench_main --json
// format) — the library behind tools/bench_compare and the CI perf gate.
//
// Threshold model:
//  - the time statistic is min-of-repeats (min_ns, falling back to
//    median_ns for baselines written before min_ns existed): the minimum is
//    the repetition least disturbed by scheduling noise, so it is the
//    stable lower envelope of the benchmark's true cost;
//  - a time regression fires only when the current value exceeds
//    baseline * (1 + time_rel_slack) + time_abs_slack_ns — the relative
//    term absorbs proportional jitter, the absolute term keeps
//    microsecond-scale benchmarks from tripping on constant-size noise;
//  - counters are compared per name with their own (tighter) slack, since
//    most are deterministic work counts; counters whose name ends in "_ns"
//    (histogram percentile exports such as phase_bfs_ns_p90) are wall-clock
//    valued and get the time slack instead; counters prefixed "sched_"
//    (work-stealing steal traffic), "cache_" (cross-run cache history),
//    "service_" (admission-control traffic) or "telemetry_" (event-log /
//    flight-recorder traffic) are scheduling- or history-dependent by
//    design and are never compared at all;
//  - comparisons are skipped with a note (not a failure) when the records
//    are not comparable: build mode differs, threads differ, seed differs,
//    or a benchmark exists on only one side. Improvements never fail.
#ifndef ECRPQ_COMMON_BENCHDIFF_H_
#define ECRPQ_COMMON_BENCHDIFF_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace ecrpq {
namespace benchdiff {

// One benchmark's record from a BENCH_*.json array.
struct BenchRecord {
  std::string name;
  double n = 0;
  double median_ns = 0;
  // min-of-repeats; == median_ns when the file predates the min_ns field.
  double min_ns = 0;
  uint64_t repeats = 1;
  uint64_t seed = 0;
  uint64_t threads = 0;
  std::string build;
  std::vector<std::pair<std::string, double>> counters;
};

// Parses the --json output of bench_main. Unknown fields are ignored;
// missing optional fields get the defaults above.
Result<std::vector<BenchRecord>> ParseBenchJson(const std::string& text);

struct CompareOptions {
  // Time: fail when current > baseline * (1 + rel) + abs.
  // With rel = 0.40 and abs = 50us, a genuine 2x slowdown trips for any
  // benchmark above ~83us (2x > 1.4x + 50us <=> x > 83us), while
  // microsecond-scale benchmarks never fail on constant-size noise.
  double time_rel_slack = 0.40;
  double time_abs_slack_ns = 50000;  // 50us.
  // Non-time counters: fail when |current - baseline| >
  // baseline * rel + abs. Loose enough for pool-splitting nondeterminism
  // (memo splits make some work counters schedule-dependent), tight enough
  // to catch a 2x work blowup.
  double counter_rel_slack = 0.25;
  double counter_abs_slack = 64;
  // When false, counter mismatches are reported but time regressions alone
  // decide ok().
  bool check_counters = true;
};

struct Regression {
  std::string bench;   // Benchmark name.
  std::string metric;  // "min_ns" or a counter name.
  double baseline = 0;
  double current = 0;
  double limit = 0;    // The threshold the current value exceeded.
};

struct CompareReport {
  std::vector<Regression> regressions;
  std::vector<std::string> notes;  // Skipped/unmatched records, context.
  size_t compared = 0;             // Benchmarks actually compared.

  bool ok() const { return regressions.empty(); }
  std::string ToString() const;
};

CompareReport CompareBenchRecords(const std::vector<BenchRecord>& baseline,
                                  const std::vector<BenchRecord>& current,
                                  const CompareOptions& options);

}  // namespace benchdiff
}  // namespace ecrpq

#endif  // ECRPQ_COMMON_BENCHDIFF_H_
