// Hash combinators for composite keys (state tuples, packed labels, ...).
#ifndef ECRPQ_COMMON_HASH_H_
#define ECRPQ_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ecrpq {

// 64-bit mix (splitmix64 finalizer). Good avalanche, cheap.
inline uint64_t HashMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline size_t HashCombine(size_t seed, uint64_t v) {
  return static_cast<size_t>(HashMix64(seed ^ HashMix64(v)));
}

// Hash for vectors of integral values.
template <typename Int>
struct VectorHash {
  size_t operator()(const std::vector<Int>& v) const {
    size_t h = 0x51afb00dULL + v.size();
    for (const Int x : v) h = HashCombine(h, static_cast<uint64_t>(x));
    return h;
  }
};

template <typename A, typename B>
struct PairHash {
  size_t operator()(const std::pair<A, B>& p) const {
    return HashCombine(static_cast<uint64_t>(p.first) * 0x9e3779b9ULL,
                       static_cast<uint64_t>(p.second));
  }
};

}  // namespace ecrpq

#endif  // ECRPQ_COMMON_HASH_H_
