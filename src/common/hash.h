// Hash combinators for composite keys (state tuples, packed labels, ...).
#ifndef ECRPQ_COMMON_HASH_H_
#define ECRPQ_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ecrpq {

// 64-bit mix (splitmix64 finalizer). Good avalanche, cheap.
inline uint64_t HashMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline size_t HashCombine(size_t seed, uint64_t v) {
  return static_cast<size_t>(HashMix64(seed ^ HashMix64(v)));
}

// Hash for vectors of integral values.
template <typename Int>
struct VectorHash {
  size_t operator()(const std::vector<Int>& v) const {
    size_t h = 0x51afb00dULL + v.size();
    for (const Int x : v) h = HashCombine(h, static_cast<uint64_t>(x));
    return h;
  }
};

template <typename A, typename B>
struct PairHash {
  size_t operator()(const std::pair<A, B>& p) const {
    return HashCombine(static_cast<uint64_t>(p.first) * 0x9e3779b9ULL,
                       static_cast<uint64_t>(p.second));
  }
};

// Stable 64-bit hash of a byte string: word-at-a-time splitmix folding.
// Process-stable AND build-stable (no ASLR-seeded state, unlike
// std::hash<std::string> on some standard libraries), so values are safe
// to use in cache shard selection and reproducible diagnostics. NOT a
// substitute for exact key equality — the caching layer (common/cache.h)
// always compares full keys and uses hashes for placement only.
inline uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL ^ (bytes.size() * 0x9e3779b97f4a7c15ULL);
  size_t i = 0;
  while (i + 8 <= bytes.size()) {
    uint64_t word;
    std::memcpy(&word, bytes.data() + i, 8);
    h = HashMix64(h ^ word);
    i += 8;
  }
  uint64_t tail = 0;
  if (i < bytes.size()) {
    std::memcpy(&tail, bytes.data() + i, bytes.size() - i);
    h = HashMix64(h ^ tail);
  }
  return HashMix64(h);
}

// Hash functor over std::string keys built from canonical serializations
// (cache keys). Heterogeneous string_view lookup keeps callers allocation-
// free on the probe path.
struct BytesHash {
  using is_transparent = void;
  size_t operator()(std::string_view bytes) const {
    return static_cast<size_t>(HashBytes(bytes));
  }
  size_t operator()(const std::string& bytes) const {
    return static_cast<size_t>(HashBytes(bytes));
  }
};

// Appends the little-endian bytes of `v` to a canonical-serialization
// buffer. The fixed width (no varint) keeps serializations prefix-free
// per field, so concatenated fields can never alias across boundaries.
inline void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 8);
}

inline void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 4);
}

}  // namespace ecrpq

#endif  // ECRPQ_COMMON_HASH_H_
